open Expirel_index

let test_basics () =
  let h = Binary_heap.create () in
  Alcotest.(check bool) "empty" true (Binary_heap.is_empty h);
  Binary_heap.push h 5 100;
  Binary_heap.push h 2 200;
  Binary_heap.push h 5 50;
  Alcotest.(check int) "size" 3 (Binary_heap.size h);
  Alcotest.(check (option (pair int int))) "peek" (Some (2, 200)) (Binary_heap.peek h);
  Alcotest.(check (option (pair int int))) "pop min" (Some (2, 200)) (Binary_heap.pop h);
  Alcotest.(check (option (pair int int))) "ties by id" (Some (5, 50)) (Binary_heap.pop h);
  Alcotest.(check (option (pair int int))) "last" (Some (5, 100)) (Binary_heap.pop h);
  Alcotest.(check (option (pair int int))) "drained" None (Binary_heap.pop h)

let test_pop_until () =
  let h = Binary_heap.create () in
  List.iter (fun (t, id) -> Binary_heap.push h t id)
    [ 9, 1; 3, 2; 7, 3; 1, 4; 12, 5 ];
  Alcotest.(check (list (pair int int))) "due through 7"
    [ 1, 4; 3, 2; 7, 3 ]
    (Binary_heap.pop_until h 7);
  Alcotest.(check int) "rest" 2 (Binary_heap.size h);
  Binary_heap.clear h;
  Alcotest.(check bool) "cleared" true (Binary_heap.is_empty h)

let test_growth () =
  let h = Binary_heap.create ~capacity:1 () in
  for i = 100 downto 1 do
    Binary_heap.push h i i
  done;
  Alcotest.(check int) "all inserted" 100 (Binary_heap.size h);
  Alcotest.(check (option (pair int int))) "min after growth" (Some (1, 1))
    (Binary_heap.peek h)

let ops_gen =
  QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 100)
    (QCheck2.Gen.pair (QCheck2.Gen.int_range 0 50) (QCheck2.Gen.int_range 0 1000))

let prop_heap_sorts =
  Generators.qtest "draining yields sorted (time, id) pairs" ops_gen (fun entries ->
      let h = Binary_heap.create () in
      List.iter (fun (t, id) -> Binary_heap.push h t id) entries;
      let drained = Binary_heap.pop_until h max_int in
      drained = List.sort compare entries)

let suite =
  [ Alcotest.test_case "push/peek/pop ordering" `Quick test_basics;
    Alcotest.test_case "pop_until" `Quick test_pop_until;
    Alcotest.test_case "dynamic growth" `Quick test_growth;
    prop_heap_sorts ]
