open Expirel_core
open Expirel_dist
open Expirel_workload

let env = News.figure1_env
let difference = Algebra.(diff (project [ 1 ] (base "Pol")) (project [ 1 ] (base "El")))
let join = Algebra.(join (Predicate.eq_cols 1 3) (base "Pol") (base "El"))

let run strategy ?(horizon = 30) ?(latency = 0) expr =
  Sim.run ~env ~expr { Sim.horizon; latency; strategy }

let test_expiration_aware_never_stale () =
  List.iter
    (fun expr ->
      let r = run Sim.Expiration_aware expr in
      Alcotest.(check int)
        ("no staleness: " ^ Algebra.to_string expr)
        0 r.Sim.metrics.Metrics.stale_ticks)
    [ difference; join; Algebra.base "Pol" ]

let test_monotonic_needs_one_fetch () =
  let r = run Sim.Expiration_aware join in
  Alcotest.(check int) "initial request+response only" 2 r.Sim.metrics.Metrics.messages;
  Alcotest.(check int) "no refetches (Theorem 1)" 0 r.Sim.metrics.Metrics.refetches

let test_difference_refetches () =
  (* texp(e) passes at 3 and 5 (Figure 3), so two refetches. *)
  let r = run Sim.Expiration_aware difference in
  Alcotest.(check int) "two refetches" 2 r.Sim.metrics.Metrics.refetches;
  Alcotest.(check int) "messages: 3 fetches x 2" 6 r.Sim.metrics.Metrics.messages

let test_patched_no_refetch_no_staleness () =
  let r = run Sim.Patched difference in
  Alcotest.(check int) "single fetch" 2 r.Sim.metrics.Metrics.messages;
  Alcotest.(check int) "no refetches (Theorem 3)" 0 r.Sim.metrics.Metrics.refetches;
  Alcotest.(check int) "never stale" 0 r.Sim.metrics.Metrics.stale_ticks

let test_poll_staleness () =
  (* A slow TTL-less poller over the difference misses tuple changes at
     3, 5, 10, 15. *)
  let slow = run (Sim.Poll 10) difference in
  Alcotest.(check bool) "slow poll is stale" true
    (slow.Sim.metrics.Metrics.stale_ticks > 0);
  let fast = run (Sim.Poll 1) difference in
  Alcotest.(check int) "tick-by-tick poll never stale" 0
    fast.Sim.metrics.Metrics.stale_ticks;
  Alcotest.(check bool) "but pays for it in messages" true
    (fast.Sim.metrics.Metrics.messages > slow.Sim.metrics.Metrics.messages)

let test_poll_latency_staleness () =
  (* Even per-tick polling is stale when messages take time to arrive. *)
  let r = run (Sim.Poll 1) ~latency:2 difference in
  Alcotest.(check bool) "latency causes staleness" true
    (r.Sim.metrics.Metrics.stale_ticks > 0)

let test_validation () =
  let config = { Sim.horizon = 10; latency = 0; strategy = Sim.Patched } in
  Alcotest.check_raises "patched needs difference root"
    (Invalid_argument "Sim.run: Patched requires a difference at the root")
    (fun () -> ignore (Sim.run ~env ~expr:join config));
  Alcotest.check_raises "horizon" (Invalid_argument "Sim.run: horizon <= 0")
    (fun () ->
      ignore (Sim.run ~env ~expr:join { config with Sim.horizon = 0; strategy = Sim.Poll 3 }));
  Alcotest.check_raises "poll period" (Invalid_argument "Sim.run: poll period < 1")
    (fun () ->
      ignore (Sim.run ~env ~expr:join { config with Sim.strategy = Sim.Poll 0 }))

let prop_expiration_aware_always_correct =
  Generators.qtest "expiration-aware staleness is zero on random data" ~count:100
    (Generators.expr_and_env ())
    (fun (expr, bindings) ->
      let env = Eval.env_of_list bindings in
      let r =
        Sim.run ~env ~expr { Sim.horizon = 28; latency = 0; strategy = Sim.Expiration_aware }
      in
      r.Sim.metrics.Metrics.stale_ticks = 0)

let prop_patched_always_correct =
  Generators.qtest "patched staleness is zero on random differences" ~count:100
    (QCheck2.Gen.pair
       (QCheck2.Gen.pair
          (Generators.expr ~allow_non_monotonic:false ~arity:2 ())
          (Generators.expr ~allow_non_monotonic:false ~arity:2 ()))
       Generators.env_bindings)
    (fun ((l, r), bindings) ->
      let env = Eval.env_of_list bindings in
      let report =
        Sim.run ~env ~expr:(Algebra.diff l r)
          { Sim.horizon = 28; latency = 0; strategy = Sim.Patched }
      in
      report.Sim.metrics.Metrics.stale_ticks = 0
      && report.Sim.metrics.Metrics.messages = 2)

let suite =
  [ Alcotest.test_case "expiration-aware clients are never stale" `Quick
      test_expiration_aware_never_stale;
    Alcotest.test_case "monotonic views cost one fetch" `Quick
      test_monotonic_needs_one_fetch;
    Alcotest.test_case "difference views refetch at texp(e)" `Quick
      test_difference_refetches;
    Alcotest.test_case "patched views: one fetch, always right" `Quick
      test_patched_no_refetch_no_staleness;
    Alcotest.test_case "polling trades staleness against traffic" `Quick
      test_poll_staleness;
    Alcotest.test_case "latency makes polling stale" `Quick test_poll_latency_staleness;
    Alcotest.test_case "configuration validation" `Quick test_validation;
    prop_expiration_aware_always_correct;
    prop_patched_always_correct ]
