open Expirel_core
open Expirel_workload

let fin = Time.of_int
let env = News.figure1_env
let difference = Algebra.(diff (project [ 1 ] (base "Pol")) (project [ 1 ] (base "El")))

let test_difference_validity () =
  (* Critical tuples: <1> missing during [5,10[, <2> missing during
     [3,15[; valid elsewhere. *)
  let v = Validity.expression_validity ~env ~tau:Time.zero difference in
  Alcotest.(check string) "I(diff)" "[0, 3[ u [15, inf[" (Interval_set.to_string v)

let test_eq12_coarsening () =
  let exact = Validity.expression_validity ~env ~tau:Time.zero difference in
  let coarse =
    Validity.difference_validity_eq12 ~env ~tau:Time.zero
      Algebra.(project [ 1 ] (base "Pol"))
      Algebra.(project [ 1 ] (base "El"))
  in
  Alcotest.(check string) "Eq 12 single window" "[0, 3[ u [15, inf["
    (Interval_set.to_string coarse);
  (* Coarse validity never claims more than the exact one. *)
  List.iter
    (fun t ->
      if Interval_set.mem t coarse then
        Alcotest.(check bool) "coarse subset of exact" true (Interval_set.mem t exact))
    Generators.sample_times

let test_monotonic_validity_everywhere () =
  let join = Algebra.(join (Predicate.eq_cols 1 3) (base "Pol") (base "El")) in
  let v = Validity.expression_validity ~env ~tau:(fin 2) join in
  Alcotest.(check string) "[tau, inf[" "[2, inf[" (Interval_set.to_string v)

let test_aggregate_validity () =
  let histogram = Algebra.(aggregate [ 2 ] Aggregate.Count (base "Pol")) in
  let v = Validity.expression_validity ~env ~tau:Time.zero histogram in
  (* Partition 25 changes at 10, empties at 15; partition 35 only empties
     (at 10).  Valid during [0,10[ and again from 15 on. *)
  Alcotest.(check string) "I(agg)" "[0, 10[ u [15, inf[" (Interval_set.to_string v)

let test_observe_policies () =
  let validity =
    Interval_set.of_list
      [ Interval.make (fin 0) (fin 3); Interval.from (fin 15) ]
  in
  let obs policy tau = Validity.observe ~policy ~validity (fin tau) in
  (match obs Validity.Prefer_backward 1 with
   | Validity.Answer_now -> ()
   | _ -> Alcotest.fail "inside a window: answer now");
  (match obs Validity.Prefer_backward 7 with
   | Validity.Move_backward t -> Alcotest.(check string) "latest valid" "2" (Time.to_string t)
   | _ -> Alcotest.fail "expected backward");
  (match obs Validity.Prefer_delay 7 with
   | Validity.Delay_until t -> Alcotest.(check string) "next valid" "15" (Time.to_string t)
   | _ -> Alcotest.fail "expected delay");
  (match obs Validity.Recompute_only 7 with
   | Validity.Recompute -> ()
   | _ -> Alcotest.fail "expected recompute");
  (* No earlier coverage: backward falls back to delay. *)
  let late_only = Interval_set.of_interval (Interval.from (fin 10)) in
  (match Validity.observe ~policy:Validity.Prefer_backward ~validity:late_only (fin 4) with
   | Validity.Delay_until t -> Alcotest.(check string) "fallback delay" "10" (Time.to_string t)
   | _ -> Alcotest.fail "expected fallback to delay")

let test_latest_valid_before () =
  let s = Interval_set.of_list [ Interval.make (fin 2) (fin 5) ] in
  Alcotest.(check (option string)) "just before gap" (Some "4")
    (Option.map Time.to_string (Validity.latest_valid_before (fin 9) s));
  Alcotest.(check (option string)) "inside window" (Some "2")
    (Option.map Time.to_string (Validity.latest_valid_before (fin 3) s));
  Alcotest.(check bool) "nothing before" true
    (Validity.latest_valid_before (fin 1) s = None)

(* The load-bearing property: during every claimed validity interval, the
   properly expired materialisation answers exactly like a
   recomputation. *)
let prop_validity_sound =
  Generators.qtest "tau' in I(e) => materialisation = recomputation" ~count:300
    (QCheck2.Gen.pair (Generators.expr_and_env ()) Generators.time_finite)
    (fun ((e, bindings), tau) ->
      let env = Eval.env_of_list bindings in
      let materialised = Eval.relation_at ~env ~tau e in
      let validity = Validity.expression_validity ~env ~tau e in
      List.for_all
        (fun tau' ->
          if Time.is_infinite tau' || Time.(tau' < tau)
             || not (Interval_set.mem tau' validity)
          then true
          else
            Relation.equal_tuples
              (Relation.exp tau' materialised)
              (Eval.relation_at ~env ~tau:tau' e))
        Generators.sample_times)

(* Validity is at least as informative as the single expiration time:
   the whole interval [tau, texp(e)[ is always claimed valid. *)
let prop_validity_extends_texp =
  Generators.qtest "[tau, texp(e)[ is contained in I(e)" ~count:300
    (QCheck2.Gen.pair (Generators.expr_and_env ()) Generators.time_finite)
    (fun ((e, bindings), tau) ->
      let env = Eval.env_of_list bindings in
      let { Eval.texp; _ } = Eval.run ~env ~tau e in
      let validity = Validity.expression_validity ~env ~tau e in
      List.for_all
        (fun tau' ->
          if Time.(tau' < tau) || Time.(tau' >= texp) then true
          else Interval_set.mem tau' validity)
        Generators.sample_times)

let suite =
  [ Alcotest.test_case "difference validity (Section 3.3 example)" `Quick
      test_difference_validity;
    Alcotest.test_case "Equation (12) coarsening" `Quick test_eq12_coarsening;
    Alcotest.test_case "monotonic expressions valid everywhere" `Quick
      test_monotonic_validity_everywhere;
    Alcotest.test_case "aggregation validity windows" `Quick test_aggregate_validity;
    Alcotest.test_case "observer policies (Section 3.3)" `Quick test_observe_policies;
    Alcotest.test_case "latest_valid_before" `Quick test_latest_valid_before;
    prop_validity_sound;
    prop_validity_extends_texp ]
