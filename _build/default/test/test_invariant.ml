open Expirel_core
open Expirel_storage

let fin = Time.of_int

(* An on-call roster: operators with shift-end expiration times. *)
let setup () =
  let db = Database.create () in
  let tbl = Database.create_table db ~name:"oncall" ~columns:[ "op"; "level" ] in
  List.iter
    (fun (vs, e) -> Table.insert tbl (Tuple.ints vs) ~texp:(fin e))
    [ [ 1; 1 ], 10; [ 2; 1 ], 25; [ 3; 2 ], 40 ];
  db

let seniors = Algebra.(select (Predicate.eq_const 2 (Value.int 1)) (base "oncall"))

let test_prediction () =
  let db = setup () in
  let inv = Invariant.create db in
  Invariant.add inv ~name:"two-seniors" ~expr:seniors (Invariant.Min_cardinality 2);
  Invariant.add inv ~name:"any-oncall" ~expr:(Algebra.base "oncall")
    (Invariant.Min_cardinality 1);
  Alcotest.(check (list string)) "nothing violated now" []
    (List.map (fun v -> v.Invariant.name) (Invariant.check_now inv));
  (* The engine knows the future: senior coverage breaks at 10, the
     roster empties at 40. *)
  Alcotest.(check (option string)) "senior gap predicted" (Some "10")
    (Option.map Time.to_string
       (Invariant.next_violation inv ~name:"two-seniors" ~horizon:(fin 100)));
  Alcotest.(check (option string)) "roster gap predicted" (Some "40")
    (Option.map Time.to_string
       (Invariant.next_violation inv ~name:"any-oncall" ~horizon:(fin 100)));
  Alcotest.(check (option string)) "horizon cuts off" None
    (Option.map Time.to_string
       (Invariant.next_violation inv ~name:"any-oncall" ~horizon:(fin 30)))

let test_topping_up_removes_violation () =
  let db = setup () in
  let inv = Invariant.create db in
  Invariant.add inv ~name:"two-seniors" ~expr:seniors (Invariant.Min_cardinality 2);
  (* Act on the prediction: renew operator 1's shift before time 10. *)
  Database.insert db "oncall" (Tuple.ints [ 1; 1 ]) ~texp:(fin 50);
  Alcotest.(check (option string)) "violation postponed" (Some "25")
    (Option.map Time.to_string
       (Invariant.next_violation inv ~name:"two-seniors" ~horizon:(fin 100)))

let test_advance_reports_transitions () =
  let db = setup () in
  let inv = Invariant.create db in
  Invariant.add inv ~name:"two-seniors" ~expr:seniors (Invariant.Min_cardinality 2);
  Invariant.add inv ~name:"any-oncall" ~expr:(Algebra.base "oncall")
    (Invariant.Min_cardinality 1);
  let violations = Invariant.advance inv (fin 50) in
  Alcotest.(check (list string)) "transitions in time order"
    [ "two-seniors@10"; "any-oncall@40" ]
    (List.map
       (fun v -> Printf.sprintf "%s@%s" v.Invariant.name (Time.to_string v.Invariant.at))
       violations);
  Alcotest.(check int) "still violated now" 2 (List.length (Invariant.check_now inv))

let test_max_cardinality () =
  let db = setup () in
  let inv = Invariant.create db in
  (* At most one senior allowed: already broken. *)
  Invariant.add inv ~name:"cap" ~expr:seniors (Invariant.Max_cardinality 1);
  (match Invariant.check_now inv with
   | [ v ] ->
     Alcotest.(check int) "cardinality reported" 2 v.Invariant.cardinality
   | _ -> Alcotest.fail "expected one violation");
  (* A difference can grow by expiration, entering a max violation. *)
  let tbl = Database.create_table db ~name:"ack" ~columns:[ "op"; "level" ] in
  Table.insert tbl (Tuple.ints [ 3; 2 ]) ~texp:(fin 5);
  Invariant.add inv ~name:"unacked"
    ~expr:Algebra.(diff (base "oncall") (base "ack"))
    (Invariant.Max_cardinality 2);
  Alcotest.(check (option string)) "growth into violation predicted" (Some "5")
    (Option.map Time.to_string
       (Invariant.next_violation inv ~name:"unacked" ~horizon:(fin 100)))

let test_management () =
  let db = setup () in
  let inv = Invariant.create db in
  Alcotest.check_raises "bad bound"
    (Invalid_argument "Invariant.add: non-positive bound") (fun () ->
      Invariant.add inv ~name:"x" ~expr:seniors (Invariant.Min_cardinality 0));
  Invariant.add inv ~name:"x" ~expr:seniors (Invariant.Min_cardinality 1);
  Alcotest.check_raises "duplicate" (Invalid_argument "Invariant.add: x exists")
    (fun () -> Invariant.add inv ~name:"x" ~expr:seniors (Invariant.Min_cardinality 1));
  Alcotest.(check bool) "remove" true (Invariant.remove inv "x");
  Alcotest.(check bool) "remove twice" false (Invariant.remove inv "x");
  Alcotest.check_raises "unknown" Not_found (fun () ->
      ignore (Invariant.next_violation inv ~name:"x" ~horizon:(fin 10)))

(* Property: the predicted violation time is exactly the first sampled
   time at which a fresh evaluation violates. *)
let prop_prediction_matches_brute_force =
  Generators.qtest "next_violation = brute-force first bad time" ~count:150
    (QCheck2.Gen.pair (Generators.expr_and_env ()) (QCheck2.Gen.int_range 1 4))
    (fun ((expr, bindings), bound) ->
      let db = Database.create () in
      List.iter
        (fun (name, r) ->
          let columns =
            List.init (Relation.arity r) (fun i -> Printf.sprintf "c%d" i)
          in
          let tbl = Database.create_table db ~name ~columns in
          Relation.iter (fun t texp -> Table.insert tbl t ~texp) r)
        bindings;
      let inv = Invariant.create db in
      Invariant.add inv ~name:"w" ~expr (Invariant.Min_cardinality bound);
      let horizon = 40 in
      let env tau name =
        Option.map (fun tb -> Table.snapshot tb ~tau) (Database.table db name)
      in
      let bad tau =
        Relation.cardinal
          (Eval.relation_at ~env:(env (fin tau)) ~tau:(fin tau) expr)
        < bound
      in
      if bad 0 then true
        (* next_violation is about transitions out of a valid state;
           an already-violated constraint is check_now's business. *)
      else
        let brute =
          List.find_opt bad (List.init (horizon - 1) (fun i -> i + 1))
        in
        let predicted =
          Invariant.next_violation inv ~name:"w" ~horizon:(fin horizon)
        in
        (match brute, predicted with
         | None, None -> true
         | Some b, Some p -> Time.equal (fin b) p
         | Some _, None | None, Some _ -> false))

let suite =
  [ Alcotest.test_case "violations predicted ahead of time" `Quick test_prediction;
    Alcotest.test_case "renewals postpone predicted violations" `Quick
      test_topping_up_removes_violation;
    Alcotest.test_case "advance reports transitions in order" `Quick
      test_advance_reports_transitions;
    Alcotest.test_case "max cardinality and growing differences" `Quick
      test_max_cardinality;
    Alcotest.test_case "registry management" `Quick test_management;
    prop_prediction_matches_brute_force ]
