open Expirel_core

let t12 = Tuple.ints [ 1; 2 ]

let test_eval_basics () =
  Alcotest.(check bool) "true" true (Predicate.eval Predicate.True t12);
  Alcotest.(check bool) "false" false (Predicate.eval Predicate.False t12);
  Alcotest.(check bool) "col = const" true
    (Predicate.eval (Predicate.eq_const 1 (Value.int 1)) t12);
  Alcotest.(check bool) "col = col" false
    (Predicate.eval (Predicate.eq_cols 1 2) t12);
  Alcotest.(check bool) "lt" true
    (Predicate.eval (Predicate.Cmp (Predicate.Lt, Predicate.Col 1, Predicate.Col 2)) t12)

let test_null_semantics () =
  let t = Tuple.of_list [ Value.Null; Value.int 2 ] in
  let p op = Predicate.Cmp (op, Predicate.Col 1, Predicate.Col 2) in
  Alcotest.(check bool) "null = is false" false (Predicate.eval (p Predicate.Eq) t);
  Alcotest.(check bool) "null <> is false too" false
    (Predicate.eval (p Predicate.Neq) t);
  Alcotest.(check bool) "not collapses to boolean" true
    (Predicate.eval (Predicate.Not (p Predicate.Eq)) t)

let test_connectives () =
  let p = Predicate.conj [ Predicate.eq_const 1 (Value.int 1);
                           Predicate.eq_const 2 (Value.int 2) ] in
  Alcotest.(check bool) "conj" true (Predicate.eval p t12);
  let q = Predicate.disj [ Predicate.False; Predicate.eq_const 1 (Value.int 9) ] in
  Alcotest.(check bool) "disj false" false (Predicate.eval q t12);
  Alcotest.(check bool) "empty conj is true" true (Predicate.eval (Predicate.conj []) t12);
  Alcotest.(check bool) "empty disj is false" false (Predicate.eval (Predicate.disj []) t12)

let test_columns () =
  let p = Predicate.And (Predicate.eq_cols 1 3, Predicate.eq_const 2 (Value.int 0)) in
  Alcotest.(check int) "max_col" 3 (Predicate.max_col p);
  Alcotest.(check bool) "within 3" true (Predicate.columns_within 3 p);
  Alcotest.(check bool) "not within 2" false (Predicate.columns_within 2 p);
  Alcotest.(check bool) "between" true (Predicate.columns_between 1 3 p);
  Alcotest.(check bool) "not between 2..3" false (Predicate.columns_between 2 3 p)

let test_shift_rename () =
  let p = Predicate.eq_cols 1 2 in
  Alcotest.(check int) "shift" 4 (Predicate.max_col (Predicate.shift 2 p));
  let renamed = Predicate.rename (fun j -> if j = 1 then Some 5 else None) p in
  Alcotest.(check bool) "rename partial fails" true (renamed = None);
  let renamed = Predicate.rename (fun j -> Some (j + 10)) p in
  Alcotest.(check bool) "rename total" true
    (match renamed with
     | Some q -> Predicate.max_col q = 12
     | None -> false)

let gen = QCheck2.Gen.pair (Generators.predicate ~arity:3) (Generators.tuple ~arity:3)

let prop_shift_preserves_semantics =
  Generators.qtest "shift n agrees on shifted tuple"
    (QCheck2.Gen.pair gen (Generators.tuple ~arity:2))
    (fun ((p, t), prefix) ->
      let shifted = Predicate.shift 2 p in
      Predicate.eval p t = Predicate.eval shifted (Tuple.concat prefix t))

let prop_not_involutive =
  Generators.qtest "double negation" gen (fun (p, t) ->
      Predicate.eval (Predicate.Not (Predicate.Not p)) t = Predicate.eval p t)

let suite =
  [ Alcotest.test_case "comparisons" `Quick test_eval_basics;
    Alcotest.test_case "null collapses to false" `Quick test_null_semantics;
    Alcotest.test_case "connectives" `Quick test_connectives;
    Alcotest.test_case "column analysis" `Quick test_columns;
    Alcotest.test_case "shift and rename" `Quick test_shift_rename;
    prop_shift_preserves_semantics;
    prop_not_involutive ]
