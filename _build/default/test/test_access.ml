open Expirel_core
open Expirel_storage

let fin = Time.of_int

(* --- Ordered_index unit tests --- *)

let test_index_basics () =
  let idx = Ordered_index.create ~column:2 in
  Alcotest.(check int) "empty" 0 (Ordered_index.entries idx);
  List.iter (fun vs -> Ordered_index.insert idx (Tuple.ints vs))
    [ [ 1; 25 ]; [ 2; 25 ]; [ 3; 35 ]; [ 4; 10 ] ];
  Ordered_index.insert idx (Tuple.ints [ 1; 25 ]);
  Alcotest.(check int) "idempotent insert" 4 (Ordered_index.entries idx);
  Alcotest.(check (list string)) "lookup bucket" [ "<1, 25>"; "<2, 25>" ]
    (List.map Tuple.to_string (Ordered_index.lookup idx (Value.int 25)));
  Alcotest.(check (list string)) "range [20, 30]"
    [ "<1, 25>"; "<2, 25>" ]
    (List.map Tuple.to_string
       (Ordered_index.range idx ~lo:(Ordered_index.Inclusive (Value.int 20))
          ~hi:(Ordered_index.Inclusive (Value.int 30))));
  Alcotest.(check (list string)) "exclusive bounds"
    [ "<1, 25>"; "<2, 25>" ]
    (List.map Tuple.to_string
       (Ordered_index.range idx ~lo:(Ordered_index.Exclusive (Value.int 10))
          ~hi:(Ordered_index.Exclusive (Value.int 35))));
  (match Ordered_index.extrema idx with
   | Some (lo, hi) ->
     Alcotest.(check string) "extrema" "10..35"
       (Value.to_string lo ^ ".." ^ Value.to_string hi)
   | None -> Alcotest.fail "non-empty");
  Ordered_index.remove idx (Tuple.ints [ 4; 10 ]);
  Ordered_index.remove idx (Tuple.ints [ 4; 10 ]);
  Alcotest.(check int) "remove idempotent" 3 (Ordered_index.entries idx)

(* Reference semantics: range = filter over all entries. *)
let prop_range_matches_filter =
  Generators.qtest "index range = filter" ~count:200
    (QCheck2.Gen.pair
       (QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 30)
          (Generators.tuple_no_null ~arity:2))
       (QCheck2.Gen.pair (QCheck2.Gen.int_range (-4) 5) (QCheck2.Gen.int_range (-4) 5)))
    (fun (tuples, (a, b)) ->
      let lo_v = Value.int (min a b) and hi_v = Value.int (max a b) in
      let idx = Ordered_index.create ~column:1 in
      List.iter (Ordered_index.insert idx) tuples;
      let got =
        Ordered_index.range idx ~lo:(Ordered_index.Inclusive lo_v)
          ~hi:(Ordered_index.Exclusive hi_v)
      in
      let expected =
        List.sort_uniq Tuple.compare
          (List.filter
             (fun t ->
               Value.compare (Tuple.attr t 1) lo_v >= 0
               && Value.compare (Tuple.attr t 1) hi_v < 0)
             tuples)
      in
      List.sort Tuple.compare got = expected)

(* --- Access-path planning and execution --- *)

let make_table rows =
  let tbl = Table.create ~name:"t" ~columns:[ "a"; "b" ] () in
  List.iter (fun (vs, e) -> Table.insert tbl (Tuple.ints vs) ~texp:(fin e)) rows;
  Table.create_index tbl ~column:2;
  tbl

let sample =
  [ [ 1; 25 ], 10; [ 2; 25 ], 15; [ 3; 35 ], 10; [ 4; 50 ], 20; [ 5; 50 ], 3 ]

let plan_name tbl p = Format.asprintf "%a" Access.pp_plan (Access.plan tbl p)

let test_plans () =
  let tbl = make_table sample in
  Alcotest.(check string) "equality probe" "index-eq(#2 = 25)"
    (plan_name tbl (Predicate.eq_const 2 (Value.int 25)));
  Alcotest.(check string) "range" "index-range(#2: [30].._)"
    (plan_name tbl
       (Predicate.Cmp (Predicate.Ge, Predicate.Col 2, Predicate.Const (Value.int 30))));
  Alcotest.(check string) "flipped constant side" "index-range(#2: _..(40))"
    (plan_name tbl
       (Predicate.Cmp (Predicate.Gt, Predicate.Const (Value.int 40), Predicate.Col 2)));
  Alcotest.(check string) "unindexed column scans" "full-scan"
    (plan_name tbl (Predicate.eq_const 1 (Value.int 1)));
  Alcotest.(check string) "null comparison short-circuits" "never-matches"
    (plan_name tbl (Predicate.eq_const 2 Value.Null));
  Alcotest.(check string) "equality preferred over range" "index-eq(#2 = 25)"
    (plan_name tbl
       (Predicate.And
          (Predicate.Cmp (Predicate.Lt, Predicate.Col 2, Predicate.Const (Value.int 60)),
           Predicate.eq_const 2 (Value.int 25))));
  Alcotest.(check string) "range conjuncts merge into one interval"
    "index-range(#2: [20]..(40))"
    (plan_name tbl
       (Predicate.And
          (Predicate.Cmp (Predicate.Ge, Predicate.Col 2, Predicate.Const (Value.int 20)),
           Predicate.Cmp (Predicate.Lt, Predicate.Col 2, Predicate.Const (Value.int 40)))));
  (* A string constant against an int-keyed index is heterogeneous. *)
  Alcotest.(check string) "heterogeneous falls back" "full-scan"
    (plan_name tbl (Predicate.eq_const 2 (Value.str "x")))

let test_select_via_index () =
  let tbl = make_table sample in
  let p =
    Predicate.And
      (Predicate.eq_const 2 (Value.int 50),
       Predicate.Cmp (Predicate.Lt, Predicate.Col 1, Predicate.Const (Value.int 5)))
  in
  let r = Access.select tbl ~tau:(fin 4) p in
  (* <5,50> expired at 3, <4,50> passes both conjuncts. *)
  Alcotest.(check int) "one row" 1 (Relation.cardinal r);
  Alcotest.(check bool) "the right one" true (Relation.mem (Tuple.ints [ 4; 50 ]) r)

let test_index_maintenance () =
  let tbl = make_table sample in
  ignore (Table.delete tbl (Tuple.ints [ 1; 25 ]));
  ignore (Table.expire_upto tbl (fin 3));
  Table.insert tbl (Tuple.ints [ 9; 25 ]) ~texp:(fin 50);
  let r = Access.select tbl ~tau:(fin 4) (Predicate.eq_const 2 (Value.int 25)) in
  Alcotest.(check (list string)) "index reflects delete/expire/insert"
    [ "<2, 25>"; "<9, 25>" ]
    (List.map (fun (t, _) -> Tuple.to_string t) (Relation.to_list r));
  Alcotest.(check (list int)) "indexed columns" [ 2 ] (Table.indexed_columns tbl);
  Table.drop_index tbl ~column:2;
  Alcotest.(check string) "dropped index scans" "full-scan"
    (plan_name tbl (Predicate.eq_const 2 (Value.int 25)))

(* The load-bearing property: access paths never change results, even on
   type-mixed columns (where the planner must fall back). *)
let prop_access_equals_reference =
  Generators.qtest "indexed select = reference select" ~count:300
    (QCheck2.Gen.tup3
       (QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 25)
          (QCheck2.Gen.pair (Generators.tuple ~arity:2)
             (QCheck2.Gen.int_range 1 20)))
       (Generators.predicate ~arity:2)
       Generators.time_finite)
    (fun (rows, p, tau) ->
      let tbl = Table.create ~name:"t" ~columns:[ "a"; "b" ] () in
      List.iter (fun (t, e) -> Table.insert tbl t ~texp:(fin e)) rows;
      Table.create_index tbl ~column:1;
      Table.create_index tbl ~column:2;
      let reference = Ops.select p (Table.snapshot tbl ~tau) in
      Relation.equal (Access.select tbl ~tau p) reference)

let prop_eval_matches_database_query =
  Generators.qtest "Access.eval = Database.query" ~count:150
    (QCheck2.Gen.pair (Generators.expr_and_env ()) Generators.time_finite)
    (fun ((e, bindings), tau) ->
      let db = Database.create () in
      List.iter
        (fun (name, r) ->
          let columns =
            List.init (Relation.arity r) (fun i -> Printf.sprintf "c%d" i)
          in
          let tbl = Database.create_table db ~name ~columns in
          Table.create_index tbl ~column:1;
          Relation.iter
            (fun tuple texp ->
              if Time.(texp > tau) then Table.insert tbl tuple ~texp)
            r)
        bindings;
      Database.advance_to db tau;
      Relation.equal
        (Access.eval ~db ~tau e)
        (Database.query db e).Eval.relation)

let suite =
  [ Alcotest.test_case "ordered index basics" `Quick test_index_basics;
    Alcotest.test_case "plan selection" `Quick test_plans;
    Alcotest.test_case "select through an index" `Quick test_select_via_index;
    Alcotest.test_case "index maintenance" `Quick test_index_maintenance;
    prop_range_matches_filter;
    prop_access_equals_reference;
    prop_eval_matches_database_query ]
