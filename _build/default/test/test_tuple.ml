open Expirel_core

let test_attr_1_based () =
  let t = Tuple.ints [ 10; 20; 30 ] in
  Alcotest.(check bool) "t(1)" true (Value.equal (Tuple.attr t 1) (Value.int 10));
  Alcotest.(check bool) "t(3)" true (Value.equal (Tuple.attr t 3) (Value.int 30));
  Alcotest.check_raises "position 0 rejected"
    (Invalid_argument "Tuple.attr: position 0 outside 1..3") (fun () ->
      ignore (Tuple.attr t 0));
  Alcotest.check_raises "position 4 rejected"
    (Invalid_argument "Tuple.attr: position 4 outside 1..3") (fun () ->
      ignore (Tuple.attr t 4))

let test_project () =
  let t = Tuple.ints [ 10; 20; 30 ] in
  Alcotest.(check bool) "reorder and repeat" true
    (Tuple.equal (Tuple.project [ 3; 1; 3 ] t) (Tuple.ints [ 30; 10; 30 ]))

let test_concat_split () =
  let r = Tuple.ints [ 1; 2 ] and s = Tuple.ints [ 3 ] in
  let c = Tuple.concat r s in
  Alcotest.(check int) "arity" 3 (Tuple.arity c);
  let l, rr = Tuple.split ~left_arity:2 c in
  Alcotest.(check bool) "left" true (Tuple.equal l r);
  Alcotest.(check bool) "right" true (Tuple.equal rr s)

let test_compare () =
  Alcotest.(check bool) "shorter first" true
    (Tuple.compare (Tuple.ints [ 9 ]) (Tuple.ints [ 0; 0 ]) < 0);
  Alcotest.(check bool) "lexicographic" true
    (Tuple.compare (Tuple.ints [ 1; 2 ]) (Tuple.ints [ 1; 3 ]) < 0)

let test_printing () =
  Alcotest.(check string) "paper style" "<1, 25>" (Tuple.to_string (Tuple.ints [ 1; 25 ]))

let tuple3 = Generators.tuple ~arity:3

let prop_project_identity =
  Generators.qtest "projecting all positions is identity" tuple3 (fun t ->
      Tuple.equal (Tuple.project [ 1; 2; 3 ] t) t)

let prop_concat_split_roundtrip =
  Generators.qtest "split inverts concat"
    (QCheck2.Gen.pair (Generators.tuple ~arity:2) tuple3)
    (fun (a, b) ->
      let l, r = Tuple.split ~left_arity:2 (Tuple.concat a b) in
      Tuple.equal l a && Tuple.equal r b)

let prop_mutation_safe =
  Generators.qtest "of_array copies" (Generators.tuple ~arity:2) (fun t ->
      let arr = Array.of_list (Tuple.to_list t) in
      let u = Tuple.of_array arr in
      arr.(0) <- Value.int 999999;
      Tuple.equal u t)

let suite =
  [ Alcotest.test_case "1-based attribute access" `Quick test_attr_1_based;
    Alcotest.test_case "projection" `Quick test_project;
    Alcotest.test_case "concat and split" `Quick test_concat_split;
    Alcotest.test_case "ordering" `Quick test_compare;
    Alcotest.test_case "printing" `Quick test_printing;
    prop_project_identity;
    prop_concat_split_roundtrip;
    prop_mutation_safe ]
