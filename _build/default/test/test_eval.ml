open Expirel_core
open Expirel_workload

let fin = Time.of_int
let env = News.figure1_env
let eval ?strategy ~tau e = Eval.run ?strategy ~env ~tau e

let check_rel name expected actual =
  Alcotest.(check bool)
    (name ^ ": " ^ Relation.to_string actual)
    true
    (Relation.equal (Relation.of_list ~arity:(Relation.arity actual) expected) actual)

(* --- Figure 1: the base relations as given --- *)

let test_figure1 () =
  check_rel "Pol"
    [ Tuple.ints [ 1; 25 ], fin 10;
      Tuple.ints [ 2; 25 ], fin 15;
      Tuple.ints [ 3; 35 ], fin 10 ]
    (Eval.relation_at ~env ~tau:Time.zero (Algebra.base "Pol"));
  check_rel "El"
    [ Tuple.ints [ 1; 75 ], fin 5;
      Tuple.ints [ 2; 85 ], fin 3;
      Tuple.ints [ 4; 90 ], fin 2 ]
    (Eval.relation_at ~env ~tau:Time.zero (Algebra.base "El"))

(* --- Figure 2: monotonic expressions --- *)

let proj = Algebra.(project [ 2 ] (base "Pol"))
let join = Algebra.(join (Predicate.eq_cols 1 3) (base "Pol") (base "El"))

let test_figure2_projection () =
  (* (c) at time 0: <25> (texp 15 via duplicate merge), <35>. *)
  check_rel "pi_2(Pol) at 0"
    [ Tuple.ints [ 25 ], fin 15; Tuple.ints [ 35 ], fin 10 ]
    (Eval.relation_at ~env ~tau:Time.zero proj);
  (* (d) at time 10: only <25> remains. *)
  check_rel "pi_2(Pol) at 10"
    [ Tuple.ints [ 25 ], fin 15 ]
    (Eval.relation_at ~env ~tau:(fin 10) proj)

let test_figure2_join () =
  (* (e) at 0: both matches, with min lifetimes 5 and 3. *)
  check_rel "join at 0"
    [ Tuple.ints [ 1; 25; 1; 75 ], fin 5; Tuple.ints [ 2; 25; 2; 85 ], fin 3 ]
    (Eval.relation_at ~env ~tau:Time.zero join);
  (* (f) at 3: the second tuple has expired. *)
  check_rel "join at 3"
    [ Tuple.ints [ 1; 25; 1; 75 ], fin 5 ]
    (Eval.relation_at ~env ~tau:(fin 3) join);
  (* (g) at 5: empty. *)
  Alcotest.(check int) "join at 5 empty" 0
    (Relation.cardinal (Eval.relation_at ~env ~tau:(fin 5) join))

let test_figure2_texp_infinite () =
  (* Monotonic expressions have texp(e) = infinity. *)
  List.iter
    (fun e ->
      Alcotest.(check bool)
        ("texp inf: " ^ Algebra.to_string e)
        true
        (Time.is_infinite (eval ~tau:Time.zero e).Eval.texp))
    [ proj; join; Algebra.(union (base "Pol") (base "El"));
      Algebra.(product (base "Pol") (base "El"));
      Algebra.(intersect (base "Pol") (base "El")) ]

(* --- Figure 3: non-monotonic expressions --- *)

let histogram = Algebra.(project [ 2; 3 ] (aggregate [ 2 ] Aggregate.Count (base "Pol")))
let difference = Algebra.(diff (project [ 1 ] (base "Pol")) (project [ 1 ] (base "El")))

let test_figure3_histogram () =
  let { Eval.relation; texp } = eval ~tau:Time.zero histogram in
  check_rel "histogram at 0"
    [ Tuple.ints [ 25; 2 ], fin 10; Tuple.ints [ 35; 1 ], fin 10 ]
    relation;
  (* "from time 10 on, the result is invalid" *)
  Alcotest.(check string) "histogram texp(e)" "10" (Time.to_string texp)

let test_figure3_difference () =
  (* (b) at 0: {<3>}; invalid from 3 (tuple <2> should reappear). *)
  let { Eval.relation; texp } = eval ~tau:Time.zero difference in
  check_rel "diff at 0" [ Tuple.ints [ 3 ], fin 10 ] relation;
  Alcotest.(check string) "diff texp(e) = 3" "3" (Time.to_string texp);
  (* (c) at 3: {<2>, <3>}. *)
  check_rel "diff at 3"
    [ Tuple.ints [ 2 ], fin 15; Tuple.ints [ 3 ], fin 10 ]
    (Eval.relation_at ~env ~tau:(fin 3) difference);
  (* (d) at 5: {<1>, <2>, <3>} — it grew. *)
  check_rel "diff at 5"
    [ Tuple.ints [ 1 ], fin 10; Tuple.ints [ 2 ], fin 15; Tuple.ints [ 3 ], fin 10 ]
    (Eval.relation_at ~env ~tau:(fin 5) difference)

(* --- Table 2: lifetime analysis of R -exp S --- *)

let test_table2_cases () =
  let t = Tuple.ints [ 0 ] in
  let diff_of r s =
    let env = Eval.env_of_list
        [ "R", Relation.of_list ~arity:1 r; "S", Relation.of_list ~arity:1 s ]
    in
    Eval.run ~env ~tau:Time.zero Algebra.(diff (base "R") (base "S"))
  in
  (* (1) t in R only: keeps texp_R, expression immortal. *)
  let { Eval.relation; texp } = diff_of [ t, fin 7 ] [] in
  Alcotest.(check bool) "case 1 tuple kept" true
    (Time.equal (Relation.texp relation t) (fin 7));
  Alcotest.(check bool) "case 1 texp(e) inf" true (Time.is_infinite texp);
  (* (2) t in S only: not in result, expression immortal. *)
  let { Eval.relation; texp } = diff_of [] [ t, fin 7 ] in
  Alcotest.(check int) "case 2 empty" 0 (Relation.cardinal relation);
  Alcotest.(check bool) "case 2 texp(e) inf" true (Time.is_infinite texp);
  (* (3a) texp_R > texp_S: result expires at texp_S. *)
  let { Eval.relation; texp } = diff_of [ t, fin 9 ] [ t, fin 4 ] in
  Alcotest.(check int) "case 3a t hidden" 0 (Relation.cardinal relation);
  Alcotest.(check string) "case 3a texp(e) = texp_S" "4" (Time.to_string texp);
  (* (3b) texp_R <= texp_S: harmless, expression immortal. *)
  let { Eval.texp; _ } = diff_of [ t, fin 4 ] [ t, fin 9 ] in
  Alcotest.(check bool) "case 3b texp(e) inf" true (Time.is_infinite texp)

(* --- Operator definitions --- *)

let env_of bindings = Eval.env_of_list bindings

let test_union_max_rule () =
  let t = Tuple.ints [ 1 ] in
  let env = env_of
      [ "A", Relation.of_list ~arity:1 [ t, fin 3 ];
        "B", Relation.of_list ~arity:1 [ t, fin 8 ] ]
  in
  let r = Eval.relation_at ~env ~tau:Time.zero Algebra.(union (base "A") (base "B")) in
  Alcotest.(check bool) "Eq 4: max of texps" true (Time.equal (Relation.texp r t) (fin 8))

let test_intersect_min_rule () =
  let t = Tuple.ints [ 1 ] in
  let env = env_of
      [ "A", Relation.of_list ~arity:1 [ t, fin 3 ];
        "B", Relation.of_list ~arity:1 [ t, fin 8 ] ]
  in
  let r = Eval.relation_at ~env ~tau:Time.zero Algebra.(intersect (base "A") (base "B")) in
  Alcotest.(check bool) "Eq 6: min of texps" true (Time.equal (Relation.texp r t) (fin 3))

let prop_join_is_select_product =
  Generators.qtest "Eq 5: join = select over product"
    (QCheck2.Gen.tup4 (Generators.relation ~arity:2) (Generators.relation ~arity:2)
       (Generators.predicate ~arity:4) Generators.time_finite)
    (fun (r, s, p, tau) ->
      let env = env_of [ "R", r; "S", s ] in
      let joined =
        Eval.relation_at ~env ~tau Algebra.(join p (base "R") (base "S"))
      in
      let selected =
        Eval.relation_at ~env ~tau Algebra.(select p (product (base "R") (base "S")))
      in
      Relation.equal joined selected)

let prop_intersect_via_definition =
  (* Null-free: Eq (6)'s rewrite relies on literal equality, which the
     SQL-style predicate semantics break for nulls (null = null is
     false). *)
  Generators.qtest "Eq 6: intersect = pi(sigma(product))"
    (QCheck2.Gen.triple (Generators.relation_no_null ~arity:2)
       (Generators.relation_no_null ~arity:2)
       Generators.time_finite)
    (fun (r, s, tau) ->
      let env = env_of [ "R", r; "S", s ] in
      let direct =
        Eval.relation_at ~env ~tau Algebra.(intersect (base "R") (base "S"))
      in
      let via =
        Eval.relation_at ~env ~tau
          Algebra.(
            project [ 1; 2 ]
              (select
                 (Predicate.And (Predicate.eq_cols 1 3, Predicate.eq_cols 2 4))
                 (product (base "R") (base "S"))))
      in
      (* Tuple sets always agree; expiration times agree unless the
         product pairs a tuple with several partners, in which case the
         projection's max rule can only help.  For the canonical
         definition both sides coincide exactly. *)
      Relation.equal direct via)

let prop_results_only_live_tuples =
  Generators.qtest "closure: every result tuple is unexpired"
    (QCheck2.Gen.pair (Generators.expr_and_env ()) Generators.time_finite)
    (fun ((e, bindings), tau) ->
      let r = Eval.relation_at ~env:(Eval.env_of_list bindings) ~tau e in
      Relation.fold (fun _ texp ok -> ok && Time.(texp > tau)) r true)

let prop_strategies_agree_on_tuples =
  Generators.qtest "aggregation strategies differ only in texps"
    (QCheck2.Gen.pair (Generators.expr_and_env ()) Generators.time_finite)
    (fun ((e, bindings), tau) ->
      let env = Eval.env_of_list bindings in
      let conservative = Eval.relation_at ~strategy:Aggregate.Conservative ~env ~tau e in
      let exact = Eval.relation_at ~strategy:Aggregate.Exact ~env ~tau e in
      Relation.equal_tuples conservative exact)

let test_unknown_relation () =
  Alcotest.check_raises "unknown base" (Errors.Unknown_relation "nope") (fun () ->
      ignore (Eval.run ~env ~tau:Time.zero (Algebra.base "nope")))

let suite =
  [ Alcotest.test_case "Figure 1 base relations" `Quick test_figure1;
    Alcotest.test_case "Figure 2(c,d): projection" `Quick test_figure2_projection;
    Alcotest.test_case "Figure 2(e-g): join over time" `Quick test_figure2_join;
    Alcotest.test_case "monotonic expressions never expire" `Quick
      test_figure2_texp_infinite;
    Alcotest.test_case "Figure 3(a): histogram invalidates at 10" `Quick
      test_figure3_histogram;
    Alcotest.test_case "Figure 3(b-d): growing difference" `Quick
      test_figure3_difference;
    Alcotest.test_case "Table 2 case analysis" `Quick test_table2_cases;
    Alcotest.test_case "union takes max (Eq 4)" `Quick test_union_max_rule;
    Alcotest.test_case "intersection takes min (Eq 6)" `Quick test_intersect_min_rule;
    Alcotest.test_case "unknown relation error" `Quick test_unknown_relation;
    prop_join_is_select_product;
    prop_intersect_via_definition;
    prop_results_only_live_tuples;
    prop_strategies_agree_on_tuples ]
