open Expirel_core

let fin = Time.of_int
let iv a b = Interval.make (fin a) (fin b)

let covered s = List.filter (fun t -> Interval_set.mem t s) Generators.sample_times

let test_normalisation () =
  let s = Interval_set.of_list [ iv 0 3; iv 2 5; iv 5 7; iv 10 12 ] in
  Alcotest.(check int) "merged to two intervals" 2 (Interval_set.cardinal s);
  let expected = Interval_set.of_list [ iv 0 7; iv 10 12 ] in
  Alcotest.(check bool) "normal form equal" true (Interval_set.equal s expected)

let test_mem_empty_full () =
  Alcotest.(check bool) "empty has no members" false
    (Interval_set.mem (fin 0) Interval_set.empty);
  Alcotest.(check bool) "full from zero" true
    (Interval_set.mem (fin 0) Interval_set.full);
  Alcotest.(check bool) "full contains inf" true
    (Interval_set.mem Time.Inf Interval_set.full)

let test_gaps () =
  let s = Interval_set.of_list [ iv 0 3; iv 10 12 ] in
  Alcotest.(check (option string)) "gap after 0" (Some "3")
    (Option.map Time.to_string (Interval_set.first_gap_after (fin 0) s));
  Alcotest.(check (option string)) "gap at 5" (Some "5")
    (Option.map Time.to_string (Interval_set.first_gap_after (fin 5) s));
  Alcotest.(check (option string)) "next covered after 5" (Some "10")
    (Option.map Time.to_string (Interval_set.next_covered_after (fin 5) s));
  Alcotest.(check (option string)) "next covered inside" (Some "11")
    (Option.map Time.to_string (Interval_set.next_covered_after (fin 11) s));
  Alcotest.(check bool) "no covered after end" true
    (Interval_set.next_covered_after (fin 20) s = None);
  let unbounded = Interval_set.of_interval (Interval.from (fin 4)) in
  Alcotest.(check bool) "no gap in unbounded tail" true
    (Interval_set.first_gap_after (fin 9) unbounded = None)

let test_duration () =
  let s = Interval_set.of_list [ iv 0 3; iv 10 12 ] in
  Alcotest.(check bool) "total 5" true
    (Time.equal (Interval_set.total_duration s) (fin 5));
  let u = Interval_set.add (Interval.from (fin 100)) s in
  Alcotest.(check bool) "unbounded" true
    (Time.equal (Interval_set.total_duration u) Time.Inf)

let pair_gen = QCheck2.Gen.pair Generators.interval_set Generators.interval_set

let pointwise name op law =
  Generators.qtest name pair_gen (fun (a, b) ->
      List.for_all
        (fun t ->
          Interval_set.mem t (op a b) = law (Interval_set.mem t a) (Interval_set.mem t b))
        Generators.sample_times)

let prop_union = pointwise "union is pointwise or" Interval_set.union ( || )
let prop_inter = pointwise "inter is pointwise and" Interval_set.inter ( && )
let prop_diff =
  pointwise "diff is pointwise and-not" Interval_set.diff (fun x y -> x && not y)

let prop_complement =
  Generators.qtest "complement within full flips membership"
    Generators.interval_set (fun s ->
      let c = Interval_set.complement ~within:(Interval.from Time.zero) s in
      List.for_all
        (fun t -> Interval_set.mem t c = not (Interval_set.mem t s))
        Generators.sample_times)

let prop_normal_form_unique =
  Generators.qtest "same points => equal normal forms" pair_gen (fun (a, b) ->
      let same_points =
        List.for_all
          (fun t -> Interval_set.mem t a = Interval_set.mem t b)
          Generators.sample_times
      in
      (* Sample times cover the whole generator range densely enough that
         same points means same set. *)
      (not same_points) || Interval_set.equal a b)

let prop_intervals_disjoint_sorted =
  Generators.qtest "normal form is sorted, disjoint, non-adjacent"
    Generators.interval_set (fun s ->
      let rec ok = function
        | [] | [ _ ] -> true
        | a :: (b :: _ as rest) ->
          Time.(a.Interval.hi < b.Interval.lo) && ok rest
      in
      ok (Interval_set.to_list s))

let prop_covered_monotone_under_union =
  Generators.qtest "union only adds coverage" pair_gen (fun (a, b) ->
      let u = Interval_set.union a b in
      List.for_all (fun t -> Interval_set.mem t u) (covered a))

let suite =
  [ Alcotest.test_case "normalisation merges overlap and adjacency" `Quick
      test_normalisation;
    Alcotest.test_case "empty and full" `Quick test_mem_empty_full;
    Alcotest.test_case "gap and coverage queries" `Quick test_gaps;
    Alcotest.test_case "total duration" `Quick test_duration;
    prop_union;
    prop_inter;
    prop_diff;
    prop_complement;
    prop_normal_form_unique;
    prop_intervals_disjoint_sorted;
    prop_covered_monotone_under_union ]
