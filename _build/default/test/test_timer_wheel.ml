open Expirel_index

let test_basics () =
  let w = Timer_wheel.create ~start:0 () in
  Timer_wheel.add w ~at:5 1;
  Timer_wheel.add w ~at:3 2;
  Timer_wheel.add w ~at:5 3;
  Alcotest.(check int) "size" 3 (Timer_wheel.size w);
  Alcotest.(check (list (pair int int))) "advance to 4" [ 3, 2 ]
    (Timer_wheel.advance w ~to_:4);
  Alcotest.(check (list (pair int int))) "advance to 10" [ 5, 1; 5, 3 ]
    (Timer_wheel.advance w ~to_:10);
  Alcotest.(check int) "drained" 0 (Timer_wheel.size w);
  Alcotest.check_raises "backwards rejected"
    (Invalid_argument "Timer_wheel.advance: moving backwards") (fun () ->
      ignore (Timer_wheel.advance w ~to_:2))

let test_overdue () =
  let w = Timer_wheel.create ~start:10 () in
  Timer_wheel.add w ~at:4 7;
  Alcotest.(check (list (pair int int))) "overdue delivered on next advance"
    [ 4, 7 ]
    (Timer_wheel.advance w ~to_:11)

let test_level_crossing () =
  (* Entries far beyond level 0 (64 ticks) and level 1 (4096 ticks). *)
  let w = Timer_wheel.create ~start:0 () in
  Timer_wheel.add w ~at:100 1;
  Timer_wheel.add w ~at:5000 2;
  Timer_wheel.add w ~at:70000 3;
  Alcotest.(check (list (pair int int))) "nothing early" []
    (Timer_wheel.advance w ~to_:99);
  Alcotest.(check (list (pair int int))) "level-1 entry" [ 100, 1 ]
    (Timer_wheel.advance w ~to_:100);
  Alcotest.(check (list (pair int int))) "level-2 entry" [ 5000, 2 ]
    (Timer_wheel.advance w ~to_:6000);
  Alcotest.(check (list (pair int int))) "level-3 entry" [ 70000, 3 ]
    (Timer_wheel.advance w ~to_:70000)

let test_overflow () =
  let w = Timer_wheel.create ~wheel_size:4 ~levels:2 ~start:0 () in
  (* Horizon is 4^2 = 16 ticks; 100 goes to overflow and must still
     surface. *)
  Timer_wheel.add w ~at:100 9;
  Timer_wheel.add w ~at:3 1;
  Alcotest.(check (list (pair int int))) "near entry" [ 3, 1 ]
    (Timer_wheel.advance w ~to_:50);
  Alcotest.(check (list (pair int int))) "overflow entry" [ 100, 9 ]
    (Timer_wheel.advance w ~to_:120)

let test_next_expiry () =
  let w = Timer_wheel.create ~start:0 () in
  Alcotest.(check (option int)) "empty" None (Timer_wheel.next_expiry w);
  Timer_wheel.add w ~at:42 1;
  Timer_wheel.add w ~at:7 2;
  Alcotest.(check (option int)) "min" (Some 7) (Timer_wheel.next_expiry w)

let schedule_gen =
  QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 80)
    (QCheck2.Gen.pair (QCheck2.Gen.int_range 1 9000) (QCheck2.Gen.int_range 0 1000))

let prop_wheel_matches_sort =
  Generators.qtest "wheel delivers every entry at its time, in order"
    schedule_gen (fun entries ->
      let w = Timer_wheel.create ~start:0 () in
      List.iter (fun (at, id) -> Timer_wheel.add w ~at id) entries;
      (* Advance in irregular hops. *)
      let collected = ref [] in
      let rec hop t =
        if t < 10000 then begin
          collected := !collected @ Timer_wheel.advance w ~to_:t;
          hop (t + 617)
        end
      in
      hop 400;
      collected := !collected @ Timer_wheel.advance w ~to_:10000;
      !collected = List.sort compare entries)

let suite =
  [ Alcotest.test_case "add/advance ordering" `Quick test_basics;
    Alcotest.test_case "overdue entries" `Quick test_overdue;
    Alcotest.test_case "crossing wheel levels" `Quick test_level_crossing;
    Alcotest.test_case "overflow beyond horizon" `Quick test_overflow;
    Alcotest.test_case "next_expiry" `Quick test_next_expiry;
    prop_wheel_matches_sort ]
