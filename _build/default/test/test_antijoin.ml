open Expirel_core
open Expirel_workload

let fin = Time.of_int
let algorithms = [ "hash", Antijoin.Hash; "sort-merge", Antijoin.Sort_merge;
                   "nested-loop", Antijoin.Nested_loop ]

let pol1 = Relation.map_tuples ~arity:1 (Tuple.project [ 1 ]) News.figure1_pol
let el1 = Relation.map_tuples ~arity:1 (Tuple.project [ 1 ]) News.figure1_el

let test_paper_example () =
  List.iter
    (fun (name, alg) ->
      let d = Antijoin.diff alg pol1 el1 in
      Alcotest.(check int) (name ^ ": one tuple") 1 (Relation.cardinal d);
      Alcotest.(check bool) (name ^ ": <3>@10") true
        (Time.equal (Relation.texp d (Tuple.ints [ 3 ])) (fin 10));
      let critical = Antijoin.critical_tuples alg pol1 el1 in
      Alcotest.(check (list string)) (name ^ ": critical by texp_S")
        [ "<2>:3->15"; "<1>:5->10" ]
        (List.map
           (fun (t, e_s, e_r) ->
             Printf.sprintf "%s:%s->%s" (Tuple.to_string t) (Time.to_string e_s)
               (Time.to_string e_r))
           critical))
    algorithms

let test_arity_check () =
  List.iter
    (fun (name, alg) ->
      match Antijoin.diff alg pol1 News.figure1_el with
      | exception Errors.Arity_mismatch _ -> ()
      | _ -> Alcotest.failf "%s: expected arity error" name)
    algorithms

let rel_pair =
  QCheck2.Gen.pair (Generators.relation ~arity:2) (Generators.relation ~arity:2)

let prop_algorithms_agree =
  Generators.qtest "all algorithms produce the same difference" rel_pair
    (fun (r, s) ->
      let hash = Antijoin.diff Antijoin.Hash r s in
      Relation.equal hash (Antijoin.diff Antijoin.Sort_merge r s)
      && Relation.equal hash (Antijoin.diff Antijoin.Nested_loop r s))

let prop_matches_eval =
  Generators.qtest "antijoin = the algebra's difference" rel_pair (fun (r, s) ->
      let env = Eval.env_of_list [ "R", r; "S", s ] in
      (* Compare at time -1 so no tuple has expired yet and the algebra
         result equals the raw relation-level difference. *)
      let reference =
        Eval.relation_at ~env ~tau:(Time.of_int (-1))
          Algebra.(diff (base "R") (base "S"))
      in
      Relation.equal reference (Antijoin.diff Antijoin.Hash r s))

let prop_criticals_match_patch_queue =
  Generators.qtest "critical tuples = the patch queue's contents" rel_pair
    (fun (r, s) ->
      let criticals = Antijoin.critical_tuples Antijoin.Hash r s in
      let live =
        List.filter (fun (_, e_s, _) -> Time.(e_s > Time.zero)) criticals
      in
      let env = Eval.env_of_list [ "R", Relation.exp Time.zero r;
                                   "S", Relation.exp Time.zero s ] in
      let p =
        Patch.create ~env ~tau:Time.zero ~left:(Algebra.base "R")
          ~right:(Algebra.base "S")
      in
      (* Entries whose appearance time has not yet passed at time 0. *)
      Patch.pending p
      = List.length
          (List.filter
             (fun (t, _, e_r) ->
               Time.(e_r > Time.zero) && Relation.mem t (Relation.exp Time.zero s))
             live))

let suite =
  [ Alcotest.test_case "paper example on all algorithms" `Quick test_paper_example;
    Alcotest.test_case "arity checking" `Quick test_arity_check;
    prop_algorithms_agree;
    prop_matches_eval;
    prop_criticals_match_patch_queue ]
