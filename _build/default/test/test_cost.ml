open Expirel_core

let fin = Time.of_int

let env_of rows_r rows_s rows_t =
  Eval.env_of_list
    [ "R", Relation.of_list ~arity:1 rows_r;
      "S", Relation.of_list ~arity:1 rows_s;
      "T", Relation.of_list ~arity:1 rows_t ]

let big n texp = List.init n (fun i -> Tuple.ints [ i ], texp)

let test_eval_cost_charges_cardinalities () =
  let env = env_of (big 10 (fin 100)) (big 5 (fin 100)) (big 4 (fin 100)) in
  let est e = Cost.estimate ~env ~tau:Time.zero ~horizon:(fin 50) e in
  (* base: 10 *)
  Alcotest.(check (float 0.01)) "base" 10. (est (Algebra.base "R")).Cost.eval_cost;
  (* base 10 + select 10 *)
  Alcotest.(check (float 0.01)) "select" 20.
    (est Algebra.(select Predicate.True (base "R"))).Cost.eval_cost;
  (* bases 10 + 5 + product 50 *)
  Alcotest.(check (float 0.01)) "product" 65.
    (est Algebra.(product (base "R") (base "S"))).Cost.eval_cost;
  (* bases 10 + 5 + diff 15 *)
  Alcotest.(check (float 0.01)) "diff" 30.
    (est Algebra.(diff (base "R") (base "S"))).Cost.eval_cost

let test_recomputation_multiplier () =
  (* S's copy of the shared tuple dies at 5 and 9 after renewals...
     construct two reappearances: two critical tuples expiring at 5 and 9. *)
  let env =
    Eval.env_of_list
      [ "R",
        Relation.of_list ~arity:1
          [ Tuple.ints [ 1 ], fin 50; Tuple.ints [ 2 ], fin 50 ];
        "S",
        Relation.of_list ~arity:1
          [ Tuple.ints [ 1 ], fin 5; Tuple.ints [ 2 ], fin 9 ]
      ]
  in
  let est = Cost.estimate ~env ~tau:Time.zero ~horizon:(fin 40)
      Algebra.(diff (base "R") (base "S"))
  in
  Alcotest.(check int) "two recomputations" 2 est.Cost.recomputations;
  Alcotest.(check (float 0.01)) "total = eval x 3" (est.Cost.eval_cost *. 3.)
    est.Cost.total

let test_choose_trade_off () =
  (* (R - S) x T vs (R x T) - (S x T): the pull-up removes the
     recomputation but inflates the products.  With many recomputations
     ahead the pull-up wins; with none, the original is cheaper. *)
  let original = Algebra.(product (diff (base "R") (base "S")) (base "T")) in
  let pulled =
    Algebra.(diff (product (base "R") (base "T")) (product (base "S") (base "T")))
  in
  (* Heavy reappearance churn in R - S (critical tuples at staggered
     times), while T dies early: after the pull-up no product pair
     outlives its S-side copy, so the rewritten plan never recomputes. *)
  let churn_env =
    env_of
      (big 20 (fin 100))
      (List.init 15 (fun i -> Tuple.ints [ i ], fin (10 + (2 * i))))
      (big 10 (fin 3))
  in
  let chosen, _ =
    Cost.choose ~env:churn_env ~tau:Time.zero ~horizon:(fin 90)
      [ original; pulled ]
  in
  Alcotest.(check string) "churn: pull-up wins" (Algebra.to_string pulled)
    (Algebra.to_string chosen);
  (* No overlap at all: nothing ever recomputes, original is cheaper. *)
  let calm_env =
    env_of (big 20 (fin 100))
      (List.init 15 (fun i -> Tuple.ints [ 1000 + i ], fin 100))
      (big 10 (fin 100))
  in
  let chosen, est =
    Cost.choose ~env:calm_env ~tau:Time.zero ~horizon:(fin 90)
      [ original; pulled ]
  in
  Alcotest.(check string) "calm: original wins" (Algebra.to_string original)
    (Algebra.to_string chosen);
  Alcotest.(check int) "no recomputations" 0 est.Cost.recomputations

let prop_semantics_independent_of_choice =
  Generators.qtest "choose only picks among equivalent plans" ~count:100
    (Generators.expr_and_env ())
    (fun (e, bindings) ->
      let env = Eval.env_of_list bindings in
      let arity_env name = Option.map Relation.arity (List.assoc_opt name bindings) in
      let rewritten, _ = Rewrite.rewrite ~env:arity_env e in
      let chosen, _ =
        Cost.choose ~env ~tau:Time.zero ~horizon:(fin 30) [ e; rewritten ]
      in
      Relation.equal
        (Eval.relation_at ~env ~tau:(fin 7) chosen)
        (Eval.relation_at ~env ~tau:(fin 7) e))

let suite =
  [ Alcotest.test_case "per-operator cardinality charging" `Quick
      test_eval_cost_charges_cardinalities;
    Alcotest.test_case "recomputation multiplier" `Quick test_recomputation_multiplier;
    Alcotest.test_case "cost-gated rewriting trade-off" `Quick test_choose_trade_off;
    prop_semantics_independent_of_choice ]
