open Expirel_core

let fin = Time.of_int

let test_basics () =
  let h = Heap.empty in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  let h = Heap.insert (fin 5) "a" h in
  let h = Heap.insert (fin 2) "b" h in
  let h = Heap.insert Time.Inf "c" h in
  Alcotest.(check int) "cardinal" 3 (Heap.cardinal h);
  (match Heap.min_opt h with
   | Some (t, v) ->
     Alcotest.(check string) "min key" "2" (Time.to_string t);
     Alcotest.(check string) "min value" "b" v
   | None -> Alcotest.fail "non-empty");
  let popped, h = Heap.pop_until (fin 5) h in
  Alcotest.(check (list string)) "pop_until order" [ "b"; "a" ] (List.map snd popped);
  Alcotest.(check int) "infinite key stays" 1 (Heap.cardinal h)

let entries_gen =
  QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 40)
    (QCheck2.Gen.pair Generators.texp (QCheck2.Gen.int_range 0 1000))

let prop_sorted_drain =
  Generators.qtest "to_sorted_list is sorted by key" entries_gen (fun entries ->
      let sorted = Heap.to_sorted_list (Heap.of_list entries) in
      let keys = List.map fst sorted in
      List.length sorted = List.length entries
      && List.sort Time.compare keys = keys)

let prop_pop_until_boundary =
  Generators.qtest "pop_until splits at the bound"
    (QCheck2.Gen.pair entries_gen Generators.time_finite)
    (fun (entries, bound) ->
      let due, rest = Heap.pop_until bound (Heap.of_list entries) in
      List.for_all (fun (k, _) -> Time.(k <= bound)) due
      && Heap.fold (fun k _ ok -> ok && Time.(k > bound)) rest true
      && List.length due + Heap.cardinal rest = List.length entries)

let suite =
  [ Alcotest.test_case "insert/min/pop_until" `Quick test_basics;
    prop_sorted_drain;
    prop_pop_until_boundary ]
