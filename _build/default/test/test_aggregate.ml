open Expirel_core

let fin = Time.of_int

let member vs texp = Tuple.ints vs, fin texp
let imember vs = Tuple.ints vs, Time.Inf

(* Reference implementation of the aggregate value at time tau: apply f
   to the live members, None when empty. *)
let value_at f members tau =
  match List.filter (fun (_, e) -> Time.(e > tau)) members with
  | [] -> None
  | live -> Some (Aggregate.apply f live)

let value_opt_equal a b =
  match a, b with
  | None, None -> true
  | Some x, Some y -> Value.equal x y
  | None, Some _ | Some _, None -> false

(* Brute-force nu: scan every tick. *)
let brute_nu ~tau f members =
  let v0 = value_at f members tau in
  let horizon = Generators.max_finite_time + 2 in
  let rec scan t =
    if t > horizon then Time.Inf
    else if not (value_opt_equal (value_at f members (fin t)) v0) then fin t
    else scan (t + 1)
  in
  match Time.to_int_opt tau with
  | Some t0 -> scan t0
  | None -> Time.Inf

let test_apply () =
  let p = [ member [ 1; 5 ] 10; member [ 2; 7 ] 20; member [ 3; 0 ] 5 ] in
  let check name f expected =
    Alcotest.(check string) name expected (Value.to_string (Aggregate.apply f p))
  in
  check "count" Aggregate.Count "3";
  check "sum" (Aggregate.Sum 2) "12";
  check "min" (Aggregate.Min 2) "0";
  check "max" (Aggregate.Max 2) "7";
  check "avg" (Aggregate.Avg 2) "4";
  Alcotest.check_raises "empty partition"
    (Invalid_argument "Aggregate.apply: empty partition") (fun () ->
      ignore (Aggregate.apply Aggregate.Count []))

let test_apply_nulls () =
  let p = [ Tuple.of_list [ Value.Null ], fin 9; Tuple.of_list [ Value.int 4 ], fin 9 ] in
  Alcotest.(check string) "count counts all" "2"
    (Value.to_string (Aggregate.apply Aggregate.Count p));
  Alcotest.(check string) "sum skips nulls" "4"
    (Value.to_string (Aggregate.apply (Aggregate.Sum 1) p));
  Alcotest.(check string) "avg over non-null" "4"
    (Value.to_string (Aggregate.apply (Aggregate.Avg 1) p));
  let all_null = [ Tuple.of_list [ Value.Null ], fin 9 ] in
  Alcotest.(check bool) "sum of nothing is null" true
    (Value.is_null (Aggregate.apply (Aggregate.Sum 1) all_null))

let test_partitions () =
  let r =
    Relation.of_list ~arity:2
      [ Tuple.ints [ 1; 25 ], fin 10;
        Tuple.ints [ 2; 25 ], fin 15;
        Tuple.ints [ 3; 35 ], fin 10 ]
  in
  let parts = Aggregate.partitions ~group:[ 2 ] r in
  Alcotest.(check int) "two partitions" 2 (List.length parts);
  let sizes = List.map (fun (_, ms) -> List.length ms) parts in
  Alcotest.(check (list int)) "sizes" [ 2; 1 ] sizes;
  let p25 = Aggregate.partition_of ~group:[ 2 ] r (Tuple.ints [ 9; 25 ]) in
  Alcotest.(check int) "partition_of matches on group attrs" 2 (List.length p25)

let test_figure3a_histogram_partition () =
  (* Partition of degree 25 in Pol: count changes at 10 although the
     partition lives until 15 — the Figure 3(a) invalidation. *)
  let p = [ member [ 1; 25 ] 10; member [ 2; 25 ] 15 ] in
  Alcotest.(check string) "nu at 0" "10"
    (Time.to_string (Aggregate.nu ~tau:Time.zero Aggregate.Count p));
  Alcotest.(check string) "empties at 15" "15"
    (Time.to_string (Aggregate.empties_at p))

let test_neutral_min () =
  (* Table 1, min: non-minimal tuples are neutral; minimal tuples other
     than the longest-lived minimal one are neutral. *)
  let p = [ member [ 1; 3 ] 5; member [ 2; 3 ] 10; member [ 3; 9 ] 2 ] in
  let removed, contributing =
    Aggregate.neutral_slices ~tau:Time.zero (Aggregate.Min 2) p
  in
  Alcotest.(check int) "two neutral slices (texp 2 and 5)" 2 (List.length removed);
  Alcotest.(check int) "one contributing tuple" 1 (List.length contributing);
  Alcotest.(check string) "neutral strategy extends to 10" "10"
    (Time.to_string
       (Aggregate.result_texp Aggregate.Neutral ~tau:Time.zero (Aggregate.Min 2) p));
  Alcotest.(check string) "conservative stops at 2" "2"
    (Time.to_string
       (Aggregate.result_texp Aggregate.Conservative ~tau:Time.zero (Aggregate.Min 2) p))

let test_neutral_max () =
  let p = [ member [ 1; 9 ] 5; member [ 2; 9 ] 10; member [ 3; 1 ] 2 ] in
  Alcotest.(check string) "max extends to 10" "10"
    (Time.to_string
       (Aggregate.result_texp Aggregate.Neutral ~tau:Time.zero (Aggregate.Max 2) p))

let test_neutral_sum_zero_slice () =
  (* Table 1, sum: a time slice summing to zero is neutral. *)
  let p = [ member [ 1; 2 ] 5; member [ 2; -2 ] 5; member [ 3; 7 ] 12 ] in
  Alcotest.(check string) "zero slice skipped" "12"
    (Time.to_string
       (Aggregate.result_texp Aggregate.Neutral ~tau:Time.zero (Aggregate.Sum 2) p));
  let q = [ member [ 1; 3 ] 5; member [ 3; 7 ] 12 ] in
  Alcotest.(check string) "non-zero slice contributes" "5"
    (Time.to_string
       (Aggregate.result_texp Aggregate.Neutral ~tau:Time.zero (Aggregate.Sum 2) q))

let test_neutral_sum_all_zero () =
  (* C_f_P empty: the value stays valid until the whole partition
     expires (the paper's sum-of-zeros example). *)
  let p = [ member [ 1; 0 ] 5; member [ 2; 0 ] 12 ] in
  Alcotest.(check string) "all-neutral gives max texp" "12"
    (Time.to_string
       (Aggregate.result_texp Aggregate.Neutral ~tau:Time.zero (Aggregate.Sum 2) p))

let test_neutral_avg () =
  (* Table 1, avg: a slice whose average equals the partition average. *)
  let p = [ member [ 1; 2 ] 5; member [ 2; 4 ] 5; member [ 3; 3 ] 12 ] in
  Alcotest.(check string) "avg-neutral slice skipped" "12"
    (Time.to_string
       (Aggregate.result_texp Aggregate.Neutral ~tau:Time.zero (Aggregate.Avg 2) p))

let test_count_strictly_conservative () =
  (* "improves on the expiration times of all aggregates except count" *)
  let p = [ member [ 1; 0 ] 5; member [ 2; 0 ] 12 ] in
  let texp_of s = Aggregate.result_texp s ~tau:Time.zero Aggregate.Count p in
  Alcotest.(check string) "conservative" "5" (Time.to_string (texp_of Aggregate.Conservative));
  Alcotest.(check string) "neutral = conservative" "5"
    (Time.to_string (texp_of Aggregate.Neutral));
  Alcotest.(check string) "exact = conservative" "5"
    (Time.to_string (texp_of Aggregate.Exact))

let test_timeline_and_windows () =
  let p = [ member [ 1; 3 ] 5; member [ 2; -3 ] 7; member [ 3; 10 ] 9 ] in
  (* sum: 10 -> 7 (at 5) -> 10 (at 7!) -> empty (at 9) *)
  let timeline = Aggregate.timeline ~tau:Time.zero (Aggregate.Sum 2) p in
  let render (t, v) =
    Printf.sprintf "%s:%s" (Time.to_string t)
      (match v with
       | Some x -> Value.to_string x
       | None -> "-")
  in
  Alcotest.(check (list string)) "timeline"
    [ "0:10"; "5:7"; "7:10"; "9:-" ]
    (List.map render timeline);
  let windows = Aggregate.validity_windows ~tau:Time.zero (Aggregate.Sum 2) p in
  (* Valid where value = 10 again, and after the partition expires. *)
  Alcotest.(check string) "I_R(t) includes the return window"
    "[0, 5[ u [7, inf[" (Interval_set.to_string windows)

let partition_gen =
  QCheck2.Gen.pair (Generators.agg_func ~arity:2) (Generators.partition ~arity:2)

let live_partitions (f, p) =
  match List.filter (fun (_, e) -> Time.(e > Time.zero)) p with
  | [] -> None
  | live -> Some (f, live)

let prop_nu_matches_brute_force =
  Generators.qtest "nu = brute-force first change" ~count:400 partition_gen
    (fun (f, p) ->
      Time.equal (Aggregate.nu ~tau:Time.zero f p) (brute_nu ~tau:Time.zero f p))

let prop_strategy_ordering =
  Generators.qtest "Conservative <= Neutral <= Exact" ~count:400 partition_gen
    (fun fp ->
      match live_partitions fp with
      | None -> true
      | Some (f, p) ->
        let t s = Aggregate.result_texp s ~tau:Time.zero f p in
        Time.(t Aggregate.Conservative <= t Aggregate.Neutral)
        && Time.(t Aggregate.Neutral <= t Aggregate.Exact))

let prop_neutral_sound =
  (* The value must not change before the neutral expiration time. *)
  Generators.qtest "neutral texp never passes the first change" ~count:400
    partition_gen (fun fp ->
      match live_partitions fp with
      | None -> true
      | Some (f, p) ->
        let t_n = Aggregate.result_texp Aggregate.Neutral ~tau:Time.zero f p in
        let change = Aggregate.nu ~tau:Time.zero f p in
        Time.(t_n <= change) || Time.equal t_n (Aggregate.empties_at p))

let prop_chi_detects_changes =
  Generators.qtest "chi true iff adjacent values differ" ~count:300
    (QCheck2.Gen.triple (Generators.agg_func ~arity:2)
       (Generators.partition ~arity:2) Generators.time_finite)
    (fun (f, p, tau) ->
      Aggregate.chi tau f p
      = not (value_opt_equal (value_at f p tau) (value_at f p (Time.succ tau))))

let prop_validity_windows_sound =
  Generators.qtest "windows contain exactly the matching-value times"
    ~count:300 partition_gen (fun fp ->
      match live_partitions fp with
      | None -> true
      | Some (f, p) ->
        let windows = Aggregate.validity_windows ~tau:Time.zero f p in
        let v0 = value_at f p Time.zero in
        List.for_all
          (fun t ->
            let expected =
              match value_at f p t with
              | None -> true (* partition expired: absent, not wrong *)
              | Some v -> value_opt_equal (Some v) v0
            in
            Interval_set.mem t windows = expected)
          (List.filter Time.is_finite Generators.sample_times))

(* --- Approximate change points (the future-work extension) --- *)

let test_nu_within_example () =
  (* sum drifts 10 -> 7 (at 5) -> 4 (at 8) -> empty (at 9). *)
  let p = [ member [ 1; 3 ] 5; member [ 2; 3 ] 8; member [ 3; 4 ] 9 ] in
  let nu_eps eps = Aggregate.nu_within ~tolerance:eps ~tau:Time.zero (Aggregate.Sum 2) p in
  Alcotest.(check string) "eps 0 = exact" "5" (Time.to_string (nu_eps 0.));
  Alcotest.(check string) "eps 3 tolerates the first drop" "8"
    (Time.to_string (nu_eps 3.));
  Alcotest.(check string) "eps 6 tolerates both" "9" (Time.to_string (nu_eps 6.));
  Alcotest.(check string) "eps 100 still dies with the partition" "9"
    (Time.to_string (nu_eps 100.));
  Alcotest.check_raises "negative tolerance"
    (Invalid_argument "Aggregate.nu_within: negative tolerance") (fun () ->
      ignore (nu_eps (-1.)))

let tolerance_gen =
  QCheck2.Gen.map (fun n -> float_of_int n /. 2.) (QCheck2.Gen.int_range 0 10)

let prop_nu_within_zero_is_nu =
  Generators.qtest "nu_within 0 = nu on numeric values" ~count:300 partition_gen
    (fun (f, p) ->
      Time.equal
        (Aggregate.nu_within ~tolerance:0. ~tau:Time.zero f p)
        (Aggregate.nu ~tau:Time.zero f p))

let prop_nu_within_monotone =
  Generators.qtest "nu_within grows with the tolerance" ~count:300
    (QCheck2.Gen.triple Generators.(agg_func ~arity:2) (Generators.partition ~arity:2)
       (QCheck2.Gen.pair tolerance_gen tolerance_gen))
    (fun (f, p, (t1, t2)) ->
      let lo = Float.min t1 t2 and hi = Float.max t1 t2 in
      Time.(
        Aggregate.nu_within ~tolerance:lo ~tau:Time.zero f p
        <= Aggregate.nu_within ~tolerance:hi ~tau:Time.zero f p))

let prop_nu_within_error_bounded =
  Generators.qtest "value drift stays within tolerance until nu_within"
    ~count:300
    (QCheck2.Gen.triple Generators.(agg_func ~arity:2) (Generators.partition ~arity:2)
       tolerance_gen)
    (fun (f, p, tolerance) ->
      match live_partitions (f, p) with
      | None -> true
      | Some (f, live) ->
        let v0 = Aggregate.apply f live in
        let bound = Aggregate.nu_within ~tolerance ~tau:Time.zero f live in
        List.for_all
          (fun tau ->
            if Time.(tau >= bound) then true
            else
              match value_at f live tau with
              | None -> false (* would be a change point before [bound] *)
              | Some v ->
                (match Value.to_float v0, Value.to_float v with
                 | Some x, Some y -> Float.abs (y -. x) <= tolerance
                 | _ -> Value.equal v0 v))
          (List.filter Time.is_finite Generators.sample_times))

let suite =
  [ Alcotest.test_case "aggregate functions" `Quick test_apply;
    Alcotest.test_case "approximate change points (nu_within)" `Quick
      test_nu_within_example;
    prop_nu_within_zero_is_nu;
    prop_nu_within_monotone;
    prop_nu_within_error_bounded;
    Alcotest.test_case "null handling" `Quick test_apply_nulls;
    Alcotest.test_case "phi^exp partitioning (Eq 7)" `Quick test_partitions;
    Alcotest.test_case "Figure 3(a) partition change point" `Quick
      test_figure3a_histogram_partition;
    Alcotest.test_case "Table 1: min neutrality" `Quick test_neutral_min;
    Alcotest.test_case "Table 1: max neutrality" `Quick test_neutral_max;
    Alcotest.test_case "Table 1: sum zero slices" `Quick test_neutral_sum_zero_slice;
    Alcotest.test_case "empty contributing set (C = {})" `Quick
      test_neutral_sum_all_zero;
    Alcotest.test_case "Table 1: avg neutrality" `Quick test_neutral_avg;
    Alcotest.test_case "count never improves" `Quick test_count_strictly_conservative;
    Alcotest.test_case "timeline and I_R(t) windows" `Quick test_timeline_and_windows;
    prop_nu_matches_brute_force;
    prop_strategy_ordering;
    prop_neutral_sound;
    prop_chi_detects_changes;
    prop_validity_windows_sound ]
