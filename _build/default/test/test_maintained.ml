open Expirel_core
open Expirel_workload

let fin = Time.of_int

(* --- directed lifecycle tests on the paper's data --- *)

let difference = Algebra.(diff (project [ 1 ] (base "Pol")) (project [ 1 ] (base "El")))
let histogram = Algebra.(aggregate [ 2 ] Aggregate.Count (base "Pol"))

let test_insert_propagates () =
  let v = Maintained.materialise ~env:News.figure1_env ~tau:Time.zero difference in
  Alcotest.(check int) "initially {<3>}" 1 (Relation.cardinal (Maintained.read v));
  (* A new politics-only profile appears in the difference at once. *)
  let v = Maintained.insert v ~relation:"Pol" (Tuple.ints [ 9; 50 ]) ~texp:(fin 30) in
  Alcotest.(check bool) "<9> visible" true
    (Relation.mem (Tuple.ints [ 9 ]) (Maintained.read v));
  (* The same user gains an elections profile: masked again. *)
  let v = Maintained.insert v ~relation:"El" (Tuple.ints [ 9; 60 ]) ~texp:(fin 20) in
  Alcotest.(check bool) "<9> masked" false
    (Relation.mem (Tuple.ints [ 9 ]) (Maintained.read v));
  (* Explicitly deleting the elections profile reveals it again. *)
  let v = Maintained.delete v ~relation:"El" (Tuple.ints [ 9; 60 ]) in
  Alcotest.(check bool) "<9> revealed with Pol's texp" true
    (Time.equal (Relation.texp (Maintained.read v) (Tuple.ints [ 9 ])) (fin 30))

let test_update_overwrites_texp () =
  let v = Maintained.materialise ~env:News.figure1_env ~tau:Time.zero histogram in
  Alcotest.(check bool) "count 2 initially" true
    (Relation.mem (Tuple.ints [ 1; 25; 2 ]) (Maintained.read v));
  (* Renewing user 1's profile (update = new expiration time). *)
  let v = Maintained.insert v ~relation:"Pol" (Tuple.ints [ 1; 25 ]) ~texp:(fin 40) in
  Alcotest.(check bool) "count still 2" true
    (Relation.mem (Tuple.ints [ 1; 25; 2 ]) (Maintained.read v));
  (* A third 25-degree profile bumps the count. *)
  let v = Maintained.insert v ~relation:"Pol" (Tuple.ints [ 7; 25 ]) ~texp:(fin 40) in
  Alcotest.(check bool) "count 3 now" true
    (Relation.mem (Tuple.ints [ 1; 25; 3 ]) (Maintained.read v));
  Alcotest.(check bool) "old count gone" false
    (Relation.mem (Tuple.ints [ 1; 25; 2 ]) (Maintained.read v))

let test_advance_refreshes_locally () =
  let v = Maintained.materialise ~env:News.figure1_env ~tau:Time.zero difference in
  let v = Maintained.advance v ~to_:(fin 5) in
  (* The Figure 3(d) state: the difference grew by expiration alone. *)
  Alcotest.(check int) "three tuples at 5" 3 (Relation.cardinal (Maintained.read v));
  Alcotest.(check bool) "refresh counted" true
    (List.assoc "local-refreshes" (Maintained.stats v) > 0)

let test_guards () =
  let v = Maintained.materialise ~env:News.figure1_env ~tau:(fin 5) difference in
  Alcotest.check_raises "stale insert" (Invalid_argument "Maintained.insert: texp <= now")
    (fun () -> ignore (Maintained.insert v ~relation:"Pol" (Tuple.ints [ 1; 1 ]) ~texp:(fin 3)));
  Alcotest.check_raises "backwards" (Invalid_argument "Maintained.advance: moving backwards")
    (fun () -> ignore (Maintained.advance v ~to_:(fin 1)));
  (* Inserting into a relation the view does not read is a no-op. *)
  let v' = Maintained.insert v ~relation:"Other" (Tuple.ints [ 1; 1 ]) ~texp:(fin 9) in
  Alcotest.(check bool) "unknown base ignored" true
    (Relation.equal (Maintained.read v) (Maintained.read v'))

(* --- the load-bearing property: maintained = recomputed, always --- *)

type event =
  | Ins of string * Tuple.t * int  (* relation, tuple, ttl *)
  | Del of string * Tuple.t
  | Tick of int

let event_gen =
  let open QCheck2.Gen in
  let name = oneofl [ "R1"; "S1"; "R2"; "S2"; "R3" ] in
  let tuple_for n =
    let arity = if n = "R3" then 3 else if n = "R1" || n = "S1" then 1 else 2 in
    Generators.tuple ~arity
  in
  frequency
    [ 5,
      (let* n = name in
       let* t = tuple_for n in
       let* ttl = int_range 1 20 in
       return (Ins (n, t, ttl)));
      2,
      (let* n = name in
       let* t = tuple_for n in
       return (Del (n, t)));
      3, map (fun d -> Tick d) (int_range 0 6) ]

(* Reference: mutate plain relations the same way and re-evaluate. *)
let apply_reference bindings now event =
  match event with
  | Ins (name, t, ttl) ->
    let texp = Time.add now (Time.of_int ttl) in
    ( List.map
        (fun (n, r) ->
          if String.equal n name && Tuple.arity t = Relation.arity r then
            n, Relation.replace t ~texp r
          else n, r)
        bindings,
      now )
  | Del (name, t) ->
    ( List.map
        (fun (n, r) ->
          if String.equal n name && Tuple.arity t = Relation.arity r then
            n, Relation.remove t r
          else n, r)
        bindings,
      now )
  | Tick d -> bindings, Time.add now (Time.of_int d)

let apply_maintained v event =
  match event with
  | Ins (name, t, ttl) ->
    (try
       Maintained.insert v ~relation:name t
         ~texp:(Time.add (Maintained.now v) (Time.of_int ttl))
     with Invalid_argument _ -> v (* arity-mismatched base occurrence *))
  | Del (name, t) ->
    (try Maintained.delete v ~relation:name t with Invalid_argument _ -> v)
  | Tick d -> Maintained.advance v ~to_:(Time.add (Maintained.now v) (Time.of_int d))

let run_scenario strategy (e, bindings) events =
  let env0 = Eval.env_of_list bindings in
  let v = ref (Maintained.materialise ~strategy ~env:env0 ~tau:Time.zero e) in
  let state = ref (bindings, Time.zero) in
  List.for_all
    (fun event ->
      (* Skip arity-mismatched inserts/deletes consistently on both sides. *)
      let name_arity n = Relation.arity (List.assoc n bindings) in
      let skip =
        match event with
        | Ins (n, t, _) | Del (n, t) -> Tuple.arity t <> name_arity n
        | Tick _ -> false
      in
      if skip then true
      else begin
        let bindings', now' = apply_reference (fst !state) (snd !state) event in
        state := (bindings', now');
        v := apply_maintained !v event;
        let fresh =
          Eval.relation_at ~strategy ~env:(Eval.env_of_list bindings') ~tau:now' e
        in
        Relation.equal (Maintained.read !v) fresh
      end)
    events

let scenario_gen =
  QCheck2.Gen.pair (Generators.expr_and_env ())
    (QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 15) event_gen)

let prop_maintained_equals_recomputation =
  Generators.qtest
    "maintained view = fresh evaluation after any update/advance mix"
    ~count:400 scenario_gen
    (fun (expr_env, events) -> run_scenario Aggregate.Exact expr_env events)

let prop_maintained_conservative =
  Generators.qtest "same, under the conservative aggregation strategy"
    ~count:200 scenario_gen
    (fun (expr_env, events) -> run_scenario Aggregate.Conservative expr_env events)

let suite =
  [ Alcotest.test_case "insert/mask/reveal through a difference" `Quick
      test_insert_propagates;
    Alcotest.test_case "updates rewrite aggregate partitions" `Quick
      test_update_overwrites_texp;
    Alcotest.test_case "advance refreshes non-monotonic nodes locally" `Quick
      test_advance_refreshes_locally;
    Alcotest.test_case "guards" `Quick test_guards;
    prop_maintained_equals_recomputation;
    prop_maintained_conservative ]
