(* Machine checks of the paper's three theorems on randomly generated
   expressions and databases. *)

open Expirel_core

let gen_with_tau gen =
  QCheck2.Gen.pair gen Generators.time_finite

(* Theorem 1: for a monotonic expression materialised at tau, gradually
   expiring the materialisation yields exactly the fresh evaluation at
   every later tau' — including expiration times. *)
let prop_theorem1 =
  Generators.qtest "Theorem 1: monotonic snapshots commute with expiration"
    ~count:300
    (gen_with_tau (Generators.expr_and_env ~allow_non_monotonic:false ()))
    (fun ((e, bindings), tau) ->
      let env = Eval.env_of_list bindings in
      let materialised = Eval.relation_at ~env ~tau e in
      List.for_all
        (fun tau' ->
          if Time.(tau' < tau) then true
          else
            Relation.equal
              (Relation.exp tau' materialised)
              (Eval.relation_at ~env ~tau:tau' e))
        Generators.sample_times)

(* Theorem 2: for any expression (aggregation and difference included),
   the properly expired materialisation equals the fresh evaluation at
   every tau' with tau <= tau' < texp(e).  Checked for each aggregation
   strategy, since each determines its own texp(e). *)
let theorem2_for strategy =
  Generators.qtest
    (Printf.sprintf "Theorem 2 under %s strategy"
       (match strategy with
        | Aggregate.Conservative -> "conservative (Eq 8)"
        | Aggregate.Neutral -> "neutral-set (Table 1)"
        | Aggregate.Exact -> "exact (Eq 9)"
        | Aggregate.Within t -> Printf.sprintf "within %.1f" t))
    ~count:300
    (gen_with_tau (Generators.expr_and_env ()))
    (fun ((e, bindings), tau) ->
      let env = Eval.env_of_list bindings in
      let { Eval.relation = materialised; texp } = Eval.run ~strategy ~env ~tau e in
      List.for_all
        (fun tau' ->
          if Time.(tau' < tau) || Time.(tau' >= texp) then true
          else
            Relation.equal
              (Relation.exp tau' materialised)
              (Eval.relation_at ~strategy ~env ~tau:tau' e))
        Generators.sample_times)

let prop_theorem2_conservative = theorem2_for Aggregate.Conservative
let prop_theorem2_neutral = theorem2_for Aggregate.Neutral
let prop_theorem2_exact = theorem2_for Aggregate.Exact

(* Theorem 2's bound is tight for difference: at texp(e) itself the
   materialisation must actually differ from a recomputation whenever the
   expiration was caused by a reappearing tuple. *)
let prop_difference_bound_tight =
  Generators.qtest "difference: invalid at texp(e) when caused by reappearance"
    ~count:300
    (QCheck2.Gen.pair (Generators.relation ~arity:1) (Generators.relation ~arity:1))
    (fun (r, s) ->
      let env = Eval.env_of_list [ "R", r; "S", s ] in
      let e = Algebra.(diff (base "R") (base "S")) in
      let { Eval.relation = materialised; texp } = Eval.run ~env ~tau:Time.zero e in
      match texp with
      | Time.Inf -> true
      | Time.Fin _ ->
        (* texp(e) finite for a difference only via case (3a); then the
           recomputation at texp(e) contains a tuple the materialisation
           lacks. *)
        not
          (Relation.equal_tuples
             (Relation.exp texp materialised)
             (Eval.relation_at ~env ~tau:texp e)))

(* Theorem 3: the patched difference view equals a fresh evaluation at
   every later time, with no recomputation. *)
let prop_theorem3 =
  Generators.qtest "Theorem 3: patched difference never needs recomputation"
    ~count:300
    (QCheck2.Gen.pair
       (QCheck2.Gen.pair
          (* Monotonic operands: Theorem 3 assumes the difference's
             argument relations evolve by expiration alone, which is what
             Theorem 1 guarantees for monotonic subexpressions. *)
          (Generators.expr ~allow_non_monotonic:false ~arity:2 ())
          (Generators.expr ~allow_non_monotonic:false ~arity:2 ()))
       Generators.env_bindings)
    (fun ((left, right), bindings) ->
      let env = Eval.env_of_list bindings in
      let patched = ref (Patch.create ~env ~tau:Time.zero ~left ~right) in
      let fresh tau = Eval.relation_at ~env ~tau Algebra.(diff left right) in
      List.for_all
        (fun tau ->
          if Time.is_infinite tau then true
          else begin
            let served, next = Patch.read !patched ~tau in
            patched := next;
            Relation.equal served (fresh tau)
          end)
        Generators.sample_times)

let suite =
  [ prop_theorem1;
    prop_theorem2_conservative;
    prop_theorem2_neutral;
    prop_theorem2_exact;
    prop_difference_bound_tight;
    prop_theorem3 ]
