open Expirel_core

let mono = Algebra.(join (Predicate.eq_cols 1 3) (base "Pol") (base "El"))
let with_diff = Algebra.(diff (project [ 1 ] (base "Pol")) (project [ 1 ] (base "El")))
let with_agg = Algebra.(project [ 2; 3 ] (aggregate [ 2 ] Aggregate.Count (base "Pol")))

let test_classification () =
  Alcotest.(check bool) "SPCU + join is monotonic" true (Monotone.is_monotonic mono);
  Alcotest.(check bool) "difference is not" false (Monotone.is_monotonic with_diff);
  Alcotest.(check bool) "aggregation is not" false (Monotone.is_monotonic with_agg);
  Alcotest.(check bool) "intersection is monotonic" true
    (Monotone.is_monotonic Algebra.(intersect (base "Pol") (base "El")))

let test_counting () =
  let nested = Algebra.(diff with_diff (select Predicate.True with_agg)) in
  (match Monotone.classify nested with
   | `Non_monotonic 3 -> ()
   | `Non_monotonic k -> Alcotest.failf "expected 3 nodes, got %d" k
   | `Monotonic -> Alcotest.fail "expected non-monotonic");
  Alcotest.(check int) "nodes listed" 3
    (List.length (Monotone.non_monotonic_nodes nested));
  (match Monotone.classify mono with
   | `Monotonic -> ()
   | `Non_monotonic _ -> Alcotest.fail "join misclassified")

let prop_generator_respects_gate =
  Generators.qtest "allow_non_monotonic:false yields monotonic expressions"
    (QCheck2.Gen.bind (QCheck2.Gen.int_range 1 3) (fun arity ->
         Generators.expr ~allow_non_monotonic:false ~arity ()))
    Monotone.is_monotonic

let suite =
  [ Alcotest.test_case "operator classification" `Quick test_classification;
    Alcotest.test_case "counting non-monotonic nodes" `Quick test_counting;
    prop_generator_respects_gate ]
