open Expirel_core

let fin = Time.of_int
let iv a b = Interval.make (fin a) (fin b)

let test_make () =
  let i = iv 2 5 in
  Alcotest.(check bool) "lo" true (Time.equal (fst (Interval.bounds i)) (fin 2));
  Alcotest.(check bool) "hi" true (Time.equal (snd (Interval.bounds i)) (fin 5));
  Alcotest.check_raises "empty interval rejected"
    (Invalid_argument "Interval.make: [5, 5[ is empty") (fun () ->
      ignore (Interval.make (fin 5) (fin 5)));
  Alcotest.(check bool) "make_opt empty" true (Interval.make_opt (fin 5) (fin 3) = None)

let test_mem () =
  let i = iv 2 5 in
  Alcotest.(check bool) "lo included" true (Interval.mem (fin 2) i);
  Alcotest.(check bool) "hi excluded" false (Interval.mem (fin 5) i);
  Alcotest.(check bool) "inside" true (Interval.mem (fin 4) i);
  Alcotest.(check bool) "unbounded" true
    (Interval.mem (fin 1000) (Interval.from (fin 3)));
  Alcotest.(check bool) "inf not member of bounded" false
    (Interval.mem Time.Inf (iv 0 100));
  Alcotest.(check bool) "inf member of unbounded" true
    (Interval.mem Time.Inf (Interval.from (fin 0)))

let test_set_ops () =
  Alcotest.(check bool) "overlap" true (Interval.overlaps (iv 0 5) (iv 4 9));
  Alcotest.(check bool) "no overlap when adjacent" false
    (Interval.overlaps (iv 0 5) (iv 5 9));
  Alcotest.(check bool) "adjacent" true (Interval.adjacent (iv 0 5) (iv 5 9));
  (match Interval.inter (iv 0 5) (iv 3 9) with
   | Some i -> Alcotest.(check bool) "inter" true (Interval.equal i (iv 3 5))
   | None -> Alcotest.fail "expected intersection");
  Alcotest.(check bool) "disjoint inter" true (Interval.inter (iv 0 2) (iv 3 4) = None);
  (match Interval.union (iv 0 5) (iv 5 9) with
   | Some i -> Alcotest.(check bool) "adjacent union merges" true (Interval.equal i (iv 0 9))
   | None -> Alcotest.fail "expected union");
  Alcotest.(check bool) "disjoint union is not an interval" true
    (Interval.union (iv 0 2) (iv 3 4) = None);
  Alcotest.(check bool) "subset" true (Interval.subset (iv 2 4) (iv 0 9));
  Alcotest.(check bool) "not subset" false (Interval.subset (iv 2 14) (iv 0 9))

let test_duration () =
  Alcotest.(check bool) "finite" true (Time.equal (Interval.duration (iv 3 10)) (fin 7));
  Alcotest.(check bool) "unbounded" true
    (Time.equal (Interval.duration (Interval.from (fin 3))) Time.Inf)

let pair_gen = QCheck2.Gen.pair Generators.interval Generators.interval

let prop_inter_is_conjunction =
  Generators.qtest "membership of inter = both" pair_gen (fun (a, b) ->
      List.for_all
        (fun t ->
          let in_inter =
            match Interval.inter a b with
            | Some i -> Interval.mem t i
            | None -> false
          in
          in_inter = (Interval.mem t a && Interval.mem t b))
        Generators.sample_times)

let prop_union_is_disjunction =
  Generators.qtest "membership of union = either (when defined)" pair_gen
    (fun (a, b) ->
      match Interval.union a b with
      | None -> true
      | Some u ->
        (* Union is only defined for overlapping/adjacent intervals, in
           which case coverage is exactly the disjunction. *)
        List.for_all
          (fun t -> Interval.mem t u = (Interval.mem t a || Interval.mem t b))
          Generators.sample_times)

let suite =
  [ Alcotest.test_case "construction" `Quick test_make;
    Alcotest.test_case "membership (half-open)" `Quick test_mem;
    Alcotest.test_case "inter/union/subset/adjacent" `Quick test_set_ops;
    Alcotest.test_case "duration" `Quick test_duration;
    prop_inter_is_conjunction;
    prop_union_is_disjunction ]
