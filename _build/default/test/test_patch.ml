open Expirel_core
open Expirel_workload

let fin = Time.of_int
let env = News.figure1_env
let left = Algebra.(project [ 1 ] (base "Pol"))
let right = Algebra.(project [ 1 ] (base "El"))

let test_queue_contents () =
  let p = Patch.create ~env ~tau:Time.zero ~left ~right in
  (* Critical tuples: <1> (10 > 5) and <2> (15 > 3); <4> is in El only. *)
  Alcotest.(check int) "two pending patches" 2 (Patch.pending p);
  Alcotest.(check (option string)) "earliest patch at texp_S = 3" (Some "3")
    (Option.map Time.to_string (Patch.next_patch_at p))

let test_paper_timeline () =
  let p = ref (Patch.create ~env ~tau:Time.zero ~left ~right) in
  let read tau =
    let r, next = Patch.read !p ~tau:(fin tau) in
    p := next;
    List.map (fun (t, e) -> Tuple.to_string t ^ "@" ^ Time.to_string e)
      (Relation.to_list r)
  in
  Alcotest.(check (list string)) "at 0" [ "<3>@10" ] (read 0);
  Alcotest.(check (list string)) "at 3: <2> patched in" [ "<2>@15"; "<3>@10" ] (read 3);
  Alcotest.(check (list string)) "at 5: <1> patched in"
    [ "<1>@10"; "<2>@15"; "<3>@10" ] (read 5);
  Alcotest.(check (list string)) "at 12: <1>,<3> expired" [ "<2>@15" ] (read 12);
  Alcotest.(check (list string)) "at 15: all gone" [] (read 15);
  Alcotest.(check int) "queue drained" 0 (Patch.pending !p)

let test_backwards_rejected () =
  let p = Patch.create ~env ~tau:(fin 5) ~left ~right in
  Alcotest.check_raises "advance backwards"
    (Invalid_argument "Patch.advance: moving backwards") (fun () ->
      ignore (Patch.advance p ~to_:(fin 2)))

let test_arity_check () =
  Alcotest.check_raises "union-incompatible operands"
    (Errors.Arity_mismatch "Patch.create: 1 vs 2") (fun () ->
      ignore (Patch.create ~env ~tau:Time.zero ~left ~right:(Algebra.base "El")))

let test_peek_pure () =
  let p = Patch.create ~env ~tau:Time.zero ~left ~right in
  let a = Patch.peek p ~tau:(fin 5) in
  let b = Patch.peek p ~tau:(fin 5) in
  Alcotest.(check bool) "peek does not consume" true (Relation.equal a b);
  Alcotest.(check int) "state untouched" 2 (Patch.pending p)

let prop_pending_bounded_by_intersection =
  Generators.qtest "queue size <= |R n S|" ~count:200
    (QCheck2.Gen.pair (Generators.relation ~arity:2) (Generators.relation ~arity:2))
    (fun (r, s) ->
      let env = Eval.env_of_list [ "R", r; "S", s ] in
      let p =
        Patch.create ~env ~tau:Time.zero ~left:(Algebra.base "R")
          ~right:(Algebra.base "S")
      in
      let inter =
        Eval.relation_at ~env ~tau:Time.zero Algebra.(intersect (base "R") (base "S"))
      in
      Patch.pending p <= Relation.cardinal inter)

let prop_advance_monotone_state =
  Generators.qtest "advance is cumulative: stepwise = direct" ~count:200
    (QCheck2.Gen.pair (Generators.relation ~arity:1) (Generators.relation ~arity:1))
    (fun (r, s) ->
      let env = Eval.env_of_list [ "R", r; "S", s ] in
      let fresh () =
        Patch.create ~env ~tau:Time.zero ~left:(Algebra.base "R")
          ~right:(Algebra.base "S")
      in
      let stepped =
        List.fold_left
          (fun p tau -> Patch.advance p ~to_:(fin tau))
          (fresh ()) [ 2; 5; 9; 16 ]
      in
      let direct = Patch.advance (fresh ()) ~to_:(fin 16) in
      Relation.equal
        (fst (Patch.read stepped ~tau:(fin 16)))
        (fst (Patch.read direct ~tau:(fin 16))))

let suite =
  [ Alcotest.test_case "helper queue (Section 3.4.2)" `Quick test_queue_contents;
    Alcotest.test_case "paper example timeline" `Quick test_paper_timeline;
    Alcotest.test_case "time only moves forward" `Quick test_backwards_rejected;
    Alcotest.test_case "arity checking" `Quick test_arity_check;
    Alcotest.test_case "peek is pure" `Quick test_peek_pure;
    prop_pending_bounded_by_intersection;
    prop_advance_monotone_state ]
