open Expirel_core
open Expirel_storage

let fin = Time.of_int

let sample_records =
  [ Wal.Create_table { name = "pol"; columns = [ "uid"; "deg" ] };
    Wal.Create_table { name = "weird name"; columns = [ "a%b"; "c d" ] };
    Wal.Insert { table = "pol"; tuple = Tuple.ints [ 1; 25 ]; texp = fin 10 };
    Wal.Insert
      { table = "pol";
        tuple =
          Tuple.of_list
            [ Value.Str "spaces and %percent\nnewline";
              Value.Float 3.25;
              Value.Bool true;
              Value.Null ];
        texp = Time.Inf
      };
    Wal.Delete { table = "pol"; tuple = Tuple.ints [ 1; 25 ] };
    Wal.Advance (fin 42);
    Wal.Drop_table "pol" ]

let test_roundtrip () =
  List.iter
    (fun record ->
      let line = Wal.encode record in
      Alcotest.(check bool) "single line" false (String.contains line '\n');
      match Wal.decode line with
      | Ok decoded ->
        Alcotest.(check string) "re-encoding stable" line (Wal.encode decoded)
      | Error msg -> Alcotest.failf "decode failed on %S: %s" line msg)
    sample_records

let test_decode_errors () =
  List.iter
    (fun line ->
      match Wal.decode line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected decode error for %S" line)
    [ ""; "nonsense"; "insert pol"; "insert pol notatime i1"; "advance x";
      "insert pol 5 q1"; "create pol"; "insert pol 5 i1 %Z" ]

let with_temp_log f =
  let dir = Filename.temp_dir "expirel" "wal" in
  let path = Filename.concat dir "test.log" in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists path then Sys.remove path;
      Sys.rmdir dir)
    (fun () -> f path)

let test_write_replay () =
  with_temp_log (fun path ->
      let w = Wal.Writer.append_to path in
      List.iter (Wal.Writer.write w) sample_records;
      Wal.Writer.close w;
      let replayed = ref [] in
      let count = Wal.replay path ~f:(fun r -> replayed := r :: !replayed) in
      Alcotest.(check int) "all records" (List.length sample_records) count;
      Alcotest.(check (list string)) "in order, identical"
        (List.map Wal.encode sample_records)
        (List.map Wal.encode (List.rev !replayed)))

let test_torn_tail () =
  with_temp_log (fun path ->
      let w = Wal.Writer.append_to path in
      List.iter (Wal.Writer.write w) sample_records;
      Wal.Writer.close w;
      (* Simulate a crash mid-append. *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "insert pol 9 i1 i2 TRUNC";
      close_out oc;
      let count = Wal.replay path ~f:(fun _ -> ()) in
      Alcotest.(check int) "clean prefix only" (List.length sample_records) count)

let test_missing_file () =
  Alcotest.(check int) "missing file is empty" 0
    (Wal.replay "/nonexistent/path/wal.log" ~f:(fun _ -> ()))

let record_gen =
  let open QCheck2.Gen in
  let name = map (String.map (fun c -> c)) (string_size ~gen:printable (int_range 1 8)) in
  oneof
    [ (let* n = name in
       let* cols = list_size (int_range 1 3) name in
       return (Wal.Create_table { name = n; columns = cols }));
      (let* n = name in
       let* t = Generators.tuple ~arity:2 in
       let* e = Generators.texp in
       return (Wal.Insert { table = n; tuple = t; texp = e }));
      (let* n = name in
       let* t = Generators.tuple ~arity:2 in
       return (Wal.Delete { table = n; tuple = t }));
      map (fun n -> Wal.Advance (Time.of_int n)) (int_range 0 1000);
      map (fun n -> Wal.Drop_table n) name ]

let prop_roundtrip =
  Generators.qtest "encode/decode round-trips arbitrary records" ~count:300
    record_gen (fun record ->
      match Wal.decode (Wal.encode record) with
      | Ok decoded -> Wal.encode decoded = Wal.encode record
      | Error _ -> false)

let suite =
  [ Alcotest.test_case "round-trips (escaping included)" `Quick test_roundtrip;
    Alcotest.test_case "malformed lines rejected" `Quick test_decode_errors;
    Alcotest.test_case "write then replay" `Quick test_write_replay;
    Alcotest.test_case "torn tail tolerated" `Quick test_torn_tail;
    Alcotest.test_case "missing log file" `Quick test_missing_file;
    prop_roundtrip ]
