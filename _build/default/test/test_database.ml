open Expirel_core
open Expirel_storage

let fin = Time.of_int

let setup ?policy () =
  let db = Database.create ?policy () in
  let (_ : Table.t) = Database.create_table db ~name:"pol" ~columns:[ "uid"; "deg" ] in
  db

let test_catalog () =
  let db = setup () in
  let (_ : Table.t) = Database.create_table db ~name:"el" ~columns:[ "uid"; "deg" ] in
  Alcotest.(check (list string)) "table names" [ "el"; "pol" ] (Database.table_names db);
  Alcotest.check_raises "duplicate name"
    (Invalid_argument "Database.create_table: pol exists") (fun () ->
      ignore (Database.create_table db ~name:"pol" ~columns:[ "x" ]));
  Alcotest.(check bool) "drop" true (Database.drop_table db "el");
  Alcotest.(check bool) "drop absent" false (Database.drop_table db "el");
  Alcotest.check_raises "unknown table" (Errors.Unknown_relation "el") (fun () ->
      ignore (Database.table_exn db "el"))

let test_insert_guards () =
  let db = setup () in
  Database.advance_to db (fin 5);
  Alcotest.check_raises "texp in the past"
    (Invalid_argument "Database.insert: texp 3 <= now 5") (fun () ->
      Database.insert db "pol" (Tuple.ints [ 1; 2 ]) ~texp:(fin 3));
  Alcotest.check_raises "non-positive ttl"
    (Invalid_argument "Database.insert_ttl: ttl <= 0") (fun () ->
      Database.insert_ttl db "pol" (Tuple.ints [ 1; 2 ]) ~ttl:0);
  Database.insert_ttl db "pol" (Tuple.ints [ 1; 2 ]) ~ttl:5;
  Alcotest.(check int) "ttl insert lands" 1
    (Relation.cardinal (Database.snapshot db "pol"))

let test_clock () =
  let db = setup () in
  Database.advance_to db (fin 3);
  Alcotest.check_raises "backwards"
    (Invalid_argument "Database.advance_to: moving backwards") (fun () ->
      Database.advance_to db (fin 1));
  Database.tick db;
  Alcotest.(check string) "tick" "4" (Time.to_string (Database.now db))

let test_eager_triggers () =
  let db = setup ~policy:Database.Eager () in
  let (_ : Table.t) = Database.create_table db ~name:"el" ~columns:[ "uid"; "deg" ] in
  Database.insert db "pol" (Tuple.ints [ 1; 1 ]) ~texp:(fin 7);
  Database.insert db "el" (Tuple.ints [ 2; 2 ]) ~texp:(fin 3);
  Database.insert db "pol" (Tuple.ints [ 3; 3 ]) ~texp:(fin 3);
  let fired = ref [] in
  Trigger.register (Database.triggers db) ~name:"log" ~table:"*" (fun e ->
      fired :=
        Printf.sprintf "%s%s@%s" e.Trigger.table
          (Tuple.to_string e.Trigger.tuple)
          (Time.to_string e.Trigger.fired_at)
        :: !fired);
  Database.advance_to db (fin 10);
  (* Global (texp, table, tuple) order; fired_at = each tuple's texp. *)
  Alcotest.(check (list string)) "firing order"
    [ "el<2, 2>@3"; "pol<3, 3>@3"; "pol<1, 1>@7" ]
    (List.rev !fired);
  Alcotest.(check int) "eagerly removed" 0
    (Table.physical_count (Database.table_exn db "pol"))

let test_lazy_vacuum () =
  let db = Database.create ~policy:Database.Lazy () in
  let (_ : Table.t) = Database.create_table db ~name:"pol" ~columns:[ "uid"; "deg" ] in
  Database.insert db "pol" (Tuple.ints [ 1; 1 ]) ~texp:(fin 3);
  Database.insert db "pol" (Tuple.ints [ 2; 2 ]) ~texp:(fin 20);
  Database.advance_to db (fin 10);
  (* Logically invisible, physically present. *)
  Alcotest.(check int) "snapshot hides expired" 1
    (Relation.cardinal (Database.snapshot db "pol"));
  Alcotest.(check int) "physically still there" 2
    (Table.physical_count (Database.table_exn db "pol"));
  let fired = ref [] in
  Trigger.register (Database.triggers db) ~name:"log" ~table:"pol" (fun e ->
      fired := Time.to_string e.Trigger.fired_at :: !fired);
  Alcotest.(check int) "vacuum reclaims" 1 (Database.vacuum db);
  (* Lazy triggers fire late: at vacuum time, not at texp. *)
  Alcotest.(check (list string)) "late firing time" [ "10" ] !fired;
  Alcotest.(check int) "physical after vacuum" 1
    (Table.physical_count (Database.table_exn db "pol"));
  Alcotest.(check int) "eager vacuum is a no-op" 0
    (Database.vacuum (setup ~policy:Database.Eager ()))

let test_query () =
  let db = setup () in
  Database.insert db "pol" (Tuple.ints [ 1; 25 ]) ~texp:(fin 10);
  Database.insert db "pol" (Tuple.ints [ 2; 25 ]) ~texp:(fin 15);
  Database.advance_to db (fin 12);
  let { Eval.relation; _ } =
    Database.query db Algebra.(project [ 2 ] (base "pol"))
  in
  Alcotest.(check int) "evaluates at now" 1 (Relation.cardinal relation);
  Alcotest.(check bool) "env exposes snapshots" true
    (match Database.env db "pol" with
     | Some r -> Relation.cardinal r = 1
     | None -> false)

(* The observable states under eager and lazy policies coincide. *)
let prop_eager_lazy_equivalent =
  Generators.qtest "eager and lazy agree on logical states" ~count:150
    (QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 30)
       (QCheck2.Gen.pair (Generators.tuple ~arity:2)
          (QCheck2.Gen.pair (QCheck2.Gen.int_range 0 10) (QCheck2.Gen.int_range 1 15))))
    (fun rows ->
      let run policy =
        let db = Database.create ~policy () in
        let (_ : Table.t) = Database.create_table db ~name:"t" ~columns:[ "a"; "b" ] in
        let states =
          List.map
            (fun (tuple, (advance_by, ttl)) ->
              Database.advance_to db
                (Time.add (Database.now db) (fin advance_by));
              Database.insert_ttl db "t" tuple ~ttl;
              Database.snapshot db "t")
            rows
        in
        states
      in
      List.for_all2 Relation.equal (run Database.Eager) (run Database.Lazy))

let suite =
  [ Alcotest.test_case "catalogue" `Quick test_catalog;
    Alcotest.test_case "insert guards" `Quick test_insert_guards;
    Alcotest.test_case "forward-only clock" `Quick test_clock;
    Alcotest.test_case "eager expiration fires triggers in order" `Quick
      test_eager_triggers;
    Alcotest.test_case "lazy policy: invisible, vacuumed late" `Quick
      test_lazy_vacuum;
    Alcotest.test_case "queries run at the clock" `Quick test_query;
    prop_eager_lazy_equivalent ]
