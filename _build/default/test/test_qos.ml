open Expirel_core
open Expirel_workload

let fin = Time.of_int
let env = News.figure1_env

let difference = Algebra.(diff (project [ 1 ] (base "Pol")) (project [ 1 ] (base "El")))
let histogram = Algebra.(aggregate [ 2 ] Aggregate.Count (base "Pol"))
let join = Algebra.(join (Predicate.eq_cols 1 3) (base "Pol") (base "El"))

let test_remaining () =
  Alcotest.(check string) "Pol at 0" "10"
    (Time.to_string (Qos.remaining_of ~env ~tau:Time.zero "Pol"));
  Alcotest.(check string) "El at 0" "2"
    (Time.to_string (Qos.remaining_of ~env ~tau:Time.zero "El"));
  Alcotest.(check string) "El at 4 (only <1,75>@5 left)" "1"
    (Time.to_string (Qos.remaining_of ~env ~tau:(fin 4) "El"));
  Alcotest.(check string) "empty relation: infinite" "inf"
    (Time.to_string (Qos.remaining_of ~env ~tau:(fin 50) "El"));
  Alcotest.check_raises "unknown base" (Errors.Unknown_relation "nope") (fun () ->
      ignore (Qos.remaining_of ~env ~tau:Time.zero "nope"))

let remaining_at tau name = Qos.remaining_of ~env ~tau name

let test_floors () =
  let floor e = Time.to_string (Qos.validity_floor ~remaining:(remaining_at Time.zero) e) in
  Alcotest.(check string) "monotonic: infinite" "inf" (floor join);
  (* Difference: bounded by El's shortest remaining lifetime (2); the
     true texp(e) is 3. *)
  Alcotest.(check string) "difference floor" "2" (floor difference);
  (* Aggregation: bounded by Pol's shortest remaining lifetime (10);
     the true texp(e) is exactly 10 here. *)
  Alcotest.(check string) "aggregation floor" "10" (floor histogram)

let test_admission () =
  Alcotest.(check bool) "join guaranteed forever" true
    (Qos.admit ~env ~tau:Time.zero ~required:1000 join = `Guaranteed);
  Alcotest.(check bool) "histogram guaranteed for 10" true
    (Qos.admit ~env ~tau:Time.zero ~required:10 histogram = `Guaranteed);
  Alcotest.(check bool) "but not for 11" true
    (Qos.admit ~env ~tau:Time.zero ~required:11 histogram = `Must_evaluate);
  Alcotest.(check bool) "difference needs evaluation beyond 2" true
    (Qos.admit ~env ~tau:Time.zero ~required:3 difference = `Must_evaluate)

(* Soundness: the floor never exceeds the actual expression lifetime. *)
let prop_floor_sound =
  Generators.qtest "tau + floor <= texp(e)" ~count:300
    (QCheck2.Gen.pair (Generators.expr_and_env ()) Generators.time_finite)
    (fun ((e, bindings), tau) ->
      let env = Eval.env_of_list bindings in
      let remaining = Qos.remaining_of ~env ~tau in
      let floor = Qos.validity_floor ~remaining e in
      let texp = Eval.expression_texp ~env ~tau e in
      Time.(Time.add tau floor <= texp) || Time.is_infinite floor && Time.is_infinite texp)

(* Admission never over-promises. *)
let prop_admission_sound =
  Generators.qtest "`Guaranteed implies the full requirement" ~count:300
    (QCheck2.Gen.tup3 (Generators.expr_and_env ()) Generators.time_finite
       (QCheck2.Gen.int_range 0 30))
    (fun ((e, bindings), tau, required) ->
      let env = Eval.env_of_list bindings in
      match Qos.admit ~env ~tau ~required e with
      | `Must_evaluate -> true
      | `Guaranteed ->
        Time.(Eval.expression_texp ~env ~tau e
              >= Time.add tau (Time.of_int required)))

let suite =
  [ Alcotest.test_case "remaining lifetimes" `Quick test_remaining;
    Alcotest.test_case "validity floors" `Quick test_floors;
    Alcotest.test_case "QoS admission" `Quick test_admission;
    prop_floor_sound;
    prop_admission_sound ]
