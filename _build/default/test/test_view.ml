open Expirel_core
open Expirel_workload

let fin = Time.of_int
let env = News.figure1_env
let difference = Algebra.(diff (project [ 1 ] (base "Pol")) (project [ 1 ] (base "El")))
let histogram = Algebra.(project [ 2; 3 ] (aggregate [ 2 ] Aggregate.Count (base "Pol")))
let join = Algebra.(join (Predicate.eq_cols 1 3) (base "Pol") (base "El"))

let test_materialise () =
  let v = View.materialise ~env ~tau:Time.zero difference in
  Alcotest.(check string) "texp(e)" "3" (Time.to_string v.View.texp);
  Alcotest.(check int) "contents" 1 (Relation.cardinal v.View.contents);
  Alcotest.(check bool) "computed_at" true (Time.equal v.View.computed_at Time.zero)

let test_read_lifecycle () =
  let v = View.materialise ~env ~tau:Time.zero histogram in
  (match View.read v ~tau:(fin 5) with
   | `Valid r -> Alcotest.(check int) "still two rows at 5" 2 (Relation.cardinal r)
   | `Expired _ -> Alcotest.fail "valid until 10");
  (match View.read v ~tau:(fin 10) with
   | `Expired t -> Alcotest.(check string) "expired at 10" "10" (Time.to_string t)
   | `Valid _ -> Alcotest.fail "must be expired at texp(e)");
  (match View.read v ~tau:(fin 9) with
   | `Valid r ->
     (* Both rows carry texp 10 (the change point of partition 25 and the
        emptying of partition 35), so both are still visible at 9. *)
     Alcotest.(check int) "both rows at 9" 2 (Relation.cardinal r)
   | `Expired _ -> Alcotest.fail "valid at 9")

let test_refresh () =
  let v = View.materialise ~env ~tau:Time.zero histogram in
  let v' = View.refresh ~env ~tau:(fin 10) v in
  Alcotest.(check bool) "recomputed at 10" true (Time.equal v'.View.computed_at (fin 10));
  (match View.read v' ~tau:(fin 12) with
   | `Valid r ->
     Alcotest.(check bool) "histogram now <25,1>" true
       (Relation.equal_tuples r (Relation.of_list ~arity:2 [ Tuple.ints [ 25; 1 ], fin 15 ]))
   | `Expired _ -> Alcotest.fail "fresh view valid")

let test_read_schrodinger () =
  let v = View.materialise ~env ~tau:Time.zero difference in
  (match View.read_schrodinger v ~tau:(fin 1) ~policy:Validity.Prefer_delay with
   | `Valid _ -> ()
   | `Observe _ -> Alcotest.fail "valid at 1");
  (match View.read_schrodinger v ~tau:(fin 7) ~policy:Validity.Prefer_delay with
   | `Observe (Validity.Delay_until t) ->
     Alcotest.(check string) "delay to 15" "15" (Time.to_string t)
   | _ -> Alcotest.fail "expected delay");
  (* After all critical tuples died, the view answers again — with no
     refresh in between. *)
  (match View.read_schrodinger v ~tau:(fin 20) ~policy:Validity.Prefer_delay with
   | `Valid r -> Alcotest.(check int) "empty but correct" 0 (Relation.cardinal r)
   | `Observe _ -> Alcotest.fail "valid from 15 on")

let test_maintenance_times () =
  Alcotest.(check (list string)) "monotonic: never" []
    (List.map Time.to_string
       (View.maintenance_times ~env ~from:Time.zero ~horizon:(fin 100) join));
  Alcotest.(check (list string)) "histogram: at 10" [ "10" ]
    (List.map Time.to_string
       (View.maintenance_times ~env ~from:Time.zero ~horizon:(fin 100) histogram));
  (* Difference: recompute at 3 (tuple <2> reappears), then at 5
     (tuple <1> reappears), then stable. *)
  Alcotest.(check (list string)) "difference: 3 then 5" [ "3"; "5" ]
    (List.map Time.to_string
       (View.maintenance_times ~env ~from:Time.zero ~horizon:(fin 100) difference))

let prop_read_valid_matches_recomputation =
  Generators.qtest "read = recomputation while unexpired" ~count:200
    (QCheck2.Gen.pair (Generators.expr_and_env ()) Generators.time_finite)
    (fun ((e, bindings), tau) ->
      let env = Eval.env_of_list bindings in
      let v = View.materialise ~env ~tau e in
      List.for_all
        (fun tau' ->
          if Time.is_infinite tau' || Time.(tau' < tau) then true
          else
            match View.read v ~tau:tau' with
            | `Valid r -> Relation.equal_tuples r (Eval.relation_at ~env ~tau:tau' e)
            | `Expired _ -> Time.(tau' >= v.View.texp))
        Generators.sample_times)

let prop_maintenance_strictly_increasing =
  Generators.qtest "maintenance schedule strictly increases" ~count:100
    (Generators.expr_and_env ())
    (fun (e, bindings) ->
      let env = Eval.env_of_list bindings in
      let times = View.maintenance_times ~env ~from:Time.zero ~horizon:(fin 60) e in
      let rec increasing = function
        | [] | [ _ ] -> true
        | a :: (b :: _ as rest) -> Time.(a < b) && increasing rest
      in
      increasing times)

let prop_monotonic_views_never_recompute =
  Generators.qtest "Theorem 1 consequence: empty schedules" ~count:100
    (Generators.expr_and_env ~allow_non_monotonic:false ())
    (fun (e, bindings) ->
      let env = Eval.env_of_list bindings in
      View.maintenance_times ~env ~from:Time.zero ~horizon:(fin 60) e = [])

let suite =
  [ Alcotest.test_case "materialisation" `Quick test_materialise;
    Alcotest.test_case "read through the lifecycle" `Quick test_read_lifecycle;
    Alcotest.test_case "refresh recomputes" `Quick test_refresh;
    Alcotest.test_case "Schrödinger reads" `Quick test_read_schrodinger;
    Alcotest.test_case "maintenance schedules" `Quick test_maintenance_times;
    prop_read_valid_matches_recomputation;
    prop_maintenance_strictly_increasing;
    prop_monotonic_views_never_recompute ]
