open Expirel_core
open Expirel_sqlx

let parse = Parser.parse_statement

let test_ddl () =
  (match parse "CREATE TABLE pol (uid, deg)" with
   | Ast.Create_table ("pol", [ "uid"; "deg" ]) -> ()
   | s -> Alcotest.failf "unexpected %s" (Format.asprintf "%a" Ast.pp_statement s));
  (match parse "DROP TABLE pol;" with
   | Ast.Drop_table "pol" -> ()
   | _ -> Alcotest.fail "drop")

let test_insert_variants () =
  (match parse "INSERT INTO pol VALUES (1, 25) EXPIRES 10" with
   | Ast.Insert { table = "pol"; values = [ Value.Int 1; Value.Int 25 ];
                  expires = Ast.At 10 } -> ()
   | _ -> Alcotest.fail "expires at");
  (match parse "INSERT INTO s VALUES ('k', 3.5, TRUE, NULL) EXPIRES NEVER" with
   | Ast.Insert { values = [ Value.Str "k"; Value.Float 3.5; Value.Bool true;
                             Value.Null ]; expires = Ast.Never; _ } -> ()
   | _ -> Alcotest.fail "literal zoo");
  (match parse "INSERT INTO s VALUES (1) TTL 30" with
   | Ast.Insert { expires = Ast.Ttl 30; _ } -> ()
   | _ -> Alcotest.fail "ttl");
  (match parse "INSERT INTO s VALUES (1)" with
   | Ast.Insert { expires = Ast.Never; _ } -> ()
   | _ -> Alcotest.fail "default never")

let test_select () =
  (match parse "SELECT uid, deg FROM pol WHERE deg > 30" with
   | Ast.Query { q = Ast.Select { items = [ Ast.Column { qualifier = None; column = "uid" };
                                       Ast.Column { column = "deg"; _ } ];
                             source = Ast.From_table "pol";
                             where = Some (Ast.Cmp (Ast.Gt, _, Ast.Lit (Value.Int 30)));
                             group_by = []; having = None }; at = None; _ } -> ()
   | _ -> Alcotest.fail "plain select");
  (match parse "SELECT * FROM pol JOIN el ON pol.uid = el.uid" with
   | Ast.Query { q = Ast.Select { items = [ Ast.Star ];
                             source = Ast.From_join ("pol", "el",
                                                     Ast.Cmp (Ast.Eq,
                                                              Ast.Col_ref { qualifier = Some "pol"; column = "uid" },
                                                              Ast.Col_ref { qualifier = Some "el"; column = "uid" }));
                             _ }; at = None; _ } -> ()
   | _ -> Alcotest.fail "join")

let test_aggregates_group_by () =
  match parse "SELECT deg, COUNT(*) FROM pol GROUP BY deg" with
  | Ast.Query { q = Ast.Select { items = [ Ast.Column _; Ast.Agg Ast.Count_star ];
                                 group_by = [ { Ast.qualifier = None; column = "deg" } ];
                                 _ }; _ } -> ()
  | _ -> Alcotest.fail "group by"

let test_set_operations () =
  (match parse "SELECT uid FROM pol EXCEPT SELECT uid FROM el" with
   | Ast.Query { q = Ast.Except (Ast.Select _, Ast.Select _); _ } -> ()
   | _ -> Alcotest.fail "except");
  (* Left associativity: (a UNION b) EXCEPT c. *)
  (match parse "SELECT a FROM t UNION SELECT a FROM u EXCEPT SELECT a FROM v" with
   | Ast.Query { q = Ast.Except (Ast.Union _, Ast.Select _); _ } -> ()
   | _ -> Alcotest.fail "left assoc");
  (* Parentheses override. *)
  (match parse "SELECT a FROM t UNION (SELECT a FROM u EXCEPT SELECT a FROM v)" with
   | Ast.Query { q = Ast.Union (Ast.Select _, Ast.Except _); _ } -> ()
   | _ -> Alcotest.fail "parenthesised")

let test_condition_precedence () =
  (* AND binds tighter than OR. *)
  match parse "SELECT a FROM t WHERE a = 1 OR a = 2 AND a = 3" with
  | Ast.Query { q = Ast.Select { where = Some (Ast.Or (_, Ast.And (_, _))); _ }; _ } -> ()
  | _ -> Alcotest.fail "precedence"

let test_control_statements () =
  (match parse "ADVANCE TO 42" with
   | Ast.Advance_to 42 -> ()
   | _ -> Alcotest.fail "advance");
  (match parse "TICK" with
   | Ast.Tick 1 -> ()
   | _ -> Alcotest.fail "tick default");
  (match parse "TICK 5" with
   | Ast.Tick 5 -> ()
   | _ -> Alcotest.fail "tick n");
  (match parse "VACUUM" with
   | Ast.Vacuum -> ()
   | _ -> Alcotest.fail "vacuum");
  (match parse "SHOW TABLES" with
   | Ast.Show_tables -> ()
   | _ -> Alcotest.fail "show tables");
  (match parse "SHOW NOW" with
   | Ast.Show_time -> ()
   | _ -> Alcotest.fail "show now")

let test_views () =
  (match parse "CREATE VIEW v AS SELECT uid FROM pol EXCEPT SELECT uid FROM el" with
   | Ast.Create_view { name = "v"; query = Ast.Except _; maintained = false } -> ()
   | _ -> Alcotest.fail "create view");
  (match parse "CREATE MAINTAINED VIEW m AS SELECT uid FROM pol" with
   | Ast.Create_view { name = "m"; maintained = true; _ } -> ()
   | _ -> Alcotest.fail "create maintained view");
  (match parse "SHOW VIEW v" with
   | Ast.Show_view "v" -> ()
   | _ -> Alcotest.fail "show view");
  (match parse "REFRESH VIEW v" with
   | Ast.Refresh_view "v" -> ()
   | _ -> Alcotest.fail "refresh view")

let test_script () =
  let statements =
    Parser.parse_script
      "CREATE TABLE t (a); INSERT INTO t VALUES (1) EXPIRES 5; SELECT a FROM t;"
  in
  Alcotest.(check int) "three statements" 3 (List.length statements)

let expect_error text =
  match parse text with
  | exception Parser.Error _ -> ()
  | _ -> Alcotest.failf "expected parse error for %S" text

let test_errors () =
  expect_error "SELECT";
  expect_error "SELECT FROM t";
  expect_error "INSERT INTO t (1)";
  expect_error "CREATE TABLE t ()";
  expect_error "SELECT a FROM t WHERE";
  expect_error "SELECT a FROM t trailing garbage";
  expect_error "ADVANCE TO soon"

let test_at_and_triggers () =
  (match parse "SELECT uid FROM pol AT 25" with
   | Ast.Query { q = Ast.Select _; at = Some 25; _ } -> ()
   | _ -> Alcotest.fail "AT clause");
  (match parse "SELECT uid FROM pol ORDER BY deg DESC, uid LIMIT 5" with
   | Ast.Query { order_by = [ ({ Ast.column = "deg"; _ }, Ast.Desc);
                              ({ Ast.column = "uid"; _ }, Ast.Asc) ];
                 limit = Some 5; _ } -> ()
   | _ -> Alcotest.fail "order by / limit");
  (match parse "SELECT deg, COUNT(*) FROM pol GROUP BY deg HAVING COUNT(*) > 1" with
   | Ast.Query { q = Ast.Select { having = Some (Ast.Cmp (Ast.Gt, Ast.Agg_ref Ast.Count_star, _)); _ }; _ } -> ()
   | _ -> Alcotest.fail "having");
  (match parse "CREATE TRIGGER audit ON pol" with
   | Ast.Create_trigger { name = "audit"; table = "pol" } -> ()
   | _ -> Alcotest.fail "create trigger");
  (match parse "CREATE TRIGGER audit ON *" with
   | Ast.Create_trigger { table = "*"; _ } -> ()
   | _ -> Alcotest.fail "wildcard trigger");
  (match parse "DROP TRIGGER audit" with
   | Ast.Drop_trigger "audit" -> ()
   | _ -> Alcotest.fail "drop trigger");
  (match parse "SHOW TRIGGERS" with
   | Ast.Show_triggers -> ()
   | _ -> Alcotest.fail "show triggers");
  expect_error "SELECT uid FROM pol AT soon";
  expect_error "CREATE TRIGGER x"

let test_delete () =
  match parse "DELETE FROM t WHERE a = 1" with
  | Ast.Delete ("t", Some _) -> ()
  | _ -> Alcotest.fail "delete with where"

let suite =
  [ Alcotest.test_case "DDL" `Quick test_ddl;
    Alcotest.test_case "INSERT with expiration clauses" `Quick test_insert_variants;
    Alcotest.test_case "SELECT and JOIN" `Quick test_select;
    Alcotest.test_case "aggregates and GROUP BY" `Quick test_aggregates_group_by;
    Alcotest.test_case "set operations and associativity" `Quick test_set_operations;
    Alcotest.test_case "AND/OR precedence" `Quick test_condition_precedence;
    Alcotest.test_case "clock and maintenance statements" `Quick
      test_control_statements;
    Alcotest.test_case "views" `Quick test_views;
    Alcotest.test_case "scripts" `Quick test_script;
    Alcotest.test_case "syntax errors" `Quick test_errors;
    Alcotest.test_case "AT queries and triggers" `Quick test_at_and_triggers;
    Alcotest.test_case "DELETE" `Quick test_delete ]
