open Expirel_core
open Expirel_index

let fin = Time.of_int
let backends = [ `Scan; `Heap; `Wheel ]

let backend_name = function
  | `Scan -> "scan"
  | `Heap -> "heap"
  | `Wheel -> "wheel"

let test_lifecycle () =
  List.iter
    (fun backend ->
      let name fmt = Printf.sprintf "%s: %s" (backend_name backend) fmt in
      let idx = Expiration_index.create backend in
      Expiration_index.add idx ~id:1 ~texp:(fin 5);
      Expiration_index.add idx ~id:2 ~texp:(fin 3);
      Expiration_index.add idx ~id:3 ~texp:Time.Inf;
      Alcotest.(check int) (name "size") 3 (Expiration_index.size idx);
      Alcotest.(check (option string)) (name "next expiry") (Some "3")
        (Option.map Time.to_string (Expiration_index.next_expiry idx));
      let due = Expiration_index.expire_upto idx (fin 4) in
      Alcotest.(check (list int)) (name "due at 4") [ 2 ] (List.map fst due);
      Alcotest.(check int) (name "2 remain") 2 (Expiration_index.size idx);
      let due = Expiration_index.expire_upto idx (fin 100) in
      Alcotest.(check (list int)) (name "due at 100") [ 1 ] (List.map fst due);
      Alcotest.(check int) (name "immortal survives") 1 (Expiration_index.size idx))
    backends

let test_reregistration () =
  List.iter
    (fun backend ->
      let name fmt = Printf.sprintf "%s: %s" (backend_name backend) fmt in
      let idx = Expiration_index.create backend in
      Expiration_index.add idx ~id:1 ~texp:(fin 3);
      Expiration_index.add idx ~id:1 ~texp:(fin 9);
      Alcotest.(check int) (name "one live entry") 1 (Expiration_index.size idx);
      Alcotest.(check (list int)) (name "stale time ignored") []
        (List.map fst (Expiration_index.expire_upto idx (fin 5)));
      Alcotest.(check (list int)) (name "fires at the new time") [ 1 ]
        (List.map fst (Expiration_index.expire_upto idx (fin 9))))
    backends

let test_remove () =
  List.iter
    (fun backend ->
      let idx = Expiration_index.create backend in
      Expiration_index.add idx ~id:1 ~texp:(fin 3);
      Expiration_index.remove idx ~id:1;
      Alcotest.(check (list int))
        (backend_name backend ^ ": removed id never fires") []
        (List.map fst (Expiration_index.expire_upto idx (fin 10))))
    backends

(* Random operation sequences: all three backends must expose identical
   observable behaviour. *)
type op =
  | Add of int * int
  | Remove of int
  | Expire of int  (* advance to this tick *)

let op_gen =
  let open QCheck2.Gen in
  frequency
    [ 6, map2 (fun id ttl -> Add (id, ttl)) (int_range 0 20) (int_range 1 40);
      1, map (fun id -> Remove id) (int_range 0 20);
      2, map (fun d -> Expire d) (int_range 0 10) ]

let ops_gen = QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 60) op_gen

let run_ops backend ops =
  let idx = Expiration_index.create backend in
  let clock = ref 0 in
  let log = Buffer.create 64 in
  List.iter
    (fun op ->
      match op with
      | Add (id, ttl) -> Expiration_index.add idx ~id ~texp:(fin (!clock + ttl))
      | Remove id -> Expiration_index.remove idx ~id
      | Expire d ->
        clock := !clock + d;
        List.iter
          (fun (id, texp) ->
            Buffer.add_string log
              (Printf.sprintf "%d@%s;" id (Time.to_string texp)))
          (Expiration_index.expire_upto idx (fin !clock)))
    ops;
  Buffer.add_string log (Printf.sprintf "size=%d" (Expiration_index.size idx));
  Buffer.contents log

let prop_backends_agree =
  Generators.qtest "scan, heap and wheel are observationally equal" ~count:300
    ops_gen (fun ops ->
      let scan = run_ops `Scan ops in
      String.equal scan (run_ops `Heap ops) && String.equal scan (run_ops `Wheel ops))

let suite =
  [ Alcotest.test_case "lifecycle on all backends" `Quick test_lifecycle;
    Alcotest.test_case "re-registration overrides" `Quick test_reregistration;
    Alcotest.test_case "remove" `Quick test_remove;
    prop_backends_agree ]
