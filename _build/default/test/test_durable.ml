open Expirel_core
open Expirel_storage

let fin = Time.of_int

let with_temp_dir f =
  let dir = Filename.temp_dir "expirel" "db" in
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun file -> Sys.remove (Filename.concat dir file))
        (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let db_state db =
  List.map
    (fun name ->
      name, Database.snapshot db name)
    (Database.table_names db)

let check_same_state msg a b =
  Alcotest.(check bool) (msg ^ ": clocks") true
    (Time.equal (Database.now a) (Database.now b));
  Alcotest.(check (list string)) (msg ^ ": tables")
    (Database.table_names a) (Database.table_names b);
  List.iter2
    (fun (name, ra) (_, rb) ->
      Alcotest.(check bool) (msg ^ ": contents of " ^ name) true
        (Relation.equal ra rb))
    (db_state a) (db_state b)

let populate t =
  Durable.create_table t ~name:"pol" ~columns:[ "uid"; "deg" ];
  Durable.insert t "pol" (Tuple.ints [ 1; 25 ]) ~texp:(fin 10);
  Durable.insert t "pol" (Tuple.ints [ 2; 25 ]) ~texp:(fin 15);
  Durable.advance_to t (fin 4);
  Durable.create_table t ~name:"el" ~columns:[ "uid"; "deg" ];
  Durable.insert t "el" (Tuple.ints [ 1; 75 ]) ~texp:(fin 9);
  ignore (Durable.delete t "pol" (Tuple.ints [ 1; 25 ]))

let test_reopen () =
  with_temp_dir (fun dir ->
      let t = Durable.open_dir dir in
      populate t;
      Durable.close t;
      let reopened = Durable.open_dir dir in
      check_same_state "reopen" (Durable.database t) (Durable.database reopened);
      Durable.close reopened)

let test_checkpoint_compacts () =
  with_temp_dir (fun dir ->
      let t = Durable.open_dir dir in
      populate t;
      Durable.advance_to t (fin 12);
      (* pol<2,25>@15 and nothing else is live ("el" expired at 9). *)
      Alcotest.(check bool) "log non-empty before" true (Durable.wal_records t > 0);
      let written = Durable.checkpoint t in
      (* Advance + 2 create-table + exactly the 1 live tuple. *)
      Alcotest.(check int) "snapshot is compact" 4 written;
      Alcotest.(check int) "log truncated" 0 (Durable.wal_records t);
      (* Post-checkpoint operations land in the fresh log. *)
      Durable.insert t "el" (Tuple.ints [ 9; 9 ]) ~texp:(fin 30);
      Durable.close t;
      let reopened = Durable.open_dir dir in
      check_same_state "checkpoint+log" (Durable.database t)
        (Durable.database reopened);
      Durable.close reopened)

let test_crash_torn_write () =
  with_temp_dir (fun dir ->
      let t = Durable.open_dir dir in
      populate t;
      Durable.close t;
      (* A crash mid-append leaves a torn line; reopening must succeed
         with everything before it. *)
      let oc = open_out_gen [ Open_append ] 0o644 (Filename.concat dir "wal.log") in
      output_string oc "insert pol 99 i9";
      (* no newline, incomplete arity — and the process "dies" here *)
      close_out oc;
      let reopened = Durable.open_dir dir in
      check_same_state "torn tail ignored" (Durable.database t)
        (Durable.database reopened);
      Durable.close reopened)

let test_validation_logs_nothing () =
  with_temp_dir (fun dir ->
      let t = Durable.open_dir dir in
      Durable.create_table t ~name:"pol" ~columns:[ "uid"; "deg" ];
      let before = Durable.wal_records t in
      (* Rejected operations must not leave records behind. *)
      (try Durable.insert t "pol" (Tuple.ints [ 1 ]) ~texp:(fin 5) with
       | Invalid_argument _ -> ());
      (try Durable.create_table t ~name:"pol" ~columns:[ "x" ] with
       | Invalid_argument _ -> ());
      Alcotest.(check bool) "delete of absent is a no-op" false
        (Durable.delete t "pol" (Tuple.ints [ 9; 9 ]));
      Alcotest.(check int) "no stray records" before (Durable.wal_records t);
      Durable.close t)

(* Random op sequences: close/reopen (optionally with checkpoints) always
   reproduces the same state. *)
type op =
  | Ins of int * int * int
  | Del of int * int
  | Adv of int
  | Check

let op_gen =
  let open QCheck2.Gen in
  frequency
    [ 5, map3 (fun a b ttl -> Ins (a, b, ttl)) (int_range 0 5) (int_range 0 5)
        (int_range 1 20);
      2, map2 (fun a b -> Del (a, b)) (int_range 0 5) (int_range 0 5);
      2, map (fun d -> Adv d) (int_range 0 6);
      1, return Check ]

let prop_reopen_equals =
  Generators.qtest "random histories survive close/reopen" ~count:60
    (QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 25) op_gen)
    (fun ops ->
      with_temp_dir (fun dir ->
          let t = Durable.open_dir dir in
          Durable.create_table t ~name:"r" ~columns:[ "a"; "b" ];
          List.iter
            (fun op ->
              match op with
              | Ins (a, b, ttl) ->
                Durable.insert t "r" (Tuple.ints [ a; b ])
                  ~texp:(Time.add (Durable.now t) (fin ttl))
              | Del (a, b) -> ignore (Durable.delete t "r" (Tuple.ints [ a; b ]))
              | Adv d -> Durable.advance_to t (Time.add (Durable.now t) (fin d))
              | Check -> ignore (Durable.checkpoint t))
            ops;
          Durable.close t;
          let reopened = Durable.open_dir dir in
          let same =
            Time.equal (Database.now (Durable.database t))
              (Database.now (Durable.database reopened))
            && Relation.equal
                 (Database.snapshot (Durable.database t) "r")
                 (Database.snapshot (Durable.database reopened) "r")
          in
          Durable.close reopened;
          same))

let suite =
  [ Alcotest.test_case "close and reopen" `Quick test_reopen;
    Alcotest.test_case "checkpoint compacts expired tuples" `Quick
      test_checkpoint_compacts;
    Alcotest.test_case "crash with torn write" `Quick test_crash_torn_write;
    Alcotest.test_case "rejected operations leave no records" `Quick
      test_validation_logs_nothing;
    prop_reopen_equals ]
