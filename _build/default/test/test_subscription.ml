open Expirel_core
open Expirel_storage
open Expirel_workload

let fin = Time.of_int

let setup () =
  let db = Database.create () in
  let pol = Database.create_table db ~name:"Pol" ~columns:News.columns in
  let el = Database.create_table db ~name:"El" ~columns:News.columns in
  Relation.iter (fun t texp -> Table.insert pol t ~texp) News.figure1_pol;
  Relation.iter (fun t texp -> Table.insert el t ~texp) News.figure1_el;
  db

let render = function
  | Subscription.Row_expired { tuple; at; _ } ->
    Printf.sprintf "-%s@%s" (Tuple.to_string tuple) (Time.to_string at)
  | Subscription.Row_appeared { tuple; at; _ } ->
    Printf.sprintf "+%s@%s" (Tuple.to_string tuple) (Time.to_string at)
  | Subscription.Refreshed { at; _ } ->
    Printf.sprintf "refresh@%s" (Time.to_string at)

let difference = Algebra.(diff (project [ 1 ] (base "Pol")) (project [ 1 ] (base "El")))
let histogram = Algebra.(project [ 2; 3 ] (aggregate [ 2 ] Aggregate.Count (base "Pol")))

let test_difference_timeline () =
  let db = setup () in
  let subs = Subscription.create db in
  let log = ref [] in
  Subscription.subscribe subs ~name:"d" difference (fun e -> log := render e :: !log);
  Subscription.advance subs (fin 20);
  (* The full Figure 3(b-d) life of the difference, as push events. *)
  Alcotest.(check (list string)) "event timeline"
    [ "refresh@3"; "+<2>@3";
      "refresh@5"; "+<1>@5";
      "-<1>@10"; "-<3>@10";
      "-<2>@15" ]
    (List.rev !log);
  Alcotest.(check int) "empty at 20" 0
    (Relation.cardinal (Subscription.current subs "d"))

let test_histogram_timeline () =
  let db = setup () in
  let subs = Subscription.create db in
  let log = ref [] in
  Subscription.subscribe subs ~name:"h" histogram (fun e -> log := render e :: !log);
  Subscription.advance subs (fin 20);
  Alcotest.(check (list string)) "count drop pushed at 10"
    [ "-<25, 2>@10"; "-<35, 1>@10"; "refresh@10"; "+<25, 1>@10"; "-<25, 1>@15" ]
    (List.rev !log)

let test_monotonic_only_expirations () =
  let db = setup () in
  let subs = Subscription.create db in
  let log = ref [] in
  Subscription.subscribe subs ~name:"j"
    Algebra.(join (Predicate.eq_cols 1 3) (base "Pol") (base "El"))
    (fun e -> log := render e :: !log);
  Subscription.advance subs (fin 20);
  Alcotest.(check (list string)) "no refreshes, just expirations"
    [ "-<2, 25, 2, 85>@3"; "-<1, 25, 1, 75>@5" ]
    (List.rev !log)

let test_incremental_advances () =
  (* Advancing in several steps produces the same events as one jump. *)
  let run steps =
    let db = setup () in
    let subs = Subscription.create db in
    let log = ref [] in
    Subscription.subscribe subs ~name:"d" difference (fun e -> log := render e :: !log);
    List.iter (fun tau -> Subscription.advance subs (fin tau)) steps;
    List.rev !log
  in
  Alcotest.(check (list string)) "stepwise = direct"
    (run [ 20 ]) (run [ 2; 3; 4; 7; 11; 20 ])

let test_management () =
  let db = setup () in
  let subs = Subscription.create db in
  Subscription.subscribe subs ~name:"a" difference (fun _ -> ());
  Alcotest.check_raises "duplicate name"
    (Invalid_argument "Subscription.subscribe: a exists") (fun () ->
      Subscription.subscribe subs ~name:"a" difference (fun _ -> ()));
  Alcotest.(check (list string)) "names" [ "a" ] (Subscription.names subs);
  Alcotest.(check bool) "unsubscribe" true (Subscription.unsubscribe subs "a");
  Alcotest.(check bool) "twice" false (Subscription.unsubscribe subs "a");
  Alcotest.check_raises "current of unknown" Not_found (fun () ->
      ignore (Subscription.current subs "a"))

(* Property: after arbitrary advances, [current] equals a fresh
   evaluation, and event times are nondecreasing. *)
let prop_current_tracks_truth =
  Generators.qtest "subscriptions track the fresh evaluation" ~count:150
    (QCheck2.Gen.pair (Generators.expr_and_env ())
       (QCheck2.Gen.list_size (QCheck2.Gen.int_range 1 6)
          (QCheck2.Gen.int_range 0 8)))
    (fun ((expr, bindings), hops) ->
      let db = Database.create () in
      List.iter
        (fun (name, r) ->
          let columns =
            List.init (Relation.arity r) (fun i -> Printf.sprintf "c%d" i)
          in
          let tbl = Database.create_table db ~name ~columns in
          Relation.iter (fun t texp -> Table.insert tbl t ~texp) r)
        bindings;
      let subs = Subscription.create db in
      let last_at = ref Time.zero and ordered = ref true in
      Subscription.subscribe subs ~name:"w" expr (fun e ->
          let at =
            match e with
            | Subscription.Row_expired { at; _ }
            | Subscription.Row_appeared { at; _ }
            | Subscription.Refreshed { at; _ } ->
              at
          in
          if Time.(at < !last_at) then ordered := false;
          last_at := at);
      List.for_all
        (fun hop ->
          let target = Time.add (Database.now db) (fin hop) in
          Subscription.advance subs target;
          let fresh =
            Eval.relation_at
              ~env:(fun n -> Option.map (fun tb -> Table.snapshot tb ~tau:target)
                       (Database.table db n))
              ~tau:target expr
          in
          !ordered
          && Relation.equal_tuples (Subscription.current subs "w") fresh)
        hops)

let suite =
  [ Alcotest.test_case "difference event timeline (Fig 3 as pushes)" `Quick
      test_difference_timeline;
    Alcotest.test_case "histogram count-change events" `Quick test_histogram_timeline;
    Alcotest.test_case "monotonic views only expire" `Quick
      test_monotonic_only_expirations;
    Alcotest.test_case "stepwise advances" `Quick test_incremental_advances;
    Alcotest.test_case "subscribe/unsubscribe" `Quick test_management;
    prop_current_tracks_truth ]
