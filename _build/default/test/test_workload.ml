open Expirel_core
open Expirel_workload

let rng seed = Random.State.make [| seed |]

let test_figure1_data () =
  Alcotest.(check int) "Pol rows" 3 (Relation.cardinal News.figure1_pol);
  Alcotest.(check int) "El rows" 3 (Relation.cardinal News.figure1_el);
  Alcotest.(check bool) "Pol <2,25>@15" true
    (Time.equal (Relation.texp News.figure1_pol (Tuple.ints [ 2; 25 ])) (Time.of_int 15));
  Alcotest.(check bool) "env resolves" true (News.figure1_env "Pol" <> None)

let test_ttl_distributions () =
  let r = rng 1 in
  for _ = 1 to 200 do
    (match Gen.sample_ttl r (Gen.Constant_ttl 7) with
     | Time.Fin 7 -> ()
     | t -> Alcotest.failf "constant ttl gave %s" (Time.to_string t));
    (match Gen.sample_ttl r (Gen.Uniform_ttl (2, 9)) with
     | Time.Fin d when 2 <= d && d <= 9 -> ()
     | t -> Alcotest.failf "uniform ttl out of range: %s" (Time.to_string t));
    (match Gen.sample_ttl r (Gen.Geometric_ttl 0.3) with
     | Time.Fin d when d >= 1 -> ()
     | t -> Alcotest.failf "geometric ttl bad: %s" (Time.to_string t))
  done;
  let immortals = ref 0 in
  for _ = 1 to 1000 do
    match Gen.sample_ttl r (Gen.Immortal_share (0.5, Gen.Constant_ttl 1)) with
    | Time.Inf -> incr immortals
    | Time.Fin _ -> ()
  done;
  Alcotest.(check bool) "immortal share near half" true
    (!immortals > 350 && !immortals < 650);
  Alcotest.check_raises "bad uniform bounds"
    (Invalid_argument "Gen.sample_ttl: bad Uniform_ttl bounds") (fun () ->
      ignore (Gen.sample_ttl r (Gen.Uniform_ttl (5, 2))))

let test_value_distributions () =
  let r = rng 2 in
  for _ = 1 to 200 do
    (match Gen.sample_value r (Gen.Uniform_value 10) with
     | Value.Int v when 0 <= v && v < 10 -> ()
     | v -> Alcotest.failf "uniform value bad: %s" (Value.to_string v));
    match Gen.sample_value r (Gen.Zipf_value (10, 1.2)) with
    | Value.Int v when 0 <= v && v < 10 -> ()
    | v -> Alcotest.failf "zipf value bad: %s" (Value.to_string v)
  done;
  (* Zipf skew: rank 0 should dominate. *)
  let counts = Array.make 10 0 in
  for _ = 1 to 2000 do
    match Gen.sample_value r (Gen.Zipf_value (10, 1.5)) with
    | Value.Int v -> counts.(v) <- counts.(v) + 1
    | _ -> ()
  done;
  Alcotest.(check bool) "rank 0 most frequent" true
    (Array.for_all (fun c -> c <= counts.(0)) counts)

let test_relation_generator () =
  let r =
    Gen.relation ~rng:(rng 3) ~arity:2 ~cardinality:50
      ~values:(Gen.Uniform_value 100) ~ttl:(Gen.Uniform_ttl (1, 20)) ~now:(Time.of_int 5)
  in
  Alcotest.(check int) "arity" 2 (Relation.arity r);
  Alcotest.(check bool) "cardinality reached" true (Relation.cardinal r = 50);
  Relation.iter
    (fun _ texp ->
      match texp with
      | Time.Fin e ->
        if e < 6 || e > 25 then Alcotest.failf "texp %d outside now+ttl range" e
      | Time.Inf -> Alcotest.fail "unexpected immortal")
    r

let test_determinism () =
  let make seed =
    Gen.relation ~rng:(rng seed) ~arity:2 ~cardinality:30
      ~values:(Gen.Uniform_value 50) ~ttl:(Gen.Uniform_ttl (1, 9)) ~now:Time.zero
  in
  Alcotest.(check bool) "same seed, same relation" true
    (Relation.equal (make 7) (make 7));
  Alcotest.(check bool) "different seed differs" false
    (Relation.equal (make 7) (make 8))

let test_overlapping_pair () =
  let a, b =
    Gen.overlapping_pair ~rng:(rng 4) ~arity:2 ~cardinality:60 ~overlap:0.5
      ~values:(Gen.Uniform_value 1000) ~ttl:(Gen.Uniform_ttl (1, 9)) ~now:Time.zero
  in
  let shared = Relation.fold (fun t _ n -> if Relation.mem t b then n + 1 else n) a 0 in
  Alcotest.(check bool) "overlap near half" true (shared >= 20 && shared <= 40);
  Alcotest.(check bool) "sizes comparable" true
    (abs (Relation.cardinal a - Relation.cardinal b) < 20)

let test_news_profiles () =
  let core, niche =
    News.two_topics ~rng:(rng 5) ~users:200 ~core_ttl:(Gen.Uniform_ttl (50, 100))
      ~niche_ttl:(Gen.Uniform_ttl (2, 10)) ~now:Time.zero
  in
  Alcotest.(check bool) "core covers more users" true
    (Relation.cardinal core > Relation.cardinal niche);
  Relation.iter
    (fun t _ ->
      match Tuple.attr t 2 with
      | Value.Int d when d >= 25 && d <= 100 -> ()
      | v -> Alcotest.failf "degree out of range: %s" (Value.to_string v))
    core

let test_sessions () =
  let events =
    Sessions.timeline ~rng:(rng 6) ~users:20 ~logins:30 ~horizon:100
      ~activity_rate:2.0
  in
  Alcotest.(check bool) "has follow-up activity" true
    (List.exists (function Sessions.Activity _ -> true | Sessions.Login _ -> false) events);
  let sorted = List.for_all2 (fun a b -> Sessions.event_time a <= Sessions.event_time b)
      (List.filteri (fun i _ -> i < List.length events - 1) events)
      (List.tl events)
  in
  Alcotest.(check bool) "sorted by time" true sorted;
  (* Renewal semantics: applying events pushes expiration past the last
     activity. *)
  let r = ref (Relation.empty ~arity:2) in
  List.iter
    (Sessions.apply_event ~timeout:10 ~insert:(fun t ~texp -> r := Relation.replace t ~texp !r))
    events;
  Relation.iter
    (fun _ texp -> if Time.(texp < Time.of_int 10) then Alcotest.fail "texp < timeout")
    !r

let test_sensors () =
  let samples = Sensors.stream ~rng:(rng 7) ~sensors:5 ~period:10 ~horizon:50 ~jitter:2 in
  Alcotest.(check int) "5 sensors x 5 periods" 25 (List.length samples);
  List.iter
    (fun s ->
      if s.Sensors.at < 0 || s.Sensors.at >= 50 then Alcotest.fail "sample outside horizon";
      match Sensors.texp_of ~period:10 ~jitter:2 s with
      | Time.Fin e ->
        if e <> s.Sensors.at + 12 then Alcotest.fail "texp formula"
      | Time.Inf -> Alcotest.fail "finite texp expected")
    samples

let test_web () =
  let pages = Web.pages ~rng:(rng 8) ~count:30 ~period_range:(5, 60) ~horizon:200 in
  Alcotest.(check int) "page count" 30 (List.length pages);
  List.iter
    (fun p ->
      let sorted = List.sort Int.compare p.Web.change_times in
      Alcotest.(check (list int)) "change times ascending" sorted p.Web.change_times;
      List.iter
        (fun c -> if c < 0 || c >= 200 then Alcotest.fail "change outside horizon")
        p.Web.change_times)
    pages;
  (* TTL policies. *)
  let p = List.hd pages in
  Alcotest.(check int) "fixed ttl" 7 (Web.ttl_for (Web.Fixed_ttl 7) p);
  Alcotest.(check int) "proportional floor at 1" 1
    (Web.ttl_for (Web.Proportional_ttl 0.001) p);
  Alcotest.check_raises "bad alpha" (Invalid_argument "Web.ttl_for: non-positive alpha")
    (fun () -> ignore (Web.ttl_for (Web.Proportional_ttl 0.) p));
  (* Simulation invariants. *)
  let r1 = Web.simulate ~pages ~horizon:200 ~policy:(Web.Fixed_ttl 1) in
  Alcotest.(check int) "ttl 1 refetches every access" r1.Web.accesses r1.Web.fetches;
  Alcotest.(check int) "ttl 1 never stale" 0 r1.Web.stale_serves;
  let r20 = Web.simulate ~pages ~horizon:200 ~policy:(Web.Fixed_ttl 20) in
  Alcotest.(check bool) "longer ttl fetches less" true (r20.Web.fetches < r1.Web.fetches);
  Alcotest.(check bool) "and serves staler" true
    (r20.Web.stale_serves >= r1.Web.stale_serves);
  Alcotest.(check int) "accesses = pages x horizon" (30 * 200) r20.Web.accesses

let suite =
  [ Alcotest.test_case "Figure 1 constants" `Quick test_figure1_data;
    Alcotest.test_case "web cache workload" `Quick test_web;
    Alcotest.test_case "TTL distributions" `Quick test_ttl_distributions;
    Alcotest.test_case "value distributions (uniform, zipf)" `Quick
      test_value_distributions;
    Alcotest.test_case "relation generator" `Quick test_relation_generator;
    Alcotest.test_case "seeded determinism" `Quick test_determinism;
    Alcotest.test_case "overlapping pairs" `Quick test_overlapping_pair;
    Alcotest.test_case "news profiles" `Quick test_news_profiles;
    Alcotest.test_case "session timelines" `Quick test_sessions;
    Alcotest.test_case "sensor streams" `Quick test_sensors ]
