open Expirel_core
open Expirel_dist
open Expirel_workload

let fin = Time.of_int

let bindings =
  [ "Pol", News.figure1_pol; "El", News.figure1_el ]

let difference = Algebra.(diff (project [ 1 ] (base "Pol")) (project [ 1 ] (base "El")))

let updates =
  [ { Sim_update.at = 2; relation = "Pol";
      change = `Upsert (Tuple.ints [ 8; 40 ], fin 25) };
    { Sim_update.at = 6; relation = "El";
      change = `Upsert (Tuple.ints [ 8; 70 ], fin 30) };
    { Sim_update.at = 9; relation = "El";
      change = `Delete (Tuple.ints [ 8; 70 ]) };
    { Sim_update.at = 12; relation = "Other";
      change = `Upsert (Tuple.ints [ 1; 1 ], fin 90) } ]

let run strategy =
  Sim_update.run ~bindings ~expr:difference ~updates
    { Sim_update.horizon = 20; strategy }

let test_delta_push_exact () =
  let r = run Sim_update.Delta_push in
  Alcotest.(check int) "never stale" 0 r.Sim_update.metrics.Metrics.stale_ticks;
  Alcotest.(check int) "no refetches" 0 r.Sim_update.metrics.Metrics.refetches;
  (* Initial fetch (2 messages) + one push per relevant update (3; the
     update to the unrelated table costs nothing). *)
  Alcotest.(check int) "messages" 5 r.Sim_update.metrics.Metrics.messages

let test_refetch_on_change_exact_but_costly () =
  let r = run Sim_update.Refetch_on_change in
  Alcotest.(check int) "never stale" 0 r.Sim_update.metrics.Metrics.stale_ticks;
  Alcotest.(check bool) "pays full refetches" true
    (r.Sim_update.metrics.Metrics.refetches >= 3);
  let push = run Sim_update.Delta_push in
  Alcotest.(check bool) "delta push is cheaper" true
    (push.Sim_update.metrics.Metrics.bytes < r.Sim_update.metrics.Metrics.bytes)

let test_expiration_aware_goes_stale () =
  (* The no-update assumption violated: updates arrive between texp(e)
     refetches, so the expiration-aware client serves wrong data. *)
  let r = run Sim_update.Expiration_aware in
  Alcotest.(check bool) "stale under updates" true
    (r.Sim_update.metrics.Metrics.stale_ticks > 0)

let test_validation () =
  Alcotest.check_raises "unsorted updates"
    (Invalid_argument "Sim_update.run: updates unsorted") (fun () ->
      ignore
        (Sim_update.run ~bindings ~expr:difference
           ~updates:(List.rev updates)
           { Sim_update.horizon = 20; strategy = Sim_update.Delta_push }))

let random_updates_gen =
  let open QCheck2.Gen in
  let one at =
    let* name = oneofl [ "R2"; "S2" ] in
    let* t = Generators.tuple_no_null ~arity:2 in
    let* upsert = frequency [ 3, return true; 1, return false ] in
    if upsert then
      let* ttl = int_range 1 15 in
      return { Sim_update.at; relation = name;
               change = `Upsert (t, Time.of_int (at + ttl)) }
    else return { Sim_update.at; relation = name; change = `Delete t }
  in
  let* ticks = list_size (int_range 0 10) (int_range 0 19) in
  let sorted = List.sort Int.compare ticks in
  flatten_l (List.map one sorted)

let prop_update_aware_strategies_exact =
  Generators.qtest "delta-push and refetch-on-change are never stale" ~count:150
    (QCheck2.Gen.pair
       (QCheck2.Gen.pair
          (Generators.expr ~allow_non_monotonic:false ~arity:2 ())
          (Generators.expr ~allow_non_monotonic:false ~arity:2 ()))
       (QCheck2.Gen.pair Generators.env_bindings random_updates_gen))
    (fun ((l, r), (bindings, updates)) ->
      let expr = Algebra.diff l r in
      let stale strategy =
        (Sim_update.run ~bindings ~expr ~updates
           { Sim_update.horizon = 22; strategy })
          .Sim_update.metrics.Metrics.stale_ticks
      in
      stale Sim_update.Delta_push = 0 && stale Sim_update.Refetch_on_change = 0)

let suite =
  [ Alcotest.test_case "delta push: exact at tuple-sized cost" `Quick
      test_delta_push_exact;
    Alcotest.test_case "refetch-on-change: exact but heavy" `Quick
      test_refetch_on_change_exact_but_costly;
    Alcotest.test_case "expiration alone fails under updates" `Quick
      test_expiration_aware_goes_stale;
    Alcotest.test_case "validation" `Quick test_validation;
    prop_update_aware_strategies_exact ]
