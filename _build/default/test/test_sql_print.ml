open Expirel_core
open Expirel_sqlx
module Gen = QCheck2.Gen

(* --- generators for well-formed ASTs (lexically valid identifiers) --- *)

let ident_gen = Gen.oneofl [ "pol"; "el"; "users"; "t1"; "b_2"; "Sessions" ]
let colname_gen = Gen.oneofl [ "uid"; "deg"; "a"; "b"; "val1" ]

let column_ref_gen =
  let open Gen in
  let* qualifier = option ident_gen in
  let* column = colname_gen in
  return { Ast.qualifier; column }

let literal_gen =
  let open Gen in
  frequency
    [ 4, map Value.int (int_range (-50) 50);
      2, map (fun n -> Value.Float (float_of_int n /. 2.)) (int_range (-20) 20);
      2, map Value.str (oneofl [ ""; "x"; "it's"; "two words"; "100%" ]);
      1, oneofl [ Value.Bool true; Value.Bool false; Value.Null ] ]

let agg_gen =
  let open Gen in
  oneof
    [ return Ast.Count_star;
      map (fun r -> Ast.Sum_of r) column_ref_gen;
      map (fun r -> Ast.Min_of r) column_ref_gen;
      map (fun r -> Ast.Max_of r) column_ref_gen;
      map (fun r -> Ast.Avg_of r) column_ref_gen ]

let operand_gen =
  let open Gen in
  frequency
    [ 3, map (fun r -> Ast.Col_ref r) column_ref_gen;
      2, map (fun v -> Ast.Lit v) literal_gen;
      1, map (fun a -> Ast.Agg_ref a) agg_gen ]

let cmp_gen = Gen.oneofl [ Ast.Eq; Ast.Neq; Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge ]

let cond_gen =
  let open Gen in
  let atom =
    let* op = cmp_gen in
    let* a = operand_gen in
    let* b = operand_gen in
    return (Ast.Cmp (op, a, b))
  in
  let rec go depth =
    if depth = 0 then atom
    else
      frequency
        [ 3, atom;
          1, map2 (fun a b -> Ast.And (a, b)) (go (depth - 1)) (go (depth - 1));
          1, map2 (fun a b -> Ast.Or (a, b)) (go (depth - 1)) (go (depth - 1));
          1, map (fun a -> Ast.Not a) (go (depth - 1)) ]
  in
  go 2

let select_gen =
  let open Gen in
  let* items =
    frequency
      [ 1, return [ Ast.Star ];
        3, list_size (int_range 1 3)
             (frequency
                [ 3, map (fun r -> Ast.Column r) column_ref_gen;
                  1, map (fun a -> Ast.Agg a) agg_gen ]) ]
  in
  let* src =
    frequency
      [ 3, map (fun n -> Ast.From_table n) ident_gen;
        1,
        (let* l = ident_gen in
         let* r = ident_gen in
         let* on = cond_gen in
         return (Ast.From_join (l, r, on))) ]
  in
  let* where = option cond_gen in
  let* group_by = frequency [ 2, return []; 1, list_size (int_range 1 2) column_ref_gen ] in
  let* having = if group_by = [] then return None else option cond_gen in
  return { Ast.items; source = src; where; group_by; having }

let query_gen =
  let open Gen in
  let rec go depth =
    if depth = 0 then map (fun s -> Ast.Select s) select_gen
    else
      frequency
        [ 3, map (fun s -> Ast.Select s) select_gen;
          1, map2 (fun a b -> Ast.Union (a, b)) (go (depth - 1)) (go (depth - 1));
          1, map2 (fun a b -> Ast.Except (a, b)) (go (depth - 1)) (go (depth - 1));
          1, map2 (fun a b -> Ast.Intersect (a, b)) (go (depth - 1)) (go (depth - 1)) ]
  in
  go 2

let statement_gen =
  let open Gen in
  oneof
    [ (let* name = ident_gen in
       let* cols = list_size (int_range 1 4) colname_gen in
       return (Ast.Create_table (name, cols)));
      map (fun n -> Ast.Drop_table n) ident_gen;
      (let* table = ident_gen in
       let* values = list_size (int_range 1 3) literal_gen in
       let* expires =
         oneof
           [ map (fun n -> Ast.At n) (int_range 0 100);
             return Ast.Never;
             map (fun n -> Ast.Ttl n) (int_range 1 100) ]
       in
       return (Ast.Insert { table; values; expires }));
      (let* table = ident_gen in
       let* where = option cond_gen in
       return (Ast.Delete (table, where)));
      map (fun n -> Ast.Advance_to n) (int_range 0 100);
      map (fun n -> Ast.Tick n) (int_range 1 10);
      return Ast.Vacuum;
      (let* q = query_gen in
       let* at = option (int_range 0 100) in
       let* order_by =
         list_size (int_range 0 2)
           (pair column_ref_gen (oneofl [ Ast.Asc; Ast.Desc ]))
       in
       let* limit = option (int_range 0 20) in
       return (Ast.Query { q; at; order_by; limit }));
      (let* name = ident_gen in
       let* q = query_gen in
       let* maintained = bool in
       return (Ast.Create_view { name; query = q; maintained }));
      map (fun n -> Ast.Show_view n) ident_gen;
      (let* name = ident_gen in
       let* table = oneof [ ident_gen; return "*" ] in
       return (Ast.Create_trigger { name; table }));
      map (fun n -> Ast.Drop_trigger n) ident_gen;
      return Ast.Show_triggers;
      map (fun n -> Ast.Refresh_view n) ident_gen;
      return Ast.Show_tables;
      return Ast.Show_views;
      return Ast.Show_time;
      (let* name = ident_gen in
       let* q = query_gen in
       let* bounds =
         oneof
           [ map (fun n -> Some n, None) (int_range 1 9);
             map (fun n -> None, Some n) (int_range 1 9);
             map2 (fun a b -> Some a, Some b) (int_range 1 9) (int_range 1 9) ]
       in
       let min_rows, max_rows = bounds in
       return (Ast.Create_constraint { name; query = q; min_rows; max_rows }));
      map (fun n -> Ast.Drop_constraint n) ident_gen;
      return Ast.Show_constraints;
      map (fun q -> Ast.Explain q) query_gen ]

let prop_statement_roundtrip =
  Generators.qtest "parse (print statement) = statement" ~count:500 statement_gen
    (fun statement ->
      let text = Sql_print.statement statement in
      match Parser.parse_statement text with
      | parsed -> parsed = statement
      | exception Parser.Error (msg, off) ->
        QCheck2.Test.fail_reportf "did not re-parse %S: %s at %d" text msg off)

let prop_query_roundtrip =
  Generators.qtest "parse (print query) = query" ~count:500 query_gen (fun q ->
      match Parser.parse_query (Sql_print.query q) with
      | parsed -> parsed = q
      | exception Parser.Error _ -> false)

(* --- fuzzing: the parser either parses or raises Parser.Error --- *)

let token_soup_gen =
  let open Gen in
  let word =
    oneof
      [ oneofl Token.keywords;
        oneofl [ "("; ")"; ","; ";"; "."; "*"; "="; "<>"; "<"; "<="; ">"; ">=" ];
        oneofl [ "pol"; "x"; "42"; "-7"; "3.5"; "'str'"; "'"; "%"; "?" ];
        string_size ~gen:printable (int_range 0 6) ]
  in
  map (String.concat " ") (list_size (int_range 0 25) word)

let prop_fuzz_no_crash =
  Generators.qtest "parser never raises anything but Parser.Error" ~count:1000
    token_soup_gen (fun text ->
      match Parser.parse_statement text with
      | _ -> true
      | exception Parser.Error _ -> true
      | exception _ -> false)

let prop_fuzz_script_no_crash =
  Generators.qtest "script parser never crashes either" ~count:500 token_soup_gen
    (fun text ->
      match Parser.parse_script text with
      | _ -> true
      | exception Parser.Error _ -> true
      | exception _ -> false)

let test_examples () =
  List.iter
    (fun text ->
      let statement = Parser.parse_statement text in
      Alcotest.(check string) text text (Sql_print.statement statement))
    [ "SELECT uid, deg FROM pol WHERE deg > 30";
      "SELECT deg, COUNT(*) FROM pol GROUP BY deg HAVING COUNT(*) > 1";
      "SELECT * FROM pol JOIN el ON pol.uid = el.uid";
      "SELECT uid FROM pol EXCEPT SELECT uid FROM el";
      "SELECT uid FROM pol ORDER BY deg DESC LIMIT 3 AT 12";
      "INSERT INTO pol VALUES (1, 25) EXPIRES 10";
      "CREATE MAINTAINED VIEW v AS SELECT uid FROM pol";
      "CREATE TRIGGER audit ON *" ]

let suite =
  [ Alcotest.test_case "canonical statements print back verbatim" `Quick
      test_examples;
    prop_statement_roundtrip;
    prop_query_roundtrip;
    prop_fuzz_no_crash;
    prop_fuzz_script_no_crash ]
