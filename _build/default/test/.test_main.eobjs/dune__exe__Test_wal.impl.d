test/test_wal.ml: Alcotest Expirel_core Expirel_storage Filename Fun Generators List QCheck2 String Sys Time Tuple Value Wal
