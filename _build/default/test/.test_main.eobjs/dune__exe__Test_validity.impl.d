test/test_validity.ml: Aggregate Alcotest Algebra Eval Expirel_core Expirel_workload Generators Interval Interval_set List News Option Predicate QCheck2 Relation Time Validity
