test/test_sim_update.ml: Alcotest Algebra Expirel_core Expirel_dist Expirel_workload Generators Int List Metrics News QCheck2 Sim_update Time Tuple
