test/test_monotone.ml: Aggregate Alcotest Algebra Expirel_core Generators List Monotone Predicate QCheck2
