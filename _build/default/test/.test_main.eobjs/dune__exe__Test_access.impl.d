test/test_access.ml: Access Alcotest Database Eval Expirel_core Expirel_storage Format Generators List Ops Ordered_index Predicate Printf QCheck2 Relation Table Time Tuple Value
