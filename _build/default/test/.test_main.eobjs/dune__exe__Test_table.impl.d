test/test_table.ml: Alcotest Expirel_core Expirel_storage Generators List Option QCheck2 Relation Table Time Tuple
