test/test_tuple.ml: Alcotest Array Expirel_core Generators QCheck2 Tuple Value
