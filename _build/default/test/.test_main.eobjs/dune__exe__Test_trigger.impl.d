test/test_trigger.ml: Alcotest Expirel_core Expirel_storage List Time Trigger Tuple
