test/test_antijoin.ml: Alcotest Algebra Antijoin Errors Eval Expirel_core Expirel_workload Generators List News Patch Printf QCheck2 Relation Time Tuple
