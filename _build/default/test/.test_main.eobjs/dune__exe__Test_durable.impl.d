test/test_durable.ml: Alcotest Array Database Durable Expirel_core Expirel_storage Filename Fun Generators List QCheck2 Relation Sys Time Tuple
