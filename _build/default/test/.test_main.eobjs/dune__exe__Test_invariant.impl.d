test/test_invariant.ml: Alcotest Algebra Database Eval Expirel_core Expirel_storage Generators Invariant List Option Predicate Printf QCheck2 Relation Table Time Tuple Value
