test/test_binary_heap.ml: Alcotest Binary_heap Expirel_index Generators List QCheck2
