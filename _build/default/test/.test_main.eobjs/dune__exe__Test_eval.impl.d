test/test_eval.ml: Aggregate Alcotest Algebra Errors Eval Expirel_core Expirel_workload Generators List News Predicate QCheck2 Relation Time Tuple
