test/test_relation.ml: Alcotest Expirel_core Generators List QCheck2 Relation Time Tuple
