test/test_interval_set.ml: Alcotest Expirel_core Generators Interval Interval_set List Option QCheck2 Time
