test/test_database.ml: Alcotest Algebra Database Errors Eval Expirel_core Expirel_storage Generators List Printf QCheck2 Relation Table Time Trigger Tuple
