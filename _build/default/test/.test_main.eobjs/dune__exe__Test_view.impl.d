test/test_view.ml: Aggregate Alcotest Algebra Eval Expirel_core Expirel_workload Generators List News Predicate QCheck2 Relation Time Tuple Validity View
