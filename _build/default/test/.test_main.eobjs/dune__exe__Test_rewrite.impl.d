test/test_rewrite.ml: Alcotest Algebra Eval Expirel_core Generators List Option Predicate Relation Rewrite Time Value
