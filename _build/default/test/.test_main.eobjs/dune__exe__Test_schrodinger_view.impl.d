test/test_schrodinger_view.ml: Aggregate Alcotest Algebra Eval Expirel_core Expirel_workload Generators List News Printf QCheck2 Relation Schrodinger_view Time Tuple
