test/test_heap.ml: Alcotest Expirel_core Generators Heap List QCheck2 Time
