test/test_scripts.ml: Alcotest Expirel_sqlx Filename Interp List String
