test/test_predicate.ml: Alcotest Expirel_core Generators Predicate QCheck2 Tuple Value
