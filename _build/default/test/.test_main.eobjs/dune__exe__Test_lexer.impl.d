test/test_lexer.ml: Alcotest Expirel_sqlx Lexer List Token
