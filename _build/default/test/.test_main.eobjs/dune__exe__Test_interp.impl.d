test/test_interp.ml: Alcotest Expirel_core Expirel_sqlx Interp List Relation String Tuple
