test/test_maintained.ml: Aggregate Alcotest Algebra Eval Expirel_core Expirel_workload Generators List Maintained News QCheck2 Relation String Time Tuple
