test/test_parser.ml: Alcotest Ast Expirel_core Expirel_sqlx Format List Parser Value
