test/test_expiration_index.ml: Alcotest Buffer Expiration_index Expirel_core Expirel_index Generators List Option Printf QCheck2 String Time
