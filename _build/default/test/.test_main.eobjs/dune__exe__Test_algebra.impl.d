test/test_algebra.ml: Aggregate Alcotest Algebra Expirel_core Generators List Option Predicate Relation
