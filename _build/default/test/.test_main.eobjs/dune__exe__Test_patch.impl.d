test/test_patch.ml: Alcotest Algebra Errors Eval Expirel_core Expirel_workload Generators List News Option Patch QCheck2 Relation Time Tuple
