test/test_value.ml: Alcotest Expirel_core Generators QCheck2 Value
