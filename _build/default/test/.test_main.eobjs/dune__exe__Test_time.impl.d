test/test_time.ml: Alcotest Expirel_core Generators QCheck2 Time
