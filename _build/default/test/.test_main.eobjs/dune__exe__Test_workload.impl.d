test/test_workload.ml: Alcotest Array Expirel_core Expirel_workload Gen Int List News Random Relation Sensors Sessions Time Tuple Value Web
