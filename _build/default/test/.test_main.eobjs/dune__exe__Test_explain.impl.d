test/test_explain.ml: Aggregate Alcotest Algebra Expirel_core Expirel_workload Explain List News Predicate Relation String Time Value
