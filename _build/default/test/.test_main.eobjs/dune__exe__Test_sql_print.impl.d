test/test_sql_print.ml: Alcotest Ast Expirel_core Expirel_sqlx Generators List Parser QCheck2 Sql_print String Token Value
