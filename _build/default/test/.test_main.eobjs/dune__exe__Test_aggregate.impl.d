test/test_aggregate.ml: Aggregate Alcotest Expirel_core Float Generators Interval_set List Printf QCheck2 Relation Time Tuple Value
