test/test_theorems.ml: Aggregate Algebra Eval Expirel_core Generators List Patch Printf QCheck2 Relation Time
