test/test_interval.ml: Alcotest Expirel_core Generators Interval List QCheck2 Time
