test/test_cost.ml: Alcotest Algebra Cost Eval Expirel_core Generators List Option Predicate Relation Rewrite Time Tuple
