test/test_sim.ml: Alcotest Algebra Eval Expirel_core Expirel_dist Expirel_workload Generators List Metrics News Predicate QCheck2 Sim
