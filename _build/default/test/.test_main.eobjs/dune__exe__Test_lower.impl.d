test/test_lower.ml: Alcotest Algebra Ast Expirel_core Expirel_sqlx Lower Parser Predicate String
