test/test_qos.ml: Aggregate Alcotest Algebra Errors Eval Expirel_core Expirel_workload Generators News Predicate QCheck2 Qos Time
