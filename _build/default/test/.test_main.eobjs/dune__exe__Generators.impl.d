test/generators.ml: Aggregate Algebra Expirel_core Interval Interval_set List Predicate QCheck2 QCheck_alcotest Relation Time Tuple Value
