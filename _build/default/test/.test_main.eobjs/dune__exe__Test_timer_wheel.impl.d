test/test_timer_wheel.ml: Alcotest Expirel_index Generators List QCheck2 Timer_wheel
