(* Shared QCheck generators.  Small value and time ranges on purpose: they
   force duplicate tuples, coinciding expiration times and non-trivial
   partitions — the corners the paper's machinery is about. *)

open Expirel_core
module Gen = QCheck2.Gen

let max_finite_time = 24

let time_finite : Time.t Gen.t =
  Gen.map Time.of_int (Gen.int_range 0 max_finite_time)

(* Expiration times of stored tuples: strictly positive, sometimes
   infinite. *)
let texp : Time.t Gen.t =
  Gen.frequency
    [ 8, Gen.map Time.of_int (Gen.int_range 1 max_finite_time);
      1, Gen.return Time.Inf ]

let small_value : Value.t Gen.t =
  Gen.frequency
    [ 8, Gen.map Value.int (Gen.int_range (-3) 4);
      1, Gen.return Value.Null ]

let small_value_no_null : Value.t Gen.t =
  Gen.map Value.int (Gen.int_range (-3) 4)

let tuple ~arity : Tuple.t Gen.t =
  Gen.map Tuple.of_list (Gen.list_size (Gen.return arity) small_value)

let tuple_no_null ~arity : Tuple.t Gen.t =
  Gen.map Tuple.of_list (Gen.list_size (Gen.return arity) small_value_no_null)

let relation ~arity : Relation.t Gen.t =
  let row = Gen.pair (tuple ~arity) texp in
  Gen.map (Relation.of_list ~arity) (Gen.list_size (Gen.int_range 0 12) row)

(* Null-free variant: the paper's data model has no nulls, and some
   identities (e.g. the Eq (6) intersection rewrite) only hold under
   literal equality, which SQL-style null comparisons break. *)
let relation_no_null ~arity : Relation.t Gen.t =
  let row = Gen.pair (tuple_no_null ~arity) texp in
  Gen.map (Relation.of_list ~arity) (Gen.list_size (Gen.int_range 0 12) row)

(* A fixed environment shape: two unary, two binary and one ternary base
   relation, freshly generated each run. *)
let env_bindings : (string * Relation.t) list Gen.t =
  let open Gen in
  let* r1 = relation ~arity:1 in
  let* s1 = relation ~arity:1 in
  let* r2 = relation ~arity:2 in
  let* s2 = relation ~arity:2 in
  let* r3 = relation ~arity:3 in
  return [ "R1", r1; "S1", s1; "R2", r2; "S2", s2; "R3", r3 ]

let base_names_of_arity = function
  | 1 -> [ "R1"; "S1" ]
  | 2 -> [ "R2"; "S2" ]
  | 3 -> [ "R3" ]
  | _ -> []

let operand ~arity : Predicate.operand Gen.t =
  Gen.frequency
    [ 2, Gen.map (fun j -> Predicate.Col j) (Gen.int_range 1 arity);
      1, Gen.map (fun v -> Predicate.Const v) small_value ]

let cmp : Predicate.cmp Gen.t =
  Gen.oneofl [ Predicate.Eq; Predicate.Neq; Predicate.Lt; Predicate.Le;
               Predicate.Gt; Predicate.Ge ]

let predicate ~arity : Predicate.t Gen.t =
  let open Gen in
  let atom =
    let* op = cmp in
    let* a = operand ~arity in
    let* b = operand ~arity in
    return (Predicate.Cmp (op, a, b))
  in
  let rec go depth =
    if depth = 0 then atom
    else
      frequency
        [ 4, atom;
          1, map2 (fun a b -> Predicate.And (a, b)) (go (depth - 1)) (go (depth - 1));
          1, map2 (fun a b -> Predicate.Or (a, b)) (go (depth - 1)) (go (depth - 1));
          1, map (fun a -> Predicate.Not a) (go (depth - 1)) ]
  in
  go 2

let projection ~source_arity ~target_arity : int list Gen.t =
  Gen.list_size (Gen.return target_arity) (Gen.int_range 1 source_arity)

let agg_func ~arity : Aggregate.func Gen.t =
  let open Gen in
  let attr = int_range 1 arity in
  oneof
    [ return Aggregate.Count;
      map (fun i -> Aggregate.Sum i) attr;
      map (fun i -> Aggregate.Min i) attr;
      map (fun i -> Aggregate.Max i) attr;
      map (fun i -> Aggregate.Avg i) attr ]

(* Arity-directed expression generator.  [allow_non_monotonic] gates Diff
   and Aggregate. *)
let expr ?(allow_non_monotonic = true) ~arity () : Algebra.t Gen.t =
  let open Gen in
  let base_of a =
    match base_names_of_arity a with
    | [] -> None
    | names -> Some (map Algebra.base (oneofl names))
  in
  let rec go ~arity ~depth =
    let leaf =
      match base_of arity with
      | Some g -> g
      | None ->
        (* No base with this arity: project a wider base down. *)
        let source = if arity <= 3 then 3 else 3 in
        let* js = projection ~source_arity:source ~target_arity:arity in
        return (Algebra.project js (Algebra.base "R3"))
    in
    if depth = 0 then leaf
    else
      let recur a = go ~arity:a ~depth:(depth - 1) in
      let monotonic_cases =
        [ (3, leaf);
          (2,
           let* p = predicate ~arity in
           let* e = recur arity in
           return (Algebra.select p e));
          (2,
           let* source_arity = int_range arity (min 4 (arity + 2)) in
           let* js = projection ~source_arity ~target_arity:arity in
           let* e = recur source_arity in
           return (Algebra.project js e));
          (2, map2 Algebra.union (recur arity) (recur arity));
          (1, map2 Algebra.intersect (recur arity) (recur arity)) ]
        @ (if arity >= 2 && arity <= 4 then
             [ (1,
                let* left = int_range 1 (arity - 1) in
                let right = arity - left in
                let* l = recur left in
                let* r = recur right in
                frequency
                  [ 1, return (Algebra.product l r);
                    1,
                    (let* p = predicate ~arity in
                     return (Algebra.join p l r)) ])
             ]
           else [])
      in
      let non_monotonic_cases =
        if not allow_non_monotonic then []
        else
          [ (1, map2 Algebra.diff (recur arity) (recur arity)) ]
          @
          if arity >= 2 then
            [ (1,
               let inner = arity - 1 in
               let* group =
                 list_size (int_range 1 (min 2 inner)) (int_range 1 inner)
               in
               let* f = agg_func ~arity:inner in
               let* e = recur inner in
               return (Algebra.aggregate group f e))
            ]
          else []
      in
      frequency (monotonic_cases @ non_monotonic_cases)
  in
  let* depth = int_range 0 3 in
  go ~arity ~depth

(* An (expression, environment) pair ready for evaluation. *)
let expr_and_env ?allow_non_monotonic () :
  (Algebra.t * (string * Relation.t) list) Gen.t =
  let open Gen in
  let* arity = int_range 1 3 in
  let* e = expr ?allow_non_monotonic ~arity () in
  let* bindings = env_bindings in
  return (e, bindings)

(* Aggregation partitions: lists of (tuple, texp) sharing nothing in
   particular; small values create ties, zeros, and neutral slices. *)
let partition ~arity : (Tuple.t * Time.t) list Gen.t =
  Gen.list_size (Gen.int_range 1 8) (Gen.pair (tuple ~arity) texp)

let interval : Interval.t Gen.t =
  let open Gen in
  let* lo = int_range 0 20 in
  let* len = int_range 1 10 in
  let* unbounded = frequency [ 6, return false; 1, return true ] in
  if unbounded then return (Interval.from (Time.of_int lo))
  else return (Interval.make (Time.of_int lo) (Time.of_int (lo + len)))

let interval_set : Interval_set.t Gen.t =
  Gen.map Interval_set.of_list (Gen.list_size (Gen.int_range 0 5) interval)

(* Sampling points for comparing interval sets and timelines. *)
let sample_times : Time.t list =
  List.init (max_finite_time + 12) Time.of_int @ [ Time.Inf ]

let to_alcotest = QCheck_alcotest.to_alcotest

let qtest name ?(count = 200) gen law =
  to_alcotest (QCheck2.Test.make ~name ~count gen law)
