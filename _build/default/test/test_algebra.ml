open Expirel_core

let env name =
  match name with
  | "R" -> Some 2
  | "S" -> Some 2
  | "T" -> Some 3
  | _ -> None

let arity_of e = Algebra.arity ~env e

let test_arities () =
  Alcotest.(check int) "base" 2 (arity_of (Algebra.base "R"));
  Alcotest.(check int) "select keeps arity" 2
    (arity_of Algebra.(select (Predicate.eq_cols 1 2) (base "R")));
  Alcotest.(check int) "project" 1 (arity_of Algebra.(project [ 2 ] (base "R")));
  Alcotest.(check int) "product sums" 5
    (arity_of Algebra.(product (base "R") (base "T")));
  Alcotest.(check int) "join sums" 4
    (arity_of Algebra.(join (Predicate.eq_cols 1 3) (base "R") (base "S")));
  Alcotest.(check int) "aggregate adds one" 3
    (arity_of Algebra.(aggregate [ 1 ] Aggregate.Count (base "R")))

let expect_arity_error e =
  match Algebra.well_formed ~env e with
  | Error _ -> ()
  | Ok a -> Alcotest.failf "expected arity error, got arity %d" a

let test_ill_formed () =
  expect_arity_error Algebra.(union (base "R") (base "T"));
  expect_arity_error Algebra.(diff (base "R") (base "T"));
  expect_arity_error Algebra.(intersect (base "R") (base "T"));
  expect_arity_error Algebra.(project [ 3 ] (base "R"));
  expect_arity_error Algebra.(project [] (base "R"));
  expect_arity_error Algebra.(select (Predicate.eq_cols 1 5) (base "R"));
  expect_arity_error Algebra.(join (Predicate.eq_cols 1 5) (base "R") (base "S"));
  expect_arity_error Algebra.(aggregate [ 9 ] Aggregate.Count (base "R"));
  expect_arity_error Algebra.(aggregate [ 1 ] (Aggregate.Sum 7) (base "R"));
  match Algebra.well_formed ~env (Algebra.base "missing") with
  | Error msg -> Alcotest.(check string) "unknown relation" "unknown relation missing" msg
  | Ok _ -> Alcotest.fail "expected unknown relation"

let test_nested_positions () =
  (* Join predicates range over the combined arity. *)
  Alcotest.(check int) "join predicate may use right side" 5
    (arity_of Algebra.(join (Predicate.eq_cols 2 5) (base "R") (base "T")))

let test_base_names () =
  let e = Algebra.(union (diff (base "R") (base "S")) (project [1;2] (base "R"))) in
  Alcotest.(check (list string)) "first occurrence order" [ "R"; "S" ]
    (Algebra.base_names e)

let test_size_equal () =
  let e = Algebra.(select Predicate.True (union (base "R") (base "S"))) in
  Alcotest.(check int) "size" 4 (Algebra.size e);
  Alcotest.(check bool) "structural equality" true (Algebra.equal e e);
  Alcotest.(check bool) "different" false
    (Algebra.equal e (Algebra.base "R"))

let test_pp () =
  let e = Algebra.(diff (project [ 1 ] (base "Pol")) (project [ 1 ] (base "El"))) in
  Alcotest.(check string) "rendering" "(pi_(1)(Pol) -exp pi_(1)(El))"
    (Algebra.to_string e)

let prop_generated_well_formed =
  Generators.qtest "generator only produces well-formed expressions"
    (Generators.expr_and_env ())
    (fun (e, bindings) ->
      let env name = Option.map Relation.arity (List.assoc_opt name bindings) in
      match Algebra.well_formed ~env e with
      | Ok _ -> true
      | Error _ -> false)

let suite =
  [ Alcotest.test_case "arity computation" `Quick test_arities;
    Alcotest.test_case "ill-formed expressions rejected" `Quick test_ill_formed;
    Alcotest.test_case "join predicate positions" `Quick test_nested_positions;
    Alcotest.test_case "base_names" `Quick test_base_names;
    Alcotest.test_case "size and equality" `Quick test_size_equal;
    Alcotest.test_case "pretty printing" `Quick test_pp;
    prop_generated_well_formed ]
