open Expirel_core

let fin = Time.of_int

let check_time = Alcotest.testable Time.pp Time.equal

let test_order () =
  Alcotest.(check bool) "0 < 1" true Time.(fin 0 < fin 1);
  Alcotest.(check bool) "5 < inf" true Time.(fin 5 < Time.Inf);
  Alcotest.(check bool) "inf <= inf" true Time.(Time.Inf <= Time.Inf);
  Alcotest.(check bool) "inf > any" true Time.(Time.Inf > fin max_int);
  Alcotest.(check int) "compare eq" 0 (Time.compare (fin 3) (fin 3));
  Alcotest.(check bool) "negative allowed" true Time.(fin (-1) < fin 0)

let test_min_max () =
  Alcotest.check check_time "min" (fin 2) (Time.min (fin 2) (fin 7));
  Alcotest.check check_time "min inf" (fin 2) (Time.min Time.Inf (fin 2));
  Alcotest.check check_time "max inf" Time.Inf (Time.max Time.Inf (fin 2));
  Alcotest.check check_time "min_list empty is inf" Time.Inf (Time.min_list []);
  Alcotest.check check_time "min_list" (fin 1)
    (Time.min_list [ fin 3; fin 1; Time.Inf ]);
  Alcotest.check check_time "max_list" Time.Inf
    (Time.max_list [ fin 3; Time.Inf; fin 1 ]);
  Alcotest.check check_time "max_list finite" (fin 9)
    (Time.max_list [ fin 3; fin 9 ])

let test_arith () =
  Alcotest.check check_time "succ" (fin 4) (Time.succ (fin 3));
  Alcotest.check check_time "succ inf" Time.Inf (Time.succ Time.Inf);
  Alcotest.check check_time "pred" (fin 2) (Time.pred (fin 3));
  Alcotest.check check_time "add" (fin 8) (Time.add (fin 3) (fin 5));
  Alcotest.check check_time "add absorbs" Time.Inf (Time.add (fin 3) Time.Inf)

let test_conversions () =
  Alcotest.(check (option int)) "to_int_opt fin" (Some 7) (Time.to_int_opt (fin 7));
  Alcotest.(check (option int)) "to_int_opt inf" None (Time.to_int_opt Time.Inf);
  Alcotest.(check bool) "is_finite" true (Time.is_finite (fin 0));
  Alcotest.(check bool) "is_infinite" true (Time.is_infinite Time.Inf);
  Alcotest.(check string) "print fin" "7" (Time.to_string (fin 7));
  Alcotest.(check string) "print inf" "inf" (Time.to_string Time.Inf)

let pair_gen = QCheck2.Gen.pair Generators.texp Generators.texp

let prop_total_order =
  Generators.qtest "compare is a total order (antisymmetry)" pair_gen
    (fun (a, b) ->
      let c = Time.compare a b and c' = Time.compare b a in
      (c = 0) = (c' = 0) && (c < 0) = (c' > 0))

let prop_min_max_consistent =
  Generators.qtest "min and max pick the bounds" pair_gen (fun (a, b) ->
      Time.(min a b <= max a b)
      && (Time.equal (Time.min a b) a || Time.equal (Time.min a b) b)
      && (Time.equal (Time.max a b) a || Time.equal (Time.max a b) b))

let prop_succ_monotone =
  Generators.qtest "succ is inflationary" Generators.texp (fun t ->
      Time.(t <= Time.succ t))

let suite =
  [ Alcotest.test_case "total order with infinity" `Quick test_order;
    Alcotest.test_case "min/max" `Quick test_min_max;
    Alcotest.test_case "succ/pred/add" `Quick test_arith;
    Alcotest.test_case "conversions and printing" `Quick test_conversions;
    prop_total_order;
    prop_min_max_consistent;
    prop_succ_monotone ]
