open Expirel_core
open Expirel_storage

let event table tuple texp fired_at =
  { Trigger.table; tuple; texp = Time.of_int texp; fired_at = Time.of_int fired_at }

let test_dispatch () =
  let r = Trigger.create () in
  let hits = ref [] in
  Trigger.register r ~name:"on_a" ~table:"a" (fun e ->
      hits := ("a:" ^ Tuple.to_string e.Trigger.tuple) :: !hits);
  Trigger.register r ~name:"all" ~table:"*" (fun e ->
      hits := ("*:" ^ e.Trigger.table) :: !hits);
  Trigger.fire r (event "a" (Tuple.ints [ 1 ]) 5 5);
  Trigger.fire r (event "b" (Tuple.ints [ 2 ]) 6 6);
  Alcotest.(check (list string)) "dispatch order"
    [ "a:<1>"; "*:a"; "*:b" ]
    (List.rev !hits)

let test_replace_unregister () =
  let r = Trigger.create () in
  let count = ref 0 in
  Trigger.register r ~name:"x" ~table:"a" (fun _ -> incr count);
  Trigger.register r ~name:"x" ~table:"a" (fun _ -> count := !count + 10);
  Alcotest.(check int) "one registration" 1 (Trigger.count r);
  Trigger.fire r (event "a" (Tuple.ints [ 1 ]) 1 1);
  Alcotest.(check int) "replacement ran" 10 !count;
  Trigger.unregister r ~name:"x";
  Trigger.fire r (event "a" (Tuple.ints [ 1 ]) 1 1);
  Alcotest.(check int) "unregistered silent" 10 !count

let test_log () =
  let r = Trigger.create () in
  Trigger.fire r (event "a" (Tuple.ints [ 1 ]) 3 3);
  Trigger.fire r (event "a" (Tuple.ints [ 2 ]) 4 4);
  Alcotest.(check int) "log keeps every event" 2 (List.length (Trigger.fired_log r));
  Alcotest.(check string) "oldest first" "<1>"
    (Tuple.to_string (List.hd (Trigger.fired_log r)).Trigger.tuple);
  Trigger.clear_log r;
  Alcotest.(check int) "cleared" 0 (List.length (Trigger.fired_log r))

let suite =
  [ Alcotest.test_case "table and wildcard dispatch" `Quick test_dispatch;
    Alcotest.test_case "replace and unregister" `Quick test_replace_unregister;
    Alcotest.test_case "event log" `Quick test_log ]
