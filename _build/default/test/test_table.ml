open Expirel_core
open Expirel_storage

let fin = Time.of_int
let make () = Table.create ~name:"t" ~columns:[ "a"; "b" ] ()

let test_schema () =
  let t = make () in
  Alcotest.(check string) "name" "t" (Table.name t);
  Alcotest.(check int) "arity" 2 (Table.arity t);
  Alcotest.(check (option int)) "column position" (Some 2) (Table.column_position t "b");
  Alcotest.(check (option int)) "unknown column" None (Table.column_position t "z");
  Alcotest.check_raises "empty columns" (Invalid_argument "Table.create: no columns")
    (fun () -> ignore (Table.create ~name:"x" ~columns:[] ()))

let test_insert_update () =
  let t = make () in
  let row = Tuple.ints [ 1; 2 ] in
  Table.insert t row ~texp:(fin 5);
  Table.insert t row ~texp:(fin 9);
  Alcotest.(check int) "set semantics" 1 (Table.physical_count t);
  Alcotest.(check (option string)) "update overwrites texp" (Some "9")
    (Option.map Time.to_string (Table.texp_of t row));
  Alcotest.(check bool) "delete" true (Table.delete t row);
  Alcotest.(check bool) "delete absent" false (Table.delete t row);
  Alcotest.(check int) "gone" 0 (Table.physical_count t)

let test_snapshot_and_expiry () =
  let t = make () in
  Table.insert t (Tuple.ints [ 1; 1 ]) ~texp:(fin 5);
  Table.insert t (Tuple.ints [ 2; 2 ]) ~texp:(fin 10);
  Table.insert t (Tuple.ints [ 3; 3 ]) ~texp:Time.Inf;
  Alcotest.(check int) "live at 4" 3 (Table.live_count t ~tau:(fin 4));
  Alcotest.(check int) "live at 5" 2 (Table.live_count t ~tau:(fin 5));
  (* Lazy invisibility: snapshot hides expired rows even before any
     physical removal. *)
  let snap = Table.snapshot t ~tau:(fin 7) in
  Alcotest.(check int) "snapshot filters" 2 (Relation.cardinal snap);
  Alcotest.(check int) "physical rows untouched" 3 (Table.physical_count t);
  (* Eager removal returns the expired rows in time order. *)
  let expired = Table.expire_upto t (fin 10) in
  Alcotest.(check (list string)) "expired rows" [ "<1, 1>"; "<2, 2>" ]
    (List.map (fun (tuple, _) -> Tuple.to_string tuple) expired);
  Alcotest.(check int) "physically removed" 1 (Table.physical_count t)

let test_update_after_expiry_scheduled () =
  let t = make () in
  let row = Tuple.ints [ 1; 1 ] in
  Table.insert t row ~texp:(fin 3);
  Table.insert t row ~texp:(fin 20);
  Alcotest.(check (list string)) "renewed row does not expire early" []
    (List.map (fun (tuple, _) -> Tuple.to_string tuple) (Table.expire_upto t (fin 10)));
  Alcotest.(check int) "still there" 1 (Table.physical_count t)

let test_vacuum () =
  let t = make () in
  Table.insert t (Tuple.ints [ 1; 1 ]) ~texp:(fin 2);
  Table.insert t (Tuple.ints [ 2; 2 ]) ~texp:(fin 4);
  Alcotest.(check int) "vacuum count" 2 (Table.vacuum t ~tau:(fin 9));
  Alcotest.(check int) "empty" 0 (Table.physical_count t)

let prop_snapshot_equals_reference =
  Generators.qtest "snapshot = reference exp_tau over inserts" ~count:200
    (QCheck2.Gen.pair
       (QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 30)
          (QCheck2.Gen.pair (Generators.tuple ~arity:2) Generators.texp))
       Generators.time_finite)
    (fun (rows, tau) ->
      let t = make () in
      let reference =
        List.fold_left
          (fun acc (row, texp) ->
            Table.insert t row ~texp;
            (* Last write wins, like Table.insert. *)
            Relation.replace row ~texp acc)
          (Relation.empty ~arity:2) rows
      in
      Relation.equal (Table.snapshot t ~tau) (Relation.exp tau reference))

let suite =
  [ Alcotest.test_case "schema accessors" `Quick test_schema;
    Alcotest.test_case "insert is update (set semantics)" `Quick test_insert_update;
    Alcotest.test_case "snapshots and eager expiry" `Quick test_snapshot_and_expiry;
    Alcotest.test_case "renewal cancels earlier expiry" `Quick
      test_update_after_expiry_scheduled;
    Alcotest.test_case "vacuum" `Quick test_vacuum;
    prop_snapshot_equals_reference ]
