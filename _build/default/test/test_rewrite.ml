open Expirel_core

let arities name =
  match name with
  | "R1" | "S1" -> Some 1
  | "R2" | "S2" -> Some 2
  | "R3" -> Some 3
  | _ -> None

let p12 = Predicate.eq_cols 1 2
let c1 v = Predicate.eq_const 1 (Value.int v)

let apply rule e = Rewrite.apply_once ~env:arities rule e

let check_rewrites name rule before after =
  match apply rule before with
  | Some e ->
    Alcotest.(check string) name (Algebra.to_string after) (Algebra.to_string e)
  | None -> Alcotest.failf "%s: rule did not fire on %s" name (Algebra.to_string before)

let test_select_merge () =
  check_rewrites "sigma(sigma) merges" Rewrite.select_merge
    Algebra.(select (c1 1) (select (c1 2) (base "R2")))
    Algebra.(select (Predicate.And (c1 2, c1 1)) (base "R2"));
  check_rewrites "sigma(join) folds into the join predicate" Rewrite.select_merge
    Algebra.(select (c1 1) (join p12 (base "R1") (base "S1")))
    Algebra.(join (Predicate.And (p12, c1 1)) (base "R1") (base "S1"))

let test_select_past_project () =
  (* sigma_{#1=5}(pi_2(R2)) -> pi_2(sigma_{#2=5}(R2)) *)
  check_rewrites "select slides under project" Rewrite.select_past_project
    Algebra.(select (c1 5) (project [ 2 ] (base "R2")))
    Algebra.(project [ 2 ] (select (Predicate.eq_const 2 (Value.int 5)) (base "R2")))

let test_select_pushdown_product () =
  (* Conjuncts split: #1=7 goes left, #3=8 goes right (shifted to #1),
     #1=#3 stays. *)
  let p =
    Predicate.conj
      [ Predicate.eq_const 1 (Value.int 7);
        Predicate.eq_const 3 (Value.int 8);
        Predicate.eq_cols 1 3 ]
  in
  match apply Rewrite.select_pushdown_product
          Algebra.(select p (product (base "R2") (base "S2")))
  with
  | Some (Algebra.Select (stay, Algebra.Product (Algebra.Select (l, _), Algebra.Select (r, _)))) ->
    Alcotest.(check string) "residue" "#1 = #3" (Predicate.to_string stay);
    Alcotest.(check string) "left conjunct" "#1 = 7" (Predicate.to_string l);
    Alcotest.(check string) "right conjunct shifted" "#1 = 8" (Predicate.to_string r)
  | Some e -> Alcotest.failf "unexpected shape %s" (Algebra.to_string e)
  | None -> Alcotest.fail "rule did not fire"

let test_join_predicate_pushdown () =
  (* #1=#3 spans both operands and stays; #1=3 mentions only the left
     operand and is pushed into it. *)
  match apply Rewrite.select_pushdown_product
          Algebra.(join (Predicate.And (Predicate.eq_cols 1 3, c1 3))
                     (base "R2") (base "S1"))
  with
  | Some (Algebra.Join (residue, Algebra.Select (l, _), Algebra.Base "S1")) ->
    Alcotest.(check string) "join residue" "#1 = #3" (Predicate.to_string residue);
    Alcotest.(check string) "pushed left" "#1 = 3" (Predicate.to_string l)
  | Some e -> Alcotest.failf "unexpected shape %s" (Algebra.to_string e)
  | None -> Alcotest.fail "rule did not fire"

let test_pushdown_setops () =
  check_rewrites "select distributes over union" Rewrite.select_pushdown_union
    Algebra.(select (c1 1) (union (base "R1") (base "S1")))
    Algebra.(union (select (c1 1) (base "R1")) (select (c1 1) (base "S1")));
  check_rewrites "select distributes over difference" Rewrite.select_pushdown_diff
    Algebra.(select (c1 1) (diff (base "R1") (base "S1")))
    Algebra.(diff (select (c1 1) (base "R1")) (select (c1 1) (base "S1")));
  check_rewrites "select distributes over intersection"
    Rewrite.select_pushdown_intersect
    Algebra.(select (c1 1) (intersect (base "R1") (base "S1")))
    Algebra.(intersect (select (c1 1) (base "R1")) (select (c1 1) (base "S1")))

let test_diff_pullup () =
  check_rewrites "(R - S) x T pulls the difference up" Rewrite.diff_pullup_product
    Algebra.(product (diff (base "R1") (base "S1")) (base "R2"))
    Algebra.(diff (product (base "R1") (base "R2")) (product (base "S1") (base "R2")));
  check_rewrites "T x (R - S) symmetric" Rewrite.diff_pullup_product
    Algebra.(product (base "R2") (diff (base "R1") (base "S1")))
    Algebra.(diff (product (base "R2") (base "R1")) (product (base "R2") (base "S1")))

let test_project_pushdown_union () =
  check_rewrites "project distributes over union" Rewrite.project_pushdown_union
    Algebra.(project [ 2 ] (union (base "R2") (base "S2")))
    Algebra.(union (project [ 2 ] (base "R2")) (project [ 2 ] (base "S2")))

let test_project_merge () =
  check_rewrites "pi(pi) composes" Rewrite.project_merge
    Algebra.(project [ 2; 1 ] (project [ 3; 1 ] (base "R3")))
    Algebra.(project [ 1; 3 ] (base "R3"))

let test_fixpoint_counts () =
  let e =
    Algebra.(select (c1 1) (select (c1 2) (project [ 1 ] (project [ 2; 1 ] (base "R2")))))
  in
  let rewritten, counts = Rewrite.rewrite ~env:arities e in
  Alcotest.(check bool) "select-merge fired" true
    (List.mem_assoc "select-merge" counts);
  Alcotest.(check bool) "project-merge fired" true
    (List.mem_assoc "project-merge" counts);
  (* Everything collapses to pi(sigma(R2)). *)
  (match rewritten with
   | Algebra.Project ([ 2 ], Algebra.Select (_, Algebra.Base "R2")) -> ()
   | e -> Alcotest.failf "unexpected normal form %s" (Algebra.to_string e))

let sample_taus = List.filter Time.is_finite Generators.sample_times

let prop_rewrite_preserves_semantics =
  Generators.qtest "rewriting preserves results at every time" ~count:300
    (Generators.expr_and_env ())
    (fun (e, bindings) ->
      let env_arity name = Option.map Relation.arity (List.assoc_opt name bindings) in
      let env = Eval.env_of_list bindings in
      let rewritten, _ = Rewrite.rewrite ~env:env_arity e in
      List.for_all
        (fun tau ->
          Relation.equal
            (Eval.relation_at ~env ~tau e)
            (Eval.relation_at ~env ~tau rewritten))
        sample_taus)

let prop_rewrite_never_hastens_recomputation =
  Generators.qtest "rewritten texp(e) >= original texp(e)" ~count:300
    (Generators.expr_and_env ())
    (fun (e, bindings) ->
      let env_arity name = Option.map Relation.arity (List.assoc_opt name bindings) in
      let env = Eval.env_of_list bindings in
      let rewritten, _ = Rewrite.rewrite ~env:env_arity e in
      List.for_all
        (fun tau ->
          Time.(
            (Eval.run ~env ~tau rewritten).Eval.texp
            >= (Eval.run ~env ~tau e).Eval.texp))
        sample_taus)

let suite =
  [ Alcotest.test_case "select merge" `Quick test_select_merge;
    Alcotest.test_case "select past project" `Quick test_select_past_project;
    Alcotest.test_case "conjunct split over product" `Quick
      test_select_pushdown_product;
    Alcotest.test_case "join predicate pushdown" `Quick test_join_predicate_pushdown;
    Alcotest.test_case "pushdown over set operators" `Quick test_pushdown_setops;
    Alcotest.test_case "difference pull-up (Section 3.1)" `Quick test_diff_pullup;
    Alcotest.test_case "project over union" `Quick test_project_pushdown_union;
    Alcotest.test_case "project merge" `Quick test_project_merge;
    Alcotest.test_case "fixpoint rewriting" `Quick test_fixpoint_counts;
    prop_rewrite_preserves_semantics;
    prop_rewrite_never_hastens_recomputation ]
