open Expirel_core
open Expirel_workload

let fin = Time.of_int
let env = News.figure1_env

let pol1 = Algebra.(project [ 1 ] (base "Pol"))
let el1 = Algebra.(project [ 1 ] (base "El"))
let difference = Algebra.(diff pol1 el1)
let histogram = Algebra.(aggregate [ 2 ] Aggregate.Count (base "Pol"))

let test_difference_reappearance () =
  let v = Schrodinger_view.materialise ~env ~tau:Time.zero difference in
  (* <1> appears during [5,10[, <2> during [3,15[, <3> during [0,10[. *)
  let check tau expected =
    let r = Schrodinger_view.read v ~tau:(fin tau) in
    Alcotest.(check (list string)) (Printf.sprintf "at %d" tau) expected
      (List.map (fun (t, _) -> Tuple.to_string t) (Relation.to_list r))
  in
  check 0 [ "<3>" ];
  check 3 [ "<2>"; "<3>" ];
  check 5 [ "<1>"; "<2>"; "<3>" ];
  check 10 [ "<2>" ];
  check 15 [];
  Alcotest.(check int) "three interval entries" 3 (Schrodinger_view.entries v)

let test_aggregation_value_windows () =
  let v = Schrodinger_view.materialise ~env ~tau:Time.zero histogram in
  let at tau = Schrodinger_view.read v ~tau:(fin tau) in
  Alcotest.(check bool) "count 2 at 0" true
    (Relation.mem (Tuple.ints [ 1; 25; 2 ]) (at 0));
  (* After time 10 the count for degree 25 is 1 — the window the paper's
     single expiration time cannot serve. *)
  Alcotest.(check bool) "count 1 at 12" true
    (Relation.mem (Tuple.ints [ 2; 25; 1 ]) (at 12));
  Alcotest.(check int) "only one row at 12" 1 (Relation.cardinal (at 12));
  Alcotest.(check int) "empty at 15" 0 (Relation.cardinal (at 15))

let test_read_guard () =
  let v = Schrodinger_view.materialise ~env ~tau:(fin 5) pol1 in
  Alcotest.check_raises "no reads before materialisation"
    (Invalid_argument "Schrodinger_view.read: before materialisation time")
    (fun () -> ignore (Schrodinger_view.read v ~tau:(fin 2)))

let future_times = List.filter Time.is_finite Generators.sample_times

(* The central claim: a Schrödinger view answers every future query
   exactly, with zero recomputation, for difference and aggregation
   roots over monotonic children. *)
let prop_difference_maintenance_free =
  Generators.qtest "difference roots: read = fresh evaluation forever" ~count:200
    (QCheck2.Gen.pair
       (QCheck2.Gen.pair
          (Generators.expr ~allow_non_monotonic:false ~arity:2 ())
          (Generators.expr ~allow_non_monotonic:false ~arity:2 ()))
       Generators.env_bindings)
    (fun ((l, r), bindings) ->
      let env = Eval.env_of_list bindings in
      let expr = Algebra.diff l r in
      let v = Schrodinger_view.materialise ~env ~tau:Time.zero expr in
      List.for_all
        (fun tau ->
          Relation.equal
            (Schrodinger_view.read v ~tau)
            (Eval.relation_at ~env ~tau expr))
        future_times)

let agg_root_gen =
  let open QCheck2.Gen in
  let* child = Generators.expr ~allow_non_monotonic:false ~arity:2 () in
  let* f = Generators.agg_func ~arity:2 in
  let* group = oneofl [ [ 1 ]; [ 2 ]; [ 1; 2 ] ] in
  let* bindings = Generators.env_bindings in
  return (Algebra.aggregate group f child, bindings)

let prop_aggregation_maintenance_free =
  Generators.qtest "aggregation roots: read = fresh evaluation forever"
    ~count:200 agg_root_gen
    (fun (expr, bindings) ->
      let env = Eval.env_of_list bindings in
      let v = Schrodinger_view.materialise ~env ~tau:Time.zero expr in
      List.for_all
        (fun tau ->
          Relation.equal
            (Schrodinger_view.read v ~tau)
            (Eval.relation_at ~strategy:Aggregate.Exact ~env ~tau expr))
        future_times)

(* Section 3.4.1's storage bound: the number of aggregate-value changes
   is at most |R|, so entries <= 2 |R| (each member appears in at most
   one entry per value segment of its partition; segments per partition
   <= partition size + 1... the practically useful bound we check is the
   paper's: per-partition changes <= partition size). *)
let prop_aggregation_storage_bound =
  Generators.qtest "per-partition value changes are bounded by |P|" ~count:200
    (QCheck2.Gen.pair (Generators.agg_func ~arity:2) (Generators.partition ~arity:2))
    (fun (f, p) ->
      let live = List.filter (fun (_, e) -> Time.(e > Time.zero)) p in
      if live = [] then true
      else
        let segments = Aggregate.timeline ~tau:Time.zero f live in
        (* timeline returns the initial segment plus one per change. *)
        List.length segments - 1 <= List.length live)

let prop_monotonic_matches_plain_view =
  Generators.qtest "monotonic roots behave like ordinary materialisations"
    ~count:100
    (Generators.expr_and_env ~allow_non_monotonic:false ())
    (fun (expr, bindings) ->
      let env = Eval.env_of_list bindings in
      let v = Schrodinger_view.materialise ~env ~tau:Time.zero expr in
      let materialised = Eval.relation_at ~env ~tau:Time.zero expr in
      List.for_all
        (fun tau ->
          Relation.equal_tuples
            (Schrodinger_view.read v ~tau)
            (Relation.exp tau materialised))
        future_times)

let suite =
  [ Alcotest.test_case "difference tuples reappear (Section 3.4.2)" `Quick
      test_difference_reappearance;
    Alcotest.test_case "aggregate value windows (Section 3.4.1)" `Quick
      test_aggregation_value_windows;
    Alcotest.test_case "read guard" `Quick test_read_guard;
    prop_difference_maintenance_free;
    prop_aggregation_maintenance_free;
    prop_aggregation_storage_bound;
    prop_monotonic_matches_plain_view ]
