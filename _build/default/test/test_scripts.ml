(* End-to-end execution of the checked-in .sqlx scripts: every statement
   must succeed, and a handful of landmark outputs are pinned. *)


open Expirel_sqlx

let string_contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let read_script name =
  let path = Filename.concat "scripts" name in
  let ic = open_in path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  text

let run_script name =
  let t = Interp.create () in
  let results = Interp.exec_script t (read_script name) in
  List.iteri
    (fun i result ->
      match result with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "%s: statement %d failed: %s" name (i + 1) msg)
    results;
  List.map
    (function
      | Ok outcome -> Interp.render outcome
      | Error _ -> assert false)
    results

let nth_output outputs i = List.nth outputs (i - 1)

let test_news () =
  let outputs = run_script "news.sqlx" in
  Alcotest.(check int) "19 statements" 19 (List.length outputs);
  (* EXPLAIN reports the difference's data-dependent expiration time. *)
  Alcotest.(check bool) "explain texp" true
    (string_contains (nth_output outputs 13) "texp(e) now: 3");
  (* The difference grew by time 5 (Figure 3d: three tuples). *)
  Alcotest.(check bool) "view recomputed at 5" true
    (string_contains (nth_output outputs 15) "(view recomputed)"
     && string_contains (nth_output outputs 15) "| 10   | 3   |");
  (* The AT query sees the known future: only <2> survives past 14. *)
  Alcotest.(check bool) "future query" true
    (string_contains (nth_output outputs 18) "| 15   | 2   |");
  Alcotest.(check string) "clock" "12" (nth_output outputs 19)

let test_sessions () =
  let outputs = run_script "sessions.sqlx" in
  (* The maintained view reflects inserts immediately... *)
  Alcotest.(check bool) "two rows initially" true
    (string_contains (nth_output outputs 7) "| 7   | 2     |");
  (* ...the trigger logged the timeout at its exact time... *)
  Alcotest.(check bool) "timeout logged" true
    (string_contains (nth_output outputs 9) "timeouts: sessions<3, 9> expired at 10");
  (* ...renewal keeps the count... *)
  Alcotest.(check bool) "after renewal" true
    (string_contains (nth_output outputs 11) "| 7   | 2     |");
  (* ...and deletion empties it. *)
  Alcotest.(check bool) "after delete" true
    (string_contains (nth_output outputs 13) "(empty)")

let test_constraints () =
  let outputs = run_script "constraints.sqlx" in
  Alcotest.(check bool) "prediction before" true
    (string_contains (nth_output outputs 7) "seniors: 2 row(s), min 2 — breaks at 25");
  Alcotest.(check bool) "violation reported on advance" true
    (string_contains (nth_output outputs 8) "CONSTRAINT VIOLATED: seniors!min at 25");
  Alcotest.(check bool) "violated now" true
    (string_contains (nth_output outputs 9) "VIOLATED NOW");
  Alcotest.(check bool) "repaired after insert" true
    (string_contains (nth_output outputs 11) "seniors: 2 row(s), min 2 — breaks at 60");
  Alcotest.(check bool) "dropped constraint vanishes" false
    (string_contains (nth_output outputs 13) "anyone")

let suite =
  [ Alcotest.test_case "news.sqlx runs clean with pinned landmarks" `Quick
      test_news;
    Alcotest.test_case "sessions.sqlx" `Quick test_sessions;
    Alcotest.test_case "constraints.sqlx" `Quick test_constraints ]
