open Expirel_core

let test_compare_total () =
  Alcotest.(check bool) "int order" true (Value.compare (Value.int 1) (Value.int 2) < 0);
  Alcotest.(check bool) "str order" true
    (Value.compare (Value.str "a") (Value.str "b") < 0);
  Alcotest.(check bool) "null smallest" true
    (Value.compare Value.Null (Value.bool false) < 0);
  Alcotest.(check bool) "cross-type by tag" true
    (Value.compare (Value.bool true) (Value.int 0) < 0);
  Alcotest.(check bool) "equal" true (Value.equal (Value.int 3) (Value.int 3))

let test_cmp_sql () =
  Alcotest.(check (option int)) "null incomparable" None
    (Value.cmp Value.Null (Value.int 1));
  Alcotest.(check (option int)) "int vs str incomparable" None
    (Value.cmp (Value.int 1) (Value.str "1"));
  Alcotest.(check (option int)) "int float mix" (Some 0)
    (Value.cmp (Value.int 2) (Value.float 2.0));
  Alcotest.(check bool) "int lt" true
    (match Value.cmp (Value.int 1) (Value.int 5) with
     | Some c -> c < 0
     | None -> false)

let test_add () =
  Alcotest.(check bool) "int add" true
    (Value.equal (Value.add (Value.int 2) (Value.int 3)) (Value.int 5));
  Alcotest.(check bool) "mixed add is float" true
    (Value.equal (Value.add (Value.int 2) (Value.float 0.5)) (Value.float 2.5));
  Alcotest.(check bool) "null absorbs" true
    (Value.is_null (Value.add Value.Null (Value.int 3)));
  Alcotest.check_raises "string add rejected"
    (Invalid_argument "Value.add: non-numeric operand") (fun () ->
      ignore (Value.add (Value.str "a") (Value.int 1)))

let test_to_float () =
  Alcotest.(check (option (float 0.0))) "int" (Some 3.) (Value.to_float (Value.int 3));
  Alcotest.(check (option (float 0.0))) "str" None (Value.to_float (Value.str "x"))

let prop_compare_antisym =
  Generators.qtest "compare antisymmetric"
    (QCheck2.Gen.pair Generators.small_value Generators.small_value)
    (fun (a, b) ->
      let c = Value.compare a b and c' = Value.compare b a in
      (c = 0) = (c' = 0) && (c < 0) = (c' > 0))

let prop_hash_respects_equal =
  Generators.qtest "equal values hash equally"
    (QCheck2.Gen.pair Generators.small_value Generators.small_value)
    (fun (a, b) -> (not (Value.equal a b)) || Value.hash a = Value.hash b)

let suite =
  [ Alcotest.test_case "total order" `Quick test_compare_total;
    Alcotest.test_case "SQL-style cmp" `Quick test_cmp_sql;
    Alcotest.test_case "numeric add" `Quick test_add;
    Alcotest.test_case "to_float" `Quick test_to_float;
    prop_compare_antisym;
    prop_hash_respects_equal ]
