open Expirel_core

let fin = Time.of_int
let t1 = Tuple.ints [ 1 ]
let t2 = Tuple.ints [ 2 ]

let test_set_semantics () =
  let r = Relation.empty ~arity:1 in
  let r = Relation.add t1 ~texp:(fin 5) r in
  let r = Relation.add t1 ~texp:(fin 3) r in
  Alcotest.(check int) "still one tuple" 1 (Relation.cardinal r);
  Alcotest.(check bool) "max texp kept" true (Time.equal (Relation.texp r t1) (fin 5));
  let r = Relation.add t1 ~texp:(fin 9) r in
  Alcotest.(check bool) "later texp wins" true (Time.equal (Relation.texp r t1) (fin 9));
  let r = Relation.add_min t1 ~texp:(fin 2) r in
  Alcotest.(check bool) "add_min keeps earlier" true
    (Time.equal (Relation.texp r t1) (fin 2));
  let r = Relation.replace t1 ~texp:(fin 7) r in
  Alcotest.(check bool) "replace overwrites" true
    (Time.equal (Relation.texp r t1) (fin 7))

let test_arity_checks () =
  Alcotest.check_raises "negative arity"
    (Invalid_argument "Relation.empty: negative arity") (fun () ->
      ignore (Relation.empty ~arity:(-1)));
  let r = Relation.empty ~arity:2 in
  Alcotest.check_raises "tuple arity mismatch"
    (Invalid_argument "Relation: tuple arity 1, relation arity 2") (fun () ->
      ignore (Relation.add t1 ~texp:(fin 1) r))

let test_exp () =
  let r =
    Relation.of_list ~arity:1
      [ t1, fin 5; t2, fin 10; Tuple.ints [ 3 ], Time.Inf ]
  in
  let at4 = Relation.exp (fin 4) r in
  Alcotest.(check int) "all live at 4" 3 (Relation.cardinal at4);
  let at5 = Relation.exp (fin 5) r in
  Alcotest.(check int) "texp=5 dies at 5" 2 (Relation.cardinal at5);
  Alcotest.(check bool) "t1 gone" false (Relation.mem t1 at5);
  let at_inf_minus = Relation.exp (fin 1000) r in
  Alcotest.(check int) "immortal survives" 1 (Relation.cardinal at_inf_minus)

let test_union_max () =
  let a = Relation.of_list ~arity:1 [ t1, fin 5; t2, fin 3 ] in
  let b = Relation.of_list ~arity:1 [ t1, fin 8 ] in
  let u = Relation.union_max a b in
  Alcotest.(check int) "two tuples" 2 (Relation.cardinal u);
  Alcotest.(check bool) "max texp for shared" true
    (Time.equal (Relation.texp u t1) (fin 8));
  Alcotest.check_raises "union compatibility"
    (Invalid_argument "Relation.union_max: arity mismatch (union compatibility)")
    (fun () -> ignore (Relation.union_max a (Relation.empty ~arity:2)))

let test_map_tuples_dedup_max () =
  (* Both tuples project to <25>; the projection keeps the max texp —
     Equation (3) / Figure 2(c). *)
  let r =
    Relation.of_list ~arity:2
      [ Tuple.ints [ 1; 25 ], fin 10; Tuple.ints [ 2; 25 ], fin 15 ]
  in
  let p = Relation.map_tuples ~arity:1 (Tuple.project [ 2 ]) r in
  Alcotest.(check int) "deduplicated" 1 (Relation.cardinal p);
  Alcotest.(check bool) "max lifetime inherited" true
    (Time.equal (Relation.texp p (Tuple.ints [ 25 ])) (fin 15))

let test_equal_tuples () =
  let a = Relation.of_list ~arity:1 [ t1, fin 5 ] in
  let b = Relation.of_list ~arity:1 [ t1, fin 9 ] in
  Alcotest.(check bool) "same tuples" true (Relation.equal_tuples a b);
  Alcotest.(check bool) "different texps" false (Relation.equal a b)

let test_expiry_times () =
  let r =
    Relation.of_list ~arity:1
      [ t1, fin 5; t2, fin 3; Tuple.ints [ 3 ], fin 5; Tuple.ints [ 4 ], Time.Inf ]
  in
  Alcotest.(check (list string)) "distinct ascending finite" [ "3"; "5" ]
    (List.map Time.to_string (Relation.expiry_times r))

let rel_gen = Generators.relation ~arity:2
let tau2 = QCheck2.Gen.pair Generators.time_finite Generators.time_finite

let prop_exp_composes =
  Generators.qtest "exp t' (exp t r) = exp (max t t') r"
    (QCheck2.Gen.pair rel_gen tau2)
    (fun (r, (tau, tau')) ->
      Relation.equal
        (Relation.exp tau' (Relation.exp tau r))
        (Relation.exp (Time.max tau tau') r))

let prop_exp_shrinks =
  Generators.qtest "exp only removes" (QCheck2.Gen.pair rel_gen Generators.time_finite)
    (fun (r, tau) ->
      Relation.fold
        (fun t texp ok -> ok && Relation.texp_opt r t = Some texp)
        (Relation.exp tau r) true)

let prop_union_commutes =
  Generators.qtest "union_max commutative" (QCheck2.Gen.pair rel_gen rel_gen)
    (fun (a, b) -> Relation.equal (Relation.union_max a b) (Relation.union_max b a))

let prop_min_texp_bound =
  Generators.qtest "min_texp bounds every tuple" rel_gen (fun r ->
      let m = Relation.min_texp r in
      Relation.fold (fun _ texp ok -> ok && Time.(texp >= m)) r true)

let suite =
  [ Alcotest.test_case "set semantics with max merge" `Quick test_set_semantics;
    Alcotest.test_case "arity validation" `Quick test_arity_checks;
    Alcotest.test_case "exp_tau filtering" `Quick test_exp;
    Alcotest.test_case "union with max" `Quick test_union_max;
    Alcotest.test_case "projection dedup keeps max (Eq 3)" `Quick
      test_map_tuples_dedup_max;
    Alcotest.test_case "equality modulo texp" `Quick test_equal_tuples;
    Alcotest.test_case "expiry_times" `Quick test_expiry_times;
    prop_exp_composes;
    prop_exp_shrinks;
    prop_union_commutes;
    prop_min_texp_bound ]
