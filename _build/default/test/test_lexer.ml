open Expirel_sqlx

let tokens text = List.map fst (Lexer.tokenize text)

let tok = Alcotest.testable Token.pp Token.equal

let test_basic () =
  Alcotest.(check (list tok)) "statement"
    [ Token.Keyword "SELECT"; Token.Star; Token.Keyword "FROM";
      Token.Ident "pol"; Token.Semicolon; Token.Eof ]
    (tokens "SELECT * FROM pol;")

let test_case_insensitive_keywords () =
  Alcotest.(check (list tok)) "lowercase keywords"
    [ Token.Keyword "SELECT"; Token.Keyword "FROM"; Token.Eof ]
    (tokens "select from");
  Alcotest.(check (list tok)) "identifiers keep case"
    [ Token.Ident "MyTable"; Token.Eof ]
    (tokens "MyTable")

let test_literals () =
  Alcotest.(check (list tok)) "numbers"
    [ Token.Int_lit 42; Token.Int_lit (-7); Token.Float_lit 3.5; Token.Eof ]
    (tokens "42 -7 3.5");
  Alcotest.(check (list tok)) "strings with escaped quote"
    [ Token.String_lit "it's"; Token.Eof ]
    (tokens "'it''s'")

let test_operators () =
  Alcotest.(check (list tok)) "comparisons"
    [ Token.Eq; Token.Neq; Token.Lt; Token.Le; Token.Gt; Token.Ge; Token.Eof ]
    (tokens "= <> < <= > >=");
  Alcotest.(check (list tok)) "punctuation"
    [ Token.Lparen; Token.Rparen; Token.Comma; Token.Dot; Token.Eof ]
    (tokens "( ) , .")

let test_comments () =
  Alcotest.(check (list tok)) "line comment skipped"
    [ Token.Int_lit 1; Token.Int_lit 2; Token.Eof ]
    (tokens "1 -- everything here is ignored\n2")

let test_errors () =
  (match Lexer.tokenize "'unterminated" with
   | exception Lexer.Error (msg, 0) ->
     Alcotest.(check string) "unterminated" "unterminated string" msg
   | _ -> Alcotest.fail "expected lexer error");
  (match Lexer.tokenize "a ? b" with
   | exception Lexer.Error (_, 2) -> ()
   | _ -> Alcotest.fail "expected error at offset 2")

let suite =
  [ Alcotest.test_case "basic statement" `Quick test_basic;
    Alcotest.test_case "keyword case-insensitivity" `Quick test_case_insensitive_keywords;
    Alcotest.test_case "literals" `Quick test_literals;
    Alcotest.test_case "operators" `Quick test_operators;
    Alcotest.test_case "comments" `Quick test_comments;
    Alcotest.test_case "errors with offsets" `Quick test_errors ]
