open Expirel_core
open Expirel_workload

let string_contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_relation_table () =
  let text =
    Explain.relation_table ~title:"Pol" ~columns:[ "uid"; "deg" ] News.figure1_pol
  in
  Alcotest.(check bool) "title" true (string_contains text "Pol");
  Alcotest.(check bool) "header" true (string_contains text "| texp | uid | deg |");
  Alcotest.(check bool) "row" true (string_contains text "| 15   | 2   | 25  |");
  let empty = Explain.relation_table (Relation.empty ~arity:1) in
  Alcotest.(check bool) "empty marker" true (string_contains empty "(empty)");
  let default_headers = Explain.relation_table (Relation.empty ~arity:2) in
  Alcotest.(check bool) "generated column names" true
    (string_contains default_headers "a1")

let test_expr_tree () =
  let e =
    Algebra.(
      diff
        (project [ 1 ] (select (Predicate.eq_const 2 (Value.int 25)) (base "Pol")))
        (aggregate [ 1 ] Aggregate.Count (base "El")))
  in
  let text = Explain.expr_tree e in
  let lines = String.split_on_char '\n' text in
  Alcotest.(check (option string)) "root" (Some "difference")
    (List.nth_opt lines 0);
  Alcotest.(check (option string)) "indented child" (Some "  project [1]")
    (List.nth_opt lines 1);
  Alcotest.(check bool) "predicate rendered" true
    (string_contains text "select [#2 = 25]");
  Alcotest.(check bool) "aggregate rendered" true
    (string_contains text "aggregate [group {1}, count]")

let test_snapshots () =
  let text =
    Explain.snapshots ~env:News.figure1_env
      ~times:(List.map Time.of_int [ 0; 10 ])
      Algebra.(project [ 2 ] (base "Pol"))
  in
  Alcotest.(check bool) "mentions both times" true
    (string_contains text "at time 0:" && string_contains text "at time 10:");
  Alcotest.(check string) "empty on no times" ""
    (Explain.snapshots ~env:News.figure1_env ~times:[] (Algebra.base "Pol"))

let suite =
  [ Alcotest.test_case "relation tables" `Quick test_relation_table;
    Alcotest.test_case "expression trees" `Quick test_expr_tree;
    Alcotest.test_case "snapshots" `Quick test_snapshots ]
