open Expirel_core
open Expirel_dist
open Expirel_workload

let env = News.figure1_env
let difference = Algebra.(diff (project [ 1 ] (base "Pol")) (project [ 1 ] (base "El")))
let join = Algebra.(join (Predicate.eq_cols 1 3) (base "Pol") (base "El"))

let base_config strategy =
  { Sim_unreliable.horizon = 20; strategy; offline = []; skew = 0; margin = 0;
    patch_delay = 0 }

let run ?(config = base_config Sim.Expiration_aware) expr =
  Sim_unreliable.run ~env ~expr config

let test_baseline_matches_ideal () =
  (* No skew, no margin, no outage: same behaviour as the ideal sim. *)
  List.iter
    (fun (strategy, expr) ->
      let r = run ~config:(base_config strategy) expr in
      Alcotest.(check int)
        (Sim.strategy_label strategy ^ ": exact")
        0
        (r.Sim_unreliable.expired_served + r.Sim_unreliable.valid_dropped))
    [ Sim.Expiration_aware, difference;
      Sim.Expiration_aware, join;
      Sim.Patched, difference;
      Sim.Poll 1, join ]

let test_outage_never_corrupts () =
  (* The link dies before the first refetch would happen (texp(e)=3). *)
  let config =
    { (base_config Sim.Expiration_aware) with offline = [ 2, 12 ] }
  in
  let r = run ~config difference in
  Alcotest.(check int) "never wrong data" 0 r.Sim_unreliable.expired_served;
  Alcotest.(check bool) "but misses reappearances" true
    (r.Sim_unreliable.valid_dropped > 0);
  Alcotest.(check bool) "retried while down" true
    (r.Sim_unreliable.blocked_fetches > 0);
  (* Monotonic views do not even notice the outage. *)
  let r = run ~config:{ config with offline = [ 1, 19 ] } join in
  Alcotest.(check int) "monotonic: zero divergence through a 18-tick outage"
    0
    (r.Sim_unreliable.expired_served + r.Sim_unreliable.valid_dropped)

let test_patched_rides_out_outage () =
  let config =
    { (base_config Sim.Patched) with offline = [ 1, 19 ] }
  in
  let r = run ~config difference in
  Alcotest.(check int) "patched: exact despite the outage" 0
    (r.Sim_unreliable.expired_served + r.Sim_unreliable.valid_dropped);
  Alcotest.(check int) "one shipment only" 2 r.Sim_unreliable.metrics.Metrics.messages

let test_slow_clock_serves_expired () =
  (* A slow client clock holds tuples too long... *)
  let config = { (base_config Sim.Expiration_aware) with skew = -3 } in
  let r = run ~config join in
  Alcotest.(check bool) "slow clock corrupts" true
    (r.Sim_unreliable.expired_served > 0);
  (* ...unless the server ships a matching safety margin — which, when
     it exactly cancels the skew, costs nothing at all. *)
  let r = run ~config:{ config with margin = 3 } join in
  Alcotest.(check int) "margin restores safety" 0 r.Sim_unreliable.expired_served;
  Alcotest.(check int) "exact cancellation is free" 0 r.Sim_unreliable.valid_dropped;
  (* Guarding against worse skew than the client actually has is what
     costs availability. *)
  let r = run ~config:{ config with margin = 7 } join in
  Alcotest.(check int) "over-provisioned margin still safe" 0
    r.Sim_unreliable.expired_served;
  Alcotest.(check bool) "but drops valid rows" true
    (r.Sim_unreliable.valid_dropped > 0)

let test_fast_clock_patches_early () =
  let config = { (base_config Sim.Patched) with skew = 4 } in
  let r = run ~config difference in
  Alcotest.(check bool) "fast clock patches too early" true
    (r.Sim_unreliable.expired_served > 0);
  let r = run ~config:{ config with patch_delay = 4; margin = 0 } difference in
  Alcotest.(check int) "patch delay guards it" 0 r.Sim_unreliable.expired_served

let test_validation () =
  let bad offline =
    Alcotest.check_raises "windows"
      (Invalid_argument "Sim_unreliable.run: offline windows unsorted or overlapping")
      (fun () ->
        ignore (run ~config:{ (base_config (Sim.Poll 3)) with offline } join))
  in
  bad [ 5, 5 ];
  bad [ 8, 12; 3, 6 ];
  bad [ 3, 8; 6, 10 ];
  Alcotest.check_raises "up at 0"
    (Invalid_argument "Sim_unreliable.run: link must be up at tick 0") (fun () ->
      ignore (run ~config:{ (base_config (Sim.Poll 3)) with offline = [ 0, 4 ] } join))

(* The headline safety property: with margin >= max 0 (-skew) and
   patch_delay >= max 0 skew, no strategy ever serves wrong data —
   whatever the outage pattern. *)
let scenario_gen =
  let open QCheck2.Gen in
  let* skew = int_range (-5) 5 in
  let* extra = int_range 0 2 in
  let* strategy =
    oneofl [ Sim.Poll 4; Sim.Poll 9; Sim.Expiration_aware; Sim.Patched ]
  in
  let* outage_start = int_range 1 15 in
  let* outage_len = int_range 0 10 in
  let* l = Generators.expr ~allow_non_monotonic:false ~arity:2 () in
  let* r = Generators.expr ~allow_non_monotonic:false ~arity:2 () in
  let* bindings = Generators.env_bindings in
  return (skew, extra, strategy, (outage_start, outage_len), (l, r), bindings)

let prop_margin_guarantees_safety =
  Generators.qtest "margin + patch delay => never wrong data" ~count:250
    scenario_gen
    (fun (skew, extra, strategy, (o_start, o_len), (l, r), bindings) ->
      let env = Eval.env_of_list bindings in
      let expr = Algebra.diff l r in
      let config =
        { Sim_unreliable.horizon = 30;
          strategy;
          offline = (if o_len = 0 then [] else [ o_start, o_start + o_len ]);
          skew;
          margin = max 0 (-skew) + extra;
          patch_delay = max 0 skew + extra
        }
      in
      let report = Sim_unreliable.run ~env ~expr config in
      report.Sim_unreliable.expired_served = 0)

let suite =
  [ Alcotest.test_case "ideal conditions match the ideal sim" `Quick
      test_baseline_matches_ideal;
    Alcotest.test_case "outages cost availability, never correctness" `Quick
      test_outage_never_corrupts;
    Alcotest.test_case "patched views ride out outages" `Quick
      test_patched_rides_out_outage;
    Alcotest.test_case "slow clocks vs safety margins" `Quick
      test_slow_clock_serves_expired;
    Alcotest.test_case "fast clocks vs patch delays" `Quick
      test_fast_clock_patches_early;
    Alcotest.test_case "validation" `Quick test_validation;
    prop_margin_guarantees_safety ]
