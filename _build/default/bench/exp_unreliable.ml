(* Experiment exp-unreliable: the paper's opening setting made
   quantitative — intermittent connectivity and unsynchronised clocks
   (Section 1).

   Expected shapes: during an outage, expiration-carrying views lose
   availability only (never correctness), monotonic and patched views do
   not even diverge; clock skew corrupts exactly the slow-clock /
   early-patch directions, and the margin / patch-delay mitigations
   restore zero corruption at a measurable availability cost. *)

open Expirel_core
open Expirel_dist
open Expirel_workload

let make_env () =
  let rng = Bench_util.rng 85 in
  let r, s =
    Gen.overlapping_pair ~rng ~arity:2 ~cardinality:300 ~overlap:0.4
      ~values:(Gen.Uniform_value 2000) ~ttl:(Gen.Uniform_ttl (10, 160))
      ~now:Time.zero
  in
  Eval.env_of_list [ "R", r; "S", s ]

let monotonic =
  Algebra.(
    select
      (Predicate.Cmp (Predicate.Lt, Predicate.Col 2, Predicate.Const (Value.int 1000)))
      (base "R"))

let difference = Algebra.(diff (base "R") (base "S"))

let report_row label (r : Sim_unreliable.report) =
  [ label;
    string_of_int r.Sim_unreliable.metrics.Metrics.messages;
    string_of_int r.Sim_unreliable.blocked_fetches;
    string_of_int r.Sim_unreliable.expired_served;
    string_of_int r.Sim_unreliable.valid_dropped ]

let outage_sweep () =
  Bench_util.subsection "a 60-tick outage (ticks 40..100), horizon 180";
  let env = make_env () in
  let config strategy =
    { Sim_unreliable.horizon = 180; strategy; offline = [ 40, 100 ]; skew = 0;
      margin = 0; patch_delay = 0 }
  in
  let rows =
    [ report_row "monotonic / expiration-aware"
        (Sim_unreliable.run ~env ~expr:monotonic (config Sim.Expiration_aware));
      report_row "monotonic / poll(5)"
        (Sim_unreliable.run ~env ~expr:monotonic (config (Sim.Poll 5)));
      report_row "difference / expiration-aware"
        (Sim_unreliable.run ~env ~expr:difference (config Sim.Expiration_aware));
      report_row "difference / poll(5)"
        (Sim_unreliable.run ~env ~expr:difference (config (Sim.Poll 5)));
      report_row "difference / patched"
        (Sim_unreliable.run ~env ~expr:difference (config Sim.Patched)) ]
  in
  Bench_util.table
    ~headers:[ "view / strategy"; "messages"; "blocked"; "wrong served";
               "valid dropped" ]
    rows;
  print_endline
    "\nShape check: nothing ever serves wrong data through the outage —\n\
     disconnection only costs missed reappearances (dropped rows) on the\n\
     non-monotonic view; monotonic and patched views sail through."

let skew_sweep () =
  Bench_util.subsection "clock skew vs safety margin (difference view, horizon 120)";
  let env = make_env () in
  let run skew margin patch_delay =
    Sim_unreliable.run ~env ~expr:difference
      { Sim_unreliable.horizon = 120; strategy = Sim.Expiration_aware;
        offline = []; skew; margin; patch_delay }
  in
  let rows =
    List.concat_map
      (fun skew ->
        List.map
          (fun margin ->
            let r = run skew margin 0 in
            [ string_of_int skew;
              string_of_int margin;
              string_of_int r.Sim_unreliable.expired_served;
              string_of_int r.Sim_unreliable.valid_dropped ])
          [ 0; 3; 6 ])
      [ -6; -3; 0; 3 ]
  in
  Bench_util.table
    ~headers:[ "skew"; "margin"; "wrong served"; "valid dropped" ]
    rows;
  print_endline
    "\nShape check: wrong data appears exactly when margin < -skew (slow\n\
     clocks holding tuples too long); once margin covers the skew the\n\
     corruption is zero, and every surplus tick of margin shows up as\n\
     dropped-but-valid rows instead."

let run_all () =
  Bench_util.section
    "Experiment exp-unreliable: outages and clock skew (Section 1's setting)";
  outage_sweep ();
  skew_sweep ()
