(* Experiment exp-index (substrate claim, citation [24]): expiration
   indexes make expiration processing cheap.  Loads n registrations and
   advances time in steps, measuring wall-clock per backend.

   Expected shape: heap and wheel scale near-linearly and beat the naive
   scan by orders of magnitude at large n, because the scan pays O(n)
   per advance regardless of how few tuples expire. *)

open Expirel_core
open Expirel_index
open Expirel_workload

let backends = [ "scan", `Scan; "heap", `Heap; "wheel", `Wheel ]

let run_one backend ~n ~steps =
  let rng = Bench_util.rng 20 in
  let entries = Gen.expiry_stream ~rng ~n ~ttl:(Gen.Uniform_ttl (1, 10 * steps)) ~now:0 in
  let idx = Expiration_index.create backend in
  let (), load_s =
    Bench_util.time_it (fun () ->
        List.iter (fun (id, at) -> Expiration_index.add idx ~id ~texp:(Time.of_int at)) entries)
  in
  let expired = ref 0 in
  let (), expire_s =
    Bench_util.time_it (fun () ->
        for step = 1 to steps do
          expired :=
            !expired
            + List.length (Expiration_index.expire_upto idx (Time.of_int (step * 10)))
        done)
  in
  load_s, expire_s, !expired

let sweep () =
  Bench_util.section "Experiment exp-index: expiration index backends";
  List.iter
    (fun n ->
      Bench_util.subsection (Printf.sprintf "n = %d registrations, 100 advances" n);
      let rows =
        List.map
          (fun (name, backend) ->
            let load_s, expire_s, expired = run_one backend ~n ~steps:100 in
            [ name;
              Bench_util.f2 (load_s *. 1e3);
              Bench_util.f2 (expire_s *. 1e3);
              string_of_int expired;
              Bench_util.f2 (expire_s *. 1e9 /. float_of_int (max 1 expired)) ])
          backends
      in
      Bench_util.table
        ~headers:[ "backend"; "load ms"; "expire ms"; "expired"; "ns/expiration" ]
        rows)
    [ 1_000; 10_000; 100_000 ];
  print_endline
    "\nShape check: scan's expire cost explodes with n (O(n) per advance);\n\
     heap and wheel stay near-constant per expiration."

let run_all () = sweep ()
