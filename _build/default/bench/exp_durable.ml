(* Experiment exp-durable: write-ahead logging and checkpointing for
   expiring data.  Expiration acts as free compaction — a checkpoint
   writes only live tuples, so recovery cost tracks the live set, not
   the insert history.

   Expected shape: recovery from log replays every record ever written;
   recovery from checkpoint replays only the survivors; with short TTLs
   the checkpoint is a small fraction of the history. *)

open Expirel_core
open Expirel_storage
open Expirel_workload

let run_history ~dir ~events ~timeout =
  let t = Durable.open_dir dir in
  Durable.create_table t ~name:"sessions" ~columns:Sessions.columns;
  List.iter
    (fun event ->
      let at = Time.of_int (Sessions.event_time event) in
      if Time.(at > Durable.now t) then Durable.advance_to t at;
      Sessions.apply_event ~timeout
        ~insert:(fun tuple ~texp -> Durable.insert t "sessions" tuple ~texp)
        event)
    events;
  t

let size_of path =
  if Sys.file_exists path then
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    close_in ic;
    n
  else 0

let with_temp_dir f =
  let dir = Filename.temp_dir "expirel" "bench" in
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun file -> Sys.remove (Filename.concat dir file)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let sweep () =
  Bench_util.section "Experiment exp-durable: WAL, checkpoints and recovery";
  let rows =
    List.map
      (fun (label, logins, timeout) ->
        with_temp_dir (fun dir ->
            let rng = Bench_util.rng 95 in
            let events =
              Sessions.timeline ~rng ~users:100 ~logins ~horizon:2000
                ~activity_rate:1.5
            in
            let t = run_history ~dir ~events ~timeout in
            let live =
              Relation.cardinal
                (Database.snapshot (Durable.database t) "sessions")
            in
            let wal_bytes = size_of (Filename.concat dir "wal.log") in
            let (), replay_log_s =
              Bench_util.time_it (fun () ->
                  Durable.close (Durable.open_dir dir))
            in
            let snapshot_records = Durable.checkpoint t in
            let snapshot_bytes = size_of (Filename.concat dir "snapshot.log") in
            let (), replay_snap_s =
              Bench_util.time_it (fun () ->
                  Durable.close (Durable.open_dir dir))
            in
            Durable.close t;
            [ label;
              string_of_int (List.length events);
              string_of_int live;
              string_of_int wal_bytes;
              Bench_util.f2 (replay_log_s *. 1e3);
              string_of_int snapshot_records;
              string_of_int snapshot_bytes;
              Bench_util.f2 (replay_snap_s *. 1e3) ]))
      [ "short sessions (ttl 20)", 2_000, 20;
        "short sessions (ttl 20) x4", 8_000, 20;
        "long sessions (ttl 500)", 2_000, 500 ]
  in
  Bench_util.table
    ~headers:[ "workload"; "records"; "live rows"; "wal bytes";
               "replay wal ms"; "snapshot records"; "snapshot bytes";
               "replay snap ms" ]
    rows;
  print_endline
    "\nShape check: the checkpoint holds only live tuples, so with short\n\
     TTLs it is orders of magnitude smaller than the history and recovery\n\
     becomes near-instant — expiration doubles as compaction."

let run_all () = sweep ()
