(* Experiment exp-rewrite (Section 3.1): algebraic rewriting postpones
   recomputation by shrinking the critical tuple set (selection pushdown
   into difference) and by pulling non-monotonic operators up
   (difference over product).

   Expected shape: the rewritten plan never recomputes more often, and
   recomputes strictly less often whenever selections actually filter
   critical tuples. *)

open Expirel_core
open Expirel_workload

let arity_env name =
  match name with
  | "R" | "S" | "T" -> Some 2
  | _ -> None

let recompute_count ~env expr =
  List.length (View.maintenance_times ~env ~from:Time.zero ~horizon:(Time.of_int 200) expr)

let cases =
  let sel v e =
    Algebra.select
      (Predicate.Cmp (Predicate.Lt, Predicate.Col 2, Predicate.Const (Value.int v)))
      e
  in
  [ "sigma(R - S)  [pushdown shrinks critical set]",
    sel 50 Algebra.(diff (base "R") (base "S"));
    "sigma(sigma(R - S))  [merge then pushdown]",
    sel 80 (sel 50 Algebra.(diff (base "R") (base "S")));
    "(R - S) x T  [difference pull-up]",
    Algebra.(product (diff (base "R") (base "S")) (base "T"));
    "sigma((R - S) x T)  [both]",
    sel 50 Algebra.(product (diff (base "R") (base "S")) (base "T")) ]

let sweep () =
  Bench_util.section "Experiment exp-rewrite: rewriting to postpone recomputation";
  let rng = Bench_util.rng 70 in
  let rel () =
    Gen.relation ~rng ~arity:2 ~cardinality:120 ~values:(Gen.Uniform_value 100)
      ~ttl:(Gen.Uniform_ttl (1, 150)) ~now:Time.zero
  in
  let runs = 10 in
  let rows =
    List.map
      (fun (name, expr) ->
        let rewritten, applications = Rewrite.rewrite ~env:arity_env expr in
        let before = ref 0 and after = ref 0 in
        for _ = 1 to runs do
          let env = Eval.env_of_list [ "R", rel (); "S", rel (); "T", rel () ] in
          before := !before + recompute_count ~env expr;
          after := !after + recompute_count ~env rewritten
        done;
        [ name;
          string_of_int (List.fold_left (fun acc (_, n) -> acc + n) 0 applications);
          Bench_util.f1 (float_of_int !before /. float_of_int runs);
          Bench_util.f1 (float_of_int !after /. float_of_int runs) ])
      cases
  in
  Bench_util.table
    ~headers:[ "plan"; "rules fired"; "recomputes/run (original)";
               "recomputes/run (rewritten)" ]
    rows;
  print_endline
    "\nShape check: rewritten plans never recompute more (the property\n\
     tests prove texp(e) only moves later); selective predicates over\n\
     differences cut recomputation counts sharply."

(* Section 3.1's cost estimation: the difference pull-up trades fewer
   recomputations against larger intermediate products.  Sweep how long
   the product's other operand lives: short-lived T kills the rewritten
   plan's critical pairs (pull-up wins); long-lived T keeps them (the
   rewrite buys nothing and costs bigger products). *)
let cost_gated () =
  Bench_util.subsection "cost-gated rewriting: (R - S) x T vs pull-up";
  let rng = Bench_util.rng 75 in
  let original = Algebra.(product (diff (base "R") (base "S")) (base "T")) in
  let pulled =
    Algebra.(diff (product (base "R") (base "T")) (product (base "S") (base "T")))
  in
  let rows =
    List.map
      (fun (label, t_ttl) ->
        let rel card ttl =
          Gen.relation ~rng ~arity:2 ~cardinality:card
            ~values:(Gen.Uniform_value 10_000) ~ttl ~now:Time.zero
        in
        let r = rel 60 (Gen.Uniform_ttl (150, 200)) in
        (* S shares half of R with earlier expirations: critical churn. *)
        let s =
          Relation.fold
            (fun t _ (i, acc) ->
              if i mod 2 = 0 then
                i + 1, Relation.add t ~texp:(Time.of_int (10 + (3 * i))) acc
              else i + 1, acc)
            r
            (0, Relation.empty ~arity:2)
          |> snd
        in
        let env = Eval.env_of_list [ "R", r; "S", s; "T", rel 25 t_ttl ] in
        let chosen, est =
          Cost.choose ~env ~tau:Time.zero ~horizon:(Time.of_int 150)
            [ original; pulled ]
        in
        let name e = if Algebra.equal e original then "original" else "pull-up" in
        let est_of e = Cost.estimate ~env ~tau:Time.zero ~horizon:(Time.of_int 150) e in
        [ label;
          Bench_util.f1 (est_of original).Cost.total;
          Bench_util.f1 (est_of pulled).Cost.total;
          name chosen;
          string_of_int est.Cost.recomputations ])
      [ "T dies early (ttl 1..5)", Gen.Uniform_ttl (1, 5);
        "T medium (ttl 30..60)", Gen.Uniform_ttl (30, 60);
        "T long-lived (ttl 150..200)", Gen.Uniform_ttl (150, 200) ]
  in
  Bench_util.table
    ~headers:[ "workload"; "cost(original)"; "cost(pull-up)"; "chosen";
               "chosen recomputes" ]
    rows;
  print_endline
    "\nShape check: the cost model flips its choice as the trade-off\n\
     between recomputation frequency and intermediate size shifts —\n\
     Section 3.1's \"estimate the impact of a rewrite-rule application\"."

let run_all () =
  sweep ();
  cost_gated ()
