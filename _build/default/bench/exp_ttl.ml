(* Experiment exp-ttl: where do the expiration times come from?  For web
   data the paper's related work ([7], [13]) models the traffic/recency
   trade-off of TTL choice.  A fixed TTL is compared against a
   per-source proportional one over a mixed population of fast- and
   slow-changing pages.

   Expected shape (the classic — and initially surprising — crawler-
   freshness result): neither policy dominates on aggregate staleness at
   matched traffic; what the per-source TTL buys is *fairness* — it
   equalises staleness across sources, where a fixed TTL lets the
   fast-changing pages rot (their copies are outdated most of the time)
   while over-refreshing the slow ones. *)

open Expirel_workload

let sweep () =
  Bench_util.section "Experiment exp-ttl: choosing expiration times for caches";
  let rng = Bench_util.rng 88 in
  let horizon = 600 in
  let pages = Web.pages ~rng ~count:200 ~period_range:(5, 200) ~horizon in
  let fast, slow = List.partition (fun p -> p.Web.change_period < 50) pages in
  let stale_pct r =
    if r.Web.accesses = 0 then 0.
    else 100. *. float_of_int r.Web.stale_serves /. float_of_int r.Web.accesses
  in
  (* Operating points chosen to put fixed and proportional at comparable
     traffic, pairwise. *)
  let policies =
    [ "fixed 5", Web.Fixed_ttl 5;
      "proportional 0.10", Web.Proportional_ttl 0.10;
      "fixed 10", Web.Fixed_ttl 10;
      "proportional 0.20", Web.Proportional_ttl 0.20;
      "fixed 20", Web.Fixed_ttl 20;
      "proportional 0.40", Web.Proportional_ttl 0.40 ]
  in
  let rows =
    List.map
      (fun (name, policy) ->
        let all = Web.simulate ~pages ~horizon ~policy in
        let on subset = Web.simulate ~pages:subset ~horizon ~policy in
        [ name;
          string_of_int all.Web.fetches;
          Bench_util.f2 (stale_pct all);
          Bench_util.f2 (stale_pct (on fast));
          Bench_util.f2 (stale_pct (on slow)) ])
      policies
  in
  Bench_util.table
    ~headers:[ "TTL policy"; "fetches (traffic)"; "stale % (all)";
               "stale % fast pages"; "stale % slow pages" ]
    rows;
  print_endline
    "\nShape check: at matched traffic the aggregate staleness of the two\n\
     policies is close (neither dominates — the classic crawler-freshness\n\
     result), but their distributions differ sharply: fixed TTLs let\n\
     fast-changing pages serve stale data several times more often than\n\
     slow ones, while the per-source TTL equalises staleness across\n\
     sources.  Good expiration times need per-source knowledge — exactly\n\
     what the paper assumes the data source provides."

let run_all () = sweep ()
