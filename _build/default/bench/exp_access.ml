(* Experiment exp-access: secondary indexes over expiring tables.
   Selective predicates probe or range-scan the ordered index instead of
   scanning the table; expiration keeps the index subsetted to the
   physical rows, with liveness re-checked on fetch.

   Expected shape: point and narrow-range queries cost O(log n + answer)
   through the index vs O(n) for the scan; the gap widens with table
   size and narrows as selectivity drops. *)

open Expirel_core
open Expirel_storage

let build ~rows =
  let tbl = Table.create ~name:"samples" ~columns:[ "sensor"; "value" ] () in
  let rng = Bench_util.rng 97 in
  for i = 1 to rows do
    Table.insert tbl
      (Tuple.ints [ i; Random.State.int rng 10_000 ])
      ~texp:(Time.of_int (1 + Random.State.int rng 1_000))
  done;
  tbl

let queries =
  [ "point (#2 = c)", (fun c -> Predicate.eq_const 2 (Value.int c));
    "narrow range (width 50)",
    (fun c ->
      Predicate.And
        ( Predicate.Cmp (Predicate.Ge, Predicate.Col 2, Predicate.Const (Value.int c)),
          Predicate.Cmp
            (Predicate.Lt, Predicate.Col 2, Predicate.Const (Value.int (c + 50))) ));
    "wide range (width 5000)",
    (fun c ->
      Predicate.Cmp
        (Predicate.Lt, Predicate.Col 2, Predicate.Const (Value.int (c + 5_000))) ) ]

let time_queries tbl make =
  let tau = Time.of_int 500 in
  let reps = 50 in
  let (), seconds =
    Bench_util.time_it (fun () ->
        for i = 0 to reps - 1 do
          ignore (Access.select tbl ~tau (make (i * 97 mod 5_000)))
        done)
  in
  seconds *. 1e6 /. float_of_int reps

let sweep () =
  Bench_util.section "Experiment exp-access: secondary indexes on expiring tables";
  List.iter
    (fun rows ->
      Bench_util.subsection (Printf.sprintf "%d rows, ~50%% live at query time" rows);
      let tbl = build ~rows in
      let table_rows =
        List.map
          (fun (name, make) ->
            let scan_us = time_queries tbl make in
            Table.create_index tbl ~column:2;
            let indexed_us = time_queries tbl make in
            Table.drop_index tbl ~column:2;
            [ name;
              Format.asprintf "%a" Access.pp_plan
                (let tbl' = build ~rows:1 in
                 Table.create_index tbl' ~column:2;
                 Access.plan tbl' (make 100));
              Bench_util.f1 scan_us;
              Bench_util.f1 indexed_us;
              Bench_util.f1 (scan_us /. Float.max 0.1 indexed_us) ])
          queries
      in
      Bench_util.table
        ~headers:[ "query"; "plan"; "scan us"; "indexed us"; "speedup" ]
        table_rows)
    [ 10_000; 80_000 ];
  print_endline
    "\nShape check: selective queries gain an order of magnitude or more\n\
     through the index; wide ranges converge towards scan cost since the\n\
     answer itself dominates."

let run_all () = sweep ()
