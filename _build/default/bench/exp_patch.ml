(* Experiment exp-patch (Section 3.4.2): recompute-on-expiry versus the
   helper priority queue, as the overlap |R n S| / |R| grows.

   Expected shape: recomputation count and recomputation traffic grow
   with overlap (more critical tuples -> earlier and more frequent
   texp(e)); the patched view does zero recomputations at every overlap,
   paying only the up-front queue, whose size is bounded by |R n S|. *)

open Expirel_core
open Expirel_workload

let traffic_of_schedule ~env ~expr times =
  (* Bytes to re-ship the result at each recomputation. *)
  List.fold_left
    (fun bytes tau ->
      bytes
      + Expirel_dist.Metrics.relation_bytes (Eval.relation_at ~env ~tau expr)
      + Expirel_dist.Metrics.message_overhead)
    0 times

let sweep () =
  Bench_util.section
    "Experiment exp-patch: recomputation vs patching for difference views";
  let rng = Bench_util.rng 40 in
  let horizon = Time.of_int 200 in
  let rows =
    List.map
      (fun overlap ->
        let r, s =
          Gen.overlapping_pair ~rng ~arity:2 ~cardinality:500 ~overlap
            ~values:(Gen.Uniform_value 100_000)
            ~ttl:(Gen.Uniform_ttl (1, 180)) ~now:Time.zero
        in
        let env = Eval.env_of_list [ "R", r; "S", s ] in
        let expr = Algebra.(diff (base "R") (base "S")) in
        let schedule =
          View.maintenance_times ~env ~from:Time.zero ~horizon expr
        in
        let patched =
          Patch.create ~env ~tau:Time.zero ~left:(Algebra.base "R")
            ~right:(Algebra.base "S")
        in
        let recompute_bytes = traffic_of_schedule ~env ~expr schedule in
        let patch_bytes =
          Patch.pending patched * Expirel_dist.Metrics.tuple_bytes
        in
        [ Bench_util.f2 overlap;
          string_of_int (List.length schedule);
          string_of_int recompute_bytes;
          string_of_int (Patch.pending patched);
          string_of_int patch_bytes ])
      [ 0.0; 0.1; 0.25; 0.5; 0.75; 0.9 ]
  in
  Bench_util.table
    ~headers:[ "overlap"; "recomputations"; "recompute bytes";
               "patch queue"; "patch bytes (one-off)" ]
    rows;
  print_endline
    "\nShape check: recomputations rise steeply with overlap while the\n\
     patched view never recomputes; its one-off queue cost is bounded by\n\
     |R n S| and soon undercuts cumulative recomputation traffic."

let run_all () = sweep ()
