(* Experiment exp-qos (future work: "query processing with (approximate)
   quality of service guarantees"): how many validity promises can be
   made statically — from base-relation lifetime floors alone — without
   evaluating the query?

   Expected shape: monotonic requests are always admitted statically;
   non-monotonic ones are admitted up to the floor, which is sound but
   conservative (the measured texp(e) gap shows the slack); static
   admission costs microseconds while evaluation costs milliseconds. *)

open Expirel_core
open Expirel_workload

let shapes =
  [ "sigma(R) (monotonic)",
    Algebra.(
      select
        (Predicate.Cmp (Predicate.Lt, Predicate.Col 2, Predicate.Const (Value.int 500)))
        (base "R"));
    "R - S", Algebra.(diff (base "R") (base "S"));
    "agg min_2 by #1 (R)", Algebra.(aggregate [ 1 ] (Aggregate.Min 2) (base "R")) ]

let sweep () =
  Bench_util.section "Experiment exp-qos: static validity guarantees";
  let rng = Bench_util.rng 87 in
  let make_env () =
    let rel () =
      Gen.relation ~rng ~arity:2 ~cardinality:400 ~values:(Gen.Uniform_value 1000)
        ~ttl:(Gen.Uniform_ttl (20, 120)) ~now:Time.zero
    in
    Eval.env_of_list [ "R", rel (); "S", rel () ]
  in
  let runs = 25 in
  let requirements = [ 5; 15; 40 ] in
  let rows =
    List.concat_map
      (fun (name, expr) ->
        List.map
          (fun required ->
            let guaranteed = ref 0 and would_hold = ref 0 in
            let floor_total = ref 0. and texp_total = ref 0. and finite = ref 0 in
            for _ = 1 to runs do
              let env = make_env () in
              (match Qos.admit ~env ~tau:Time.zero ~required expr with
               | `Guaranteed -> incr guaranteed
               | `Must_evaluate -> ());
              let texp = Eval.expression_texp ~env ~tau:Time.zero expr in
              if Time.(texp >= Time.of_int required) then incr would_hold;
              let floor =
                Qos.validity_floor ~remaining:(Qos.remaining_of ~env ~tau:Time.zero)
                  expr
              in
              (match floor, texp with
               | Time.Fin f, Time.Fin t ->
                 floor_total := !floor_total +. float_of_int f;
                 texp_total := !texp_total +. float_of_int t;
                 incr finite
               | _ -> ())
            done;
            [ name;
              string_of_int required;
              Printf.sprintf "%d/%d" !guaranteed runs;
              Printf.sprintf "%d/%d" !would_hold runs;
              (if !finite = 0 then "-"
               else
                 Printf.sprintf "%.0f vs %.0f"
                   (!floor_total /. float_of_int !finite)
                   (!texp_total /. float_of_int !finite)) ])
          requirements)
      shapes
  in
  Bench_util.table
    ~headers:[ "expression"; "required ticks"; "admitted statically";
               "actually holds"; "mean floor vs texp(e)" ]
    rows;
  print_endline
    "\nShape check: static admission never over-promises (admitted <=\n\
     holds, property-tested); monotonic views are always admissible; the\n\
     floor's conservatism is the gap between the two columns."

let run_all () = sweep ()
