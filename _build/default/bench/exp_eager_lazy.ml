(* Experiment exp-eager-lazy (Section 3.2): eager removal pays per-tuple
   work at expiration time (and fires triggers punctually); lazy removal
   defers physical work to vacuum, trading trigger punctuality and
   residual garbage for cheaper clock advances.

   Expected shape: identical logical states; lazy advances are near-free
   while its vacuum pays the bill; eager trigger latency is zero, lazy
   latency equals the vacuum delay. *)

open Expirel_core
open Expirel_storage
open Expirel_workload

let load_and_run policy ~sessions ~horizon ~vacuum_every =
  let db = Database.create ~policy () in
  let (_ : Table.t) = Database.create_table db ~name:"s" ~columns:Sessions.columns in
  let latency_total = ref 0 and fired = ref 0 in
  Trigger.register (Database.triggers db) ~name:"lat" ~table:"s" (fun e ->
      incr fired;
      match e.Trigger.fired_at, e.Trigger.texp with
      | Time.Fin fa, Time.Fin te -> latency_total := !latency_total + (fa - te)
      | _ -> ());
  let rng = Bench_util.rng 30 in
  let events =
    Sessions.timeline ~rng ~users:200 ~logins:sessions ~horizon ~activity_rate:2.0
  in
  let (), seconds =
    Bench_util.time_it (fun () ->
        List.iter
          (fun event ->
            let at = Sessions.event_time event in
            if Time.(Time.of_int at > Database.now db) then
              Database.advance_to db (Time.of_int at);
            (match policy with
             | Database.Lazy when at mod vacuum_every = 0 ->
               ignore (Database.vacuum db)
             | Database.Lazy | Database.Eager -> ());
            Sessions.apply_event ~timeout:25
              ~insert:(fun tuple ~texp -> Database.insert db "s" tuple ~texp)
              event)
          events;
        Database.advance_to db (Time.of_int (horizon + 100));
        ignore (Database.vacuum db))
  in
  let mean_latency =
    if !fired = 0 then 0. else float_of_int !latency_total /. float_of_int !fired
  in
  seconds, !fired, mean_latency

let sweep () =
  Bench_util.section "Experiment exp-eager-lazy: removal policies (Section 3.2)";
  let rows =
    List.concat_map
      (fun sessions ->
        let eager_s, eager_fired, eager_lat =
          load_and_run Database.Eager ~sessions ~horizon:1000 ~vacuum_every:50
        in
        let lazy_s, lazy_fired, lazy_lat =
          load_and_run Database.Lazy ~sessions ~horizon:1000 ~vacuum_every:50
        in
        [ [ string_of_int sessions; "eager"; Bench_util.f2 (eager_s *. 1e3);
            string_of_int eager_fired; Bench_util.f1 eager_lat ];
          [ string_of_int sessions; "lazy(50)"; Bench_util.f2 (lazy_s *. 1e3);
            string_of_int lazy_fired; Bench_util.f1 lazy_lat ] ])
      [ 500; 2_000; 8_000 ]
  in
  Bench_util.table
    ~headers:[ "sessions"; "policy"; "total ms"; "triggers fired";
               "mean trigger latency" ]
    rows;
  print_endline
    "\nShape check: eager trigger latency is 0 (fired exactly at texp);\n\
     lazy latency is about half the vacuum period.  Lazy also fires fewer\n\
     triggers: a session renewed after expiring but before the next\n\
     vacuum is resurrected in place, so its timeout is never observed —\n\
     the punctuality/efficiency trade-off of Section 3.2 made concrete."

let run_all () = sweep ()
