(* Reproduction of every figure and table in the paper, printed in the
   paper's own layout so the two can be compared side by side. *)

open Expirel_core
open Expirel_workload

let env = News.figure1_env

let fig1 () =
  Bench_util.section "Figure 1: example relations at time 0";
  print_endline
    (Explain.relation_table ~title:"(a) Politics table Pol" ~columns:News.columns
       News.figure1_pol);
  print_endline
    (Explain.relation_table ~title:"(b) Elections table El" ~columns:News.columns
       News.figure1_el)

let fig2 () =
  Bench_util.section "Figure 2: example monotonic expressions";
  Bench_util.subsection "(a,b) the base relations expire in place";
  print_endline
    (Explain.snapshots ~env ~times:(List.map Time.of_int [ 0; 5; 10 ])
       (Algebra.base "Pol"));
  Bench_util.subsection "(c,d) pi_2(Pol) at times 0 and 10";
  print_endline
    (Explain.snapshots ~env ~times:(List.map Time.of_int [ 0; 10 ])
       Algebra.(project [ 2 ] (base "Pol")));
  Bench_util.subsection "(e-g) Pol join_(1=3) El at times 0, 3 and 5";
  print_endline
    (Explain.snapshots ~env ~times:(List.map Time.of_int [ 0; 3; 5 ])
       Algebra.(join (Predicate.eq_cols 1 3) (base "Pol") (base "El")))

let fig3 () =
  Bench_util.section "Figure 3: some non-monotonic expressions";
  let histogram =
    Algebra.(project [ 2; 3 ] (aggregate [ 2 ] Aggregate.Count (base "Pol")))
  in
  Bench_util.subsection "(a) pi_23(agg_(2),count(Pol)) at time 0";
  let { Eval.relation; texp } = Eval.run ~env ~tau:Time.zero histogram in
  print_endline (Explain.relation_table ~columns:[ "deg"; "count" ] relation);
  Printf.printf
    "texp(e) = %s  (paper: \"from time 10 on, the result is invalid\")\n"
    (Time.to_string texp);
  Bench_util.subsection "(b-d) pi_1(Pol) -exp pi_1(El) at times 0, 3 and 5";
  let difference =
    Algebra.(diff (project [ 1 ] (base "Pol")) (project [ 1 ] (base "El")))
  in
  List.iter
    (fun tau ->
      let { Eval.relation; texp } = Eval.run ~env ~tau:(Time.of_int tau) difference in
      Printf.printf "at time %d (texp(e) = %s):\n%s\n" tau (Time.to_string texp)
        (Explain.relation_table ~columns:[ "uid" ] relation))
    [ 0; 3; 5 ];
  print_endline
    "The expression grows monotonically before time 10 and is invalid from\n\
     time 3 onwards, exactly as the paper describes."

let tab1 () =
  Bench_util.section "Table 1: neutral subsets";
  let demo name f members expected_note =
    let texp_c =
      Aggregate.result_texp Aggregate.Conservative ~tau:Time.zero f members
    in
    let texp_n = Aggregate.result_texp Aggregate.Neutral ~tau:Time.zero f members in
    let removed, contributing = Aggregate.neutral_slices ~tau:Time.zero f members in
    Printf.printf
      "%-7s partition %s\n        neutral slices %s, contributing %d tuple(s)\n\
      \        Eq (8) texp = %-4s Table 1 texp = %-4s %s\n"
      name
      (String.concat " "
         (List.map
            (fun (t, e) -> Tuple.to_string t ^ "@" ^ Time.to_string e)
            members))
      (String.concat ","
         (List.map (fun (e, _) -> Time.to_string e) removed))
      (List.length contributing)
      (Time.to_string texp_c) (Time.to_string texp_n) expected_note
  in
  let m vs e = Tuple.ints vs, Time.of_int e in
  demo "min_2" (Aggregate.Min 2)
    [ m [ 1; 3 ] 5; m [ 2; 3 ] 10; m [ 3; 9 ] 2 ]
    "(non-minimal and dominated minimal tuples are neutral)";
  demo "max_2" (Aggregate.Max 2)
    [ m [ 1; 9 ] 5; m [ 2; 9 ] 10; m [ 3; 1 ] 2 ]
    "(dual of min)";
  demo "sum_2" (Aggregate.Sum 2)
    [ m [ 1; 2 ] 5; m [ 2; -2 ] 5; m [ 3; 7 ] 12 ]
    "(a slice summing to zero is neutral)";
  demo "avg_2" (Aggregate.Avg 2)
    [ m [ 1; 2 ] 5; m [ 2; 4 ] 5; m [ 3; 3 ] 12 ]
    "(a slice at the partition average is neutral)";
  demo "count" Aggregate.Count
    [ m [ 1; 0 ] 5; m [ 2; 0 ] 12 ]
    "(only the empty set is neutral: no improvement, as the paper notes)"

let tab2 () =
  Bench_util.section "Table 2: lifetime analysis of e = R -exp S";
  let t = Tuple.ints [ 0 ] in
  let fin = Time.of_int in
  let case name r s =
    let env =
      Eval.env_of_list
        [ "R", Relation.of_list ~arity:1 r; "S", Relation.of_list ~arity:1 s ]
    in
    let { Eval.relation; texp } =
      Eval.run ~env ~tau:Time.zero Algebra.(diff (base "R") (base "S"))
    in
    [ name;
      (match Relation.texp_opt relation t with
       | Some e -> Time.to_string e
       | None -> "n.a.");
      Time.to_string texp ]
  in
  Bench_util.table
    ~headers:[ "condition"; "texp_*(t)"; "texp(e)" ]
    [ case "(1) t in R, t not in S" [ t, fin 7 ] [];
      case "(2) t not in R, t in S" [] [ t, fin 7 ];
      case "(3a) both, texp_R > texp_S" [ t, fin 9 ] [ t, fin 4 ];
      case "(3b) both, texp_R <= texp_S" [ t, fin 4 ] [ t, fin 9 ] ];
  print_endline
    "\nCase (3a) yields texp(e) = texp_S(t) = 4: the materialisation dies\n\
     when the tuple should reappear.  (Equation (11) as printed says\n\
     texp_R inside the minimum; the text's tau_R and this table give\n\
     texp_S, which we follow.)"

let run_all () =
  fig1 ();
  fig2 ();
  fig3 ();
  tab1 ();
  tab2 ()
