(* Experiment exp-update (future work, realised): maintaining a
   materialised view under a stream of base-relation updates, comparing
   delta propagation (Maintained) against recomputing the expression at
   every event.

   Expected shape: per-event delta cost is small and stays flat as the
   base grows, while recompute-per-event grows with the base; both give
   byte-identical results (property-tested). *)

open Expirel_core
open Expirel_workload

let views =
  [ "sessions per user (agg count)",
    Algebra.(aggregate [ 2 ] Aggregate.Count (base "sessions"));
    "idle users (diff)",
    Algebra.(diff (project [ 2 ] (base "users")) (project [ 2 ] (base "sessions")));
    "active pairs (join)",
    (* sessions.uid (position 2) = users.uid (position 4 of the pair) *)
    Algebra.(join (Predicate.eq_cols 2 4) (base "sessions") (base "users")) ]

let build_events ~rng ~logins ~horizon =
  Sessions.timeline ~rng ~users:60 ~logins ~horizon ~activity_rate:1.5

let run_maintained expr bindings events =
  let v =
    ref (Maintained.materialise ~env:(Eval.env_of_list bindings) ~tau:Time.zero expr)
  in
  let (), seconds =
    Bench_util.time_it (fun () ->
        List.iter
          (fun event ->
            let at = Time.of_int (Sessions.event_time event) in
            if Time.(at > Maintained.now !v) then v := Maintained.advance !v ~to_:at;
            Sessions.apply_event ~timeout:25
              ~insert:(fun tuple ~texp ->
                v := Maintained.insert !v ~relation:"sessions" tuple ~texp)
              event)
          events)
  in
  seconds, Maintained.stats !v, Relation.cardinal (Maintained.read !v)

let run_recompute expr bindings events =
  let sessions = ref (List.assoc "sessions" bindings) in
  let result = ref (Relation.empty ~arity:1) in
  let (), seconds =
    Bench_util.time_it (fun () ->
        List.iter
          (fun event ->
            let at = Time.of_int (Sessions.event_time event) in
            Sessions.apply_event ~timeout:25
              ~insert:(fun tuple ~texp ->
                sessions := Relation.replace tuple ~texp !sessions)
              event;
            let env name =
              if String.equal name "sessions" then Some !sessions
              else List.assoc_opt name bindings
            in
            result := Eval.relation_at ~env ~tau:at expr)
          events)
  in
  seconds, !result

let sweep () =
  Bench_util.section
    "Experiment exp-update: incremental maintenance under updates";
  let users =
    Relation.of_list ~arity:2
      (List.init 60 (fun i -> Tuple.ints [ 100 + i; i + 1 ], Time.Inf))
  in
  List.iter
    (fun logins ->
      Bench_util.subsection
        (Printf.sprintf "%d logins (+ activity renewals) over 400 ticks" logins);
      let rows =
        List.map
          (fun (name, expr) ->
            let rng = Bench_util.rng 90 in
            let events = build_events ~rng ~logins ~horizon:400 in
            let bindings =
              [ "sessions", Relation.empty ~arity:2; "users", users ]
            in
            let m_seconds, stats, cardinal = run_maintained expr bindings events in
            let r_seconds, _ = run_recompute expr bindings events in
            [ name;
              string_of_int (List.length events);
              Bench_util.f2 (m_seconds *. 1e3);
              Bench_util.f2 (r_seconds *. 1e3);
              string_of_int (List.assoc "delta-upserts" stats);
              string_of_int (List.assoc "local-refreshes" stats);
              string_of_int cardinal ])
          views
      in
      Bench_util.table
        ~headers:[ "view"; "events"; "maintained ms"; "recompute ms";
                   "delta upserts"; "local refreshes"; "final rows" ]
        rows)
    [ 200; 800; 3200 ];
  print_endline
    "\nShape check: recompute-per-event cost grows with the base relation\n\
     while delta maintenance stays near-flat; non-monotonic nodes refresh\n\
     only locally (from materialised children), never re-reading the\n\
     sources — the paper's independence goal preserved under updates."

let run_all () = sweep ()
