(* Experiment exp-dist (Section 1 claims): traffic, transaction volume
   and consistency for remote materialised views in a loosely-coupled
   system.

   Expected shape: at equal (zero) staleness, the expiration-aware client
   sends far fewer messages than per-tick polling; slower polling saves
   traffic only by serving stale data; patching removes even the
   expiration-aware refetches for difference views. *)

open Expirel_core
open Expirel_dist
open Expirel_workload

let strategies_for expr =
  let base = [ Sim.Poll 1; Sim.Poll 10; Sim.Poll 40; Sim.Expiration_aware ] in
  match expr with
  | Algebra.Diff _ -> base @ [ Sim.Patched ]
  | _ -> base

let run_case ~title ~env ~expr ~horizon ~latency =
  Bench_util.subsection title;
  let rows =
    List.map
      (fun strategy ->
        let { Sim.metrics; _ } = Sim.run ~env ~expr { Sim.horizon; latency; strategy } in
        [ Sim.strategy_label strategy;
          string_of_int metrics.Metrics.messages;
          string_of_int metrics.Metrics.bytes;
          string_of_int metrics.Metrics.refetches;
          Printf.sprintf "%d (%.1f%%)" metrics.Metrics.stale_ticks
            (100. *. Metrics.staleness_ratio metrics) ])
      (strategies_for expr)
  in
  Bench_util.table
    ~headers:[ "strategy"; "messages"; "bytes"; "refetches"; "stale ticks" ]
    rows

(* Part 2: lifting the no-update assumption (Sim_update).  The server's
   base data now receives upserts; compare polling, bare expiration
   awareness (which goes stale), full refetch-on-change, and tuple-sized
   delta pushes into an incrementally maintained replica. *)
let update_sweep () =
  Bench_util.subsection
    "under updates: expiration alone vs update-aware maintenance";
  let rng = Bench_util.rng 65 in
  let horizon = 200 in
  let r, s =
    Gen.overlapping_pair ~rng ~arity:2 ~cardinality:300 ~overlap:0.4
      ~values:(Gen.Uniform_value 2000) ~ttl:(Gen.Uniform_ttl (20, 150))
      ~now:Time.zero
  in
  let bindings = [ "R", r; "S", s ] in
  let updates =
    let count = 120 in
    List.init count (fun i ->
        let at = i * horizon / count in
        let name = if Random.State.bool rng then "R" else "S" in
        let tuple =
          Tuple.of_list
            [ Value.int (Random.State.int rng 2000);
              Value.int (Random.State.int rng 2000) ]
        in
        if Random.State.int rng 4 = 0 then
          { Sim_update.at; relation = name; change = `Delete tuple }
        else
          { Sim_update.at;
            relation = name;
            change = `Upsert (tuple, Time.of_int (at + 20 + Random.State.int rng 100))
          })
  in
  let expr = Algebra.(diff (base "R") (base "S")) in
  let rows =
    List.map
      (fun strategy ->
        let { Sim_update.metrics; _ } =
          Sim_update.run ~bindings ~expr ~updates
            { Sim_update.horizon; strategy }
        in
        [ Sim_update.strategy_label strategy;
          string_of_int metrics.Metrics.messages;
          string_of_int metrics.Metrics.bytes;
          string_of_int metrics.Metrics.refetches;
          Printf.sprintf "%d (%.1f%%)" metrics.Metrics.stale_ticks
            (100. *. Metrics.staleness_ratio metrics) ])
      [ Sim_update.Poll 1; Sim_update.Poll 10; Sim_update.Expiration_aware;
        Sim_update.Refetch_on_change; Sim_update.Delta_push ]
  in
  Bench_util.table
    ~headers:[ "strategy"; "messages"; "bytes"; "refetches"; "stale ticks" ]
    rows;
  print_endline
    "\nShape check: under updates, expiration alone goes stale; refetch-\n\
     on-change restores correctness at full-result cost; delta pushes\n\
     into a maintained replica restore it at tuple-sized cost."

let sweep () =
  Bench_util.section
    "Experiment exp-dist: maintaining remote views in a loosely-coupled system";
  let rng = Bench_util.rng 60 in
  let horizon = 200 in
  List.iter
    (fun (ttl_name, ttl) ->
      let r, s =
        Gen.overlapping_pair ~rng ~arity:2 ~cardinality:400 ~overlap:0.4
          ~values:(Gen.Uniform_value 2000) ~ttl ~now:Time.zero
      in
      let env = Eval.env_of_list [ "R", r; "S", s ] in
      run_case
        ~title:(Printf.sprintf "monotonic sigma(R), %s, latency 1" ttl_name)
        ~env
        ~expr:
          Algebra.(
            select
              (Predicate.Cmp
                 (Predicate.Lt, Predicate.Col 2, Predicate.Const (Value.int 1000)))
              (base "R"))
        ~horizon ~latency:1;
      run_case
        ~title:(Printf.sprintf "non-monotonic R - S, %s, latency 1" ttl_name)
        ~env
        ~expr:Algebra.(diff (base "R") (base "S"))
        ~horizon ~latency:1)
    [ "short TTLs (1..40)", Gen.Uniform_ttl (1, 40);
      "long TTLs (50..180)", Gen.Uniform_ttl (50, 180) ];
  print_endline
    "\nShape check: poll(1) matches the expiration-aware client's zero\n\
     staleness only by sending two messages per tick; expiration-aware\n\
     traffic tracks the number of texp(e) expirations (zero for the\n\
     monotonic view); patched difference views send exactly one fetch."

let run_all () =
  sweep ();
  update_sweep ()
