(* Machine checks of Theorems 1-3 at benchmark scale: larger random
   instances than the unit-test suite, with counts reported. *)

open Expirel_core
open Expirel_workload

let random_env rng =
  let rel card =
    Gen.relation ~rng ~arity:2 ~cardinality:card
      ~values:(Gen.Uniform_value 40)
      ~ttl:(Gen.Immortal_share (0.1, Gen.Uniform_ttl (1, 60)))
      ~now:Time.zero
  in
  [ "R", rel 60; "S", rel 60 ]

let sample_times = List.init 24 (fun i -> Time.of_int (3 * i))

let thm1 () =
  Bench_util.section "Theorem 1: monotonic materialisations never decay";
  let rng = Bench_util.rng 1 in
  let shapes =
    [ "sigma_(#2 < 20)(R)",
      Algebra.(
        select
          (Predicate.Cmp (Predicate.Lt, Predicate.Col 2, Predicate.Const (Value.int 20)))
          (base "R"));
      "pi_2(R)", Algebra.(project [ 2 ] (base "R"));
      "R join_(1=3) S", Algebra.(join (Predicate.eq_cols 1 3) (base "R") (base "S"));
      "R union S", Algebra.(union (base "R") (base "S"));
      "R intersect S", Algebra.(intersect (base "R") (base "S")) ]
  in
  let rows =
    List.map
      (fun (name, expr) ->
        let checks = ref 0 and holds = ref true in
        for _ = 1 to 8 do
          let env = Eval.env_of_list (random_env rng) in
          let materialised = Eval.relation_at ~env ~tau:Time.zero expr in
          List.iter
            (fun tau ->
              incr checks;
              if
                not
                  (Relation.equal
                     (Relation.exp tau materialised)
                     (Eval.relation_at ~env ~tau expr))
              then holds := false)
            sample_times
        done;
        [ name; string_of_int !checks; (if !holds then "holds" else "VIOLATED") ])
      shapes
  in
  Bench_util.table ~headers:[ "expression"; "snapshot checks"; "verdict" ] rows

let thm2 () =
  Bench_util.section "Theorem 2: valid exactly until texp(e)";
  let rng = Bench_util.rng 2 in
  let shapes =
    [ "R -exp S", Algebra.(diff (base "R") (base "S"));
      "pi_1(R) -exp pi_1(S)",
      Algebra.(diff (project [ 1 ] (base "R")) (project [ 1 ] (base "S")));
      "agg count by #1", Algebra.(aggregate [ 1 ] Aggregate.Count (base "R"));
      "agg sum_2 by #1", Algebra.(aggregate [ 1 ] (Aggregate.Sum 2) (base "R"));
      "agg min_2 by #1", Algebra.(aggregate [ 1 ] (Aggregate.Min 2) (base "R")) ]
  in
  let rows =
    List.concat_map
      (fun (name, expr) ->
        List.map
          (fun strategy ->
            let label =
              match strategy with
              | Aggregate.Conservative -> "conservative"
              | Aggregate.Neutral -> "neutral"
              | Aggregate.Exact -> "exact"
              | Aggregate.Within t -> Printf.sprintf "within %.1f" t
            in
            let checks = ref 0 and holds = ref true and finite = ref 0 in
            for _ = 1 to 6 do
              let env = Eval.env_of_list (random_env rng) in
              let { Eval.relation; texp } = Eval.run ~strategy ~env ~tau:Time.zero expr in
              if Time.is_finite texp then incr finite;
              List.iter
                (fun tau ->
                  if Time.(tau < texp) then begin
                    incr checks;
                    if
                      not
                        (Relation.equal
                           (Relation.exp tau relation)
                           (Eval.relation_at ~strategy ~env ~tau expr))
                    then holds := false
                  end)
                sample_times
            done;
            [ name; label; string_of_int !checks;
              Printf.sprintf "%d/6" !finite;
              (if !holds then "holds" else "VIOLATED") ])
          [ Aggregate.Conservative; Aggregate.Neutral; Aggregate.Exact ])
      shapes
  in
  Bench_util.table
    ~headers:[ "expression"; "strategy"; "checks before texp(e)";
               "finite texp(e)"; "verdict" ]
    rows

let thm3 () =
  Bench_util.section "Theorem 3: patched differences never recompute";
  let rng = Bench_util.rng 3 in
  let runs = 10 in
  let checks = ref 0 and holds = ref true and total_queue = ref 0 in
  for _ = 1 to runs do
    let env = Eval.env_of_list (random_env rng) in
    let patched =
      ref
        (Patch.create ~env ~tau:Time.zero ~left:(Algebra.base "R")
           ~right:(Algebra.base "S"))
    in
    total_queue := !total_queue + Patch.pending !patched;
    List.iter
      (fun tau ->
        incr checks;
        let served, next = Patch.read !patched ~tau in
        patched := next;
        if
          not
            (Relation.equal served
               (Eval.relation_at ~env ~tau Algebra.(diff (base "R") (base "S"))))
        then holds := false)
      sample_times
  done;
  Bench_util.table
    ~headers:[ "runs"; "timeline checks"; "mean queue size"; "verdict" ]
    [ [ string_of_int runs;
        string_of_int !checks;
        Bench_util.f1 (float_of_int !total_queue /. float_of_int runs);
        (if !holds then "holds" else "VIOLATED") ] ]

let run_all () =
  thm1 ();
  thm2 ();
  thm3 ()
