(* Experiment agg-lifetime (Section 2.6 claim): how much aggregate-tuple
   lifetime and view lifetime do the neutral-set (Table 1) and exact
   change-point (Eq 9) strategies buy over the conservative rule (Eq 8)?

   Sweeps partition size, TTL spread and value skew.  Expected shape:
   Conservative <= Neutral <= Exact everywhere; the gap grows with
   duplicate values (min/max) and with zeros (sum); count never
   improves. *)

open Expirel_core
open Expirel_workload

let strategies =
  [ "conservative", Aggregate.Conservative;
    "neutral", Aggregate.Neutral;
    "exact", Aggregate.Exact ]

let mean_result_lifetime ~strategy ~f relation =
  let parts = Aggregate.partitions ~group:[ 1 ] relation in
  let total, n =
    List.fold_left
      (fun (total, n) (_key, members) ->
        match Aggregate.result_texp strategy ~tau:Time.zero f members with
        | Time.Fin e -> total + e, n + 1
        | Time.Inf -> total, n)
      (0, 0) parts
  in
  if n = 0 then 0. else float_of_int total /. float_of_int n

let view_texp ~strategy ~f relation =
  let env = Eval.env_of_list [ "R", relation ] in
  (Eval.run ~strategy ~env ~tau:Time.zero Algebra.(aggregate [ 1 ] f (base "R")))
    .Eval.texp

let sweep () =
  Bench_util.section
    "Experiment agg-lifetime: expiration strategies for aggregation";
  let rng = Bench_util.rng 10 in
  let funcs =
    [ "count", Aggregate.Count;
      "sum_2", Aggregate.Sum 2;
      "min_2", Aggregate.Min 2;
      "max_2", Aggregate.Max 2;
      "avg_2", Aggregate.Avg 2 ]
  in
  let value_configs =
    [ "ties-heavy (values 0..3)", Gen.Uniform_value 4;
      "zero-sum-heavy (values -2..2)", Gen.Centered_value 2;
      "skewed (zipf 20, s=1.3)", Gen.Zipf_value (20, 1.3);
      "ties-light (values 0..999)", Gen.Uniform_value 1000 ]
  in
  List.iter
    (fun (config_name, values) ->
      Bench_util.subsection config_name;
      let relation =
        Gen.relation ~rng ~arity:2 ~cardinality:400 ~values
          ~ttl:(Gen.Uniform_ttl (1, 50)) ~now:Time.zero
      in
      let rows =
        List.map
          (fun (fname, f) ->
            fname
            :: List.concat_map
                 (fun (_sname, strategy) ->
                   [ Bench_util.f1 (mean_result_lifetime ~strategy ~f relation);
                     Time.to_string (view_texp ~strategy ~f relation) ])
                 strategies)
          funcs
      in
      Bench_util.table
        ~headers:[ "aggregate";
                   "cons. life"; "cons. texp(e)";
                   "neut. life"; "neut. texp(e)";
                   "exact life"; "exact texp(e)" ]
        rows)
    value_configs;
  print_endline
    "\nShape check: lifetimes never decrease left to right; count is\n\
     identical across strategies (\"improves ... all aggregates except\n\
     count\"); ties-heavy and zero-heavy data benefit most."

(* The future-work extension: error-bounded expiration.  Sweep the
   tolerance and report lifetime gained vs worst value drift actually
   incurred while the result tuples were live. *)
let approx_sweep () =
  Bench_util.subsection
    "approximate aggregates: lifetime vs error bound (Within strategy)";
  let rng = Bench_util.rng 11 in
  let relation =
    Gen.relation ~rng ~arity:2 ~cardinality:400 ~values:(Gen.Centered_value 5)
      ~ttl:(Gen.Uniform_ttl (1, 50)) ~now:Time.zero
  in
  let parts = Aggregate.partitions ~group:[ 1 ] relation in
  let funcs = [ "sum_2", Aggregate.Sum 2; "avg_2", Aggregate.Avg 2 ] in
  let rows =
    List.concat_map
      (fun (fname, f) ->
        List.map
          (fun tolerance ->
            let lifetime = ref 0 and n = ref 0 and worst = ref 0. in
            List.iter
              (fun (_key, members) ->
                let bound = Aggregate.nu_within ~tolerance ~tau:Time.zero f members in
                let v0 = Aggregate.apply f members in
                (match bound with
                 | Time.Fin e ->
                   lifetime := !lifetime + e;
                   incr n
                 | Time.Inf -> ());
                (* Largest drift observed while the tuples were live. *)
                List.iter
                  (fun (start, value) ->
                    match value, Value.to_float v0 with
                    | Some v, Some x when Time.(start < bound) ->
                      (match Value.to_float v with
                       | Some y -> worst := Float.max !worst (Float.abs (y -. x))
                       | None -> ())
                    | _ -> ())
                  (Aggregate.timeline ~tau:Time.zero f members))
              parts;
            [ fname;
              Bench_util.f1 tolerance;
              Bench_util.f1 (float_of_int !lifetime /. float_of_int (max 1 !n));
              Bench_util.f1 !worst ])
          [ 0.; 1.; 2.; 5.; 10. ])
      funcs
  in
  Bench_util.table
    ~headers:[ "aggregate"; "tolerance"; "mean lifetime"; "worst live drift" ]
    rows;
  print_endline
    "\nShape check: lifetimes grow with the tolerance while the observed\n\
     drift never exceeds it — bounded-error maintenance for free."

let run_all () =
  sweep ();
  approx_sweep ()
