(* Bechamel micro-benchmarks: one Test.make per reproduced table/figure
   (the cost of evaluating it) plus the hot paths of every substrate.
   Results are OLS estimates of time per run on the monotonic clock. *)

open Bechamel
open Expirel_core
open Expirel_workload

let fig_env = News.figure1_env

let fixture ~cardinality =
  let rng = Bench_util.rng 99 in
  let rel () =
    Gen.relation ~rng ~arity:2 ~cardinality ~values:(Gen.Uniform_value 200)
      ~ttl:(Gen.Uniform_ttl (1, 100)) ~now:Time.zero
  in
  Eval.env_of_list [ "R", rel (); "S", rel () ]

let env500 = fixture ~cardinality:500

let eval_test name expr env =
  Test.make ~name (Staged.stage (fun () -> Eval.run ~env ~tau:Time.zero expr))

(* One benchmark per paper artefact: the cost of regenerating it. *)
let figure_tests =
  [ eval_test "fig2:pi_2(Pol)" Algebra.(project [ 2 ] (base "Pol")) fig_env;
    eval_test "fig2:join" Algebra.(join (Predicate.eq_cols 1 3) (base "Pol") (base "El")) fig_env;
    eval_test "fig3:histogram"
      Algebra.(project [ 2; 3 ] (aggregate [ 2 ] Aggregate.Count (base "Pol")))
      fig_env;
    eval_test "fig3:difference"
      Algebra.(diff (project [ 1 ] (base "Pol")) (project [ 1 ] (base "El")))
      fig_env;
    eval_test "tab2:diff-texp" Algebra.(diff (base "Pol") (base "El")) fig_env ]

(* Substrate hot paths at realistic size. *)
let scale_tests =
  let diff500 = Algebra.(diff (base "R") (base "S")) in
  let agg500 = Algebra.(aggregate [ 1 ] (Aggregate.Min 2) (base "R")) in
  [ eval_test "eval:diff-500" diff500 env500;
    eval_test "eval:agg-min-500" agg500 env500;
    Test.make ~name:"validity:diff-500"
      (Staged.stage (fun () ->
           Validity.expression_validity ~env:env500 ~tau:Time.zero diff500));
    Test.make ~name:"patch:create-500"
      (Staged.stage (fun () ->
           Patch.create ~env:env500 ~tau:Time.zero ~left:(Algebra.base "R")
             ~right:(Algebra.base "S")));
    Test.make ~name:"rewrite:pushdown"
      (Staged.stage (fun () ->
           Rewrite.rewrite
             ~env:(fun _ -> Some 2)
             Algebra.(
               select
                 (Predicate.Cmp
                    (Predicate.Lt, Predicate.Col 2, Predicate.Const (Value.int 10)))
                 (diff (base "R") (base "S"))))) ]

let index_tests =
  let open Expirel_index in
  let make_backend name backend =
    Test.make ~name
      (Staged.stage (fun () ->
           let idx = Expiration_index.create backend in
           for id = 0 to 999 do
             Expiration_index.add idx ~id ~texp:(Time.of_int (1 + ((id * 7) mod 500)))
           done;
           let out = ref 0 in
           for step = 1 to 10 do
             out := !out + List.length (Expiration_index.expire_upto idx (Time.of_int (step * 50)))
           done;
           !out))
  in
  [ make_backend "index:scan-1k" `Scan;
    make_backend "index:heap-1k" `Heap;
    make_backend "index:wheel-1k" `Wheel ]

(* Hot paths of the later substrates. *)
let substrate_tests =
  let open Expirel_storage in
  let diff500 = Algebra.(diff (base "R") (base "S")) in
  [ Test.make ~name:"maintained:insert-500"
      (let v =
         Maintained.materialise ~env:env500 ~tau:Time.zero
           Algebra.(aggregate [ 1 ] Aggregate.Count (base "R"))
       in
       let tuple = Tuple.ints [ 3; 3 ] in
       Staged.stage (fun () ->
           Maintained.insert v ~relation:"R" tuple ~texp:(Time.of_int 10)));
    Test.make ~name:"schrodinger:materialise-500"
      (Staged.stage (fun () ->
           Schrodinger_view.materialise ~env:env500 ~tau:Time.zero diff500));
    Test.make ~name:"qos:floor"
      (let remaining = Qos.remaining_of ~env:env500 ~tau:Time.zero in
       Staged.stage (fun () -> Qos.validity_floor ~remaining diff500));
    Test.make ~name:"wal:encode-decode"
      (let record =
         Wal.Insert
           { table = "sessions"; tuple = Tuple.ints [ 1; 2 ]; texp = Time.of_int 9 }
       in
       Staged.stage (fun () -> Wal.decode (Wal.encode record)));
    Test.make ~name:"antijoin:hash-500"
      (let r = Eval.relation_at ~env:env500 ~tau:Time.zero (Algebra.base "R") in
       let s = Eval.relation_at ~env:env500 ~tau:Time.zero (Algebra.base "S") in
       Staged.stage (fun () -> Antijoin.diff Antijoin.Hash r s));
    Test.make ~name:"access:index-probe"
      (let tbl = Table.create ~name:"t" ~columns:[ "a"; "b" ] () in
       let rng = Bench_util.rng 98 in
       for i = 1 to 5_000 do
         Table.insert tbl
           (Tuple.ints [ i; Random.State.int rng 1_000 ])
           ~texp:(Time.of_int (1 + Random.State.int rng 500))
       done;
       Table.create_index tbl ~column:2;
       let p = Predicate.eq_const 2 (Value.int 7) in
       Staged.stage (fun () -> Access.select tbl ~tau:(Time.of_int 100) p)) ]

let all_tests = figure_tests @ scale_tests @ index_tests @ substrate_tests

let run () =
  Bench_util.section "Bechamel micro-benchmarks (time per run)";
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Bechamel.Time.second 0.25) ~kde:None () in
  let grouped = Test.make_grouped ~name:"expirel" all_tests in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.sprintf "%12.1f" est
          | Some _ | None -> "n/a"
        in
        [ name; ns ] :: acc)
      results []
    |> List.sort compare
  in
  Bench_util.table ~headers:[ "benchmark"; "ns/run" ] rows
