(* Experiment exp-antijoin (Section 3.4.2): the difference operator "may
   be executed as a hash join, a nested-loop join, or a sort-merge
   join", and the helper priority queue "can always [be gathered] in
   O(n log n) time ... with standard algorithms".

   Expected shape: hash and sort-merge scale near-linearly (the inputs
   arrive pre-sorted from the set representation), nested loop
   quadratically; extracting the critical tuples alongside costs almost
   nothing extra. *)

open Expirel_core
open Expirel_workload

let algorithms =
  [ "hash", Antijoin.Hash;
    "sort-merge", Antijoin.Sort_merge;
    "nested-loop", Antijoin.Nested_loop ]

let sweep () =
  Bench_util.section
    "Experiment exp-antijoin: physical difference implementations";
  let rng = Bench_util.rng 80 in
  List.iter
    (fun n ->
      Bench_util.subsection (Printf.sprintf "|R| = |S| = %d, overlap 0.5" n);
      let r, s =
        Gen.overlapping_pair ~rng ~arity:2 ~cardinality:n ~overlap:0.5
          ~values:(Gen.Uniform_value (20 * n))
          ~ttl:(Gen.Uniform_ttl (1, 100)) ~now:Time.zero
      in
      let rows =
        List.map
          (fun (name, alg) ->
            let result = ref (Relation.empty ~arity:2) in
            let (), diff_s =
              Bench_util.time_it (fun () -> result := Antijoin.diff alg r s)
            in
            let criticals = ref [] in
            let (), crit_s =
              Bench_util.time_it (fun () ->
                  criticals := Antijoin.critical_tuples alg r s)
            in
            [ name;
              Bench_util.f2 (diff_s *. 1e3);
              string_of_int (Relation.cardinal !result);
              Bench_util.f2 (crit_s *. 1e3);
              string_of_int (List.length !criticals) ])
          algorithms
      in
      Bench_util.table
        ~headers:[ "algorithm"; "diff ms"; "result"; "criticals ms"; "criticals" ]
        rows)
    [ 500; 2_000; 8_000 ];
  print_endline
    "\nShape check: all algorithms return identical results; nested loop\n\
     degrades quadratically while hash and sort-merge stay near-linear;\n\
     the critical set for the patch queue comes at the same cost."

let run_all () = sweep ()
