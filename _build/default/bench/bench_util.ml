(* Shared helpers for the benchmark/reproduction harness. *)

let section title =
  let line = String.make (String.length title + 8) '=' in
  Printf.printf "\n%s\n=== %s ===\n%s\n" line title line

let subsection title = Printf.printf "\n--- %s ---\n" title

(* Wall-clock timing of a thunk, in seconds, via the monotonic clock. *)
let time_it f =
  let t0 = Monotonic_clock.now () in
  let result = f () in
  let t1 = Monotonic_clock.now () in
  result, Int64.to_float (Int64.sub t1 t0) /. 1e9

(* Fixed-width text table: header row plus data rows. *)
let table ~headers rows =
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left (fun w row -> max w (String.length (List.nth row i)))
          (String.length h) rows)
      headers
  in
  let render cells =
    String.concat "  "
      (List.map2 (fun w c -> Printf.sprintf "%-*s" w c) widths cells)
  in
  print_endline (render headers);
  print_endline (render (List.map (fun w -> String.make w '-') widths));
  List.iter (fun row -> print_endline (render row)) rows

let f1 x = Printf.sprintf "%.1f" x
let f2 x = Printf.sprintf "%.2f" x

let rng seed = Random.State.make [| seed; 2006 |]
