(* Experiment exp-schrodinger (Sections 3.3-3.4): how many queries can a
   materialisation answer without recomputation when it carries validity
   intervals instead of a single expiration time?

   Expected shape: the interval representation answers strictly more
   queries (it regains validity after the critical window closes), and
   the move-backward/delay observers rescue part of the remainder. *)

open Expirel_core
open Expirel_workload

type verdict =
  | Served
  | Rescued
  | Needs_recompute

let classify_with_texp ~texp tau =
  if Time.(tau < texp) then Served else Needs_recompute

let classify_with_intervals ~validity ~policy tau =
  match Validity.observe ~policy ~validity tau with
  | Validity.Answer_now -> Served
  | Validity.Move_backward _ | Validity.Delay_until _ -> Rescued
  | Validity.Recompute -> Needs_recompute

(* Part 2: interval-carrying views (Section 3.4 in full) serve every
   future query with zero recomputation; compare their storage against
   the recomputation schedule they eliminate. *)
let maintenance_free () =
  Bench_util.subsection
    "interval-carrying views: storage vs recomputations eliminated";
  let rng = Bench_util.rng 55 in
  let shapes =
    [ "R -exp S", Algebra.(diff (base "R") (base "S"));
      "agg count by #1 (R)", Algebra.(aggregate [ 1 ] Aggregate.Count (base "R"));
      "agg min_2 by #1 (R)", Algebra.(aggregate [ 1 ] (Aggregate.Min 2) (base "R")) ]
  in
  let rows =
    List.map
      (fun (name, expr) ->
        let recomputes = ref 0 and extra = ref 0 and card = ref 0 and correct = ref true in
        let runs = 10 in
        for _ = 1 to runs do
          let rel c =
            Gen.relation ~rng ~arity:2 ~cardinality:c
              ~values:(Gen.Uniform_value 30) ~ttl:(Gen.Uniform_ttl (1, 100))
              ~now:Time.zero
          in
          let env = Eval.env_of_list [ "R", rel 200; "S", rel 200 ] in
          recomputes :=
            !recomputes
            + List.length
                (View.maintenance_times ~env ~from:Time.zero
                   ~horizon:(Time.of_int 120) expr);
          let v = Schrodinger_view.materialise ~env ~tau:Time.zero expr in
          let initial = Relation.cardinal (Schrodinger_view.read v ~tau:Time.zero) in
          card := !card + initial;
          extra := !extra + Schrodinger_view.entries v - initial;
          List.iter
            (fun tau ->
              if
                not
                  (Relation.equal
                     (Schrodinger_view.read v ~tau:(Time.of_int tau))
                     (Eval.relation_at ~env ~tau:(Time.of_int tau) expr))
              then correct := false)
            [ 0; 17; 43; 77; 119 ]
        done;
        let per_run x = Bench_util.f1 (float_of_int x /. float_of_int runs) in
        [ name; per_run !recomputes; per_run !card; per_run !extra;
          (if !correct then "exact forever" else "MISMATCH") ])
      shapes
  in
  Bench_util.table
    ~headers:[ "expression"; "recomputes avoided"; "result tuples";
               "extra interval entries"; "spot-check" ]
    rows;
  print_endline
    "\nShape check: a bounded number of extra interval entries (<= |R n S|\n\
     for difference, <= value changes <= |R| for aggregation) eliminates\n\
     every recomputation — Theorem 3 generalised to aggregation."

let sweep () =
  Bench_util.section
    "Experiment exp-schrodinger: single texp(e) vs validity intervals";
  let rng = Bench_util.rng 50 in
  let horizon = 120 in
  let query_times = List.init horizon Time.of_int in
  let shapes =
    [ "R -exp S", Algebra.(diff (base "R") (base "S"));
      "pi_1(R) -exp pi_1(S)",
      Algebra.(diff (project [ 1 ] (base "R")) (project [ 1 ] (base "S")));
      "agg min_2 by #1 (R)", Algebra.(aggregate [ 1 ] (Aggregate.Min 2) (base "R")) ]
  in
  let rows =
    List.map
      (fun (name, expr) ->
        let served_texp = ref 0 and served_iv = ref 0 and rescued = ref 0 in
        let runs = 15 in
        for _ = 1 to runs do
          let rel card =
            Gen.relation ~rng ~arity:2 ~cardinality:card
              ~values:(Gen.Uniform_value 30)
              ~ttl:(Gen.Uniform_ttl (1, horizon - 20))
              ~now:Time.zero
          in
          let env = Eval.env_of_list [ "R", rel 100; "S", rel 100 ] in
          let { Eval.texp; _ } = Eval.run ~env ~tau:Time.zero expr in
          let validity = Validity.expression_validity ~env ~tau:Time.zero expr in
          List.iter
            (fun tau ->
              (match classify_with_texp ~texp tau with
               | Served -> incr served_texp
               | Rescued | Needs_recompute -> ());
              match
                classify_with_intervals ~validity ~policy:Validity.Prefer_backward tau
              with
              | Served -> incr served_iv
              | Rescued -> incr rescued
              | Needs_recompute -> ())
            query_times
        done;
        let total = runs * horizon in
        let pct n = Bench_util.f1 (100. *. float_of_int n /. float_of_int total) in
        [ name; pct !served_texp; pct !served_iv; pct !rescued ])
      shapes
  in
  Bench_util.table
    ~headers:[ "expression"; "served, single texp(e) %";
               "served, intervals %"; "rescued by observer %" ]
    rows;
  print_endline
    "\nShape check: interval validity dominates the single expiration\n\
     time, and the Schrödinger observers (move backward / delay) rescue\n\
     part of the remaining queries without touching the base data."

let run_all () =
  sweep ();
  maintenance_free ()
