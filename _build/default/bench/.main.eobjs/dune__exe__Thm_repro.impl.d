bench/thm_repro.ml: Aggregate Algebra Bench_util Eval Expirel_core Expirel_workload Gen List Patch Predicate Printf Relation Time Value
