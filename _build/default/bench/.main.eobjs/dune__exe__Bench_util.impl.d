bench/bench_util.ml: Int64 List Monotonic_clock Printf Random String
