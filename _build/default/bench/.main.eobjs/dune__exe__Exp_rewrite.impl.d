bench/exp_rewrite.ml: Algebra Bench_util Cost Eval Expirel_core Expirel_workload Gen List Predicate Relation Rewrite Time Value View
