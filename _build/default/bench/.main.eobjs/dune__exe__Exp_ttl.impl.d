bench/exp_ttl.ml: Bench_util Expirel_workload List Web
