bench/fig_repro.ml: Aggregate Algebra Bench_util Eval Expirel_core Expirel_workload Explain List News Predicate Printf Relation String Time Tuple
