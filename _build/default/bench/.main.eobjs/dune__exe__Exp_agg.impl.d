bench/exp_agg.ml: Aggregate Algebra Bench_util Eval Expirel_core Expirel_workload Float Gen List Time Value
