bench/exp_unreliable.ml: Algebra Bench_util Eval Expirel_core Expirel_dist Expirel_workload Gen List Metrics Predicate Sim Sim_unreliable Time Value
