bench/exp_index.ml: Bench_util Expiration_index Expirel_core Expirel_index Expirel_workload Gen List Printf Time
