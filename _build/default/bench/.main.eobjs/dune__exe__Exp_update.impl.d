bench/exp_update.ml: Aggregate Algebra Bench_util Eval Expirel_core Expirel_workload List Maintained Predicate Printf Relation Sessions String Time Tuple
