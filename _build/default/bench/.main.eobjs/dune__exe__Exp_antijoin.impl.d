bench/exp_antijoin.ml: Antijoin Bench_util Expirel_core Expirel_workload Gen List Printf Relation Time
