bench/exp_eager_lazy.ml: Bench_util Database Expirel_core Expirel_storage Expirel_workload List Sessions Table Time Trigger
