bench/exp_schrodinger.ml: Aggregate Algebra Bench_util Eval Expirel_core Expirel_workload Gen List Relation Schrodinger_view Time Validity View
