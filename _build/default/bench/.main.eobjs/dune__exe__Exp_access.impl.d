bench/exp_access.ml: Access Bench_util Expirel_core Expirel_storage Float Format List Predicate Printf Random Table Time Tuple Value
