bench/exp_durable.ml: Array Bench_util Database Durable Expirel_core Expirel_storage Expirel_workload Filename Fun List Relation Sessions Sys Time
