bench/main.mli:
