bench/exp_patch.ml: Algebra Bench_util Eval Expirel_core Expirel_dist Expirel_workload Gen List Patch Time View
