bench/exp_dist.ml: Algebra Bench_util Eval Expirel_core Expirel_dist Expirel_workload Gen List Metrics Predicate Printf Random Sim Sim_update Time Tuple Value
