bench/exp_qos.ml: Aggregate Algebra Bench_util Eval Expirel_core Expirel_workload Gen List Predicate Printf Qos Time Value
