(* An operations centre built on the full stack: a durable on-call
   roster, continuous queries pushing events at exact expiration times,
   and predictive integrity constraints that warn before coverage gaps
   happen.

   Run with: dune exec examples/ops_center.exe *)

open Expirel_core
open Expirel_storage

let fin = Time.of_int
let section title = Printf.printf "\n=== %s ===\n" title

let () =
  let dir = Filename.temp_dir "expirel" "ops" in
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir)
  @@ fun () ->
  section "A durable on-call roster (WAL + checkpointing)";
  let t = Durable.open_dir dir in
  Durable.create_table t ~name:"oncall" ~columns:[ "op"; "level" ];
  (* Shifts end at known times: that IS the expiration time. *)
  List.iter
    (fun (op, level, shift_end) ->
      Durable.insert t "oncall" (Tuple.ints [ op; level ]) ~texp:(fin shift_end))
    [ 1, 1, 60; 2, 1, 25; 3, 2, 40; 4, 2, 95 ];
  Printf.printf "4 operators on call; WAL holds %d records\n" (Durable.wal_records t);

  let db = Durable.database t in
  let seniors =
    Algebra.(select (Predicate.eq_const 2 (Value.int 1)) (base "oncall"))
  in

  section "Predictive integrity constraints";
  let inv = Invariant.create db in
  Invariant.add inv ~name:"senior-coverage" ~expr:seniors
    (Invariant.Min_cardinality 2);
  Invariant.add inv ~name:"anyone-awake" ~expr:(Algebra.base "oncall")
    (Invariant.Min_cardinality 1);
  List.iter
    (fun name ->
      match Invariant.next_violation inv ~name ~horizon:(fin 200) with
      | Some at ->
        Printf.printf "  %-16s will break at t=%s — act before then!\n" name
          (Time.to_string at)
      | None -> Printf.printf "  %-16s holds for the next 200 ticks\n" name)
    (Invariant.names inv);

  (* Act on the prediction: extend operator 2's shift ahead of time. *)
  Durable.insert t "oncall" (Tuple.ints [ 2; 1 ]) ~texp:(fin 80);
  Printf.printf "renewed operator 2 through t=80; senior coverage now breaks at %s\n"
    (match Invariant.next_violation inv ~name:"senior-coverage" ~horizon:(fin 200) with
     | Some at -> Time.to_string at
     | None -> "never");

  section "Continuous queries: exact-time push notifications";
  let subs = Subscription.create db in
  Subscription.subscribe subs ~name:"seniors" seniors (fun event ->
      match event with
      | Subscription.Row_expired { tuple; at; _ } ->
        Printf.printf "  t=%-3s off-shift: %s\n" (Time.to_string at)
          (Tuple.to_string tuple)
      | Subscription.Row_appeared { tuple; at; _ } ->
        Printf.printf "  t=%-3s on-shift:  %s\n" (Time.to_string at)
          (Tuple.to_string tuple)
      | Subscription.Refreshed { at; _ } ->
        Printf.printf "  t=%-3s (view refreshed)\n" (Time.to_string at));
  Subscription.advance subs (fin 90);
  (* The subscription drove the in-memory clock; record the time change
     durably too (a no-op on the live state, one record in the WAL). *)
  Durable.advance_to t (fin 90);
  Printf.printf "seniors on call at t=90: %d\n"
    (Relation.cardinal (Subscription.current subs "seniors"));

  section "Crash recovery";
  let wal_before = Durable.wal_records t in
  Durable.close t;
  let reopened = Durable.open_dir dir in
  Printf.printf "reopened: clock back at t=%s, %d live operator(s)\n"
    (Time.to_string (Durable.now reopened))
    (Relation.cardinal (Database.snapshot (Durable.database reopened) "oncall"));
  let snapshot_records = Durable.checkpoint reopened in
  Printf.printf
    "checkpoint: %d wal records compacted into a %d-record snapshot\n\
     (expired shifts were never written: expiration is compaction)\n"
    wal_before snapshot_records;
  Durable.close reopened
