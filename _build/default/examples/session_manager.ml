(* Automatic session management (Section 1): sessions are tuples whose
   expiration time is "last activity + timeout".  Activity renews the
   expiration; no janitor process ever scans for dead sessions — the
   expiration index retires them, and a trigger audits each logout.

   Run with: dune exec examples/session_manager.exe *)

open Expirel_core
open Expirel_storage
open Expirel_workload

let timeout = 30

let () =
  let db = Database.create ~policy:Database.Eager () in
  let (_ : Table.t) =
    Database.create_table db ~name:"sessions" ~columns:Sessions.columns
  in

  (* Audit log via expiration trigger: fires at the exact logical time a
     session times out. *)
  let audit = ref [] in
  Trigger.register (Database.triggers db) ~name:"audit" ~table:"sessions"
    (fun e ->
      audit :=
        Printf.sprintf "t=%-4s session %s timed out"
          (Time.to_string e.Trigger.fired_at)
          (Tuple.to_string e.Trigger.tuple)
        :: !audit);

  let rng = Random.State.make [| 42 |] in
  let events =
    Sessions.timeline ~rng ~users:50 ~logins:120 ~horizon:300 ~activity_rate:3.0
  in
  Printf.printf "replaying %d login/activity events over 300 ticks\n"
    (List.length events);

  let peak = ref 0 in
  List.iter
    (fun event ->
      let at = Sessions.event_time event in
      if Time.(Time.of_int at > Database.now db) then
        Database.advance_to db (Time.of_int at);
      Sessions.apply_event ~timeout
        ~insert:(fun tuple ~texp ->
          (* Renewal = update of the expiration time (Section 2: the only
             places expiration times surface are insertion and update). *)
          Database.insert db "sessions" tuple ~texp)
        event;
      peak := max !peak (Relation.cardinal (Database.snapshot db "sessions")))
    events;

  Printf.printf "peak concurrent sessions: %d\n" !peak;
  Printf.printf "live sessions at t=%s: %d\n"
    (Time.to_string (Database.now db))
    (Relation.cardinal (Database.snapshot db "sessions"));

  (* Everything still alive dies within [timeout] of the last event. *)
  Database.advance_to db (Time.add (Database.now db) (Time.of_int timeout));
  Printf.printf "after one full timeout of silence: %d live sessions\n"
    (Relation.cardinal (Database.snapshot db "sessions"));

  Printf.printf "\naudit log (last 5 of %d timeouts):\n" (List.length !audit);
  List.iteri
    (fun i line -> if i < 5 then print_endline ("  " ^ line))
    !audit;

  (* A continuous query: sessions per user, kept as a materialised view
     that recomputes only when a count actually changes early. *)
  let per_user =
    Algebra.(project [ 2; 3 ] (aggregate [ 2 ] Aggregate.Count (base "sessions")))
  in
  let { Eval.texp; _ } = Database.query db per_user in
  Printf.printf
    "\nsessions-per-user view at t=%s: texp(e) = %s\n"
    (Time.to_string (Database.now db))
    (Time.to_string texp);
  print_endline
    "(the view self-maintains until that moment with zero server contact)"
