(* Quickstart: the paper's running example, end to end.

   Builds the Figure 1 relations, evaluates monotonic and non-monotonic
   expressions over time, shows expression expiration times, Schrödinger
   validity intervals, and difference patching.

   Run with: dune exec examples/quickstart.exe *)

open Expirel_core
open Expirel_workload

let section title = Printf.printf "\n=== %s ===\n" title

let () =
  section "Figure 1: base relations with expiration times";
  print_endline (Explain.relation_table ~title:"Pol (politics)"
                   ~columns:News.columns News.figure1_pol);
  print_endline (Explain.relation_table ~title:"El (elections)"
                   ~columns:News.columns News.figure1_el);

  let env = News.figure1_env in

  section "A monotonic query: who is interested in both topics?";
  let join = Algebra.(join (Predicate.eq_cols 1 3) (base "Pol") (base "El")) in
  print_endline
    (Explain.snapshots ~env ~times:(List.map Time.of_int [ 0; 3; 5 ]) join);
  let { Eval.texp; _ } = Eval.run ~env ~tau:Time.zero join in
  Printf.printf
    "texp(e) = %s: the materialised join never needs recomputation —\n\
     its tuples simply expire in place (Theorem 1).\n"
    (Time.to_string texp);

  section "A non-monotonic query: interest histogram (Figure 3a)";
  let histogram =
    Algebra.(project [ 2; 3 ] (aggregate [ 2 ] Aggregate.Count (base "Pol")))
  in
  let { Eval.relation; texp } = Eval.run ~env ~tau:Time.zero histogram in
  print_endline (Explain.relation_table ~columns:[ "deg"; "count" ] relation);
  Printf.printf
    "texp(e) = %s: at that time a count changes while its partition\n\
     lives on, so the materialisation must be recomputed.\n"
    (Time.to_string texp);

  section "A growing difference (Figure 3b-d)";
  let difference =
    Algebra.(diff (project [ 1 ] (base "Pol")) (project [ 1 ] (base "El")))
  in
  print_endline
    (Explain.snapshots ~env ~times:(List.map Time.of_int [ 0; 3; 5 ]) difference);
  Printf.printf "texp(e) = %s (tuple <2> must reappear then)\n"
    (Time.to_string (Eval.expression_texp ~env ~tau:Time.zero difference));

  section "Schrödinger validity intervals (Section 3.3)";
  let validity = Validity.expression_validity ~env ~tau:Time.zero difference in
  Printf.printf "I(e) = %s\n" (Interval_set.to_string validity);
  List.iter
    (fun tau ->
      let answer =
        match Validity.observe ~policy:Validity.Prefer_delay ~validity (Time.of_int tau) with
        | Validity.Answer_now -> "answer from the materialisation"
        | Validity.Move_backward t -> "answer as of time " ^ Time.to_string t
        | Validity.Delay_until t -> "delay until time " ^ Time.to_string t
        | Validity.Recompute -> "recompute"
      in
      Printf.printf "  query at %2d -> %s\n" tau answer)
    [ 1; 7; 20 ];

  section "Patching the difference (Theorem 3)";
  let patched =
    ref (Patch.create ~env ~tau:Time.zero
           ~left:Algebra.(project [ 1 ] (base "Pol"))
           ~right:Algebra.(project [ 1 ] (base "El")))
  in
  Printf.printf "helper queue holds %d critical tuple(s)\n" (Patch.pending !patched);
  List.iter
    (fun tau ->
      let served, next = Patch.read !patched ~tau:(Time.of_int tau) in
      patched := next;
      let fresh = Eval.relation_at ~env ~tau:(Time.of_int tau) difference in
      Printf.printf "  t=%2d patched view %s recomputation (%d tuples)\n" tau
        (if Relation.equal served fresh then "=" else "<>")
        (Relation.cardinal served))
    [ 0; 3; 5; 10; 15 ];
  print_endline "No recomputation ever happened: the view patched itself."
