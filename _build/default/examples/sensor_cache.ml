(* Monitoring data with known lifetimes (Section 1): each sensor sample
   is current until the next report, so it carries texp = at + period.
   A per-sensor aggregate view is maintained under the three expiration
   strategies of Section 2.6 to show how much view lifetime the
   neutral-set and change-point machinery buys.

   Run with: dune exec examples/sensor_cache.exe *)

open Expirel_core
open Expirel_storage
open Expirel_workload

let period = 10
let jitter = 3

let strategy_name = function
  | Aggregate.Conservative -> "conservative (Eq 8)   "
  | Aggregate.Neutral -> "neutral sets (Table 1)"
  | Aggregate.Exact -> "exact change points   "
  | Aggregate.Within t -> Printf.sprintf "within %-16.1f" t

let () =
  let db = Database.create () in
  let (_ : Table.t) =
    Database.create_table db ~name:"samples" ~columns:Sensors.columns
  in
  let rng = Random.State.make [| 7 |] in
  let stream = Sensors.stream ~rng ~sensors:20 ~period ~horizon:200 ~jitter in
  Printf.printf "ingesting %d samples from 20 sensors over 200 ticks\n"
    (List.length stream);

  (* Ingest the first half, leaving the clock in the middle of the run. *)
  let midpoint = 100 in
  List.iter
    (fun s ->
      if s.Sensors.at < midpoint then begin
        if Time.(Time.of_int s.Sensors.at > Database.now db) then
          Database.advance_to db (Time.of_int s.Sensors.at);
        Database.insert db "samples" (Sensors.tuple_of s)
          ~texp:(Sensors.texp_of ~period ~jitter s)
      end)
    stream;
  Printf.printf "clock at t=%s, %d samples live\n"
    (Time.to_string (Database.now db))
    (Relation.cardinal (Database.snapshot db "samples"));

  (* The cache clients hold: max reading per sensor. *)
  let hottest =
    Algebra.(project [ 1; 3 ] (aggregate [ 1 ] (Aggregate.Max 2) (base "samples")))
  in
  print_endline "\nview: hottest reading per sensor — expiration strategies:";
  List.iter
    (fun strategy ->
      let { Eval.relation; texp } = Database.query db ~strategy hottest in
      let mean_lifetime =
        let now = Database.now db in
        let total, n =
          Relation.fold
            (fun _ e (total, n) ->
              match e, now with
              | Time.Fin e, Time.Fin now -> total + (e - now), n + 1
              | _ -> total, n)
            relation (0, 0)
        in
        if n = 0 then 0. else float_of_int total /. float_of_int n
      in
      Printf.printf "  %s mean tuple lifetime %5.1f ticks, view texp(e) = %s\n"
        (strategy_name strategy) mean_lifetime (Time.to_string texp))
    [ Aggregate.Conservative; Aggregate.Neutral; Aggregate.Exact ];

  (* A remote dashboard polling vs expiring the cache. *)
  print_endline "\nremote dashboard over the mean-per-sensor view, 100 ticks:";
  let env = Database.env db in
  let avg_view =
    Algebra.(project [ 1; 3 ] (aggregate [ 1 ] (Aggregate.Avg 2) (base "samples")))
  in
  List.iter
    (fun strategy ->
      let report =
        Expirel_dist.Sim.run ~env ~expr:avg_view
          { Expirel_dist.Sim.horizon = 100; latency = 0; strategy }
      in
      Printf.printf "  %-18s %s\n"
        (Expirel_dist.Sim.strategy_label strategy)
        (Format.asprintf "%a" Expirel_dist.Metrics.pp report.Expirel_dist.Sim.metrics))
    [ Expirel_dist.Sim.Poll 5; Expirel_dist.Sim.Poll 25;
      Expirel_dist.Sim.Expiration_aware ]
