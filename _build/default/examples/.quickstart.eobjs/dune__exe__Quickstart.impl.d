examples/quickstart.ml: Aggregate Algebra Eval Expirel_core Expirel_workload Explain Interval_set List News Patch Predicate Printf Relation Time Validity
