examples/sensor_cache.mli:
