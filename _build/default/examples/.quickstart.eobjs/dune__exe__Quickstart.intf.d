examples/quickstart.mli:
