examples/session_manager.mli:
