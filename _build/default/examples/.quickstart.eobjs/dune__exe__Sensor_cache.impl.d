examples/sensor_cache.ml: Aggregate Algebra Database Eval Expirel_core Expirel_dist Expirel_storage Expirel_workload Format List Printf Random Relation Sensors Table Time
