examples/ops_center.ml: Algebra Array Database Durable Expirel_core Expirel_storage Filename Fun Invariant List Predicate Printf Relation Subscription Sys Time Tuple Value
