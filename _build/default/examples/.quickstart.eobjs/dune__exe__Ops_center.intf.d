examples/ops_center.mli:
