examples/replication_demo.ml: Algebra Eval Expirel_core Expirel_dist Expirel_workload Gen List Metrics Predicate Printf Random Sim Time Value
