examples/news_service.mli:
