examples/session_manager.ml: Aggregate Algebra Database Eval Expirel_core Expirel_storage Expirel_workload List Printf Random Relation Sessions Table Time Trigger Tuple
