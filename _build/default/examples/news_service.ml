(* The paper's motivating scenario (Section 2.1) at scale: a personalised
   news service whose engine stores per-topic interest profiles with
   expiration times, runs entirely through the sqlx query language, and
   regenerates profiles from an expiration trigger.

   Run with: dune exec examples/news_service.exe *)

open Expirel_core
open Expirel_storage
open Expirel_sqlx
open Expirel_workload

let section title = Printf.printf "\n=== %s ===\n" title

let run t sql =
  match Interp.exec_sql t sql with
  | Ok outcome -> outcome
  | Error msg -> failwith (Printf.sprintf "%s: %s" sql msg)

let show t sql =
  Printf.printf "sqlx> %s\n%s\n" sql (Interp.render (run t sql))

let () =
  let t = Interp.create () in
  let db = Interp.database t in

  section "Schema and seed data (Figure 1 plus a niche topic)";
  List.iter
    (fun sql -> ignore (run t sql))
    [ "CREATE TABLE pol (uid, deg)";
      "CREATE TABLE el (uid, deg)";
      "INSERT INTO pol VALUES (1, 25) EXPIRES 10";
      "INSERT INTO pol VALUES (2, 25) EXPIRES 15";
      "INSERT INTO pol VALUES (3, 35) EXPIRES 10";
      "INSERT INTO el VALUES (1, 75) EXPIRES 5";
      "INSERT INTO el VALUES (2, 85) EXPIRES 3";
      "INSERT INTO el VALUES (4, 90) EXPIRES 2" ];
  show t "SELECT * FROM pol";

  section "Profile regeneration via expiration triggers (Section 1)";
  (* When a profile expires, the engine re-derives a colder one from past
     behaviour instead of asking the user again. *)
  let regenerated = ref 0 in
  Trigger.register (Database.triggers db) ~name:"regenerate" ~table:"pol"
    (fun e ->
      incr regenerated;
      match Tuple.to_list e.Trigger.tuple with
      | [ uid; Value.Int deg ] ->
        let colder = max 5 (deg - 10) in
        Database.insert db "pol"
          (Tuple.of_list [ uid; Value.Int colder ])
          ~texp:(Time.add e.Trigger.fired_at (Time.of_int 20))
      | _ -> ());
  ignore (run t "ADVANCE TO 12");
  Printf.printf "advanced to 12: %d profile(s) regenerated automatically\n"
    !regenerated;
  show t "SELECT * FROM pol";

  section "Materialised views maintained by expiration alone";
  ignore (run t "CREATE VIEW crossover AS \
                 SELECT pol.uid FROM pol JOIN el ON pol.uid = el.uid");
  (match run t "CREATE VIEW hist AS SELECT deg, COUNT(*) FROM pol GROUP BY deg" with
   | Interp.Msg m -> print_endline m
   | Interp.Rows _ -> ());
  show t "SHOW VIEW hist";
  ignore (run t "ADVANCE TO 40");
  print_endline "-- after advancing to 40 (regenerated profiles expired too):";
  show t "SHOW VIEW hist";

  section "Scaled-up run: 2000 users, two topics";
  let rng = Random.State.make [| 2006 |] in
  let core, niche =
    News.two_topics ~rng ~users:2000
      ~core_ttl:(Gen.Uniform_ttl (200, 400))
      ~niche_ttl:(Gen.Uniform_ttl (10, 50))
      ~now:(Database.now db)
  in
  let (_ : Table.t) = Database.create_table db ~name:"sports" ~columns:News.columns in
  let (_ : Table.t) = Database.create_table db ~name:"playoffs" ~columns:News.columns in
  Relation.iter (fun tuple texp -> Database.insert db "sports" tuple ~texp) core;
  Relation.iter (fun tuple texp -> Database.insert db "playoffs" tuple ~texp) niche;
  Printf.printf "loaded %d core and %d niche profiles\n" (Relation.cardinal core)
    (Relation.cardinal niche);
  let engaged =
    Algebra.(
      project [ 1 ]
        (select
           (Predicate.Cmp (Predicate.Gt, Predicate.Col 2, Predicate.Const (Value.int 50)))
           (base "playoffs")))
  in
  let casual = Algebra.(diff (project [ 1 ] (base "sports")) engaged) in
  let { Eval.relation; texp } = Database.query db casual in
  Printf.printf
    "sports-but-not-playoff-fans: %d users; materialisation valid until %s\n"
    (Relation.cardinal relation) (Time.to_string texp);
  let schedule =
    View.maintenance_times ~env:(Database.env db) ~from:(Database.now db)
      ~horizon:(Time.add (Database.now db) (Time.of_int 200)) casual
  in
  Printf.printf
    "recomputation schedule over the next 200 ticks: %d refresh(es)\n"
    (List.length schedule);
  let patched =
    Patch.create ~env:(Database.env db) ~tau:(Database.now db)
      ~left:Algebra.(project [ 1 ] (base "sports")) ~right:engaged
  in
  Printf.printf
    "with patching instead: 0 refreshes, a %d-entry helper queue (Theorem 3)\n"
    (Patch.pending patched)
