(* Loosely-coupled replication (Section 1): remote devices hold
   materialised query results and cannot cheaply reach the base data.
   Compares the traffic and staleness of a traditional TTL-less poller
   against expiration-aware and patched views, across query shapes.

   Run with: dune exec examples/replication_demo.exe *)

open Expirel_core
open Expirel_dist
open Expirel_workload

let () =
  let rng = Random.State.make [| 11 |] in
  let r, s =
    Gen.overlapping_pair ~rng ~arity:2 ~cardinality:300 ~overlap:0.4
      ~values:(Gen.Uniform_value 500) ~ttl:(Gen.Uniform_ttl (5, 120))
      ~now:Time.zero
  in
  let env = Eval.env_of_list [ "R", r; "S", s ] in
  let horizon = 150 in

  let monotonic_view =
    Algebra.(
      select
        (Predicate.Cmp (Predicate.Lt, Predicate.Col 2, Predicate.Const (Value.int 250)))
        (base "R"))
  in
  let experiments =
    [ "monotonic view: sigma(R)", monotonic_view,
      [ Sim.Poll 5; Sim.Poll 20; Sim.Expiration_aware ];
      "non-monotonic view: R - S", Algebra.(diff (base "R") (base "S")),
      [ Sim.Poll 5; Sim.Poll 20; Sim.Expiration_aware; Sim.Patched ] ]
  in
  List.iter
    (fun (title, expr, strategies) ->
      Printf.printf "\n=== %s (horizon %d, latency 1) ===\n" title horizon;
      Printf.printf "  %-18s %10s %10s %10s %12s\n" "strategy" "messages"
        "bytes" "refetches" "stale ticks";
      List.iter
        (fun strategy ->
          let { Sim.metrics; _ } =
            Sim.run ~env ~expr { Sim.horizon; latency = 1; strategy }
          in
          Printf.printf "  %-18s %10d %10d %10d %12d\n"
            (Sim.strategy_label strategy)
            metrics.Metrics.messages metrics.Metrics.bytes
            metrics.Metrics.refetches metrics.Metrics.stale_ticks)
        strategies)
    experiments;

  print_endline
    "\nReading: polling either pays constant traffic or serves stale data;\n\
     the expiration-aware client is never stale and only refetches when\n\
     texp(e) passes; the patched difference never contacts the server again."
