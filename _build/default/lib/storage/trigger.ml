open Expirel_core

type event = {
  table : string;
  tuple : Tuple.t;
  texp : Time.t;
  fired_at : Time.t;
}

type handler = event -> unit

type entry = {
  name : string;
  table_name : string;
  handler : handler;
}

type registry = {
  mutable entries : entry list;
  mutable log : event list;  (* newest first *)
}

let create () = { entries = []; log = [] }

(* Registration order is firing order. *)
let register r ~name ~table handler =
  r.entries <-
    List.filter (fun e -> e.name <> name) r.entries
    @ [ { name; table_name = table; handler } ]

let unregister r ~name = r.entries <- List.filter (fun e -> e.name <> name) r.entries
let count r = List.length r.entries

let fire r event =
  r.log <- event :: r.log;
  List.iter
    (fun e ->
      if e.table_name = "*" || e.table_name = event.table then e.handler event)
    r.entries

let fired_log r = List.rev r.log
let clear_log r = r.log <- []
