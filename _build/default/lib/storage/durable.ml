open Expirel_core

type t = {
  dir : string;
  db : Database.t;
  mutable writer : Wal.Writer.t;
  mutable pending : int;  (* records in wal.log since last checkpoint *)
}

let snapshot_path dir = Filename.concat dir "snapshot.log"
let wal_path dir = Filename.concat dir "wal.log"

let apply db = function
  | Wal.Create_table { name; columns } ->
    let (_ : Table.t) = Database.create_table db ~name ~columns in
    ()
  | Wal.Drop_table name -> ignore (Database.drop_table db name)
  | Wal.Insert { table; tuple; texp } ->
    (* Records written in the past may already have expired relative to
       the replayed clock; skip them rather than fail. *)
    if Time.(texp > Database.now db) then Database.insert db table tuple ~texp
  | Wal.Delete { table; tuple } -> ignore (Database.delete db table tuple)
  | Wal.Advance t ->
    if Time.(t > Database.now db) then Database.advance_to db t

let open_dir ?policy ?backend dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    raise (Sys_error (dir ^ ": not a directory"));
  let db = Database.create ?policy ?backend () in
  let (_ : int) = Wal.replay (snapshot_path dir) ~f:(apply db) in
  let pending = Wal.replay (wal_path dir) ~f:(apply db) in
  { dir; db; writer = Wal.Writer.append_to (wal_path dir); pending }

let database t = t.db
let now t = Database.now t.db

let log t record =
  Wal.Writer.write t.writer record;
  t.pending <- t.pending + 1

let create_table t ~name ~columns =
  (* Validate before logging so a rejected operation leaves no record. *)
  if Database.table t.db name <> None then
    invalid_arg (Printf.sprintf "Durable.create_table: %s exists" name)
  else begin
    log t (Wal.Create_table { name; columns });
    let (_ : Table.t) = Database.create_table t.db ~name ~columns in
    ()
  end

let drop_table t name =
  if Database.table t.db name = None then false
  else begin
    log t (Wal.Drop_table name);
    Database.drop_table t.db name
  end

let insert t table tuple ~texp =
  let tbl = Database.table_exn t.db table in
  if Tuple.arity tuple <> Table.arity tbl then
    invalid_arg "Durable.insert: arity mismatch";
  if Time.(texp <= Database.now t.db) then
    invalid_arg "Durable.insert: texp <= now";
  log t (Wal.Insert { table; tuple; texp });
  Database.insert t.db table tuple ~texp

let delete t table tuple =
  let tbl = Database.table_exn t.db table in
  if Table.texp_of tbl tuple = None then false
  else begin
    log t (Wal.Delete { table; tuple });
    Database.delete t.db table tuple
  end

let advance_to t time =
  if Time.(time < Database.now t.db) then
    invalid_arg "Durable.advance_to: moving backwards"
  else begin
    log t (Wal.Advance time);
    Database.advance_to t.db time
  end

let checkpoint t =
  let tmp = snapshot_path t.dir ^ ".tmp" in
  if Sys.file_exists tmp then Sys.remove tmp;
  let snapshot_writer = Wal.Writer.append_to tmp in
  let written = ref 0 in
  let emit record =
    Wal.Writer.write snapshot_writer record;
    incr written
  in
  (* Clock first, so replayed inserts land after it and TTL comparisons
     hold. *)
  (match Database.now t.db with
   | Time.Fin _ as now when not (Time.equal now Time.zero) -> emit (Wal.Advance now)
   | Time.Fin _ | Time.Inf -> ());
  List.iter
    (fun name ->
      match Database.table t.db name with
      | None -> ()
      | Some tbl ->
        emit (Wal.Create_table { name; columns = Table.columns tbl });
        (* Only live tuples: expiration is compaction. *)
        Relation.iter
          (fun tuple texp -> emit (Wal.Insert { table = name; tuple; texp }))
          (Table.snapshot tbl ~tau:(Database.now t.db)))
    (Database.table_names t.db);
  Wal.Writer.close snapshot_writer;
  Sys.rename tmp (snapshot_path t.dir);
  (* Truncate the log only after the snapshot is safely in place. *)
  Wal.Writer.close t.writer;
  let oc = open_out (wal_path t.dir) in
  close_out oc;
  t.writer <- Wal.Writer.append_to (wal_path t.dir);
  t.pending <- 0;
  !written

let close t = Wal.Writer.close t.writer
let wal_records t = t.pending
