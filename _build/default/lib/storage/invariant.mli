(** Integrity constraints over expiring data (Section 1: "triggers can
    be supported that fire on expirations, as can integrity constraint
    checking").

    Because every tuple's lifetime is known, constraint violations
    caused by expiration are {e predictable}: {!next_violation} names
    the exact future time a constraint will break if nothing is
    inserted — letting an application top up a quorum, renew a
    credential or prefetch a replacement {e before} the violation,
    rather than detecting it after the fact. *)

open Expirel_core

type spec =
  | Min_cardinality of int  (** the result must always hold at least n rows *)
  | Max_cardinality of int  (** ... at most n rows *)

type violation = {
  name : string;
  at : Time.t;  (** when the constraint (first) fails *)
  cardinality : int;
  spec : spec;
}

type t

val create : Database.t -> t

val add : t -> name:string -> expr:Algebra.t -> spec -> unit
(** Registers a constraint over the expression's result.
    @raise Invalid_argument on duplicate names or a non-positive bound
    @raise Errors.Unknown_relation / {!Errors.Arity_mismatch} like
    {!Eval.run} *)

val remove : t -> string -> bool
val names : t -> string list

val check_now : t -> violation list
(** Constraints violated at the current clock, in name order. *)

val next_violation : t -> name:string -> horizon:Time.t -> Time.t option
(** The earliest time in [\[now, horizon\[] at which the constraint
    becomes violated, assuming no further updates — walking the known
    expiration times and [texp(e)] refreshes of the result.  [None] when
    it holds throughout (or is already violated now: see {!check_now}).
    @raise Not_found for unknown names
    @raise Invalid_argument on an infinite horizon *)

val advance : t -> Time.t -> violation list
(** Advances the database clock and returns, in time order, each
    constraint transition {e into} violation inside the interval. *)
