open Expirel_core

type spec =
  | Min_cardinality of int
  | Max_cardinality of int

type violation = {
  name : string;
  at : Time.t;
  cardinality : int;
  spec : spec;
}

type watch = {
  expr : Algebra.t;
  spec : spec;
}

type t = {
  db : Database.t;
  watches : (string, watch) Hashtbl.t;
}

let create db = { db; watches = Hashtbl.create 8 }

let add t ~name ~expr spec =
  (match spec with
   | Min_cardinality n | Max_cardinality n ->
     if n < 1 then invalid_arg "Invariant.add: non-positive bound");
  if Hashtbl.mem t.watches name then
    invalid_arg (Printf.sprintf "Invariant.add: %s exists" name)
  else begin
    (* Validate the expression eagerly. *)
    let arity_env n = Option.map Table.arity (Database.table t.db n) in
    let (_ : int) = Algebra.arity ~env:arity_env expr in
    Hashtbl.replace t.watches name { expr; spec }
  end

let remove t name =
  if Hashtbl.mem t.watches name then begin
    Hashtbl.remove t.watches name;
    true
  end
  else false

let names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.watches []
  |> List.sort String.compare

let violated spec cardinality =
  match spec with
  | Min_cardinality n -> cardinality < n
  | Max_cardinality n -> cardinality > n

let env_at t tau name =
  Option.map (fun tbl -> Table.snapshot tbl ~tau) (Database.table t.db name)

(* The result's cardinality as a step function over [from, horizon[:
   walks row expirations and texp(e) refreshes, exactly like a
   subscription but without side effects.  Yields each change point to
   [visit]; stops when [visit] returns false. *)
let walk_cardinality t expr ~from ~horizon ~visit =
  let rec go (result : Eval.result) now =
    if not (visit now (Relation.cardinal (Relation.exp now result.Eval.relation)))
    then ()
    else begin
      let live = Relation.exp now result.Eval.relation in
      let next_expiry =
        Relation.fold
          (fun _ texp acc ->
            if Time.is_finite texp && Time.(texp > now) then Time.min acc texp
            else acc)
          live Time.Inf
      in
      let next = Time.min next_expiry result.Eval.texp in
      if Time.(next >= horizon) || Time.is_infinite next then ()
      else if Time.(result.Eval.texp <= next) then
        go (Eval.run ~env:(env_at t next) ~tau:next expr) next
      else go result next
    end
  in
  go (Eval.run ~env:(env_at t from) ~tau:from expr) from

let check_now t =
  let now = Database.now t.db in
  List.filter_map
    (fun name ->
      let w = Hashtbl.find t.watches name in
      let cardinality =
        Relation.cardinal (Eval.relation_at ~env:(env_at t now) ~tau:now w.expr)
      in
      if violated w.spec cardinality then
        Some { name; at = now; cardinality; spec = w.spec }
      else None)
    (names t)

let next_violation t ~name ~horizon =
  if Time.is_infinite horizon then
    invalid_arg "Invariant.next_violation: infinite horizon";
  let w =
    match Hashtbl.find_opt t.watches name with
    | Some w -> w
    | None -> raise Not_found
  in
  let now = Database.now t.db in
  let found = ref None in
  walk_cardinality t w.expr ~from:now ~horizon ~visit:(fun at cardinality ->
      if Time.(at > now) && violated w.spec cardinality then begin
        found := Some at;
        false
      end
      else true);
  !found

let advance t target =
  if Time.is_infinite target then invalid_arg "Invariant.advance: infinite time"
  else if Time.(target < Database.now t.db) then
    invalid_arg "Invariant.advance: moving backwards"
  else begin
    let from = Database.now t.db in
    let transitions = ref [] in
    List.iter
      (fun name ->
        let w = Hashtbl.find t.watches name in
        let was_violated = ref None in
        walk_cardinality t w.expr ~from ~horizon:(Time.succ target)
          ~visit:(fun at cardinality ->
            let bad = violated w.spec cardinality in
            (match !was_violated, bad with
             | (None | Some false), true when Time.(at > from) ->
               transitions := { name; at; cardinality; spec = w.spec } :: !transitions
             | _ -> ());
            was_violated := Some bad;
            true))
      (names t);
    Database.advance_to t.db target;
    List.sort
      (fun a b ->
        match Time.compare a.at b.at with
        | 0 -> String.compare a.name b.name
        | c -> c)
      !transitions
  end
