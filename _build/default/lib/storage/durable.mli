(** A durable expiring database: {!Database} plus write-ahead logging
    and snapshot checkpoints in a directory.

    Layout: [dir/snapshot.log] (the state as of the last checkpoint, in
    WAL record format) and [dir/wal.log] (records since).  {!open_dir}
    replays snapshot then log; {!checkpoint} rewrites the snapshot from
    the {e live} state — expired tuples are never written, so
    checkpointing doubles as compaction (the paper's "smaller databases"
    benefit falls out of expiration).

    All mutating operations write ahead: the record reaches the log
    (flushed) before the in-memory state changes, so a crash at any
    point loses at most the operation in flight; {!Wal.replay}'s
    torn-tail tolerance makes the directory reopenable regardless. *)

open Expirel_core

type t

val open_dir :
  ?policy:Database.policy ->
  ?backend:Expirel_index.Expiration_index.backend ->
  string ->
  t
(** Opens (creating if empty) the database stored in the directory.
    @raise Sys_error when the directory does not exist *)

val database : t -> Database.t
(** The live in-memory database.  Mutate it only through this module, or
    durability is lost. *)

val now : t -> Time.t

val create_table : t -> name:string -> columns:string list -> unit
val drop_table : t -> string -> bool
val insert : t -> string -> Tuple.t -> texp:Time.t -> unit
val delete : t -> string -> Tuple.t -> bool
val advance_to : t -> Time.t -> unit

val checkpoint : t -> int
(** Rewrites the snapshot from the live (unexpired) state and truncates
    the log; returns the number of records in the new snapshot.  The
    snapshot is written to a temporary file and renamed, so a crash
    during checkpointing leaves the previous snapshot + log intact. *)

val close : t -> unit
(** Flushes and closes the log (the state remains usable in memory). *)

val wal_records : t -> int
(** Records appended to the log since open/last checkpoint. *)
