(** Write-ahead logging for the storage engine.

    Records are encoded one per line in a plain-text, crash-tolerant
    format: every append is flushed and length-framed on disk
    ([<len>:<payload>]), and {!replay} stops cleanly at the first
    malformed or truncated line, so a crash mid-write loses at most the
    record being written. *)

open Expirel_core

type record =
  | Create_table of {
      name : string;
      columns : string list;
    }
  | Drop_table of string
  | Insert of {
      table : string;
      tuple : Tuple.t;
      texp : Time.t;
    }
  | Delete of {
      table : string;
      tuple : Tuple.t;
    }
  | Advance of Time.t

val encode : record -> string
(** A single line (no trailing newline).  All strings are
    percent-encoded, so any table name, column name or string value
    round-trips. *)

val decode : string -> (record, string) result

module Writer : sig
  type t

  val append_to : string -> t
  (** Opens (creating if absent) the log at the given path for append. *)

  val write : t -> record -> unit
  (** Appends and flushes one record. *)

  val close : t -> unit
end

val replay : string -> f:(record -> unit) -> int
(** [replay path ~f] applies [f] to every well-formed leading record of
    the log and returns how many were applied; a missing file counts as
    an empty log.  Replay stops (without raising) at the first malformed
    line — the torn tail of a crashed writer. *)
