(** Triggers that fire when tuples expire (Section 1: "triggers can be
    supported that fire on expirations, as can integrity constraint
    checking").

    Handlers are keyed by (trigger name, table name); a table name of
    ["*"] subscribes to every table. *)

open Expirel_core

type event = {
  table : string;
  tuple : Tuple.t;
  texp : Time.t;  (** the expiration time that passed *)
  fired_at : Time.t;  (** clock value when the trigger fired *)
}

type handler = event -> unit

type registry

val create : unit -> registry

val register : registry -> name:string -> table:string -> handler -> unit
(** Replaces any existing trigger with the same [name]. *)

val unregister : registry -> name:string -> unit
val count : registry -> int

val fire : registry -> event -> unit
(** Invokes every handler subscribed to the event's table. *)

val fired_log : registry -> event list
(** Every event fired so far, oldest first (kept for observability and
    tests). *)

val clear_log : registry -> unit
