lib/storage/database.mli: Aggregate Algebra Eval Expiration_index Expirel_core Expirel_index Relation Table Time Trigger Tuple Value
