lib/storage/table.ml: Expiration_index Expirel_core Expirel_index Hashtbl Int List Option Ordered_index Printf Relation String Time Tuple
