lib/storage/wal.ml: Buffer Char Expirel_core List Printf Result String Sys Time Tuple Value
