lib/storage/trigger.ml: Expirel_core List Time Tuple
