lib/storage/subscription.mli: Algebra Database Expirel_core Relation Time Tuple
