lib/storage/table.mli: Expiration_index Expirel_core Expirel_index Ordered_index Relation Time Tuple Value
