lib/storage/ordered_index.ml: Expirel_core List Map Option Seq Set Tuple Value
