lib/storage/trigger.mli: Expirel_core Time Tuple
