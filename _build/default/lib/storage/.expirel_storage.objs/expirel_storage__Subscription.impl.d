lib/storage/subscription.ml: Algebra Database Eval Expirel_core Hashtbl List Option Printf Relation String Table Time Tuple
