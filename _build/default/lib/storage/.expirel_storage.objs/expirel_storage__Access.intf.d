lib/storage/access.mli: Aggregate Algebra Database Expirel_core Format Ordered_index Predicate Relation Table Time Value
