lib/storage/access.ml: Aggregate Algebra Database Expirel_core Format List Ops Ordered_index Predicate Relation Table Value
