lib/storage/ordered_index.mli: Expirel_core Tuple Value
