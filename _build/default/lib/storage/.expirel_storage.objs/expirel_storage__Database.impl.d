lib/storage/database.ml: Errors Eval Expiration_index Expirel_core Expirel_index Hashtbl List Option Printf String Table Time Trigger Tuple
