lib/storage/durable.ml: Database Expirel_core Filename List Printf Relation Sys Table Time Tuple Wal
