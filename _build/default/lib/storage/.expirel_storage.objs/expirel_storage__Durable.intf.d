lib/storage/durable.mli: Database Expirel_core Expirel_index Time Tuple
