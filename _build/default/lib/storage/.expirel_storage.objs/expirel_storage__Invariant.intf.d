lib/storage/invariant.mli: Algebra Database Expirel_core Time
