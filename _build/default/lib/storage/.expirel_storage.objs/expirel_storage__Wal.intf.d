lib/storage/wal.mli: Expirel_core Time Tuple
