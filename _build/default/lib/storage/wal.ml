open Expirel_core

type record =
  | Create_table of {
      name : string;
      columns : string list;
    }
  | Drop_table of string
  | Insert of {
      table : string;
      tuple : Tuple.t;
      texp : Time.t;
    }
  | Delete of {
      table : string;
      tuple : Tuple.t;
    }
  | Advance of Time.t

(* --- token-level encoding: percent-escape anything unusual --- *)

let plain c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '.'

let escape s =
  let buf = Buffer.create (String.length s + 4) in
  String.iter
    (fun c ->
      if plain c then Buffer.add_char buf c
      else Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c)))
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then Ok (Buffer.contents buf)
    else if s.[i] = '%' then
      if i + 2 >= n then Error "truncated escape"
      else
        match int_of_string_opt ("0x" ^ String.sub s (i + 1) 2) with
        | Some code ->
          Buffer.add_char buf (Char.chr code);
          go (i + 3)
        | None -> Error "bad escape"
    else begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
  in
  go 0

let encode_value = function
  | Value.Int n -> "i" ^ string_of_int n
  | Value.Float f -> Printf.sprintf "f%h" f
  | Value.Str s -> "s" ^ escape s
  | Value.Bool true -> "bt"
  | Value.Bool false -> "bf"
  | Value.Null -> "n"

let decode_value token =
  if String.length token = 0 then Error "empty value token"
  else
    let payload = String.sub token 1 (String.length token - 1) in
    match token.[0] with
    | 'i' ->
      (match int_of_string_opt payload with
       | Some n -> Ok (Value.Int n)
       | None -> Error "bad int")
    | 'f' ->
      (match float_of_string_opt payload with
       | Some f -> Ok (Value.Float f)
       | None -> Error "bad float")
    | 's' -> Result.map (fun s -> Value.Str s) (unescape payload)
    | 'b' ->
      (match payload with
       | "t" -> Ok (Value.Bool true)
       | "f" -> Ok (Value.Bool false)
       | _ -> Error "bad bool")
    | 'n' when payload = "" -> Ok Value.Null
    | _ -> Error "unknown value tag"

let encode_time = function
  | Time.Fin n -> string_of_int n
  | Time.Inf -> "inf"

let decode_time token =
  if token = "inf" then Ok Time.Inf
  else
    match int_of_string_opt token with
    | Some n -> Ok (Time.Fin n)
    | None -> Error "bad time"

let encode_tuple t = List.map encode_value (Tuple.to_list t)

let decode_tuple tokens =
  let rec go acc = function
    | [] -> Ok (Tuple.of_list (List.rev acc))
    | token :: rest ->
      (match decode_value token with
       | Ok v -> go (v :: acc) rest
       | Error e -> Error e)
  in
  go [] tokens

let encode = function
  | Create_table { name; columns } ->
    String.concat " " ("create" :: escape name :: List.map escape columns)
  | Drop_table name -> "drop " ^ escape name
  | Insert { table; tuple; texp } ->
    String.concat " "
      ("insert" :: escape table :: encode_time texp :: encode_tuple tuple)
  | Delete { table; tuple } ->
    String.concat " " ("delete" :: escape table :: encode_tuple tuple)
  | Advance t -> "advance " ^ encode_time t

let decode line =
  match String.split_on_char ' ' line with
  | "create" :: name :: columns when columns <> [] ->
    let unescaped = List.map unescape (name :: columns) in
    if List.exists Result.is_error unescaped then Error "bad create"
    else
      (match List.map Result.get_ok unescaped with
       | name :: columns -> Ok (Create_table { name; columns })
       | [] -> Error "bad create")
  | [ "drop"; name ] -> Result.map (fun n -> Drop_table n) (unescape name)
  | "insert" :: table :: texp :: values ->
    (match unescape table, decode_time texp, decode_tuple values with
     | Ok table, Ok texp, Ok tuple -> Ok (Insert { table; tuple; texp })
     | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error e)
  | "delete" :: table :: values ->
    (match unescape table, decode_tuple values with
     | Ok table, Ok tuple -> Ok (Delete { table; tuple })
     | Error e, _ | _, Error e -> Error e)
  | [ "advance"; t ] -> Result.map (fun t -> Advance t) (decode_time t)
  | _ -> Error "unknown record"

(* On disk each record line is length-framed ("<len>:<payload>"), so a
   torn final line is detected even when its prefix happens to parse as
   a shorter valid record. *)
let frame payload = Printf.sprintf "%d:%s" (String.length payload) payload

let unframe line =
  match String.index_opt line ':' with
  | None -> Error "missing frame"
  | Some i ->
    let payload = String.sub line (i + 1) (String.length line - i - 1) in
    (match int_of_string_opt (String.sub line 0 i) with
     | Some len when len = String.length payload -> Ok payload
     | Some _ | None -> Error "bad frame")

module Writer = struct
  type t = {
    channel : out_channel;
  }

  let append_to path =
    { channel = open_out_gen [ Open_append; Open_creat ] 0o644 path }

  let write w record =
    output_string w.channel (frame (encode record));
    output_char w.channel '\n';
    flush w.channel

  let close w = close_out w.channel
end

let replay path ~f =
  if not (Sys.file_exists path) then 0
  else begin
    let ic = open_in path in
    let applied = ref 0 in
    (try
       let continue = ref true in
       while !continue do
         match input_line ic with
         | line ->
           (match Result.bind (unframe line) decode with
            | Ok record ->
              f record;
              incr applied
            | Error _ -> continue := false (* torn tail: stop cleanly *))
         | exception End_of_file -> continue := false
       done
     with e ->
       close_in_noerr ic;
       raise e);
    close_in ic;
    !applied
  end
