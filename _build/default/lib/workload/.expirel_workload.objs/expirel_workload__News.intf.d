lib/workload/news.mli: Eval Expirel_core Gen Random Relation Time
