lib/workload/web.mli: Random
