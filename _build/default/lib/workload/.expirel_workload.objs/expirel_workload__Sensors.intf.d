lib/workload/sensors.mli: Expirel_core Random Time Tuple
