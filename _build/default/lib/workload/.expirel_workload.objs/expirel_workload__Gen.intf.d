lib/workload/gen.mli: Expirel_core Random Relation Time Value
