lib/workload/web.ml: List Random
