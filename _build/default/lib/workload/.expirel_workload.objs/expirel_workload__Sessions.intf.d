lib/workload/sessions.mli: Expirel_core Random Time Tuple
