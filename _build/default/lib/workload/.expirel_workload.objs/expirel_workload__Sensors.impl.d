lib/workload/sensors.ml: Expirel_core Int List Random Time Tuple
