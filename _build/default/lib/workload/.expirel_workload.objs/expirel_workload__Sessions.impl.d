lib/workload/sessions.ml: Expirel_core Int List Random Time Tuple
