lib/workload/news.ml: Eval Expirel_core Gen List Random Relation Time Tuple
