lib/workload/gen.ml: Array Expirel_core Float Hashtbl List Random Relation Time Tuple Value
