(** The paper's motivating scenario (Section 2.1): a dynamic,
    personalised news service whose engine maintains user profiles —
    pairs of user id and degree of interest, one relation per topic. *)

open Expirel_core

val figure1_pol : Relation.t
(** Table 'Pol' (politics) exactly as in Figure 1(a): tuples
    [<1,25>@10, <2,25>@15, <3,35>@10]. *)

val figure1_el : Relation.t
(** Table 'El' (elections) exactly as in Figure 1(b): tuples
    [<1,75>@5, <2,85>@3, <4,90>@2]. *)

val figure1_env : Eval.env
(** Both example relations under their paper names ["Pol"] and ["El"]. *)

val columns : string list
(** The profile schema: [\["uid"; "deg"\]]. *)

val profiles :
  rng:Random.State.t ->
  users:int ->
  coverage:float ->
  degree_levels:int ->
  ttl:Gen.ttl_dist ->
  now:Time.t ->
  Relation.t
(** A scaled-up topic table: each of [users] user ids appears with
    probability [coverage], with a degree of interest drawn from
    [degree_levels] distinct values (multiples of
    [100 / degree_levels], mimicking the paper's 25/35/75/85/90 style)
    and a lifetime from [ttl].  Core-topic tables use long TTLs, niche
    topics short ones (Section 2.1). *)

val two_topics :
  rng:Random.State.t ->
  users:int ->
  core_ttl:Gen.ttl_dist ->
  niche_ttl:Gen.ttl_dist ->
  now:Time.t ->
  Relation.t * Relation.t
(** A (core, niche) topic pair shaped like (Pol, El): the core table
    covers most users with long lifetimes, the niche table fewer users
    with short lifetimes. *)
