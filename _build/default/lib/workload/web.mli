(** Web-cache workload: choosing the expiration times themselves.

    The paper takes each tuple's lifetime as given by the data source;
    for web data its related work ([7] latency-recency profiles, [13]
    stochastic models of periodically updated data) studies how to pick
    a time-to-live for a cached copy of a changing page.  This module
    provides that setting: origin pages change at generated times, a
    TTL policy assigns expiration times to cached copies, and
    {!simulate} measures the resulting traffic/recency trade-off. *)

type page = {
  id : int;
  change_period : int;  (** the page changes roughly this often *)
  change_times : int list;  (** ascending change instants *)
}

val pages :
  rng:Random.State.t ->
  count:int ->
  period_range:int * int ->
  horizon:int ->
  page list
(** Pages with periods uniform in [period_range] (a mixed population of
    fast- and slow-changing pages) and jittered change times up to the
    horizon. *)

type ttl_policy =
  | Fixed_ttl of int  (** one TTL for every page, [>= 1] *)
  | Proportional_ttl of float
      (** TTL = max 1 (alpha * the page's change period) — the
          per-source choice the paper's model enables, [alpha > 0] *)

val ttl_for : ttl_policy -> page -> int

type result = {
  accesses : int;
  fetches : int;  (** origin fetches = traffic *)
  stale_serves : int;  (** accesses answered with an outdated copy *)
}

val simulate : pages:page list -> horizon:int -> policy:ttl_policy -> result
(** Every page is read once per tick.  A cached copy is served while its
    expiration time has not passed; an expired copy triggers a fetch of
    the current version (counted) at that tick.  A serve is stale when
    the origin changed after the copy was fetched.  Deterministic given
    the pages. *)
