open Expirel_core

type ttl_dist =
  | Constant_ttl of int
  | Uniform_ttl of int * int
  | Geometric_ttl of float
  | Immortal_share of float * ttl_dist

type value_dist =
  | Uniform_value of int
  | Centered_value of int
  | Zipf_value of int * float

let rec sample_ttl rng = function
  | Constant_ttl d ->
    if d < 1 then invalid_arg "Gen.sample_ttl: Constant_ttl < 1"
    else Time.of_int d
  | Uniform_ttl (lo, hi) ->
    if lo < 1 || hi < lo then invalid_arg "Gen.sample_ttl: bad Uniform_ttl bounds"
    else Time.of_int (lo + Random.State.int rng (hi - lo + 1))
  | Geometric_ttl p ->
    if p <= 0. || p > 1. then invalid_arg "Gen.sample_ttl: bad Geometric_ttl p"
    else begin
      (* Inverse-CDF sampling, floored at 1. *)
      let u = Random.State.float rng 1. in
      let d = int_of_float (Float.ceil (log1p (-.u) /. log1p (-.p))) in
      Time.of_int (max 1 d)
    end
  | Immortal_share (share, rest) ->
    if share < 0. || share > 1. then
      invalid_arg "Gen.sample_ttl: bad Immortal_share"
    else if Random.State.float rng 1. < share then Time.Inf
    else sample_ttl rng rest

(* Zipf via rejection-free inverse CDF over precomputed cumulative
   weights would cost O(n) per table; we memoise tables per (n, s). *)
let zipf_tables : (int * float, float array) Hashtbl.t = Hashtbl.create 8

let zipf_cdf n s =
  match Hashtbl.find_opt zipf_tables (n, s) with
  | Some cdf -> cdf
  | None ->
    let weights = Array.init n (fun i -> 1. /. Float.pow (float_of_int (i + 1)) s) in
    let total = Array.fold_left ( +. ) 0. weights in
    let cdf = Array.make n 0. in
    let acc = ref 0. in
    Array.iteri
      (fun i w ->
        acc := !acc +. (w /. total);
        cdf.(i) <- !acc)
      weights;
    Hashtbl.replace zipf_tables (n, s) cdf;
    cdf

let sample_value rng = function
  | Uniform_value n ->
    if n < 1 then invalid_arg "Gen.sample_value: Uniform_value < 1"
    else Value.Int (Random.State.int rng n)
  | Centered_value n ->
    if n < 0 then invalid_arg "Gen.sample_value: Centered_value < 0"
    else Value.Int (Random.State.int rng ((2 * n) + 1) - n)
  | Zipf_value (n, s) ->
    if n < 1 then invalid_arg "Gen.sample_value: Zipf_value < 1"
    else begin
      let cdf = zipf_cdf n s in
      let u = Random.State.float rng 1. in
      (* Binary search for the first index with cdf >= u. *)
      let rec search lo hi =
        if lo >= hi then lo
        else
          let mid = (lo + hi) / 2 in
          if cdf.(mid) >= u then search lo mid else search (mid + 1) hi
      in
      Value.Int (search 0 (n - 1))
    end

let random_tuple rng ~arity ~values =
  Tuple.of_list (List.init arity (fun _ -> sample_value rng values))

let relation ~rng ~arity ~cardinality ~values ~ttl ~now =
  let rec fill r added attempts =
    if added >= cardinality || attempts > 20 * cardinality then r
    else
      let t = random_tuple rng ~arity ~values in
      if Relation.mem t r then fill r added (attempts + 1)
      else
        let texp = Time.add now (sample_ttl rng ttl) in
        fill (Relation.add t ~texp r) (added + 1) (attempts + 1)
  in
  fill (Relation.empty ~arity) 0 0

let overlapping_pair ~rng ~arity ~cardinality ~overlap ~values ~ttl ~now =
  if overlap < 0. || overlap > 1. then
    invalid_arg "Gen.overlapping_pair: overlap outside [0, 1]";
  let shared_count = int_of_float (overlap *. float_of_int cardinality) in
  let base = relation ~rng ~arity ~cardinality ~values ~ttl ~now in
  let tuples = Relation.tuples base in
  let shared = List.filteri (fun i _ -> i < shared_count) tuples in
  let own_of target =
    let rec fill r added attempts =
      if added >= cardinality - List.length shared
         || attempts > 20 * cardinality
      then r
      else
        let t = random_tuple rng ~arity ~values in
        if Relation.mem t base || Relation.mem t r then fill r added (attempts + 1)
        else
          let texp = Time.add now (sample_ttl rng ttl) in
          fill (Relation.add t ~texp r) (added + 1) (attempts + 1)
    in
    fill target 0 0
  in
  let with_shared () =
    List.fold_left
      (fun r t -> Relation.add t ~texp:(Time.add now (sample_ttl rng ttl)) r)
      (Relation.empty ~arity) shared
  in
  own_of (with_shared ()), own_of (with_shared ())

let expiry_stream ~rng ~n ~ttl ~now =
  List.init n (fun id ->
      let rec finite_ttl () =
        match sample_ttl rng ttl with
        | Time.Fin d -> d
        | Time.Inf -> finite_ttl ()
      in
      id, now + finite_ttl ())
