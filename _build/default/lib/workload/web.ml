type page = {
  id : int;
  change_period : int;
  change_times : int list;
}

let pages ~rng ~count ~period_range:(lo, hi) ~horizon =
  if count < 1 || lo < 1 || hi < lo || horizon < 1 then
    invalid_arg "Web.pages: bad parameters";
  List.init count (fun id ->
      let change_period = lo + Random.State.int rng (hi - lo + 1) in
      let rec changes t acc =
        if t >= horizon then List.rev acc
        else
          let jitter =
            Random.State.int rng (max 1 (change_period / 2))
            - (change_period / 4)
          in
          let next = max (t + 1) (t + change_period + jitter) in
          if next >= horizon then List.rev acc else changes next (next :: acc)
      in
      { id; change_period; change_times = changes 0 [] })

type ttl_policy =
  | Fixed_ttl of int
  | Proportional_ttl of float

let ttl_for policy page =
  match policy with
  | Fixed_ttl n ->
    if n < 1 then invalid_arg "Web.ttl_for: Fixed_ttl < 1" else n
  | Proportional_ttl alpha ->
    if alpha <= 0. then invalid_arg "Web.ttl_for: non-positive alpha"
    else max 1 (int_of_float (alpha *. float_of_int page.change_period))

type result = {
  accesses : int;
  fetches : int;
  stale_serves : int;
}

type copy = {
  mutable fetched_at : int;
  mutable expires_at : int;
}

let simulate ~pages ~horizon ~policy =
  let accesses = ref 0 and fetches = ref 0 and stale = ref 0 in
  List.iter
    (fun page ->
      let ttl = ttl_for policy page in
      let copy = { fetched_at = -1; expires_at = 0 } in
      let last_change_before t =
        List.fold_left (fun acc c -> if c <= t then c else acc) (-1)
          page.change_times
      in
      for now = 0 to horizon - 1 do
        incr accesses;
        if copy.expires_at <= now then begin
          incr fetches;
          copy.fetched_at <- now;
          copy.expires_at <- now + ttl
        end;
        (* Stale iff the origin changed after the copy was fetched. *)
        if last_change_before now > copy.fetched_at then incr stale
      done)
    pages;
  { accesses = !accesses; fetches = !fetches; stale_serves = !stale }
