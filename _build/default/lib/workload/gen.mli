(** Deterministic random workload generators (seeded PRNG throughout, so
    every experiment is reproducible run to run). *)

open Expirel_core

type ttl_dist =
  | Constant_ttl of int  (** every tuple lives exactly this long *)
  | Uniform_ttl of int * int  (** inclusive bounds, [1 <= lo <= hi] *)
  | Geometric_ttl of float  (** success probability in [(0, 1\]];
                                 mean [1/p], heavy tail of long-lived tuples *)
  | Immortal_share of float * ttl_dist
      (** this fraction gets [texp = Inf], the rest draws from the
          nested distribution *)

type value_dist =
  | Uniform_value of int  (** uniform over [0 .. n-1] *)
  | Centered_value of int  (** uniform over [-n .. n]; cancellations make
                               sum/avg neutral slices (Table 1) common *)
  | Zipf_value of int * float  (** [Zipf (n, s)]: ranks [1..n],
                                    exponent [s]; skew creates duplicate
                                    attribute values and thus interesting
                                    projections/partitions *)

val sample_ttl : Random.State.t -> ttl_dist -> Time.t
(** A TTL (relative lifetime); [Fin d] with [d >= 1], or [Inf]. *)

val sample_value : Random.State.t -> value_dist -> Value.t

val relation :
  rng:Random.State.t ->
  arity:int ->
  cardinality:int ->
  values:value_dist ->
  ttl:ttl_dist ->
  now:Time.t ->
  Relation.t
(** Random relation of distinct tuples with expiration times
    [now + ttl].  May return fewer than [cardinality] tuples when the
    value space is too small to supply enough distinct tuples (set
    semantics); it gives up after a bounded number of redraws. *)

val overlapping_pair :
  rng:Random.State.t ->
  arity:int ->
  cardinality:int ->
  overlap:float ->
  values:value_dist ->
  ttl:ttl_dist ->
  now:Time.t ->
  Relation.t * Relation.t
(** Two relations sharing approximately [overlap] (in [\[0, 1\]]) of
    their tuples — the knob that controls the critical set
    [{t | t in R /\ t in S /\ texp_R(t) > texp_S(t)}] driving difference
    recomputation.  Shared tuples get independent expiration times in
    each relation, so roughly half the shared tuples are critical. *)

val expiry_stream :
  rng:Random.State.t -> n:int -> ttl:ttl_dist -> now:int -> (int * int) list
(** [n] [(id, expire_at)] registrations for expiration-index benchmarks;
    infinite TTLs are redrawn (every entry expires). *)
