open Expirel_core

type event =
  | Login of { session : int; user : int; at : int }
  | Activity of { session : int; user : int; at : int }

let columns = [ "sid"; "uid" ]

let event_time = function
  | Login { at; _ } -> at
  | Activity { at; _ } -> at

let event_rank = function
  | Login _ -> 0
  | Activity _ -> 1

let event_session = function
  | Login { session; _ } -> session
  | Activity { session; _ } -> session

let timeline ~rng ~users ~logins ~horizon ~activity_rate =
  if users < 1 || logins < 0 || horizon < 1 then
    invalid_arg "Sessions.timeline: bad sizes";
  if activity_rate < 0. then invalid_arg "Sessions.timeline: negative rate";
  let events = ref [] in
  for session = 1 to logins do
    let user = 1 + Random.State.int rng users in
    let at = Random.State.int rng horizon in
    events := Login { session; user; at } :: !events;
    (* Geometric number of follow-up activities with mean activity_rate. *)
    let p = 1. /. (1. +. activity_rate) in
    let rec activities t =
      if Random.State.float rng 1. >= p && t < horizon - 1 then begin
        let t = t + 1 + Random.State.int rng (max 1 ((horizon - t) / 4)) in
        if t < horizon then begin
          events := Activity { session; user; at = t } :: !events;
          activities t
        end
      end
    in
    activities at
  done;
  List.sort
    (fun a b ->
      match Int.compare (event_time a) (event_time b) with
      | 0 ->
        (match Int.compare (event_rank a) (event_rank b) with
         | 0 -> Int.compare (event_session a) (event_session b)
         | c -> c)
      | c -> c)
    !events

let tuple_of ~session ~user = Tuple.ints [ session; user ]

let apply_event ~timeout ~insert event =
  match event with
  | Login { session; user; at } | Activity { session; user; at } ->
    insert
      (tuple_of ~session ~user)
      ~texp:(Time.of_int (at + timeout))
