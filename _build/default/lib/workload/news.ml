open Expirel_core

let figure1_pol =
  Relation.of_list ~arity:2
    [ Tuple.ints [ 1; 25 ], Time.of_int 10;
      Tuple.ints [ 2; 25 ], Time.of_int 15;
      Tuple.ints [ 3; 35 ], Time.of_int 10 ]

let figure1_el =
  Relation.of_list ~arity:2
    [ Tuple.ints [ 1; 75 ], Time.of_int 5;
      Tuple.ints [ 2; 85 ], Time.of_int 3;
      Tuple.ints [ 4; 90 ], Time.of_int 2 ]

let figure1_env = Eval.env_of_list [ "Pol", figure1_pol; "El", figure1_el ]
let columns = [ "uid"; "deg" ]

let profiles ~rng ~users ~coverage ~degree_levels ~ttl ~now =
  if coverage < 0. || coverage > 1. then invalid_arg "News.profiles: coverage";
  if degree_levels < 1 then invalid_arg "News.profiles: degree_levels < 1";
  let step = max 1 (100 / degree_levels) in
  let add acc uid =
    if Random.State.float rng 1. <= coverage then
      let degree = step * (1 + Random.State.int rng degree_levels) in
      let texp = Time.add now (Gen.sample_ttl rng ttl) in
      Relation.add (Tuple.ints [ uid; degree ]) ~texp acc
    else acc
  in
  List.fold_left add (Relation.empty ~arity:2) (List.init users (fun i -> i + 1))

let two_topics ~rng ~users ~core_ttl ~niche_ttl ~now =
  let core =
    profiles ~rng ~users ~coverage:0.9 ~degree_levels:4 ~ttl:core_ttl ~now
  in
  let niche =
    profiles ~rng ~users ~coverage:0.3 ~degree_levels:4 ~ttl:niche_ttl ~now
  in
  core, niche
