(** Session-key workload: "automatic session management in HTTP servers,
    short-lived credentials and keys in cryptographic protocols"
    (Section 1).

    Generates a timeline of logins and activity; each activity renews the
    session's expiration time (an update assigning a new [texp]), so the
    session dies [timeout] ticks after its last activity — expiration
    replaces the usual janitor/cron deletion logic. *)

open Expirel_core

type event =
  | Login of { session : int; user : int; at : int }
  | Activity of { session : int; user : int; at : int }
      (** renews the session *)

val columns : string list
(** [\["sid"; "uid"\]]. *)

val event_time : event -> int

val timeline :
  rng:Random.State.t ->
  users:int ->
  logins:int ->
  horizon:int ->
  activity_rate:float ->
  event list
(** [logins] login events uniformly over [\[0, horizon\[], each followed
    by a geometric number of activities (mean [activity_rate] per
    session) at increasing times.  Events are sorted by time (ties:
    logins first, then session id). *)

val tuple_of : session:int -> user:int -> Tuple.t

val apply_event :
  timeout:int -> insert:(Tuple.t -> texp:Time.t -> unit) -> event -> unit
(** Translates an event into an insert/renewal carrying
    [texp = event time + timeout] (callers drive the clock to the event
    time first). *)
