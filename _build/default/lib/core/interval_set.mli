(** Normalised sets of disjoint, non-adjacent, sorted half-open intervals.

    Section 3.3 replaces the single expiration time of a materialised
    expression with "a set of time intervals during which the result is
    valid"; this module is that representation. *)

type t

val empty : t
val is_empty : t -> bool

val full : t
(** All of time: [\[-Inf... \[] is not representable; [full] is
    [\[Time.zero, Inf\[], the domain of the paper's non-negative times.
    Use [of_interval (Interval.from tau)] for "[tau] onwards". *)

val of_interval : Interval.t -> t
val of_list : Interval.t list -> t
(** Builds the normal form: overlapping and adjacent intervals are merged. *)

val to_list : t -> Interval.t list
(** Sorted, disjoint, non-adjacent. *)

val add : Interval.t -> t -> t
val mem : Time.t -> t -> bool
val equal : t -> t -> bool
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t

val complement : within:Interval.t -> t -> t
(** [complement ~within s] is [within - s]. *)

val cardinal : t -> int
(** Number of maximal intervals. *)

val total_duration : t -> Time.t
(** Sum of interval durations; [Inf] if any interval is unbounded. *)

val first_gap_after : Time.t -> t -> Time.t option
(** [first_gap_after tau s] is the earliest time [>= tau] not covered by
    [s], or [None] when [s] covers [\[tau, Inf\[]. *)

val next_covered_after : Time.t -> t -> Time.t option
(** [next_covered_after tau s] is the earliest covered time [>= tau], or
    [None] if no covered time follows. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
