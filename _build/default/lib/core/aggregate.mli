(** Aggregation over expiring relations (Section 2.6.1).

    Provides the family [F] of aggregate functions ([min_i], [max_i],
    [sum_i], [count], [avg_i]), the stable partitioning function
    [phi^exp] (Equation (7)), and the three strategies for assigning
    expiration times to aggregation result tuples:

    - {!strategy.Conservative}: Equation (8) — the minimum expiration time
      of the partition;
    - {!strategy.Neutral}: Table 1 / Definition 2 — ignore time-sliced
      neutral subsets and take the minimum over the contributing set
      [C_f_P] (maximum of the partition when [C_f_P] is empty);
    - {!strategy.Exact}: Equation (9) — the change-point function [nu],
      the first time the aggregate value actually differs from its value
      at materialisation time.

    For every partition, [Conservative <= Neutral <= Exact] holds
    pointwise, and all three coincide for [count] ("the new definition
    ... improves on the expiration times of all aggregates except
    count"). *)

type func =
  | Count  (** [count]: number of tuples in the partition *)
  | Sum of int  (** [sum_i], 1-based attribute *)
  | Min of int  (** [min_i] *)
  | Max of int  (** [max_i] *)
  | Avg of int  (** [avg_i] *)

type strategy =
  | Conservative
  | Neutral
  | Exact
  | Within of float
      (** the paper's future-work direction "maintaining, e.g., aggregate
          values with certain error bounds": result tuples expire only
          when the value drifts more than the given absolute tolerance
          from the materialised value, extending lifetimes further at the
          price of bounded inaccuracy.  [Within 0.] coincides with
          [Exact] on numeric values. *)

val func_attr : func -> int option
(** The attribute the function aggregates; [None] for [Count]. *)

val func_arity_ok : arity:int -> func -> bool

type partition = (Tuple.t * Time.t) list
(** The members of one [phi^exp] partition with their expiration times. *)

val apply : func -> partition -> Value.t
(** Aggregate value of a partition.  [Null] attribute values do not
    contribute (Section 2.4's rule on non-originating values); [Count]
    counts all tuples.  [Avg] yields a [Float].
    @raise Invalid_argument on an empty partition. *)

val partitions : group:int list -> Relation.t -> (Tuple.t * partition) list
(** [partitions ~group r] groups the tuples of [r] by equality under the
    projection on [group] (1-based) — the stable partitioning [phi^exp] of
    Equation (7).  Keys are the projected tuples; ordering is
    deterministic. *)

val partition_of : group:int list -> Relation.t -> Tuple.t -> partition
(** [partition_of ~group r t] is the paper's [phi^exp(R, t)]: all live
    tuples of [r] agreeing with [t] on the [group] attributes. *)

val chi : Time.t -> func -> partition -> bool
(** [chi tau f p]: does [f] applied to [exp_tau p] and [exp_(tau+1) p]
    yield different results (an emptying partition counts as a change)? *)

val nu : tau:Time.t -> func -> partition -> Time.t
(** [nu ~tau f p] — Equation (9)'s change point: the least [tau' >= tau]
    at which the value of [f] on [exp_tau' p] differs from its value on
    [exp_tau p] (the partition becoming empty counts as a difference).
    [Inf] when the value never changes (all remaining members immortal). *)

val nu_within : tolerance:float -> tau:Time.t -> func -> partition -> Time.t
(** [nu_within ~tolerance ~tau f p] — the approximate change point: the
    least [tau' >= tau] at which the value of [f] on [exp_tau' p] drifts
    more than [tolerance] (absolutely) from its value on [exp_tau p], or
    the partition empties.  Non-numeric values fall back to exact
    inequality.  [nu ~tau f p <= nu_within ~tolerance ~tau f p] for every
    [tolerance >= 0], with equality at 0 on numeric values.
    @raise Invalid_argument on a negative tolerance *)

val empties_at : partition -> Time.t
(** The time at which the whole partition has expired:
    [max { texp(t) | t in P }] (Section 2.6.1). [Inf] when some member
    never expires or the partition is empty. *)

val result_texp : strategy -> tau:Time.t -> func -> partition -> Time.t
(** Expiration time assigned to the result tuples of one partition under
    the given strategy.  Members already expired at [tau] are ignored.
    @raise Invalid_argument when no member is live at [tau]. *)

val neutral_slices :
  tau:Time.t -> func -> partition -> (Time.t * partition) list * partition
(** [neutral_slices ~tau f p] splits the live members into the maximal
    prefix of time-sliced neutral subsets (in expiration order, each
    neutral with respect to what remains, per Table 1) and the
    contributing set [C_f_P] of Definition 2.  Returns
    [(neutral_slices, contributing_set)]. *)

val timeline : tau:Time.t -> func -> partition -> (Time.t * Value.t option) list
(** [timeline ~tau f p] is the step function of the aggregate value over
    time: a list of [(start, value)] segments, each extending to the next
    segment's start (the last to infinity); [None] means the partition is
    empty.  The first segment starts at [tau].  Used by the Schrödinger
    semantics (Section 3.4.1). *)

val validity_windows : tau:Time.t -> func -> partition -> Interval_set.t
(** [validity_windows ~tau f p] — the paper's [I_R(t)] for a result tuple
    of this partition materialised at [tau]: all times at which the
    aggregate value equals its value at [tau], or at which the partition
    has expired entirely (the result tuple is then simply absent rather
    than wrong). *)

val pp_func : Format.formatter -> func -> unit
val func_to_string : func -> string
