(** The totally ordered time domain of the paper (Section 2.2).

    Finite times are identified with the integers (the paper uses the
    non-negative integers; we accept any [int] and leave range policy to
    callers), extended with the symbol [infinity], which is larger than any
    finite time.  Expiration time [infinity] marks a tuple that never
    expires, recovering textbook relational semantics. *)

type t =
  | Fin of int  (** a finite timestamp *)
  | Inf  (** the symbol [infinity] *)

val zero : t
val infinity : t

val of_int : int -> t
(** [of_int n] is [Fin n]. *)

val to_int_opt : t -> int option
(** [to_int_opt t] is [Some n] for [Fin n] and [None] for [Inf]. *)

val is_finite : t -> bool
val is_infinite : t -> bool

val compare : t -> t -> int
(** Total order with [Inf] as the greatest element. *)

val equal : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

val min : t -> t -> t
val max : t -> t -> t

val min_list : t list -> t
(** [min_list ts] is the minimum of [ts], or [Inf] when [ts] is empty —
    matching the paper's convention that [texp] of an expression with no
    constraining tuple is [infinity]. *)

val max_list : t list -> t
(** [max_list ts] is the maximum of [ts], or [Inf] when [ts] is empty.
    The empty case never arises in the paper's formulas (maxima are taken
    over non-empty partitions); we pick [Inf] and callers guard emptiness. *)

val succ : t -> t
(** [succ (Fin n)] is [Fin (n + 1)]; [succ Inf] is [Inf]. *)

val pred : t -> t
(** [pred (Fin n)] is [Fin (n - 1)]; [pred Inf] is [Inf]. *)

val add : t -> t -> t
(** Saturating addition: [Inf] absorbs. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
