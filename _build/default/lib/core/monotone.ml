let rec is_monotonic = function
  | Algebra.Base _ -> true
  | Algebra.Select (_, e) | Algebra.Project (_, e) -> is_monotonic e
  | Algebra.Product (l, r)
  | Algebra.Union (l, r)
  | Algebra.Join (_, l, r)
  | Algebra.Intersect (l, r) ->
    is_monotonic l && is_monotonic r
  | Algebra.Diff _ | Algebra.Aggregate _ -> false

let non_monotonic_nodes e =
  let rec collect acc = function
    | Algebra.Base _ -> acc
    | Algebra.Select (_, e') | Algebra.Project (_, e') -> collect acc e'
    | Algebra.Product (l, r)
    | Algebra.Union (l, r)
    | Algebra.Join (_, l, r)
    | Algebra.Intersect (l, r) ->
      collect (collect acc l) r
    | Algebra.Diff (l, r) as node ->
      collect (collect (node :: acc) l) r
    | Algebra.Aggregate (_, _, e') as node -> collect (node :: acc) e'
  in
  List.rev (collect [] e)

let classify e =
  match non_monotonic_nodes e with
  | [] -> `Monotonic
  | nodes -> `Non_monotonic (List.length nodes)
