type t = {
  expr : Algebra.t;
  strategy : Aggregate.strategy;
  computed_at : Time.t;
  contents : Relation.t;
  texp : Time.t;
  validity : Interval_set.t;
}

let materialise ?(strategy = Aggregate.Exact) ~env ~tau expr =
  let { Eval.relation; texp } = Eval.run ~strategy ~env ~tau expr in
  let validity = Validity.expression_validity ~strategy ~env ~tau expr in
  { expr; strategy; computed_at = tau; contents = relation; texp; validity }

let current v ~tau = Relation.exp tau v.contents
let is_expired v ~tau = Time.(tau >= v.texp)

let read v ~tau =
  if Time.(tau >= v.computed_at) && not (is_expired v ~tau) then
    `Valid (current v ~tau)
  else `Expired v.texp

let read_schrodinger v ~tau ~policy =
  match Validity.observe ~policy ~validity:v.validity tau with
  | Validity.Answer_now -> `Valid (current v ~tau)
  | other -> `Observe other

let refresh ~env ~tau v = materialise ~strategy:v.strategy ~env ~tau v.expr

let maintenance_times ?(strategy = Aggregate.Exact) ~env ~from ~horizon expr =
  let rec go acc tau =
    let texp = (Eval.run ~strategy ~env ~tau expr).Eval.texp in
    if Time.(texp < horizon) then
      (* texp(e) > tau always holds (expiration times of live tuples
         exceed tau), so the schedule advances strictly. *)
      go (texp :: acc) texp
    else List.rev acc
  in
  go [] from

let pp ppf v =
  Format.fprintf ppf
    "@[<v>view %a@ materialised at %a, texp(e) = %a@ validity %a@ %a@]"
    Algebra.pp v.expr Time.pp v.computed_at Time.pp v.texp Interval_set.pp
    v.validity Relation.pp v.contents
