type estimate = {
  eval_cost : float;
  recomputations : int;
  total : float;
}

(* One instrumented evaluation: every operator is charged the
   cardinality it processes. *)
let eval_cost ~env ~tau expr =
  let cost = ref 0. in
  let charge n = cost := !cost +. float_of_int n in
  let rec go e =
    match e with
    | Algebra.Base name ->
      (match env name with
       | Some r ->
         let live = Relation.exp tau r in
         charge (Relation.cardinal live);
         live
       | None -> raise (Errors.Unknown_relation name))
    | Algebra.Select (p, e1) ->
      let c = go e1 in
      charge (Relation.cardinal c);
      Ops.select p c
    | Algebra.Project (js, e1) ->
      let c = go e1 in
      charge (Relation.cardinal c);
      Ops.project js c
    | Algebra.Product (l, r) ->
      let cl = go l and cr = go r in
      charge (Relation.cardinal cl * Relation.cardinal cr);
      Ops.product cl cr
    | Algebra.Join (p, l, r) ->
      let cl = go l and cr = go r in
      charge (Relation.cardinal cl * Relation.cardinal cr);
      Ops.join p cl cr
    | Algebra.Union (l, r) ->
      let cl = go l and cr = go r in
      charge (Relation.cardinal cl + Relation.cardinal cr);
      Ops.union cl cr
    | Algebra.Intersect (l, r) ->
      let cl = go l and cr = go r in
      charge (Relation.cardinal cl + Relation.cardinal cr);
      Ops.intersect cl cr
    | Algebra.Diff (l, r) ->
      let cl = go l and cr = go r in
      charge (Relation.cardinal cl + Relation.cardinal cr);
      Ops.diff cl cr
    | Algebra.Aggregate (group, f, e1) ->
      let c = go e1 in
      charge (Relation.cardinal c);
      fst (Ops.aggregate Aggregate.Exact ~tau ~group f c)
  in
  let (_ : Relation.t) = go expr in
  !cost

let estimate ~env ~tau ~horizon expr =
  let eval_cost = eval_cost ~env ~tau expr in
  let recomputations =
    List.length (View.maintenance_times ~env ~from:tau ~horizon expr)
  in
  { eval_cost;
    recomputations;
    total = eval_cost *. float_of_int (recomputations + 1)
  }

let choose ~env ~tau ~horizon candidates =
  match candidates with
  | [] -> invalid_arg "Cost.choose: no candidates"
  | first :: rest ->
    List.fold_left
      (fun (best, best_est) candidate ->
        let est = estimate ~env ~tau ~horizon candidate in
        if est.total < best_est.total then candidate, est else best, best_est)
      (first, estimate ~env ~tau ~horizon first)
      rest

let pp ppf { eval_cost; recomputations; total } =
  Format.fprintf ppf "eval %.0f x (1 + %d recomputations) = %.0f" eval_cost
    recomputations total
