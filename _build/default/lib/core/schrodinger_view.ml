type entry = {
  tuple : Tuple.t;
  interval : Interval.t;
}

type t = {
  computed_at : Time.t;
  arity : int;
  rows : entry list;
}

let computed_at v = v.computed_at
let entries v = List.length v.rows

let entry_opt tuple lo hi =
  Option.map (fun interval -> { tuple; interval }) (Interval.make_opt lo hi)

(* Every tuple of a materialised relation is present from now until its
   expiration time — the single-interval case of monotonic results. *)
let rows_of_relation ~tau relation =
  Relation.fold
    (fun tuple texp acc ->
      match entry_opt tuple tau texp with
      | Some e -> e :: acc
      | None -> acc)
    relation []

(* Difference: Section 3.4.2's per-tuple intervals.  A tuple of R is in
   the result while it is live in R and not live in S. *)
let rows_of_difference ~tau l_rel r_rel =
  Relation.fold
    (fun tuple texp_r acc ->
      let visible_from =
        match Relation.texp_opt r_rel tuple with
        | None -> tau
        | Some texp_s -> texp_s
      in
      match entry_opt tuple visible_from texp_r with
      | Some e -> e :: acc
      | None -> acc)
    l_rel []

(* Aggregation: Section 3.4.1's per-tuple intervals.  Within each value
   segment of the partition's timeline, every live member contributes a
   row carrying that segment's value. *)
let rows_of_aggregation ~tau ~group f child =
  let parts = Aggregate.partitions ~group child in
  let rows_of_partition (_key, members) =
    let segments = Aggregate.timeline ~tau f members in
    let rec emit acc = function
      | [] -> acc
      | (start, value) :: rest ->
        let stop =
          match rest with
          | (next, _) :: _ -> next
          | [] -> Time.Inf
        in
        let acc =
          match value with
          | None -> acc
          | Some v ->
            List.fold_left
              (fun acc (member, texp_member) ->
                let tuple = Tuple.concat member (Tuple.of_list [ v ]) in
                match entry_opt tuple start (Time.min stop texp_member) with
                | Some e -> e :: acc
                | None -> acc)
              acc members
        in
        emit acc rest
    in
    emit [] segments
  in
  List.concat_map rows_of_partition parts

let materialise ~env ~tau expr =
  let arity_env name = Option.map Relation.arity (env name) in
  let arity = Algebra.arity ~env:arity_env expr in
  let rows =
    match expr with
    | Algebra.Diff (left, right) ->
      rows_of_difference ~tau
        (Eval.relation_at ~env ~tau left)
        (Eval.relation_at ~env ~tau right)
    | Algebra.Aggregate (group, f, child) ->
      rows_of_aggregation ~tau ~group f (Eval.relation_at ~env ~tau child)
    | Algebra.Base _ | Algebra.Select _ | Algebra.Project _ | Algebra.Product _
    | Algebra.Union _ | Algebra.Join _ | Algebra.Intersect _ ->
      rows_of_relation ~tau (Eval.relation_at ~env ~tau expr)
  in
  { computed_at = tau; arity; rows }

let read v ~tau =
  if Time.(tau < v.computed_at) then
    invalid_arg "Schrodinger_view.read: before materialisation time"
  else
    List.fold_left
      (fun acc { tuple; interval } ->
        if Interval.mem tau interval then
          Relation.add tuple ~texp:interval.Interval.hi acc
        else acc)
      (Relation.empty ~arity:v.arity)
      v.rows

let pp ppf v =
  Format.fprintf ppf "@[<v>schrodinger view at %a (%d entries)@ %a@]" Time.pp
    v.computed_at (entries v)
    (Format.pp_print_list (fun ppf { tuple; interval } ->
         Format.fprintf ppf "%a during %a" Tuple.pp tuple Interval.pp interval))
    v.rows
