type algorithm =
  | Hash
  | Sort_merge
  | Nested_loop

let check r s =
  if Relation.arity r <> Relation.arity s then
    Errors.arity_mismatch "Antijoin: %d vs %d" (Relation.arity r)
      (Relation.arity s)

module Tuple_tbl = Hashtbl.Make (struct
    type t = Tuple.t

    let equal = Tuple.equal
    let hash = Tuple.hash
  end)

(* Each algorithm folds over R, deciding membership in S its own way,
   and emits both the difference and the matching (t, texp_S) pairs. *)

let hash_pass r s =
  let table = Tuple_tbl.create (max 16 (Relation.cardinal s)) in
  Relation.iter (fun t texp -> Tuple_tbl.replace table t texp) s;
  let out = ref (Relation.empty ~arity:(Relation.arity r)) in
  let matches = ref [] in
  Relation.iter
    (fun t texp_r ->
      match Tuple_tbl.find_opt table t with
      | None -> out := Relation.add t ~texp:texp_r !out
      | Some texp_s -> matches := (t, texp_s, texp_r) :: !matches)
    r;
  !out, !matches

let sort_merge_pass r s =
  (* Relation.to_list is already sorted by tuple order. *)
  let out = ref (Relation.empty ~arity:(Relation.arity r)) in
  let matches = ref [] in
  let rec merge rs ss =
    match rs, ss with
    | [], _ -> ()
    | (t, texp_r) :: rest, [] ->
      out := Relation.add t ~texp:texp_r !out;
      merge rest []
    | (t, texp_r) :: r_rest, (u, texp_s) :: s_rest ->
      let c = Tuple.compare t u in
      if c < 0 then begin
        out := Relation.add t ~texp:texp_r !out;
        merge r_rest ss
      end
      else if c = 0 then begin
        matches := (t, texp_s, texp_r) :: !matches;
        merge r_rest s_rest
      end
      else merge rs s_rest
  in
  merge (Relation.to_list r) (Relation.to_list s);
  !out, !matches

let nested_loop_pass r s =
  let s_rows = Relation.to_list s in
  let out = ref (Relation.empty ~arity:(Relation.arity r)) in
  let matches = ref [] in
  Relation.iter
    (fun t texp_r ->
      match List.find_opt (fun (u, _) -> Tuple.equal t u) s_rows with
      | None -> out := Relation.add t ~texp:texp_r !out
      | Some (_, texp_s) -> matches := (t, texp_s, texp_r) :: !matches)
    r;
  !out, !matches

let pass = function
  | Hash -> hash_pass
  | Sort_merge -> sort_merge_pass
  | Nested_loop -> nested_loop_pass

let diff alg r s =
  check r s;
  fst (pass alg r s)

let critical_tuples alg r s =
  check r s;
  let _, matches = pass alg r s in
  matches
  |> List.filter (fun (_, texp_s, texp_r) -> Time.(texp_r > texp_s))
  |> List.sort (fun (t1, e1, _) (t2, e2, _) ->
      match Time.compare e1 e2 with
      | 0 -> Tuple.compare t1 t2
      | c -> c)
