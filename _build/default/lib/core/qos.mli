(** Quality-of-service guarantees for materialised results — the
    paper's closing direction ("we plan to incorporate expiration into
    query processing with (approximate) quality of service guarantees").

    Expiration metadata makes one guarantee {e statically} computable:
    if every live tuple of base relation [B] still has at least [r_B]
    ticks to live, then a result materialised now is guaranteed valid
    for at least {!validity_floor} ticks — with {e no} evaluation of the
    expression.  Monotonic expressions get an infinite floor
    (Theorem 1); non-monotonic operators bound their data-dependent
    expiration times from below:

    - every result tuple of a monotonic subexpression outlives
      [min over its bases of r_B] (the tuple-level rules (1)–(6) only
      take minima and maxima of base expiration times);
    - a difference can first be invalidated when a right-operand tuple
      expires (Case (3a)), hence no sooner than the right subtree's
      floor;
    - an aggregation can first change value when a member expires
      (chi/nu), hence no sooner than its child's floor.

    The floor is sound but not tight: the actual [texp(e)] is always at
    least as late (property-tested), often much later. *)

val remaining_of : env:Eval.env -> tau:Time.t -> string -> Time.t
(** The base relation's guaranteed remaining lifetime at [tau]:
    [min_texp (exp_tau B) - tau] ([Inf] when empty or all-immortal).
    @raise Errors.Unknown_relation on unbound names *)

val validity_floor : remaining:(string -> Time.t) -> Algebra.t -> Time.t
(** [validity_floor ~remaining e]: a duration [d] such that a
    materialisation of [e] computed now satisfies [texp(e) >= now + d],
    whatever the data, provided every base [B]'s live tuples survive at
    least [remaining B] more ticks.  [Inf] for monotonic expressions. *)

val admit :
  env:Eval.env -> tau:Time.t -> required:int -> Algebra.t ->
  [ `Guaranteed | `Must_evaluate ]
(** QoS admission for "serve this result for [required] ticks without
    recomputation": [`Guaranteed] when the static floor (with the bases'
    actual remaining lifetimes) already covers it; [`Must_evaluate] when
    only a full evaluation can tell. *)
