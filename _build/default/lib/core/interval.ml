type t = {
  lo : Time.t;
  hi : Time.t;
}

let make lo hi =
  if Time.(lo < hi) then { lo; hi }
  else
    invalid_arg
      (Printf.sprintf "Interval.make: [%s, %s[ is empty" (Time.to_string lo)
         (Time.to_string hi))

let make_opt lo hi = if Time.(lo < hi) then Some { lo; hi } else None
let from lo = make lo Time.Inf
let bounds i = i.lo, i.hi
let equal a b = Time.equal a.lo b.lo && Time.equal a.hi b.hi

let compare a b =
  let c = Time.compare a.lo b.lo in
  if c <> 0 then c else Time.compare a.hi b.hi

(* An unbounded interval [lo, Inf[ means "from lo onwards" and so
   contains the symbolic time Inf; bounded intervals are half-open. *)
let mem tau i =
  Time.(i.lo <= tau)
  && (Time.(tau < i.hi) || (Time.is_infinite tau && Time.is_infinite i.hi))

let duration i =
  match i.lo, i.hi with
  | Time.Fin a, Time.Fin b -> Time.Fin (b - a)
  | _, Time.Inf -> Time.Inf
  | Time.Inf, Time.Fin _ -> assert false (* lo < hi forbids this *)

let overlaps a b = Time.(a.lo < b.hi) && Time.(b.lo < a.hi)
let adjacent a b = Time.equal a.hi b.lo || Time.equal b.hi a.lo

let inter a b =
  make_opt (Time.max a.lo b.lo) (Time.min a.hi b.hi)

let union a b =
  if overlaps a b || adjacent a b then
    Some { lo = Time.min a.lo b.lo; hi = Time.max a.hi b.hi }
  else None

let subset a b = Time.(b.lo <= a.lo) && Time.(a.hi <= b.hi)
let pp ppf i = Format.fprintf ppf "[%a, %a[" Time.pp i.lo Time.pp i.hi
let to_string i = Format.asprintf "%a" pp i
