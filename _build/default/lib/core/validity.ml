(* Critical tuples of R -exp S: in both operands with texp_R(t) >
   texp_S(t).  Each contributes the invalid window [texp_S(t), texp_R(t)[
   during which it is missing from the materialisation. *)
let critical_windows l_rel r_rel =
  Relation.fold
    (fun t e_l acc ->
      match Relation.texp_opt r_rel t with
      | Some e_s when Time.(e_l > e_s) -> Interval.make e_s e_l :: acc
      | Some _ | None -> acc)
    l_rel []

let expression_validity ?(strategy = Aggregate.Exact) ~env ~tau expr =
  let everywhere = Interval_set.of_interval (Interval.from tau) in
  let eval e = Eval.relation_at ~strategy ~env ~tau e in
  let rec go = function
    | Algebra.Base _ -> everywhere
    | Algebra.Select (_, e) | Algebra.Project (_, e) -> go e
    | Algebra.Product (l, r)
    | Algebra.Union (l, r)
    | Algebra.Join (_, l, r)
    | Algebra.Intersect (l, r) ->
      Interval_set.inter (go l) (go r)
    | Algebra.Diff (l, r) ->
      let invalid = Interval_set.of_list (critical_windows (eval l) (eval r)) in
      let own = Interval_set.diff everywhere invalid in
      Interval_set.inter own (Interval_set.inter (go l) (go r))
    | Algebra.Aggregate (group, f, e) ->
      (* Per partition, the materialisation (whose rows expire at the
         strategy's partition time, capped by their members) matches a
         recomputation during [tau, t_s[ and again once the partition has
         expired entirely.  Aggregate.validity_windows is the paper's
         per-tuple I_R(t), which additionally counts windows where the
         value returns to its materialised value — those cannot be served
         from an eagerly-expired materialisation, so the expression-level
         set excludes them. *)
      let parts = Aggregate.partitions ~group (eval e) in
      let partition_windows (_key, members) =
        let t_s = Aggregate.result_texp strategy ~tau f members in
        let empties = Aggregate.empties_at members in
        if Time.(t_s < empties) then
          Interval_set.of_list
            (Interval.make tau t_s
             :: (match Interval.make_opt empties Time.Inf with
                 | Some i -> [ i ]
                 | None -> []))
        else Interval_set.of_interval (Interval.from tau)
      in
      let own =
        List.fold_left
          (fun acc p -> Interval_set.inter acc (partition_windows p))
          everywhere parts
      in
      Interval_set.inter own (go e)
  in
  go expr

let difference_validity_eq12 ~env ~tau l r =
  let everywhere = Interval_set.of_interval (Interval.from tau) in
  let windows =
    critical_windows (Eval.relation_at ~env ~tau l) (Eval.relation_at ~env ~tau r)
  in
  match windows with
  | [] -> everywhere
  | _ ->
    let lo = Time.min_list (List.map (fun i -> i.Interval.lo) windows) in
    let hi = Time.max_list (List.map (fun i -> i.Interval.hi) windows) in
    Interval_set.diff everywhere (Interval_set.of_interval (Interval.make lo hi))

type observation =
  | Answer_now
  | Move_backward of Time.t
  | Delay_until of Time.t
  | Recompute

type policy =
  | Prefer_backward
  | Prefer_delay
  | Recompute_only

let latest_valid_before tau s =
  let candidate best i =
    if Time.(i.Interval.lo >= tau) then best
    else
      let c =
        if Time.(i.Interval.hi > tau) then Time.pred tau
        else Time.pred i.Interval.hi
      in
      if Time.(c >= i.Interval.lo) then
        Some (match best with
          | None -> c
          | Some b -> Time.max b c)
      else best
  in
  List.fold_left candidate None (Interval_set.to_list s)

let observe ~policy ~validity tau =
  if Interval_set.mem tau validity then Answer_now
  else
    let backward () =
      Option.map (fun t -> Move_backward t) (latest_valid_before tau validity)
    in
    let delay () =
      Option.map (fun t -> Delay_until t) (Interval_set.next_covered_after tau validity)
    in
    let first_of options =
      match List.find_map (fun f -> f ()) options with
      | Some o -> o
      | None -> Recompute
    in
    match policy with
    | Prefer_backward -> first_of [ backward; delay ]
    | Prefer_delay -> first_of [ delay; backward ]
    | Recompute_only -> Recompute
