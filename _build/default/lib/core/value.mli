(** Attribute values.  The paper works over an abstract attribute domain
    [D]; we provide integers, strings, floats, booleans and [Null].

    [Null] is included for completeness of the substrates (outer-join-like
    operators are out of the paper's scope, Section 2.4); comparisons
    involving [Null] follow SQL's unknown-is-false convention at the
    predicate level (see {!Predicate}). *)

type t =
  | Int of int
  | Str of string
  | Float of float
  | Bool of bool
  | Null

val int : int -> t
val str : string -> t
val float : float -> t
val bool : bool -> t

val compare : t -> t -> int
(** Total order: within a constructor the natural order, across
    constructors ordered by tag ([Null < Bool < Int < Float < Str]).
    Used for set semantics of relations; query-level comparisons go
    through {!cmp}. *)

val equal : t -> t -> bool

val is_null : t -> bool

val cmp : t -> t -> int option
(** SQL-style comparison: [None] when either side is [Null] or the types
    are incomparable (e.g. [Int] vs [Str]); [Int]/[Float] compare
    numerically. *)

val add : t -> t -> t
(** Numeric addition for aggregate sums; [Null] absorbs.
    @raise Invalid_argument on non-numeric operands. *)

val to_float : t -> float option
(** Numeric view of [Int]/[Float]; [None] otherwise. *)

val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
