(** Incrementally maintained views under base-relation updates — lifting
    the paper's standing assumption that "there are no updates to the
    source data" (its first stated direction for future work, drawing on
    the incremental view-maintenance literature it cites, [5, 23, 29]).

    A maintained view materialises {e every} node of the expression tree,
    including private copies of the base relations it reads.  Two kinds
    of events then update it:

    - {b updates} ({!insert} / {!delete}): single-tuple deltas propagate
      bottom-up through the operator tree; each node adjusts its
      materialisation from the delta and its (already-maintained)
      children, never touching anything outside the tree.  An insert of
      an existing tuple is the paper's update — it overwrites the
      expiration time.
    - {b time} ({!advance}): monotonic nodes just expire in place
      (Theorem 1); non-monotonic nodes are refreshed {e locally} from
      their materialised children — so even when a difference or
      aggregation invalidates, no base relation outside the view is ever
      consulted.

    The invariant, property-tested over random expressions and event
    interleavings: after any sequence of updates and advances,
    {!read} equals a fresh evaluation of the expression over the mutated
    base relations at the current time. *)

type t

val materialise :
  ?strategy:Aggregate.strategy -> env:Eval.env -> tau:Time.t -> Algebra.t -> t
(** Builds and materialises the whole operator tree at [tau].
    [strategy] (default {!Aggregate.Exact}) governs aggregation-row
    expiration times, as in {!Eval.run}. *)

val expr : t -> Algebra.t
val now : t -> Time.t

val read : t -> Relation.t
(** The maintained result at the current time. *)

val insert : t -> relation:string -> Tuple.t -> texp:Time.t -> t
(** Upsert into a base relation: adds the tuple or, if present,
    overwrites its expiration time; the delta propagates to the result.
    Affects every occurrence of the named base relation in the
    expression.  Unknown names are ignored (the view does not read
    them).
    @raise Invalid_argument on arity mismatch or [texp <= now] *)

val delete : t -> relation:string -> Tuple.t -> t
(** Explicit deletion from a base relation, propagated to the result. *)

val advance : t -> to_:Time.t -> t
(** Moves the view's clock, expiring monotonic nodes in place and
    refreshing non-monotonic nodes from their children.
    @raise Invalid_argument when moving backwards *)

val stats : t -> (string * int) list
(** Maintenance counters: [("delta-upserts", _); ("delta-deletes", _);
    ("local-refreshes", _)] — how much work updates and advances cost,
    for the benchmarks. *)
