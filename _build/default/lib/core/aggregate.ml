type func =
  | Count
  | Sum of int
  | Min of int
  | Max of int
  | Avg of int

type strategy =
  | Conservative
  | Neutral
  | Exact
  | Within of float

let func_attr = function
  | Count -> None
  | Sum i | Min i | Max i | Avg i -> Some i

let func_arity_ok ~arity f =
  match func_attr f with
  | None -> true
  | Some i -> 1 <= i && i <= arity

type partition = (Tuple.t * Time.t) list

let attr_values i members =
  List.filter_map
    (fun (t, _) ->
      let v = Tuple.attr t i in
      if Value.is_null v then None else Some v)
    members

let sum_values vs =
  match vs with
  | [] -> Value.Null
  | v :: rest -> List.fold_left Value.add v rest

let extremum keep vs =
  match vs with
  | [] -> Value.Null
  | v :: rest ->
    List.fold_left (fun acc w -> if keep (Value.compare w acc) then w else acc) v rest

let apply f members =
  if members = [] then invalid_arg "Aggregate.apply: empty partition"
  else
    match f with
    | Count -> Value.Int (List.length members)
    | Sum i -> sum_values (attr_values i members)
    | Min i -> extremum (fun c -> c < 0) (attr_values i members)
    | Max i -> extremum (fun c -> c > 0) (attr_values i members)
    | Avg i ->
      let vs = attr_values i members in
      (match vs with
       | [] -> Value.Null
       | _ ->
         let total =
           List.fold_left
             (fun acc v ->
               match Value.to_float v with
               | Some x -> acc +. x
               | None -> acc)
             0. vs
         in
         Value.Float (total /. float_of_int (List.length vs)))

module Tuple_map = Map.Make (Tuple)

let partitions ~group r =
  let grouped =
    Relation.fold
      (fun t texp acc ->
        let key = Tuple.project group t in
        let members = Option.value ~default:[] (Tuple_map.find_opt key acc) in
        Tuple_map.add key ((t, texp) :: members) acc)
      r Tuple_map.empty
  in
  Tuple_map.bindings grouped
  |> List.map (fun (key, members) -> key, List.rev members)

let partition_of ~group r t =
  let key = Tuple.project group t in
  Relation.fold
    (fun r_t texp acc ->
      if Tuple.equal (Tuple.project group r_t) key then (r_t, texp) :: acc
      else acc)
    r []
  |> List.rev

let live_at tau members = List.filter (fun (_, e) -> Time.(e > tau)) members

let value_at tau f members =
  match live_at tau members with
  | [] -> None
  | live -> Some (apply f live)

let value_opt_equal a b =
  match a, b with
  | None, None -> true
  | Some x, Some y -> Value.equal x y
  | None, Some _ | Some _, None -> false

let chi tau f members =
  not (value_opt_equal (value_at tau f members) (value_at (Time.succ tau) f members))

(* Distinct finite expiration times among [members], ascending.  These are
   the only instants at which the aggregate value can change. *)
let finite_expiries members =
  let module Time_set = Set.Make (Time) in
  List.fold_left
    (fun acc (_, e) -> if Time.is_finite e then Time_set.add e acc else acc)
    Time_set.empty members
  |> Time_set.elements

(* Generic change-point scan: the first expiry instant at which
   [differs v0 current] holds (an empty partition always counts). *)
let first_change ~tau ~differs f members =
  match live_at tau members with
  | [] -> Time.Inf
  | live ->
    let v0 = apply f live in
    let changed e =
      match live_at e live with
      | [] -> true
      | remaining -> differs v0 (apply f remaining)
    in
    (match List.find_opt changed (finite_expiries live) with
     | Some e -> e
     | None -> Time.Inf)

let nu ~tau f members =
  first_change ~tau ~differs:(fun a b -> not (Value.equal a b)) f members

let nu_within ~tolerance ~tau f members =
  if tolerance < 0. then invalid_arg "Aggregate.nu_within: negative tolerance"
  else
    let differs v0 v =
      match Value.to_float v0, Value.to_float v with
      | Some x, Some y -> Float.abs (y -. x) > tolerance
      | None, None | Some _, None | None, Some _ -> not (Value.equal v0 v)
    in
    first_change ~tau ~differs f members

let empties_at members =
  match members with
  | [] -> Time.Inf
  | _ -> Time.max_list (List.map snd members)

(* --- Neutral sets, Table 1 --- *)

let float_of v = Option.value ~default:0. (Value.to_float v)

let slice_sum i slice =
  List.fold_left (fun acc (t, _) -> acc +. float_of (Tuple.attr t i)) 0. slice

let non_null_count i members =
  List.length (attr_values i members)

(* Neutral condition for min_i (Table 1): every slice member either has a
   value strictly above the partition minimum, or is a minimal tuple that
   is outlived by another minimal tuple.  [dual] flips it for max_i. *)
let extremum_slice_neutral ~dual i slice whole =
  let vs = attr_values i whole in
  match vs with
  | [] -> true (* nothing contributes; removing nulls changes nothing *)
  | _ ->
    let best = extremum (fun c -> if dual then c > 0 else c < 0) vs in
    let best_texp =
      Time.max_list
        (List.filter_map
           (fun (t, e) ->
             if Value.equal (Tuple.attr t i) best then Some e else None)
           whole)
    in
    let tuple_neutral (t, e) =
      let v = Tuple.attr t i in
      if Value.is_null v then true
      else
        let c = Value.compare v best in
        let non_extremal = if dual then c < 0 else c > 0 in
        non_extremal || Time.(e < best_texp)
    in
    List.for_all tuple_neutral slice

let slice_neutral f slice whole =
  match f with
  | Count -> false
  | Sum i ->
    let n_slice = non_null_count i slice and n_whole = non_null_count i whole in
    (* A slice holding every non-null value is not neutral (beyond the
       paper's null-free model): its removal collapses the sum to null. *)
    n_slice = 0
    || (n_whole > n_slice && Float.equal (slice_sum i slice) 0.)
  | Avg i ->
    let n_slice = non_null_count i slice and n_whole = non_null_count i whole in
    n_slice = 0
    || (n_whole > n_slice
        (* sum(N) = (|N| / |P|) * sum(P), compared cross-multiplied *)
        && Float.equal
             (slice_sum i slice *. float_of_int n_whole)
             (slice_sum i whole *. float_of_int n_slice))
  | Min i -> extremum_slice_neutral ~dual:false i slice whole
  | Max i -> extremum_slice_neutral ~dual:true i slice whole

let time_slices members =
  let expiries = finite_expiries members in
  let finite =
    List.map
      (fun e -> e, List.filter (fun (_, e') -> Time.equal e' e) members)
      expiries
  in
  let immortal = List.filter (fun (_, e) -> Time.is_infinite e) members in
  finite, immortal

let neutral_slices ~tau f members =
  match live_at tau members with
  | [] -> invalid_arg "Aggregate.neutral_slices: no live member"
  | live ->
    let finite, immortal = time_slices live in
    let rec go removed remaining = function
      | [] -> List.rev removed, remaining
      | (e, slice) :: rest ->
        if slice_neutral f slice remaining then
          let remaining' =
            List.filter (fun (_, e') -> not (Time.equal e' e)) remaining
          in
          go ((e, slice) :: removed) remaining' rest
        else List.rev removed, remaining
    in
    (* An immortal slice never expires, so it can never be "expired so
       far"; processing stops at it regardless of neutrality. *)
    let removed, remaining = go [] live finite in
    if remaining = [] && immortal = [] then removed, []
    else removed, remaining

let result_texp strategy ~tau f members =
  match live_at tau members with
  | [] -> invalid_arg "Aggregate.result_texp: no live member"
  | live ->
    (match strategy with
     | Conservative -> Time.min_list (List.map snd live)
     | Exact -> nu ~tau f live
     | Within tolerance -> nu_within ~tolerance ~tau f live
     | Neutral ->
       let _, contributing = neutral_slices ~tau f live in
       (match contributing with
        | [] -> empties_at live
        | _ -> Time.min_list (List.map snd contributing)))

let timeline ~tau f members =
  match live_at tau members with
  | [] -> [ tau, None ]
  | live ->
    let v0 = Some (apply f live) in
    let step (segments, prev) e =
      let v = value_at e f live in
      if value_opt_equal v prev then segments, prev
      else (e, v) :: segments, v
    in
    let segments, _ =
      List.fold_left step ([ tau, v0 ], v0) (finite_expiries live)
    in
    List.rev segments

let validity_windows ~tau f members =
  let segments = timeline ~tau f members in
  let v0 = match segments with
    | (_, v) :: _ -> v
    | [] -> None
  in
  let rec windows = function
    | [] -> []
    | (start, v) :: rest ->
      let stop = match rest with
        | (next, _) :: _ -> next
        | [] -> Time.Inf
      in
      let keep = match v with
        | None -> true (* partition expired: result tuple absent, not wrong *)
        | Some _ -> value_opt_equal v v0
      in
      let tail = windows rest in
      if keep then
        match Interval.make_opt start stop with
        | Some i -> i :: tail
        | None -> tail
      else tail
  in
  Interval_set.of_list (windows segments)

let pp_func ppf = function
  | Count -> Format.pp_print_string ppf "count"
  | Sum i -> Format.fprintf ppf "sum_%d" i
  | Min i -> Format.fprintf ppf "min_%d" i
  | Max i -> Format.fprintf ppf "max_%d" i
  | Avg i -> Format.fprintf ppf "avg_%d" i

let func_to_string f = Format.asprintf "%a" pp_func f
