(** Relation-level application of the algebra's operators — the
    engine-room shared by the evaluator ({!Eval}) and the incremental
    maintenance machinery ({!Maintained}).

    All functions assume their arguments are already properly expired
    (contain only live tuples); they implement exactly the tuple-level
    expiration rules of Equations (1)–(8) and (10). *)

val select : Predicate.t -> Relation.t -> Relation.t
val project : int list -> Relation.t -> Relation.t

val product : Relation.t -> Relation.t -> Relation.t
(** Result tuples carry the minimum of the operand lifetimes (Eq (2)). *)

val union : Relation.t -> Relation.t -> Relation.t
(** Shared tuples keep the maximum lifetime (Eq (4)).
    @raise Invalid_argument on arity mismatch *)

val join : Predicate.t -> Relation.t -> Relation.t -> Relation.t
(** The predicate ranges over the combined attribute positions (Eq (5)). *)

val intersect : Relation.t -> Relation.t -> Relation.t
(** Shared tuples keep the minimum lifetime (Eq (6)). *)

val diff : Relation.t -> Relation.t -> Relation.t
(** Tuples of the left operand absent from the right, with their left
    lifetimes (Eq (10)). *)

val first_reappearance : Relation.t -> Relation.t -> Time.t
(** [min { texp_S(t) | t in R /\ t in S /\ texp_R(t) > texp_S(t) }] —
    the data-dependent part of the difference's expression expiration
    time (Section 2.6.2). *)

val aggregate :
  Aggregate.strategy ->
  tau:Time.t ->
  group:int list ->
  Aggregate.func ->
  Relation.t ->
  Relation.t * Time.t
(** [(relation, invalidation)]: the aggregation result (Eq (8)'s shape,
    result rows capped by their member's expiration) and the earliest
    time at which some partition's rows vanish while members outlive
    them — [Inf] when the materialisation never invalidates. *)
