(** Schrödinger's cat semantics (Sections 3.3–3.4): instead of a single
    expiration time, associate with a materialised expression the {e set
    of time intervals} during which it is valid, so queries arriving
    inside those intervals are answered without recomputation.

    "An (materialised) expression is only required to contain correct
    values when a user queries it." *)

val expression_validity :
  ?strategy:Aggregate.strategy ->
  env:Eval.env ->
  tau:Time.t ->
  Algebra.t ->
  Interval_set.t
(** [expression_validity ~env ~tau e] is the paper's [I(e)] for a
    materialisation at [tau], computed bottom-up:
    - a monotonic (sub)expression contributes [\[tau, Inf\[]
      (Section 3.4 intro);
    - difference contributes [\[tau, Inf\[] minus the union over critical
      tuples [t] ([t in R /\ t in S /\ texp_R(t) > texp_S(t)]) of
      [\[texp_S(t), texp_R(t)\[] — the per-tuple form described in
      Section 3.3 (exact; see also {!difference_validity_eq12});
    - aggregation contributes the intersection over partitions of the
      per-tuple windows [I_R(t)] (Section 3.4.1);
    - validity intersects over subexpressions. *)

val difference_validity_eq12 :
  env:Eval.env -> tau:Time.t -> Algebra.t -> Algebra.t -> Interval_set.t
(** The coarser single-window form of Equation (12):
    [\[tau, Inf\[ - \[min texp_S(t), max texp_R(t)\[] over critical
    tuples.  (As printed, Equation (12)'s upper bound reads
    [max texp_S(t)]; Section 3.3's worked example — validity resumes
    "when it later expires in R" — fixes it to [texp_R], which we
    follow.)  Always a subset-or-equal coarsening of the exact form
    restricted to the same expression. *)

type observation =
  | Answer_now  (** the materialisation is valid at the query time *)
  | Move_backward of Time.t
      (** answer as of this earlier time (slightly outdated result) *)
  | Delay_until of Time.t  (** delay the query to this later valid time *)
  | Recompute  (** no valid time helps; recompute the expression *)

type policy =
  | Prefer_backward
  | Prefer_delay
  | Recompute_only

val observe : policy:policy -> validity:Interval_set.t -> Time.t -> observation
(** [observe ~policy ~validity tau] decides how to answer a query issued
    at [tau] against a materialisation valid during [validity]
    (Section 3.3's options: answer readily, move the query backward or
    forward in time, or recompute). *)

val latest_valid_before : Time.t -> Interval_set.t -> Time.t option
(** Latest covered time strictly before [tau], if any ([None] also when
    the preceding coverage is unbounded-from-below, which cannot occur
    for validity sets built by this module). *)
