(* Leftist heap: merge in O(log n), which gives O(log n) insert and pop. *)
type 'a t =
  | Leaf
  | Node of int * Time.t * 'a * 'a t * 'a t  (* rank, key, value, l, r *)

let empty = Leaf

let is_empty = function
  | Leaf -> true
  | Node _ -> false

let rank = function
  | Leaf -> 0
  | Node (r, _, _, _, _) -> r

let node k v l r =
  if rank l >= rank r then Node (rank r + 1, k, v, l, r)
  else Node (rank l + 1, k, v, r, l)

let rec merge a b =
  match a, b with
  | Leaf, h | h, Leaf -> h
  | Node (_, ka, va, la, ra), Node (_, kb, vb, lb, rb) ->
    if Time.(ka <= kb) then node ka va la (merge ra b)
    else node kb vb lb (merge rb a)

let insert k v h = merge (Node (1, k, v, Leaf, Leaf)) h

let min_opt = function
  | Leaf -> None
  | Node (_, k, v, _, _) -> Some (k, v)

let pop = function
  | Leaf -> None
  | Node (_, k, v, l, r) -> Some ((k, v), merge l r)

let pop_until tau h =
  let rec go acc h =
    match h with
    | Leaf -> List.rev acc, h
    | Node (_, k, v, l, r) ->
      if Time.(k <= tau) then go ((k, v) :: acc) (merge l r)
      else List.rev acc, h
  in
  go [] h

let of_list entries =
  List.fold_left (fun h (k, v) -> insert k v h) empty entries

let rec cardinal = function
  | Leaf -> 0
  | Node (_, _, _, l, r) -> 1 + cardinal l + cardinal r

let to_sorted_list h =
  let rec go acc h =
    match pop h with
    | None -> List.rev acc
    | Some (entry, h') -> go (entry :: acc) h'
  in
  go [] h

let fold f h acc =
  let rec go acc = function
    | Leaf -> acc
    | Node (_, k, v, l, r) -> go (go (f k v acc) l) r
  in
  go acc h
