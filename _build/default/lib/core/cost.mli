(** Cost estimation for materialised plans (Section 3.1: "In a DBMS,
    the cost estimation mechanisms can be made use of to estimate the
    impact of a rewrite-rule application").

    The model charges each operator its processed cardinality on a
    sample evaluation, counts the recomputations the plan needs over a
    horizon (via its expression expiration times), and combines them:
    a plan recomputed k times costs [(k + 1)] evaluations.  Rewrites
    that postpone recomputation can therefore lose when they inflate
    intermediate results — the trade-off {!choose} arbitrates. *)

type estimate = {
  eval_cost : float;
      (** abstract work units for one evaluation: the sum over operator
          nodes of the cardinality they process *)
  recomputations : int;
      (** how many times the materialisation must be recomputed in
          [\[tau, horizon\[] *)
  total : float;  (** [eval_cost *. float (recomputations + 1)] *)
}

val estimate :
  env:Eval.env -> tau:Time.t -> horizon:Time.t -> Algebra.t -> estimate

val choose :
  env:Eval.env ->
  tau:Time.t ->
  horizon:Time.t ->
  Algebra.t list ->
  Algebra.t * estimate
(** The candidate with the least {!estimate.total} (ties: first).
    @raise Invalid_argument on an empty candidate list *)

val pp : Format.formatter -> estimate -> unit
