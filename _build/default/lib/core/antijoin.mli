(** Physical implementations of the difference operator.

    Section 3.4.2: "The difference operator can be implemented in a
    variety of ways, most notably as a left outer anti-semijoin, which
    may be executed as a hash join, a nested-loop join, or a sort-merge
    join."  All three produce exactly the relation of Equation (10);
    they differ only in cost.  {!critical_tuples} additionally extracts,
    in the same pass, the information needed to build the Section 3.4.2
    helper priority queue "to reduce the additional overhead". *)

type algorithm =
  | Hash  (** build a hash table on [S], probe with [R] *)
  | Sort_merge  (** merge the two sorted tuple streams *)
  | Nested_loop  (** probe [S] linearly for every [R] tuple *)

val diff : algorithm -> Relation.t -> Relation.t -> Relation.t
(** [diff alg r s] is [r -exp s] (Equation (10)): the tuples of [r] not
    in [s], keeping their [r] expiration times.  All algorithms agree
    with each other.
    @raise Errors.Arity_mismatch unless union-compatible *)

val critical_tuples :
  algorithm -> Relation.t -> Relation.t -> (Tuple.t * Time.t * Time.t) list
(** [critical_tuples alg r s] is
    [{ (t, texp_S t, texp_R t) | t in r, t in s, texp_R t > texp_S t }]
    — the future patches — gathered during the same anti-semijoin pass,
    sorted by [(texp_S, tuple)]. *)
