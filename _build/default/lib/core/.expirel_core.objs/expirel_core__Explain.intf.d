lib/core/explain.mli: Aggregate Algebra Eval Relation Time Tuple
