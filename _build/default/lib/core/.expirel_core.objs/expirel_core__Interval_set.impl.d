lib/core/interval_set.ml: Format Fun Interval List Time
