lib/core/schrodinger_view.ml: Aggregate Algebra Eval Format Interval List Option Relation Time Tuple
