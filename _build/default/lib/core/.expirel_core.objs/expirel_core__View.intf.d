lib/core/view.mli: Aggregate Algebra Eval Format Interval_set Relation Time Validity
