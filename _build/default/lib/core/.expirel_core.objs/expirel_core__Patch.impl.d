lib/core/patch.ml: Errors Eval Heap List Option Relation Time Tuple
