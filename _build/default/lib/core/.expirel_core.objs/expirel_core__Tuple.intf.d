lib/core/tuple.mli: Format Value
