lib/core/antijoin.ml: Errors Hashtbl List Relation Time Tuple
