lib/core/ops.mli: Aggregate Predicate Relation Time
