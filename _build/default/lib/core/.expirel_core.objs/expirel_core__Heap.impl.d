lib/core/heap.ml: List Time
