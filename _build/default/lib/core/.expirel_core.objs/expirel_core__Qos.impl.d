lib/core/qos.ml: Algebra Errors List Relation Time
