lib/core/interval.mli: Format Time
