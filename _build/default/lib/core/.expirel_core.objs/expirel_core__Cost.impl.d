lib/core/cost.ml: Aggregate Algebra Errors Format List Ops Relation View
