lib/core/predicate.ml: Format List Option Tuple Value
