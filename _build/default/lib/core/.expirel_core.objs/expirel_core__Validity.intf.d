lib/core/validity.mli: Aggregate Algebra Eval Interval_set Time
