lib/core/relation.ml: Format List Map Printf Set Time Tuple
