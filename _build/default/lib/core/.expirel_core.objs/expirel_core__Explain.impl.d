lib/core/explain.ml: Aggregate Algebra Buffer Eval List Option Predicate Printf Relation String Time Tuple Value
