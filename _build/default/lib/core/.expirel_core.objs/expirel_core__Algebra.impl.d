lib/core/algebra.ml: Aggregate Errors Format List Predicate Printf String
