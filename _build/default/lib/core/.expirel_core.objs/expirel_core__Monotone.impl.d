lib/core/monotone.ml: Algebra List
