lib/core/view.ml: Aggregate Algebra Eval Format Interval_set List Relation Time Validity
