lib/core/predicate.mli: Format Tuple Value
