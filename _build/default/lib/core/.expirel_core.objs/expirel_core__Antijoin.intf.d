lib/core/antijoin.mli: Relation Time Tuple
