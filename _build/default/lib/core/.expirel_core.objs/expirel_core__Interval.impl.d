lib/core/interval.ml: Format Printf Time
