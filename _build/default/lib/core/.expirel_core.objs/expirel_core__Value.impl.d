lib/core/value.ml: Bool Float Format Hashtbl Int String
