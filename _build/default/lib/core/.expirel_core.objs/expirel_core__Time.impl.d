lib/core/time.ml: Format Int List Stdlib
