lib/core/aggregate.ml: Float Format Interval Interval_set List Map Option Relation Set Time Tuple Value
