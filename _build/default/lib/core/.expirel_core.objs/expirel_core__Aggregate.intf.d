lib/core/aggregate.mli: Format Interval_set Relation Time Tuple Value
