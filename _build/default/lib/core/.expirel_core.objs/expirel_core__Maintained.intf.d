lib/core/maintained.mli: Aggregate Algebra Eval Relation Time Tuple
