lib/core/cost.mli: Algebra Eval Format Time
