lib/core/monotone.mli: Algebra
