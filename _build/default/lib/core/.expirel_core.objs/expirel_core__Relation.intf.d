lib/core/relation.mli: Format Time Tuple
