lib/core/schrodinger_view.mli: Algebra Eval Format Relation Time
