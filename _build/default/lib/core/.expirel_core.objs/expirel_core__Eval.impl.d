lib/core/eval.ml: Aggregate Algebra Errors List Ops Option Relation Time
