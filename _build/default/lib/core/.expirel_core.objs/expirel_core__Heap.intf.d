lib/core/heap.mli: Time
