lib/core/eval.mli: Aggregate Algebra Relation Time
