lib/core/validity.ml: Aggregate Algebra Eval Interval Interval_set List Option Relation Time
