lib/core/ops.ml: Aggregate List Predicate Relation Time Tuple
