lib/core/rewrite.mli: Algebra
