lib/core/algebra.mli: Aggregate Format Predicate
