lib/core/time.mli: Format
