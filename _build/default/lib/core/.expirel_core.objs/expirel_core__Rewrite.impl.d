lib/core/rewrite.ml: Algebra Array Hashtbl List Option Predicate
