lib/core/maintained.ml: Aggregate Algebra Either Errors Fun List Ops Option Predicate Relation String Time Tuple
