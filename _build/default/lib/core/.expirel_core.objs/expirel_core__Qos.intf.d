lib/core/qos.mli: Algebra Eval Time
