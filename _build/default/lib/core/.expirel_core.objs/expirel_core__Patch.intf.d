lib/core/patch.mli: Algebra Eval Relation Time
