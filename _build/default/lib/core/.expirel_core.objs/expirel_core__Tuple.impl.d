lib/core/tuple.ml: Array Format Int List Printf Value
