type entry = {
  tuple : Tuple.t;
  expire_at : Time.t;  (* texp_R(t): expiration once patched in *)
}

type t = {
  contents : Relation.t;
  queue : entry Heap.t;
  now : Time.t;
}

let create ~env ~tau ~left ~right =
  let l_rel = Eval.relation_at ~env ~tau left in
  let r_rel = Eval.relation_at ~env ~tau right in
  if Relation.arity l_rel <> Relation.arity r_rel then
    Errors.arity_mismatch "Patch.create: %d vs %d" (Relation.arity l_rel)
      (Relation.arity r_rel);
  let contents =
    Relation.filter (fun t _ -> not (Relation.mem t r_rel)) l_rel
  in
  (* Helper relation Rq: every tuple in both operands, queued under its
     appearance time texp_S(t).  Tuples with texp_R <= texp_S can never
     reappear (Case (3b) of Table 2) but queueing them is harmless: they
     arrive already expired and exp_tau filters them out.  We queue only
     the critical ones to keep the queue at its minimum size. *)
  let queue =
    Relation.fold
      (fun t e_l acc ->
        match Relation.texp_opt r_rel t with
        | Some e_s when Time.(e_l > e_s) ->
          Heap.insert e_s { tuple = t; expire_at = e_l } acc
        | Some _ | None -> acc)
      l_rel Heap.empty
  in
  { contents; queue; now = tau }

let now v = v.now
let pending v = Heap.cardinal v.queue

let advance v ~to_ =
  if Time.(to_ < v.now) then invalid_arg "Patch.advance: moving backwards"
  else
    let due, queue = Heap.pop_until to_ v.queue in
    let contents =
      List.fold_left
        (fun acc (_appear, { tuple; expire_at }) ->
          Relation.add tuple ~texp:expire_at acc)
        v.contents due
    in
    { contents; queue; now = to_ }

let read v ~tau =
  let v = advance v ~to_:tau in
  Relation.exp tau v.contents, v

let peek v ~tau = fst (read v ~tau)

let next_patch_at v = Option.map fst (Heap.min_opt v.queue)
