(** Rendering helpers for expressions, relations and timelines, in the
    visual style of the paper's Figures 1–3. *)

val relation_table :
  ?title:string -> ?columns:string list -> Relation.t -> string
(** A bordered table with a [texp] column followed by the attributes, as
    in Figure 1.  Rows appear in tuple order. *)

val rows_table :
  ?title:string -> ?columns:string list -> arity:int ->
  (Tuple.t * Time.t) list -> string
(** Like {!relation_table} but over an explicitly ordered listing (used
    by the query language's ORDER BY / LIMIT). *)

val expr_tree : Algebra.t -> string
(** Indented operator tree. *)

val snapshots :
  ?strategy:Aggregate.strategy ->
  env:Eval.env ->
  times:Time.t list ->
  Algebra.t ->
  string
(** Renders the materialised expression properly expired at each of the
    given times, Figure 2/3-style: materialise once at the first time,
    then show [exp_tau] of the materialisation at each subsequent time. *)
