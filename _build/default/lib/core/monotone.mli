(** Classification of expressions into monotonic and non-monotonic
    (Sections 2.5 and 2.6).

    Selection, projection, Cartesian product and union — and the operators
    derived from them, join and intersection — are monotonic; materialised
    results of expressions built only from them remain valid forever under
    expiration alone (Theorem 1).  Aggregation and difference are
    non-monotonic: their materialisations may acquire a finite expiration
    time and require recomputation (Theorem 2). *)

val is_monotonic : Algebra.t -> bool
(** No [Diff] or [Aggregate] node occurs in the expression. *)

val non_monotonic_nodes : Algebra.t -> Algebra.t list
(** The [Diff] and [Aggregate] subexpressions, outermost first. *)

val classify : Algebra.t -> [ `Monotonic | `Non_monotonic of int ]
(** [`Non_monotonic k] carries the number of non-monotonic nodes. *)
