type t =
  | Fin of int
  | Inf

let zero = Fin 0
let infinity = Inf
let of_int n = Fin n

let to_int_opt = function
  | Fin n -> Some n
  | Inf -> None

let is_finite = function
  | Fin _ -> true
  | Inf -> false

let is_infinite t = not (is_finite t)

let compare a b =
  match a, b with
  | Fin x, Fin y -> Int.compare x y
  | Fin _, Inf -> -1
  | Inf, Fin _ -> 1
  | Inf, Inf -> 0

let equal a b = compare a b = 0
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0
let min a b = if a <= b then a else b
let max a b = if a >= b then a else b
let min_list ts = List.fold_left min Inf ts

let max_list = function
  | [] -> Inf
  | t :: ts -> List.fold_left max t ts

let succ = function
  | Fin n -> Fin (Stdlib.( + ) n 1)
  | Inf -> Inf

let pred = function
  | Fin n -> Fin (Stdlib.( - ) n 1)
  | Inf -> Inf

let add a b =
  match a, b with
  | Fin x, Fin y -> Fin (Stdlib.( + ) x y)
  | Inf, _ | _, Inf -> Inf

let pp ppf = function
  | Fin n -> Format.fprintf ppf "%d" n
  | Inf -> Format.pp_print_string ppf "inf"

let to_string t = Format.asprintf "%a" pp t
