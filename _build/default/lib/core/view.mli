(** Materialised views over expiring base relations.

    The paper's programme (Section 1): "materialise and maintain query
    results as far as possible independently of, but in synchrony with
    their base relations" — ideally "by looking only at the expiration
    times of the tuples of the query results and without referring back
    to the base relations". *)

type t = private {
  expr : Algebra.t;
  strategy : Aggregate.strategy;
  computed_at : Time.t;
  contents : Relation.t;  (** as materialised at [computed_at] *)
  texp : Time.t;  (** the expression expiration time [texp(e)] *)
  validity : Interval_set.t;  (** Schrödinger validity [I(e)] *)
}

val materialise :
  ?strategy:Aggregate.strategy -> env:Eval.env -> tau:Time.t -> Algebra.t -> t
(** Computes contents, [texp(e)] and [I(e)] at [tau]. *)

val current : t -> tau:Time.t -> Relation.t
(** [current v ~tau] is the properly expired materialisation
    [exp_tau(contents)], regardless of validity — what a client that
    cannot reach the base data would see. *)

val is_expired : t -> tau:Time.t -> bool
(** Whether [tau >= texp(e)] — the point after which Theorem 2 stops
    guaranteeing that {!current} equals a recomputation. *)

val read : t -> tau:Time.t -> [ `Valid of Relation.t | `Expired of Time.t ]
(** Theorem 2 interface: [`Valid] with the properly expired contents when
    [computed_at <= tau < texp(e)]; [`Expired texp] otherwise. *)

val read_schrodinger :
  t -> tau:Time.t -> policy:Validity.policy ->
  [ `Valid of Relation.t | `Observe of Validity.observation ]
(** Section 3.3 interface: answers from the materialisation when [tau]
    lies in a validity interval, otherwise reports the fallback the
    policy selects (move backward / delay / recompute). *)

val refresh : env:Eval.env -> tau:Time.t -> t -> t
(** Recomputation: rematerialises the same expression at [tau]. *)

val maintenance_times :
  ?strategy:Aggregate.strategy ->
  env:Eval.env -> from:Time.t -> horizon:Time.t -> Algebra.t -> Time.t list
(** The recomputation schedule over [\[from, horizon\[] when the view is
    refreshed exactly each time its materialisation expires: materialise
    at [from]; whenever [texp(e)] is finite and [< horizon], refresh at
    that instant and continue.  Monotonic expressions yield [\[]]
    (Theorem 1: no recomputation, ever). *)

val pp : Format.formatter -> t -> unit
