type t =
  | Int of int
  | Str of string
  | Float of float
  | Bool of bool
  | Null

let int n = Int n
let str s = Str s
let float f = Float f
let bool b = Bool b

let tag = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Float _ -> 3
  | Str _ -> 4

let compare a b =
  match a, b with
  | Int x, Int y -> Int.compare x y
  | Str x, Str y -> String.compare x y
  | Float x, Float y -> Float.compare x y
  | Bool x, Bool y -> Bool.compare x y
  | Null, Null -> 0
  | (Int _ | Str _ | Float _ | Bool _ | Null), _ -> Int.compare (tag a) (tag b)

let equal a b = compare a b = 0

let is_null = function
  | Null -> true
  | Int _ | Str _ | Float _ | Bool _ -> false

let cmp a b =
  match a, b with
  | Null, _ | _, Null -> None
  | Int x, Int y -> Some (Int.compare x y)
  | Float x, Float y -> Some (Float.compare x y)
  | Int x, Float y -> Some (Float.compare (float_of_int x) y)
  | Float x, Int y -> Some (Float.compare x (float_of_int y))
  | Str x, Str y -> Some (String.compare x y)
  | Bool x, Bool y -> Some (Bool.compare x y)
  | (Int _ | Float _ | Str _ | Bool _), _ -> None

let add a b =
  match a, b with
  | Null, _ | _, Null -> Null
  | Int x, Int y -> Int (x + y)
  | Float x, Float y -> Float (x +. y)
  | Int x, Float y -> Float (float_of_int x +. y)
  | Float x, Int y -> Float (x +. float_of_int y)
  | (Str _ | Bool _), _ | _, (Str _ | Bool _) ->
    invalid_arg "Value.add: non-numeric operand"

let to_float = function
  | Int n -> Some (float_of_int n)
  | Float f -> Some f
  | Str _ | Bool _ | Null -> None

let hash = function
  | Int n -> Hashtbl.hash (2, n)
  | Str s -> Hashtbl.hash (4, s)
  | Float f -> Hashtbl.hash (3, f)
  | Bool b -> Hashtbl.hash (1, b)
  | Null -> Hashtbl.hash 0

let pp ppf = function
  | Int n -> Format.fprintf ppf "%d" n
  | Str s -> Format.fprintf ppf "'%s'" s
  | Float f -> Format.fprintf ppf "%g" f
  | Bool b -> Format.fprintf ppf "%b" b
  | Null -> Format.pp_print_string ppf "null"

let to_string v = Format.asprintf "%a" pp v
