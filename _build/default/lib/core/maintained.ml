type node = {
  expr : Algebra.t;
  relation : Relation.t;
  kids : node list;
  has_non_monotonic : bool;  (* this node or any descendant *)
}

type counters = {
  upserts : int;
  deletes : int;
  refreshes : int;
}

type t = {
  strategy : Aggregate.strategy;
  now : Time.t;
  root : node;
  counters : counters;
}

(* A delta flowing up the tree: tuples whose expiration time is now
   [texp] (upserts) and tuples no longer present. *)
type delta = {
  ups : (Tuple.t * Time.t) list;
  dels : Tuple.t list;
}

let empty_delta = { ups = []; dels = [] }
let is_empty_delta d = d.ups = [] && d.dels = []

let apply_delta relation d =
  let relation = List.fold_left (fun r t -> Relation.remove t r) relation d.dels in
  List.fold_left (fun r (t, texp) -> Relation.replace t ~texp r) relation d.ups

(* Exact difference between two materialisations of the same node — the
   fallback delta when both children of a binary node changed at once. *)
let relation_delta ~old_rel ~new_rel =
  let ups =
    Relation.fold
      (fun t texp acc ->
        match Relation.texp_opt old_rel t with
        | Some old_texp when Time.equal old_texp texp -> acc
        | Some _ | None -> (t, texp) :: acc)
      new_rel []
  in
  let dels =
    Relation.fold
      (fun t _ acc -> if Relation.mem t new_rel then acc else t :: acc)
      old_rel []
  in
  { ups; dels }

(* --- building --- *)

let rec build ~strategy ~env ~tau expr =
  let mk relation kids =
    { expr;
      relation;
      kids;
      has_non_monotonic =
        (match expr with
         | Algebra.Diff _ | Algebra.Aggregate _ -> true
         | Algebra.Base _ | Algebra.Select _ | Algebra.Project _
         | Algebra.Product _ | Algebra.Union _ | Algebra.Join _
         | Algebra.Intersect _ ->
           List.exists (fun k -> k.has_non_monotonic) kids)
    }
  in
  match expr with
  | Algebra.Base name ->
    (match env name with
     | Some r -> mk (Relation.exp tau r) []
     | None -> raise (Errors.Unknown_relation name))
  | Algebra.Select (p, e) ->
    let c = build ~strategy ~env ~tau e in
    mk (Ops.select p c.relation) [ c ]
  | Algebra.Project (js, e) ->
    let c = build ~strategy ~env ~tau e in
    mk (Ops.project js c.relation) [ c ]
  | Algebra.Product (l, r) ->
    let cl = build ~strategy ~env ~tau l and cr = build ~strategy ~env ~tau r in
    mk (Ops.product cl.relation cr.relation) [ cl; cr ]
  | Algebra.Union (l, r) ->
    let cl = build ~strategy ~env ~tau l and cr = build ~strategy ~env ~tau r in
    mk (Ops.union cl.relation cr.relation) [ cl; cr ]
  | Algebra.Join (p, l, r) ->
    let cl = build ~strategy ~env ~tau l and cr = build ~strategy ~env ~tau r in
    mk (Ops.join p cl.relation cr.relation) [ cl; cr ]
  | Algebra.Intersect (l, r) ->
    let cl = build ~strategy ~env ~tau l and cr = build ~strategy ~env ~tau r in
    mk (Ops.intersect cl.relation cr.relation) [ cl; cr ]
  | Algebra.Diff (l, r) ->
    let cl = build ~strategy ~env ~tau l and cr = build ~strategy ~env ~tau r in
    mk (Ops.diff cl.relation cr.relation) [ cl; cr ]
  | Algebra.Aggregate (group, f, e) ->
    let c = build ~strategy ~env ~tau e in
    mk (fst (Ops.aggregate strategy ~tau ~group f c.relation)) [ c ]

let materialise ?(strategy = Aggregate.Exact) ~env ~tau expr =
  let arity_env name = Option.map Relation.arity (env name) in
  let (_ : int) = Algebra.arity ~env:arity_env expr in
  { strategy;
    now = tau;
    root = build ~strategy ~env ~tau expr;
    counters = { upserts = 0; deletes = 0; refreshes = 0 }
  }

let expr t = t.root.expr
let now t = t.now
let read t = t.root.relation

(* --- delta propagation --- *)

(* Tuples touched by a delta, as seen through a projection. *)
let affected_keys js d =
  let keys =
    List.map (fun (t, _) -> Tuple.project js t) d.ups
    @ List.map (Tuple.project js) d.dels
  in
  List.sort_uniq Tuple.compare keys

let module_key_mem key keys = List.exists (Tuple.equal key) keys

(* Recompute the rows of [node_rel] whose [js]-projection falls in
   [keys], from the child's new relation; used by project and aggregate,
   which merge over groups of source tuples. *)
let regroup ~old_node_rel ~keys ~project_out ~recomputed =
  let dels =
    Relation.fold
      (fun t _ acc -> if module_key_mem (project_out t) keys then t :: acc else acc)
      old_node_rel []
  in
  let survivors =
    List.filter (fun t -> not (Relation.mem t recomputed)) dels
  in
  let ups =
    Relation.fold
      (fun t texp acc ->
        match Relation.texp_opt old_node_rel t with
        | Some old_texp when Time.equal old_texp texp -> acc
        | Some _ | None -> (t, texp) :: acc)
      recomputed []
  in
  { ups; dels = survivors }

type base_change =
  | Upsert of Tuple.t * Time.t
  | Remove of Tuple.t

(* Propagates one base-relation change through the tree, returning the
   updated node and the delta it exposes to its parent. *)
let rec propagate ~strategy ~tau ~target change node =
  match node.expr, node.kids with
  | Algebra.Base name, [] ->
    if not (String.equal name target) then node, empty_delta
    else
      let delta =
        match change with
        | Upsert (t, texp) -> { ups = [ t, texp ]; dels = [] }
        | Remove t ->
          if Relation.mem t node.relation then { ups = []; dels = [ t ] }
          else empty_delta
      in
      { node with relation = apply_delta node.relation delta }, delta
  | Algebra.Select (p, _), [ c ] ->
    let c', d = propagate ~strategy ~tau ~target change c in
    let delta =
      { ups = List.filter (fun (t, _) -> Predicate.eval p t) d.ups;
        dels = List.filter (Predicate.eval p) d.dels
      }
    in
    { node with relation = apply_delta node.relation delta; kids = [ c' ] }, delta
  | Algebra.Project (js, _), [ c ] ->
    let c', d = propagate ~strategy ~tau ~target change c in
    if is_empty_delta d then { node with kids = [ c' ] }, empty_delta
    else begin
      let keys = affected_keys js d in
      (* One pass over the child: rebuild exactly the affected keys. *)
      let recomputed =
        Relation.fold
          (fun t texp acc ->
            let k = Tuple.project js t in
            if module_key_mem k keys then Relation.add k ~texp acc else acc)
          c'.relation
          (Relation.empty ~arity:(List.length js))
      in
      let delta =
        (* The node's rows are the projected tuples themselves. *)
        regroup ~old_node_rel:node.relation ~keys ~project_out:Fun.id
          ~recomputed
      in
      ( { node with relation = apply_delta node.relation delta; kids = [ c' ] },
        delta )
    end
  | Algebra.Aggregate (group, f, _), [ c ] ->
    let c', d = propagate ~strategy ~tau ~target change c in
    if is_empty_delta d then { node with kids = [ c' ] }, empty_delta
    else begin
      let keys = affected_keys group d in
      let members_of_affected =
        Relation.fold
          (fun t texp acc ->
            if module_key_mem (Tuple.project group t) keys then
              Relation.add t ~texp acc
            else acc)
          c'.relation
          (Relation.empty ~arity:(Relation.arity c'.relation))
      in
      let recomputed, _ =
        Ops.aggregate strategy ~tau ~group f members_of_affected
      in
      (* Node rows belong to a key via their first arity(child) attrs. *)
      let project_out t =
        Tuple.project group (fst (Tuple.split ~left_arity:(Relation.arity c'.relation) t))
      in
      let delta =
        regroup ~old_node_rel:node.relation ~keys ~project_out
          ~recomputed
      in
      ( { node with relation = apply_delta node.relation delta; kids = [ c' ] },
        delta )
    end
  | _, [ l; r ] ->
    let l', dl = propagate ~strategy ~tau ~target change l in
    let r', dr = propagate ~strategy ~tau ~target change r in
    let node = { node with kids = [ l'; r' ] } in
    if is_empty_delta dl && is_empty_delta dr then node, empty_delta
    else if not (is_empty_delta dl) && not (is_empty_delta dr) then begin
      (* Both operands changed (the base occurs on both sides): refresh
         this node locally from its children. *)
      let new_rel = reapply ~strategy ~tau node.expr l'.relation r'.relation in
      let delta = relation_delta ~old_rel:node.relation ~new_rel in
      { node with relation = new_rel }, delta
    end
    else begin
      let delta = binary_delta ~node ~left:l' ~right:r' ~dl ~dr in
      { node with relation = apply_delta node.relation delta }, delta
    end
  | (Algebra.Base _ | Algebra.Select _ | Algebra.Project _ | Algebra.Product _
    | Algebra.Union _ | Algebra.Join _ | Algebra.Intersect _ | Algebra.Diff _
    | Algebra.Aggregate _), _ ->
    assert false (* tree shape fixed at build time *)

and reapply ~strategy ~tau expr l_rel r_rel =
  match expr with
  | Algebra.Product _ -> Ops.product l_rel r_rel
  | Algebra.Union _ -> Ops.union l_rel r_rel
  | Algebra.Join (p, _, _) -> Ops.join p l_rel r_rel
  | Algebra.Intersect _ -> Ops.intersect l_rel r_rel
  | Algebra.Diff _ -> Ops.diff l_rel r_rel
  | Algebra.Base _ | Algebra.Select _ | Algebra.Project _ | Algebra.Aggregate _ ->
    ignore (strategy, tau);
    assert false

(* Single-side delta rules for the binary operators. *)
and binary_delta ~node ~left ~right ~dl ~dr =
  let pairs_with side_rel make (t, texp) =
    Relation.fold
      (fun u texp_u acc -> (make t u, Time.min texp texp_u) :: acc)
      side_rel []
  in
  let pairs_tuples side_rel make t =
    Relation.fold (fun u _ acc -> make t u :: acc) side_rel []
  in
  let product_delta () =
    if not (is_empty_delta dl) then
      { ups = List.concat_map (pairs_with right.relation Tuple.concat) dl.ups;
        dels = List.concat_map (pairs_tuples right.relation Tuple.concat) dl.dels
      }
    else
      { ups =
          List.concat_map
            (pairs_with left.relation (fun t u -> Tuple.concat u t))
            dr.ups;
        dels =
          List.concat_map
            (pairs_tuples left.relation (fun t u -> Tuple.concat u t))
            dr.dels
      }
  in
  match node.expr with
  | Algebra.Product _ -> product_delta ()
  | Algebra.Join (p, _, _) ->
    let d = product_delta () in
    { ups = List.filter (fun (t, _) -> Predicate.eval p t) d.ups;
      dels = List.filter (Predicate.eval p) d.dels
    }
  | Algebra.Union _ ->
    let other, d =
      if not (is_empty_delta dl) then right.relation, dl else left.relation, dr
    in
    let ups =
      List.map
        (fun (t, texp) ->
          match Relation.texp_opt other t with
          | Some texp_other -> t, Time.max texp texp_other
          | None -> t, texp)
        d.ups
    in
    let reinstated, gone =
      List.partition_map
        (fun t ->
          match Relation.texp_opt other t with
          | Some texp_other -> Either.Left (t, texp_other)
          | None -> Either.Right t)
        d.dels
    in
    { ups = ups @ reinstated; dels = gone }
  | Algebra.Intersect _ ->
    let other, d =
      if not (is_empty_delta dl) then right.relation, dl else left.relation, dr
    in
    let ups =
      List.filter_map
        (fun (t, texp) ->
          match Relation.texp_opt other t with
          | Some texp_other -> Some (t, Time.min texp texp_other)
          | None -> None)
        d.ups
    in
    { ups; dels = d.dels }
  | Algebra.Diff _ ->
    if not (is_empty_delta dl) then
      (* Left operand changed. *)
      let masked, visible =
        List.partition (fun (t, _) -> Relation.mem t right.relation) dl.ups
      in
      { ups = visible; dels = dl.dels @ List.map fst masked }
    else
      (* Right operand changed: upserts there hide tuples, deletions
         reveal the left copy. *)
      let hidden =
        List.filter_map
          (fun (t, _) ->
            if Relation.mem t left.relation then Some t else None)
          dr.ups
      in
      let revealed =
        List.filter_map
          (fun t ->
            match Relation.texp_opt left.relation t with
            | Some texp_l -> Some (t, texp_l)
            | None -> None)
          dr.dels
      in
      { ups = revealed; dels = hidden }
  | Algebra.Base _ | Algebra.Select _ | Algebra.Project _ | Algebra.Aggregate _ ->
    assert false

(* --- public update operations --- *)

let count_delta counters d =
  { counters with
    upserts = counters.upserts + List.length d.ups;
    deletes = counters.deletes + List.length d.dels
  }

let apply_change t change =
  let target, change' = change in
  let root, delta =
    propagate ~strategy:t.strategy ~tau:t.now ~target change' t.root
  in
  { t with root; counters = count_delta t.counters delta }

let insert t ~relation tuple ~texp =
  if Time.(texp <= t.now) then
    invalid_arg "Maintained.insert: texp <= now"
  else apply_change t (relation, Upsert (tuple, texp))

let delete t ~relation tuple = apply_change t (relation, Remove tuple)

(* --- time --- *)

let advance t ~to_ =
  if Time.(to_ < t.now) then invalid_arg "Maintained.advance: moving backwards"
  else begin
    let refreshes = ref 0 in
    let rec adv node =
      if not node.has_non_monotonic then
        (* Theorem 1: the whole subtree just expires in place — children
           included, so later delta rules see live sibling relations. *)
        { node with
          relation = Relation.exp to_ node.relation;
          kids = List.map adv node.kids
        }
      else begin
        let kids = List.map adv node.kids in
        let relation =
          match node.expr, kids with
          | Algebra.Select (p, _), [ c ] -> Ops.select p c.relation
          | Algebra.Project (js, _), [ c ] -> Ops.project js c.relation
          | Algebra.Aggregate (group, f, _), [ c ] ->
            incr refreshes;
            fst (Ops.aggregate t.strategy ~tau:to_ ~group f c.relation)
          | Algebra.Diff _, [ l; r ] ->
            incr refreshes;
            Ops.diff l.relation r.relation
          | (Algebra.Product _ | Algebra.Union _ | Algebra.Join _
            | Algebra.Intersect _), [ l; r ] ->
            reapply ~strategy:t.strategy ~tau:to_ node.expr l.relation r.relation
          | (Algebra.Base _ | Algebra.Select _ | Algebra.Project _
            | Algebra.Product _ | Algebra.Union _ | Algebra.Join _
            | Algebra.Intersect _ | Algebra.Diff _ | Algebra.Aggregate _), _ ->
            assert false
        in
        { node with kids; relation }
      end
    in
    let root = adv t.root in
    { t with
      now = to_;
      root;
      counters = { t.counters with refreshes = t.counters.refreshes + !refreshes }
    }
  end

let stats t =
  [ "delta-upserts", t.counters.upserts;
    "delta-deletes", t.counters.deletes;
    "local-refreshes", t.counters.refreshes ]
