(** Patched difference views (Section 3.4.2, Theorem 3).

    A materialised difference [R -exp S] normally expires when the first
    critical tuple (in both operands, outliving its [S] copy) should
    reappear.  Keeping the helper relation

    [Rq(R -exp S) = { r | r in exp_tau(R) /\ r in exp_tau(S) }]
    with [texp(t) = texp_S(t)]

    as a priority queue and inserting its tuples into the materialisation
    as they "expire" from the queue removes recomputation entirely: the
    patched view's expiration time is infinity (Theorem 3).  The queue
    holds at most [|R n S|] entries. *)

type t

val create :
  env:Eval.env -> tau:Time.t -> left:Algebra.t -> right:Algebra.t -> t
(** Materialises [left -exp right] at [tau] and builds the helper queue.
    [left] and [right] may be arbitrary (sub)expressions; their
    materialisations at [tau] play the roles of [R] and [S].
    @raise Errors.Arity_mismatch unless union-compatible *)

val now : t -> Time.t
val pending : t -> int
(** Patches not yet applied ([<= |R n S|]). *)

val advance : t -> to_:Time.t -> t
(** Applies every patch whose appearance time ([texp_S(t)]) has passed,
    inserting the tuple with expiration time [texp_R(t)].
    @raise Invalid_argument when moving backwards in time *)

val read : t -> tau:Time.t -> Relation.t * t
(** [read v ~tau] advances to [tau] and returns the properly expired
    contents — by Theorem 3 equal to a fresh evaluation of
    [left -exp right] at [tau], for every [tau >= creation time], with no
    access to the base relations. *)

val peek : t -> tau:Time.t -> Relation.t
(** Like {!read} without threading the advanced state (recomputes the
    patch application; use {!read} in loops). *)

val next_patch_at : t -> Time.t option
(** Appearance time of the earliest pending patch. *)
