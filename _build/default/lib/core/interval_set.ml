(* Invariant: intervals sorted by lower bound, pairwise disjoint and
   non-adjacent, so the representation of a set of time points is unique. *)
type t = Interval.t list

let empty = []
let is_empty s = s = []
let full = [ Interval.from Time.zero ]
let of_interval i = [ i ]
let to_list s = s

let rec insert i = function
  | [] -> [ i ]
  | j :: rest ->
    (match Interval.union i j with
     | Some merged -> insert merged rest
     | None ->
       if Time.(i.Interval.hi < j.Interval.lo) then i :: j :: rest
       else j :: insert i rest)

let add i s = insert i s
let of_list is = List.fold_left (fun s i -> add i s) empty is
let mem tau s = List.exists (Interval.mem tau) s
let equal a b = List.length a = List.length b && List.for_all2 Interval.equal a b
let union a b = List.fold_left (fun s i -> add i s) a b

let inter a b =
  let pairwise i = List.filter_map (Interval.inter i) b in
  of_list (List.concat_map pairwise a)

(* [i - j] leaves at most two fragments. *)
let interval_diff i j =
  match Interval.inter i j with
  | None -> [ i ]
  | Some cut ->
    let left = Interval.make_opt i.Interval.lo cut.Interval.lo in
    let right = Interval.make_opt cut.Interval.hi i.Interval.hi in
    List.filter_map Fun.id [ left; right ]

let diff a b =
  let subtract_all i = List.fold_left
      (fun fragments j -> List.concat_map (fun f -> interval_diff f j) fragments)
      [ i ] b
  in
  of_list (List.concat_map subtract_all a)

let complement ~within s = diff [ within ] s
let cardinal = List.length

let total_duration s =
  List.fold_left (fun acc i -> Time.add acc (Interval.duration i)) Time.zero s

let first_gap_after tau s =
  let rec scan tau = function
    | [] -> Some tau
    | i :: rest ->
      if Time.(tau < i.Interval.lo) then Some tau
      else if Interval.mem tau i then
        (match i.Interval.hi with
         | Time.Inf -> None
         | hi -> scan hi rest)
      else scan tau rest
  in
  scan tau s

let next_covered_after tau s =
  let candidate i =
    if Interval.mem tau i then Some tau
    else if Time.(tau < i.Interval.lo) then Some i.Interval.lo
    else None
  in
  List.find_map candidate s

let pp ppf s =
  if s = [] then Format.pp_print_string ppf "{}"
  else
    Format.fprintf ppf "@[<h>%a@]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " u ")
         Interval.pp)
      s

let to_string s = Format.asprintf "%a" pp s
