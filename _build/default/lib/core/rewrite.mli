(** Algebraic rewriting to postpone recomputation (Section 3.1).

    Two goals from the paper: (1) reduce the set
    [{ t | t in R /\ t in S /\ texp_R(t) > texp_S(t) }] that causes
    recomputations — achieved by pushing selections towards the leaves so
    the difference operands shrink — and (2) "pull up non-monotonic
    operators in query plans to reduce the effects of recomputations on
    operators that depend on them" — achieved by distributing selections
    and products over difference so the difference becomes the plan root.

    All rules preserve semantics at every time [tau] (tuple sets {e and}
    expiration times); the property-based tests verify this. *)

type rule

val rule_name : rule -> string

val select_merge : rule
(** [sigma_p(sigma_q(e)) -> sigma_(p /\ q)(e)]. *)

val select_past_project : rule
(** [sigma_p(pi_js(e)) -> pi_js(sigma_p'(e))], renaming the predicate's
    columns through the projection. *)

val select_pushdown_product : rule
(** Splits a conjunctive predicate over a product (or join), sending the
    conjuncts that mention only left (resp. only right) columns to the
    corresponding operand. *)

val select_pushdown_union : rule
(** [sigma_p(R u S) -> sigma_p(R) u sigma_p(S)]. *)

val select_pushdown_intersect : rule

val select_pushdown_diff : rule
(** [sigma_p(R - S) -> sigma_p(R) - sigma_p(S)] — simultaneously a
    pushdown (shrinks the critical set) and a difference pull-up. *)

val diff_pullup_product : rule
(** [(R - S) x T -> (R x T) - (S x T)] (and symmetrically on the right):
    lifts the non-monotonic operator towards the root. *)

val project_merge : rule
(** [pi_js(pi_ks(e)) -> pi_(ks o js)(e)]. *)

val project_pushdown_union : rule
(** [pi_js(R u S) -> pi_js(R) u pi_js(S)] — sound because both the
    union's and the projection's duplicate merges take the maximum
    expiration time (Equations (3)-(4)). *)

val default_rules : rule list

val apply_once : env:Algebra.env -> rule -> Algebra.t -> Algebra.t option
(** Applies the rule at the topmost matching node; [None] when it matches
    nowhere. *)

val rewrite :
  ?max_passes:int ->
  ?rules:rule list ->
  env:Algebra.env ->
  Algebra.t ->
  Algebra.t * (string * int) list
(** Bottom-up fixpoint application; returns the rewritten expression and
    per-rule application counts.  [max_passes] (default 50) bounds the
    iteration. *)
