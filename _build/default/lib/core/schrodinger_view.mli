(** Interval-carrying materialisations: the full Schrödinger semantics
    of Section 3.4.

    Instead of expiring each result tuple at a single time, the view
    stores for every potential result tuple the {e set of intervals}
    [I_R(t)] during which it belongs to the result — including windows
    where a tuple {e reappears} (a critical difference tuple after its
    [S] copy expires, Section 3.4.2) or where an aggregate value returns
    to its materialised value (Section 3.4.1).

    Because the base relations change only by expiration, the whole
    future of the result is known at materialisation time; reading the
    view at any later time reproduces a fresh evaluation exactly, with
    {e no} recomputation and {e no} contact with the base data, for
    monotonic expressions, difference, and aggregation alike.  This
    generalises Theorem 3 from difference to every operator of the
    paper; the price is storage, bounded for aggregation by the number
    of aggregate-value changes, which Section 3.4.1 bounds by [|R|]. *)

type t

val materialise : env:Eval.env -> tau:Time.t -> Algebra.t -> t
(** Supports the full algebra.  For expressions whose root is a
    difference or an aggregation, the interval machinery of Sections
    3.4.1-3.4.2 is applied at the root over materialised children; any
    non-monotonic operators {e below} the root must not invalidate
    before the horizon of interest — compose views instead of nesting
    when that matters.  Aggregation uses the {!Aggregate.Exact}
    tuple-expiration semantics.
    @raise Errors.Unknown_relation / {!Errors.Arity_mismatch} like
    {!Eval.run} *)

val computed_at : t -> Time.t

val read : t -> tau:Time.t -> Relation.t
(** [read v ~tau] is the result relation at [tau], for any
    [tau >= computed_at v] — equal to a fresh evaluation (tuples and
    expiration times) when the root is monotonic, a difference over
    monotonic children, or an aggregation over monotonic children.
    @raise Invalid_argument when [tau < computed_at v] *)

val entries : t -> int
(** Stored [(tuple, interval)] entries — the storage cost of knowing the
    future.  For an aggregation this is at most the number of
    aggregate-value changes, i.e. at most [|R|] per Section 3.4.1. *)

val pp : Format.formatter -> t -> unit
