let remaining_of ~env ~tau name =
  match env name with
  | None -> raise (Errors.Unknown_relation name)
  | Some r ->
    let live = Relation.exp tau r in
    (match Relation.min_texp live with
     | Time.Inf -> Time.Inf
     | Time.Fin e ->
       (match tau with
        | Time.Fin now -> Time.Fin (e - now)
        | Time.Inf -> Time.Inf))

(* Lower bound on the remaining lifetime of any result tuple of a
   subexpression: the tuple-level rules only combine base expiration
   times with min and max, so the minimum over the mentioned bases is a
   floor. *)
let tuple_floor ~remaining e =
  Time.min_list (List.map remaining (Algebra.base_names e))

let rec validity_floor ~remaining = function
  | Algebra.Base _ -> Time.Inf
  | Algebra.Select (_, e) | Algebra.Project (_, e) -> validity_floor ~remaining e
  | Algebra.Product (l, r)
  | Algebra.Union (l, r)
  | Algebra.Join (_, l, r)
  | Algebra.Intersect (l, r) ->
    Time.min (validity_floor ~remaining l) (validity_floor ~remaining r)
  | Algebra.Diff (l, r) ->
    (* Case (3a): the first reappearance happens when a right-side copy
       expires — no sooner than the right subtree's tuple floor. *)
    Time.min_list
      [ validity_floor ~remaining l;
        validity_floor ~remaining r;
        tuple_floor ~remaining r ]
  | Algebra.Aggregate (_, _, e) ->
    (* A value first changes when a member expires. *)
    Time.min (validity_floor ~remaining e) (tuple_floor ~remaining e)

let admit ~env ~tau ~required expr =
  if required < 0 then invalid_arg "Qos.admit: negative requirement"
  else
    let remaining = remaining_of ~env ~tau in
    let floor = validity_floor ~remaining expr in
    if Time.(floor >= Time.of_int required) then `Guaranteed else `Must_evaluate
