(** A purely functional min-heap (leftist heap) keyed by {!Time.t}.

    Used as the priority queue of Section 3.4.2 — "by keeping a priority
    queue of those r in R that are to be added at a certain point in time
    to e = R -exp S" — and by the recomputation scheduler. *)

type 'a t

val empty : 'a t
val is_empty : 'a t -> bool
val cardinal : 'a t -> int

val insert : Time.t -> 'a -> 'a t -> 'a t

val min_opt : 'a t -> (Time.t * 'a) option
(** Smallest key, ties broken arbitrarily. *)

val pop : 'a t -> ((Time.t * 'a) * 'a t) option

val pop_until : Time.t -> 'a t -> (Time.t * 'a) list * 'a t
(** [pop_until tau h] removes and returns (in key order) every entry with
    key [<= tau]. *)

val of_list : (Time.t * 'a) list -> 'a t
val to_sorted_list : 'a t -> (Time.t * 'a) list
val fold : (Time.t -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b
