exception Arity_mismatch of string
exception Unknown_relation of string

let arity_mismatch fmt =
  Format.kasprintf (fun msg -> raise (Arity_mismatch msg)) fmt
