(** Errors shared across the core library. *)

exception Arity_mismatch of string
(** An operator was applied to relations whose arities violate its
    requirements (e.g. union compatibility, Equation (4)). *)

exception Unknown_relation of string
(** An algebra expression referenced a base relation absent from the
    evaluation environment. *)

val arity_mismatch : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Arity_mismatch} with a formatted message. *)
