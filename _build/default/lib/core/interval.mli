(** Half-open time intervals [\[lo, hi\[] as used by the Schrödinger
    semantics of Section 3.4 ([intervals] is the set of intervals
    [\[tau1, tau2\[] with [tau1 < tau2]). *)

type t = private {
  lo : Time.t;  (** inclusive lower bound *)
  hi : Time.t;  (** exclusive upper bound; [Inf] for unbounded *)
}

val make : Time.t -> Time.t -> t
(** [make lo hi] is [\[lo, hi\[].
    @raise Invalid_argument unless [lo < hi]. *)

val make_opt : Time.t -> Time.t -> t option
(** [make_opt lo hi] is [Some \[lo, hi\[] when [lo < hi], else [None]. *)

val from : Time.t -> t
(** [from lo] is [\[lo, Inf\[]. *)

val bounds : t -> Time.t * Time.t
val equal : t -> t -> bool

val compare : t -> t -> int
(** Lexicographic on [(lo, hi)]. *)

val mem : Time.t -> t -> bool
(** [mem tau i] holds when [lo <= tau < hi].  As a special case an
    unbounded interval [\[lo, Inf\[] means "from [lo] onwards" and
    contains the symbolic time [Inf] itself. *)

val duration : t -> Time.t
(** [duration i] is [hi - lo]; [Inf] when unbounded. *)

val overlaps : t -> t -> bool
(** Whether the two intervals share at least one time point. *)

val adjacent : t -> t -> bool
(** Whether the intervals abut exactly ([hi] of one equals [lo] of the
    other) without overlapping. *)

val inter : t -> t -> t option
(** Set intersection; [None] when disjoint. *)

val union : t -> t -> t option
(** [union a b] is the interval covering both when they overlap or are
    adjacent; [None] otherwise (the union would not be an interval). *)

val subset : t -> t -> bool
(** [subset a b] holds when every point of [a] lies in [b]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
