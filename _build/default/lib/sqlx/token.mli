(** Tokens of the sqlx dialect. *)

type t =
  | Ident of string  (** bare identifier, original casing *)
  | Keyword of string  (** reserved word, normalised to uppercase *)
  | Int_lit of int
  | Float_lit of float
  | String_lit of string
  | Lparen
  | Rparen
  | Comma
  | Semicolon
  | Dot
  | Star
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | Eof

val keywords : string list
(** The reserved words, uppercase. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
