(** Printing sqlx ASTs back to concrete syntax.

    The output always re-parses, and parsing it yields the original AST
    (property-tested): [parse (to_sql s) = s] for every statement whose
    identifiers are lexically valid. *)

val value : Expirel_core.Value.t -> string
(** A literal in source syntax (strings quoted and escaped, floats with
    enough digits to round-trip). *)

val cond : Ast.cond -> string
val query : Ast.query -> string
val statement : Ast.statement -> string
