(** Recursive-descent parser for the sqlx dialect.

    Grammar sketch (keywords case-insensitive):
    {v
statement := CREATE TABLE name (col, ...)
           | CREATE VIEW name AS query
           | DROP TABLE name
           | INSERT INTO name VALUES (lit, ...) [EXPIRES n | EXPIRES NEVER | TTL n]
           | DELETE FROM name [WHERE cond]
           | ADVANCE TO n | TICK [n] | VACUUM
           | SHOW TABLES | SHOW VIEWS | SHOW VIEW name | SHOW NOW
           | REFRESH VIEW name
           | EXPLAIN query
           | query
query     := atom ((UNION | EXCEPT | INTERSECT) atom)*
atom      := SELECT items FROM source [WHERE cond] [GROUP BY ref, ...]
           | ( query )
items     := * | item (, item)*
item      := ref | COUNT( * ) | SUM(ref) | MIN(ref) | MAX(ref) | AVG(ref)
source    := name [JOIN name ON cond]
cond      := and (OR and)* ;  and := unary (AND unary)*
unary     := NOT unary | ( cond ) | operand cmp operand
operand   := ref | literal
ref       := name [. name]
    v} *)

exception Error of string * int
(** Message and byte offset into the source text. *)

val parse_statement : string -> Ast.statement
(** One statement, optionally [;]-terminated.
    @raise Error on syntax errors *)

val parse_script : string -> Ast.statement list
(** A [;]-separated sequence. *)

val parse_query : string -> Ast.query
