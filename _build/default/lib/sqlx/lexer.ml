exception Error of string * int

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let emit offset token = tokens := (token, offset) :: !tokens in
  let rec skip_line i = if i < n && input.[i] <> '\n' then skip_line (i + 1) else i in
  let rec go i =
    if i >= n then emit i Token.Eof
    else
      match input.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1)
      | '-' when i + 1 < n && input.[i + 1] = '-' -> go (skip_line (i + 2))
      | '(' -> emit i Token.Lparen; go (i + 1)
      | ')' -> emit i Token.Rparen; go (i + 1)
      | ',' -> emit i Token.Comma; go (i + 1)
      | ';' -> emit i Token.Semicolon; go (i + 1)
      | '.' -> emit i Token.Dot; go (i + 1)
      | '*' -> emit i Token.Star; go (i + 1)
      | '=' -> emit i Token.Eq; go (i + 1)
      | '<' ->
        if i + 1 < n && input.[i + 1] = '>' then begin emit i Token.Neq; go (i + 2) end
        else if i + 1 < n && input.[i + 1] = '=' then begin emit i Token.Le; go (i + 2) end
        else begin emit i Token.Lt; go (i + 1) end
      | '>' ->
        if i + 1 < n && input.[i + 1] = '=' then begin emit i Token.Ge; go (i + 2) end
        else begin emit i Token.Gt; go (i + 1) end
      | '\'' -> string_lit (i + 1) i (Buffer.create 8)
      | '-' -> number i
      | c when is_digit c -> number i
      | c when is_ident_start c -> ident i
      | c -> raise (Error (Printf.sprintf "unexpected character %C" c, i))
  and string_lit i start buf =
    if i >= n then raise (Error ("unterminated string", start))
    else if input.[i] = '\'' then
      if i + 1 < n && input.[i + 1] = '\'' then begin
        Buffer.add_char buf '\'';
        string_lit (i + 2) start buf
      end
      else begin
        emit start (Token.String_lit (Buffer.contents buf));
        go (i + 1)
      end
    else begin
      Buffer.add_char buf input.[i];
      string_lit (i + 1) start buf
    end
  and number start =
    let i = if input.[start] = '-' then start + 1 else start in
    if i >= n || not (is_digit input.[i]) then
      raise (Error ("malformed number", start));
    let rec digits j = if j < n && is_digit input.[j] then digits (j + 1) else j in
    let int_end = digits i in
    if int_end < n && input.[int_end] = '.' && int_end + 1 < n
       && is_digit input.[int_end + 1]
    then begin
      let frac_end = digits (int_end + 1) in
      let text = String.sub input start (frac_end - start) in
      emit start (Token.Float_lit (float_of_string text));
      go frac_end
    end
    else begin
      let text = String.sub input start (int_end - start) in
      emit start (Token.Int_lit (int_of_string text));
      go int_end
    end
  and ident start =
    let rec scan j = if j < n && is_ident_char input.[j] then scan (j + 1) else j in
    let stop = scan start in
    let text = String.sub input start (stop - start) in
    let upper = String.uppercase_ascii text in
    if List.mem upper Token.keywords then emit start (Token.Keyword upper)
    else emit start (Token.Ident text);
    go stop
  in
  go 0;
  List.rev !tokens
