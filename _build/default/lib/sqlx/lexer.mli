(** Hand-written lexer for the sqlx dialect.

    Identifiers are [\[A-Za-z_\]\[A-Za-z0-9_\]*]; keywords are
    case-insensitive; strings are single-quoted with [''] as the escape
    for a quote; [--] starts a comment to end of line. *)

exception Error of string * int
(** Message and byte offset. *)

val tokenize : string -> (Token.t * int) list
(** Tokens with their starting offsets, ending with [Token.Eof].
    @raise Error on an unexpected character or unterminated string *)
