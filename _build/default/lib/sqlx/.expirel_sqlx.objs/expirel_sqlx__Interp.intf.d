lib/sqlx/interp.mli: Ast Database Expirel_core Expirel_index Expirel_storage Relation Time Tuple
