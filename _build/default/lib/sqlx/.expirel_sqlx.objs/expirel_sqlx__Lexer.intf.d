lib/sqlx/lexer.mli: Token
