lib/sqlx/sql_print.mli: Ast Expirel_core
