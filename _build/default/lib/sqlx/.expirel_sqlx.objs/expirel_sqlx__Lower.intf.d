lib/sqlx/lower.mli: Algebra Ast Expirel_core Predicate
