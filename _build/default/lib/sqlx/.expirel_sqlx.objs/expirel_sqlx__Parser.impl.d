lib/sqlx/parser.ml: Ast Expirel_core Lexer List Printf Token Value
