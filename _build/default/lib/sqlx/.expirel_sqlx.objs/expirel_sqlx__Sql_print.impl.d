lib/sqlx/sql_print.ml: Ast Buffer Expirel_core List Printf String Value
