lib/sqlx/ast.mli: Expirel_core Format Value
