lib/sqlx/token.mli: Format
