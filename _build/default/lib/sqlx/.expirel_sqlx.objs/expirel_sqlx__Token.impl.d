lib/sqlx/token.ml: Float Format
