lib/sqlx/ast.ml: Expirel_core Format List Printf String Value
