lib/sqlx/lower.ml: Aggregate Algebra Ast Expirel_core List Predicate Printf String
