open Expirel_core

type base_change = {
  at : int;
  relation : string;
  change : [ `Upsert of Tuple.t * Time.t | `Delete of Tuple.t ];
}

type strategy =
  | Poll of int
  | Expiration_aware
  | Refetch_on_change
  | Delta_push

type config = {
  horizon : int;
  strategy : strategy;
}

type report = {
  strategy : strategy;
  metrics : Metrics.t;
}

let strategy_label = function
  | Poll p -> Printf.sprintf "poll(%d)" p
  | Expiration_aware -> "expiration-aware"
  | Refetch_on_change -> "refetch-on-change"
  | Delta_push -> "delta-push"

let validate config updates =
  if config.horizon <= 0 then invalid_arg "Sim_update.run: horizon <= 0";
  (match config.strategy with
   | Poll p when p < 1 -> invalid_arg "Sim_update.run: poll period < 1"
   | Poll _ | Expiration_aware | Refetch_on_change | Delta_push -> ());
  let rec sorted = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) -> a.at <= b.at && sorted rest
  in
  if not (sorted updates) then invalid_arg "Sim_update.run: updates unsorted"

let fetch metrics payload =
  Metrics.record_message metrics ~payload_bytes:0;
  Metrics.record_message metrics ~payload_bytes:(Metrics.relation_bytes payload)

let apply_to_bindings bindings { relation; change; _ } =
  List.map
    (fun (name, r) ->
      if not (String.equal name relation) then name, r
      else
        match change with
        | `Upsert (t, texp) -> name, Relation.replace t ~texp r
        | `Delete t -> name, Relation.remove t r)
    bindings

let run ~bindings ~expr ~updates config =
  validate config updates;
  let metrics = Metrics.create () in
  let state = ref bindings in
  let env name = List.assoc_opt name !state in
  let truth tau = Eval.relation_at ~env ~tau:(Time.of_int tau) expr in
  let relevant = Algebra.base_names expr in
  let pending = ref updates in
  (* Client state per strategy. *)
  let poll_copy = ref (Relation.empty ~arity:(Relation.arity (truth 0))) in
  let fetched = ref (Eval.run ~env ~tau:Time.zero expr) in
  let replica =
    ref (Maintained.materialise ~env ~tau:Time.zero expr)
  in
  (match config.strategy with
   | Poll _ -> ()
   | Expiration_aware | Refetch_on_change -> fetch metrics !fetched.Eval.relation
   | Delta_push -> fetch metrics (Maintained.read !replica));
  for tau = 0 to config.horizon - 1 do
    (* 1. Apply this tick's updates at the server; update-aware
       strategies react to the relevant ones. *)
    let dirty = ref false in
    let rec drain () =
      match !pending with
      | u :: rest when u.at <= tau ->
        pending := rest;
        state := apply_to_bindings !state u;
        if List.mem u.relation relevant then begin
          dirty := true;
          match config.strategy with
          | Delta_push ->
            (* One tuple-sized push keeps the replica exact. *)
            Metrics.record_message metrics ~payload_bytes:Metrics.tuple_bytes;
            (match u.change with
             | `Upsert (t, texp) ->
               replica := Maintained.insert !replica ~relation:u.relation t ~texp
             | `Delete t ->
               replica := Maintained.delete !replica ~relation:u.relation t)
          | Poll _ | Expiration_aware | Refetch_on_change -> ()
        end;
        drain ()
      | _ -> ()
    in
    drain ();
    (* 2. The client serves. *)
    let serving =
      match config.strategy with
      | Poll period ->
        if tau mod period = 0 then begin
          let payload = truth tau in
          fetch metrics payload;
          if tau > 0 then Metrics.record_refetch metrics;
          poll_copy := payload
        end;
        !poll_copy
      | Expiration_aware ->
        if Time.(!fetched.Eval.texp <= Time.of_int tau) then begin
          fetched := Eval.run ~env ~tau:(Time.of_int tau) expr;
          fetch metrics !fetched.Eval.relation;
          Metrics.record_refetch metrics
        end;
        Relation.exp (Time.of_int tau) !fetched.Eval.relation
      | Refetch_on_change ->
        if !dirty || Time.(!fetched.Eval.texp <= Time.of_int tau) then begin
          fetched := Eval.run ~env ~tau:(Time.of_int tau) expr;
          fetch metrics !fetched.Eval.relation;
          Metrics.record_refetch metrics
        end;
        Relation.exp (Time.of_int tau) !fetched.Eval.relation
      | Delta_push ->
        replica := Maintained.advance !replica ~to_:(Time.of_int tau);
        Maintained.read !replica
    in
    Metrics.record_tick metrics
      ~stale:(not (Relation.equal_tuples serving (truth tau)))
  done;
  { strategy = config.strategy; metrics }
