(** Cost accounting for the loosely-coupled-system simulation: the
    paper's target cost factors are "network traffic and latency"
    (Section 1). *)

open Expirel_core

type t = {
  mutable messages : int;  (** request/response/push messages sent *)
  mutable bytes : int;  (** payload bytes on the wire *)
  mutable refetches : int;  (** full result re-transmissions after t = 0 *)
  mutable stale_ticks : int;  (** ticks the client served a wrong result *)
  mutable served_ticks : int;  (** ticks observed in total *)
}

val create : unit -> t

val tuple_bytes : int
(** Accounted wire size per tuple (a constant model; only ratios between
    strategies matter). *)

val message_overhead : int
(** Accounted fixed bytes per message. *)

val relation_bytes : Relation.t -> int

val record_message : t -> payload_bytes:int -> unit
val record_refetch : t -> unit
val record_tick : t -> stale:bool -> unit

val staleness_ratio : t -> float
val pp : Format.formatter -> t -> unit
