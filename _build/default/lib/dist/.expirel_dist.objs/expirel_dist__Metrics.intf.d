lib/dist/metrics.mli: Expirel_core Format Relation
