lib/dist/sim.mli: Algebra Eval Expirel_core Metrics
