lib/dist/sim.ml: Algebra Eval Expirel_core List Metrics Patch Printf Relation Time
