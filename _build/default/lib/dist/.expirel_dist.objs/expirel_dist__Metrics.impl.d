lib/dist/metrics.ml: Expirel_core Format Relation
