lib/dist/sim_unreliable.mli: Algebra Eval Expirel_core Metrics Sim
