lib/dist/sim_update.mli: Algebra Expirel_core Metrics Relation Time Tuple
