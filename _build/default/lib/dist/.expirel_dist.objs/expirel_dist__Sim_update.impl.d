lib/dist/sim_update.ml: Algebra Eval Expirel_core List Maintained Metrics Printf Relation String Time Tuple
