lib/dist/sim_unreliable.ml: Algebra Antijoin Eval Expirel_core Heap List Metrics Ops Relation Sim Time Tuple
