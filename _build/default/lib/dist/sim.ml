open Expirel_core

type strategy =
  | Poll of int
  | Expiration_aware
  | Patched

type config = {
  horizon : int;
  latency : int;
  strategy : strategy;
}

type report = {
  strategy : strategy;
  metrics : Metrics.t;
}

let strategy_label = function
  | Poll p -> Printf.sprintf "poll(%d)" p
  | Expiration_aware -> "expiration-aware"
  | Patched -> "patched"

let validate config =
  if config.horizon <= 0 then invalid_arg "Sim.run: horizon <= 0";
  if config.latency < 0 then invalid_arg "Sim.run: negative latency";
  match config.strategy with
  | Poll p when p < 1 -> invalid_arg "Sim.run: poll period < 1"
  | Poll _ | Expiration_aware | Patched -> ()

(* Request plus response carrying the payload. *)
let fetch metrics payload =
  Metrics.record_message metrics ~payload_bytes:0;
  Metrics.record_message metrics ~payload_bytes:(Metrics.relation_bytes payload)

let run_poll ~env ~expr ~config metrics period =
  let truth tau = Eval.relation_at ~env ~tau:(Time.of_int tau) expr in
  let arity = Relation.arity (truth 0) in
  let copy = ref (Relation.empty ~arity) in
  let in_flight = ref [] in
  for tau = 0 to config.horizon - 1 do
    if tau mod period = 0 then begin
      let payload = truth tau in
      fetch metrics payload;
      if tau > 0 then Metrics.record_refetch metrics;
      in_flight := !in_flight @ [ tau + config.latency, payload ]
    end;
    let arrived, still = List.partition (fun (at, _) -> at <= tau) !in_flight in
    in_flight := still;
    List.iter (fun (_, payload) -> copy := payload) arrived;
    (* A TTL-less client serves its whole copy, expired tuples included. *)
    let stale = not (Relation.equal_tuples !copy (truth tau)) in
    Metrics.record_tick metrics ~stale
  done

let run_expiration_aware ~env ~expr ~config metrics =
  let materialise tau = Eval.run ~env ~tau:(Time.of_int tau) expr in
  let state = ref (materialise 0) in
  fetch metrics !state.Eval.relation;
  for tau = 0 to config.horizon - 1 do
    (* The client knows texp(e) in advance, so it prefetches early enough
       for the replacement to arrive exactly when the old copy dies. *)
    if Time.(!state.Eval.texp <= Time.of_int tau) then begin
      state := materialise tau;
      fetch metrics !state.Eval.relation;
      Metrics.record_refetch metrics
    end;
    let serving = Relation.exp (Time.of_int tau) !state.Eval.relation in
    let truth = Eval.relation_at ~env ~tau:(Time.of_int tau) expr in
    Metrics.record_tick metrics ~stale:(not (Relation.equal_tuples serving truth))
  done

let run_patched ~env ~expr ~config metrics =
  match expr with
  | Algebra.Diff (left, right) ->
    let state = ref (Patch.create ~env ~tau:Time.zero ~left ~right) in
    let initial, _ = Patch.read !state ~tau:Time.zero in
    let payload_bytes =
      Metrics.relation_bytes initial + (Patch.pending !state * Metrics.tuple_bytes)
    in
    Metrics.record_message metrics ~payload_bytes:0;
    Metrics.record_message metrics ~payload_bytes;
    for tau = 0 to config.horizon - 1 do
      let serving, next = Patch.read !state ~tau:(Time.of_int tau) in
      state := next;
      let truth = Eval.relation_at ~env ~tau:(Time.of_int tau) expr in
      Metrics.record_tick metrics ~stale:(not (Relation.equal_tuples serving truth))
    done
  | Algebra.Base _ | Algebra.Select _ | Algebra.Project _ | Algebra.Product _
  | Algebra.Union _ | Algebra.Join _ | Algebra.Intersect _ | Algebra.Aggregate _
    ->
    invalid_arg "Sim.run: Patched requires a difference at the root"

let run ~env ~expr config =
  validate config;
  let metrics = Metrics.create () in
  (match config.strategy with
   | Poll period -> run_poll ~env ~expr ~config metrics period
   | Expiration_aware -> run_expiration_aware ~env ~expr ~config metrics
   | Patched -> run_patched ~env ~expr ~config metrics);
  { strategy = config.strategy; metrics }
