(** The loosely-coupled simulation with the no-update assumption lifted:
    the server's base relations receive upserts and deletes while a
    remote client serves a materialised view.

    Under updates, purely expiration-based maintenance is no longer
    sufficient — {!strategy.Expiration_aware} now serves stale data
    between its [texp(e)] refetches, quantifying exactly what the
    paper's standing assumption buys.  Two update-aware strategies
    restore correctness:

    - {!strategy.Refetch_on_change}: the server notifies the client on
      every relevant update; the client refetches the whole result (and
      still refetches at [texp(e)]).
    - {!strategy.Delta_push}: the client holds an incrementally
      maintained replica ({!Expirel_core.Maintained}); the server pushes
      tuple-sized deltas and the replica expires locally — combining the
      paper's expiration machinery with incremental view maintenance,
      its stated future direction. *)

open Expirel_core

type base_change = {
  at : int;  (** tick at which the update is applied, before serving *)
  relation : string;
  change : [ `Upsert of Tuple.t * Time.t | `Delete of Tuple.t ];
}

type strategy =
  | Poll of int
  | Expiration_aware
  | Refetch_on_change
  | Delta_push

type config = {
  horizon : int;
  strategy : strategy;
}

type report = {
  strategy : strategy;
  metrics : Metrics.t;
}

val run :
  bindings:(string * Relation.t) list ->
  expr:Algebra.t ->
  updates:base_change list ->
  config ->
  report
(** Updates must be sorted by [at]; upsert expiration times must exceed
    their tick.
    @raise Invalid_argument on a non-positive horizon/poll period or
    unsorted updates *)

val strategy_label : strategy -> string
