open Expirel_core

type t = {
  mutable messages : int;
  mutable bytes : int;
  mutable refetches : int;
  mutable stale_ticks : int;
  mutable served_ticks : int;
}

let create () =
  { messages = 0; bytes = 0; refetches = 0; stale_ticks = 0; served_ticks = 0 }

let tuple_bytes = 16
let message_overhead = 32
let relation_bytes r = Relation.cardinal r * tuple_bytes

let record_message m ~payload_bytes =
  m.messages <- m.messages + 1;
  m.bytes <- m.bytes + message_overhead + payload_bytes

let record_refetch m = m.refetches <- m.refetches + 1

let record_tick m ~stale =
  m.served_ticks <- m.served_ticks + 1;
  if stale then m.stale_ticks <- m.stale_ticks + 1

let staleness_ratio m =
  if m.served_ticks = 0 then 0.
  else float_of_int m.stale_ticks /. float_of_int m.served_ticks

let pp ppf m =
  Format.fprintf ppf
    "messages=%d bytes=%d refetches=%d stale=%d/%d (%.1f%%)" m.messages m.bytes
    m.refetches m.stale_ticks m.served_ticks (100. *. staleness_ratio m)
