(** The loosely-coupled simulation under the failure modes the paper
    opens with (Section 1): "connectivity might be intermittent or ...
    the clocks of different sub-systems are not synchronised".

    All clients here are TTL-aware caches: they hold the shipped
    expiration times and expire locally.  The simulation adds

    - {b link outages}: during an offline window no fetch or refetch
      succeeds; clients serve whatever their local expiration machinery
      still justifies — which is exactly correct for monotonic views
      (Theorem 1) and correct until [texp(e)] for the rest;
    - {b clock skew}: the client's clock runs [skew] ticks ahead (+) or
      behind (−) of the server's.  A slow clock holds tuples past their
      true expiration — the dangerous direction;
    - {b safety margin}: the mitigation — the server ships
      [texp − margin], trading availability for safety.  With
      [margin >= max 0 (-skew)] a client {e never} serves an expired
      tuple (property-tested). *)

open Expirel_core

type config = {
  horizon : int;
  strategy : Sim.strategy;
  offline : (int * int) list;
      (** half-open link-down windows in server time, sorted, disjoint *)
  skew : int;  (** client clock minus server clock *)
  margin : int;  (** shipped expiration times are reduced by this, [>= 0] *)
  patch_delay : int;
      (** appearance times of shipped difference patches are pushed this
          much later, [>= 0] — guards {!Sim.strategy.Patched} against
          fast client clocks the way [margin] guards expirations against
          slow ones *)
}

type report = {
  metrics : Metrics.t;  (** [stale_ticks] counts any divergence *)
  expired_served : int;
      (** (tick, tuple) pairs the client served although absent from the
          true result (already expired, or patched in too early) —
          wrong-data violations.  Zero whenever
          [margin >= max 0 (-skew)] and [patch_delay >= max 0 skew]
          (property-tested). *)
  valid_dropped : int;
      (** (tick, tuple) pairs the client withheld although still valid —
          the availability price of margins, skew and outages *)
  blocked_fetches : int;  (** fetch attempts that hit an offline window *)
}

val run : env:Eval.env -> expr:Algebra.t -> config -> report
(** @raise Invalid_argument on bad horizon/period/margin, overlapping or
    unsorted offline windows, or [Patched] over a non-difference (as in
    {!Sim.run}).  The link must be up at tick 0 (the initial shipment). *)
