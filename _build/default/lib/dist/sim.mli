(** A deterministic discrete-time simulation of one server holding
    expiring base relations and one remote client holding a materialised
    query result — the loosely-coupled setting that motivates the paper
    (Section 1: intermittent connectivity, traffic and latency as the
    cost factors).

    The base data only expires (the paper's standing assumption: no
    updates to the source data), so the server-side truth at tick [tau]
    is the expression evaluated at [tau].  Three client maintenance
    strategies are compared:

    - {!strategy.Poll}: a traditional TTL-less client refetching the
      whole result every [period] ticks; between polls its copy does not
      self-expire, so it serves stale tuples.
    - {!strategy.Expiration_aware}: the paper's scheme — fetch once with
      expiration times, expire locally, and refetch only when the
      expression expiration time [texp(e)] passes (never, for monotonic
      expressions: Theorem 1).  Knowing [texp(e)] in advance, the client
      prefetches [latency] ticks early, so it is never stale.
    - {!strategy.Patched}: for difference expressions, ship the helper
      priority queue with the initial fetch (Theorem 3); no further
      traffic at all. *)

open Expirel_core

type strategy =
  | Poll of int  (** refetch period in ticks, [>= 1] *)
  | Expiration_aware
  | Patched

type config = {
  horizon : int;  (** simulate ticks [0 .. horizon - 1] *)
  latency : int;  (** one-way message latency in ticks, [>= 0] *)
  strategy : strategy;
}

type report = {
  strategy : strategy;
  metrics : Metrics.t;
}

val run : env:Eval.env -> expr:Algebra.t -> config -> report
(** @raise Invalid_argument on a non-positive horizon or poll period, a
    negative latency, or [Patched] applied to an expression whose root is
    not a difference. *)

val strategy_label : strategy -> string
