open Expirel_core

type config = {
  horizon : int;
  strategy : Sim.strategy;
  offline : (int * int) list;
  skew : int;
  margin : int;
  patch_delay : int;
}

type report = {
  metrics : Metrics.t;
  expired_served : int;
  valid_dropped : int;
  blocked_fetches : int;
}

let validate config =
  if config.horizon <= 0 then invalid_arg "Sim_unreliable.run: horizon <= 0";
  if config.margin < 0 then invalid_arg "Sim_unreliable.run: negative margin";
  if config.patch_delay < 0 then
    invalid_arg "Sim_unreliable.run: negative patch_delay";
  (match config.strategy with
   | Sim.Poll p when p < 1 -> invalid_arg "Sim_unreliable.run: poll period < 1"
   | Sim.Poll _ | Sim.Expiration_aware | Sim.Patched -> ());
  let rec windows_ok = function
    | [] -> true
    | [ (a, b) ] -> a < b
    | (a, b) :: ((c, _) :: _ as rest) -> a < b && b <= c && windows_ok rest
  in
  if not (windows_ok config.offline) then
    invalid_arg "Sim_unreliable.run: offline windows unsorted or overlapping";
  if List.exists (fun (a, b) -> a <= 0 && 0 < b) config.offline then
    invalid_arg "Sim_unreliable.run: link must be up at tick 0"

let online config tau =
  not (List.exists (fun (a, b) -> a <= tau && tau < b) config.offline)

let shift_texp delta texp =
  match texp with
  | Time.Fin n -> Time.Fin (n + delta)
  | Time.Inf -> Time.Inf

(* The server ships expiration times shortened by the safety margin. *)
let ship ~margin relation =
  Relation.fold
    (fun t texp acc -> Relation.replace t ~texp:(shift_texp (-margin) texp) acc)
    relation
    (Relation.empty ~arity:(Relation.arity relation))

type patched_state = {
  mutable contents : Relation.t;
  mutable queue : (Tuple.t * Time.t) Heap.t;  (* appear -> (tuple, expire) *)
}

let run ~env ~expr config =
  validate config;
  let metrics = Metrics.create () in
  let expired_served = ref 0 in
  let valid_dropped = ref 0 in
  let blocked = ref 0 in
  let truth tau = Eval.relation_at ~env ~tau:(Time.of_int tau) expr in
  let fetch payload =
    Metrics.record_message metrics ~payload_bytes:0;
    Metrics.record_message metrics ~payload_bytes:(Metrics.relation_bytes payload)
  in
  (* Client state. *)
  let copy = ref (Relation.empty ~arity:(Relation.arity (truth 0))) in
  let deadline = ref Time.Inf in  (* exp-aware refetch time, client clock *)
  let patched =
    { contents = Relation.empty ~arity:(Relation.arity (truth 0)); queue = Heap.empty }
  in
  (* Initial shipment at tick 0 (the link is up). *)
  (match config.strategy with
   | Sim.Poll _ ->
     let payload = ship ~margin:config.margin (truth 0) in
     fetch payload;
     copy := payload
   | Sim.Expiration_aware ->
     let { Eval.relation; texp } = Eval.run ~env ~tau:Time.zero expr in
     let payload = ship ~margin:config.margin relation in
     fetch payload;
     copy := payload;
     deadline := shift_texp (-config.margin) texp
   | Sim.Patched ->
     (match expr with
      | Algebra.Diff (left, right) ->
        let l_rel = Eval.relation_at ~env ~tau:Time.zero left in
        let r_rel = Eval.relation_at ~env ~tau:Time.zero right in
        patched.contents <-
          ship ~margin:config.margin (Ops.diff l_rel r_rel);
        List.iter
          (fun (tuple, texp_s, texp_r) ->
            patched.queue <-
              Heap.insert
                (shift_texp config.patch_delay texp_s)
                (tuple, shift_texp (-config.margin) texp_r)
                patched.queue)
          (Antijoin.critical_tuples Antijoin.Hash l_rel r_rel);
        let payload_bytes =
          Metrics.relation_bytes patched.contents
          + (Heap.cardinal patched.queue * Metrics.tuple_bytes)
        in
        Metrics.record_message metrics ~payload_bytes:0;
        Metrics.record_message metrics ~payload_bytes
      | Algebra.Base _ | Algebra.Select _ | Algebra.Project _
      | Algebra.Product _ | Algebra.Union _ | Algebra.Join _
      | Algebra.Intersect _ | Algebra.Aggregate _ ->
        invalid_arg "Sim_unreliable.run: Patched requires a difference root"));
  for tau = 0 to config.horizon - 1 do
    let client_time = Time.of_int (tau + config.skew) in
    (* Fetch attempts. *)
    (match config.strategy with
     | Sim.Poll period ->
       if tau > 0 && tau mod period = 0 then begin
         if online config tau then begin
           let payload = ship ~margin:config.margin (truth tau) in
           fetch payload;
           Metrics.record_refetch metrics;
           copy := payload
         end
         else incr blocked
       end
     | Sim.Expiration_aware ->
       if Time.(!deadline <= client_time) then begin
         if online config tau then begin
           let { Eval.relation; texp } =
             Eval.run ~env ~tau:(Time.of_int tau) expr
           in
           let payload = ship ~margin:config.margin relation in
           fetch payload;
           Metrics.record_refetch metrics;
           copy := payload;
           deadline := shift_texp (-config.margin) texp
         end
         else incr blocked (* retries every tick until the link returns *)
       end
     | Sim.Patched ->
       let due, rest = Heap.pop_until client_time patched.queue in
       patched.queue <- rest;
       List.iter
         (fun (_appear, (tuple, expire)) ->
           patched.contents <- Relation.add tuple ~texp:expire patched.contents)
         due);
    (* Serve and account. *)
    let serving =
      match config.strategy with
      | Sim.Poll _ | Sim.Expiration_aware -> Relation.exp client_time !copy
      | Sim.Patched -> Relation.exp client_time patched.contents
    in
    let t = truth tau in
    let wrong =
      Relation.fold
        (fun tuple _ n -> if Relation.mem tuple t then n else n + 1)
        serving 0
    in
    let missing =
      Relation.fold
        (fun tuple _ n -> if Relation.mem tuple serving then n else n + 1)
        t 0
    in
    expired_served := !expired_served + wrong;
    valid_dropped := !valid_dropped + missing;
    Metrics.record_tick metrics ~stale:(wrong + missing > 0)
  done;
  { metrics;
    expired_served = !expired_served;
    valid_dropped = !valid_dropped;
    blocked_fetches = !blocked
  }
