(** Unified expiration index: tracks [(id, texp)] registrations and
    reports the ids whose expiration time has passed, supporting the
    eager and lazy removal policies of Section 3.2.

    Three interchangeable backends (compared in the benchmarks):
    - [`Scan]: no auxiliary structure; expiration scans all live entries
      — the baseline a system without expiration support would use;
    - [`Heap]: a binary min-heap with lazy deletion;
    - [`Wheel]: a hierarchical timing wheel with lazy deletion.

    Entries with expiration time [Time.Inf] never expire.  Re-registering
    an id overwrites its expiration time; stale backend entries are
    discarded lazily.  A tuple is expired at [tau] when [texp <= tau]
    (it is absent from [exp_tau]). *)

open Expirel_core

type backend =
  [ `Scan
  | `Heap
  | `Wheel
  ]

type t

val create : ?start:int -> backend -> t
(** [start] (default 0) is the initial clock for the wheel backend. *)

val backend : t -> backend
val size : t -> int
(** Live (unexpired, unremoved) registrations. *)

val add : t -> id:int -> texp:Time.t -> unit
val remove : t -> id:int -> unit
val texp_of : t -> id:int -> Time.t option

val expire_upto : t -> Time.t -> (int * Time.t) list
(** [expire_upto idx tau] removes and returns every live [(id, texp)]
    with [texp <= tau], sorted by [(texp, id)].
    @raise Invalid_argument when the wheel backend is driven backwards *)

val next_expiry : t -> Time.t option
(** Earliest live finite expiration time, if any.  O(n) for [`Scan] and
    [`Wheel]; O(pops) for [`Heap]. *)
