open Expirel_core

type backend =
  [ `Scan
  | `Heap
  | `Wheel
  ]

type state =
  | Scan
  | Heap of Binary_heap.t
  | Wheel of Timer_wheel.t

type t = {
  state : state;
  live : (int, Time.t) Hashtbl.t;
}

let create ?(start = 0) backend =
  let state =
    match backend with
    | `Scan -> Scan
    | `Heap -> Heap (Binary_heap.create ())
    | `Wheel -> Wheel (Timer_wheel.create ~start ())
  in
  { state; live = Hashtbl.create 64 }

let backend t =
  match t.state with
  | Scan -> `Scan
  | Heap _ -> `Heap
  | Wheel _ -> `Wheel

let size t = Hashtbl.length t.live

let add t ~id ~texp =
  Hashtbl.replace t.live id texp;
  match texp, t.state with
  | Time.Inf, _ | _, Scan -> ()
  | Time.Fin n, Heap h -> Binary_heap.push h n id
  | Time.Fin n, Wheel w ->
    (* Expiration at texp means absence from exp_tau for tau >= texp, so
       the wheel fires the entry at tick texp. *)
    Timer_wheel.add w ~at:(max n (Timer_wheel.now w)) id

let remove t ~id = Hashtbl.remove t.live id
let texp_of t ~id = Hashtbl.find_opt t.live id

(* An entry popped from a backend is authoritative only if the id is
   still live with that exact expiration time (lazy deletion). *)
let confirm t tau (time, id) =
  match Hashtbl.find_opt t.live id with
  | Some (Time.Fin n) when n <= time && Time.(Time.Fin n <= tau) ->
    Hashtbl.remove t.live id;
    Some (id, Time.Fin n)
  | Some _ | None -> None

let expire_upto t tau =
  match t.state, tau with
  | Scan, _ ->
    let due =
      Hashtbl.fold
        (fun id texp acc -> if Time.(texp <= tau) then (id, texp) :: acc else acc)
        t.live []
    in
    List.iter (fun (id, _) -> Hashtbl.remove t.live id) due;
    List.sort (fun (i1, e1) (i2, e2) ->
        match Time.compare e1 e2 with
        | 0 -> Int.compare i1 i2
        | c -> c)
      due
  | Heap _, Time.Inf | Wheel _, Time.Inf ->
    invalid_arg "Expiration_index.expire_upto: infinite bound"
  | Heap h, Time.Fin bound ->
    List.filter_map (confirm t tau) (Binary_heap.pop_until h bound)
  | Wheel w, Time.Fin bound ->
    if bound < Timer_wheel.now w then
      invalid_arg "Expiration_index.expire_upto: moving backwards"
    else List.filter_map (confirm t tau) (Timer_wheel.advance w ~to_:bound)

let next_expiry t =
  match t.state with
  | Scan | Wheel _ ->
    Hashtbl.fold
      (fun _ texp acc ->
        if Time.is_finite texp then
          Some (match acc with
            | None -> texp
            | Some best -> Time.min best texp)
        else acc)
      t.live None
  | Heap h ->
    (* Drop stale heap heads until a live one surfaces. *)
    let rec go () =
      match Binary_heap.peek h with
      | None -> None
      | Some (time, id) ->
        (match Hashtbl.find_opt t.live id with
         | Some (Time.Fin n) when n = time -> Some (Time.Fin n)
         | Some _ | None ->
           let (_ : (int * int) option) = Binary_heap.pop h in
           go ())
    in
    go ()
