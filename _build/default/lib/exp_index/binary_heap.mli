(** Mutable array-based binary min-heap of [(time, id)] pairs, ordered by
    time (ties by id for determinism).  One of the expiration-index
    backends offering the real-time guarantees the paper relies on
    (Section 1, citation [24]). *)

type t

val create : ?capacity:int -> unit -> t
val size : t -> int
val is_empty : t -> bool

val push : t -> int -> int -> unit
(** [push h time id]. *)

val peek : t -> (int * int) option
(** Smallest [(time, id)] without removing it. *)

val pop : t -> (int * int) option

val pop_until : t -> int -> (int * int) list
(** Removes and returns, in order, every entry with time [<= bound]. *)

val clear : t -> unit
