lib/exp_index/binary_heap.ml: Array List
