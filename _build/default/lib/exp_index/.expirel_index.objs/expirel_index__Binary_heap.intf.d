lib/exp_index/binary_heap.mli:
