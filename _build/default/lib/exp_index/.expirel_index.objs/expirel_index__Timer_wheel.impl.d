lib/exp_index/timer_wheel.ml: Array List
