lib/exp_index/expiration_index.ml: Binary_heap Expirel_core Hashtbl Int List Time Timer_wheel
