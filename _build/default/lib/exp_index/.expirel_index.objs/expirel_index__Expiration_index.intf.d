lib/exp_index/expiration_index.mli: Expirel_core Time
