lib/exp_index/timer_wheel.mli:
