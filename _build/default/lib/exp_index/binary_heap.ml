type t = {
  mutable times : int array;
  mutable ids : int array;
  mutable size : int;
}

let create ?(capacity = 16) () =
  let capacity = max capacity 1 in
  { times = Array.make capacity 0; ids = Array.make capacity 0; size = 0 }

let size h = h.size
let is_empty h = h.size = 0

let less h i j =
  h.times.(i) < h.times.(j)
  || (h.times.(i) = h.times.(j) && h.ids.(i) < h.ids.(j))

let swap h i j =
  let t = h.times.(i) in
  h.times.(i) <- h.times.(j);
  h.times.(j) <- t;
  let d = h.ids.(i) in
  h.ids.(i) <- h.ids.(j);
  h.ids.(j) <- d

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less h i parent then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && less h l !smallest then smallest := l;
  if r < h.size && less h r !smallest then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let grow h =
  let capacity = 2 * Array.length h.times in
  let times = Array.make capacity 0 and ids = Array.make capacity 0 in
  Array.blit h.times 0 times 0 h.size;
  Array.blit h.ids 0 ids 0 h.size;
  h.times <- times;
  h.ids <- ids

let push h time id =
  if h.size = Array.length h.times then grow h;
  h.times.(h.size) <- time;
  h.ids.(h.size) <- id;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h = if h.size = 0 then None else Some (h.times.(0), h.ids.(0))

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.times.(0), h.ids.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.times.(0) <- h.times.(h.size);
      h.ids.(0) <- h.ids.(h.size);
      sift_down h 0
    end;
    Some top
  end

let pop_until h bound =
  let rec go acc =
    match peek h with
    | Some (time, _) when time <= bound ->
      (match pop h with
       | Some entry -> go (entry :: acc)
       | None -> List.rev acc)
    | Some _ | None -> List.rev acc
  in
  go []

let clear h = h.size <- 0
