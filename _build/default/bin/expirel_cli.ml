(* expirel: an interactive shell (and script runner) for the
   expiration-time-enabled database.

   Usage:
     expirel_cli                 # REPL on stdin
     expirel_cli -e "SELECT ..." # run one script string
     expirel_cli -f script.sqlx  # run a script file
     expirel_cli --lazy          # lazy removal policy (Section 3.2)
     expirel_cli --index wheel   # expiration-index backend *)

open Expirel_sqlx

let print_result = function
  | Ok outcome -> print_endline (Interp.render outcome)
  | Error msg -> Printf.printf "error: %s\n" msg

let run_script t text = List.iter print_result (Interp.exec_script t text)

let banner =
  "expirel — expiration times for data management (ICDE 2006)\n\
   statements end with ';'.  Try:\n\
  \  CREATE TABLE pol (uid, deg);\n\
  \  INSERT INTO pol VALUES (1, 25) EXPIRES 10;\n\
  \  CREATE VIEW v AS SELECT deg, COUNT(*) FROM pol GROUP BY deg;\n\
  \  ADVANCE TO 12; SHOW VIEW v;\n\
   ^D to quit."

let repl t =
  print_endline banner;
  let buffer = Buffer.create 256 in
  let rec loop () =
    if Buffer.length buffer = 0 then print_string "expirel> "
    else print_string "......> ";
    flush stdout;
    match input_line stdin with
    | exception End_of_file -> print_newline ()
    | line ->
      Buffer.add_string buffer line;
      Buffer.add_char buffer '\n';
      let text = Buffer.contents buffer in
      if String.contains line ';' then begin
        Buffer.clear buffer;
        run_script t text
      end;
      loop ()
  in
  loop ()

let main policy backend script file =
  let policy =
    if policy then Expirel_storage.Database.Lazy else Expirel_storage.Database.Eager
  in
  let backend =
    match backend with
    | "scan" -> `Scan
    | "wheel" -> `Wheel
    | "heap" -> `Heap
    | other ->
      Printf.eprintf "unknown index backend %S (scan|heap|wheel)\n" other;
      exit 2
  in
  let t = Interp.create ~policy ~backend () in
  match script, file with
  | Some text, _ -> run_script t text
  | None, Some path ->
    let ic = open_in path in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    run_script t text
  | None, None -> repl t

open Cmdliner

let lazy_flag =
  Arg.(value & flag & info [ "lazy" ] ~doc:"Use lazy removal of expired tuples.")

let backend_arg =
  Arg.(value & opt string "heap"
       & info [ "index" ] ~docv:"BACKEND"
           ~doc:"Expiration index backend: scan, heap or wheel.")

let script_arg =
  Arg.(value & opt (some string) None
       & info [ "e" ] ~docv:"SCRIPT" ~doc:"Execute the given statements and exit.")

let file_arg =
  Arg.(value & opt (some string) None
       & info [ "f" ] ~docv:"FILE" ~doc:"Execute the statements in FILE and exit.")

let cmd =
  let doc = "interactive shell for the expiration-time-enabled database" in
  Cmd.v
    (Cmd.info "expirel_cli" ~doc)
    Term.(const main $ lazy_flag $ backend_arg $ script_arg $ file_arg)

let () = exit (Cmd.eval cmd)
