(* expirel: an interactive shell (and script runner) for the
   expiration-time-enabled database, plus its network server and
   client.

   Usage:
     expirel_cli                 # REPL on stdin
     expirel_cli -e "SELECT ..." # run one script string
     expirel_cli -f script.sqlx  # run a script file
     expirel_cli --lazy          # lazy removal policy (Section 3.2)
     expirel_cli --index wheel   # expiration-index backend
     expirel_cli serve           # TCP server on the wire protocol
     expirel_cli serve --data-dir d  # durable (WAL + snapshots), replicable
     expirel_cli replicate --from HOST:PORT --data-dir d  # follow a primary
     expirel_cli connect         # remote REPL against a server
     expirel_cli stats --prom    # Prometheus exposition from a server *)

open Expirel_sqlx
open Expirel_server

let print_result = function
  | Ok outcome -> print_endline (Interp.render outcome)
  | Error msg -> Printf.printf "error: %s\n" msg

let run_script t text = List.iter print_result (Interp.exec_script t text)

let banner =
  "expirel — expiration times for data management (ICDE 2006)\n\
   statements end with ';'.  Try:\n\
  \  CREATE TABLE pol (uid, deg);\n\
  \  INSERT INTO pol VALUES (1, 25) EXPIRES 10;\n\
  \  CREATE VIEW v AS SELECT deg, COUNT(*) FROM pol GROUP BY deg;\n\
  \  ADVANCE TO 12; SHOW VIEW v;\n\
   ^D to quit."

let repl t =
  print_endline banner;
  let buffer = Buffer.create 256 in
  let rec loop () =
    if Buffer.length buffer = 0 then print_string "expirel> "
    else print_string "......> ";
    flush stdout;
    match input_line stdin with
    | exception End_of_file -> print_newline ()
    | line ->
      Buffer.add_string buffer line;
      Buffer.add_char buffer '\n';
      let text = Buffer.contents buffer in
      if String.contains line ';' then begin
        Buffer.clear buffer;
        run_script t text
      end;
      loop ()
  in
  loop ()

let parse_policy lazy_ =
  if lazy_ then Expirel_storage.Database.Lazy else Expirel_storage.Database.Eager

let parse_backend = function
  | "scan" -> `Scan
  | "wheel" -> `Wheel
  | "heap" -> `Heap
  | other ->
    Printf.eprintf "unknown index backend %S (scan|heap|wheel)\n" other;
    exit 2

let main policy backend script file =
  let policy = parse_policy policy in
  let backend = parse_backend backend in
  let t = Interp.create ~policy ~backend () in
  match script, file with
  | Some text, _ -> run_script t text
  | None, Some path ->
    let ic = open_in path in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    run_script t text
  | None, None -> repl t

(* ---------- serve: the networked database ---------- *)

let serve policy backend host port max_conns timeout data_dir node_name =
  let config =
    { Server.host;
      port;
      max_connections = max_conns;
      request_timeout = timeout;
      policy = parse_policy policy;
      backend = parse_backend backend;
      data_dir;
      read_only = false;
      node_name;
      health_rules = Server.default_health_rules
    }
  in
  let server = Server.create ~config () in
  Server.start server;
  Printf.printf "expirel_server listening on %s:%d (%d connection(s) max%s)\n%!"
    host (Server.port server) max_conns
    (match data_dir with
     | Some dir -> Printf.sprintf ", durable in %s" dir
     | None -> "");
  Server.wait server

(* ---------- replicate: follow a primary's log ---------- *)

let parse_endpoint s =
  match String.rindex_opt s ':' with
  | Some i ->
    let host = String.sub s 0 i in
    let port = String.sub s (i + 1) (String.length s - i - 1) in
    (match int_of_string_opt port with
     | Some p when host <> "" -> (host, p)
     | Some _ | None ->
       Printf.eprintf "bad endpoint %S (expected HOST:PORT)\n" s;
       exit 2)
  | None ->
    Printf.eprintf "bad endpoint %S (expected HOST:PORT)\n" s;
    exit 2

let replicate from data_dir host port replica_id =
  let primary_host, primary_port = parse_endpoint from in
  let replica =
    Expirel_repl.Replica.create ~host ~port ?replica_id ~data_dir ~primary_host
      ~primary_port ()
  in
  Expirel_repl.Replica.start replica;
  Printf.printf
    "expirel replica of %s:%d serving reads on %s:%d (position %d)\n%!"
    primary_host primary_port host
    (Expirel_repl.Replica.port replica)
    (Expirel_repl.Replica.position replica);
  Server.wait (Expirel_repl.Replica.server replica)

(* ---------- connect: a remote REPL over the wire protocol ---------- *)

let print_events client =
  List.iter
    (fun e -> print_endline (Wire.render_response (Wire.Event e)))
    (Client.events client)

let print_slow_queries client n =
  match Client.slow_queries client n with
  | Ok qs -> print_endline (Wire.render_response (Wire.Slow_queries_reply qs))
  | Error e -> Printf.printf "error: %s\n" e

let print_traces client n =
  match Client.traces client n with
  | Ok es -> print_endline (Wire.render_response (Wire.Traces_reply es))
  | Error e -> Printf.printf "error: %s\n" e

let print_health client =
  match Client.health client with
  | Ok (level, firing) ->
    print_endline (Wire.render_response (Wire.Health_reply { level; firing }))
  | Error e -> Printf.printf "error: %s\n" e

let print_horizon client table =
  match Client.horizon ?table client with
  | Ok report -> print_endline (Expirel_obs.Horizon.render report)
  | Error e -> Printf.printf "error: %s\n" e

let send_statement client text =
  let text = String.trim text in
  if text <> "" then begin
    let upper = String.uppercase_ascii text in
    let starts p =
      String.length upper >= String.length p
      && String.sub upper 0 (String.length p) = p
    in
    (if upper = "STATS" then
       match Client.stats client with
       | Ok s -> print_endline (Wire.render_response (Wire.Stats_reply s))
       | Error e -> Printf.printf "error: %s\n" e
     else if upper = "METRICS" then
       match Client.metrics client with
       | Ok exposition -> print_string exposition
       | Error e -> Printf.printf "error: %s\n" e
     else if upper = "SLOW" || starts "SLOW " then begin
       let n =
         if upper = "SLOW" then Some 10
         else
           int_of_string_opt
             (String.trim (String.sub text 5 (String.length text - 5)))
       in
       match n with
       | Some n when n >= 0 -> print_slow_queries client n
       | Some _ | None -> print_endline "usage: SLOW [N];"
     end
     else if upper = "TRACE" || starts "TRACE " then begin
       let n =
         if upper = "TRACE" then Some 10
         else
           int_of_string_opt
             (String.trim (String.sub text 6 (String.length text - 6)))
       in
       match n with
       | Some n when n >= 0 -> print_traces client n
       | Some _ | None -> print_endline "usage: TRACE [N];"
     end
     else if upper = "HEALTH" then print_health client
     else if upper = "HORIZON" || starts "HORIZON " then begin
       let table =
         if upper = "HORIZON" then None
         else Some (String.trim (String.sub text 8 (String.length text - 8)))
       in
       print_horizon client table
     end
     else if upper = "PING" then
       match Client.ping client with
       | Ok () -> print_endline "pong"
       | Error e -> Printf.printf "error: %s\n" e
     else
       match Client.exec client text with
       | Ok response -> print_endline (Wire.render_response response)
       | Error e -> Printf.printf "error: %s\n" e);
    print_events client
  end

let send_script client text =
  String.split_on_char ';' text |> List.iter (send_statement client)

let remote_banner host port =
  Printf.sprintf
    "connected to expirel_server at %s:%d\n\
     statements end with ';'.  Also: SUBSCRIBE name AS SELECT ...;\n\
    \  UNSUBSCRIBE name;  STATS;  METRICS;  SLOW [N];  TRACE [N];\n\
    \  HEALTH;  HORIZON [t];  PING;  ^D to quit."
    host port

let remote_repl client host port =
  print_endline (remote_banner host port);
  let buffer = Buffer.create 256 in
  let rec loop () =
    if Buffer.length buffer = 0 then print_string "expirel@remote> "
    else print_string "..............> ";
    flush stdout;
    (* Surface any events pushed while we were idle. *)
    List.iter
      (fun e -> print_endline (Wire.render_response (Wire.Event e)))
      (Client.poll_events client ~timeout:0.01);
    match input_line stdin with
    | exception End_of_file -> print_newline ()
    | line ->
      Buffer.add_string buffer line;
      Buffer.add_char buffer '\n';
      if String.contains line ';' then begin
        let text = Buffer.contents buffer in
        Buffer.clear buffer;
        (* SUBSCRIBE / UNSUBSCRIBE are wire commands, not sqlx. *)
        String.split_on_char ';' text
        |> List.iter (fun stmt ->
               let trimmed = String.trim stmt in
               let upper = String.uppercase_ascii trimmed in
               let starts p =
                 String.length upper >= String.length p
                 && String.sub upper 0 (String.length p) = p
               in
               if starts "SUBSCRIBE " then begin
                 match
                   (* SUBSCRIBE <name> AS <query> *)
                   let rest =
                     String.sub trimmed 10 (String.length trimmed - 10)
                   in
                   let rest = String.trim rest in
                   (match String.index_opt rest ' ' with
                    | None -> None
                    | Some i ->
                      let name = String.sub rest 0 i in
                      let tail =
                        String.trim (String.sub rest i (String.length rest - i))
                      in
                      let tail_up = String.uppercase_ascii tail in
                      if
                        String.length tail_up >= 3
                        && String.sub tail_up 0 3 = "AS "
                      then Some (name, String.sub tail 3 (String.length tail - 3))
                      else None)
                 with
                 | None ->
                   print_endline "usage: SUBSCRIBE <name> AS SELECT ...;"
                 | Some (name, query) ->
                   (match Client.subscribe client ~name ~query with
                    | Ok () -> Printf.printf "subscribed %s\n" name
                    | Error e -> Printf.printf "error: %s\n" e)
               end
               else if starts "UNSUBSCRIBE " then begin
                 let name =
                   String.trim
                     (String.sub trimmed 12 (String.length trimmed - 12))
                 in
                 match Client.unsubscribe client name with
                 | Ok () -> Printf.printf "unsubscribed %s\n" name
                 | Error e -> Printf.printf "error: %s\n" e
               end
               else send_statement client stmt)
      end;
      loop ()
  in
  loop ()

(* ---------- stats: one-shot metrics fetch against a server ---------- *)

let stats_main host port prom slow =
  let client =
    try Client.connect ~host ~port ()
    with Unix.Unix_error (err, _, _) ->
      Printf.eprintf "error: cannot connect to %s:%d: %s\n" host port
        (Unix.error_message err);
      exit 1
  in
  Fun.protect
    ~finally:(fun () -> Client.close client)
    (fun () ->
      let fail msg =
        Printf.eprintf "error: %s\n" msg;
        exit 1
      in
      (if prom then
         match Client.metrics client with
         | Ok exposition -> print_string exposition
         | Error e -> fail e
       else
         match Client.stats client with
         | Ok s -> print_endline (Wire.render_response (Wire.Stats_reply s))
         | Error e -> fail e);
      match slow with
      | None -> ()
      | Some n ->
        (match Client.slow_queries client n with
         | Ok qs ->
           print_endline (Wire.render_response (Wire.Slow_queries_reply qs))
         | Error e -> fail e))

(* ---------- trace: recent request traces, optionally as Chrome JSON ---------- *)

let store_entry (e : Wire.trace_entry) =
  { Expirel_obs.Trace_store.node = e.node;
    trace_id = e.entry_trace_id;
    name = e.entry_name;
    started_at = e.started_at;
    total_us = e.entry_total_us;
    spans =
      List.map
        (fun (s : Wire.span) ->
          { Expirel_obs.Trace.id = s.span_id;
            parent = s.parent_id;
            name = s.span_name;
            start_us = s.start_us;
            duration_us = s.duration_us;
            labels = s.labels
          })
        e.entry_spans
  }

let fetch_traces ~host ~port n =
  let client =
    try Client.connect ~host ~port ()
    with Unix.Unix_error (err, _, _) ->
      Printf.eprintf "error: cannot connect to %s:%d: %s\n" host port
        (Unix.error_message err);
      exit 1
  in
  Fun.protect
    ~finally:(fun () -> Client.close client)
    (fun () ->
      match Client.traces client n with
      | Ok es -> es
      | Error e ->
        Printf.eprintf "error: %s\n" e;
        exit 1)

(* [also] lists further nodes (HOST:PORT) whose recent traces merge into
   the same export: a request that fanned out over the fleet renders as
   one timeline with a lane per node. *)
let trace_main host port n also json trace_id =
  let entries =
    List.concat_map
      (fun (host, port) -> fetch_traces ~host ~port n)
      ((host, port) :: List.map parse_endpoint also)
  in
  let entries =
    match trace_id with
    | None -> entries
    | Some id ->
      List.filter (fun (e : Wire.trace_entry) -> e.entry_trace_id = id) entries
  in
  if json then
    print_endline (Expirel_obs.Trace_export.to_json (List.map store_entry entries))
  else
    print_endline (Wire.render_response (Wire.Traces_reply entries))

(* ---------- health: one-shot rule evaluation against a server ---------- *)

let health_main host port =
  let client =
    try Client.connect ~host ~port ()
    with Unix.Unix_error (err, _, _) ->
      Printf.eprintf "error: cannot connect to %s:%d: %s\n" host port
        (Unix.error_message err);
      exit 1
  in
  Fun.protect
    ~finally:(fun () -> Client.close client)
    (fun () ->
      match Client.health client with
      | Ok (level, firing) ->
        print_endline
          (Wire.render_response (Wire.Health_reply { level; firing }));
        (* Monitoring-friendly exit status: ok 0, degraded 1, critical 2. *)
        (match level with
         | Wire.Health_ok -> ()
         | Wire.Health_degraded -> exit 1
         | Wire.Health_critical -> exit 2)
      | Error e ->
        Printf.eprintf "error: %s\n" e;
        exit 1)

(* ---------- horizon: one-shot expiration forecast against a server ---------- *)

let horizon_main host port table prom =
  let client =
    try Client.connect ~host ~port ()
    with Unix.Unix_error (err, _, _) ->
      Printf.eprintf "error: cannot connect to %s:%d: %s\n" host port
        (Unix.error_message err);
      exit 1
  in
  Fun.protect
    ~finally:(fun () -> Client.close client)
    (fun () ->
      match Client.horizon ?table client with
      | Ok report ->
        if prom then
          print_string
            (Expirel_obs.Prometheus.render (Expirel_obs.Horizon.metrics report))
        else print_endline (Expirel_obs.Horizon.render report)
      | Error e ->
        Printf.eprintf "error: %s\n" e;
        exit 1)

let connect_main host port script =
  let client =
    try Client.connect ~host ~port ()
    with Unix.Unix_error (err, _, _) ->
      Printf.eprintf "error: cannot connect to %s:%d: %s\n" host port
        (Unix.error_message err);
      exit 1
  in
  Fun.protect
    ~finally:(fun () -> Client.close client)
    (fun () ->
      match script with
      | Some text -> send_script client text
      | None -> remote_repl client host port)

(* ---------- cluster: N shard servers + a coordinator REPL ---------- *)

module Coordinator = Expirel_cluster.Coordinator

let cluster_serve policy backend host base_port shards =
  if shards < 1 then begin
    Printf.eprintf "error: need at least one shard\n";
    exit 2
  end;
  let servers =
    List.init shards (fun i ->
        let config =
          { Server.default_config with
            host;
            port = (if base_port = 0 then 0 else base_port + i);
            policy = parse_policy policy;
            backend = parse_backend backend;
            node_name = Printf.sprintf "shard-%d" i
          }
        in
        Server.create ~config ())
  in
  List.iteri
    (fun i server ->
      Server.start server;
      Printf.printf "shard %d listening on %s:%d\n%!" i host
        (Server.port server))
    servers;
  List.iter Server.wait servers

let print_shard_summaries coord =
  List.iter
    (fun (id, summary, reachable) ->
      Printf.printf "shard %d: %s%s\n" id
        (if reachable then "reachable" else "unreachable")
        (match summary with
         | None -> ", partition unknown"
         | Some { Wire.live_rows; min_texp; max_texp } ->
           Printf.sprintf ", %d live row(s), texp in [%s, %s]" live_rows
             (Expirel_core.Time.to_string min_texp)
             (Expirel_core.Time.to_string max_texp)))
    (Coordinator.summaries coord)

let cluster_statement coord text =
  let text = String.trim text in
  if text <> "" then begin
    let upper = String.uppercase_ascii text in
    let starts p =
      String.length upper >= String.length p
      && String.sub upper 0 (String.length p) = p
    in
    if upper = "METRICS" then print_string (Coordinator.metrics coord)
    else if upper = "HEALTH" then begin
      let level, firing = Coordinator.health coord in
      print_endline (Wire.render_response (Wire.Health_reply { level; firing }))
    end
    else if upper = "SHARDS" then print_shard_summaries coord
    else if upper = "HORIZON" || starts "HORIZON " then begin
      let table =
        if upper = "HORIZON" then None
        else Some (String.trim (String.sub text 8 (String.length text - 8)))
      in
      match Coordinator.horizon ?table coord with
      | Ok (report, per_shard) ->
        print_endline (Expirel_obs.Horizon.render ~per_shard report)
      | Error e -> Printf.printf "error: %s\n" e
    end
    else if upper = "TRACE" || starts "TRACE " then begin
      let n =
        if upper = "TRACE" then Some 10
        else
          int_of_string_opt
            (String.trim (String.sub text 6 (String.length text - 6)))
      in
      match n with
      | Some n when n >= 0 ->
        print_endline
          (Wire.render_response
             (Wire.Traces_reply (Coordinator.recent_traces coord n)))
      | Some _ | None -> print_endline "usage: TRACE [N];"
    end
    else if starts "ADD SHARD " then begin
      let host, port =
        parse_endpoint
          (String.trim (String.sub text 10 (String.length text - 10)))
      in
      match Coordinator.add_shard coord { host; port } with
      | Ok msg -> print_endline msg
      | Error e -> Printf.printf "error: %s\n" e
    end
    else if starts "REMOVE SHARD " then begin
      match
        int_of_string_opt
          (String.trim (String.sub text 13 (String.length text - 13)))
      with
      | Some id ->
        (match Coordinator.remove_shard coord id with
         | Ok msg -> print_endline msg
         | Error e -> Printf.printf "error: %s\n" e)
      | None -> print_endline "usage: REMOVE SHARD <id>;"
    end
    else print_endline (Wire.render_response (Coordinator.exec coord text))
  end

let cluster_connect shard_args script =
  let endpoints =
    List.map
      (fun s ->
        let host, port = parse_endpoint s in
        { Coordinator.host; port })
      shard_args
  in
  if endpoints = [] then begin
    Printf.eprintf "error: give at least one --shard HOST:PORT\n";
    exit 2
  end;
  let coord = Coordinator.create ~shards:endpoints () in
  Fun.protect
    ~finally:(fun () -> Coordinator.close coord)
    (fun () ->
      match script with
      | Some text ->
        String.split_on_char ';' text |> List.iter (cluster_statement coord)
      | None ->
        Printf.printf
          "coordinator over %d shard(s) (map v%d)\n\
           statements end with ';'.  Also: METRICS;  HEALTH;  SHARDS;\n\
          \  HORIZON [t];  TRACE [N];  ADD SHARD HOST:PORT;  REMOVE SHARD \
           ID;  ^D to quit.\n"
          (List.length endpoints)
          (Coordinator.shard_map coord).Wire.map_version;
        let buffer = Buffer.create 256 in
        let rec loop () =
          if Buffer.length buffer = 0 then print_string "expirel@cluster> "
          else print_string "...............> ";
          flush stdout;
          match input_line stdin with
          | exception End_of_file -> print_newline ()
          | line ->
            Buffer.add_string buffer line;
            Buffer.add_char buffer '\n';
            if String.contains line ';' then begin
              let text = Buffer.contents buffer in
              Buffer.clear buffer;
              String.split_on_char ';' text
              |> List.iter (cluster_statement coord)
            end;
            loop ()
        in
        loop ())

open Cmdliner

let lazy_flag =
  Arg.(value & flag & info [ "lazy" ] ~doc:"Use lazy removal of expired tuples.")

let backend_arg =
  Arg.(value & opt string "heap"
       & info [ "index" ] ~docv:"BACKEND"
           ~doc:"Expiration index backend: scan, heap or wheel.")

let script_arg =
  Arg.(value & opt (some string) None
       & info [ "e" ] ~docv:"SCRIPT" ~doc:"Execute the given statements and exit.")

let file_arg =
  Arg.(value & opt (some string) None
       & info [ "f" ] ~docv:"FILE" ~doc:"Execute the statements in FILE and exit.")

let host_arg =
  Arg.(value & opt string "127.0.0.1"
       & info [ "host" ] ~docv:"HOST" ~doc:"Address to bind / connect to.")

let port_arg ~default =
  Arg.(value & opt int default
       & info [ "port" ] ~docv:"PORT"
           ~doc:"TCP port (0 picks an ephemeral one when serving).")

let max_conns_arg =
  Arg.(value & opt int 64
       & info [ "max-connections" ] ~docv:"N"
           ~doc:"Concurrent connection cap; excess clients are refused.")

let timeout_arg =
  Arg.(value & opt float 5.0
       & info [ "request-timeout" ] ~docv:"SECONDS"
           ~doc:"Per-request deadline for acquiring the database lock.")

let data_dir_arg =
  Arg.(value & opt (some string) None
       & info [ "data-dir" ] ~docv:"DIR"
           ~doc:"Durable storage directory (WAL + snapshots); enables \
                 CHECKPOINT and replication.  Must exist.")

let node_name_arg =
  Arg.(value & opt string "expirel"
       & info [ "node-name" ] ~docv:"NAME"
           ~doc:"How this node identifies itself in exported traces \
                 (give primary and replicas distinct names).")

let serve_cmd =
  let doc = "run the expirel TCP server (framed wire protocol)" in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(const serve $ lazy_flag $ backend_arg $ host_arg
          $ port_arg ~default:Expirel_server.Client.default_port
          $ max_conns_arg $ timeout_arg $ data_dir_arg $ node_name_arg)

let replicate_cmd =
  let doc = "follow a primary's log and serve expiration-exact reads" in
  let from_arg =
    Arg.(required & opt (some string) None
         & info [ "from" ] ~docv:"HOST:PORT" ~doc:"The primary to replicate.")
  in
  let replica_data_dir_arg =
    Arg.(required & opt (some string) None
         & info [ "data-dir" ] ~docv:"DIR"
             ~doc:"This replica's own durable directory (its position \
                   survives restarts).  Must exist.")
  in
  let replica_id_arg =
    Arg.(value & opt (some string) None
         & info [ "replica-id" ] ~docv:"ID"
             ~doc:"Name in the primary's follower registry (default: the \
                   data directory's basename).")
  in
  Cmd.v
    (Cmd.info "replicate" ~doc)
    Term.(const replicate $ from_arg $ replica_data_dir_arg $ host_arg
          $ port_arg ~default:0 $ replica_id_arg)

let stats_cmd =
  let doc = "fetch a running server's metrics" in
  let prom_flag =
    Arg.(value & flag
         & info [ "prom" ]
             ~doc:"Emit the Prometheus text-format exposition instead of \
                   the STATS summary.")
  in
  let slow_arg =
    Arg.(value & opt (some int) None
         & info [ "slow" ] ~docv:"N"
             ~doc:"Also print the N slowest statements with their span \
                   breakdowns.")
  in
  Cmd.v
    (Cmd.info "stats" ~doc)
    Term.(const stats_main $ host_arg
          $ port_arg ~default:Expirel_server.Client.default_port $ prom_flag
          $ slow_arg)

let trace_cmd =
  let doc = "fetch recent request traces, optionally as Chrome trace JSON" in
  let n_arg =
    Arg.(value & opt int 10
         & info [ "n" ] ~docv:"N" ~doc:"How many recent traces per node.")
  in
  let also_arg =
    Arg.(value & opt_all string []
         & info [ "also" ] ~docv:"HOST:PORT"
             ~doc:"Further nodes whose recent traces merge into the same \
                   output (repeatable) — a cross-node request renders as \
                   one timeline.")
  in
  let json_flag =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit Chrome trace-event JSON (chrome://tracing, \
                   Perfetto, speedscope) instead of text.")
  in
  let trace_id_arg =
    Arg.(value & opt (some string) None
         & info [ "trace-id" ] ~docv:"ID"
             ~doc:"Keep only entries with this trace id.")
  in
  Cmd.v
    (Cmd.info "trace" ~doc)
    Term.(const trace_main $ host_arg
          $ port_arg ~default:Expirel_server.Client.default_port $ n_arg
          $ also_arg $ json_flag $ trace_id_arg)

let health_cmd =
  let doc =
    "evaluate a running server's health rules (exit 0 ok / 1 degraded / \
     2 critical)"
  in
  Cmd.v
    (Cmd.info "health" ~doc)
    Term.(const health_main $ host_arg
          $ port_arg ~default:Expirel_server.Client.default_port)

let horizon_cmd =
  let doc =
    "fetch a running server's expiration forecast (rows by ticks-to-expiry, \
     subscription fan-out, churn)"
  in
  let table_arg =
    Arg.(value & opt (some string) None
         & info [ "table" ] ~docv:"TABLE"
             ~doc:"Restrict the forecast to one table.")
  in
  let prom_flag =
    Arg.(value & flag
         & info [ "prom" ]
             ~doc:"Emit the Prometheus text-format page instead of the \
                   line-oriented summary.")
  in
  Cmd.v
    (Cmd.info "horizon" ~doc)
    Term.(const horizon_main $ host_arg
          $ port_arg ~default:Expirel_server.Client.default_port $ table_arg
          $ prom_flag)

let connect_cmd =
  let doc = "connect to a running expirel server (remote REPL)" in
  Cmd.v
    (Cmd.info "connect" ~doc)
    Term.(const connect_main $ host_arg
          $ port_arg ~default:Expirel_server.Client.default_port $ script_arg)

let cluster_cmd =
  let doc = "run or drive a sharded cluster of expirel servers" in
  let serve =
    let shards_arg =
      Arg.(value & opt int 3
           & info [ "shards" ] ~docv:"N" ~doc:"How many shard servers to run.")
    in
    let base_port_arg =
      Arg.(value & opt int 7731
           & info [ "base-port" ] ~docv:"PORT"
               ~doc:"Shard $(i,i) listens on PORT+$(i,i) (0 picks \
                     ephemeral ports).")
    in
    Cmd.v
      (Cmd.info "serve" ~doc:"run N shard servers in one process")
      Term.(const cluster_serve $ lazy_flag $ backend_arg $ host_arg
            $ base_port_arg $ shards_arg)
  in
  let connect =
    let shard_list_arg =
      Arg.(value & opt_all string []
           & info [ "shard" ] ~docv:"HOST:PORT"
               ~doc:"A shard endpoint (repeat once per shard; order \
                     assigns shard ids).")
    in
    Cmd.v
      (Cmd.info "connect"
         ~doc:"coordinator REPL: routed writes, scatter-gather reads")
      Term.(const cluster_connect $ shard_list_arg $ script_arg)
  in
  Cmd.group (Cmd.info "cluster" ~doc) [ serve; connect ]

let cmd =
  let doc = "interactive shell for the expiration-time-enabled database" in
  let default = Term.(const main $ lazy_flag $ backend_arg $ script_arg $ file_arg) in
  Cmd.group ~default (Cmd.info "expirel_cli" ~doc)
    [ serve_cmd; replicate_cmd; connect_cmd; stats_cmd; trace_cmd; health_cmd;
      horizon_cmd; cluster_cmd ]

let () = exit (Cmd.eval cmd)
