(* Experiment exp-repl: the Section 1 traffic/consistency trade-off of
   exp_dist, replayed on real sockets.  A remote read cache can stay
   fresh by polling the primary (refetching the whole answer every k
   ticks, stale in between) or by being a WAL-shipped replica whose own
   clock expires tuples at their exact logical times.

   Expected shape: per-tick polling is exact but pays a full refetch
   per tick; slower polling trades exactness for traffic (it both
   serves tuples the primary already expired and misses nothing else —
   the workload here is insert-then-expire); the replica is exact at
   every tick for one shipped record per mutation. *)

open Expirel_core
open Expirel_server
open Expirel_repl

let ticks = 40
let tuples = 64

(* Expirations spread over twice the horizon: at any tick some tuples
   have expired, some are about to, some outlive the run. *)
let texp_of i = 2 + (i * 7 mod (2 * ticks))

(* The true answer at tick [t], known in closed form. *)
let truth t =
  List.filter (fun i -> texp_of i > t) (List.init tuples Fun.id)

let with_temp_dir f =
  let dir = Filename.temp_dir "expirel" "bench" in
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun file -> Sys.remove (Filename.concat dir file))
        (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let ok = function
  | Ok v -> v
  | Error e -> failwith e

let uids_of = function
  | Wire.Rows { rows; _ } ->
    List.sort compare
      (List.filter_map
         (fun (row, _) ->
           match row with
           | Value.Int uid :: _ -> Some uid
           | _ -> None)
         rows)
  | r -> failwith ("expected rows, got " ^ Wire.render_response r)

let bytes_out admin = (ok (Client.stats admin)).Wire.bytes_out

(* Runs one strategy against a fresh primary; [serve] is called once
   per tick after the clock advanced and must return the uid set the
   cache would answer with.  Returns (messages, bytes, stale ticks,
   stale tuples) where bytes is the primary's outbound traffic for the
   strategy (the identical load + ADVANCE traffic is subtracted out via
   a baseline measured inside). *)
let run_phase ~strategy =
  with_temp_dir (fun dir ->
      let config =
        { Server.default_config with
          Server.port = 0;
          data_dir = Some dir
        }
      in
      let server = Server.create ~config () in
      Server.start server;
      Fun.protect
        ~finally:(fun () -> Server.stop server)
        (fun () ->
          let port = Server.port server in
          let admin = Client.connect ~host:"127.0.0.1" ~port () in
          Fun.protect
            ~finally:(fun () -> Client.close admin)
            (fun () ->
              ok (Client.exec_ok admin "CREATE TABLE pol (uid, deg)");
              for i = 0 to tuples - 1 do
                ok
                  (Client.exec_ok admin
                     (Printf.sprintf
                        "INSERT INTO pol VALUES (%d, %d) EXPIRES %d" i
                        (i mod 8) (texp_of i)))
              done;
              let base_bytes = bytes_out admin in
              let messages, serve, finish = strategy ~server ~port in
              let stale_ticks = ref 0 in
              let stale_tuples = ref 0 in
              for tick = 1 to ticks do
                ok (Client.exec_ok admin
                      (Printf.sprintf "ADVANCE TO %d" tick));
                let served = serve tick in
                let exact = truth tick in
                if served <> exact then begin
                  incr stale_ticks;
                  let missing =
                    List.length (List.filter (fun u -> not (List.mem u served)) exact)
                  and excess =
                    List.length (List.filter (fun u -> not (List.mem u exact)) served)
                  in
                  stale_tuples := !stale_tuples + missing + excess
                end
              done;
              let bytes = bytes_out admin - base_bytes in
              finish ();
              (messages (), bytes, !stale_ticks, !stale_tuples))))

(* Poll every k ticks: a cache client refetches the full answer, serves
   its (expiration-blind) copy in between. *)
let poll every ~server:_ ~port =
  let client = Client.connect ~host:"127.0.0.1" ~port () in
  let refetches = ref 0 in
  let fetch () =
    incr refetches;
    uids_of (ok (Client.exec client "SELECT uid, deg FROM pol"))
  in
  let cache = ref (fetch ()) in
  let serve tick =
    if tick mod every = 0 then cache := fetch ();
    !cache
  in
  (fun () -> !refetches), serve, fun () -> Client.close client

(* WAL shipping: a replica applies the primary's records — including
   clock advances, so its own storage expires tuples — and serves local
   reads. *)
let replicated rdir ~server ~port =
  let replica =
    Replica.create ~data_dir:rdir ~primary_host:"127.0.0.1" ~primary_port:port ()
  in
  Replica.start replica;
  let reader = ref None in
  let serve _tick =
    let position =
      match Server.store server with
      | Some store -> Expirel_storage.Durable.position store
      | None -> failwith "primary has no store"
    in
    if not (Replica.wait_for_position replica position) then
      failwith "replica fell behind";
    let client =
      match !reader with
      | Some c -> c
      | None ->
        let c = Client.connect ~host:"127.0.0.1" ~port:(Replica.port replica) () in
        reader := Some c;
        c
    in
    uids_of (ok (Client.exec client "SELECT uid, deg FROM pol"))
  in
  let finish () =
    Option.iter Client.close !reader;
    Replica.stop replica
  in
  (fun () -> Replica.records_applied replica), serve, finish

let run_all () =
  Bench_util.section "repl: WAL-shipped replica vs polling, on real sockets";
  Bench_util.param_int "ticks" ticks;
  Bench_util.param_int "tuples" tuples;
  let cases =
    [ "poll every 1", `Poll 1;
      "poll every 5", `Poll 5;
      "poll every 20", `Poll 20;
      "replica (WAL shipping)", `Replica ]
  in
  let rows =
    List.map
      (fun (label, case) ->
        let messages, bytes, stale_ticks, stale_tuples =
          match case with
          | `Poll every -> run_phase ~strategy:(poll every)
          | `Replica ->
            with_temp_dir (fun rdir -> run_phase ~strategy:(replicated rdir))
        in
        let slug =
          match case with
          | `Poll every -> Printf.sprintf "poll_%d" every
          | `Replica -> "replica"
        in
        Bench_util.metric_int (slug ^ "_messages") messages;
        Bench_util.metric_int (slug ^ "_primary_bytes_out") bytes;
        Bench_util.metric_int (slug ^ "_stale_ticks") stale_ticks;
        Bench_util.metric_int (slug ^ "_stale_tuples") stale_tuples;
        [ label;
          string_of_int messages;
          string_of_int bytes;
          Printf.sprintf "%d (%.1f%%)" stale_ticks
            (100. *. float_of_int stale_ticks /. float_of_int ticks);
          string_of_int stale_tuples ])
      cases
  in
  Bench_util.table
    ~headers:
      [ "strategy"; "messages"; "primary bytes out"; "stale ticks";
        "stale tuples" ]
    rows;
  print_newline ()
