(* The networked-server experiment: throughput and latency of the wire
   protocol under N concurrent clients over localhost TCP, with a live
   subscription streaming expiration events, and a STATS reconciliation
   against client-side counts — the paper's loosely-coupled setting
   (Section 1) running on real sockets rather than the lib/dist/
   simulation. *)

open Expirel_server

let clients = 32
let requests_per_client = 100

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (float_of_int n *. p)))

let run_all () =
  print_endline "== server: wire-protocol throughput under concurrent clients ==";
  flush stdout;
  let config =
    { Server.default_config with max_connections = clients + 8 }
  in
  let server = Server.create ~config () in
  Server.start server;
  let port = Server.port server in

  let admin = Client.connect ~host:"127.0.0.1" ~port () in
  (match Client.exec_ok admin "CREATE TABLE sessions (sid, uid)" with
   | Ok () -> ()
   | Error e -> failwith e);

  let errors = Array.make clients 0 in
  let latencies = Array.make clients [] in
  let started = Unix.gettimeofday () in
  let threads =
    List.init clients (fun c ->
        Thread.create
          (fun () ->
            let client = Client.connect ~host:"127.0.0.1" ~port () in
            for i = 1 to requests_per_client do
              let sql =
                if i mod 4 = 0 then "SELECT sid, uid FROM sessions WHERE uid < 8"
                else
                  Printf.sprintf
                    "INSERT INTO sessions VALUES (%d, %d) EXPIRES %d"
                    ((c * requests_per_client) + i)
                    (i mod 16)
                    (1000 + i)
              in
              let t0 = Unix.gettimeofday () in
              (match Client.exec client sql with
               | Ok (Wire.Err _) | Error _ -> errors.(c) <- errors.(c) + 1
               | Ok _ -> ());
              latencies.(c) <- (Unix.gettimeofday () -. t0) :: latencies.(c)
            done;
            Client.close client)
          ())
  in
  List.iter Thread.join threads;
  let elapsed = Unix.gettimeofday () -. started in

  (* Watch the loaded table, then expire the short-lived sessions: the
     subscriber's Row_expired events arrive, in logical-time order,
     before the ADVANCE is acknowledged. *)
  (match
     Client.subscribe admin ~name:"watch"
       ~query:"SELECT sid FROM sessions WHERE uid < 4"
   with
   | Ok () -> ()
   | Error e -> failwith e);
  (match Client.exec_ok admin "ADVANCE TO 1050" with
   | Ok () -> ()
   | Error e -> failwith e);
  let pushed = Client.events admin in
  let ats =
    List.filter_map
      (function
        | Expirel_server.Wire.Row_expired { at; _ } -> Some at
        | _ -> None)
      pushed
  in
  if ats <> List.sort Expirel_core.Time.compare ats then
    failwith "push events arrived out of logical-time order";
  let events = List.length pushed in

  let all =
    Array.of_list (List.concat (Array.to_list latencies)) in
  Array.sort compare all;
  let total_requests = clients * requests_per_client in
  let total_errors = Array.fold_left ( + ) 0 errors in
  Printf.printf
    "%d clients x %d requests: %.2fs, %.0f req/s, %d error(s)\n"
    clients requests_per_client elapsed
    (float_of_int total_requests /. elapsed)
    total_errors;
  Printf.printf "latency: p50 %.0fus  p95 %.0fus  p99 %.0fus  max %.0fus\n"
    (percentile all 0.50 *. 1e6)
    (percentile all 0.95 *. 1e6)
    (percentile all 0.99 *. 1e6)
    (percentile all 1.0 *. 1e6);
  Bench_util.param_int "clients" clients;
  Bench_util.param_int "requests_per_client" requests_per_client;
  Bench_util.metric "throughput_rps" (float_of_int total_requests /. elapsed);
  Bench_util.metric "latency_p50_us" (percentile all 0.50 *. 1e6);
  Bench_util.metric "latency_p99_us" (percentile all 0.99 *. 1e6);
  Bench_util.metric_int "errors" total_errors;
  Printf.printf "subscription events after ADVANCE: %d\n" events;

  (* STATS must reconcile with what the clients counted. *)
  (match Client.stats admin with
   | Error e -> failwith e
   | Ok s ->
     (* admin issued create + subscribe + advance + this stats request
        (counted on arrival, before the response is built). *)
     let expected_min = total_requests + 4 in
     Printf.printf
       "server STATS: %d requests (>= %d expected), %d events pushed, %d \
        tuples expired, %d bytes in, %d bytes out\n"
       s.Wire.requests_total expected_min s.Wire.events_pushed
       s.Wire.tuples_expired s.Wire.bytes_in s.Wire.bytes_out;
     if s.Wire.requests_total < expected_min then
       failwith "STATS requests_total below client-side count";
     if s.Wire.events_pushed <> events then
       failwith "STATS events_pushed does not match client-side event count");
  Client.close admin;
  Server.stop server;
  print_newline ()
