(* Experiment exp-sketch: bounded-memory sketches vs exact evaluation
   over an expiring sensor stream.

   A monitoring stream of N events (default 10^7; override with
   EXPIREL_SKETCH_EVENTS for smoke runs) is generated twice from the
   same seed: once folded into the sketches — the counter, the uniform
   live sample and the spread coreset — and once replayed to compute
   exact answers.  Nothing is retained between passes except the
   sketches themselves, so the measured footprints are honest.

   Measured:

   - sketch memory against the materialised relation at the same N
     (the acceptance headline: >= 100x at 10^7 events);
   - per-add and per-query latency of the counter;
   - the counter's measured error against exact live counts at several
     query times, next to its advertised epsilon and its own reported
     [within] bound;
   - the 3-way merge path at full scale, in process: the stream split
     by sensor into three shard-partials, merged, queried — plus the
     serialised partial size, i.e. what a shard ships to the
     coordinator;
   - a real 3-shard cluster (loopback sockets) answering
     APPROX_COUNT / SAMPLE by sketch-partial merge, and the exact
     global COUNT it can now combine, with per-statement latency. *)

open Expirel_core
open Expirel_server
module Sensors = Expirel_workload.Sensors
module Sketch = Expirel_sketch
module Coordinator = Expirel_cluster.Coordinator

let seed = 2006
let epsilon = 0.01
let sample_k = 100

let events_target =
  match int_of_string_opt (try Sys.getenv "EXPIREL_SKETCH_EVENTS" with Not_found -> "") with
  | Some n when n > 0 -> n
  | _ -> 10_000_000

let sensors = min 10_000 (max 1 (events_target / 100))
let period = 10
let jitter = 3
let per_sensor = max 1 (events_target / sensors)
let horizon = per_sensor * period
let events = sensors * per_sensor

let iter_stream f =
  Sensors.iter ~rng:(Bench_util.rng seed) ~sensors ~period ~horizon ~jitter f

let texp_of = Sensors.texp_of ~period ~jitter

(* Query times spread over the stream's life: early, middle, late. *)
let taus =
  List.map (fun f -> Time.of_int (int_of_float (float_of_int horizon *. f)))
    [ 0.25; 0.5; 0.75; 0.95 ]

let exact_live_counts () =
  let counts = Array.make (List.length taus) 0 in
  iter_stream (fun s ->
      let texp = texp_of s in
      List.iteri
        (fun i tau -> if Time.(texp > tau) then counts.(i) <- counts.(i) + 1)
        taus);
  counts

let heap_bytes v = Obj.reachable_words (Obj.repr v) * (Sys.word_size / 8)

let run_all () =
  Bench_util.section "exp-sketch: bounded memory over an expiring stream";
  Bench_util.param_int "events" events;
  Bench_util.param_int "sensors" sensors;
  Bench_util.param_int "period" period;
  Bench_util.param "epsilon" (string_of_float epsilon);
  Bench_util.param_int "sample_k" sample_k;

  (* ---- fold the stream into the three sketches ---- *)
  Bench_util.subsection
    (Printf.sprintf "single pass over %d events" events);
  let counter = Sketch.Counter.create ~epsilon in
  let (), add_s =
    Bench_util.time_it (fun () ->
        iter_stream (fun s -> Sketch.Counter.add counter ~texp:(texp_of s)))
  in
  let sample = Sketch.Sample.create ~seed ~k:sample_k () in
  iter_stream (fun s ->
      Sketch.Sample.add sample
        [ Value.int s.Sensors.sensor; Value.int s.Sensors.value ]
        ~texp:(texp_of s));
  let spread = Sketch.Spread.create ~epsilon in
  iter_stream (fun s ->
      Sketch.Spread.add spread (float_of_int s.Sensors.value) ~texp:(texp_of s));
  let add_ns = add_s *. 1e9 /. float_of_int events in
  Printf.printf "counter: %d adds in %.2f s (%.0f ns/add), %d buckets\n"
    events add_s add_ns (Sketch.Counter.buckets counter);
  Bench_util.metric "counter_add_ns" add_ns;

  (* ---- memory: sketches vs the materialised relation ---- *)
  Bench_util.subsection "memory footprint";
  let relation =
    let r = ref (Relation.empty ~arity:2) in
    iter_stream (fun s ->
        r := Relation.add (Sensors.tuple_of s) ~texp:(texp_of s) !r);
    !r
  in
  let relation_bytes = heap_bytes relation in
  let counter_bytes = Sketch.Counter.memory_bytes counter in
  let sample_bytes = Sketch.Sample.memory_bytes sample in
  let spread_bytes = Sketch.Spread.memory_bytes spread in
  let ratio = float_of_int relation_bytes /. float_of_int (max 1 counter_bytes) in
  Bench_util.table
    ~headers:[ "structure"; "bytes"; "vs relation" ]
    [ [ "materialised relation"; string_of_int relation_bytes; "1x" ];
      [ Printf.sprintf "counter (eps=%g)" epsilon;
        string_of_int counter_bytes;
        Printf.sprintf "%.0fx smaller" ratio ];
      [ Printf.sprintf "sample (k=%d)" sample_k;
        string_of_int sample_bytes;
        Printf.sprintf "%.0fx smaller"
          (float_of_int relation_bytes /. float_of_int (max 1 sample_bytes)) ];
      [ Printf.sprintf "spread (eps=%g)" epsilon;
        string_of_int spread_bytes;
        Printf.sprintf "%.0fx smaller"
          (float_of_int relation_bytes /. float_of_int (max 1 spread_bytes)) ]
    ];
  Bench_util.metric_int "relation_memory_bytes" relation_bytes;
  Bench_util.metric_int "counter_memory_bytes" counter_bytes;
  Bench_util.metric_int "sample_memory_bytes" sample_bytes;
  Bench_util.metric_int "spread_memory_bytes" spread_bytes;
  Bench_util.metric "memory_ratio" ratio;

  (* ---- accuracy: estimate vs exact live count ---- *)
  Bench_util.subsection "counter accuracy at several query times";
  let exact = exact_live_counts () in
  let max_rel_error = ref 0. in
  let rows =
    List.mapi
      (fun i tau ->
        let { Sketch.Counter.estimate; within; _ } =
          Sketch.Counter.query counter ~tau
        in
        let ex = float_of_int exact.(i) in
        let rel = Float.abs (estimate -. ex) /. Float.max 1. ex in
        max_rel_error := Float.max !max_rel_error rel;
        [ Time.to_string tau;
          string_of_int exact.(i);
          Printf.sprintf "%.0f" estimate;
          Printf.sprintf "%.1f" within;
          Printf.sprintf "%.5f" rel ])
      taus
  in
  Bench_util.table
    ~headers:[ "tau"; "exact live"; "estimate"; "within"; "rel error" ]
    rows;
  Printf.printf "max relative error %.5f (advertised eps %g)\n" !max_rel_error
    epsilon;
  Bench_util.metric "measured_rel_error_max" !max_rel_error;
  Bench_util.metric "epsilon" epsilon;

  let queries = 1_000 in
  let (), query_s =
    Bench_util.time_it (fun () ->
        for i = 1 to queries do
          ignore
            (Sketch.Counter.query counter
               ~tau:(Time.of_int (i * horizon / queries)))
        done)
  in
  let query_us = query_s *. 1e6 /. float_of_int queries in
  Printf.printf "counter query: %.1f us\n" query_us;
  Bench_util.metric "counter_query_us" query_us;

  (* ---- 3-way merge at full scale, in process ---- *)
  Bench_util.subsection "3-shard merge path (in process, full scale)";
  let shards = Array.init 3 (fun _ -> Sketch.Counter.create ~epsilon) in
  iter_stream (fun s ->
      Sketch.Counter.add shards.(s.Sensors.sensor mod 3) ~texp:(texp_of s));
  let payload_bytes =
    Array.fold_left
      (fun acc c -> acc + String.length (Sketch.Counter.to_string c))
      0 shards
  in
  let merged =
    Sketch.Counter.merge (Sketch.Counter.merge shards.(0) shards.(1)) shards.(2)
  in
  let merged_max_rel = ref 0. in
  List.iteri
    (fun i tau ->
      let { Sketch.Counter.estimate; _ } = Sketch.Counter.query merged ~tau in
      let ex = float_of_int exact.(i) in
      merged_max_rel :=
        Float.max !merged_max_rel (Float.abs (estimate -. ex) /. Float.max 1. ex))
    taus;
  Printf.printf
    "3 partials: %d wire bytes total; merged max rel error %.5f\n"
    payload_bytes !merged_max_rel;
  Bench_util.metric_int "merge_payload_bytes" payload_bytes;
  Bench_util.metric "merged_rel_error_max" !merged_max_rel;

  (* ---- a real 3-shard cluster over loopback sockets ---- *)
  Bench_util.subsection "3-shard cluster: APPROX_COUNT / SAMPLE / COUNT(*)";
  let no_err = function
    | Wire.Err { message; _ } -> failwith message
    | (r : Wire.response) -> r
  in
  let config =
    { Server.default_config with Server.host = "127.0.0.1"; port = 0 }
  in
  let servers = List.init 3 (fun _ -> Server.create ~config ()) in
  List.iter Server.start servers;
  Fun.protect
    ~finally:(fun () -> List.iter Server.stop servers)
    (fun () ->
      let coord =
        Coordinator.create ~heartbeat_interval:0.
          ~shards:
            (List.map
               (fun s ->
                 { Coordinator.host = "127.0.0.1"; port = Server.port s })
               servers)
          ()
      in
      Fun.protect
        ~finally:(fun () -> Coordinator.close coord)
        (fun () ->
          ignore (no_err (Coordinator.exec coord "CREATE TABLE t (k, v)"));
          let keys = 2_000 in
          let live = ref 0 in
          for k = 1 to keys do
            (* Half the rows die at 50, half at 1000. *)
            let texp = if k mod 2 = 0 then 50 else 1000 in
            if texp > 100 then incr live;
            ignore
              (no_err
                 (Coordinator.exec coord
                    (Printf.sprintf "INSERT INTO t VALUES (%d, %d) EXPIRES %d"
                       k (k * 3) texp)))
          done;
          ignore (no_err (Coordinator.exec coord "ADVANCE TO 100"));
          let timed sql =
            let r, s = Bench_util.time_it (fun () ->
                no_err (Coordinator.exec coord sql))
            in
            (r, s *. 1e3)
          in
          let exact_count, exact_ms = timed "SELECT COUNT(*) FROM t" in
          (match exact_count with
           | Wire.Rows { rows = [ ([ Value.Int n ], _) ]; _ } ->
             if n <> !live then
               failwith
                 (Printf.sprintf "cluster COUNT(*) = %d, expected %d" n !live)
           | _ -> failwith "unexpected COUNT(*) shape");
          let approx, approx_ms =
            timed (Printf.sprintf "SELECT APPROX_COUNT(%g) FROM t" epsilon)
          in
          let approx_err =
            match approx with
            | Wire.Rows { rows = [ ([ Value.Int est; Value.Float within ], _) ]; _ }
              ->
              let err = Float.abs (float_of_int (est - !live)) in
              if err > within then
                failwith
                  (Printf.sprintf
                     "cluster APPROX_COUNT off by %.0f, bound was %.1f" err
                     within);
              err
            | _ -> failwith "unexpected APPROX_COUNT shape"
          in
          let sampled, sample_ms = timed "SELECT SAMPLE(10) FROM t" in
          (match sampled with
           | Wire.Rows { rows; _ } ->
             if List.length rows > 10 then failwith "SAMPLE returned > k rows"
           | _ -> failwith "unexpected SAMPLE shape");
          Bench_util.table
            ~headers:[ "statement"; "latency ms"; "note" ]
            [ [ "COUNT(*)"; Bench_util.f2 exact_ms;
                Printf.sprintf "exact, combined from %d shard partials" 3 ];
              [ Printf.sprintf "APPROX_COUNT(%g)" epsilon;
                Bench_util.f2 approx_ms;
                Printf.sprintf "merged sketch, off by %.0f" approx_err ];
              [ "SAMPLE(10)"; Bench_util.f2 sample_ms; "merged sketch" ] ];
          Bench_util.metric "cluster_exact_count_ms" exact_ms;
          Bench_util.metric "cluster_approx_count_ms" approx_ms;
          Bench_util.metric "cluster_sample_ms" sample_ms;
          Bench_util.metric "cluster_approx_abs_error" approx_err))
