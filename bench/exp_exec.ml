(* Experiment exp-exec: the physical execution layer.

   Three claims, each measured:

   - a planned equi-join (hash build/probe) beats the streaming nested
     loop by orders of magnitude at 10k x 10k with selective keys — the
     naive [Ops.join] (materialise the product, then filter) is not even
     the baseline here, it is infeasible at this size;
   - live scans are O(1) when nothing has expired (cached min-texp on
     the relation, cached snapshot on the table);
   - the interpreter's statement + plan caches remove parsing, lowering
     and planning from the per-request path for repeated statements.

   Expected shape: hash join >= 10x over the nested loop (in practice
   thousands of x); repeated statements measurably cheaper than cold
   ones. *)

open Expirel_core
open Expirel_storage
open Expirel_exec
open Expirel_sqlx

let join_pred = Predicate.Cmp (Predicate.Eq, Predicate.Col 1, Predicate.Col 3)

(* Selective keys: every key appears once per side, so the join yields
   one output row per key — the answer is small, the pair space is not. *)
let build_side ~rows ~seed =
  let rng = Bench_util.rng seed in
  Relation.of_list ~arity:2
    (List.init rows (fun i ->
         Tuple.ints [ i; Random.State.int rng 1_000_000 ], Time.infinity))

let join_sweep () =
  let rows = 10_000 in
  Bench_util.subsection
    (Printf.sprintf "equi-join at %dx%d, one match per key" rows rows);
  Bench_util.param_int "join_rows_per_side" rows;
  let left = build_side ~rows ~seed:11 in
  let right = build_side ~rows ~seed:23 in
  let (), nested_s =
    Bench_util.time_it (fun () ->
        ignore (Executor.nested_loop join_pred left right))
  in
  let reps = 20 in
  let (), hash_s =
    Bench_util.time_it (fun () ->
        for _ = 1 to reps do
          ignore (Executor.hash_join ~pairs:[ (1, 1) ] ~pred:join_pred left right)
        done)
  in
  let hash_s = hash_s /. float_of_int reps in
  (* The same join end-to-end through the planner, scans included. *)
  let db = Database.create () in
  let load name rel =
    let (_ : Table.t) =
      Database.create_table db ~name ~columns:[ "k"; "v" ]
    in
    Relation.iter (fun t e -> Database.insert db name t ~texp:e) rel
  in
  load "L" left;
  load "R" right;
  let expr = Algebra.join join_pred (Algebra.base "L") (Algebra.base "R") in
  let compiled = Planner.plan ~db expr in
  let operator = Plan.operator_name compiled.Plan.physical in
  let (), planned_s =
    Bench_util.time_it (fun () ->
        for _ = 1 to reps do
          ignore (Executor.run ~db compiled)
        done)
  in
  let planned_s = planned_s /. float_of_int reps in
  Bench_util.param "planned_join_operator" operator;
  Bench_util.metric "join_nested_loop_us" (nested_s *. 1e6);
  Bench_util.metric "join_hash_us" (hash_s *. 1e6);
  Bench_util.metric "join_planned_us" (planned_s *. 1e6);
  Bench_util.metric "join_hash_speedup" (nested_s /. Float.max 1e-9 hash_s);
  Bench_util.table
    ~headers:[ "physical join"; "us/join"; "speedup" ]
    [ [ "nested loop (streaming)"; Bench_util.f1 (nested_s *. 1e6); "1.0" ];
      [ "hash build/probe"; Bench_util.f1 (hash_s *. 1e6);
        Bench_util.f1 (nested_s /. Float.max 1e-9 hash_s) ];
      [ Printf.sprintf "planned (%s + scans)" operator;
        Bench_util.f1 (planned_s *. 1e6);
        Bench_util.f1 (nested_s /. Float.max 1e-9 planned_s) ] ]

let live_scan_sweep () =
  let rows = 100_000 in
  Bench_util.subsection
    (Printf.sprintf "live scan of %d rows, nothing expired" rows);
  Bench_util.param_int "scan_rows" rows;
  let db = Database.create ~policy:Database.Lazy () in
  let (_ : Table.t) =
    Database.create_table db ~name:"feed" ~columns:[ "id"; "v" ]
  in
  for i = 1 to rows do
    Database.insert db "feed" (Tuple.ints [ i; i * 7 ])
      ~texp:(Time.of_int 1_000_000)
  done;
  let tbl = Database.table_exn db "feed" in
  (* First snapshot builds the cache; repeats are O(1) while no row has
     expired since (generation unchanged, next expiry in the future). *)
  let (), first_s =
    Bench_util.time_it (fun () ->
        ignore (Table.snapshot tbl ~tau:(Database.now db)))
  in
  let reps = 10_000 in
  let (), cached_s =
    Bench_util.time_it (fun () ->
        for _ = 1 to reps do
          ignore (Table.snapshot tbl ~tau:(Database.now db))
        done)
  in
  let cached_s = cached_s /. float_of_int reps in
  Bench_util.metric "scan_first_us" (first_s *. 1e6);
  Bench_util.metric "scan_cached_us" (cached_s *. 1e6);
  Bench_util.table
    ~headers:[ "snapshot"; "us" ]
    [ [ "first (builds cache)"; Bench_util.f1 (first_s *. 1e6) ];
      [ "repeat (cache hit)"; Bench_util.f2 (cached_s *. 1e6) ] ]

let plan_cache_sweep () =
  Bench_util.subsection "statement + plan cache on the request path";
  let t = Interp.create () in
  let run sql =
    match Interp.exec_sql t sql with
    | Ok _ -> ()
    | Error e -> failwith e
  in
  run "CREATE TABLE pol (uid, deg)";
  run "CREATE TABLE el (uid, kind)";
  run "CREATE INDEX ON pol (uid)";
  run "CREATE INDEX ON el (uid)";
  for i = 1 to 200 do
    run
      (Printf.sprintf "INSERT INTO pol VALUES (%d, %d) EXPIRES 1000000" i
         (i mod 40));
    run
      (Printf.sprintf "INSERT INTO el VALUES (%d, %d) EXPIRES 1000000" i
         (i mod 7))
  done;
  (* Point-lookup join, one row either way: eval is a pair of index
     probes, so nearly all of the cold-statement cost is parse + lower
     + plan — the stages the caches exist to skip. *)
  let stmt k =
    Printf.sprintf
      "SELECT pol.uid, el.kind FROM pol JOIN el ON pol.uid = el.uid WHERE \
       pol.uid = %d"
      k
  in
  let hot = stmt 41 in
  (* The cold side rotates through 100 even uids — more distinct texts
     than the 64-slot LRUs hold, so every cold request misses both
     caches and pays parse + lower + plan in full, forever.  Odd hot
     uid means the rotation never collides with the hot entry. *)
  let cold i = stmt (2 * (i mod 100) + 2) in
  let reps = 2_000 in
  Bench_util.param_int "plan_cache_reps" reps;
  (* Warm both paths before timing anything: the first few hundred
     requests after table load pay allocator/GC ramp-up that otherwise
     lands entirely on whichever loop runs first and swamps the
     few-microsecond effect being measured. *)
  for i = 1 to 500 do
    run hot;
    run (cold i)
  done;
  (* Interleave the two paths rep by rep instead of timing two back-to-
     back loops: the quantity of interest is a difference of a few
     microseconds, and heap/GC drift between two multi-second loops is
     larger than that.  Alternating means any drift lands on both sides
     equally. *)
  let cached_total = ref 0. in
  let uncached_total = ref 0. in
  for i = 1 to reps do
    let (), u = Bench_util.time_it (fun () -> run (cold i)) in
    uncached_total := !uncached_total +. u;
    let (), c = Bench_util.time_it (fun () -> run hot) in
    cached_total := !cached_total +. c
  done;
  let cached_s = !cached_total in
  let uncached_s = !uncached_total in
  let cached_us = cached_s *. 1e6 /. float_of_int reps in
  let uncached_us = uncached_s *. 1e6 /. float_of_int reps in
  let stats = Interp.plan_cache_stats t in
  Bench_util.metric "plan_cached_us_per_req" cached_us;
  Bench_util.metric "plan_uncached_us_per_req" uncached_us;
  Bench_util.metric "plan_savings_us_per_req" (uncached_us -. cached_us);
  Bench_util.metric_int "plan_cache_hits" stats.Interp.hits;
  Bench_util.metric_int "plan_cache_misses" stats.Interp.misses;
  Bench_util.table
    ~headers:[ "request path"; "us/request" ]
    [ [ "repeated statement (cache hit)"; Bench_util.f2 cached_us ];
      [ "cold statement (parse + lower + plan)"; Bench_util.f2 uncached_us ]
    ];
  Printf.printf "cache counters: %d hits, %d misses\n" stats.Interp.hits
    stats.Interp.misses

let run_all () =
  Bench_util.section "Experiment exp-exec: physical query execution";
  join_sweep ();
  live_scan_sweep ();
  plan_cache_sweep ()
