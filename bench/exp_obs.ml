(* The observability experiment: a live server under a small workload,
   its Prometheus exposition fetched and validated over the wire, the
   slow-query log queried for span breakdowns, and the raw instrument
   costs micro-timed — what does always-on tracing cost a request, and
   what does a METRICS scrape cost the server? *)

open Expirel_server
module Core = Expirel_core
module Storage = Expirel_storage
module Exec = Expirel_exec
module Obs = Expirel_obs

let scrapes = 50
let workload_requests = 400

(* ---- the EXPLAIN ANALYZE sink: what does profiling cost a plan? ----

   The same compiled plan runs in interleaved batches with the
   [?profile] sink absent (the executor's original path) and present
   (per-operator rows/drops/visits/build counts plus a wall-clock read
   per operator).  Warmup runs retire the cold-start outliers, and the
   median of the per-batch averages damps scheduler noise — a median
   ignores one-sided spikes that both a mean and a best-of minimum let
   through, which is what lets the budget sit at a tight 5%.  The
   enabled path must stay within that budget — EXPLAIN ANALYZE is
   priced per statement, not per deployment. *)

let profile_rows = 10_000
let profile_batches = 9
let profile_runs_per_batch = 40
let profile_warmups = 3

(* [Planner.plan] batches by default, so the plan measured here runs
   through the vectorized executor (go_b's per-batch timing hooks
   included) — the 5% budget below guards the batched profiling path,
   not just the tuple one. *)
let bench_profiling_overhead () =
  Bench_util.subsection "profiling overhead (EXPLAIN ANALYZE sink)";
  let open Storage in
  let db = Database.create ~policy:Database.Lazy () in
  let (_ : Table.t) =
    Database.create_table db ~name:"pol" ~columns:[ "uid"; "deg" ]
  in
  let (_ : Table.t) =
    Database.create_table db ~name:"el" ~columns:[ "uid"; "peer" ]
  in
  for i = 1 to profile_rows do
    Database.insert db "pol"
      (Core.Tuple.of_list [ Core.Value.Int i; Core.Value.Int (i mod 50) ])
      ~texp:(Core.Time.of_int (10 + (i mod 90)));
    if i mod 20 = 0 then
      Database.insert db "el"
        (Core.Tuple.of_list [ Core.Value.Int i; Core.Value.Int (i / 20) ])
        ~texp:(Core.Time.of_int 100)
  done;
  Database.advance_to db (Core.Time.of_int 30);
  let expr =
    Core.Algebra.select
      (Core.Predicate.Cmp
         (Core.Predicate.Lt, Core.Predicate.Col 2,
          Core.Predicate.Const (Core.Value.Int 25)))
      (Core.Algebra.join (Core.Predicate.eq_cols 1 3)
         (Core.Algebra.base "pol") (Core.Algebra.base "el"))
  in
  let compiled = Exec.Planner.plan ~db expr in
  let run_off () = ignore (Exec.Executor.run ~db compiled : Core.Eval.result) in
  let run_on () =
    let p = Exec.Profile.of_plan ~db compiled.Exec.Plan.physical in
    ignore (Exec.Executor.run ~profile:p ~db compiled : Core.Eval.result)
  in
  (* warm both paths before timing: allocator and cache state settle in
     the first few runs, which would otherwise land in the first batch *)
  for _ = 1 to profile_warmups do
    run_off ();
    run_on ()
  done;
  let batch f =
    let (), s =
      Bench_util.time_it (fun () ->
          for _ = 1 to profile_runs_per_batch do
            f ()
          done)
    in
    s /. float_of_int profile_runs_per_batch
  in
  let median samples =
    match List.sort Float.compare samples with
    | [] -> nan
    | sorted -> List.nth sorted (List.length sorted / 2)
  in
  let offs = ref [] and ons = ref [] in
  for _ = 1 to profile_batches do
    offs := batch run_off :: !offs;
    ons := batch run_on :: !ons
  done;
  let off_ms = median !offs *. 1e3 and on_ms = median !ons *. 1e3 in
  let overhead_pct = (on_ms -. off_ms) /. off_ms *. 100. in
  Bench_util.param_int "profile_rows" profile_rows;
  Bench_util.metric "exec_unprofiled_ms" off_ms;
  Bench_util.metric "exec_profiled_ms" on_ms;
  Bench_util.metric "profile_overhead_pct" overhead_pct;
  Printf.printf
    "plan over %d rows: %.3f ms unprofiled, %.3f ms profiled (%+.1f%%)\n"
    profile_rows off_ms on_ms overhead_pct;
  (* The budget gates regressions (a profiled run costing a multiple of
     an unprofiled one), not scheduler luck: warmup plus the median of
     interleaved batches holds the measurement spread to low single
     digits even on a shared machine, so the line sits at 5% — above
     the remaining noise floor, far below any real regression. *)
  if overhead_pct >= 5.0 then
    failwith
      (Printf.sprintf "profiling overhead %.1f%% breaches the 5%% budget"
         overhead_pct)

(* A sample line is `name{labels} value`; validate the value parses
   (Prometheus float, "+Inf" allowed) and count families and samples. *)
let validate_exposition text =
  let families = ref 0 and samples = ref 0 in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         if line = "" then ()
         else if String.length line >= 6 && String.sub line 0 6 = "# TYPE" then
           incr families
         else if line.[0] = '#' then ()
         else begin
           incr samples;
           match String.rindex_opt line ' ' with
           | None -> failwith ("unparsable exposition line: " ^ line)
           | Some i ->
             let v = String.sub line (i + 1) (String.length line - i - 1) in
             if v <> "+Inf" && v <> "-Inf" && v <> "NaN"
                && float_of_string_opt v = None
             then failwith ("bad sample value: " ^ line)
         end);
  (!families, !samples)

let run_all () =
  Bench_util.section "observability: tracing, exposition, slow queries";
  let server = Server.create () in
  Server.start server;
  let port = Server.port server in
  let client = Client.connect ~host:"127.0.0.1" ~port () in
  let ok = function Ok v -> v | Error e -> failwith e in

  (* ---- a workload worth observing: inserts, queries, expirations ---- *)
  Bench_util.subsection "workload";
  ok (Client.exec_ok client "CREATE TABLE pol (uid, deg)");
  let (), load_s =
    Bench_util.time_it (fun () ->
        for i = 1 to workload_requests do
          let sql =
            match i mod 4 with
            | 0 -> "SELECT uid, deg FROM pol WHERE deg < 30"
            | 1 -> "SELECT deg, COUNT(*) FROM pol GROUP BY deg"
            | _ ->
              Printf.sprintf "INSERT INTO pol VALUES (%d, %d) EXPIRES %d" i
                (20 + (i mod 20))
                (10 + (i mod 50))
          in
          match Client.exec client sql with
          | Ok _ -> ()
          | Error e -> failwith e
        done;
        ok (Client.exec_ok client "ADVANCE TO 40"))
  in
  Bench_util.param_int "workload_requests" workload_requests;
  Bench_util.metric "workload_req_per_s"
    (float_of_int workload_requests /. load_s);
  Printf.printf "%d requests in %.3fs (%.0f req/s, tracing always on)\n"
    workload_requests load_s
    (float_of_int workload_requests /. load_s);

  (* ---- METRICS scrapes: validity and cost ---- *)
  Bench_util.subsection "prometheus exposition";
  let text = ok (Client.metrics client) in
  let families, samples = validate_exposition text in
  if families = 0 || samples = 0 then failwith "empty exposition";
  let required =
    [ "expirel_request_duration_seconds_bucket";
      "expirel_eval_operator_duration_seconds_bucket";
      "expirel_request_stage_duration_seconds_bucket";
      "expirel_tuples_expired_total";
      "expirel_expiration_index_depth";
      (* the forward-looking families, and the build identity *)
      "expirel_horizon_rows_bucket";
      "expirel_horizon_fanout_events";
      "expirel_churn_rate";
      "expirel_build_info";
      "expirel_uptime_seconds" ]
  in
  List.iter
    (fun name ->
      let sub = name and s = text in
      let n = String.length sub and m = String.length s in
      let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
      if not (go 0) then failwith ("exposition missing " ^ name))
    required;
  let (), scrape_s =
    Bench_util.time_it (fun () ->
        for _ = 1 to scrapes do
          ignore (ok (Client.metrics client))
        done)
  in
  Bench_util.metric_int "exposition_bytes" (String.length text);
  Bench_util.metric_int "metric_families" families;
  Bench_util.metric_int "metric_samples" samples;
  Bench_util.metric "scrape_ms" (scrape_s /. float_of_int scrapes *. 1e3);
  Bench_util.table
    ~headers:[ "exposition"; "value" ]
    [ [ "bytes"; string_of_int (String.length text) ];
      [ "families"; string_of_int families ];
      [ "samples"; string_of_int samples ];
      [ "scrape avg"; Printf.sprintf "%.2f ms" (scrape_s /. float_of_int scrapes *. 1e3) ] ];

  (* ---- the slow-query log ---- *)
  Bench_util.subsection "slow queries";
  let slow = ok (Client.slow_queries client 3) in
  if slow = [] then failwith "slow log empty after workload";
  List.iter
    (fun (q : Wire.slow_query) ->
      Printf.printf "%6dus  %s (%d spans)\n" q.total_us q.statement
        (List.length q.spans))
    slow;
  let breakdowns =
    List.for_all (fun (q : Wire.slow_query) -> q.spans <> []) slow
  in
  if not breakdowns then failwith "slow queries lack span breakdowns";
  Bench_util.metric_int "slow_top_us"
    (match slow with q :: _ -> q.Wire.total_us | [] -> 0);

  Client.close client;
  Server.stop server;

  (* ---- the expiration horizon: scan cost, merge cost, exactness ---- *)
  Bench_util.subsection "horizon forecast";
  let hdb = Storage.Database.create () in
  let (_ : Storage.Table.t) =
    Storage.Database.create_table hdb ~name:"h" ~columns:[ "k"; "v" ]
  in
  let horizon_rows = 100_000 in
  for i = 1 to horizon_rows do
    Storage.Database.insert hdb "h"
      (Core.Tuple.of_list [ Core.Value.Int i; Core.Value.Int 0 ])
      ~texp:
        (if i mod 7 = 0 then Core.Time.Inf
         else Core.Time.of_int (1 + (i mod 20_000)))
  done;
  let bounds = Obs.Horizon.default_bounds in
  (* the bucket cut rides the expiration order: O(log n + buckets), so
     pricing it over 100k rows lands in microseconds, not milliseconds *)
  let scan_iters = 500 in
  let (), scan_s =
    Bench_util.time_it (fun () ->
        for _ = 1 to scan_iters do
          ignore
            (Storage.Database.expiring_within hdb ~bounds
              : (string * int array) list)
        done)
  in
  let scan_us = scan_s /. float_of_int scan_iters *. 1e6 in
  Bench_util.param_int "horizon_bench_rows" horizon_rows;
  Bench_util.metric "horizon_scan_us" scan_us;
  (* bucket-wise merge of shard partials, as the coordinator runs it *)
  let partial shard =
    { Obs.Horizon.now = 40;
      window = Obs.Horizon.default_window;
      fanout_events = shard;
      arrival_rate = 1.0;
      expiration_rate = 1.0;
      tables =
        List.map
          (fun name ->
            { Obs.Horizon.name;
              bounds;
              counts = Array.mapi (fun i _ -> (shard + i) land 7) bounds })
          [ "aux"; "pol"; "s" ]
    }
  in
  let partials = List.init 8 partial in
  let merge_iters = 2_000 in
  let (), merge_s =
    Bench_util.time_it (fun () ->
        for _ = 1 to merge_iters do
          ignore (Obs.Horizon.merge_reports partials : Obs.Horizon.report)
        done)
  in
  let merge_us = merge_s /. float_of_int merge_iters *. 1e6 in
  Bench_util.metric "horizon_merge_us" merge_us;
  (* the forecast is exact: the 1024-tick bucket cut equals the rows the
     ADVANCE to 1024 then drops *)
  let profile = Storage.Database.expiring_within hdb ~bounds in
  let d = 1024 in
  let predicted =
    List.fold_left
      (fun acc (_, counts) ->
        let t = ref acc in
        Array.iteri
          (fun i c -> if bounds.(i) <> max_int && bounds.(i) <= d then t := !t + c)
          counts;
        !t)
      0 profile
  in
  let expired_before = Storage.Database.expired_total hdb in
  Storage.Database.advance_to hdb (Core.Time.of_int d);
  let dropped = Storage.Database.expired_total hdb - expired_before in
  let exact = dropped = predicted in
  Bench_util.metric_int "horizon_forecast_exact" (if exact then 1 else 0);
  Printf.printf
    "scan %.1f us over %d rows, 8-shard merge %.1f us, forecast %s \
     (predicted %d = dropped %d)\n"
    scan_us horizon_rows merge_us
    (if exact then "exact" else "MISMATCH")
    predicted dropped;
  if not exact then
    failwith
      (Printf.sprintf "horizon forecast mismatch: predicted %d, dropped %d"
         predicted dropped);

  (* ---- raw instrument costs ---- *)
  Bench_util.subsection "instrument micro-costs";
  let n = 1_000_000 in
  let c = Obs.Instrument.Counter.create () in
  let (), counter_s =
    Bench_util.time_it (fun () ->
        for _ = 1 to n do
          Obs.Instrument.Counter.incr c
        done)
  in
  let h = Obs.Instrument.Histogram.create () in
  let (), histo_s =
    Bench_util.time_it (fun () ->
        for i = 1 to n do
          Obs.Instrument.Histogram.observe h (i land 0xffff)
        done)
  in
  Bench_util.metric "counter_incr_ns" (counter_s /. float_of_int n *. 1e9);
  Bench_util.metric "histogram_observe_ns" (histo_s /. float_of_int n *. 1e9);
  Printf.printf "counter incr %.0f ns, histogram observe %.0f ns (n=%d)\n"
    (counter_s /. float_of_int n *. 1e9)
    (histo_s /. float_of_int n *. 1e9)
    n;

  bench_profiling_overhead ()
