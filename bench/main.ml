(* Benchmark and reproduction harness.

   dune exec bench/main.exe            runs everything
   dune exec bench/main.exe -- <id>    runs one experiment; ids below *)

let experiments =
  [ "fig1", "Figure 1: example relations", Fig_repro.fig1;
    "fig2", "Figure 2: monotonic expressions over time", Fig_repro.fig2;
    "fig3", "Figure 3: non-monotonic expressions", Fig_repro.fig3;
    "tab1", "Table 1: neutral subsets", Fig_repro.tab1;
    "tab2", "Table 2: difference lifetime analysis", Fig_repro.tab2;
    "thm1", "Theorem 1 at scale", Thm_repro.thm1;
    "thm2", "Theorem 2 at scale", Thm_repro.thm2;
    "thm3", "Theorem 3 at scale", Thm_repro.thm3;
    "agg-lifetime", "aggregate expiration strategies", Exp_agg.run_all;
    "index", "expiration index backends", Exp_index.run_all;
    "eager-lazy", "removal policies", Exp_eager_lazy.run_all;
    "patch", "patching vs recomputation", Exp_patch.run_all;
    "antijoin", "physical difference implementations", Exp_antijoin.run_all;
    "schrodinger", "validity intervals vs single texp", Exp_schrodinger.run_all;
    "dist", "loosely-coupled maintenance strategies", Exp_dist.run_all;
    "unreliable", "outages and clock skew", Exp_unreliable.run_all;
    "rewrite", "rewriting to postpone recomputation", Exp_rewrite.run_all;
    "update", "incremental maintenance under updates", Exp_update.run_all;
    "durable", "WAL, checkpoints and recovery", Exp_durable.run_all;
    "access", "secondary indexes on expiring tables", Exp_access.run_all;
    "exec", "physical plans: hash joins, live scans, the plan cache",
    Exp_exec.run_all;
    "vexec", "vectorized execution over expiration-ordered batches",
    Exp_vexec.run_all;
    "qos", "static validity guarantees", Exp_qos.run_all;
    "ttl", "choosing expiration times for caches", Exp_ttl.run_all;
    "server", "wire-protocol server under concurrent clients", Exp_server.run_all;
    "repl", "replication vs polling over real sockets", Exp_repl.run_all;
    "cluster", "sharded scatter-gather and expiration-aware pruning",
    Exp_cluster.run_all;
    "obs", "tracing, metrics exposition and the slow-query log", Exp_obs.run_all;
    "sketch", "bounded-memory sketches vs exact over expiring streams",
    Exp_sketch.run_all;
    "micro", "Bechamel micro-benchmarks", Bechamel_suite.run ]

let usage () =
  print_endline "usage: main.exe [experiment-id]\navailable experiments:";
  List.iter (fun (id, doc, _) -> Printf.printf "  %-14s %s\n" id doc) experiments

(* Runs one experiment and flushes whatever it recorded (plus wall-clock
   time) to BENCH_<id>.json. *)
let run_one (id, doc, run) =
  Bench_util.reset_recordings ();
  let (), elapsed = Bench_util.time_it run in
  let path = Bench_util.write_json ~experiment:id ~description:doc ~elapsed in
  Printf.printf "[%s] %s\n%!" id path

let () =
  match Array.to_list Sys.argv with
  | [ _ ] -> List.iter run_one experiments
  | [ _; "help" ] | [ _; "--help" ] -> usage ()
  | [ _; id ] ->
    (match List.find_opt (fun (name, _, _) -> name = id) experiments with
     | Some experiment -> run_one experiment
     | None ->
       Printf.printf "unknown experiment %S\n" id;
       usage ();
       exit 2)
  | _ ->
    usage ();
    exit 2
