(* Experiment exp-vexec: the vectorized executor over expiration-ordered
   batches.

   Every measurement compares the batched plan (Planner.plan's default)
   against the pure tuple-at-a-time plan (~batch:false) on the same
   database — results are identical (the qcheck batch ≡ tuple law),
   only the execution strategy differs:

   - the live cut: counting a churny lazily-vacuumed table's live rows
     is a chunk-level texp cut plus columnar accumulation into the
     fused aggregate, not a per-row liveness filter plus a relation
     build.  The win grows with the expired fraction because wholly
     expired chunks are skipped without touching a row;
   - a selective filter scan: the compiled predicate kernel over flat
     column arrays vs Predicate.eval per materialised tuple;
   - the hash-join probe: build and probe over column batches vs the
     streaming tuple kernel, same key normalisation on both sides.

   Scale: 1e5 and 1e6 rows x expired fractions {0, 0.5, 0.99}.
   EXPIREL_VEXEC_ROWS caps the row counts so CI can smoke-test the
   same harness in seconds.  Expected shape: live-cut speedup >= 5x at
   1e6 rows / 0.5 expired, far larger at 0.99. *)

open Expirel_core
open Expirel_storage
open Expirel_exec

let sizes =
  let defaults = [ 100_000; 1_000_000 ] in
  match Sys.getenv_opt "EXPIREL_VEXEC_ROWS" with
  | None -> defaults
  | Some s ->
    (match int_of_string_opt s with
     | None -> defaults
     | Some cap when cap <= 0 -> defaults
     | Some cap ->
       (match List.filter (fun n -> n <= cap) defaults with
        | [] -> [ cap ]
        | kept -> kept))

let fractions = [ 0.0; 0.5; 0.99 ]

(* A churny feed: [fraction] of the [n] rows died at t=10, the rest
   live to 1e6; the clock stands at 50 and nothing is vacuumed, so the
   expired rows are physically present — exactly the shape the chunk
   cut exists for. *)
let load_feed ~n ~fraction =
  let db = Database.create ~policy:Database.Lazy () in
  let (_ : Table.t) =
    Database.create_table db ~name:"feed" ~columns:[ "id"; "v" ]
  in
  let expired = int_of_float (fraction *. float_of_int n) in
  for i = 1 to n do
    Database.insert db "feed"
      (Tuple.ints [ i; i mod 1000 ])
      ~texp:(Time.of_int (if i <= expired then 10 else 1_000_000))
  done;
  Database.advance_to db (Time.of_int 50);
  db

(* Time reps of a compiled plan, after one warm run that builds the
   generation caches (table snapshot, sorted chunks) both strategies
   share — steady-state latency is the quantity of interest. *)
let time_query ~reps db compiled =
  ignore (Executor.run ~db compiled : Eval.result);
  let (), s =
    Bench_util.time_it (fun () ->
        for _ = 1 to reps do
          ignore (Executor.run ~db compiled : Eval.result)
        done)
  in
  s /. float_of_int reps

(* The live row count of the bare feed, written the way SQL lowers it so the
   planner fuses it into a Grouped_aggregate (the aggregate sits at
   child_arity + 1 = 3): the batched child feeds Partial_agg slices
   straight from the cut batches, the tuple child materialises the
   live snapshot first. *)
let count_expr =
  Algebra.project [ 3 ] (Algebra.aggregate [] Aggregate.Count (Algebra.base "feed"))

(* One key in a thousand: output stays small, so the measurement is the
   scan + predicate work, not result construction. *)
let filter_expr =
  Algebra.select
    (Predicate.Cmp (Predicate.Eq, Predicate.Col 2, Predicate.Const (Value.int 123)))
    (Algebra.base "feed")

let tag name ~n ~fraction =
  Printf.sprintf "%s_n%d_f%d" name n (int_of_float (fraction *. 100.))

let sweep ~name ~reps expr =
  Bench_util.subsection
    (Printf.sprintf "%s: batched vs tuple-at-a-time" name);
  let rows_out = ref [] in
  List.iter
    (fun n ->
      List.iter
        (fun fraction ->
          let db = load_feed ~n ~fraction in
          let batched = Planner.plan ~db expr in
          let tuple = Planner.plan ~db ~batch:false expr in
          let reps = if n >= 1_000_000 then max 1 (reps / 4) else reps in
          let tuple_s = time_query ~reps db tuple in
          let batch_s = time_query ~reps db batched in
          let speedup = tuple_s /. Float.max 1e-9 batch_s in
          Bench_util.metric (tag name ~n ~fraction ^ "_tuple_us")
            (tuple_s *. 1e6);
          Bench_util.metric (tag name ~n ~fraction ^ "_batch_us")
            (batch_s *. 1e6);
          Bench_util.metric (tag name ~n ~fraction ^ "_speedup") speedup;
          rows_out :=
            [ string_of_int n;
              Printf.sprintf "%.0f%%" (fraction *. 100.);
              Bench_util.f1 (tuple_s *. 1e6);
              Bench_util.f1 (batch_s *. 1e6);
              Bench_util.f1 speedup ]
            :: !rows_out)
        fractions)
    sizes;
  Bench_util.table
    ~headers:[ "rows"; "expired"; "tuple us"; "batch us"; "speedup" ]
    (List.rev !rows_out)

(* The join probe: a small all-live dimension (10 keys) against the
   churny feed, equi-joined on feed.v — 1% of live feed rows match, so
   probe-side work dominates.  The batched plan cuts the probe side's
   expired rows wholesale and probes from column batches. *)
let join_sweep ~reps () =
  Bench_util.subsection "hash-join probe over a churny feed";
  let join_expr =
    Algebra.join
      (Predicate.Cmp (Predicate.Eq, Predicate.Col 2, Predicate.Col 3))
      (Algebra.base "feed") (Algebra.base "dim")
  in
  let rows_out = ref [] in
  List.iter
    (fun n ->
      List.iter
        (fun fraction ->
          let db = load_feed ~n ~fraction in
          let (_ : Table.t) =
            Database.create_table db ~name:"dim" ~columns:[ "k"; "w" ]
          in
          for k = 0 to 9 do
            Database.insert db "dim" (Tuple.ints [ k; k * 11 ])
              ~texp:(Time.of_int 1_000_000)
          done;
          let batched = Planner.plan ~db join_expr in
          let tuple = Planner.plan ~db ~batch:false join_expr in
          let reps = if n >= 1_000_000 then max 1 (reps / 4) else reps in
          let tuple_s = time_query ~reps db tuple in
          let batch_s = time_query ~reps db batched in
          let speedup = tuple_s /. Float.max 1e-9 batch_s in
          Bench_util.metric (tag "join" ~n ~fraction ^ "_tuple_us")
            (tuple_s *. 1e6);
          Bench_util.metric (tag "join" ~n ~fraction ^ "_batch_us")
            (batch_s *. 1e6);
          Bench_util.metric (tag "join" ~n ~fraction ^ "_speedup") speedup;
          rows_out :=
            [ string_of_int n;
              Printf.sprintf "%.0f%%" (fraction *. 100.);
              Bench_util.f1 (tuple_s *. 1e6);
              Bench_util.f1 (batch_s *. 1e6);
              Bench_util.f1 speedup ]
            :: !rows_out)
        fractions)
    sizes;
  Bench_util.table
    ~headers:[ "rows"; "expired"; "tuple us"; "batch us"; "speedup" ]
    (List.rev !rows_out)

(* The observability counters must see the cut working: re-run the
   headline configuration and record how many expired rows the chunk
   cut skipped without touching. *)
let cut_accounting () =
  Bench_util.subsection "chunk-cut accounting (Vec_stats)";
  let n = List.fold_left max 0 sizes in
  let db = load_feed ~n ~fraction:0.5 in
  let before = (Expirel_obs.Vec_stats.snapshot ()).Expirel_obs.Vec_stats.s_cut_skipped in
  ignore (Executor.run ~db (Planner.plan ~db count_expr) : Eval.result);
  let after = (Expirel_obs.Vec_stats.snapshot ()).Expirel_obs.Vec_stats.s_cut_skipped in
  let skipped = after - before in
  Bench_util.param_int "cut_accounting_rows" n;
  Bench_util.metric_int "cut_skipped_at_f50" skipped;
  Printf.printf "cut skipped %d of %d expired rows wholesale\n" skipped (n / 2);
  if skipped < n / 2 then
    failwith "chunk cut skipped fewer rows than the expired half"

let run_all () =
  Bench_util.section
    "Experiment exp-vexec: vectorized execution over expiration-ordered \
     batches";
  Bench_util.param "sizes"
    (String.concat "," (List.map string_of_int sizes));
  let reps = 20 in
  sweep ~name:"live_cut" ~reps count_expr;
  sweep ~name:"filter" ~reps filter_expr;
  join_sweep ~reps ();
  cut_accounting ()
