(* Experiment exp-cluster: scatter-gather over real shards, and what
   expiration-aware pruning saves.

   A 3-shard cluster (in-process servers, loopback sockets) serves a
   hash-partitioned table.  Measured:

   - scatter-gather read throughput through the coordinator (parallel
     fan-out, union-rule merge) against single-shard routed reads;
   - coordinator-to-shard traffic (messages and bytes) for the same
     query mix with pruning on vs forced broadcast, after most of the
     keyspace has expired — the cluster-level payoff of the paper's
     min/max-texp bounds: shards whose whole partition is provably
     dead at tau are never contacted.

   Expected shape: with 2 of 3 partitions expired, pruning cuts fan-out
   messages by ~2/3 and reply bytes by more (dead shards answer with
   empty listings, live ones with rows either way). *)

open Expirel_core
open Expirel_server
module Coordinator = Expirel_cluster.Coordinator

let shards = 3
let keys = 300
let queries = 200

let no_err = function
  | Wire.Err { message; _ } -> failwith message
  | (r : Wire.response) -> r

let with_cluster f =
  let config =
    { Server.default_config with Server.host = "127.0.0.1"; port = 0 }
  in
  let servers = List.init shards (fun _ -> Server.create ~config ()) in
  List.iter Server.start servers;
  Fun.protect
    ~finally:(fun () -> List.iter Server.stop servers)
    (fun () ->
      let coord =
        Coordinator.create ~heartbeat_interval:0.
          ~shards:
            (List.map
               (fun s ->
                 { Coordinator.host = "127.0.0.1"; port = Server.port s })
               servers)
          ()
      in
      Fun.protect ~finally:(fun () -> Coordinator.close coord) (fun () -> f coord))

let run_all () =
  Bench_util.section "exp-cluster: sharded scatter-gather and pruning";
  Bench_util.param_int "shards" shards;
  Bench_util.param_int "keys" keys;
  Bench_util.param_int "queries" queries;
  with_cluster (fun coord ->
      ignore (no_err (Coordinator.exec coord "CREATE TABLE t (k, v)"));
      (* Two expiration cohorts: keys on shard 0 live to 1000, all other
         keys die at 10 — after ADVANCE TO 100, two of three partitions
         are provably empty. *)
      let map = Coordinator.shard_map coord in
      List.iter
        (fun k ->
          let texp =
            if Wire.shard_owner map (Value.int k) = 0 then 1000 else 10
          in
          ignore
            (no_err
               (Coordinator.exec coord
                  (Printf.sprintf "INSERT INTO t VALUES (%d, %d) EXPIRES %d" k
                     (k * 7) texp))))
        (List.init keys (fun i -> i + 1));

      (* ---- scatter-gather throughput, everything live ---- *)
      Bench_util.subsection "scatter-gather reads, all partitions live";
      let (), fanout_s =
        Bench_util.time_it (fun () ->
            for i = 1 to queries do
              ignore
                (no_err
                   (Coordinator.exec coord
                      (Printf.sprintf "SELECT * FROM t WHERE v = %d"
                         (i * 7 mod (keys * 7)))))
            done)
      in
      let fanout_rps = float_of_int queries /. fanout_s in
      Printf.printf "scatter-gather: %d queries in %.3f s (%.0f req/s)\n"
        queries fanout_s fanout_rps;
      Bench_util.metric "scatter_gather_req_per_s" fanout_rps;

      (* ---- routed single-key inserts as a throughput baseline ---- *)
      let (), insert_s =
        Bench_util.time_it (fun () ->
            for i = 1 to queries do
              ignore
                (no_err
                   (Coordinator.exec coord
                      (Printf.sprintf
                         "INSERT INTO t VALUES (%d, 0) EXPIRES 1000"
                         (keys + i))))
            done)
      in
      Printf.printf "routed inserts: %d in %.3f s (%.0f req/s)\n" queries
        insert_s
        (float_of_int queries /. insert_s);
      Bench_util.metric "routed_insert_req_per_s"
        (float_of_int queries /. insert_s);
      (* Remove the extra rows so both traffic runs see the same data. *)
      ignore
        (no_err
           (Coordinator.exec coord
              (Printf.sprintf "DELETE FROM t WHERE k > %d" keys)));

      (* ---- traffic: pruned fan-out vs broadcast after expiry ---- *)
      Bench_util.subsection "traffic after 2/3 of the keyspace expired";
      ignore (no_err (Coordinator.exec coord "ADVANCE TO 100"));
      let run ~prune =
        let before = Coordinator.traffic coord in
        for _ = 1 to queries do
          ignore (no_err (Coordinator.exec ~prune coord "SELECT * FROM t"))
        done;
        let after = Coordinator.traffic coord in
        ( after.Coordinator.messages - before.Coordinator.messages,
          after.Coordinator.bytes_sent - before.Coordinator.bytes_sent
          + after.Coordinator.bytes_received
          - before.Coordinator.bytes_received )
      in
      let broadcast_msgs, broadcast_bytes = run ~prune:false in
      let pruned_msgs, pruned_bytes = run ~prune:true in
      let pct saved total =
        100. *. float_of_int saved /. float_of_int (max 1 total)
      in
      Bench_util.table
        ~headers:[ "fan-out"; "messages"; "bytes on the wire" ]
        [ [ "broadcast"; string_of_int broadcast_msgs;
            string_of_int broadcast_bytes ];
          [ "pruned"; string_of_int pruned_msgs; string_of_int pruned_bytes ];
          [ "saved";
            Printf.sprintf "%.0f%%" (pct (broadcast_msgs - pruned_msgs) broadcast_msgs);
            Printf.sprintf "%.0f%%" (pct (broadcast_bytes - pruned_bytes) broadcast_bytes)
          ] ];
      Bench_util.metric_int "broadcast_messages" broadcast_msgs;
      Bench_util.metric_int "pruned_messages" pruned_msgs;
      Bench_util.metric_int "broadcast_bytes" broadcast_bytes;
      Bench_util.metric_int "pruned_bytes" pruned_bytes;
      Bench_util.metric "messages_saved_pct"
        (pct (broadcast_msgs - pruned_msgs) broadcast_msgs);
      Bench_util.metric "bytes_saved_pct"
        (pct (broadcast_bytes - pruned_bytes) broadcast_bytes);
      Bench_util.metric_int "pruned_shard_contacts"
        (Coordinator.traffic coord).Coordinator.pruned;

      (* ---- distributed GROUP BY and joins vs gather-then-compute ----

         The coordinator now has two ways to answer what it used to
         refuse: decompose (per-shard slice partials for grouped
         aggregates, broadcast hash joins for small build sides) or
         gather the base tables and compute locally.  Measured head to
         head: a GROUP BY combined from partials vs a query shipping the
         same table wholesale through the fallback, and one broadcast
         join routed both ways (an AT pinned to the cluster clock forces
         the gather path without changing the answer). *)
      Bench_util.subsection "distributed GROUP BY / joins vs gather";
      List.iter
        (fun sql -> ignore (no_err (Coordinator.exec coord sql)))
        ([ "CREATE TABLE g (k, grp)";
           "CREATE TABLE dim (tag, label)";
           "CREATE TABLE none (tag, label)" ]
        @ List.init keys (fun i ->
              Printf.sprintf "INSERT INTO g VALUES (%d, %d) EXPIRES 1000"
                (i + 1)
                ((i + 1) mod 10))
        @ List.init 10 (fun d ->
              Printf.sprintf "INSERT INTO dim VALUES (%d, %d) EXPIRES 1000" d
                (d * 2)));
      let timed sql =
        let before = Coordinator.traffic coord in
        let (), s =
          Bench_util.time_it (fun () ->
              for _ = 1 to queries do
                ignore (no_err (Coordinator.exec coord sql))
              done)
        in
        let after = Coordinator.traffic coord in
        let bytes =
          (after.Coordinator.bytes_sent - before.Coordinator.bytes_sent
          + after.Coordinator.bytes_received
          - before.Coordinator.bytes_received)
          / queries
        in
        (float_of_int queries /. s, bytes)
      in
      (* 10 groups straddling every shard, combined from slice partials
         vs the fallback hauling all of g to the coordinator (a
         projected EXCEPT against an empty table routes through it). *)
      let group_rps, group_bytes =
        timed "SELECT grp, COUNT(*) FROM g GROUP BY grp"
      in
      let gather_rps, gather_bytes =
        timed "SELECT k, grp FROM g EXCEPT SELECT tag, label FROM none"
      in
      (* The same broadcast hash join (10-row build side shipped to the
         shards) vs the identical join forced through gather-compute. *)
      let bjoin_rps, bjoin_bytes =
        timed "SELECT * FROM g JOIN dim ON g.grp = dim.tag"
      in
      let gjoin_rps, gjoin_bytes =
        timed "SELECT * FROM g JOIN dim ON g.grp = dim.tag AT 100"
      in
      Bench_util.table
        ~headers:[ "query"; "req/s"; "bytes/query" ]
        [ [ "GROUP BY via slice partials"; Printf.sprintf "%.0f" group_rps;
            string_of_int group_bytes ];
          [ "gather the table (fallback)"; Printf.sprintf "%.0f" gather_rps;
            string_of_int gather_bytes ];
          [ "broadcast hash join"; Printf.sprintf "%.0f" bjoin_rps;
            string_of_int bjoin_bytes ];
          [ "same join, gather-compute"; Printf.sprintf "%.0f" gjoin_rps;
            string_of_int gjoin_bytes ] ];
      Bench_util.metric "groupby_partials_req_per_s" group_rps;
      Bench_util.metric_int "groupby_partials_bytes_per_query" group_bytes;
      Bench_util.metric "gather_table_req_per_s" gather_rps;
      Bench_util.metric_int "gather_table_bytes_per_query" gather_bytes;
      Bench_util.metric "broadcast_join_req_per_s" bjoin_rps;
      Bench_util.metric_int "broadcast_join_bytes_per_query" bjoin_bytes;
      Bench_util.metric "gather_join_req_per_s" gjoin_rps;
      Bench_util.metric_int "gather_join_bytes_per_query" gjoin_bytes)
