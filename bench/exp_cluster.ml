(* Experiment exp-cluster: scatter-gather over real shards, and what
   expiration-aware pruning saves.

   A 3-shard cluster (in-process servers, loopback sockets) serves a
   hash-partitioned table.  Measured:

   - scatter-gather read throughput through the coordinator (parallel
     fan-out, union-rule merge) against single-shard routed reads;
   - coordinator-to-shard traffic (messages and bytes) for the same
     query mix with pruning on vs forced broadcast, after most of the
     keyspace has expired — the cluster-level payoff of the paper's
     min/max-texp bounds: shards whose whole partition is provably
     dead at tau are never contacted.

   Expected shape: with 2 of 3 partitions expired, pruning cuts fan-out
   messages by ~2/3 and reply bytes by more (dead shards answer with
   empty listings, live ones with rows either way). *)

open Expirel_core
open Expirel_server
module Coordinator = Expirel_cluster.Coordinator

let shards = 3
let keys = 300
let queries = 200

let no_err = function
  | Wire.Err { message; _ } -> failwith message
  | (r : Wire.response) -> r

let with_cluster f =
  let config =
    { Server.default_config with Server.host = "127.0.0.1"; port = 0 }
  in
  let servers = List.init shards (fun _ -> Server.create ~config ()) in
  List.iter Server.start servers;
  Fun.protect
    ~finally:(fun () -> List.iter Server.stop servers)
    (fun () ->
      let coord =
        Coordinator.create ~heartbeat_interval:0.
          ~shards:
            (List.map
               (fun s ->
                 { Coordinator.host = "127.0.0.1"; port = Server.port s })
               servers)
          ()
      in
      Fun.protect ~finally:(fun () -> Coordinator.close coord) (fun () -> f coord))

let run_all () =
  Bench_util.section "exp-cluster: sharded scatter-gather and pruning";
  Bench_util.param_int "shards" shards;
  Bench_util.param_int "keys" keys;
  Bench_util.param_int "queries" queries;
  with_cluster (fun coord ->
      ignore (no_err (Coordinator.exec coord "CREATE TABLE t (k, v)"));
      (* Two expiration cohorts: keys on shard 0 live to 1000, all other
         keys die at 10 — after ADVANCE TO 100, two of three partitions
         are provably empty. *)
      let map = Coordinator.shard_map coord in
      List.iter
        (fun k ->
          let texp =
            if Wire.shard_owner map (Value.int k) = 0 then 1000 else 10
          in
          ignore
            (no_err
               (Coordinator.exec coord
                  (Printf.sprintf "INSERT INTO t VALUES (%d, %d) EXPIRES %d" k
                     (k * 7) texp))))
        (List.init keys (fun i -> i + 1));

      (* ---- scatter-gather throughput, everything live ---- *)
      Bench_util.subsection "scatter-gather reads, all partitions live";
      let (), fanout_s =
        Bench_util.time_it (fun () ->
            for i = 1 to queries do
              ignore
                (no_err
                   (Coordinator.exec coord
                      (Printf.sprintf "SELECT * FROM t WHERE v = %d"
                         (i * 7 mod (keys * 7)))))
            done)
      in
      let fanout_rps = float_of_int queries /. fanout_s in
      Printf.printf "scatter-gather: %d queries in %.3f s (%.0f req/s)\n"
        queries fanout_s fanout_rps;
      Bench_util.metric "scatter_gather_req_per_s" fanout_rps;

      (* ---- routed single-key inserts as a throughput baseline ---- *)
      let (), insert_s =
        Bench_util.time_it (fun () ->
            for i = 1 to queries do
              ignore
                (no_err
                   (Coordinator.exec coord
                      (Printf.sprintf
                         "INSERT INTO t VALUES (%d, 0) EXPIRES 1000"
                         (keys + i))))
            done)
      in
      Printf.printf "routed inserts: %d in %.3f s (%.0f req/s)\n" queries
        insert_s
        (float_of_int queries /. insert_s);
      Bench_util.metric "routed_insert_req_per_s"
        (float_of_int queries /. insert_s);
      (* Remove the extra rows so both traffic runs see the same data. *)
      ignore
        (no_err
           (Coordinator.exec coord
              (Printf.sprintf "DELETE FROM t WHERE k > %d" keys)));

      (* ---- traffic: pruned fan-out vs broadcast after expiry ---- *)
      Bench_util.subsection "traffic after 2/3 of the keyspace expired";
      ignore (no_err (Coordinator.exec coord "ADVANCE TO 100"));
      let run ~prune =
        let before = Coordinator.traffic coord in
        for _ = 1 to queries do
          ignore (no_err (Coordinator.exec ~prune coord "SELECT * FROM t"))
        done;
        let after = Coordinator.traffic coord in
        ( after.Coordinator.messages - before.Coordinator.messages,
          after.Coordinator.bytes_sent - before.Coordinator.bytes_sent
          + after.Coordinator.bytes_received
          - before.Coordinator.bytes_received )
      in
      let broadcast_msgs, broadcast_bytes = run ~prune:false in
      let pruned_msgs, pruned_bytes = run ~prune:true in
      let pct saved total =
        100. *. float_of_int saved /. float_of_int (max 1 total)
      in
      Bench_util.table
        ~headers:[ "fan-out"; "messages"; "bytes on the wire" ]
        [ [ "broadcast"; string_of_int broadcast_msgs;
            string_of_int broadcast_bytes ];
          [ "pruned"; string_of_int pruned_msgs; string_of_int pruned_bytes ];
          [ "saved";
            Printf.sprintf "%.0f%%" (pct (broadcast_msgs - pruned_msgs) broadcast_msgs);
            Printf.sprintf "%.0f%%" (pct (broadcast_bytes - pruned_bytes) broadcast_bytes)
          ] ];
      Bench_util.metric_int "broadcast_messages" broadcast_msgs;
      Bench_util.metric_int "pruned_messages" pruned_msgs;
      Bench_util.metric_int "broadcast_bytes" broadcast_bytes;
      Bench_util.metric_int "pruned_bytes" pruned_bytes;
      Bench_util.metric "messages_saved_pct"
        (pct (broadcast_msgs - pruned_msgs) broadcast_msgs);
      Bench_util.metric "bytes_saved_pct"
        (pct (broadcast_bytes - pruned_bytes) broadcast_bytes);
      Bench_util.metric_int "pruned_shard_contacts"
        (Coordinator.traffic coord).Coordinator.pruned)
