(* Shared helpers for the benchmark/reproduction harness. *)

let section title =
  let line = String.make (String.length title + 8) '=' in
  Printf.printf "\n%s\n=== %s ===\n%s\n" line title line

let subsection title = Printf.printf "\n--- %s ---\n" title

(* Wall-clock timing of a thunk, in seconds, via the monotonic clock. *)
let time_it f =
  let t0 = Monotonic_clock.now () in
  let result = f () in
  let t1 = Monotonic_clock.now () in
  result, Int64.to_float (Int64.sub t1 t0) /. 1e9

(* Fixed-width text table: header row plus data rows. *)
let table ~headers rows =
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left (fun w row -> max w (String.length (List.nth row i)))
          (String.length h) rows)
      headers
  in
  let render cells =
    String.concat "  "
      (List.map2 (fun w c -> Printf.sprintf "%-*s" w c) widths cells)
  in
  print_endline (render headers);
  print_endline (render (List.map (fun w -> String.make w '-') widths));
  List.iter (fun row -> print_endline (render row)) rows

let f1 x = Printf.sprintf "%.1f" x
let f2 x = Printf.sprintf "%.2f" x

let rng seed = Random.State.make [| seed; 2006 |]

(* ---------- machine-readable results ---------- *)

(* Experiments call [param]/[metric] while they run; the harness in
   main.ml flushes whatever was recorded — plus the wall-clock time —
   to BENCH_<experiment>.json after each experiment, so plots and CI
   trend checks need not scrape the text tables. *)

let recorded_params : (string * string) list ref = ref []
let recorded_metrics : (string * float) list ref = ref []

let param name value = recorded_params := (name, value) :: !recorded_params
let param_int name n = param name (string_of_int n)
let metric name value = recorded_metrics := (name, value) :: !recorded_metrics
let metric_int name n = metric name (float_of_int n)

let reset_recordings () =
  recorded_params := [];
  recorded_metrics := []

let json_string s =
  let buffer = Buffer.create (String.length s + 2) in
  Buffer.add_char buffer '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\t' -> Buffer.add_string buffer "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.add_char buffer '"';
  Buffer.contents buffer

let json_number x =
  if Float.is_finite x then
    (* Integral values print as integers so consumers need no epsilon. *)
    if Float.is_integer x && Float.abs x < 1e15 then
      Printf.sprintf "%.0f" x
    else Printf.sprintf "%.6g" x
  else "null"

let write_json ~experiment ~description ~elapsed =
  let path = Printf.sprintf "BENCH_%s.json" experiment in
  let entries to_value recorded =
    List.rev_map
      (fun (name, value) ->
        Printf.sprintf "    %s: %s" (json_string name) (to_value value))
      recorded
    |> String.concat ",\n"
  in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": %s,\n\
    \  \"description\": %s,\n\
    \  \"elapsed_seconds\": %s,\n\
    \  \"parameters\": {\n%s\n  },\n\
    \  \"metrics\": {\n%s\n  }\n\
     }\n"
    (json_string experiment) (json_string description)
    (json_number elapsed)
    (entries json_string !recorded_params)
    (entries json_number !recorded_metrics);
  close_out oc;
  reset_recordings ();
  path
