(* The paper's loosely-coupled setting (Section 1) end to end over real
   sockets: an expirel server, a client that ships a query result *with
   its validity information* (per-tuple texp and texp(e)), and a push
   subscription whose Row_expired events arrive at the exact logical
   times — the abstract's trigger story as a network service.

     dune exec examples/net_demo.exe *)

open Expirel_server

let ok = function
  | Ok v -> v
  | Error e -> failwith e

let show client sql =
  Printf.printf "expirel> %s\n%s\n" sql (Wire.render_response (ok (Client.exec client sql)))

let () =
  let server = Server.create () in
  Server.start server;
  let port = Server.port server in
  Printf.printf "server on 127.0.0.1:%d\n\n" port;

  let client = Client.connect ~host:"127.0.0.1" ~port () in

  (* Figure 1's news-service profiles, loaded remotely. *)
  show client "CREATE TABLE pol (uid, deg)";
  show client "INSERT INTO pol VALUES (1, 25) EXPIRES 10";
  show client "INSERT INTO pol VALUES (2, 25) EXPIRES 15";
  show client "INSERT INTO pol VALUES (3, 35) EXPIRES 10";

  (* The result carries each row's texp and the expression's texp(e):
     everything a remote cache needs to stay sound without polling. *)
  show client "SELECT uid, deg FROM pol";

  (* A continuous query: the server pushes events at the exact logical
     times rows leave the result. *)
  ok (Client.subscribe client ~name:"profiles" ~query:"SELECT uid FROM pol");
  print_endline "subscribed 'profiles' to SELECT uid FROM pol\n";

  show client "ADVANCE TO 12";
  List.iter
    (fun e -> print_endline (Wire.render_response (Wire.Event e)))
    (Client.events client);
  print_newline ();

  show client "SELECT uid, deg FROM pol";

  (match ok (Client.stats client) with
   | s ->
     Printf.printf "\nserver metrics: %d request(s), %d event(s) pushed, %d tuple(s) expired\n"
       s.Wire.requests_total s.Wire.events_pushed s.Wire.tuples_expired);

  Client.close client;
  Server.stop server
