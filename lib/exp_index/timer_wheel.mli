(** Hierarchical timing wheel over discrete ticks.

    Level [l] consists of [wheel_size] slots each spanning
    [wheel_size^l] ticks, so [levels] levels cover [wheel_size^levels]
    ticks ahead of the current time; entries beyond that horizon go to an
    overflow list that is redistributed as the top level turns.  Insertion
    and expiration are O(1) amortised — the constant-time behaviour that
    motivates using expiration indexes for real-time guarantees. *)

type t

val create : ?wheel_size:int -> ?levels:int -> start:int -> unit -> t
(** [create ~start ()] begins at tick [start].  Defaults: [wheel_size]
    64, [levels] 4 (horizon 16.7M ticks). *)

val now : t -> int
val size : t -> int

val add : t -> at:int -> int -> unit
(** [add w ~at id] schedules [id] at tick [at].  Entries with
    [at <= now w] are delivered by the next {!advance}. *)

val advance : t -> to_:int -> (int * int) list
(** [advance w ~to_] moves the clock to [to_] and returns all due
    [(time, id)] entries in nondecreasing time order (ties by id).
    Cost is O(occupied ticks + cascade boundaries crossed), not
    O([to_ - now w]): runs of ticks that can neither deliver nor
    cascade a populated level are skipped, so a large clock jump over a
    sparse or empty wheel (replica catch-up after downtime) is cheap.
    @raise Invalid_argument when [to_ < now w] *)

val next_expiry : t -> int option
(** Earliest scheduled tick [> now], scanning forward; [None] when the
    wheel is empty.  O(slots scanned); intended for idle-time queries,
    not hot loops. *)
