type entry = {
  at : int;
  id : int;
}

type t = {
  wheel_size : int;
  levels : int;
  slots : entry list array array;  (* slots.(level).(index) *)
  counts : int array;  (* live entries stored in slots.(level) *)
  mutable now : int;
  mutable size : int;
  mutable overdue : entry list;
  mutable overflow : entry list;
  mutable overflow_count : int;
}

let create ?(wheel_size = 64) ?(levels = 4) ~start () =
  if wheel_size < 2 then invalid_arg "Timer_wheel.create: wheel_size < 2";
  if levels < 1 then invalid_arg "Timer_wheel.create: levels < 1";
  { wheel_size;
    levels;
    slots = Array.init levels (fun _ -> Array.make wheel_size []);
    counts = Array.make levels 0;
    now = start;
    size = 0;
    overdue = [];
    overflow = [];
    overflow_count = 0
  }

let now w = w.now
let size w = w.size

(* span l = wheel_size^(l+1): the furthest delta level l can hold. *)
let span w l =
  let rec pow acc n = if n = 0 then acc else pow (acc * w.wheel_size) (n - 1) in
  pow 1 (l + 1)

let place w e =
  let delta = e.at - w.now in
  if delta <= 0 then w.overdue <- e :: w.overdue
  else begin
    let rec find l = if l >= w.levels || delta < span w l then l else find (l + 1) in
    let l = find 0 in
    if l >= w.levels then begin
      w.overflow <- e :: w.overflow;
      w.overflow_count <- w.overflow_count + 1
    end
    else begin
      let unit = if l = 0 then 1 else span w (l - 1) in
      let idx = e.at / unit mod w.wheel_size in
      w.slots.(l).(idx) <- e :: w.slots.(l).(idx);
      w.counts.(l) <- w.counts.(l) + 1
    end
  end

let add w ~at id =
  w.size <- w.size + 1;
  place w { at; id }

(* Pull a higher-level slot (or the overflow) down, re-placing entries
   relative to the new [now]. *)
let cascade w l =
  if l < w.levels then begin
    let unit = span w (l - 1) in
    let idx = w.now / unit mod w.wheel_size in
    let entries = w.slots.(l).(idx) in
    w.slots.(l).(idx) <- [];
    w.counts.(l) <- w.counts.(l) - List.length entries;
    List.iter (place w) entries
  end
  else begin
    let entries = w.overflow in
    w.overflow <- [];
    w.overflow_count <- 0;
    List.iter (place w) entries
  end

(* Slot entries not counting the overdue list (which [advance] drains
   eagerly, so it is always empty at the loop's decision points). *)
let stored w = w.overflow_count + Array.fold_left ( + ) 0 w.counts

let advance w ~to_ =
  if to_ < w.now then invalid_arg "Timer_wheel.advance: moving backwards";
  let due = ref (List.map (fun e -> e.at, e.id) w.overdue) in
  w.overdue <- [];
  (* Run the cascades and the level-0 sweep for the tick [w.now]. *)
  let process_tick () =
    (* When crossing a span boundary, pull the next higher-level slot. *)
    let rec maybe_cascade l =
      if l <= w.levels && w.now mod span w (l - 1) = 0 then begin
        cascade w l;
        maybe_cascade (l + 1)
      end
    in
    maybe_cascade 1;
    (* Cascading can re-place an entry whose time is exactly the current
       tick; it lands in [overdue] and must be delivered now. *)
    if w.overdue <> [] then begin
      due := List.rev_append (List.map (fun e -> e.at, e.id) w.overdue) !due;
      w.overdue <- []
    end;
    let idx = w.now mod w.wheel_size in
    let slot = w.slots.(0).(idx) in
    if slot <> [] then begin
      let ready, later = List.partition (fun e -> e.at <= w.now) slot in
      w.slots.(0).(idx) <- later;
      w.counts.(0) <- w.counts.(0) - List.length ready;
      due := List.rev_append (List.map (fun e -> e.at, e.id) ready) !due
    end
  in
  while w.now < to_ do
    if stored w = 0 then
      (* Empty wheel: every remaining tick is a no-op (cascades pull
         empty slots, sweeps find empty slots), so jump to the target.
         This is the replica-catch-up case: a clock jump of millions of
         ticks used to walk them one by one. *)
      w.now <- to_
    else if w.counts.(0) > 0 then begin
      (* Level 0 holds entries; any tick may deliver.  Walk. *)
      w.now <- w.now + 1;
      process_tick ()
    end
    else begin
      (* Level 0 is empty, so no tick can deliver until a cascade
         repopulates it.  The lowest populated level [k] cascades only
         at multiples of span (k-1) — and so do all levels above it,
         since span (l-1) for l > k is a multiple of span (k-1).  Every
         tick strictly between here and that boundary only cascades
         levels below [k], all empty: skip the whole run. *)
      let rec lowest l =
        if l >= w.levels then w.levels  (* only the overflow is populated *)
        else if w.counts.(l) > 0 then l
        else lowest (l + 1)
      in
      let unit = span w (lowest 1 - 1) in
      let boundary = (w.now / unit + 1) * unit in
      if boundary > to_ then w.now <- to_
      else begin
        w.now <- boundary;
        process_tick ()
      end
    end
  done;
  let due = List.sort compare !due in
  w.size <- w.size - List.length due;
  due

let next_expiry w =
  if w.size = 0 then None
  else begin
    (* Scan everything; fine for idle-time use. *)
    let best = ref None in
    let consider e =
      match !best with
      | None -> best := Some e.at
      | Some b -> if e.at < b then best := Some e.at
    in
    List.iter consider w.overdue;
    Array.iter (fun level -> Array.iter (List.iter consider) level) w.slots;
    List.iter consider w.overflow;
    !best
  end
