type env = string -> Relation.t option

let env_of_list bindings name = List.assoc_opt name bindings

type result = {
  relation : Relation.t;
  texp : Time.t;
}

let run ?(strategy = Aggregate.Exact) ?probe ~env ~tau expr =
  let arity_env name = Option.map Relation.arity (env name) in
  let (_ : int) = Algebra.arity ~env:arity_env expr in
  let rec go e =
    match probe with
    | None -> eval_node e
    | Some p -> p (Algebra.operator_name e) (fun () -> eval_node e)
  and eval_node = function
    | Algebra.Base name ->
      (match env name with
       | Some r -> { relation = Relation.exp tau r; texp = Time.Inf }
       | None -> raise (Errors.Unknown_relation name))
    | Algebra.Select (p, e) ->
      let child = go e in
      { child with relation = Ops.select p child.relation }
    | Algebra.Project (js, e) ->
      let child = go e in
      { child with relation = Ops.project js child.relation }
    | Algebra.Product (l, r) ->
      let lr = go l and rr = go r in
      { relation = Ops.product lr.relation rr.relation;
        texp = Time.min lr.texp rr.texp
      }
    | Algebra.Union (l, r) ->
      let lr = go l and rr = go r in
      { relation = Ops.union lr.relation rr.relation;
        texp = Time.min lr.texp rr.texp
      }
    | Algebra.Join (p, l, r) ->
      let lr = go l and rr = go r in
      { relation = Ops.join p lr.relation rr.relation;
        texp = Time.min lr.texp rr.texp
      }
    | Algebra.Intersect (l, r) ->
      let lr = go l and rr = go r in
      { relation = Ops.intersect lr.relation rr.relation;
        texp = Time.min lr.texp rr.texp
      }
    | Algebra.Diff (l, r) ->
      let lr = go l and rr = go r in
      let reappearance = Ops.first_reappearance lr.relation rr.relation in
      { relation = Ops.diff lr.relation rr.relation;
        texp = Time.min (Time.min lr.texp rr.texp) reappearance
      }
    | Algebra.Aggregate (group, f, e) ->
      let child = go e in
      let relation, invalidation =
        Ops.aggregate strategy ~tau ~group f child.relation
      in
      { relation; texp = Time.min child.texp invalidation }
  in
  go expr

let relation_at ?strategy ~env ~tau expr = (run ?strategy ~env ~tau expr).relation
let expression_texp ~env ~tau expr = (run ~env ~tau expr).texp
