type t =
  | Base of string
  | Select of Predicate.t * t
  | Project of int list * t
  | Product of t * t
  | Union of t * t
  | Join of Predicate.t * t * t
  | Intersect of t * t
  | Diff of t * t
  | Aggregate of int list * Aggregate.func * t

let base name = Base name
let select p e = Select (p, e)
let project js e = Project (js, e)
let product a b = Product (a, b)
let union a b = Union (a, b)
let join p a b = Join (p, a, b)
let intersect a b = Intersect (a, b)
let diff a b = Diff (a, b)
let aggregate group f e = Aggregate (group, f, e)

(* One canonical lower-case name per constructor: Explain's plan trees
   and the observability layer's per-operator timings must agree on
   spelling, so both go through here. *)
let operator_name = function
  | Base _ -> "base"
  | Select _ -> "select"
  | Project _ -> "project"
  | Product _ -> "product"
  | Union _ -> "union"
  | Join _ -> "join"
  | Intersect _ -> "intersect"
  | Diff _ -> "difference"
  | Aggregate _ -> "aggregate"

type env = string -> int option

let check_positions what arity js =
  List.iter
    (fun j ->
      if j < 1 || j > arity then
        Errors.arity_mismatch "%s position %d outside 1..%d" what j arity)
    js

let check_predicate p arity =
  let c = Predicate.max_col p in
  if c > arity then
    Errors.arity_mismatch "predicate column %d outside 1..%d" c arity

let rec arity ~env e =
  match e with
  | Base name ->
    (match env name with
     | Some a -> a
     | None -> raise (Errors.Unknown_relation name))
  | Select (p, e') ->
    let a = arity ~env e' in
    check_predicate p a;
    a
  | Project (js, e') ->
    let a = arity ~env e' in
    if js = [] then Errors.arity_mismatch "empty projection list";
    check_positions "projection" a js;
    List.length js
  | Product (l, r) -> arity ~env l + arity ~env r
  | Join (p, l, r) ->
    let a = arity ~env l + arity ~env r in
    check_predicate p a;
    a
  | Union (l, r) | Intersect (l, r) | Diff (l, r) ->
    let al = arity ~env l and ar = arity ~env r in
    if al <> ar then
      Errors.arity_mismatch "operands not union-compatible: %d vs %d" al ar;
    al
  | Aggregate (group, f, e') ->
    let a = arity ~env e' in
    check_positions "grouping" a group;
    if not (Aggregate.func_arity_ok ~arity:a f) then
      Errors.arity_mismatch "aggregate %s outside 1..%d"
        (Aggregate.func_to_string f) a;
    a + 1

let well_formed ~env e =
  match arity ~env e with
  | a -> Ok a
  | exception Errors.Arity_mismatch msg -> Error msg
  | exception Errors.Unknown_relation name ->
    Error (Printf.sprintf "unknown relation %s" name)

let base_names e =
  let rec collect acc = function
    | Base name -> if List.mem name acc then acc else name :: acc
    | Select (_, e') | Project (_, e') | Aggregate (_, _, e') -> collect acc e'
    | Product (l, r) | Union (l, r) | Join (_, l, r) | Intersect (l, r)
    | Diff (l, r) ->
      collect (collect acc l) r
  in
  List.rev (collect [] e)

let rec size = function
  | Base _ -> 1
  | Select (_, e') | Project (_, e') | Aggregate (_, _, e') -> 1 + size e'
  | Product (l, r) | Union (l, r) | Join (_, l, r) | Intersect (l, r)
  | Diff (l, r) ->
    1 + size l + size r

let rec equal a b =
  match a, b with
  | Base x, Base y -> String.equal x y
  | Select (p, x), Select (q, y) -> p = q && equal x y
  | Project (js, x), Project (ks, y) -> js = ks && equal x y
  | Product (l1, r1), Product (l2, r2)
  | Union (l1, r1), Union (l2, r2)
  | Intersect (l1, r1), Intersect (l2, r2)
  | Diff (l1, r1), Diff (l2, r2) ->
    equal l1 l2 && equal r1 r2
  | Join (p, l1, r1), Join (q, l2, r2) -> p = q && equal l1 l2 && equal r1 r2
  | Aggregate (g1, f1, x), Aggregate (g2, f2, y) ->
    g1 = g2 && f1 = f2 && equal x y
  | ( Base _ | Select _ | Project _ | Product _ | Union _ | Join _
    | Intersect _ | Diff _ | Aggregate _ ), _ ->
    false

let pp_positions ppf js =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
    Format.pp_print_int ppf js

let rec pp ppf = function
  | Base name -> Format.pp_print_string ppf name
  | Select (p, e) -> Format.fprintf ppf "sigma_(%a)(%a)" Predicate.pp p pp e
  | Project (js, e) -> Format.fprintf ppf "pi_(%a)(%a)" pp_positions js pp e
  | Product (l, r) -> Format.fprintf ppf "(%a xexp %a)" pp l pp r
  | Union (l, r) -> Format.fprintf ppf "(%a uexp %a)" pp l pp r
  | Join (p, l, r) ->
    Format.fprintf ppf "(%a joinexp_(%a) %a)" pp l Predicate.pp p pp r
  | Intersect (l, r) -> Format.fprintf ppf "(%a nexp %a)" pp l pp r
  | Diff (l, r) -> Format.fprintf ppf "(%a -exp %a)" pp l pp r
  | Aggregate (group, f, e) ->
    Format.fprintf ppf "agg_({%a},%a)(%a)" pp_positions group Aggregate.pp_func
      f pp e

let to_string e = Format.asprintf "%a" pp e
