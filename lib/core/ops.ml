let select p r = Relation.filter (fun t _ -> Predicate.eval p t) r

let project js r =
  Relation.map_tuples ~arity:(List.length js) (Tuple.project js) r

let product a b =
  let arity = Relation.arity a + Relation.arity b in
  Relation.fold
    (fun r e_r acc ->
      Relation.fold
        (fun s e_s acc ->
          Relation.add (Tuple.concat r s) ~texp:(Time.min e_r e_s) acc)
        b acc)
    a
    (Relation.empty ~arity)

let union a b = Relation.union_max a b
let join p a b = select p (product a b)

let intersect a b =
  Relation.fold
    (fun t e_a acc ->
      match Relation.texp_opt b t with
      | Some e_b -> Relation.add t ~texp:(Time.min e_a e_b) acc
      | None -> acc)
    a
    (Relation.empty ~arity:(Relation.arity a))

let diff a b = Relation.filter (fun t _ -> not (Relation.mem t b)) a

let first_reappearance r s =
  Relation.fold
    (fun t e_r acc ->
      match Relation.texp_opt s t with
      | Some e_s when Time.(e_r > e_s) -> Time.min acc e_s
      | Some _ | None -> acc)
    r Time.Inf

let aggregate strategy ~tau ~group f child =
  (* The strategy's partition expiration time is the expensive part
     (Exact walks the change points); compute it once per partition and
     share it between the row texps and the invalidation fold below. *)
  let parts =
    List.map
      (fun (_key, members) ->
        members, Aggregate.result_texp strategy ~tau f members)
      (Aggregate.partitions ~group child)
  in
  let out_arity = Relation.arity child + 1 in
  let add_partition acc (members, partition_texp) =
    let value = Aggregate.apply f members in
    List.fold_left
      (fun acc (t, member_texp) ->
        (* Cap by the member's own expiration: a result row must not
           outlive the base tuple whose attributes it extends, or the
           materialisation would keep rows a recomputation lacks,
           violating Theorem 2.  (Equation (9) read literally assigns the
           partition's change point to every row; the cap agrees with all
           of the paper's worked examples.) *)
        let texp = Time.min partition_texp member_texp in
        Relation.add (Tuple.concat t (Tuple.of_list [ value ])) ~texp acc)
      acc members
  in
  let relation =
    List.fold_left add_partition (Relation.empty ~arity:out_arity) parts
  in
  (* A partition invalidates the materialisation when its rows are due to
     vanish (at the strategy's partition expiration time) while members
     outlive them; if the partition time coincides with the partition's
     complete expiration, rows track their members and nothing is ever
     missing (Section 2.6.1's two cases for chi). *)
  let invalidation =
    List.fold_left
      (fun acc (members, partition_texp) ->
        if Time.(partition_texp < Aggregate.empties_at members) then
          Time.min acc partition_texp
        else acc)
      Time.Inf parts
  in
  relation, invalidation
