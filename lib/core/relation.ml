module Tuple_map = Map.Make (Tuple)

type chunk = {
  c_len : int;
  c_cols : Value.t array array;
  c_texps : Time.t array;
}

type t = {
  arity : int;
  rows : Time.t Tuple_map.t;
  low : Time.t;
      (* conservative lower bound on the minimum expiration time over
         [rows] (Inf when empty): whenever [low > tau], no tuple has
         expired and [exp tau] is the identity in O(1).  Removals leave
         it stale-low, which only costs a missed fast path, never
         correctness. *)
  mutable chunks : chunk array option;
      (* memoised texp-ascending columnar form ([sorted_chunks]).  Every
         record update that changes [rows] must reset this to [None]:
         record copies carry the mutable cell's current contents, so a
         stale memo would silently describe the pre-update rows.  The
         lazy build races benignly under concurrency (last store wins,
         both results are equal). *)
}

let empty ~arity =
  if arity < 0 then invalid_arg "Relation.empty: negative arity"
  else { arity; rows = Tuple_map.empty; low = Time.Inf; chunks = None }

let arity r = r.arity
let cardinal r = Tuple_map.cardinal r.rows
let is_empty r = Tuple_map.is_empty r.rows

let check_arity r t =
  if Tuple.arity t <> r.arity then
    invalid_arg
      (Printf.sprintf "Relation: tuple arity %d, relation arity %d"
         (Tuple.arity t) r.arity)

let add_merge merge t ~texp r =
  check_arity r t;
  let rows =
    Tuple_map.update t
      (function
        | None -> Some texp
        | Some old -> Some (merge old texp))
      r.rows
  in
  (* [texp] bounds the inserted tuple's final time from below under
     either merge (max keeps one of the operands, min keeps the smaller),
     so [min low texp] stays a valid lower bound. *)
  { r with rows; low = Time.min r.low texp; chunks = None }

let add t ~texp r = add_merge Time.max t ~texp r
let add_min t ~texp r = add_merge Time.min t ~texp r

let replace t ~texp r =
  check_arity r t;
  { r with
    rows = Tuple_map.add t texp r.rows;
    low = Time.min r.low texp;
    chunks = None
  }

let remove t r = { r with rows = Tuple_map.remove t r.rows; chunks = None }
let mem t r = Tuple_map.mem t r.rows
let texp r t = Tuple_map.find t r.rows
let texp_opt r t = Tuple_map.find_opt t r.rows

let exp tau r =
  if Time.(r.low > tau) then r (* nothing expired: O(1) *)
  else
    let rows, low =
      Tuple_map.fold
        (fun t e ((rows, low) as acc) ->
          if Time.(e > tau) then Tuple_map.add t e rows, Time.min low e
          else acc)
        r.rows (Tuple_map.empty, Time.Inf)
    in
    { r with rows; low; chunks = None }

let of_list ~arity rows =
  List.fold_left (fun r (t, texp) -> add t ~texp r) (empty ~arity) rows

let to_list r = Tuple_map.bindings r.rows
let tuples r = List.map fst (to_list r)
let iter f r = Tuple_map.iter f r.rows
let fold f r acc = Tuple_map.fold f r.rows acc
let filter f r = { r with rows = Tuple_map.filter f r.rows; chunks = None }

let map_tuples ~arity f r =
  fold (fun t texp acc -> add (f t) ~texp acc) r (empty ~arity)

let union_max a b =
  if a.arity <> b.arity then
    invalid_arg "Relation.union_max: arity mismatch (union compatibility)"
  else fold (fun t texp acc -> add t ~texp acc) b a

let equal a b = a.arity = b.arity && Tuple_map.equal Time.equal a.rows b.rows

let equal_tuples a b =
  a.arity = b.arity && Tuple_map.equal (fun _ _ -> true) a.rows b.rows

let min_texp r = fold (fun _ e acc -> Time.min e acc) r Time.Inf

let max_texp r =
  if is_empty r then Time.Inf
  else fold (fun _ e acc -> Time.max e acc) r (min_texp r)

let expiry_times r =
  let module Time_set = Set.Make (Time) in
  let times =
    fold
      (fun _ e acc -> if Time.is_finite e then Time_set.add e acc else acc)
      r Time_set.empty
  in
  Time_set.elements times

(* ---------- the texp-sorted columnar form ---------- *)

let chunk_rows = 1024

let chunk_len c = c.c_len
let chunk_col c j = c.c_cols.(j - 1)
let chunk_texps c = c.c_texps

let sorted_chunks r =
  match r.chunks with
  | Some cs -> cs
  | None ->
    let arr = Array.of_list (to_list r) in
    (* ascending texp; ties broken by tuple order so the layout (and
       every profile counter derived from it) is deterministic *)
    Array.sort
      (fun (t1, e1) (t2, e2) ->
        let c = Time.compare e1 e2 in
        if c <> 0 then c else Tuple.compare t1 t2)
      arr;
    let n = Array.length arr in
    let nchunks = (n + chunk_rows - 1) / chunk_rows in
    let cs =
      Array.init nchunks (fun ci ->
          let start = ci * chunk_rows in
          let len = min chunk_rows (n - start) in
          { c_len = len;
            c_texps = Array.init len (fun i -> snd arr.(start + i));
            c_cols =
              Array.init r.arity (fun j ->
                  Array.init len (fun i ->
                      Tuple.attr (fst arr.(start + i)) (j + 1)))
          })
    in
    r.chunks <- Some cs;
    cs

(* First index in [texps.[lo..hi)] whose time is strictly after [tau]
   ([hi] when none): the binary-search live cut over an ascending
   expiration order. *)
let live_cut texps ~tau lo hi =
  let lo = ref lo and hi = ref hi in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Time.(texps.(mid) > tau) then hi := mid else lo := mid + 1
  done;
  !lo

let live_count_at r ~tau =
  if Time.(r.low > tau) then cardinal r
  else
    Array.fold_left
      (fun live c ->
        if c.c_len = 0 then live
        else if Time.(c.c_texps.(c.c_len - 1) <= tau) then live
        else if Time.(c.c_texps.(0) > tau) then live + c.c_len
        else live + c.c_len - live_cut c.c_texps ~tau 0 c.c_len)
      0 (sorted_chunks r)

let pp ppf r =
  if is_empty r then Format.pp_print_string ppf "(empty)"
  else
    Format.pp_print_list
      ~pp_sep:Format.pp_print_newline
      (fun ppf (t, e) -> Format.fprintf ppf "%4s | %a" (Time.to_string e) Tuple.pp t)
      ppf (to_list r)

let to_string r = Format.asprintf "%a" pp r
