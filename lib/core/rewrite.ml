type rule = {
  name : string;
  apply : env:Algebra.env -> Algebra.t -> Algebra.t option;
}

let rule_name r = r.name


let select_merge =
  let apply ~env:_ = function
    | Algebra.Select (p, Algebra.Select (q, e)) ->
      Some (Algebra.Select (Predicate.And (q, p), e))
    | Algebra.Select (p, Algebra.Join (q, l, r)) ->
      Some (Algebra.Join (Predicate.And (q, p), l, r))
    | _ -> None
  in
  { name = "select-merge"; apply }

let select_past_project =
  let apply ~env:_ = function
    | Algebra.Select (p, Algebra.Project (js, e)) ->
      let positions = Array.of_list js in
      let rename i =
        if 1 <= i && i <= Array.length positions then Some positions.(i - 1)
        else None
      in
      Option.map
        (fun p' -> Algebra.Project (js, Algebra.Select (p', e)))
        (Predicate.rename rename p)
    | _ -> None
  in
  { name = "select-past-project"; apply }

(* Splits predicate conjuncts over a product/join boundary: conjuncts
   mentioning only left columns go left, only right columns go right
   (shifted), the rest stay at the node. *)
let split_over ~left_arity ~right_arity p =
  let classify (to_l, to_r, stay) c =
    if Predicate.columns_within left_arity c then c :: to_l, to_r, stay
    else if Predicate.columns_between (left_arity + 1) (left_arity + right_arity) c
    then to_l, Predicate.shift (-left_arity) c :: to_r, stay
    else to_l, to_r, c :: stay
  in
  let to_l, to_r, stay =
    List.fold_left classify ([], [], []) (Predicate.conjuncts p)
  in
  if to_l = [] && to_r = [] then None else Some (to_l, to_r, stay)

let push_into side_conjuncts e =
  match side_conjuncts with
  | [] -> e
  | cs -> Algebra.Select (Predicate.conj cs, e)

let select_pushdown_product =
  let apply ~env node =
    let arities l r = Algebra.arity ~env l, Algebra.arity ~env r in
    match node with
    | Algebra.Select (p, Algebra.Product (l, r)) ->
      let left_arity, right_arity = arities l r in
      Option.map
        (fun (to_l, to_r, stay) ->
          let inner = Algebra.Product (push_into to_l l, push_into to_r r) in
          push_into stay inner)
        (split_over ~left_arity ~right_arity p)
    | Algebra.Join (p, l, r) ->
      let left_arity, right_arity = arities l r in
      Option.map
        (fun (to_l, to_r, stay) ->
          match stay with
          | [] -> Algebra.Product (push_into to_l l, push_into to_r r)
          | _ ->
            Algebra.Join (Predicate.conj stay, push_into to_l l, push_into to_r r))
        (split_over ~left_arity ~right_arity p)
    | _ -> None
  in
  { name = "select-pushdown-product"; apply }

let distribute name make =
  let apply ~env:_ = function
    | Algebra.Select (p, e) ->
      (match make p e with
       | Some e' -> Some e'
       | None -> None)
    | _ -> None
  in
  { name; apply }

let select_pushdown_union =
  distribute "select-pushdown-union" (fun p -> function
    | Algebra.Union (l, r) ->
      Some (Algebra.Union (Algebra.Select (p, l), Algebra.Select (p, r)))
    | _ -> None)

let select_pushdown_intersect =
  distribute "select-pushdown-intersect" (fun p -> function
    | Algebra.Intersect (l, r) ->
      Some (Algebra.Intersect (Algebra.Select (p, l), Algebra.Select (p, r)))
    | _ -> None)

let select_pushdown_diff =
  distribute "select-pushdown-diff" (fun p -> function
    | Algebra.Diff (l, r) ->
      Some (Algebra.Diff (Algebra.Select (p, l), Algebra.Select (p, r)))
    | _ -> None)

let diff_pullup_product =
  let apply ~env:_ = function
    | Algebra.Product (Algebra.Diff (a, b), c) ->
      Some (Algebra.Diff (Algebra.Product (a, c), Algebra.Product (b, c)))
    | Algebra.Product (c, Algebra.Diff (a, b)) ->
      Some (Algebra.Diff (Algebra.Product (c, a), Algebra.Product (c, b)))
    | _ -> None
  in
  { name = "diff-pullup-product"; apply }

let project_pushdown_union =
  let apply ~env:_ = function
    | Algebra.Project (js, Algebra.Union (l, r)) ->
      Some (Algebra.Union (Algebra.Project (js, l), Algebra.Project (js, r)))
    | _ -> None
  in
  { name = "project-pushdown-union"; apply }

let project_merge =
  let apply ~env:_ = function
    | Algebra.Project (js, Algebra.Project (ks, e)) ->
      let inner = Array.of_list ks in
      Some (Algebra.Project (List.map (fun j -> inner.(j - 1)) js, e))
    | _ -> None
  in
  { name = "project-merge"; apply }

let default_rules =
  [ select_merge;
    project_merge;
    select_past_project;
    select_pushdown_union;
    select_pushdown_intersect;
    select_pushdown_diff;
    select_pushdown_product;
    project_pushdown_union;
    diff_pullup_product
  ]

let apply_once ~env rule expr =
  let rec go e =
    match rule.apply ~env e with
    | Some e' -> Some e'
    | None ->
      (match e with
       | Algebra.Base _ -> None
       | Algebra.Select (p, e1) ->
         Option.map (fun e1' -> Algebra.Select (p, e1')) (go e1)
       | Algebra.Project (js, e1) ->
         Option.map (fun e1' -> Algebra.Project (js, e1')) (go e1)
       | Algebra.Aggregate (g, f, e1) ->
         Option.map (fun e1' -> Algebra.Aggregate (g, f, e1')) (go e1)
       | Algebra.Product (l, r) -> go_pair l r (fun l' r' -> Algebra.Product (l', r'))
       | Algebra.Union (l, r) -> go_pair l r (fun l' r' -> Algebra.Union (l', r'))
       | Algebra.Join (p, l, r) ->
         go_pair l r (fun l' r' -> Algebra.Join (p, l', r'))
       | Algebra.Intersect (l, r) ->
         go_pair l r (fun l' r' -> Algebra.Intersect (l', r'))
       | Algebra.Diff (l, r) -> go_pair l r (fun l' r' -> Algebra.Diff (l', r')))
  and go_pair l r rebuild =
    match go l with
    | Some l' -> Some (rebuild l' r)
    | None -> Option.map (fun r' -> rebuild l r') (go r)
  in
  go expr

let rewrite ?(max_passes = 50) ?(rules = default_rules) ~env expr =
  let counts = Hashtbl.create 8 in
  let bump name =
    Hashtbl.replace counts name (1 + Option.value ~default:0 (Hashtbl.find_opt counts name))
  in
  let try_rules e =
    List.find_map
      (fun rule ->
        Option.map (fun e' -> rule.name, e') (rule.apply ~env e))
      rules
  in
  (* One pass: children first, then this node (repeatedly, while rules
     keep firing here). *)
  let rec pass changed e =
    let e =
      match e with
      | Algebra.Base _ -> e
      | Algebra.Select (p, e1) -> Algebra.Select (p, pass changed e1)
      | Algebra.Project (js, e1) -> Algebra.Project (js, pass changed e1)
      | Algebra.Aggregate (g, f, e1) -> Algebra.Aggregate (g, f, pass changed e1)
      | Algebra.Product (l, r) -> Algebra.Product (pass changed l, pass changed r)
      | Algebra.Union (l, r) -> Algebra.Union (pass changed l, pass changed r)
      | Algebra.Join (p, l, r) -> Algebra.Join (p, pass changed l, pass changed r)
      | Algebra.Intersect (l, r) ->
        Algebra.Intersect (pass changed l, pass changed r)
      | Algebra.Diff (l, r) -> Algebra.Diff (pass changed l, pass changed r)
    in
    match try_rules e with
    | Some (name, e') ->
      bump name;
      changed := true;
      e'
    | None -> e
  in
  let rec loop n e =
    if n >= max_passes then e
    else
      let changed = ref false in
      let e' = pass changed e in
      if !changed then loop (n + 1) e' else e'
  in
  let result = loop 0 expr in
  result, Hashtbl.fold (fun name n acc -> (name, n) :: acc) counts []
