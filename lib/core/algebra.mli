(** The expiration-time-aware relational algebra (Sections 2.3–2.6).

    Primitive operators: selection, projection, Cartesian product, union
    (the SPCU algebra of Equations (1)–(4)), plus the non-monotonic
    aggregation (Equation (8)) and difference (Equation (10)).  Join
    (Equation (5)) and intersection (Equation (6)) are derived but carried
    in the AST so plans can be printed and rewritten at their natural
    granularity; the evaluator follows their defining rewrites.

    Attribute positions are 1-based, as in the paper. *)

type t =
  | Base of string  (** a named base relation *)
  | Select of Predicate.t * t  (** [sigma^exp_p], Equation (1) *)
  | Project of int list * t  (** [pi^exp_(j1..jn)], Equation (3) *)
  | Product of t * t  (** [x^exp], Equation (2) *)
  | Union of t * t  (** [u^exp], Equation (4) *)
  | Join of Predicate.t * t * t  (** derived, Equation (5) *)
  | Intersect of t * t  (** derived, Equation (6) *)
  | Diff of t * t  (** [-^exp], Equation (10) *)
  | Aggregate of int list * Aggregate.func * t
      (** [agg^exp_(j1..jn, f)], Equation (8): result tuples are the input
          tuples extended with the aggregate value, arity [alpha(R) + 1] *)

val base : string -> t
val select : Predicate.t -> t -> t
val project : int list -> t -> t
val product : t -> t -> t
val union : t -> t -> t
val join : Predicate.t -> t -> t -> t
val intersect : t -> t -> t
val diff : t -> t -> t
val aggregate : int list -> Aggregate.func -> t -> t

val operator_name : t -> string
(** Canonical lower-case name of the root operator ([base], [select],
    [project], [product], [union], [join], [intersect], [difference],
    [aggregate]) — the vocabulary shared by {!Explain.expr_tree} plan
    lines and per-operator evaluation metrics. *)

type env = string -> int option
(** Arity environment for base relations. *)

val arity : env:env -> t -> int
(** Arity of the expression's result, with full well-formedness checking:
    predicate columns in range (for [Join], predicate columns range over
    the combined arity), projection/grouping positions in range, union
    compatibility ([alpha(R) = alpha(S)], also required of [Intersect] and
    [Diff]).
    @raise Errors.Arity_mismatch on any violation
    @raise Errors.Unknown_relation on an unbound base name *)

val well_formed : env:env -> t -> (int, string) result
(** Non-raising variant of {!arity}. *)

val base_names : t -> string list
(** Distinct base relations mentioned, in first-occurrence order. *)

val size : t -> int
(** Number of operator nodes (base relations count 1). *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Compact mathematical rendering, e.g.
    [pi_(2)(Pol) -exp pi_(1)(El)]. *)

val to_string : t -> string
