let rows_table ?title ?columns ~arity listing =
  let buf = Buffer.create 256 in
  let headers =
    "texp"
    :: (match columns with
        | Some cs -> cs
        | None -> List.init arity (fun i -> Printf.sprintf "a%d" (i + 1)))
  in
  let rows =
    List.map
      (fun (t, e) ->
        Time.to_string e :: List.map Value.to_string (Tuple.to_list t))
      listing
  in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun w row -> max w (String.length (List.nth row i)))
          (String.length h) rows)
      headers
  in
  let render_row cells =
    let padded =
      List.map2 (fun w c -> Printf.sprintf " %-*s " w c) widths cells
    in
    "|" ^ String.concat "|" padded ^ "|"
  in
  let rule =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "+"
  in
  Option.iter (fun t -> Buffer.add_string buf (t ^ "\n")) title;
  Buffer.add_string buf (rule ^ "\n");
  Buffer.add_string buf (render_row headers ^ "\n");
  Buffer.add_string buf (rule ^ "\n");
  if rows = [] then Buffer.add_string buf "| (empty)\n"
  else List.iter (fun row -> Buffer.add_string buf (render_row row ^ "\n")) rows;
  Buffer.add_string buf rule;
  Buffer.contents buf

let relation_table ?title ?columns r =
  rows_table ?title ?columns ~arity:(Relation.arity r) (Relation.to_list r)

let expr_tree e =
  let buf = Buffer.create 128 in
  let line depth s =
    Buffer.add_string buf (String.make (2 * depth) ' ');
    Buffer.add_string buf s;
    Buffer.add_char buf '\n'
  in
  let positions js = String.concat "," (List.map string_of_int js) in
  (* Operator labels come from Algebra.operator_name so plan trees and
     per-operator metrics speak the same vocabulary. *)
  let rec go depth e =
    let op = Algebra.operator_name e in
    match e with
    | Algebra.Base name -> line depth (Printf.sprintf "%s %s" op name)
    | Algebra.Select (p, e1) ->
      line depth (Printf.sprintf "%s [%s]" op (Predicate.to_string p));
      go (depth + 1) e1
    | Algebra.Project (js, e1) ->
      line depth (Printf.sprintf "%s [%s]" op (positions js));
      go (depth + 1) e1
    | Algebra.Product (l, r) | Algebra.Union (l, r) | Algebra.Intersect (l, r)
    | Algebra.Diff (l, r) ->
      line depth op;
      go (depth + 1) l;
      go (depth + 1) r
    | Algebra.Join (p, l, r) ->
      line depth (Printf.sprintf "%s [%s]" op (Predicate.to_string p));
      go (depth + 1) l;
      go (depth + 1) r
    | Algebra.Aggregate (g, f, e1) ->
      line depth
        (Printf.sprintf "%s [group {%s}, %s]" op (positions g)
           (Aggregate.func_to_string f));
      go (depth + 1) e1
  in
  go 0 e;
  Buffer.contents buf

let snapshots ?strategy ~env ~times expr =
  match times with
  | [] -> ""
  | first :: _ ->
    let materialised = Eval.relation_at ?strategy ~env ~tau:first expr in
    let buf = Buffer.create 256 in
    Buffer.add_string buf (Printf.sprintf "%s\n" (Algebra.to_string expr));
    List.iter
      (fun tau ->
        let snapshot = Relation.exp tau materialised in
        Buffer.add_string buf
          (Printf.sprintf "at time %s:\n%s\n" (Time.to_string tau)
             (relation_table snapshot)))
      times;
    Buffer.contents buf
