(** Tuples: elements of [D^alpha(R)] (Section 2.2).

    Attribute positions are 1-based throughout the public API, following
    the paper's numbering [{1, ..., alpha(R)}]. *)

type t

val of_list : Value.t list -> t
val of_array : Value.t array -> t
(** The array is copied. *)

val init : arity:int -> (int -> Value.t) -> t
(** [init ~arity f] is [<f 1, ..., f arity>] — builds the tuple in one
    pass from a 1-based attribute source (how the batch executor
    materialises a row out of column arrays without an intermediate
    list). *)

val to_list : t -> Value.t list
val arity : t -> int

val attr : t -> int -> Value.t
(** [attr t i] is the paper's [t(i)], 1-based.
    @raise Invalid_argument when [i] is out of [1..arity t]. *)

val project : int list -> t -> t
(** [project [j1; ...; jn] t] is [<t(j1), ..., t(jn)>] (1-based). *)

val concat : t -> t -> t
(** [concat r s] is [<r(1), ..., r(alpha R), s(1), ..., s(alpha S)>]. *)

val split : left_arity:int -> t -> t * t
(** Inverse of {!concat}: splits after attribute [left_arity]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val ints : int list -> t
(** Convenience: a tuple of integer values. *)

val pp : Format.formatter -> t -> unit
(** Prints in the paper's angle-bracket style: [<1, 25>]. *)

val to_string : t -> string
