type t = Value.t array

let of_list vs = Array.of_list vs
let of_array a = Array.copy a
let init ~arity f = Array.init arity (fun i -> f (i + 1))
let to_list t = Array.to_list t
let arity t = Array.length t

let attr t i =
  if i < 1 || i > Array.length t then
    invalid_arg
      (Printf.sprintf "Tuple.attr: position %d outside 1..%d" i
         (Array.length t))
  else t.(i - 1)

let project js t = Array.of_list (List.map (attr t) js)
let concat r s = Array.append r s

let split ~left_arity t =
  if left_arity < 0 || left_arity > Array.length t then
    invalid_arg "Tuple.split: bad left_arity"
  else
    ( Array.sub t 0 left_arity,
      Array.sub t left_arity (Array.length t - left_arity) )

let compare a b =
  let la = Array.length a and lb = Array.length b in
  let c = Int.compare la lb in
  if c <> 0 then c
  else
    let rec go i =
      if i >= la then 0
      else
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let equal a b = compare a b = 0

let hash t = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 t

let ints ns = of_list (List.map Value.int ns)

let pp ppf t =
  Format.fprintf ppf "<%a>"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Value.pp)
    (to_list t)

let to_string t = Format.asprintf "%a" pp t
