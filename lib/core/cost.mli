(** Cost estimation for materialised plans (Section 3.1: "In a DBMS,
    the cost estimation mechanisms can be made use of to estimate the
    impact of a rewrite-rule application").

    The model charges each operator its processed cardinality on a
    sample evaluation, counts the recomputations the plan needs over a
    horizon (via its expression expiration times), and combines them:
    a plan recomputed k times costs [(k + 1)] evaluations.  Rewrites
    that postpone recomputation can therefore lose when they inflate
    intermediate results — the trade-off {!choose} arbitrates. *)

type estimate = {
  eval_cost : float;
      (** abstract work units for one evaluation: the sum over operator
          nodes of the cardinality they process *)
  recomputations : int;
      (** how many times the materialisation must be recomputed in
          [\[tau, horizon\[] *)
  total : float;  (** [eval_cost *. float (recomputations + 1)] *)
}

val estimate :
  env:Eval.env -> tau:Time.t -> horizon:Time.t -> Algebra.t -> estimate

val choose :
  env:Eval.env ->
  tau:Time.t ->
  horizon:Time.t ->
  Algebra.t list ->
  Algebra.t * estimate
(** The candidate with the least {!estimate.total} (ties: first).
    @raise Invalid_argument on an empty candidate list *)

type physical_join =
  | Hash
  | Nested_loop

val join_choice : left:int -> right:int -> physical_join
(** Which physical equi-join implementation is cheaper for the estimated
    input cardinalities, on the same work-unit scale as
    {!estimate.eval_cost}: a nested loop costs [left * right] pair
    visits, a hash join a build plus a probe pass.  The physical planner
    consults this whenever a join predicate offers equi-key columns. *)

val pp : Format.formatter -> estimate -> unit
