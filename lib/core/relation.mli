(** Expiring relations: the data model of Section 2.2.

    A relation [R] is a {e set} of tuples of fixed arity together with the
    function [texp_R(.)] mapping each tuple to its expiration time.  We
    represent the pair as a map from tuple to expiration time, which makes
    [texp_R] total on the relation by construction and gives set semantics
    (duplicate insertion merges by taking the {e maximum} expiration time,
    consistent with the union and projection operators, Equations (3)–(4)). *)

type t

val empty : arity:int -> t
(** @raise Invalid_argument when [arity < 0]. *)

val arity : t -> int
val cardinal : t -> int
val is_empty : t -> bool

val add : Tuple.t -> texp:Time.t -> t -> t
(** Set insertion: if the tuple is already present, keeps the later of the
    two expiration times.
    @raise Invalid_argument on arity mismatch. *)

val add_min : Tuple.t -> texp:Time.t -> t -> t
(** Like {!add} but duplicate insertion keeps the {e earlier} expiration
    time — the merge used by the Cartesian product's minimum rule when a
    product produces coinciding tuples. *)

val replace : Tuple.t -> texp:Time.t -> t -> t
(** Unconditional overwrite of the expiration time (update semantics). *)

val remove : Tuple.t -> t -> t
val mem : Tuple.t -> t -> bool

val texp : t -> Tuple.t -> Time.t
(** The paper's [texp_R(r)].
    @raise Not_found when the tuple is not in the relation. *)

val texp_opt : t -> Tuple.t -> Time.t option

val exp : Time.t -> t -> t
(** [exp tau r] is the paper's [exp_tau(R) = { r | texp_R(r) > tau }].
    O(1) when no tuple has expired (the relation caches a lower bound on
    its minimum expiration time), O(n) only when something actually has
    to be filtered out. *)

val of_list : arity:int -> (Tuple.t * Time.t) list -> t
val to_list : t -> (Tuple.t * Time.t) list
(** Sorted by tuple order (deterministic). *)

val tuples : t -> Tuple.t list

val iter : (Tuple.t -> Time.t -> unit) -> t -> unit
val fold : (Tuple.t -> Time.t -> 'a -> 'a) -> t -> 'a -> 'a
val filter : (Tuple.t -> Time.t -> bool) -> t -> t

val map_tuples : arity:int -> (Tuple.t -> Tuple.t) -> t -> t
(** Image of the relation under a tuple transformation; coinciding images
    keep the maximum expiration time (the projection rule, Equation (3)). *)

val union_max : t -> t -> t
(** Set union merging duplicates with [max] (Equation (4)).
    @raise Invalid_argument on arity mismatch (union compatibility). *)

val equal : t -> t -> bool
(** Tuple sets {e and} expiration times coincide. *)

val equal_tuples : t -> t -> bool
(** Tuple sets coincide, ignoring expiration times — the notion of
    equality used when comparing a properly expired materialisation with a
    fresh recomputation (Theorems 1 and 2). *)

val min_texp : t -> Time.t
(** Minimum expiration time over all tuples; [Inf] when empty. *)

val max_texp : t -> Time.t
(** Maximum expiration time over all tuples; [Inf] when empty (callers
    guard emptiness; the paper only takes this maximum over non-empty
    partitions). *)

val expiry_times : t -> Time.t list
(** The distinct, finite expiration times present, ascending. *)

val pp : Format.formatter -> t -> unit
(** Paper-style listing: one [texp | tuple] row per line. *)

val to_string : t -> string
