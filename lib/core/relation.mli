(** Expiring relations: the data model of Section 2.2.

    A relation [R] is a {e set} of tuples of fixed arity together with the
    function [texp_R(.)] mapping each tuple to its expiration time.  We
    represent the pair as a map from tuple to expiration time, which makes
    [texp_R] total on the relation by construction and gives set semantics
    (duplicate insertion merges by taking the {e maximum} expiration time,
    consistent with the union and projection operators, Equations (3)–(4)). *)

type t

val empty : arity:int -> t
(** @raise Invalid_argument when [arity < 0]. *)

val arity : t -> int
val cardinal : t -> int
val is_empty : t -> bool

val add : Tuple.t -> texp:Time.t -> t -> t
(** Set insertion: if the tuple is already present, keeps the later of the
    two expiration times.
    @raise Invalid_argument on arity mismatch. *)

val add_min : Tuple.t -> texp:Time.t -> t -> t
(** Like {!add} but duplicate insertion keeps the {e earlier} expiration
    time — the merge used by the Cartesian product's minimum rule when a
    product produces coinciding tuples. *)

val replace : Tuple.t -> texp:Time.t -> t -> t
(** Unconditional overwrite of the expiration time (update semantics). *)

val remove : Tuple.t -> t -> t
val mem : Tuple.t -> t -> bool

val texp : t -> Tuple.t -> Time.t
(** The paper's [texp_R(r)].
    @raise Not_found when the tuple is not in the relation. *)

val texp_opt : t -> Tuple.t -> Time.t option

val exp : Time.t -> t -> t
(** [exp tau r] is the paper's [exp_tau(R) = { r | texp_R(r) > tau }].
    O(1) when no tuple has expired (the relation caches a lower bound on
    its minimum expiration time), O(n) only when something actually has
    to be filtered out. *)

val of_list : arity:int -> (Tuple.t * Time.t) list -> t
val to_list : t -> (Tuple.t * Time.t) list
(** Sorted by tuple order (deterministic). *)

val tuples : t -> Tuple.t list

val iter : (Tuple.t -> Time.t -> unit) -> t -> unit
val fold : (Tuple.t -> Time.t -> 'a -> 'a) -> t -> 'a -> 'a
val filter : (Tuple.t -> Time.t -> bool) -> t -> t

val map_tuples : arity:int -> (Tuple.t -> Tuple.t) -> t -> t
(** Image of the relation under a tuple transformation; coinciding images
    keep the maximum expiration time (the projection rule, Equation (3)). *)

val union_max : t -> t -> t
(** Set union merging duplicates with [max] (Equation (4)).
    @raise Invalid_argument on arity mismatch (union compatibility). *)

val equal : t -> t -> bool
(** Tuple sets {e and} expiration times coincide. *)

val equal_tuples : t -> t -> bool
(** Tuple sets coincide, ignoring expiration times — the notion of
    equality used when comparing a properly expired materialisation with a
    fresh recomputation (Theorems 1 and 2). *)

val min_texp : t -> Time.t
(** Minimum expiration time over all tuples; [Inf] when empty. *)

val max_texp : t -> Time.t
(** Maximum expiration time over all tuples; [Inf] when empty (callers
    guard emptiness; the paper only takes this maximum over non-empty
    partitions). *)

val expiry_times : t -> Time.t list
(** The distinct, finite expiration times present, ascending. *)

(** {2 The texp-sorted columnar form}

    The batch executor's storage layout: rows reordered ascending by
    expiration time and split into fixed-size column chunks, so that
    "what is live at [tau]" is a binary-search cut instead of one
    comparison per row, and wholly-live / wholly-expired chunks are
    accepted or skipped without touching their rows at all. *)

type chunk
(** [chunk_rows] (or fewer, for the last one) rows in column-major
    layout with a parallel ascending expiration-time array. *)

val chunk_rows : int
(** Rows per chunk (the last chunk of a relation may hold fewer). *)

val chunk_len : chunk -> int
val chunk_col : chunk -> int -> Value.t array
(** [chunk_col c j] is column [j] (1-based), [chunk_len c] values long.
    Callers must not mutate it: chunks are shared, memoised state. *)

val chunk_texps : chunk -> Time.t array
(** The parallel expiration times, ascending. *)

val sorted_chunks : t -> chunk array
(** The relation in texp-ascending chunked columnar form, globally
    sorted (ties broken by tuple order, so the layout is
    deterministic).  Memoised on the relation: the first call pays
    O(n log n), later calls are O(1) — callers that cache relations per
    generation (table snapshots) therefore sort once per generation. *)

val live_cut : Time.t array -> tau:Time.t -> int -> int -> int
(** [live_cut texps ~tau lo hi] is the first index in [[lo, hi)] whose
    time is strictly after [tau] ([hi] when none) — the binary-search
    cut over an ascending expiration order. *)

val live_count_at : t -> tau:Time.t -> int
(** [cardinal (exp tau r)] computed from the sorted chunks: O(1) when
    nothing expired, otherwise a cut per chunk instead of a scan. *)

val pp : Format.formatter -> t -> unit
(** Paper-style listing: one [texp | tuple] row per line. *)

val to_string : t -> string
