(** Selection predicates (Equation (1)).

    The paper's selection predicate [p] is of the form [j = k] (correlated:
    two attribute positions) or [j = a] (uncorrelated: position vs
    constant), closed under [/\ ] and [\/].  We additionally provide the
    other comparison operators and negation, which the formal development
    accommodates unchanged.  Attribute positions are 1-based. *)

type operand =
  | Col of int  (** attribute position, 1-based *)
  | Const of Value.t

type cmp =
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge

type t =
  | True
  | False
  | Cmp of cmp * operand * operand
  | And of t * t
  | Or of t * t
  | Not of t

val eq_cols : int -> int -> t
(** [eq_cols j k] is the paper's correlated predicate [j = k]. *)

val eq_const : int -> Value.t -> t
(** [eq_const j a] is the paper's uncorrelated predicate [j = a]. *)

val conj : t list -> t
val disj : t list -> t

val conjuncts : t -> t list
(** Top-level conjuncts of a predicate ([True] contributes none) —
    [conj (conjuncts p)] is logically equivalent to [p].  The shared
    decomposition the rewriter, the access-path selector and the
    physical planner all work from. *)

type equi_split = {
  pairs : (int * int) list;
      (** cross-side equality conjuncts [(l, r)]: column [l] of the left
          operand equals column [r] of the {e right} operand, both
          1-based in their own relation *)
  residual : t;
      (** the remaining conjuncts, still over the combined columns *)
}

val equi_split : left_arity:int -> t -> equi_split option
(** Decomposes a join predicate over a product of a [left_arity]-column
    relation with another relation into equi-join pairs plus a residual;
    [None] when no cross-side equality conjunct exists (the predicate
    offers a hash or merge join nothing to key on). *)

val eval : t -> Tuple.t -> bool
(** Comparisons touching [Null] or incomparable types are false (and their
    negation true of the comparison, i.e. [Not] is logical negation of the
    three-valued-collapsed boolean).
    @raise Invalid_argument when a column position exceeds the arity. *)

val compile : t -> (int -> Value.t) -> bool
(** [compile p] walks the predicate tree once and returns a kernel that
    evaluates it against a 1-based column accessor — the batch
    executor's per-row test, which never materialises a tuple.  For
    every tuple [t], [compile p (Tuple.attr t) = eval p t]. *)

val max_col : t -> int
(** Largest attribute position mentioned; 0 when none. *)

val shift : int -> t -> t
(** [shift n p] adds [n] to every column position — used to move a
    predicate across a product boundary ([p'] in Equation (5)). *)

val columns_within : int -> t -> bool
(** [columns_within n p] holds when every column mentioned is [<= n]. *)

val columns_between : int -> int -> t -> bool
(** [columns_between lo hi p] holds when every column [c] mentioned
    satisfies [lo <= c && c <= hi]. *)

val rename : (int -> int option) -> t -> t option
(** [rename f p] rewrites every column [c] to [f c]; [None] when some
    column has no image (the predicate cannot be expressed after a
    projection). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
