(** Evaluation of algebra expressions at a time [tau].

    Every operator first passes its arguments through [exp_tau] (Section
    2.3's chosen approach), assigns expiration times to result tuples
    (tuple-level closure, Equations (1)–(8), (10)), and the evaluator
    computes [texp(e)] for the whole expression (expression-level closure)
    — the lower bound on the time at which the materialised result stops
    being maintainable by local expiration alone.

    For the data-dependent cases:
    - difference (Equation (11) with the paper's Section 2.6.2 text):
      the materialisation expires at
      [min { texp_S(t) | t in R /\ t in S /\ texp_R(t) > texp_S(t) }]
      (the first time a tuple should {e reappear} in the result), combined
      with the children's expiration times.  (Equation (11) as printed
      reads [texp_R(t)] in the inner minimum; the surrounding text, the
      definition of [tau_R] and Case (3a) of Table 2 all give [texp_S(t)],
      so we follow those.)
    - aggregation: the materialisation expires at the earliest change
      point [nu(tau, P, f)] among partitions that change value {e before}
      they empty; partitions whose only change is their own complete
      expiration do not invalidate the result (Section 2.6.1). *)

type env = string -> Relation.t option
(** Maps base relation names to their current contents. *)

val env_of_list : (string * Relation.t) list -> env

type result = {
  relation : Relation.t;  (** result tuples with their expiration times *)
  texp : Time.t;  (** the paper's [texp(e)] for this materialisation *)
}

val run :
  ?strategy:Aggregate.strategy ->
  ?probe:(string -> (unit -> result) -> result) ->
  env:env ->
  tau:Time.t ->
  Algebra.t ->
  result
(** [run ~env ~tau e] materialises [e] at time [tau].
    [probe], when given, wraps the evaluation of every operator node:
    it receives the node's {!Algebra.operator_name} and a thunk
    computing that node (children included — a parent's thunk runs its
    children's probes inside it), and must return the thunk's result.
    Observability layers use it to time operators without this module
    depending on any clock.
    [strategy] (default {!Aggregate.Exact}) selects how aggregation
    result tuples get their expiration times; each result row is further
    capped by its originating member's expiration time so that rows never
    outlive their base tuples (keeping Theorem 2 an equality; Equation
    (9) read literally would let them).  [texp(e)] uses the same
    strategy, so less precise strategies also yield earlier
    recomputation.
    @raise Errors.Unknown_relation on an unbound base name
    @raise Errors.Arity_mismatch on ill-formed expressions *)

val relation_at :
  ?strategy:Aggregate.strategy ->
  env:env ->
  tau:Time.t ->
  Algebra.t ->
  Relation.t
(** Just the relation component of {!run}. *)

val expression_texp : env:env -> tau:Time.t -> Algebra.t -> Time.t
(** Just the [texp(e)] component of {!run}. *)
