type estimate = {
  eval_cost : float;
  recomputations : int;
  total : float;
}

(* One instrumented evaluation: every operator is charged the
   cardinality it processes.  Rather than shadowing the evaluator, ride
   {!Eval.run}'s [?probe] hook — the probe keeps a stack of frames, one
   per operator node being evaluated, each collecting the cardinalities
   of that node's children as they complete.  Charging then only needs
   the operator name and its children's sizes, and the accounting cannot
   drift from the evaluation semantics. *)
let eval_cost ~env ~tau expr =
  let cost = ref 0. in
  let charge n = cost := !cost +. float_of_int n in
  (* Innermost frame first; the bottom frame collects the root's size. *)
  let stack = ref [ [] ] in
  let probe name k =
    stack := [] :: !stack;
    let result = k () in
    let children, outer =
      match !stack with
      | children :: outer -> children, outer
      | [] -> assert false
    in
    stack := outer;
    let self = Relation.cardinal result.Eval.relation in
    (match name, children with
     | "base", [] -> charge self
     | ("select" | "project" | "aggregate"), [ c ] -> charge c
     | ("product" | "join"), [ a; b ] -> charge (a * b)
     | ("union" | "intersect" | "difference"), [ a; b ] -> charge (a + b)
     | _ ->
       invalid_arg
         (Printf.sprintf "Cost.eval_cost: operator %s with %d children" name
            (List.length children)));
    (match !stack with
     | parent :: rest -> stack := (self :: parent) :: rest
     | [] -> ());
    result
  in
  let (_ : Eval.result) = Eval.run ~probe ~env ~tau expr in
  !cost

let estimate ~env ~tau ~horizon expr =
  let eval_cost = eval_cost ~env ~tau expr in
  let recomputations =
    List.length (View.maintenance_times ~env ~from:tau ~horizon expr)
  in
  { eval_cost;
    recomputations;
    total = eval_cost *. float_of_int (recomputations + 1)
  }

let choose ~env ~tau ~horizon candidates =
  match candidates with
  | [] -> invalid_arg "Cost.choose: no candidates"
  | first :: rest ->
    List.fold_left
      (fun (best, best_est) candidate ->
        let est = estimate ~env ~tau ~horizon candidate in
        if est.total < best_est.total then candidate, est else best, best_est)
      (first, estimate ~env ~tau ~horizon first)
      rest

type physical_join =
  | Hash
  | Nested_loop

(* Same work-unit scale as eval_cost's charges: a nested loop touches
   every pair, a hash join pays a build and a probe pass (the factor 2
   keeps tiny inputs on the allocation-free loop). *)
let join_choice ~left ~right =
  let nested = float_of_int left *. float_of_int right in
  let hash = 2. *. float_of_int (left + right) in
  if hash < nested then Hash else Nested_loop

let pp ppf { eval_cost; recomputations; total } =
  Format.fprintf ppf "eval %.0f x (1 + %d recomputations) = %.0f" eval_cost
    recomputations total
