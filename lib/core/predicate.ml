type operand =
  | Col of int
  | Const of Value.t

type cmp =
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge

type t =
  | True
  | False
  | Cmp of cmp * operand * operand
  | And of t * t
  | Or of t * t
  | Not of t

let eq_cols j k = Cmp (Eq, Col j, Col k)
let eq_const j a = Cmp (Eq, Col j, Const a)

let conj = function
  | [] -> True
  | p :: ps -> List.fold_left (fun acc q -> And (acc, q)) p ps

let disj = function
  | [] -> False
  | p :: ps -> List.fold_left (fun acc q -> Or (acc, q)) p ps

let operand_value t = function
  | Col j -> Tuple.attr t j
  | Const v -> v

let cmp_holds op a b =
  match Value.cmp a b with
  | None -> false
  | Some c ->
    (match op with
     | Eq -> c = 0
     | Neq -> c <> 0
     | Lt -> c < 0
     | Le -> c <= 0
     | Gt -> c > 0
     | Ge -> c >= 0)

let rec eval p t =
  match p with
  | True -> true
  | False -> false
  | Cmp (op, x, y) -> cmp_holds op (operand_value t x) (operand_value t y)
  | And (a, b) -> eval a t && eval b t
  | Or (a, b) -> eval a t || eval b t
  | Not a -> not (eval a t)

(* Closure-compiled form for the batch executor: the predicate tree is
   walked once, and the per-row work is a chain of direct closure calls
   over a column accessor — no tuple is materialised per row.  Must
   agree with [eval] on every input (the qcheck batch ≡ naive law pins
   this), so each comparison goes through the same [cmp_holds]. *)
let compile p =
  let operand_fn = function
    | Col j -> fun get -> get j
    | Const v -> fun _ -> v
  in
  let rec go = function
    | True -> fun _ -> true
    | False -> fun _ -> false
    | Cmp (op, x, y) ->
      let fx = operand_fn x and fy = operand_fn y in
      fun get -> cmp_holds op (fx get) (fy get)
    | And (a, b) ->
      let fa = go a and fb = go b in
      fun get -> fa get && fb get
    | Or (a, b) ->
      let fa = go a and fb = go b in
      fun get -> fa get || fb get
    | Not a ->
      let fa = go a in
      fun get -> not (fa get)
  in
  go p

let rec conjuncts = function
  | And (a, b) -> conjuncts a @ conjuncts b
  | True -> []
  | p -> [ p ]

type equi_split = {
  pairs : (int * int) list;
  residual : t;
}

let equi_split ~left_arity p =
  let classify (pairs, rest) c =
    match c with
    | Cmp (Eq, Col j, Col k) when j <= left_arity && k > left_arity ->
      (j, k - left_arity) :: pairs, rest
    | Cmp (Eq, Col k, Col j) when j <= left_arity && k > left_arity ->
      (j, k - left_arity) :: pairs, rest
    | c -> pairs, c :: rest
  in
  let pairs, rest = List.fold_left classify ([], []) (conjuncts p) in
  if pairs = [] then None
  else Some { pairs = List.rev pairs; residual = conj (List.rev rest) }

let operand_col = function
  | Col j -> j
  | Const _ -> 0

let rec max_col = function
  | True | False -> 0
  | Cmp (_, x, y) -> max (operand_col x) (operand_col y)
  | And (a, b) | Or (a, b) -> max (max_col a) (max_col b)
  | Not a -> max_col a

let shift_operand n = function
  | Col j -> Col (j + n)
  | Const _ as c -> c

let rec shift n = function
  | True -> True
  | False -> False
  | Cmp (op, x, y) -> Cmp (op, shift_operand n x, shift_operand n y)
  | And (a, b) -> And (shift n a, shift n b)
  | Or (a, b) -> Or (shift n a, shift n b)
  | Not a -> Not (shift n a)

let rec fold_cols f acc = function
  | True | False -> acc
  | Cmp (_, x, y) ->
    let acc = match x with Col j -> f acc j | Const _ -> acc in
    (match y with Col j -> f acc j | Const _ -> acc)
  | And (a, b) | Or (a, b) -> fold_cols f (fold_cols f acc a) b
  | Not a -> fold_cols f acc a

let columns_within n p = fold_cols (fun ok j -> ok && j <= n) true p
let columns_between lo hi p = fold_cols (fun ok j -> ok && lo <= j && j <= hi) true p

let rename f p =
  let rename_operand = function
    | Col j -> Option.map (fun j' -> Col j') (f j)
    | Const _ as c -> Some c
  in
  let rec go = function
    | True -> Some True
    | False -> Some False
    | Cmp (op, x, y) ->
      (match rename_operand x, rename_operand y with
       | Some x', Some y' -> Some (Cmp (op, x', y'))
       | _ -> None)
    | And (a, b) ->
      (match go a, go b with
       | Some a', Some b' -> Some (And (a', b'))
       | _ -> None)
    | Or (a, b) ->
      (match go a, go b with
       | Some a', Some b' -> Some (Or (a', b'))
       | _ -> None)
    | Not a -> Option.map (fun a' -> Not a') (go a)
  in
  go p

let pp_cmp ppf = function
  | Eq -> Format.pp_print_string ppf "="
  | Neq -> Format.pp_print_string ppf "<>"
  | Lt -> Format.pp_print_string ppf "<"
  | Le -> Format.pp_print_string ppf "<="
  | Gt -> Format.pp_print_string ppf ">"
  | Ge -> Format.pp_print_string ppf ">="

let pp_operand ppf = function
  | Col j -> Format.fprintf ppf "#%d" j
  | Const v -> Value.pp ppf v

let rec pp ppf = function
  | True -> Format.pp_print_string ppf "true"
  | False -> Format.pp_print_string ppf "false"
  | Cmp (op, x, y) ->
    Format.fprintf ppf "%a %a %a" pp_operand x pp_cmp op pp_operand y
  | And (a, b) -> Format.fprintf ppf "(%a and %a)" pp a pp b
  | Or (a, b) -> Format.fprintf ppf "(%a or %a)" pp a pp b
  | Not a -> Format.fprintf ppf "not %a" pp a

let to_string p = Format.asprintf "%a" pp p
