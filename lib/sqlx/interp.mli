(** The sqlx interpreter: a database session with materialised views.

    Views follow the paper's maintenance discipline: a view materialised
    at time [tau] serves reads from its own contents — tuples vanish from
    it as they expire — until its expression expiration time [texp(e)]
    passes, at which point reading it triggers a recomputation (reported
    in the outcome).  Monotonic views therefore never recompute
    (Theorem 1). *)

open Expirel_core
open Expirel_storage

type t

val create :
  ?policy:Database.policy -> ?backend:Expirel_index.Expiration_index.backend ->
  ?store:Durable.t ->
  unit -> t
(** With [?store], the session runs over the store's database and every
    mutating statement is written ahead to its log ([policy] and
    [backend] are then ignored — the store fixed them when the directory
    was opened).  [CHECKPOINT] only works on such sessions. *)

val database : t -> Database.t

val store : t -> Durable.t option
(** The durable store the session writes through, when there is one. *)

type outcome =
  | Msg of string
  | Rows of {
      columns : string list;
      relation : Relation.t;
      listing : (Tuple.t * Time.t) list;
          (** the rows in presentation order (ORDER BY / LIMIT applied);
              always consistent with [relation] up to order and
              truncation *)
      texp_e : Time.t;
          (** the expression-level expiration time [texp(e)] of the
              result (Section 2.5) — what a remote cache needs to know
              how long the shipped materialisation stays maintainable by
              local expiration alone; [Inf] for maintained views *)
      recomputed : bool;  (** a view read forced a recomputation *)
    }

type plan_cache_stats = {
  hits : int;
  misses : int;
  entries : int;
}

val plan_cache_stats : t -> plan_cache_stats
(** Counters for the session's physical plan cache.  Queries (without
    [AT]) are lowered and planned once per distinct statement and
    catalog generation, then served from an LRU; any DDL — CREATE/DROP
    TABLE, CREATE/DROP INDEX — bumps the generation and invalidates
    every cached plan at once. *)

val view_horizons : t -> (string * Time.t) list
(** [texp(e)] horizon per view, sorted by name: how long each
    materialisation stays maintainable by local expiration alone.
    Maintained views report [Inf] (incremental maintenance never
    recomputes); plain views report their current [texp(e)].  The
    observability layer exposes these as gauges. *)

val horizon : ?table:string -> t -> Expirel_obs.Horizon.report
(** The forward expiration profile at the current clock — per-table
    bucketed counts of live rows by ticks-to-expiry
    ({!Database.expiring_within} over {!Expirel_obs.Horizon.default_bounds})
    plus churn rates from the interpreter's sliding-window tracker.
    [fanout_events] is [0]: subscriptions live above the interpreter and
    the server fills that field in before export.  [table] restricts the
    profile to one table.
    @raise Errors.Unknown_relation for an unknown [table] *)

val exec :
  ?trace:Expirel_obs.Trace.t ->
  ?text:string ->
  t ->
  Ast.statement ->
  (outcome, string) result
(** [trace], when given, records spans for the statement's stages —
    [lower] and [plan] for queries on a plan-cache miss, [eval] always
    (with per-operator [op:<name>] child spans named after the physical
    operators), [storage] around state mutation — onto the caller's
    per-request trace.

    [text], when given, is the statement's source string and serves as
    the plan-cache key (hashing a short string beats re-hashing an AST;
    see {!plan_cache_stats}).  Callers that hold only an AST omit it and
    replan each time — correct, just uncached. *)

val parse : t -> string -> Ast.statement
(** Parse one statement through the interpreter's statement cache:
    query texts are cached (text -> AST) so a repeated statement skips
    the parser, which costs several times more than lowering + planning
    combined.  Mutations parse normally and are not cached — their
    texts carry distinct literals and would only churn the LRU.
    Raises [Parser.Error] like {!Parser.parse_statement}. *)

val sketch_partial :
  ?trace:Expirel_obs.Trace.t ->
  t ->
  Ast.query ->
  string list * Expirel_sketch.Any.t
(** Shard-side half of a distributed approximate aggregate: lowers the
    query (which must carry [APPROX_COUNT] or [SAMPLE]), evaluates the
    {e child} locally and folds it into a sketch — returned with the
    answer's column labels so the coordinator can {!Expirel_sketch.Any.merge}
    partials from every shard and render rows from the union.  The fold
    runs under a [sketch-query] span on [trace] and records the
    sketch's gauges in {!Expirel_sketch.Observatory}.
    Raises [Failure] when the query has no approximate item, plus
    whatever lowering and evaluation raise. *)

val aggregate_partial :
  ?trace:Expirel_obs.Trace.t ->
  t ->
  Ast.query_stmt ->
  string list * Expirel_exec.Partial_agg.t * Expirel_core.Time.t
(** Shard-side half of a distributed grouped aggregate: lowers the
    query, requires it to {!Lower.decompose}, evaluates the decomposed
    child over local rows (honouring a future [AT]) and condenses it
    into expiration-slice partials.  Returns the final answer's column
    labels, the partial, and the child's texp(e) — the coordinator
    merges one partial per shard with {!Expirel_exec.Partial_agg.merge_all}
    and finalises with the same parameters it decomposed.
    Raises [Failure] when the query does not decompose or the [AT] time
    is past, plus whatever lowering and evaluation raise. *)

val join_broadcast :
  ?trace:Expirel_obs.Trace.t ->
  t ->
  Ast.query_stmt ->
  table:string ->
  rows:(Expirel_core.Value.t list * Expirel_core.Time.t) list ->
  string list
  * (Expirel_core.Value.t list * Expirel_core.Time.t) list
  * Expirel_core.Time.t
(** Shard-side half of a distributed broadcast join: evaluates the full
    query with the shipped [rows] standing in for [table] (the build
    side's complete contents) and every other table read from local
    rows.  Returns columns, result rows with their expirations, and
    texp(e); the coordinator unions per-shard results under the union
    rule.  Raises [Failure] on [AT] or approximate queries, plus
    whatever lowering and evaluation raise. *)

val exec_sql : t -> string -> (outcome, string) result
(** Parse and execute one statement, reusing both the statement cache
    and the plan cache for repeated texts. *)

val exec_script : t -> string -> (outcome, string) result list
(** Execute a [;]-separated script, one result per statement; execution
    continues past failed statements. *)

val render : outcome -> string
(** Human-readable rendering (tables in the paper's style). *)
