open Expirel_core

exception Error of string

type catalog = string -> string list option

type compiled = {
  expr : Algebra.t;
  columns : string list;
  approx : Expirel_exec.Approx.spec option;
}

let error fmt = Printf.ksprintf (fun msg -> raise (Error msg)) fmt

(* A resolution scope: the attributes visible in a select, each tagged
   with the table it came from, in attribute order. *)
type scope = {
  attrs : (string * string) list;  (* (table, column), 1-based order *)
}

let scope_of_table ~catalog name =
  match catalog name with
  | Some cols -> { attrs = List.map (fun c -> name, c) cols }
  | None -> error "unknown table %s" name

let scope_join a b = { attrs = a.attrs @ b.attrs }

let resolve scope { Ast.qualifier; column } =
  let matches =
    List.filteri
      (fun _ (table, col) ->
        String.equal col column
        && (match qualifier with
            | None -> true
            | Some q -> String.equal q table))
      scope.attrs
  in
  let name =
    match qualifier with
    | Some q -> q ^ "." ^ column
    | None -> column
  in
  match matches with
  | [ (table, col) ] ->
    let rec position i = function
      | [] -> assert false
      | (t, c) :: rest ->
        if String.equal t table && String.equal c col then i
        else position (i + 1) rest
    in
    position 1 scope.attrs
  | [] -> error "unknown column %s" name
  | _ :: _ :: _ -> error "ambiguous column %s" name

(* Output label for an attribute: qualified when the bare name appears in
   more than one table of the scope. *)
let label scope (table, column) =
  let occurrences =
    List.length (List.filter (fun (_, c) -> String.equal c column) scope.attrs)
  in
  if occurrences > 1 then table ^ "." ^ column else column

let lower_cmp = function
  | Ast.Eq -> Predicate.Eq
  | Ast.Neq -> Predicate.Neq
  | Ast.Lt -> Predicate.Lt
  | Ast.Le -> Predicate.Le
  | Ast.Gt -> Predicate.Gt
  | Ast.Ge -> Predicate.Ge

let lower_operand ?agg scope = function
  | Ast.Col_ref r -> Predicate.Col (resolve scope r)
  | Ast.Lit v -> Predicate.Const v
  | Ast.Agg_ref a ->
    (match agg with
     | Some resolve_agg -> Predicate.Col (resolve_agg a)
     | None -> error "aggregates are only allowed in HAVING")

let rec lower_cond ?agg scope = function
  | Ast.Cmp (op, a, b) ->
    (* Resolve left-to-right so error messages name the first offender. *)
    let a' = lower_operand ?agg scope a in
    let b' = lower_operand ?agg scope b in
    Predicate.Cmp (lower_cmp op, a', b')
  | Ast.And (a, b) -> Predicate.And (lower_cond ?agg scope a, lower_cond ?agg scope b)
  | Ast.Or (a, b) -> Predicate.Or (lower_cond ?agg scope a, lower_cond ?agg scope b)
  | Ast.Not a -> Predicate.Not (lower_cond ?agg scope a)

let lower_cond_for_table ~columns ~table c =
  lower_cond { attrs = List.map (fun col -> table, col) columns } c

let agg_func scope = function
  | Ast.Count_star -> Aggregate.Count, "count"
  | Ast.Sum_of r -> Aggregate.Sum (resolve scope r), "sum(" ^ r.Ast.column ^ ")"
  | Ast.Min_of r -> Aggregate.Min (resolve scope r), "min(" ^ r.Ast.column ^ ")"
  | Ast.Max_of r -> Aggregate.Max (resolve scope r), "max(" ^ r.Ast.column ^ ")"
  | Ast.Avg_of r -> Aggregate.Avg (resolve scope r), "avg(" ^ r.Ast.column ^ ")"

let lower_select ~catalog (s : Ast.select) =
  let scope, source_expr =
    match s.Ast.source with
    | Ast.From_table name -> scope_of_table ~catalog name, Algebra.base name
    | Ast.From_join (left, right, on) ->
      let ls = scope_of_table ~catalog left in
      let rs = scope_of_table ~catalog right in
      let joined = scope_join ls rs in
      joined, Algebra.join (lower_cond joined on) (Algebra.base left) (Algebra.base right)
  in
  let filtered =
    match s.Ast.where with
    | None -> source_expr
    | Some c -> Algebra.select (lower_cond scope c) source_expr
  in
  let approxes =
    List.filter_map
      (function
        | Ast.Approx_count epsilon ->
          Some (Expirel_exec.Approx.Count { epsilon })
        | Ast.Sample k -> Some (Expirel_exec.Approx.Sample { k })
        | Ast.Star | Ast.Column _ | Ast.Agg _ -> None)
      s.Ast.items
  in
  match approxes with
  | [ spec ] ->
    (* The sketch answers the whole select: the item must stand alone,
       and grouping machinery has nothing to attach to. *)
    (match spec with
     | Expirel_exec.Approx.Count { epsilon } ->
       if not (epsilon > 0. && epsilon < 1.) then
         error "APPROX_COUNT epsilon must be in (0, 1)"
     | Expirel_exec.Approx.Sample { k } ->
       if k < 1 then error "SAMPLE needs k >= 1");
    if List.length s.Ast.items > 1 then
      error "APPROX_COUNT/SAMPLE cannot be mixed with other select items";
    if s.Ast.group_by <> [] then
      error "APPROX_COUNT/SAMPLE cannot be combined with GROUP BY";
    if s.Ast.having <> None then
      error "APPROX_COUNT/SAMPLE cannot be combined with HAVING";
    let columns =
      Expirel_exec.Approx.columns spec
        ~child:(List.map (label scope) scope.attrs)
    in
    { expr = filtered; columns; approx = Some spec }
  | _ :: _ :: _ -> error "at most one APPROX_COUNT/SAMPLE per select list"
  | [] ->
  let aggs =
    List.filter_map
      (function
        | Ast.Agg a -> Some a
        | Ast.Star | Ast.Column _ | Ast.Approx_count _ | Ast.Sample _ -> None)
      s.Ast.items
  in
  match aggs with
  | [] ->
    if s.Ast.group_by <> [] then
      error "GROUP BY without an aggregate in the select list"
    else if s.Ast.having <> None then
      error "HAVING requires GROUP BY and an aggregate"
    else if List.exists (fun i -> i = Ast.Star) s.Ast.items then begin
      if List.length s.Ast.items > 1 then error "* mixed with other items"
      else
        { expr = filtered;
          columns = List.map (label scope) scope.attrs;
          approx = None
        }
    end
    else begin
      let refs =
        List.map
          (function
            | Ast.Column r -> r
            | Ast.Star | Ast.Agg _ | Ast.Approx_count _ | Ast.Sample _ ->
              assert false)
          s.Ast.items
      in
      let positions = List.map (resolve scope) refs in
      let columns =
        List.map (fun p -> label scope (List.nth scope.attrs (p - 1))) positions
      in
      { expr = Algebra.project positions filtered; columns; approx = None }
    end
  | [ agg ] ->
    (* An empty GROUP BY lowers to agg^exp over the single global
       partition: COUNT/SUM/MIN/MAX/AVG over the whole live relation. *)
    let group_positions = List.map (resolve scope) s.Ast.group_by in
    let func, agg_label = agg_func scope agg in
    let inner_arity = List.length scope.attrs in
    let aggregated = Algebra.aggregate group_positions func filtered in
    (* HAVING filters whole groups: a selection over agg^exp's output,
       where the aggregate value sits at position inner_arity + 1. *)
    let aggregated =
      match s.Ast.having with
      | None -> aggregated
      | Some c ->
        let resolve_agg a =
          if a = agg then inner_arity + 1
          else error "HAVING may only use the select list's aggregate"
        in
        let check_grouped = function
          | Ast.Col_ref r ->
            let pos = resolve scope r in
            if not (List.mem pos group_positions) then
              error "HAVING column %s is not in GROUP BY" r.Ast.column
          | Ast.Lit _ | Ast.Agg_ref _ -> ()
        in
        let rec walk = function
          | Ast.Cmp (_, a, b) -> check_grouped a; check_grouped b
          | Ast.And (a, b) | Ast.Or (a, b) -> walk a; walk b
          | Ast.Not a -> walk a
        in
        walk c;
        Algebra.select (lower_cond ~agg:resolve_agg scope c) aggregated
    in
    (* Project the selected items out of agg^exp's alpha(R)+1 columns. *)
    let item_position = function
      | Ast.Agg _ -> inner_arity + 1, agg_label
      | Ast.Column r ->
        let p = resolve scope r in
        if not (List.mem p group_positions) then
          error "column %s is not in GROUP BY" r.Ast.column
        else p, label scope (List.nth scope.attrs (p - 1))
      | Ast.Star -> error "* cannot be mixed with aggregates"
      | Ast.Approx_count _ | Ast.Sample _ -> assert false
    in
    let resolved = List.map item_position s.Ast.items in
    { expr = Algebra.project (List.map fst resolved) aggregated;
      columns = List.map snd resolved;
      approx = None
    }
  | _ :: _ :: _ -> error "at most one aggregate per select list"

(* ---------- distributed decomposition ---------- *)

type decomposed = {
  d_group : int list;
  d_func : Aggregate.func;
  d_having : Predicate.t option;
  d_projection : int list;
  d_child : Algebra.t;
}

(* A shard can evaluate the aggregate's child locally only when it reads
   a single base table (optionally filtered): joins or set operations
   under the aggregate would need cross-shard rows before grouping. *)
let shard_local = function
  | Algebra.Base _ | Algebra.Select (_, Algebra.Base _) -> true
  | _ -> false

let decompose { expr; approx; _ } =
  match approx with
  | Some _ -> None
  | None ->
    (match expr with
     | Algebra.Project
         (ps, Algebra.Select (h, Algebra.Aggregate (g, f, child)))
       when shard_local child ->
       Some
         { d_group = g; d_func = f; d_having = Some h; d_projection = ps;
           d_child = child }
     | Algebra.Project (ps, Algebra.Aggregate (g, f, child))
       when shard_local child ->
       Some
         { d_group = g; d_func = f; d_having = None; d_projection = ps;
           d_child = child }
     | _ -> None)

(* ---------- ORDER BY resolution ---------- *)

(* Resolve an ORDER BY reference against the select's output column
   labels (which the lowering above produced: bare names, qualified when
   a bare name would be ambiguous, or aggregate labels like "sum(deg)").
   An exact label match wins outright; failing that, a bare reference
   also matches a qualified label by suffix — but only a unique one, so
   [ORDER BY uid] over columns [pol.uid; geo.uid] is an error instead of
   silently picking the first. *)
let order_by_position ~columns { Ast.qualifier; column } =
  let name =
    match qualifier with
    | Some q -> q ^ "." ^ column
    | None -> column
  in
  let positions p =
    List.concat
      (List.mapi (fun i l -> if p l then [ i + 1 ] else []) columns)
  in
  match positions (String.equal name) with
  | [ i ] -> i
  | _ :: _ :: _ -> error "ambiguous ORDER BY column %s" name
  | [] ->
    let suffix = "." ^ column in
    let has_suffix label =
      qualifier = None
      && String.length label > String.length suffix
      && String.sub label
           (String.length label - String.length suffix)
           (String.length suffix)
         = suffix
    in
    (match positions has_suffix with
     | [ i ] -> i
     | [] -> error "unknown ORDER BY column %s" name
     | _ :: _ :: _ -> error "ambiguous ORDER BY column %s" name)

let rec lower_query ~catalog = function
  | Ast.Select s -> lower_select ~catalog s
  | Ast.Union (a, b) -> set_op ~catalog "UNION" Algebra.union a b
  | Ast.Except (a, b) -> set_op ~catalog "EXCEPT" Algebra.diff a b
  | Ast.Intersect (a, b) -> set_op ~catalog "INTERSECT" Algebra.intersect a b

and set_op ~catalog name make a b =
  let ca = lower_query ~catalog a and cb = lower_query ~catalog b in
  if ca.approx <> None || cb.approx <> None then
    error "APPROX_COUNT/SAMPLE cannot appear under %s" name
  else if List.length ca.columns <> List.length cb.columns then
    error "%s operands have different widths (%d vs %d)" name
      (List.length ca.columns) (List.length cb.columns)
  else { expr = make ca.expr cb.expr; columns = ca.columns; approx = None }
