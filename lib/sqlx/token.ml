type t =
  | Ident of string
  | Keyword of string
  | Int_lit of int
  | Float_lit of float
  | String_lit of string
  | Lparen
  | Rparen
  | Comma
  | Semicolon
  | Dot
  | Star
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | Eof

let keywords =
  [ "CREATE"; "TABLE"; "DROP"; "INSERT"; "INTO"; "VALUES"; "EXPIRES"; "NEVER";
    "TTL"; "DELETE"; "FROM"; "WHERE"; "ADVANCE"; "TO"; "TICK"; "VACUUM";
    "CHECKPOINT";
    "SELECT"; "JOIN"; "ON"; "GROUP"; "BY"; "UNION"; "EXCEPT"; "INTERSECT";
    "AND"; "OR"; "NOT"; "TRUE"; "FALSE"; "NULL"; "COUNT"; "SUM"; "MIN"; "MAX";
    "AVG"; "VIEW"; "AS"; "SHOW"; "TABLES"; "VIEWS"; "REFRESH"; "EXPLAIN";
    "ANALYZE";
    "TRIGGER"; "TRIGGERS"; "NOW"; "AT"; "MAINTAINED"; "ORDER"; "ASC";
    "DESC"; "LIMIT"; "HAVING"; "CONSTRAINT"; "CONSTRAINTS"; "INDEX";
    "APPROX_COUNT"; "SAMPLE"; "HORIZON"; "FOR" ]

let equal a b =
  match a, b with
  | Float_lit x, Float_lit y -> Float.equal x y
  | _ -> a = b

let pp ppf = function
  | Ident s -> Format.fprintf ppf "identifier %s" s
  | Keyword s -> Format.fprintf ppf "%s" s
  | Int_lit n -> Format.fprintf ppf "%d" n
  | Float_lit f -> Format.fprintf ppf "%g" f
  | String_lit s -> Format.fprintf ppf "'%s'" s
  | Lparen -> Format.pp_print_string ppf "("
  | Rparen -> Format.pp_print_string ppf ")"
  | Comma -> Format.pp_print_string ppf ","
  | Semicolon -> Format.pp_print_string ppf ";"
  | Dot -> Format.pp_print_string ppf "."
  | Star -> Format.pp_print_string ppf "*"
  | Eq -> Format.pp_print_string ppf "="
  | Neq -> Format.pp_print_string ppf "<>"
  | Lt -> Format.pp_print_string ppf "<"
  | Le -> Format.pp_print_string ppf "<="
  | Gt -> Format.pp_print_string ppf ">"
  | Ge -> Format.pp_print_string ppf ">="
  | Eof -> Format.pp_print_string ppf "end of input"

let to_string t = Format.asprintf "%a" pp t
