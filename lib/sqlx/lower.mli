(** Lowering the sqlx AST to the core algebra.

    Name resolution turns column references into the 1-based attribute
    positions the algebra uses; aggregation queries compile to the
    paper's [agg^exp] (which keeps all input attributes and appends the
    aggregate value) followed by a projection onto the selected items —
    exactly the shape of Figure 3(a). *)

open Expirel_core

exception Error of string

type catalog = string -> string list option
(** Table name to column names. *)

type compiled = {
  expr : Algebra.t;
  columns : string list;  (** output column labels, one per attribute *)
  approx : Expirel_exec.Approx.spec option;
      (** set for [APPROX_COUNT(eps)] / [SAMPLE(k)] selects: [expr] is
          then the {e child} (the filtered source) and the planner wraps
          it in the matching sketch operator; [columns] already describe
          the sketch's output *)
}

val lower_query : catalog:catalog -> Ast.query -> compiled
(** @raise Error on unknown tables/columns, ambiguous references,
    non-grouped plain columns mixed with aggregates, more than one
    aggregate item, set operations over different-width operands, or
    approximate items mixed with anything (other items, GROUP BY,
    HAVING, set operations). *)

val lower_cond_for_table :
  columns:string list -> table:string -> Ast.cond -> Predicate.t
(** Resolves a condition against a single table (used by [DELETE]).
    @raise Error on unknown/ambiguous columns *)

type decomposed = {
  d_group : int list;  (** GROUP BY positions in the child *)
  d_func : Aggregate.func;
  d_having : Predicate.t option;
      (** over GROUP BY positions and the aggregate at child arity + 1 *)
  d_projection : int list;  (** final output positions, same vocabulary *)
  d_child : Algebra.t;  (** a base table, optionally filtered *)
}
(** A grouped-aggregate query split into the shard-local part (evaluate
    [d_child], condense it into a {!Expirel_exec.Partial_agg.t}) and the
    coordinator part (merge the partials, finalise with
    [d_group]/[d_func]/[d_having]/[d_projection]).  AVG never appears
    pre-averaged here: the partial carries SUM and COUNT separately, so
    the decomposition is exact across any partitioning. *)

val decompose : compiled -> decomposed option
(** [Some] exactly when the compiled query is a (possibly HAVING-ed,
    projected) aggregate over a single — optionally filtered — base
    table: the shape shards can answer from local rows alone.  Joins or
    set operations under the aggregate, approximate items, and
    non-aggregate queries return [None]. *)

val order_by_position : columns:string list -> Ast.column_ref -> int
(** Resolve an ORDER BY reference against output column labels: exact
    label match first, then a bare name matches a {e unique} qualified
    label by [".column"] suffix.
    @raise Error as ["unknown ORDER BY column c"] on no match and
    ["ambiguous ORDER BY column c"] when several labels match — the
    single resolver both the single-node presentation path and the
    cluster coordinator's merge use. *)
