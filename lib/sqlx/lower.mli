(** Lowering the sqlx AST to the core algebra.

    Name resolution turns column references into the 1-based attribute
    positions the algebra uses; aggregation queries compile to the
    paper's [agg^exp] (which keeps all input attributes and appends the
    aggregate value) followed by a projection onto the selected items —
    exactly the shape of Figure 3(a). *)

open Expirel_core

exception Error of string

type catalog = string -> string list option
(** Table name to column names. *)

type compiled = {
  expr : Algebra.t;
  columns : string list;  (** output column labels, one per attribute *)
  approx : Expirel_exec.Approx.spec option;
      (** set for [APPROX_COUNT(eps)] / [SAMPLE(k)] selects: [expr] is
          then the {e child} (the filtered source) and the planner wraps
          it in the matching sketch operator; [columns] already describe
          the sketch's output *)
}

val lower_query : catalog:catalog -> Ast.query -> compiled
(** @raise Error on unknown tables/columns, ambiguous references,
    non-grouped plain columns mixed with aggregates, more than one
    aggregate item, set operations over different-width operands, or
    approximate items mixed with anything (other items, GROUP BY,
    HAVING, set operations). *)

val lower_cond_for_table :
  columns:string list -> table:string -> Ast.cond -> Predicate.t
(** Resolves a condition against a single table (used by [DELETE]).
    @raise Error on unknown/ambiguous columns *)
