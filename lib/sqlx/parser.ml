open Expirel_core

exception Error of string * int

type state = {
  mutable tokens : (Token.t * int) list;
}

let peek st =
  match st.tokens with
  | (t, off) :: _ -> t, off
  | [] -> Token.Eof, 0

let advance st =
  match st.tokens with
  | _ :: rest -> st.tokens <- rest
  | [] -> ()

let fail st message =
  let t, off = peek st in
  raise (Error (Printf.sprintf "%s (found %s)" message (Token.to_string t), off))

let expect st token what =
  let t, _ = peek st in
  if Token.equal t token then advance st else fail st ("expected " ^ what)

let accept_kw st kw =
  match peek st with
  | Token.Keyword k, _ when k = kw ->
    advance st;
    true
  | _ -> false

let expect_kw st kw = if not (accept_kw st kw) then fail st ("expected " ^ kw)

let ident st =
  match peek st with
  | Token.Ident name, _ ->
    advance st;
    name
  | _ -> fail st "expected identifier"

let int_lit st =
  match peek st with
  | Token.Int_lit n, _ ->
    advance st;
    n
  | _ -> fail st "expected integer"

let literal st =
  match peek st with
  | Token.Int_lit n, _ -> advance st; Value.Int n
  | Token.Float_lit f, _ -> advance st; Value.Float f
  | Token.String_lit s, _ -> advance st; Value.Str s
  | Token.Keyword "TRUE", _ -> advance st; Value.Bool true
  | Token.Keyword "FALSE", _ -> advance st; Value.Bool false
  | Token.Keyword "NULL", _ -> advance st; Value.Null
  | _ -> fail st "expected literal"

let column_ref st =
  let first = ident st in
  match peek st with
  | Token.Dot, _ ->
    advance st;
    { Ast.qualifier = Some first; column = ident st }
  | _ -> { Ast.qualifier = None; column = first }

let agg_name st =
  let with_ref make =
    advance st;
    expect st Token.Lparen "(";
    let r = column_ref st in
    expect st Token.Rparen ")";
    make r
  in
  match peek st with
  | Token.Keyword "COUNT", _ ->
    advance st;
    expect st Token.Lparen "(";
    expect st Token.Star "*";
    expect st Token.Rparen ")";
    Ast.Count_star
  | Token.Keyword "SUM", _ -> with_ref (fun r -> Ast.Sum_of r)
  | Token.Keyword "MIN", _ -> with_ref (fun r -> Ast.Min_of r)
  | Token.Keyword "MAX", _ -> with_ref (fun r -> Ast.Max_of r)
  | Token.Keyword "AVG", _ -> with_ref (fun r -> Ast.Avg_of r)
  | _ -> fail st "expected aggregate"

let operand st =
  match peek st with
  | Token.Ident _, _ -> Ast.Col_ref (column_ref st)
  | Token.Keyword ("COUNT" | "SUM" | "MIN" | "MAX" | "AVG"), _ ->
    Ast.Agg_ref (agg_name st)
  | _ -> Ast.Lit (literal st)

let cmp_op st =
  match peek st with
  | Token.Eq, _ -> advance st; Ast.Eq
  | Token.Neq, _ -> advance st; Ast.Neq
  | Token.Lt, _ -> advance st; Ast.Lt
  | Token.Le, _ -> advance st; Ast.Le
  | Token.Gt, _ -> advance st; Ast.Gt
  | Token.Ge, _ -> advance st; Ast.Ge
  | _ -> fail st "expected comparison operator"

let rec cond st =
  let left = cond_and st in
  if accept_kw st "OR" then Ast.Or (left, cond st) else left

and cond_and st =
  let left = cond_unary st in
  if accept_kw st "AND" then Ast.And (left, cond_and st) else left

and cond_unary st =
  if accept_kw st "NOT" then Ast.Not (cond_unary st)
  else
    match peek st with
    | Token.Lparen, _ ->
      advance st;
      let inner = cond st in
      expect st Token.Rparen ")";
      inner
    | _ ->
      let lhs = operand st in
      let op = cmp_op st in
      let rhs = operand st in
      Ast.Cmp (op, lhs, rhs)

let select_item st =
  match peek st with
  | Token.Star, _ -> advance st; Ast.Star
  | Token.Keyword ("COUNT" | "SUM" | "MIN" | "MAX" | "AVG"), _ ->
    Ast.Agg (agg_name st)
  | Token.Keyword "APPROX_COUNT", _ ->
    advance st;
    expect st Token.Lparen "(";
    let epsilon =
      match peek st with
      | Token.Float_lit f, _ -> advance st; f
      | Token.Int_lit n, _ -> advance st; float_of_int n
      | _ -> fail st "expected error bound"
    in
    expect st Token.Rparen ")";
    if not (epsilon > 0. && epsilon < 1.) then
      fail st "APPROX_COUNT error bound must be in (0, 1)";
    Ast.Approx_count epsilon
  | Token.Keyword "SAMPLE", _ ->
    advance st;
    expect st Token.Lparen "(";
    let k = int_lit st in
    expect st Token.Rparen ")";
    if k < 1 then fail st "SAMPLE size must be >= 1";
    Ast.Sample k
  | _ -> Ast.Column (column_ref st)

let rec comma_separated st parse =
  let first = parse st in
  match peek st with
  | Token.Comma, _ ->
    advance st;
    first :: comma_separated st parse
  | _ -> [ first ]

let source st =
  let left = ident st in
  if accept_kw st "JOIN" then begin
    let right = ident st in
    expect_kw st "ON";
    Ast.From_join (left, right, cond st)
  end
  else Ast.From_table left

let select_core st =
  expect_kw st "SELECT";
  let items = comma_separated st select_item in
  expect_kw st "FROM";
  let src = source st in
  let where = if accept_kw st "WHERE" then Some (cond st) else None in
  let group_by =
    if accept_kw st "GROUP" then begin
      expect_kw st "BY";
      comma_separated st column_ref
    end
    else []
  in
  let having = if accept_kw st "HAVING" then Some (cond st) else None in
  { Ast.items; source = src; where; group_by; having }

let rec query st =
  let left = query_atom st in
  match peek st with
  | Token.Keyword "UNION", _ ->
    advance st;
    combine st (fun r -> Ast.Union (left, r))
  | Token.Keyword "EXCEPT", _ ->
    advance st;
    combine st (fun r -> Ast.Except (left, r))
  | Token.Keyword "INTERSECT", _ ->
    advance st;
    combine st (fun r -> Ast.Intersect (left, r))
  | _ -> left

and combine st make =
  (* Left-associative: fold the freshly made node back through [query]'s
     operator loop by consing it as the new left operand. *)
  let right = query_atom st in
  let node = make right in
  match peek st with
  | Token.Keyword ("UNION" | "EXCEPT" | "INTERSECT"), _ -> continue st node
  | _ -> node

and continue st left =
  match peek st with
  | Token.Keyword "UNION", _ ->
    advance st;
    combine st (fun r -> Ast.Union (left, r))
  | Token.Keyword "EXCEPT", _ ->
    advance st;
    combine st (fun r -> Ast.Except (left, r))
  | Token.Keyword "INTERSECT", _ ->
    advance st;
    combine st (fun r -> Ast.Intersect (left, r))
  | _ -> left

and query_atom st =
  match peek st with
  | Token.Lparen, _ ->
    advance st;
    let q = query st in
    expect st Token.Rparen ")";
    q
  | _ -> Ast.Select (select_core st)

let expires_clause st =
  if accept_kw st "EXPIRES" then
    if accept_kw st "NEVER" then Ast.Never else Ast.At (int_lit st)
  else if accept_kw st "TTL" then Ast.Ttl (int_lit st)
  else Ast.Never

let statement st =
  match peek st with
  | Token.Keyword "CREATE", _ ->
    advance st;
    if accept_kw st "TABLE" then begin
      let name = ident st in
      expect st Token.Lparen "(";
      let cols = comma_separated st ident in
      expect st Token.Rparen ")";
      Ast.Create_table (name, cols)
    end
    else if accept_kw st "TRIGGER" then begin
      let name = ident st in
      expect_kw st "ON";
      let table =
        match peek st with
        | Token.Star, _ -> advance st; "*"
        | _ -> ident st
      in
      Ast.Create_trigger { name; table }
    end
    else if accept_kw st "INDEX" then begin
      expect_kw st "ON";
      let table = ident st in
      expect st Token.Lparen "(";
      let column = ident st in
      expect st Token.Rparen ")";
      Ast.Create_index { table; column }
    end
    else if accept_kw st "CONSTRAINT" then begin
      let name = ident st in
      expect_kw st "ON";
      let q = query st in
      let min_rows = if accept_kw st "MIN" then Some (int_lit st) else None in
      let max_rows = if accept_kw st "MAX" then Some (int_lit st) else None in
      if min_rows = None && max_rows = None then
        fail st "expected MIN or MAX bound"
      else Ast.Create_constraint { name; query = q; min_rows; max_rows }
    end
    else begin
      let maintained = accept_kw st "MAINTAINED" in
      expect_kw st "VIEW";
      let name = ident st in
      expect_kw st "AS";
      Ast.Create_view { name; query = query st; maintained }
    end
  | Token.Keyword "DROP", _ ->
    advance st;
    if accept_kw st "TRIGGER" then Ast.Drop_trigger (ident st)
    else if accept_kw st "CONSTRAINT" then Ast.Drop_constraint (ident st)
    else if accept_kw st "INDEX" then begin
      expect_kw st "ON";
      let table = ident st in
      expect st Token.Lparen "(";
      let column = ident st in
      expect st Token.Rparen ")";
      Ast.Drop_index { table; column }
    end
    else begin
      expect_kw st "TABLE";
      Ast.Drop_table (ident st)
    end
  | Token.Keyword "INSERT", _ ->
    advance st;
    expect_kw st "INTO";
    let table = ident st in
    expect_kw st "VALUES";
    expect st Token.Lparen "(";
    let values = comma_separated st literal in
    expect st Token.Rparen ")";
    let expires = expires_clause st in
    Ast.Insert { table; values; expires }
  | Token.Keyword "DELETE", _ ->
    advance st;
    expect_kw st "FROM";
    let table = ident st in
    let where = if accept_kw st "WHERE" then Some (cond st) else None in
    Ast.Delete (table, where)
  | Token.Keyword "ADVANCE", _ ->
    advance st;
    expect_kw st "TO";
    Ast.Advance_to (int_lit st)
  | Token.Keyword "TICK", _ ->
    advance st;
    (match peek st with
     | Token.Int_lit n, _ -> advance st; Ast.Tick n
     | _ -> Ast.Tick 1)
  | Token.Keyword "VACUUM", _ -> advance st; Ast.Vacuum
  | Token.Keyword "CHECKPOINT", _ -> advance st; Ast.Checkpoint
  | Token.Keyword "SHOW", _ ->
    advance st;
    if accept_kw st "TABLES" then Ast.Show_tables
    else if accept_kw st "VIEWS" then Ast.Show_views
    else if accept_kw st "TRIGGERS" then Ast.Show_triggers
    else if accept_kw st "CONSTRAINTS" then Ast.Show_constraints
    else if accept_kw st "NOW" then Ast.Show_time
    else if accept_kw st "HORIZON" then
      Ast.Show_horizon
        (if accept_kw st "FOR" then Some (ident st) else None)
    else begin
      expect_kw st "VIEW";
      Ast.Show_view (ident st)
    end
  | Token.Keyword "REFRESH", _ ->
    advance st;
    expect_kw st "VIEW";
    Ast.Refresh_view (ident st)
  | Token.Keyword "EXPLAIN", _ ->
    advance st;
    if accept_kw st "ANALYZE" then Ast.Explain_analyze (query st)
    else Ast.Explain (query st)
  | Token.Keyword "SELECT", _ | Token.Lparen, _ ->
    let q = query st in
    let order_by =
      if accept_kw st "ORDER" then begin
        expect_kw st "BY";
        comma_separated st (fun st ->
            let r = column_ref st in
            let dir =
              if accept_kw st "DESC" then Ast.Desc
              else begin
                let (_ : bool) = accept_kw st "ASC" in
                Ast.Asc
              end
            in
            r, dir)
      end
      else []
    in
    let limit = if accept_kw st "LIMIT" then Some (int_lit st) else None in
    let at = if accept_kw st "AT" then Some (int_lit st) else None in
    Ast.Query { q; at; order_by; limit }
  | _ -> fail st "expected statement"

let make_state text = { tokens = Lexer.tokenize text }

let finish st =
  (match peek st with
   | Token.Semicolon, _ -> advance st
   | _ -> ());
  match peek st with
  | Token.Eof, _ -> ()
  | _ -> fail st "trailing input after statement"

let parse_statement text =
  try
    let st = make_state text in
    let s = statement st in
    finish st;
    s
  with Lexer.Error (msg, off) -> raise (Error (msg, off))

let parse_script text =
  try
    let st = make_state text in
    let rec go acc =
      match peek st with
      | Token.Eof, _ -> List.rev acc
      | Token.Semicolon, _ ->
        advance st;
        go acc
      | _ ->
        let s = statement st in
        (match peek st with
         | Token.Semicolon, _ -> advance st
         | Token.Eof, _ -> ()
         | _ -> fail st "expected ; between statements");
        go (s :: acc)
    in
    go []
  with Lexer.Error (msg, off) -> raise (Error (msg, off))

let parse_query text =
  try
    let st = make_state text in
    let q = query st in
    finish st;
    q
  with Lexer.Error (msg, off) -> raise (Error (msg, off))
