open Expirel_core

let value = function
  | Value.Int n -> string_of_int n
  | Value.Float f ->
    (* Enough digits to round-trip through the lexer exactly; the lexer
       needs a digit on both sides of the dot. *)
    let s = Printf.sprintf "%.17g" f in
    if String.contains s '.' || String.contains s 'e' then s else s ^ ".0"
  | Value.Str s ->
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '\'';
    String.iter
      (fun c ->
        if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '\'';
    Buffer.contents buf
  | Value.Bool true -> "TRUE"
  | Value.Bool false -> "FALSE"
  | Value.Null -> "NULL"

let column_ref { Ast.qualifier; column } =
  match qualifier with
  | Some q -> q ^ "." ^ column
  | None -> column

let agg = function
  | Ast.Count_star -> "COUNT(*)"
  | Ast.Sum_of r -> "SUM(" ^ column_ref r ^ ")"
  | Ast.Min_of r -> "MIN(" ^ column_ref r ^ ")"
  | Ast.Max_of r -> "MAX(" ^ column_ref r ^ ")"
  | Ast.Avg_of r -> "AVG(" ^ column_ref r ^ ")"

let operand = function
  | Ast.Col_ref r -> column_ref r
  | Ast.Lit v -> value v
  | Ast.Agg_ref a -> agg a

let cmp = function
  | Ast.Eq -> "="
  | Ast.Neq -> "<>"
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="

(* Fully parenthesised: precedence-proof and still parseable. *)
let rec cond = function
  | Ast.Cmp (op, a, b) -> Printf.sprintf "%s %s %s" (operand a) (cmp op) (operand b)
  | Ast.And (a, b) -> Printf.sprintf "(%s AND %s)" (cond a) (cond b)
  | Ast.Or (a, b) -> Printf.sprintf "(%s OR %s)" (cond a) (cond b)
  | Ast.Not a -> Printf.sprintf "NOT (%s)" (cond a)

let select_item = function
  | Ast.Star -> "*"
  | Ast.Column r -> column_ref r
  | Ast.Agg a -> agg a
  | Ast.Approx_count epsilon ->
    "APPROX_COUNT(" ^ value (Value.Float epsilon) ^ ")"
  | Ast.Sample k -> Printf.sprintf "SAMPLE(%d)" k

let source = function
  | Ast.From_table name -> name
  | Ast.From_join (l, r, on) -> Printf.sprintf "%s JOIN %s ON %s" l r (cond on)

let select (s : Ast.select) =
  String.concat ""
    [ "SELECT ";
      String.concat ", " (List.map select_item s.Ast.items);
      " FROM ";
      source s.Ast.source;
      (match s.Ast.where with
       | None -> ""
       | Some c -> " WHERE " ^ cond c);
      (match s.Ast.group_by with
       | [] -> ""
       | refs -> " GROUP BY " ^ String.concat ", " (List.map column_ref refs));
      (match s.Ast.having with
       | None -> ""
       | Some c -> " HAVING " ^ cond c) ]

(* The parser builds set operators left-associatively, so only right
   operands that are themselves set operations need parentheses. *)
let rec query = function
  | Ast.Select s -> select s
  | Ast.Union (a, b) -> set_op a "UNION" b
  | Ast.Except (a, b) -> set_op a "EXCEPT" b
  | Ast.Intersect (a, b) -> set_op a "INTERSECT" b

and set_op a keyword b =
  let right =
    match b with
    | Ast.Select s -> select s
    | Ast.Union _ | Ast.Except _ | Ast.Intersect _ -> "(" ^ query b ^ ")"
  in
  Printf.sprintf "%s %s %s" (query a) keyword right

let query_stmt { Ast.q; at; order_by; limit } =
  String.concat ""
    [ query q;
      (match order_by with
       | [] -> ""
       | keys ->
         " ORDER BY "
         ^ String.concat ", "
             (List.map
                (fun (r, dir) ->
                  column_ref r
                  ^ (match dir with
                     | Ast.Asc -> " ASC"
                     | Ast.Desc -> " DESC"))
                keys));
      (match limit with
       | None -> ""
       | Some n -> " LIMIT " ^ string_of_int n);
      (match at with
       | None -> ""
       | Some n -> " AT " ^ string_of_int n) ]

let statement = function
  | Ast.Create_table (name, columns) ->
    Printf.sprintf "CREATE TABLE %s (%s)" name (String.concat ", " columns)
  | Ast.Drop_table name -> "DROP TABLE " ^ name
  | Ast.Create_index { table; column } ->
    Printf.sprintf "CREATE INDEX ON %s (%s)" table column
  | Ast.Drop_index { table; column } ->
    Printf.sprintf "DROP INDEX ON %s (%s)" table column
  | Ast.Insert { table; values; expires } ->
    Printf.sprintf "INSERT INTO %s VALUES (%s)%s" table
      (String.concat ", " (List.map value values))
      (match expires with
       | Ast.At n -> Printf.sprintf " EXPIRES %d" n
       | Ast.Never -> " EXPIRES NEVER"
       | Ast.Ttl d -> Printf.sprintf " TTL %d" d)
  | Ast.Delete (table, where) ->
    Printf.sprintf "DELETE FROM %s%s" table
      (match where with
       | None -> ""
       | Some c -> " WHERE " ^ cond c)
  | Ast.Advance_to n -> Printf.sprintf "ADVANCE TO %d" n
  | Ast.Tick n -> Printf.sprintf "TICK %d" n
  | Ast.Vacuum -> "VACUUM"
  | Ast.Checkpoint -> "CHECKPOINT"
  | Ast.Query qs -> query_stmt qs
  | Ast.Create_view { name; query = q; maintained } ->
    Printf.sprintf "CREATE %sVIEW %s AS %s"
      (if maintained then "MAINTAINED " else "")
      name (query q)
  | Ast.Show_view name -> "SHOW VIEW " ^ name
  | Ast.Create_trigger { name; table } ->
    Printf.sprintf "CREATE TRIGGER %s ON %s" name table
  | Ast.Drop_trigger name -> "DROP TRIGGER " ^ name
  | Ast.Show_triggers -> "SHOW TRIGGERS"
  | Ast.Create_constraint { name; query = q; min_rows; max_rows } ->
    Printf.sprintf "CREATE CONSTRAINT %s ON %s%s%s" name (query q)
      (match min_rows with
       | Some n -> Printf.sprintf " MIN %d" n
       | None -> "")
      (match max_rows with
       | Some n -> Printf.sprintf " MAX %d" n
       | None -> "")
  | Ast.Drop_constraint name -> "DROP CONSTRAINT " ^ name
  | Ast.Show_constraints -> "SHOW CONSTRAINTS"
  | Ast.Refresh_view name -> "REFRESH VIEW " ^ name
  | Ast.Show_tables -> "SHOW TABLES"
  | Ast.Show_views -> "SHOW VIEWS"
  | Ast.Show_time -> "SHOW NOW"
  | Ast.Show_horizon None -> "SHOW HORIZON"
  | Ast.Show_horizon (Some t) -> "SHOW HORIZON FOR " ^ t
  | Ast.Explain q -> "EXPLAIN " ^ query q
  | Ast.Explain_analyze q -> "EXPLAIN ANALYZE " ^ query q
