open Expirel_core
open Expirel_storage
open Expirel_exec
module Trace = Expirel_obs.Trace
module Horizon = Expirel_obs.Horizon

type stored_view = {
  mutable view : View.t;
  columns : string list;
}

type maintained_view = {
  mutable maintained : Maintained.t;
  m_columns : string list;
}

type constraint_info = {
  c_expr : Algebra.t;
  min_rows : int option;
  max_rows : int option;
}

(* A cached physical plan, valid for exactly one catalog generation:
   any DDL (CREATE/DROP TABLE, CREATE/DROP INDEX) bumps the database
   generation and thereby invalidates every entry at once without
   touching the cache. *)
type plan_entry = {
  p_generation : int;
  p_columns : string list;
  p_compiled : Plan.compiled;
  p_approx : Approx.spec option;
      (* present when the physical tree is wrapped in a sketch operator
         (APPROX_COUNT/SAMPLE): evaluation runs under a [sketch-query]
         trace span so profiles attribute the sketch fold *)
}

type plan_cache_stats = {
  hits : int;
  misses : int;
  entries : int;
}

type t = {
  db : Database.t;
  store : Durable.t option;
  views : (string, stored_view) Hashtbl.t;
  maintained_views : (string, maintained_view) Hashtbl.t;
  invariants : Invariant.t;
  constraints : (string, constraint_info) Hashtbl.t;
  mutable trigger_log : string list;  (* newest first *)
  plan_cache : (string, plan_entry) Lru.t;
      (* keyed by the statement's source text: hashing a short string is
         far cheaper than the polymorphic hash + deep structural
         equality an [Ast.query] key pays, which used to cost more than
         the lowering + planning the cache exists to skip *)
  parse_cache : (string, Ast.statement) Lru.t;
      (* text -> parsed statement, consulted before the parser: for a
         repeated statement the parse is the most expensive CPU stage
         left on the request path (several times the cost of lowering +
         planning combined).  Only queries are stored — mutations
         arrive with distinct literals and would churn the LRU without
         ever hitting. *)
  plan_mutex : Mutex.t;
      (* the server's rwlock admits concurrent readers, and readers
         mutate the cache (LRU recency, stats) — so the cache has its
         own lock, never held across lowering or evaluation *)
  mutable plan_hits : int;
  mutable plan_misses : int;
  churn : Horizon.Churn.t;
      (* arrival vs expiration velocity, sampled whenever the logical
         clock moves (ADVANCE/TICK/VACUUM) and on horizon reads *)
}

let create ?policy ?backend ?store () =
  let db =
    match store with
    | Some s -> Durable.database s
    | None -> Database.create ?policy ?backend ()
  in
  { db;
    store;
    views = Hashtbl.create 8;
    maintained_views = Hashtbl.create 8;
    invariants = Invariant.create db;
    constraints = Hashtbl.create 8;
    trigger_log = [];
    plan_cache = Lru.create ~capacity:64;
    parse_cache = Lru.create ~capacity:64;
    plan_mutex = Mutex.create ();
    plan_hits = 0;
    plan_misses = 0;
    churn = Horizon.Churn.create ()
  }

let database t = t.db
let store t = t.store

type outcome =
  | Msg of string
  | Rows of {
      columns : string list;
      relation : Relation.t;
      listing : (Tuple.t * Time.t) list;
      texp_e : Time.t;
      recomputed : bool;
    }

let catalog t name = Option.map Table.columns (Database.table t.db name)

let time_of_expires t = function
  | Ast.At n -> Time.of_int n
  | Ast.Never -> Time.infinity
  | Ast.Ttl d -> Time.add (Database.now t.db) (Time.of_int d)

(* Presentation order: stable sort on the ORDER BY labels, then LIMIT. *)
let order_and_limit ~columns ~order_by ~limit relation =
  let listing = Relation.to_list relation in
  let keys =
    List.map (fun (r, d) -> Lower.order_by_position ~columns r, d) order_by
  in
  let compare_rows (t1, _) (t2, _) =
    let rec go = function
      | [] -> Tuple.compare t1 t2 (* deterministic tie-break *)
      | (pos, dir) :: rest ->
        let c = Value.compare (Tuple.attr t1 pos) (Tuple.attr t2 pos) in
        if c <> 0 then
          match dir with
          | Ast.Asc -> c
          | Ast.Desc -> -c
        else go rest
    in
    go keys
  in
  let sorted =
    if order_by = [] then listing else List.stable_sort compare_rows listing
  in
  match limit with
  | None -> sorted
  | Some n -> List.filteri (fun i _ -> i < n) sorted

(* Per-operator timing: wrap every evaluator node in a trace span named
   after its Algebra.operator_name, prefixed so the metrics layer can
   tell operator spans from stage spans.  Each op span is labeled with
   its output cardinality, so slow-log entries carry an operator
   breakdown with row counts, not just timings. *)
let probe_of trace =
  match trace with
  | None -> None
  | Some _ ->
    Some
      (fun op k ->
        Trace.span trace ("op:" ^ op) (fun () ->
            let r = k () in
            Trace.label trace "rows"
              (string_of_int (Relation.cardinal r.Eval.relation));
            r))

(* The physical executor's probe is polymorphic over the node result
   (vectorized operators yield batch lists, not relations): same span
   names and row labels, cardinality through the executor-supplied
   [rows] extractor. *)
let xprobe_of trace =
  match trace with
  | None -> None
  | Some _ ->
    Some
      { Executor.probe =
          (fun op ~rows k ->
            Trace.span trace ("op:" ^ op) (fun () ->
                let r = k () in
                Trace.label trace "rows" (string_of_int (rows r));
                r))
      }

(* Lower + plan once per distinct statement text and catalog generation;
   the LRU is the server hot path's per-request saving.  [text] is the
   statement's source string — the cache key — threaded down from
   [exec_sql] and the server's request handler; callers that hold only
   an AST skip the cache (re-printing the AST to obtain a key would cost
   more than planning).  The lock is dropped before lowering and
   planning so a cache miss never serialises against other readers; two
   concurrent misses on the same query both plan and the second store
   wins — wasted work, never a wrong answer. *)
let planned_query ?trace ?text t q =
  let generation = Database.generation t.db in
  let cached =
    match text with
    | None -> None
    | Some key ->
      Mutex.protect t.plan_mutex (fun () ->
          match Lru.find t.plan_cache key with
          | Some entry when entry.p_generation = generation ->
            t.plan_hits <- t.plan_hits + 1;
            Some entry
          | Some _ | None ->
            t.plan_misses <- t.plan_misses + 1;
            None)
  in
  match cached with
  | Some entry -> entry
  | None ->
    let { Lower.expr; columns; approx } =
      Trace.span trace "lower" (fun () ->
          Lower.lower_query ~catalog:(catalog t) q)
    in
    let compiled =
      Trace.span trace "plan" (fun () -> Planner.plan ~db:t.db ?approx expr)
    in
    let entry =
      { p_generation = generation;
        p_columns = columns;
        p_compiled = compiled;
        p_approx = approx
      }
    in
    (match text with
     | Some key ->
       Mutex.protect t.plan_mutex (fun () -> Lru.set t.plan_cache key entry)
     | None -> ());
    entry

let plan_cache_stats t =
  Mutex.protect t.plan_mutex (fun () ->
      { hits = t.plan_hits;
        misses = t.plan_misses;
        entries = Lru.length t.plan_cache
      })

let run_query ?trace ?text t { Ast.q; at; order_by; limit } =
  match at with
  | None ->
    let entry = planned_query ?trace ?text t q in
    let eval () =
      Executor.run ?probe:(xprobe_of trace) ~db:t.db entry.p_compiled
    in
    let { Eval.relation; texp = texp_e } =
      Trace.span trace "eval" (fun () ->
          match entry.p_approx with
          | None -> eval ()
          | Some _ -> Trace.span trace "sketch-query" eval)
    in
    let columns = entry.p_columns in
    let listing = order_and_limit ~columns ~order_by ~limit relation in
    Rows { columns; relation; listing; texp_e; recomputed = false }
  | Some n ->
    (* Query the known future: evaluate the current physical state as it
       will stand at time n, assuming no further updates — the future of
       expiring data is known in advance.  Time travel stays on the
       naive evaluator: it is off the hot path and its per-snapshot
       environment defeats plan reuse anyway. *)
    let { Lower.expr; columns; approx } =
      Trace.span trace "lower" (fun () ->
          Lower.lower_query ~catalog:(catalog t) q)
    in
    let { Eval.relation; texp = texp_e } =
      Trace.span trace "eval" (fun () ->
          let tau = Time.of_int n in
          if Time.(tau < Database.now t.db) then
            failwith "AT time is in the past (the past is not retained)"
          else
            let env name =
              Option.map
                (fun tbl -> Table.snapshot tbl ~tau)
                (Database.table t.db name)
            in
            let child = Eval.run ?probe:(probe_of trace) ~env ~tau expr in
            match approx with
            | None -> child
            | Some spec ->
              (* Sketch over the future snapshot: fold the child at tau
                 and answer from the sketch, exactly as the hot path
                 does at now. *)
              Trace.span trace "sketch-query" (fun () ->
                  let sketch = Approx.build spec child.Eval.relation in
                  let arity =
                    match spec with
                    | Approx.Count _ -> 2
                    | Approx.Sample _ -> Relation.arity child.Eval.relation
                  in
                  Approx.result ~tau ~arity ~child_texp:child.Eval.texp
                    sketch))
    in
    let listing = order_and_limit ~columns ~order_by ~limit relation in
    Rows { columns; relation; listing; texp_e; recomputed = false }

(* Shard-side half of a distributed approximate aggregate: evaluate the
   child locally and return the folded sketch (not rows) for the
   coordinator to merge with other shards' partials. *)
let sketch_partial ?trace t q =
  let { Lower.expr; columns; approx } =
    Trace.span trace "lower" (fun () ->
        Lower.lower_query ~catalog:(catalog t) q)
  in
  match approx with
  | None -> failwith "sketch_partial: query has no APPROX_COUNT/SAMPLE item"
  | Some spec ->
    Trace.span trace "sketch-query" (fun () ->
        let compiled = Planner.plan ~db:t.db expr in
        let child =
          Executor.run ?probe:(xprobe_of trace) ~db:t.db compiled
        in
        let sketch = Approx.build spec child.Eval.relation in
        Expirel_sketch.Observatory.record
          ~name:(Approx.name spec)
          ~memory_bytes:(Expirel_sketch.Any.memory_bytes sketch)
          ~estimate:
            (Expirel_sketch.Any.live_estimate ~tau:(Database.now t.db) sketch);
        columns, sketch)

(* Shard-side half of a distributed grouped aggregate: evaluate the
   decomposed child locally (at now, or at a future tau for AT queries)
   and condense it into expiration-slice partials.  The coordinator
   merges one such partial per shard and finalises — AVG travels as its
   SUM and COUNT components inside the slices, never pre-averaged. *)
let aggregate_partial ?trace t { Ast.q; at; order_by = _; limit = _ } =
  let compiled =
    Trace.span trace "lower" (fun () ->
        Lower.lower_query ~catalog:(catalog t) q)
  in
  match Lower.decompose compiled with
  | None -> failwith "aggregate_partial: query does not decompose"
  | Some { Lower.d_group; d_func; d_child; _ } ->
    let child =
      Trace.span trace "eval" (fun () ->
          match at with
          | None ->
            let planned = Planner.plan ~db:t.db d_child in
            Executor.run ?probe:(xprobe_of trace) ~db:t.db planned
          | Some n ->
            let tau = Time.of_int n in
            if Time.(tau < Database.now t.db) then
              failwith "AT time is in the past (the past is not retained)"
            else
              let env name =
                Option.map
                  (fun tbl -> Table.snapshot tbl ~tau)
                  (Database.table t.db name)
              in
              Eval.run ?probe:(probe_of trace) ~env ~tau d_child)
    in
    ( compiled.Lower.columns,
      Partial_agg.of_relation ~group:d_group ~func:d_func child.Eval.relation,
      child.Eval.texp )

(* Shard-side half of a distributed broadcast join: evaluate the full
   query over this shard's local rows, with the (small) build side's
   complete table — shipped in [rows] — standing in for the local
   fragment of [table].  Probe partitions are disjoint across shards, so
   the union of the per-shard results is the exact join. *)
let join_broadcast ?trace t { Ast.q; at; order_by = _; limit = _ } ~table
    ~(rows : (Value.t list * Time.t) list) =
  if at <> None then failwith "join_broadcast: AT not supported";
  let { Lower.expr; columns; approx } =
    Trace.span trace "lower" (fun () ->
        Lower.lower_query ~catalog:(catalog t) q)
  in
  if approx <> None then failwith "join_broadcast: approximate query";
  let build =
    let arity =
      match rows with
      | (vs, _) :: _ -> List.length vs
      | [] ->
        (match catalog t table with
         | Some cols -> List.length cols
         | None -> 0)
    in
    List.fold_left
      (fun acc (vs, texp) -> Relation.add (Tuple.of_list vs) ~texp acc)
      (Relation.empty ~arity) rows
  in
  let tau = Database.now t.db in
  let { Eval.relation; texp } =
    Trace.span trace "eval" (fun () ->
        let env name =
          if String.equal name table then Some build
          else
            Option.map
              (fun tbl -> Table.snapshot tbl ~tau)
              (Database.table t.db name)
        in
        Eval.run ?probe:(probe_of trace) ~env ~tau expr)
  in
  ( columns,
    List.map (fun (tuple, e) -> (Tuple.to_list tuple, e))
      (Relation.to_list relation),
    texp )

let view_name_taken t name =
  Hashtbl.mem t.views name || Hashtbl.mem t.maintained_views name

let each_maintained t f =
  Hashtbl.iter (fun _ mv -> mv.maintained <- f mv.maintained) t.maintained_views

(* Moving the clock goes through the invariant manager so constraint
   transitions inside the interval are reported alongside.  With a
   durable store the Advance is logged first (write-ahead), but applied
   only once, here — [Durable.advance_to] would move the clock a second
   time behind the invariant manager's back. *)
let advance_clock ?trace t target =
  let transitions =
    (* The whole state mutation — write-ahead logging, the clock move
       with its expirations, view maintenance — is the storage stage. *)
    Trace.span trace "storage" (fun () ->
        (match t.store with
         | Some s
           when (not (Time.is_infinite target))
                && Time.(target >= Database.now t.db) ->
           Durable.log_record s (Wal.Advance target)
         | Some _ | None -> ());
        let transitions = Invariant.advance t.invariants target in
        each_maintained t (fun m -> Maintained.advance m ~to_:target);
        transitions)
  in
  let base = Printf.sprintf "clock advanced to %s" (Time.to_string target) in
  match transitions with
  | [] -> Msg base
  | _ ->
    Msg
      (base ^ "\n"
       ^ String.concat "\n"
           (List.map
              (fun v ->
                Printf.sprintf "CONSTRAINT VIOLATED: %s at %s (%d rows)"
                  v.Invariant.name
                  (Time.to_string v.Invariant.at)
                  v.Invariant.cardinality)
              transitions))

let constraint_status t name info =
  let now = Database.now t.db in
  let cardinality =
    Relation.cardinal ((Database.query t.db info.c_expr).Eval.relation)
  in
  let ok =
    (match info.min_rows with
     | Some n -> cardinality >= n
     | None -> true)
    && (match info.max_rows with
        | Some n -> cardinality <= n
        | None -> true)
  in
  let horizon = Time.add now (Time.of_int 1000) in
  let prediction =
    if not ok then "VIOLATED NOW"
    else
      let next bound_name =
        match Invariant.next_violation t.invariants ~name:bound_name ~horizon with
        | Some at -> Some at
        | None | (exception Not_found) -> None
      in
      match
        Time.min_list
          (List.filter_map Fun.id
             [ next (name ^ "!min"); next (name ^ "!max") ])
      with
      | Time.Fin _ as at -> "breaks at " ^ Time.to_string at
      | Time.Inf -> "holds for 1000 ticks"
  in
  Printf.sprintf "%s: %d row(s)%s%s — %s" name cardinality
    (match info.min_rows with
     | Some n -> Printf.sprintf ", min %d" n
     | None -> "")
    (match info.max_rows with
     | Some n -> Printf.sprintf ", max %d" n
     | None -> "")
    prediction

let observe_churn t =
  match Time.to_int_opt (Database.now t.db) with
  | Some now ->
    Horizon.Churn.observe t.churn ~now
      ~arrivals:(Database.inserted_total t.db)
      ~expirations:(Database.expired_total t.db)
  | None -> ()

(* The forward expiration profile at the current clock.  The fan-out
   forecast is 0 here: subscriptions live above the interpreter (the
   network server owns them) and fill that field in before export. *)
let horizon ?table t =
  let bounds = Horizon.default_bounds in
  observe_churn t;
  let arrival_rate, expiration_rate = Horizon.Churn.rates t.churn in
  let profile =
    match table with
    | None -> Database.expiring_within t.db ~bounds
    | Some name ->
      [ (name,
         Table.expiring_within (Database.table_exn t.db name)
           ~now:(Database.now t.db) ~bounds)
      ]
  in
  { Horizon.now =
      (match Time.to_int_opt (Database.now t.db) with
       | Some n -> n
       | None -> 0);
    window = Horizon.default_window;
    fanout_events = 0;
    arrival_rate;
    expiration_rate;
    tables =
      List.map (fun (name, counts) -> { Horizon.name; bounds; counts }) profile
  }

let exec_statement ?trace ?text t = function
  | Ast.Create_table (name, columns) ->
    (match t.store with
     | Some s -> Durable.create_table s ~name ~columns
     | None ->
       let (_ : Table.t) = Database.create_table t.db ~name ~columns in
       ());
    Msg (Printf.sprintf "table %s created" name)
  | Ast.Drop_table name ->
    let dropped =
      match t.store with
      | Some s -> Durable.drop_table s name
      | None -> Database.drop_table t.db name
    in
    if dropped then Msg (Printf.sprintf "table %s dropped" name)
    else raise (Errors.Unknown_relation name)
  | Ast.Create_index { table; column } ->
    (* Indexes are session-local physical state — they change access
       paths, never results — so they are not write-ahead logged; a
       reopened store rebuilds none and stays correct. *)
    let tbl = Database.table_exn t.db table in
    (match Table.column_position tbl column with
     | None ->
       failwith (Printf.sprintf "unknown column %s in table %s" column table)
     | Some pos ->
       Trace.span trace "storage" (fun () -> Table.create_index tbl ~column:pos);
       Database.bump_generation t.db;
       Msg (Printf.sprintf "index on %s (%s) created" table column))
  | Ast.Drop_index { table; column } ->
    let tbl = Database.table_exn t.db table in
    (match Table.column_position tbl column with
     | None ->
       failwith (Printf.sprintf "unknown column %s in table %s" column table)
     | Some pos ->
       Table.drop_index tbl ~column:pos;
       Database.bump_generation t.db;
       Msg (Printf.sprintf "index on %s (%s) dropped" table column))
  | Ast.Insert { table; values; expires } ->
    let texp = time_of_expires t expires in
    Trace.span trace "storage" (fun () ->
        (match t.store with
         | Some s -> Durable.insert s table (Tuple.of_list values) ~texp
         | None -> Database.insert_values t.db table values ~texp);
        each_maintained t (fun m ->
            Maintained.insert m ~relation:table (Tuple.of_list values) ~texp));
    Msg "1 tuple inserted"
  | Ast.Delete (table, where) ->
    let tbl = Database.table_exn t.db table in
    let pred =
      Option.map
        (Lower.lower_cond_for_table ~columns:(Table.columns tbl) ~table)
        where
    in
    let snapshot = Database.snapshot t.db table in
    let victims =
      Relation.fold
        (fun tuple _ acc ->
          match pred with
          | Some p when not (Predicate.eval p tuple) -> acc
          | Some _ | None -> tuple :: acc)
        snapshot []
    in
    Trace.span trace "storage" (fun () ->
        List.iter
          (fun tuple ->
            (match t.store with
             | Some s -> ignore (Durable.delete s table tuple)
             | None -> ignore (Table.delete tbl tuple));
            each_maintained t (fun m ->
                Maintained.delete m ~relation:table tuple))
          victims);
    Msg (Printf.sprintf "%d tuple(s) deleted" (List.length victims))
  | Ast.Advance_to n -> advance_clock ?trace t (Time.of_int n)
  | Ast.Tick n ->
    advance_clock ?trace t (Time.add (Database.now t.db) (Time.of_int n))
  | Ast.Vacuum ->
    let reclaimed = Trace.span trace "storage" (fun () -> Database.vacuum t.db) in
    Msg (Printf.sprintf "%d tuple(s) reclaimed" reclaimed)
  | Ast.Checkpoint ->
    (match t.store with
     | None -> failwith "CHECKPOINT requires a durable store (no data directory)"
     | Some s ->
       let logged = Durable.wal_records s in
       let kept = Trace.span trace "storage" (fun () -> Durable.checkpoint s) in
       Msg
         (Printf.sprintf
            "checkpoint at position %d: %d log record(s) compacted into a \
             %d-record snapshot"
            (Durable.position s) logged kept))
  | Ast.Query qs -> run_query ?trace ?text t qs
  | Ast.Create_view { name; query; maintained } ->
    if view_name_taken t name then
      failwith (Printf.sprintf "view %s exists" name)
    else begin
      let { Lower.expr; columns; approx } =
        Lower.lower_query ~catalog:(catalog t) query
      in
      if approx <> None then
        failwith "APPROX_COUNT/SAMPLE cannot be materialised as a view";
      let now = Database.now t.db in
      if maintained then begin
        let m = Maintained.materialise ~env:(Database.env t.db) ~tau:now expr in
        Hashtbl.replace t.maintained_views name
          { maintained = m; m_columns = columns };
        Msg
          (Printf.sprintf
             "maintained view %s materialised (tracks updates and the clock)"
             name)
      end
      else begin
        let view = View.materialise ~env:(Database.env t.db) ~tau:now expr in
        Hashtbl.replace t.views name { view; columns };
        Msg
          (Printf.sprintf "view %s materialised (texp(e) = %s, %s)" name
             (Time.to_string view.View.texp)
             (match Monotone.classify expr with
              | `Monotonic -> "monotonic: never recomputes"
              | `Non_monotonic k ->
                Printf.sprintf "%d non-monotonic operator(s)" k))
      end
    end
  | Ast.Show_view name ->
    (match Hashtbl.find_opt t.maintained_views name with
     | Some mv ->
       let relation = Maintained.read mv.maintained in
       Rows
         { columns = mv.m_columns;
           relation;
           listing = Relation.to_list relation;
           texp_e = Time.infinity;
             (* maintained incrementally: never needs recomputation *)
           recomputed = false
         }
     | None ->
       (match Hashtbl.find_opt t.views name with
        | None -> failwith (Printf.sprintf "unknown view %s" name)
        | Some stored ->
          let tau = Database.now t.db in
          (match View.read stored.view ~tau with
           | `Valid relation ->
             Rows
               { columns = stored.columns;
                 relation;
                 listing = Relation.to_list relation;
                 texp_e = stored.view.View.texp;
                 recomputed = false
               }
           | `Expired _ ->
             stored.view <- View.refresh ~env:(Database.env t.db) ~tau stored.view;
             let relation = View.current stored.view ~tau in
             Rows
               { columns = stored.columns;
                 relation;
                 listing = Relation.to_list relation;
                 texp_e = stored.view.View.texp;
                 recomputed = true
               })))
  | Ast.Create_trigger { name; table } ->
    Trigger.register (Database.triggers t.db) ~name ~table (fun e ->
        t.trigger_log <-
          Printf.sprintf "%s: %s%s expired at %s" name e.Trigger.table
            (Tuple.to_string e.Trigger.tuple)
            (Time.to_string e.Trigger.fired_at)
          :: t.trigger_log);
    Msg (Printf.sprintf "trigger %s on %s created" name table)
  | Ast.Drop_trigger name ->
    Trigger.unregister (Database.triggers t.db) ~name;
    Msg (Printf.sprintf "trigger %s dropped" name)
  | Ast.Create_constraint { name; query; min_rows; max_rows } ->
    if Hashtbl.mem t.constraints name then
      failwith (Printf.sprintf "constraint %s exists" name)
    else begin
      let { Lower.expr; approx; _ } =
        Lower.lower_query ~catalog:(catalog t) query
      in
      if approx <> None then
        failwith "APPROX_COUNT/SAMPLE cannot back a constraint";
      (match min_rows with
       | Some n -> Invariant.add t.invariants ~name:(name ^ "!min") ~expr
                     (Invariant.Min_cardinality n)
       | None -> ());
      (match max_rows with
       | Some n -> Invariant.add t.invariants ~name:(name ^ "!max") ~expr
                     (Invariant.Max_cardinality n)
       | None -> ());
      Hashtbl.replace t.constraints name { c_expr = expr; min_rows; max_rows };
      Msg (Printf.sprintf "constraint %s created" name)
    end
  | Ast.Drop_constraint name ->
    if Hashtbl.mem t.constraints name then begin
      Hashtbl.remove t.constraints name;
      ignore (Invariant.remove t.invariants (name ^ "!min"));
      ignore (Invariant.remove t.invariants (name ^ "!max"));
      Msg (Printf.sprintf "constraint %s dropped" name)
    end
    else failwith (Printf.sprintf "unknown constraint %s" name)
  | Ast.Show_constraints ->
    let names =
      Hashtbl.fold (fun name _ acc -> name :: acc) t.constraints []
      |> List.sort String.compare
    in
    (match names with
     | [] -> Msg "(no constraints)"
     | _ ->
       Msg
         (String.concat "\n"
            (List.map
               (fun name ->
                 constraint_status t name (Hashtbl.find t.constraints name))
               names)))
  | Ast.Show_triggers ->
    Msg
      (match List.rev t.trigger_log with
       | [] -> "(no trigger firings)"
       | lines -> String.concat "\n" lines)
  | Ast.Refresh_view name ->
    if Hashtbl.mem t.maintained_views name then
      Msg (Printf.sprintf "view %s is maintained and always current" name)
    else
      (match Hashtbl.find_opt t.views name with
       | None -> failwith (Printf.sprintf "unknown view %s" name)
       | Some stored ->
         stored.view <-
           View.refresh ~env:(Database.env t.db) ~tau:(Database.now t.db) stored.view;
         Msg
           (Printf.sprintf "view %s refreshed (texp(e) = %s)" name
              (Time.to_string stored.view.View.texp)))
  | Ast.Show_tables ->
    Msg
      (match Database.table_names t.db with
       | [] -> "(no tables)"
       | names -> String.concat "\n" names)
  | Ast.Show_views ->
    let plain = Hashtbl.fold (fun name _ acc -> name :: acc) t.views [] in
    let maintained =
      Hashtbl.fold (fun name _ acc -> (name ^ " (maintained)") :: acc)
        t.maintained_views []
    in
    (match List.sort String.compare (plain @ maintained) with
     | [] -> Msg "(no views)"
     | names -> Msg (String.concat "\n" names))
  | Ast.Show_time -> Msg (Time.to_string (Database.now t.db))
  | Ast.Show_horizon table -> Msg (Horizon.render (horizon ?table t))
  | Ast.Explain q ->
    let { Lower.expr; columns; approx } =
      Lower.lower_query ~catalog:(catalog t) q
    in
    let { Eval.texp; _ } = Database.query t.db expr in
    let { Plan.physical; _ } = Planner.plan ~db:t.db ?approx expr in
    Msg
      (Printf.sprintf
         "%scolumns: %s\nclass: %s\ntexp(e) now: %s\nphysical plan:\n%s"
         (Explain.expr_tree expr)
         (String.concat ", " columns)
         (match Monotone.classify expr with
          | `Monotonic -> "monotonic"
          | `Non_monotonic k -> Printf.sprintf "non-monotonic (%d)" k)
         (Time.to_string texp)
         (Plan.to_string physical))
  | Ast.Explain_analyze q ->
    (* Plan through the cache (EXPLAIN ANALYZE profiles what a real
       request would run, cached plan included), then execute with a
       profile sink and report the annotated tree. *)
    let entry = planned_query ?trace ?text t q in
    let physical = entry.p_compiled.Plan.physical in
    let profile = Profile.of_plan ~db:t.db physical in
    let { Eval.relation; texp = texp_e } =
      Trace.span trace "eval" (fun () ->
          Executor.run ?probe:(xprobe_of trace) ~profile ~db:t.db
            entry.p_compiled)
    in
    Msg
      (Printf.sprintf
         "%srows: %d\ntexp(e) now: %s\nexpired dropped: %d\ntotal: %.3fms"
         (Profile.render physical profile)
         (Relation.cardinal relation)
         (Time.to_string texp_e)
         (Profile.total_expired_dropped profile)
         (float_of_int profile.Profile.time_us /. 1e3))

let view_horizons t =
  let plain =
    Hashtbl.fold
      (fun name sv acc -> (name, sv.view.View.texp) :: acc)
      t.views []
  in
  let maintained =
    (* Maintained incrementally under updates and the clock: their
       materialisation never needs recomputation. *)
    Hashtbl.fold
      (fun name _ acc -> (name, Time.infinity) :: acc)
      t.maintained_views []
  in
  List.sort compare (plain @ maintained)

let exec ?trace ?text t statement =
  match exec_statement ?trace ?text t statement with
  | outcome ->
    (* Clock movement is the churn tracker's sampling edge: rates are
       per logical tick, so sample exactly when ticks happen. *)
    (match statement with
     | Ast.Advance_to _ | Ast.Tick _ | Ast.Vacuum -> observe_churn t
     | _ -> ());
    Ok outcome
  | exception Errors.Unknown_relation name ->
    Error (Printf.sprintf "unknown relation %s" name)
  | exception Errors.Arity_mismatch msg -> Error msg
  | exception Lower.Error msg -> Error msg
  | exception Invalid_argument msg -> Error msg
  | exception Failure msg -> Error msg

(* Parse through the statement cache.  A parsed AST is immutable, so
   sharing one across requests is safe; parse errors raise before the
   store and are never cached.  Raises [Parser.Error]. *)
let parse t text =
  match Mutex.protect t.plan_mutex (fun () -> Lru.find t.parse_cache text) with
  | Some statement -> statement
  | None ->
    let statement = Parser.parse_statement text in
    (match statement with
     | Ast.Query _ ->
       Mutex.protect t.plan_mutex (fun () ->
           Lru.set t.parse_cache text statement)
     | _ -> ());
    statement

let exec_sql t text =
  match parse t text with
  | statement -> exec ~text t statement
  | exception Parser.Error (msg, off) ->
    Error (Printf.sprintf "parse error at %d: %s" off msg)

let exec_script t text =
  match Parser.parse_script text with
  | statements -> List.map (exec t) statements
  | exception Parser.Error (msg, off) ->
    [ Error (Printf.sprintf "parse error at %d: %s" off msg) ]

let render = function
  | Msg m -> m
  | Rows { columns; relation; listing; texp_e = _; recomputed } ->
    let table =
      Explain.rows_table ~columns ~arity:(Relation.arity relation) listing
    in
    if recomputed then table ^ "\n(view recomputed)" else table
