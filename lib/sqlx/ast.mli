(** Abstract syntax of the sqlx dialect.

    The language exposes expiration times exactly where the paper allows
    (Section 2): on [INSERT ... EXPIRES t] / [TTL d] and through
    expiration triggers; queries never mention them. *)

open Expirel_core

type column_ref = {
  qualifier : string option;  (** table name, for [t.col] *)
  column : string;
}

type agg_name =
  | Count_star
  | Sum_of of column_ref
  | Min_of of column_ref
  | Max_of of column_ref
  | Avg_of of column_ref

type operand =
  | Col_ref of column_ref
  | Lit of Value.t
  | Agg_ref of agg_name
      (** only meaningful inside HAVING conditions *)

type cmp =
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge

type cond =
  | Cmp of cmp * operand * operand
  | And of cond * cond
  | Or of cond * cond
  | Not of cond

type select_item =
  | Star
  | Column of column_ref
  | Agg of agg_name
  | Approx_count of float
      (** [APPROX_COUNT(eps)]: ε-approximate live count served by a
          bounded-memory sketch; answers carry an explicit error bound *)
  | Sample of int
      (** [SAMPLE(k)]: a uniform random sample of [k] live rows served
          by a priority sketch *)

type source =
  | From_table of string
  | From_join of string * string * cond  (** [t JOIN u ON cond] *)

type direction =
  | Asc
  | Desc

type select = {
  items : select_item list;
  source : source;
  where : cond option;
  group_by : column_ref list;
  having : cond option;
      (** filters groups; may reference the select list's aggregate *)
}

type query =
  | Select of select
  | Union of query * query
  | Except of query * query
  | Intersect of query * query

type query_stmt = {
  q : query;
  at : int option;  (** [AT n]: evaluate against the known future state at time [n] *)
  order_by : (column_ref * direction) list;
  limit : int option;
}

type expires_clause =
  | At of int  (** absolute expiration time *)
  | Never
  | Ttl of int  (** relative to the current clock *)

type statement =
  | Create_table of string * string list
  | Drop_table of string
  | Create_index of {
      table : string;
      column : string;
    }
      (** [CREATE INDEX ON t (c)]: builds an ordered secondary index the
          planner's access paths can use; purely physical — results
          never change, only cost *)
  | Drop_index of {
      table : string;
      column : string;
    }
  | Insert of {
      table : string;
      values : Value.t list;
      expires : expires_clause;
    }
  | Delete of string * cond option
  | Advance_to of int
  | Tick of int
  | Vacuum
  | Checkpoint
      (** compact the attached durable store's snapshot (an error when
          the session is purely in-memory) *)
  | Query of query_stmt
  | Create_view of {
      name : string;
      query : query;
      maintained : bool;
          (** maintained views stay synchronised with inserts, deletes
              and clock advances incrementally *)
    }
  | Show_view of string
  | Create_trigger of {
      name : string;
      table : string;  (** ["*"] subscribes to every table *)
    }
  | Drop_trigger of string
  | Show_triggers
  | Create_constraint of {
      name : string;
      query : query;
      min_rows : int option;
      max_rows : int option;
    }
  | Drop_constraint of string
  | Show_constraints
  | Refresh_view of string
  | Show_tables
  | Show_views
  | Show_time
  | Show_horizon of string option
      (** [SHOW HORIZON [FOR t]]: the forward expiration profile —
          bucketed counts of live rows by ticks-to-expiry, for one
          table or all of them *)
  | Explain of query
  | Explain_analyze of query
      (** [EXPLAIN ANALYZE q]: plans {e and runs} [q], reporting the
          physical tree annotated with per-operator actual rows,
          expired-tuple drop counts, index visits and wall time next to
          the planner's estimates *)

val pp_cond : Format.formatter -> cond -> unit
val pp_statement : Format.formatter -> statement -> unit
