open Expirel_core

type column_ref = {
  qualifier : string option;
  column : string;
}

type agg_name =
  | Count_star
  | Sum_of of column_ref
  | Min_of of column_ref
  | Max_of of column_ref
  | Avg_of of column_ref

type operand =
  | Col_ref of column_ref
  | Lit of Value.t
  | Agg_ref of agg_name
      (** only meaningful inside HAVING conditions *)

type cmp =
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge

type cond =
  | Cmp of cmp * operand * operand
  | And of cond * cond
  | Or of cond * cond
  | Not of cond

type select_item =
  | Star
  | Column of column_ref
  | Agg of agg_name
  | Approx_count of float
  | Sample of int

type source =
  | From_table of string
  | From_join of string * string * cond

type direction =
  | Asc
  | Desc

type select = {
  items : select_item list;
  source : source;
  where : cond option;
  group_by : column_ref list;
  having : cond option;
      (** filters groups; may reference the select list's aggregate *)
}

type query =
  | Select of select
  | Union of query * query
  | Except of query * query
  | Intersect of query * query

type query_stmt = {
  q : query;
  at : int option;
  order_by : (column_ref * direction) list;
  limit : int option;
}

type expires_clause =
  | At of int
  | Never
  | Ttl of int

type statement =
  | Create_table of string * string list
  | Drop_table of string
  | Create_index of {
      table : string;
      column : string;
    }
  | Drop_index of {
      table : string;
      column : string;
    }
  | Insert of {
      table : string;
      values : Value.t list;
      expires : expires_clause;
    }
  | Delete of string * cond option
  | Advance_to of int
  | Tick of int
  | Vacuum
  | Checkpoint
  | Query of query_stmt
  | Create_view of {
      name : string;
      query : query;
      maintained : bool;
    }
  | Show_view of string
  | Create_trigger of {
      name : string;
      table : string;
    }
  | Drop_trigger of string
  | Show_triggers
  | Create_constraint of {
      name : string;
      query : query;
      min_rows : int option;
      max_rows : int option;
    }
  | Drop_constraint of string
  | Show_constraints
  | Refresh_view of string
  | Show_tables
  | Show_views
  | Show_time
  | Show_horizon of string option
  | Explain of query
  | Explain_analyze of query

let pp_column_ref ppf { qualifier; column } =
  match qualifier with
  | Some q -> Format.fprintf ppf "%s.%s" q column
  | None -> Format.pp_print_string ppf column

let pp_agg ppf = function
  | Count_star -> Format.pp_print_string ppf "COUNT(*)"
  | Sum_of r -> Format.fprintf ppf "SUM(%a)" pp_column_ref r
  | Min_of r -> Format.fprintf ppf "MIN(%a)" pp_column_ref r
  | Max_of r -> Format.fprintf ppf "MAX(%a)" pp_column_ref r
  | Avg_of r -> Format.fprintf ppf "AVG(%a)" pp_column_ref r

let pp_operand ppf = function
  | Col_ref c -> pp_column_ref ppf c
  | Lit v -> Value.pp ppf v
  | Agg_ref a -> pp_agg ppf a

let cmp_text = function
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec pp_cond ppf = function
  | Cmp (op, a, b) ->
    Format.fprintf ppf "%a %s %a" pp_operand a (cmp_text op) pp_operand b
  | And (a, b) -> Format.fprintf ppf "(%a AND %a)" pp_cond a pp_cond b
  | Or (a, b) -> Format.fprintf ppf "(%a OR %a)" pp_cond a pp_cond b
  | Not a -> Format.fprintf ppf "NOT %a" pp_cond a

let pp_statement ppf = function
  | Create_table (name, cols) ->
    Format.fprintf ppf "CREATE TABLE %s (%s)" name (String.concat ", " cols)
  | Drop_table name -> Format.fprintf ppf "DROP TABLE %s" name
  | Create_index { table; column } ->
    Format.fprintf ppf "CREATE INDEX ON %s (%s)" table column
  | Drop_index { table; column } ->
    Format.fprintf ppf "DROP INDEX ON %s (%s)" table column
  | Insert { table; values; expires } ->
    let expires_text =
      match expires with
      | At t -> Printf.sprintf " EXPIRES %d" t
      | Never -> " EXPIRES NEVER"
      | Ttl d -> Printf.sprintf " TTL %d" d
    in
    Format.fprintf ppf "INSERT INTO %s VALUES (%s)%s" table
      (String.concat ", " (List.map Value.to_string values))
      expires_text
  | Delete (name, None) -> Format.fprintf ppf "DELETE FROM %s" name
  | Delete (name, Some c) ->
    Format.fprintf ppf "DELETE FROM %s WHERE %a" name pp_cond c
  | Advance_to t -> Format.fprintf ppf "ADVANCE TO %d" t
  | Tick n -> Format.fprintf ppf "TICK %d" n
  | Vacuum -> Format.pp_print_string ppf "VACUUM"
  | Checkpoint -> Format.pp_print_string ppf "CHECKPOINT"
  | Query { at = None; _ } -> Format.pp_print_string ppf "SELECT ..."
  | Query { at = Some at; _ } -> Format.fprintf ppf "SELECT ... AT %d" at
  | Create_view { name; maintained; _ } ->
    Format.fprintf ppf "CREATE %sVIEW %s AS ..."
      (if maintained then "MAINTAINED " else "")
      name
  | Create_trigger { name; table } ->
    Format.fprintf ppf "CREATE TRIGGER %s ON %s" name table
  | Drop_trigger name -> Format.fprintf ppf "DROP TRIGGER %s" name
  | Show_triggers -> Format.pp_print_string ppf "SHOW TRIGGERS"
  | Create_constraint { name; min_rows; max_rows; _ } ->
    Format.fprintf ppf "CREATE CONSTRAINT %s ON ...%s%s" name
      (match min_rows with
       | Some n -> Printf.sprintf " MIN %d" n
       | None -> "")
      (match max_rows with
       | Some n -> Printf.sprintf " MAX %d" n
       | None -> "")
  | Drop_constraint name -> Format.fprintf ppf "DROP CONSTRAINT %s" name
  | Show_constraints -> Format.pp_print_string ppf "SHOW CONSTRAINTS"
  | Show_view name -> Format.fprintf ppf "SHOW VIEW %s" name
  | Refresh_view name -> Format.fprintf ppf "REFRESH VIEW %s" name
  | Show_tables -> Format.pp_print_string ppf "SHOW TABLES"
  | Show_views -> Format.pp_print_string ppf "SHOW VIEWS"
  | Show_time -> Format.pp_print_string ppf "SHOW NOW"
  | Show_horizon None -> Format.pp_print_string ppf "SHOW HORIZON"
  | Show_horizon (Some t) -> Format.fprintf ppf "SHOW HORIZON FOR %s" t
  | Explain _ -> Format.pp_print_string ppf "EXPLAIN ..."
  | Explain_analyze _ -> Format.pp_print_string ppf "EXPLAIN ANALYZE ..."
