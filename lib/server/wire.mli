(** The versioned, length-framed binary wire protocol of the expirel
    server.

    A frame on the wire is a 4-byte big-endian payload length followed
    by the payload; a payload is one protocol-version byte, one message
    tag byte and the message body.  Result relations travel {e with}
    their per-tuple expiration times and the expression-level [texp(e)]
    — the validity information that makes remote caching of results
    sound (a client holding a [Rows] response knows exactly how long
    each row, and the result as a whole, stays current without any
    further contact).

    Everything in this module is a pure function over strings: encoders
    never perform IO and decoders never raise, so the codec can be
    property-tested (round-trips) and fuzzed (truncations, oversized
    length prefixes, unknown tags) directly.  Socket plumbing lives in
    {!Frame}. *)

open Expirel_core

val version : int
(** Protocol version carried in every payload; mismatches decode to
    [Error]. *)

val max_frame : int
(** Upper bound on accepted payload length (16 MiB); a length prefix
    beyond it is malformed, protecting peers from hostile allocations. *)

(** {1 Messages} *)

type error_code =
  | Parse_error  (** the statement did not parse *)
  | Exec_error  (** the statement parsed but failed to execute *)
  | Proto_error  (** undecodable or inappropriate message *)
  | Timeout  (** the request missed the server's per-request deadline *)
  | Overloaded  (** the connection cap was reached *)
  | Shutting_down  (** the server is draining *)

type event =
  | Row_expired of { subscription : string; row : Value.t list; at : Time.t }
  | Row_appeared of {
      subscription : string;
      row : Value.t list;
      texp : Time.t;
      at : Time.t;
    }
  | Refreshed of { subscription : string; at : Time.t }
      (** mirrors {!Expirel_storage.Subscription.event}, with tuples
          flattened to value lists *)

type stats = {
  connections_total : int;
  connections_active : int;
  requests_total : int;
  errors_total : int;
  bytes_in : int;
  bytes_out : int;
  events_pushed : int;
  tuples_expired : int;  (** tuples whose expiration the storage observed *)
  latency_buckets : (int * int) list;
      (** request-latency histogram: (upper bound in µs — [max_int] for
          the overflow bucket — , count), ascending *)
}

type request =
  | Exec of string  (** one sqlx statement *)
  | Subscribe of { name : string; query : string }
      (** register a continuous query; events stream back on this
          connection at the exact logical change times *)
  | Unsubscribe of string
  | Stats
  | Ping
  | Quit

type response =
  | Ok_msg of string
  | Rows of {
      columns : string list;
      rows : (Value.t list * Time.t) list;  (** presentation order, each
                                                with its [texp] *)
      texp_e : Time.t;  (** expression-level expiration of the result *)
      recomputed : bool;
    }
  | Err of { code : error_code; message : string }
  | Event of event  (** pushed, not solicited: may arrive at any frame
                        boundary *)
  | Stats_reply of stats
  | Pong
  | Bye

(** {1 Codecs} — payloads only (no length prefix) *)

val encode_request : request -> string
val decode_request : string -> (request, string) result

val encode_response : response -> string
val decode_response : string -> (response, string) result

(** {1 Framing} *)

val frame : string -> string
(** [frame payload] prepends the 4-byte big-endian length. *)

type extracted =
  | Incomplete  (** more bytes needed — not an error *)
  | Frame of { payload : string; consumed : int }
      (** one whole frame; [consumed] counts the prefix too *)
  | Malformed of string
      (** unrecoverable framing error (oversized length prefix): the
          stream is desynchronised and the connection should close *)

val extract : ?pos:int -> string -> extracted
(** Incremental deframing of a byte buffer starting at [pos]
    (default 0).  Never raises, for any input. *)

val pp_response : Format.formatter -> response -> unit
(** Human-readable rendering (one line per row), for the CLI and
    examples. *)

val render_response : response -> string
