(** The versioned, length-framed binary wire protocol of the expirel
    server.

    A frame on the wire is a 4-byte big-endian payload length followed
    by the payload; a payload is one protocol-version byte, one message
    tag byte and the message body.  Result relations travel {e with}
    their per-tuple expiration times and the expression-level [texp(e)]
    — the validity information that makes remote caching of results
    sound (a client holding a [Rows] response knows exactly how long
    each row, and the result as a whole, stays current without any
    further contact).

    Everything in this module is a pure function over strings: encoders
    never perform IO and decoders never raise, so the codec can be
    property-tested (round-trips) and fuzzed (truncations, oversized
    length prefixes, unknown tags) directly.  Socket plumbing lives in
    {!Frame}. *)

open Expirel_core
open Expirel_storage

val version : int
(** Protocol version carried in every payload; mismatches decode to
    [Error].

    {2 Version-bump policy}

    The version byte is bumped when, and only when, a change makes
    payloads that an older peer could receive undecodable or
    misinterpretable: removing or renumbering a tag, changing the body
    layout of an existing tag, or changing a field's meaning.  Adding a
    {e new} tag alone does not strictly require a bump (old decoders
    reject unknown tags cleanly), but this protocol still bumps for new
    tags a peer is expected to {e send} unprompted — a v1 server would
    otherwise answer a replication handshake with an opaque
    [Proto_error] instead of a diagnosable mismatch.

    History: v1 — request tags 1–6, response tags 1–7, error codes 1–6.
    v2 — adds the [Replicate] handshake (request tag 7), the replication
    stream responses (tags 8–10), the [Version_mismatch] error code (7)
    and a trailing optional replication section in [stats].
    v3 — adds the observability requests [Metrics] (tag 8) and
    [Slow_queries] (tag 9) with their responses [Metrics_reply] (11) and
    [Slow_queries_reply] (12); clients send them unprompted, so the
    bump gives pre-v3 servers a diagnosable mismatch instead of an
    opaque protocol error.  No existing layout changed — in particular
    [stats] still carries its latency-bucket bounds in the payload, so
    the histogram gaining a bucket needed no wire change at all.
    v4 — distributed tracing and health.  This bump is {e required},
    not courtesy: two existing layouts changed — [span] gained ids,
    parent ids and labels (so slow-query breakdowns can be rebuilt as
    trees), and the [Replicate] handshake gained a trailing optional
    trace context (so WAL-shipping sessions join the follower's trace).
    A v3 peer would misparse both.  New tags: requests [Exec_traced]
    (10, an [Exec] carrying the caller's trace context so primary and
    replica spans share one trace id), [Trace_recent] (11) and [Health]
    (12); responses [Traces_reply] (13) and [Health_reply] (14).
    v5 — sharded clusters.  New tags only; no existing layout changed,
    but coordinators send the new tags unprompted, so the bump gives a
    pre-v5 shard a diagnosable mismatch.  Requests: [Shard_map_req]
    (13), [Shard_install] (14, the coordinator's handshake pushing a
    versioned {!shard_map} plus the node's own shard id — re-sent with
    a higher version on rebalance), [Exec_shard] (15, an [Exec] whose
    reply piggybacks the shard id and the {!partition_texp} summary the
    coordinator's pruning feeds on), [Shard_ping] (16, the cluster
    heartbeat), and the ownership-transfer triple [Extract_moving]
    (17) / [Ingest_rows] (18) / [Purge_moved] (19).  Responses:
    [Shard_map_reply] (15), [Shard_rows] (16), [Shard_ack] (17),
    [Shard_pong] (18) and [Moved_rows] (19).
    v6 — distributed approximate aggregates.  New tags only, sent
    unprompted by coordinators: request [Sketch_shard] (20, an
    [Exec_shard] whose reply carries a serialised sketch partial
    instead of rows) and response [Shard_sketch] (20, the shard's
    partial: an opaque {!Expirel_sketch.Any} encoding plus the answer's
    column labels and the usual partition summary).
    v7 — distributed grouped aggregates and broadcast joins.  New tags
    only, sent unprompted by coordinators: requests [Agg_shard] (21, an
    [Exec_shard] for a decomposable GROUP BY/aggregate query whose
    reply carries expiration-slice partials instead of rows — AVG
    travels as SUM + COUNT inside the slices, never pre-averaged) and
    [Join_shard] (22, a broadcast join: the small build side's complete
    rows ride along and the shard joins them against its local probe
    fragment, replying with ordinary [Shard_rows]); response
    [Shard_agg] (21, the shard's per-group slice partials plus the
    child's [texp(e)]).  Also adds error code 8, [Shard_failed]: the
    single typed error a coordinator surfaces when a shard dies or
    answers garbage mid-scatter-gather.
    v8 — expiration-horizon telemetry.  This bump is {e required}: the
    [slow_query] body changed — each entry now leads with the trace id
    it was recorded under, so slow-log entries join against [TRACES]
    exports; a v7 peer would misparse [Slow_queries_reply].  New tags:
    request [Horizon] (23, the forward expiration forecast, optionally
    restricted to one table — coordinators send it unprompted when
    gathering cluster-wide horizons) and response [Horizon_reply] (22,
    the per-table bucketed forecast plus fan-out and churn figures,
    merged bucket-wise across shards).

    On decode failure, a peer should check {!payload_version}: when the
    sender speaks a different version, answer
    [Err { code = Version_mismatch; _ }] (whose layout has been stable
    since v1, so even an old peer renders it) rather than a generic
    protocol error. *)

val max_frame : int
(** Upper bound on accepted payload length (16 MiB); a length prefix
    beyond it is malformed, protecting peers from hostile allocations. *)

(** {1 Messages} *)

type error_code =
  | Parse_error  (** the statement did not parse *)
  | Exec_error  (** the statement parsed but failed to execute *)
  | Proto_error  (** undecodable or inappropriate message *)
  | Timeout  (** the request missed the server's per-request deadline *)
  | Overloaded  (** the connection cap was reached *)
  | Shutting_down  (** the server is draining *)
  | Version_mismatch
      (** the peer speaks a different protocol version (the error
          message names both) *)
  | Shard_failed
      (** a shard died or answered garbage mid-scatter-gather: the
          distributed query cannot be answered from the surviving
          shards (partitions are disjoint, so a missing partial means a
          missing slice of the answer) *)

type event =
  | Row_expired of { subscription : string; row : Value.t list; at : Time.t }
  | Row_appeared of {
      subscription : string;
      row : Value.t list;
      texp : Time.t;
      at : Time.t;
    }
  | Refreshed of { subscription : string; at : Time.t }
      (** mirrors {!Expirel_storage.Subscription.event}, with tuples
          flattened to value lists *)

type repl_role =
  | Primary  (** ships its log to followers *)
  | Replica  (** applies a primary's log *)

type repl_stats = {
  role : repl_role;
  position : int;  (** local log position (records applied/logged) *)
  source_position : int;
      (** the primary's position as last heard (equals [position] on a
          primary) *)
  lag_records : int;  (** [source_position - position] *)
  clock_lag : int;
      (** logical-time distance to the source clock, in ticks *)
  reconnects : int;  (** times the applier had to redial *)
  snapshots : int;  (** snapshot bootstraps received (or served) *)
  records_shipped : int;  (** stream records applied (or shipped) *)
  followers : int;  (** live replication sessions (primary side) *)
}

type stats = {
  connections_total : int;
  connections_active : int;
  requests_total : int;
  errors_total : int;
  bytes_in : int;
  bytes_out : int;
  events_pushed : int;
  tuples_expired : int;  (** tuples whose expiration the storage observed *)
  latency_buckets : (int * int) list;
      (** request-latency histogram: (upper bound in µs — [max_int] for
          the overflow bucket — , count), ascending *)
  repl : repl_stats option;
      (** present when the server participates in replication *)
}

type span = {
  span_name : string;  (** stage label, e.g. ["parse"], ["op:join"] *)
  span_id : int;  (** unique within its trace *)
  parent_id : int option;  (** enclosing span (or remote parent) *)
  start_us : int;  (** offset from the request's arrival, µs *)
  duration_us : int;
  labels : (string * string) list;  (** e.g. [("rows", "42")] *)
}
(** One stage of a traced request — mirrors [Obs.Trace.span]. *)

type slow_query = {
  statement : string;
  trace_id : string;
      (** the id of the trace recorded for the same request, so slow-log
          entries join against [Trace_recent] exports *)
  total_us : int;  (** wall-clock total for the request, µs *)
  spans : span list;  (** breakdown in recording order *)
}

type trace_ctx = {
  trace_id : string;  (** opaque id minted by the originating node *)
  parent_span : int;
      (** the caller's span id under which this request's spans nest;
          [0] (span ids are 1-based) means the caller had no open span *)
}
(** Propagated trace context: a node receiving one records its spans
    under the caller's trace instead of minting a fresh id. *)

type trace_entry = {
  node : string;  (** name of the node that recorded the trace *)
  entry_trace_id : string;
  entry_name : string;  (** what the trace covered (statement text) *)
  started_at : float;
      (** absolute origin ([Unix.gettimeofday]) of the span offsets —
          lets a merger align entries from different nodes *)
  entry_total_us : int;
  entry_spans : span list;
}

type health_level =
  | Health_ok
  | Health_degraded
  | Health_critical

type health_firing = {
  rule_name : string;
  observed : float;  (** the reading that breached the threshold *)
  firing_level : health_level;
  rule_help : string;
}

type shard = {
  shard_id : int;  (** stable identity, survives rebalances *)
  shard_host : string;
  shard_port : int;
}

type shard_map = {
  map_version : int;
      (** strictly increasing across installs; a node refuses to
          replace its map with an older version, and a coordinator
          treats a node reporting a lower version as stale *)
  shards : shard list;  (** position in this list drives routing *)
}
(** The cluster's partitioning contract: a row lives on
    [shard_owner map key] where [key] is the row's first column. *)

type shard_identity = {
  installed_map : shard_map;
  self_id : int;  (** which entry of [installed_map] this node is *)
}

type partition_texp = {
  live_rows : int;  (** live tuples across all tables, at the node's clock *)
  min_texp : Time.t;  (** min over live tuples; [Inf] when none *)
  max_texp : Time.t;  (** max over live tuples; [Inf] when none *)
}
(** The {!Expirel_core.Relation} texp bounds lifted to a whole shard:
    piggybacked on every [Exec_shard] reply and [Shard_pong] so the
    coordinator can prove a partition empty at some [tau]
    ([live_rows = 0], or [max_texp <= tau]) without contacting it. *)

val shard_owner : shard_map -> Value.t -> int
(** [shard_owner map key] is the id of the shard owning rows whose
    first column is [key]: FNV-1a over the key's canonical encoding,
    modulo the shard count.  Pure and deterministic across processes —
    this single definition is the routing contract of the protocol.
    @raise Invalid_argument on an empty map *)

type request =
  | Exec of string  (** one sqlx statement *)
  | Subscribe of { name : string; query : string }
      (** register a continuous query; events stream back on this
          connection at the exact logical change times *)
  | Unsubscribe of string
  | Stats
  | Ping
  | Quit
  | Replicate of {
      replica_id : string;
      position : int;
      ctx : trace_ctx option;
          (** when present, the primary records its shipping spans under
              the follower's trace *)
    }
      (** switch this connection into a replication session: stream the
          log from [position] (the count of records the follower has
          already applied) onwards *)
  | Metrics
      (** full metric exposition in Prometheus text format
          ([Metrics_reply]) *)
  | Slow_queries of int
      (** the [n] slowest recent statements with their span breakdowns
          ([Slow_queries_reply]) *)
  | Exec_traced of { sql : string; ctx : trace_ctx }
      (** [Exec] carrying the caller's trace context: the server's spans
          for this request record under [ctx.trace_id] with
          [ctx.parent_span] as their root parent, so a fan-out request
          yields one cross-node trace *)
  | Trace_recent of int
      (** the [n] most recent request traces ([Traces_reply]) *)
  | Health
      (** evaluate the server's health rules ([Health_reply]) *)
  | Shard_map_req
      (** which shard map, if any, the node has installed
          ([Shard_map_reply]) *)
  | Shard_install of { map : shard_map; self_id : int }
      (** the coordinator's handshake: install [map] and identify as
          shard [self_id].  Refused when [self_id] is not in the map or
          [map.map_version] is lower than the installed one. *)
  | Exec_shard of { sql : string; ctx : trace_ctx option }
      (** [Exec] as issued by a coordinator: queries answer with
          [Shard_rows], other statements with [Shard_ack] — both
          piggyback the {!partition_texp} summary so every reply
          refreshes the coordinator's pruning cache *)
  | Shard_ping
      (** cluster heartbeat ([Shard_pong]): refreshes the partition
          summary and reports the node's map version and clock *)
  | Extract_moving of string
      (** rebalance, step one: return the named table's rows that the
          {e installed} map assigns to some other shard, grouped by
          their new owner ([Moved_rows]) — issued after installing the
          new map *)
  | Ingest_rows of { table : string; ingest : (Value.t list * Time.t) list }
      (** rebalance, step two: bulk-load moved rows with their original
          expiration times (WAL-logged on durable nodes; rows already
          expired at the receiving clock are dropped, not resurrected) *)
  | Purge_moved of string
      (** rebalance, step three: delete the named table's rows the
          installed map no longer assigns here — only after the new
          owners acknowledged their [Ingest_rows] *)
  | Sketch_shard of { sql : string; ctx : trace_ctx option }
      (** [Exec_shard] for an [APPROX_COUNT]/[SAMPLE] query: the shard
          evaluates the query's child over its own partition, folds it
          into a bounded-memory sketch and replies with the serialised
          partial ([Shard_sketch]) instead of rows — constant-size on
          the wire regardless of partition cardinality *)
  | Agg_shard of { sql : string; ctx : trace_ctx option }
      (** [Exec_shard] for a decomposable GROUP BY/aggregate query: the
          shard evaluates the aggregate's child over its own partition,
          condenses it into per-group expiration-slice partials
          ({!Expirel_exec.Partial_agg}) and replies with [Shard_agg] —
          one slice per distinct expiration time per group on the wire,
          regardless of member count, with AVG travelling as its SUM
          and COUNT components *)
  | Join_shard of {
      sql : string;
      build_table : string;
      build_rows : (Value.t list * Time.t) list;
      ctx : trace_ctx option;
    }
      (** broadcast join: the shard evaluates [sql] with [build_rows]
          — the small side's complete, cluster-wide contents —
          standing in for [build_table], probing its own fragment of
          the other table, and replies with ordinary [Shard_rows];
          probe fragments are disjoint, so the coordinator's union of
          per-shard results is the exact join *)
  | Horizon of string option
      (** the forward expiration forecast ([Horizon_reply]): per-table
          bucketed counts of live rows by ticks-to-expiry, the
          subscription fan-out forecast for the next window, and churn
          rates.  [Some table] restricts the profile to one table
          (unknown tables answer [Err]). *)

type response =
  | Ok_msg of string
  | Rows of {
      columns : string list;
      rows : (Value.t list * Time.t) list;  (** presentation order, each
                                                with its [texp] *)
      texp_e : Time.t;  (** expression-level expiration of the result *)
      recomputed : bool;
    }
  | Err of { code : error_code; message : string }
  | Event of event  (** pushed, not solicited: may arrive at any frame
                        boundary *)
  | Stats_reply of stats
  | Pong
  | Bye
  | Repl_snapshot of { position : int; records : Wal.record list }
      (** bootstrap: the full live state as of [position]; replaying
          [records] on an empty database reproduces it *)
  | Repl_records of { from_position : int; records : Wal.record list }
      (** the stream: records covering positions
          [(from_position, from_position + length records]] *)
  | Repl_heartbeat of { position : int; now : Time.t }
      (** periodic when the stream is idle, so followers can measure
          lag (in records and logical time) against a live primary *)
  | Metrics_reply of string
      (** Prometheus text-format exposition page, opaque to the wire
          layer *)
  | Slow_queries_reply of slow_query list  (** slowest first *)
  | Traces_reply of trace_entry list  (** newest first *)
  | Health_reply of { level : health_level; firing : health_firing list }
      (** overall verdict (worst firing rule) plus every firing rule;
          an empty [firing] list means every rule read healthy *)
  | Shard_map_reply of shard_identity option
      (** [None] on a node no coordinator has claimed yet *)
  | Shard_rows of {
      shard_id : int;
      partition : partition_texp;
      columns : string list;
      rows : (Value.t list * Time.t) list;
      texp_e : Time.t;
      recomputed : bool;
    }
      (** [Rows] plus the answering shard's identity and partition
          summary; the coordinator merges the row sets and reports the
          min of the partial [texp_e]s (the paper's union rule — exact
          here because hash partitions are disjoint) *)
  | Shard_ack of {
      shard_id : int;
      partition : partition_texp;
      message : string;
    }  (** [Ok_msg] plus identity and partition summary *)
  | Shard_pong of {
      shard_id : int;
      pong_map_version : int;
          (** [0] when no map is installed (e.g. the node restarted):
              the coordinator's staleness gauge feeds on this *)
      now : Time.t;  (** the node's logical clock *)
      partition : partition_texp;
    }
  | Moved_rows of (int * (Value.t list * Time.t) list) list
      (** rows leaving the answering shard, grouped by new owner id *)
  | Shard_sketch of {
      shard_id : int;
      partition : partition_texp;
      columns : string list;
      payload : string;
    }
      (** a shard's sketch partial: [payload] is an opaque
          {!Expirel_sketch.Any.to_string} encoding the coordinator
          decodes, merges across shards (sketches are shard-
          decomposable) and queries at its own tau; the merged answer's
          [texp_e] is the merged sketch's horizon *)
  | Shard_agg of {
      shard_id : int;
      partition : partition_texp;
      columns : string list;
      child_texp : Time.t;
      groups : Expirel_exec.Partial_agg.group list;
    }
      (** a shard's grouped-aggregate partial: per-group expiration
          slices the coordinator merges with
          {!Expirel_exec.Partial_agg.merge_all} and finalises once —
          the distributed query's rows and texps come out identical to
          a single node holding all rows, because the slice components
          (counts, sums, extrema) are partition-decomposable and the
          finalisation is shared code, not a reimplementation *)
  | Horizon_reply of Expirel_obs.Horizon.report
      (** the node's expiration forecast.  Buckets count disjoint row
          sets, so a coordinator rolls per-shard replies up with
          {!Expirel_obs.Horizon.merge_reports} — bucket-wise addition,
          exact by construction *)

(** {1 Codecs} — payloads only (no length prefix) *)

val encode_request : request -> string
val decode_request : string -> (request, string) result

val encode_response : response -> string
val decode_response : string -> (response, string) result

val payload_version : string -> int option
(** The version byte of a raw payload ([None] on the empty string) —
    readable even when the rest does not decode, so a server can tell a
    foreign-version peer from garbage and answer with
    [Version_mismatch]. *)

(** {1 Framing} *)

val frame : string -> string
(** [frame payload] prepends the 4-byte big-endian length. *)

type extracted =
  | Incomplete  (** more bytes needed — not an error *)
  | Frame of { payload : string; consumed : int }
      (** one whole frame; [consumed] counts the prefix too *)
  | Malformed of string
      (** unrecoverable framing error (oversized length prefix): the
          stream is desynchronised and the connection should close *)

val extract : ?pos:int -> string -> extracted
(** Incremental deframing of a byte buffer starting at [pos]
    (default 0).  Never raises, for any input. *)

val pp_response : Format.formatter -> response -> unit
(** Human-readable rendering (one line per row), for the CLI and
    examples. *)

val render_response : response -> string
