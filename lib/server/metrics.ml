open Expirel_obs

type t = {
  reg : Registry.t;
  connections_total : Instrument.Counter.t;
  connections_active : Instrument.Gauge.t;
  requests_total : Instrument.Counter.t;
  errors_total : Instrument.Counter.t;
  bytes_in : Instrument.Counter.t;
  bytes_out : Instrument.Counter.t;
  events_pushed : Instrument.Counter.t;
  tuples_expired : Instrument.Counter.t Instrument.Family.t;
  latency : Instrument.Histogram.t;
  stage : Instrument.Histogram.t Instrument.Family.t;
  op_eval : Instrument.Histogram.t Instrument.Family.t;
  slow_log : Slow_log.t;
  mutable repl_provider : unit -> Wire.repl_stats option;
}

let create () =
  let reg = Registry.create () in
  { reg;
    connections_total =
      Registry.counter reg ~name:"expirel_connections_total"
        ~help:"Connections accepted since start";
    connections_active =
      Registry.gauge reg ~name:"expirel_connections_active"
        ~help:"Connections currently open";
    requests_total =
      Registry.counter reg ~name:"expirel_requests_total"
        ~help:"Requests received (any kind)";
    errors_total =
      Registry.counter reg ~name:"expirel_errors_total"
        ~help:"Requests answered with an error";
    bytes_in =
      Registry.counter reg ~name:"expirel_bytes_in_total"
        ~help:"Payload bytes received";
    bytes_out =
      Registry.counter reg ~name:"expirel_bytes_out_total"
        ~help:"Payload bytes sent (responses and pushed events)";
    events_pushed =
      Registry.counter reg ~name:"expirel_events_pushed_total"
        ~help:"Subscription events pushed to clients";
    tuples_expired =
      Registry.counter_family reg ~name:"expirel_tuples_expired_total"
        ~help:"Tuples whose expiration the storage observed, by removal \
               policy (eager = at expiration time, lazy = on vacuum)"
        ~labels:[ "mode" ];
    latency =
      (* Microsecond observations, rendered in Prometheus-base seconds.
         The default bounds include the 500 ms bucket the original
         fixed array lacked. *)
      Registry.histogram reg ~scale:1e-6
        ~name:"expirel_request_duration_seconds"
        ~help:"Wall-clock request latency" ();
    stage =
      Registry.histogram_family reg ~scale:1e-6
        ~name:"expirel_request_stage_duration_seconds"
        ~help:"Time spent per request stage (parse, lower, eval, \
               rwlock_wait, storage)"
        ~labels:[ "stage" ] ();
    op_eval =
      Registry.histogram_family reg ~scale:1e-6
        ~name:"expirel_eval_operator_duration_seconds"
        ~help:"Evaluation time per algebra operator node (Explain's \
               operator vocabulary; parents include their children)"
        ~labels:[ "operator" ] ();
    slow_log = Slow_log.create ();
    repl_provider = (fun () -> None)
  }

let registry t = t.reg
let set_repl_source t f = t.repl_provider <- f

(* Never let a raising provider poison STATS/METRICS: report no
   replication section instead.  (The provider may take server locks, so
   it also must never run under an instrument mutex — it doesn't; this
   is plain function application.) *)
let repl_source t () = try t.repl_provider () with _ -> None

let connection_opened t =
  Instrument.Counter.incr t.connections_total;
  Instrument.Gauge.add t.connections_active 1

let connection_closed t = Instrument.Gauge.add t.connections_active (-1)
let incr_requests t = Instrument.Counter.incr t.requests_total
let incr_errors t = Instrument.Counter.incr t.errors_total
let add_bytes_in t n = Instrument.Counter.add t.bytes_in n
let add_bytes_out t n = Instrument.Counter.add t.bytes_out n
let incr_events_pushed t = Instrument.Counter.incr t.events_pushed

let mode_label = function
  | `Eager -> "eager"
  | `Lazy -> "lazy"

let incr_tuples_expired t ~mode =
  Instrument.Counter.incr
    (Instrument.Family.labelled t.tuples_expired [ mode_label mode ])

let observe_latency t ~seconds =
  Instrument.Histogram.observe t.latency (int_of_float (seconds *. 1e6))

let op_prefix = "op:"

(* Histograms observe each span's SELF time (duration minus direct
   children, via the recorded parent ids): a parent operator no longer
   double-counts the work its children already reported, so summing a
   family's buckets approximates real wall time.  Spans keep their
   inclusive durations everywhere else (slow log, wire). *)
let observe_trace t ~statement ~trace_id ~total_us ~spans =
  Slow_log.record t.slow_log ~statement ~trace_id ~total_us ~spans;
  List.iter
    (fun (s : Trace.span) ->
      let self_us = Trace.self_us spans s in
      let n = String.length op_prefix in
      if String.length s.name > n && String.sub s.name 0 n = op_prefix then
        Instrument.Histogram.observe
          (Instrument.Family.labelled t.op_eval
             [ String.sub s.name n (String.length s.name - n) ])
          self_us
      else
        Instrument.Histogram.observe
          (Instrument.Family.labelled t.stage [ s.name ])
          self_us)
    spans

let wire_span (s : Trace.span) =
  { Wire.span_name = s.name;
    span_id = s.id;
    parent_id = s.parent;
    start_us = s.start_us;
    duration_us = s.duration_us;
    labels = s.labels
  }

let wire_spans spans = List.map wire_span spans

let slowest t n =
  List.map
    (fun (e : Slow_log.entry) ->
      { Wire.statement = e.statement;
        trace_id = e.trace_id;
        total_us = e.total_us;
        spans = wire_spans e.spans
      })
    (Slow_log.slowest t.slow_log n)

let snapshot t =
  (* The provider may take the server's own locks; it runs as a plain
     call here, outside every instrument mutex. *)
  let repl = repl_source t () in
  let latency = Instrument.Histogram.snapshot t.latency in
  { Wire.connections_total = Instrument.Counter.value t.connections_total;
    connections_active = Instrument.Gauge.value t.connections_active;
    requests_total = Instrument.Counter.value t.requests_total;
    errors_total = Instrument.Counter.value t.errors_total;
    bytes_in = Instrument.Counter.value t.bytes_in;
    bytes_out = Instrument.Counter.value t.bytes_out;
    events_pushed = Instrument.Counter.value t.events_pushed;
    tuples_expired =
      Instrument.Family.fold t.tuples_expired ~init:0 ~f:(fun _ c acc ->
          acc + Instrument.Counter.value c);
    latency_buckets =
      Array.to_list
        (Array.mapi (fun i n -> (latency.bounds.(i), n)) latency.counts);
    repl
  }

let build_version = "0.10.0"

(* Registered on both the server's and the coordinator's registry, so
   every Prometheus page in a deployment identifies the build that
   produced it and how long it has been up. *)
let register_build_info reg =
  let started = Unix.gettimeofday () in
  Registry.custom reg ~name:"expirel_build_info"
    ~help:"Build identity (always 1; the labels carry the information)"
    ~kind:Registry.Gauge_kind
    (fun () ->
      [ ( [ ("version", build_version);
            ("wire_version", string_of_int Wire.version);
            ("ocaml_version", Sys.ocaml_version) ],
          Registry.Gauge_sample 1.0 ) ]);
  Registry.gauge_fun reg ~name:"expirel_uptime_seconds"
    ~help:"Seconds since this process registered its metrics"
    (fun () -> Unix.gettimeofday () -. started)

let prometheus t = Prometheus.render (Registry.collect t.reg)
