(* Upper bounds in microseconds; the final max_int bucket catches
   everything slower. *)
let bucket_bounds =
  [| 50; 100; 250; 500; 1_000; 2_500; 5_000; 10_000; 25_000; 50_000;
     100_000; 250_000; 1_000_000; max_int |]

type t = {
  mutex : Mutex.t;
  mutable connections_total : int;
  mutable connections_active : int;
  mutable requests_total : int;
  mutable errors_total : int;
  mutable bytes_in : int;
  mutable bytes_out : int;
  mutable events_pushed : int;
  mutable tuples_expired : int;
  latency : int array;
  mutable repl_source : unit -> Wire.repl_stats option;
}

let create () =
  { mutex = Mutex.create ();
    connections_total = 0;
    connections_active = 0;
    requests_total = 0;
    errors_total = 0;
    bytes_in = 0;
    bytes_out = 0;
    events_pushed = 0;
    tuples_expired = 0;
    latency = Array.make (Array.length bucket_bounds) 0;
    repl_source = (fun () -> None)
  }

let set_repl_source t f = t.repl_source <- f

let locked t f =
  Mutex.lock t.mutex;
  let v = f () in
  Mutex.unlock t.mutex;
  v

let connection_opened t =
  locked t (fun () ->
      t.connections_total <- t.connections_total + 1;
      t.connections_active <- t.connections_active + 1)

let connection_closed t =
  locked t (fun () -> t.connections_active <- t.connections_active - 1)

let incr_requests t = locked t (fun () -> t.requests_total <- t.requests_total + 1)
let incr_errors t = locked t (fun () -> t.errors_total <- t.errors_total + 1)
let add_bytes_in t n = locked t (fun () -> t.bytes_in <- t.bytes_in + n)
let add_bytes_out t n = locked t (fun () -> t.bytes_out <- t.bytes_out + n)

let incr_events_pushed t =
  locked t (fun () -> t.events_pushed <- t.events_pushed + 1)

let incr_tuples_expired t =
  locked t (fun () -> t.tuples_expired <- t.tuples_expired + 1)

let observe_latency t ~seconds =
  let us = int_of_float (seconds *. 1e6) in
  let rec bucket i =
    if us <= bucket_bounds.(i) || i = Array.length bucket_bounds - 1 then i
    else bucket (i + 1)
  in
  let i = bucket 0 in
  locked t (fun () -> t.latency.(i) <- t.latency.(i) + 1)

let snapshot t =
  (* The provider may take the server's own locks; never call it while
     holding the metrics mutex. *)
  let repl = t.repl_source () in
  locked t (fun () ->
      { Wire.connections_total = t.connections_total;
        connections_active = t.connections_active;
        requests_total = t.requests_total;
        errors_total = t.errors_total;
        bytes_in = t.bytes_in;
        bytes_out = t.bytes_out;
        events_pushed = t.events_pushed;
        tuples_expired = t.tuples_expired;
        latency_buckets =
          Array.to_list (Array.mapi (fun i n -> (bucket_bounds.(i), n)) t.latency);
        repl
      })
