(** Blocking frame IO over Unix sockets: the impure rim around the pure
    {!Wire} codec.  One frame = 4-byte big-endian payload length +
    payload. *)

exception Closed
(** The peer closed the connection (EOF, possibly mid-frame, or a
    connection-reset class error). *)

exception Timeout
(** A socket receive/send deadline (SO_RCVTIMEO / SO_SNDTIMEO) expired. *)

exception Oversized of int
(** The peer announced a payload longer than {!Wire.max_frame}: the
    stream is desynchronised beyond recovery. *)

val send : Unix.file_descr -> string -> int
(** [send fd payload] writes the whole frame, looping over partial
    writes.  Returns the number of bytes put on the wire (payload
    + 4).
    @raise Closed on EPIPE / ECONNRESET
    @raise Timeout when a send deadline is set and expires *)

val recv : Unix.file_descr -> string * int
(** [recv fd] reads exactly one frame and returns its payload and the
    number of bytes consumed (payload + 4).
    @raise Closed on EOF
    @raise Timeout when a receive deadline is set and expires
    @raise Oversized on a hostile length prefix *)
