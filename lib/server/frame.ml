exception Closed
exception Timeout
exception Oversized of int

(* The EPIPE -> Closed contract below only holds if EPIPE arrives as an
   error code: by default a write to a peer that vanished mid-stream (a
   killed replica, a dropped client) delivers SIGPIPE and terminates
   the whole process before Unix_error is ever raised. *)
let () =
  if not Sys.win32 then Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let rec handling_unix_errors f =
  try f () with
  | Unix.Unix_error (Unix.EINTR, _, _) -> handling_unix_errors f
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT), _, _) ->
    raise Timeout
  | Unix.Unix_error
      ((Unix.EPIPE | Unix.ECONNRESET | Unix.ENOTCONN | Unix.EBADF), _, _) ->
    raise Closed

let send fd payload =
  let data = Wire.frame payload in
  let len = String.length data in
  let bytes = Bytes.unsafe_of_string data in
  let rec go off =
    if off < len then begin
      let n = handling_unix_errors (fun () -> Unix.write fd bytes off (len - off)) in
      if n = 0 then raise Closed;
      go (off + n)
    end
  in
  go 0;
  len

let read_exact fd n =
  let buf = Bytes.create n in
  let rec go off =
    if off < n then begin
      let k = handling_unix_errors (fun () -> Unix.read fd buf off (n - off)) in
      if k = 0 then raise Closed;
      go (off + k)
    end
  in
  go 0;
  Bytes.unsafe_to_string buf

let recv fd =
  let header = read_exact fd 4 in
  let byte i = Char.code header.[i] in
  let len = (byte 0 lsl 24) lor (byte 1 lsl 16) lor (byte 2 lsl 8) lor byte 3 in
  if len > Wire.max_frame then raise (Oversized len);
  (read_exact fd len, len + 4)
