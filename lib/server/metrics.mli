(** Server metrics, built on the {!Expirel_obs} instrument library.

    Counters, gauges and histograms live in an [Obs.Registry]; a
    {!snapshot} still produces exactly the {!Wire.stats} record the
    [STATS] command has shipped since v1 (the latency-bucket bounds
    travel in the payload, so the histogram gaining its 500 ms bucket
    changed no wire layout), while {!prometheus} renders the full
    registry — wire counters, per-stage and per-operator trace
    timings, and whatever expiration-domain gauges the server
    registered — as a Prometheus text-format page for the [METRICS]
    command.

    Metric names follow the scheme [expirel_<subsystem>_<what>_<unit>]
    with Prometheus base units (seconds, bytes) and [_total] on
    counters; labeled families carry one label each ([mode] for
    expiration policy, [stage] for request stages, [operator] for
    algebra operators).

    Every instrument releases its mutex on the way out of a raising
    callback ([Fun.protect] throughout the instrument library), so a
    failing labelled lookup or replication provider can no longer
    deadlock every subsequent metrics-touching request — the bug the
    previous hand-rolled [locked] helper had. *)

type t

val create : unit -> t

val registry : t -> Expirel_obs.Registry.t
(** For registering additional (domain) metrics — the server adds
    expiration-index depth, view horizons, WAL position and
    replication lag as polled gauges. *)

val connection_opened : t -> unit
(** Bumps both the total and the active-connection gauge. *)

val connection_closed : t -> unit
val incr_requests : t -> unit
val incr_errors : t -> unit
val add_bytes_in : t -> int -> unit
val add_bytes_out : t -> int -> unit
val incr_events_pushed : t -> unit

val incr_tuples_expired : t -> mode:[ `Eager | `Lazy ] -> unit
(** One expired tuple, labeled by how its removal happened: [`Eager]
    when the clock advance removed it at its expiration time, [`Lazy]
    when a vacuum reclaimed it late (Section 3.2's two policies). *)

val observe_latency : t -> seconds:float -> unit
(** Adds one request to the latency histogram (log-scale microsecond
    bounds including the 500 ms bucket, rendered in seconds). *)

val observe_trace :
  t -> statement:string -> trace_id:string -> total_us:int ->
  spans:Expirel_obs.Trace.span list -> unit
(** Feeds one traced request into the per-stage and per-operator
    histograms ([op:<name>] spans go to the operator family, every
    other span to the stage family) and into the slow-query log.
    Histograms observe each span's {e self} time
    ({!Expirel_obs.Trace.self_us}): a parent span's bucket no longer
    double-counts the children nested inside it. *)

val wire_spans : Expirel_obs.Trace.span list -> Wire.span list
(** Trace spans as wire values (ids, parents and labels included). *)

val slowest : t -> int -> Wire.slow_query list
(** The [n] slowest recorded statements, slowest first, as wire
    values. *)

val set_repl_source : t -> (unit -> Wire.repl_stats option) -> unit
(** Installs the provider of the replication section of {!snapshot}.
    The server installs a primary-side provider when it opens a durable
    store; a [Expirel_repl.Replica] replaces it with its applier's
    view.  Called outside every metrics mutex, so it may take other
    locks; if it raises, {!snapshot} reports no replication section
    rather than failing. *)

val repl_source : t -> unit -> Wire.repl_stats option
(** The installed provider (never raises: a raising provider yields
    [None]) — the lag gauges poll replication state through this. *)

val snapshot : t -> Wire.stats

val build_version : string
(** The build's version string, as exported on [expirel_build_info]. *)

val register_build_info : Expirel_obs.Registry.t -> unit
(** Registers [expirel_build_info] (value 1 with [version],
    [wire_version] and [ocaml_version] labels) and
    [expirel_uptime_seconds] (seconds since this call) on [reg].  Both
    the server and the cluster coordinator call this on their own
    registries so every scrape identifies its producer. *)

val prometheus : t -> string
(** The registry rendered as a Prometheus text-format page.  Polled
    gauges run during this call: the caller must hold whatever locks
    those gauges' data need (the server serves [METRICS] under its
    read lock). *)
