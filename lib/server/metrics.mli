(** Thread-safe server metrics, following the counter style of
    {!Expirel_dist.Metrics} but guarded by a mutex because workers
    update them concurrently.  A {!snapshot} is exactly the
    {!Wire.stats} record shipped back by the [STATS] command. *)

type t

val create : unit -> t

val connection_opened : t -> unit
(** Bumps both the total and the active-connection gauge. *)

val connection_closed : t -> unit
val incr_requests : t -> unit
val incr_errors : t -> unit
val add_bytes_in : t -> int -> unit
val add_bytes_out : t -> int -> unit
val incr_events_pushed : t -> unit
val incr_tuples_expired : t -> unit

val observe_latency : t -> seconds:float -> unit
(** Adds one request to the latency histogram (fixed log-scale buckets,
    microsecond bounds). *)

val set_repl_source : t -> (unit -> Wire.repl_stats option) -> unit
(** Installs the provider of the replication section of {!snapshot}.
    The server installs a primary-side provider when it opens a durable
    store; a {!Expirel_repl.Replica} replaces it with its applier's
    view.  Called outside the metrics mutex, so it may take other
    locks. *)

val snapshot : t -> Wire.stats
