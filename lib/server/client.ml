let default_port = 7717

type t = {
  fd : Unix.file_descr;
  pending : Wire.event Queue.t;
  mutable closed : bool;
}

let resolve host =
  if host = "localhost" then Unix.inet_addr_loopback
  else
    match Unix.inet_addr_of_string host with
    | addr -> addr
    | exception Failure _ ->
      (match Unix.gethostbyname host with
       | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
         failwith (Printf.sprintf "cannot resolve host %S" host)
       | { Unix.h_addr_list; _ } -> h_addr_list.(0))

let connect ?(timeout = 10.0) ~host ~port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.connect fd (Unix.ADDR_INET (resolve host, port));
     Unix.setsockopt fd Unix.TCP_NODELAY true;
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; pending = Queue.create (); closed = false }

let fail_closed = Error "connection closed"

(* Blocks for the next frame; queues events until a direct response
   arrives. *)
let rec read_response t =
  match Frame.recv t.fd with
  | exception Frame.Closed ->
    t.closed <- true;
    fail_closed
  | exception Frame.Timeout -> Error "receive timeout"
  | exception Frame.Oversized n ->
    t.closed <- true;
    Error (Printf.sprintf "oversized frame (%d bytes): stream desynchronised" n)
  | payload, _ ->
    (match Wire.decode_response payload with
     | Error e ->
       t.closed <- true;
       Error e
     | Ok (Wire.Event event) ->
       Queue.add event t.pending;
       read_response t
     | Ok response -> Ok response)

let request t req =
  if t.closed then fail_closed
  else
    match Frame.send t.fd (Wire.encode_request req) with
    | (_ : int) -> read_response t
    | exception (Frame.Closed | Frame.Timeout) ->
      t.closed <- true;
      fail_closed

let exec t sql = request t (Wire.Exec sql)

(* Exec under a caller-supplied trace context: the server's spans for
   this statement record under [trace]'s id, nested below its current
   span — the client half of cross-node trace propagation. *)
let exec_traced t ?trace sql =
  match trace with
  | None -> exec t sql
  | Some tr ->
    let ctx =
      { Wire.trace_id = Expirel_obs.Trace.trace_id tr;
        parent_span =
          Option.value ~default:0 (Expirel_obs.Trace.current_parent tr)
      }
    in
    request t (Wire.Exec_traced { sql; ctx })

let exec_ok t sql =
  match exec t sql with
  | Ok (Wire.Err { message; _ }) -> Error message
  | Ok _ -> Ok ()
  | Error _ as e -> e

let subscribe t ~name ~query =
  match request t (Wire.Subscribe { name; query }) with
  | Ok (Wire.Ok_msg _) -> Ok ()
  | Ok (Wire.Err { message; _ }) -> Error message
  | Ok _ -> Error "unexpected response to SUBSCRIBE"
  | Error _ as e -> e

let unsubscribe t name =
  match request t (Wire.Unsubscribe name) with
  | Ok (Wire.Ok_msg _) -> Ok ()
  | Ok (Wire.Err { message; _ }) -> Error message
  | Ok _ -> Error "unexpected response to UNSUBSCRIBE"
  | Error _ as e -> e

let stats t =
  match request t Wire.Stats with
  | Ok (Wire.Stats_reply s) -> Ok s
  | Ok (Wire.Err { message; _ }) -> Error message
  | Ok _ -> Error "unexpected response to STATS"
  | Error _ as e -> e

let metrics t =
  match request t Wire.Metrics with
  | Ok (Wire.Metrics_reply text) -> Ok text
  | Ok (Wire.Err { message; _ }) -> Error message
  | Ok _ -> Error "unexpected response to METRICS"
  | Error _ as e -> e

let slow_queries t n =
  match request t (Wire.Slow_queries n) with
  | Ok (Wire.Slow_queries_reply qs) -> Ok qs
  | Ok (Wire.Err { message; _ }) -> Error message
  | Ok _ -> Error "unexpected response to SLOW"
  | Error _ as e -> e

let traces t n =
  match request t (Wire.Trace_recent n) with
  | Ok (Wire.Traces_reply es) -> Ok es
  | Ok (Wire.Err { message; _ }) -> Error message
  | Ok _ -> Error "unexpected response to TRACE"
  | Error _ as e -> e

let horizon ?table t =
  match request t (Wire.Horizon table) with
  | Ok (Wire.Horizon_reply report) -> Ok report
  | Ok (Wire.Err { message; _ }) -> Error message
  | Ok _ -> Error "unexpected response to HORIZON"
  | Error _ as e -> e

let health t =
  match request t Wire.Health with
  | Ok (Wire.Health_reply { level; firing }) -> Ok (level, firing)
  | Ok (Wire.Err { message; _ }) -> Error message
  | Ok _ -> Error "unexpected response to HEALTH"
  | Error _ as e -> e

(* ----- cluster RPCs (the coordinator's side of the v5 messages) ----- *)

let shard_install t ~map ~self_id =
  match request t (Wire.Shard_install { map; self_id }) with
  | Ok (Wire.Ok_msg _) -> Ok ()
  | Ok (Wire.Err { message; _ }) -> Error message
  | Ok _ -> Error "unexpected response to shard install"
  | Error _ as e -> e

let shard_map t =
  match request t Wire.Shard_map_req with
  | Ok (Wire.Shard_map_reply identity) -> Ok identity
  | Ok (Wire.Err { message; _ }) -> Error message
  | Ok _ -> Error "unexpected response to shard map request"
  | Error _ as e -> e

(* Exec on a shard, optionally under the coordinator's trace context;
   the caller dispatches on the [Shard_rows] / [Shard_ack] / [Err]
   reply itself, since it needs the piggybacked partition summary. *)
let exec_shard t ?trace sql =
  let ctx =
    Option.map
      (fun tr ->
        { Wire.trace_id = Expirel_obs.Trace.trace_id tr;
          parent_span =
            Option.value ~default:0 (Expirel_obs.Trace.current_parent tr)
        })
      trace
  in
  request t (Wire.Exec_shard { sql; ctx })

let shard_ping t =
  match request t Wire.Shard_ping with
  | Ok (Wire.Shard_pong { shard_id; pong_map_version; now; partition }) ->
    Ok (shard_id, pong_map_version, now, partition)
  | Ok (Wire.Err { message; _ }) -> Error message
  | Ok _ -> Error "unexpected response to shard ping"
  | Error _ as e -> e

let extract_moving t table =
  match request t (Wire.Extract_moving table) with
  | Ok (Wire.Moved_rows moves) -> Ok moves
  | Ok (Wire.Err { message; _ }) -> Error message
  | Ok _ -> Error "unexpected response to extract"
  | Error _ as e -> e

let ingest_rows t ~table rows =
  match request t (Wire.Ingest_rows { table; ingest = rows }) with
  | Ok (Wire.Shard_ack { partition; _ }) -> Ok partition
  | Ok (Wire.Err { message; _ }) -> Error message
  | Ok _ -> Error "unexpected response to ingest"
  | Error _ as e -> e

let purge_moved t table =
  match request t (Wire.Purge_moved table) with
  | Ok (Wire.Shard_ack { partition; _ }) -> Ok partition
  | Ok (Wire.Err { message; _ }) -> Error message
  | Ok _ -> Error "unexpected response to purge"
  | Error _ as e -> e

let ping t =
  match request t Wire.Ping with
  | Ok Wire.Pong -> Ok ()
  | Ok (Wire.Err { message; _ }) -> Error message
  | Ok _ -> Error "unexpected response to PING"
  | Error _ as e -> e

let events t =
  let drained = List.of_seq (Queue.to_seq t.pending) in
  Queue.clear t.pending;
  drained

let poll_events t ~timeout =
  if not t.closed then begin
    let deadline = Unix.gettimeofday () +. timeout in
    let rec go () =
      let remaining = deadline -. Unix.gettimeofday () in
      if remaining > 0. then begin
        match Unix.select [ t.fd ] [] [] remaining with
        | [], _, _ -> ()
        | _ :: _, _, _ ->
          (match Frame.recv t.fd with
           | exception (Frame.Closed | Frame.Oversized _) -> t.closed <- true
           | exception Frame.Timeout -> ()
           | payload, _ ->
             (match Wire.decode_response payload with
              | Ok (Wire.Event event) ->
                Queue.add event t.pending;
                go ()
              | Ok _ | Error _ ->
                (* Unsolicited non-event frame: the stream is out of
                   protocol; stop reading. *)
                t.closed <- true))
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error _ -> t.closed <- true
      end
    in
    go ()
  end;
  events t

let close t =
  if not t.closed then begin
    t.closed <- true;
    (try ignore (Frame.send t.fd (Wire.encode_request Wire.Quit))
     with Frame.Closed | Frame.Timeout | Unix.Unix_error _ -> ());
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end
