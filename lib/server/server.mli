(** The concurrent expirel TCP server: the paper's loosely-coupled
    setting (Section 1) realised as an actual networked database rather
    than the simulation in [lib/dist/].

    One acceptor thread hands each connection to a dedicated worker
    thread, up to a configurable cap (excess connections are refused
    with an [Overloaded] error).  The shared database is guarded by a
    writer-preferring {!Expirel_storage.Rwlock}: queries and other
    read-only statements run concurrently, while [INSERT] / [DELETE] /
    [ADVANCE] and friends serialise.  Requests that cannot acquire the
    lock within the per-request timeout are answered with a [Timeout]
    error instead of stalling the connection.

    [SUBSCRIBE] registers a {!Expirel_storage.Subscription} continuous
    query; whenever any connection advances the logical clock, the
    change events — [Row_expired] / [Row_appeared] / [Refreshed] at the
    {e exact} logical times — are pushed to the subscribing connections
    before the advance is acknowledged, so a subscriber can never
    observe an acknowledged clock ahead of its own event stream.

    {!stop} is graceful: the listener closes first, in-flight requests
    run to completion and get their responses, then workers are joined.

    With [data_dir] set, the server runs over a {!Expirel_storage.Durable}
    store: every mutation is write-ahead logged, [CHECKPOINT] compacts
    the snapshot, and the server answers [REPLICATE] handshakes by
    streaming its log (snapshot-bootstrapping followers that fell behind
    the retained tail).  With [read_only] set it refuses mutating
    statements — the replica mode, where {!apply_records} and
    {!install_snapshot} are the only write paths. *)

open Expirel_storage
open Expirel_sqlx

type config = {
  host : string;  (** address to bind, default ["127.0.0.1"] *)
  port : int;  (** [0] picks an ephemeral port; see {!port} *)
  max_connections : int;
  request_timeout : float;
      (** seconds a request may wait for the database lock before being
          refused with a [Timeout] error *)
  policy : Database.policy;
  backend : Expirel_index.Expiration_index.backend;
  data_dir : string option;
      (** directory of the {!Expirel_storage.Durable} store; [None]
          runs purely in memory (and cannot serve replication) *)
  read_only : bool;
      (** replica mode: mutating statements are refused with
          [Exec_error]; reads, [SUBSCRIBE], [VACUUM] and [CHECKPOINT]
          still work *)
  node_name : string;
      (** how this node identifies itself in exported traces — give
          primary and replicas distinct names so a merged Chrome trace
          shows one lane per node *)
  health_rules : Expirel_obs.Health.rule list;
      (** what the [HEALTH] request evaluates; see
          {!default_health_rules} *)
}

val default_config : config
(** loopback, ephemeral port, 64 connections, 5 s timeout, eager
    removal, heap index, in-memory, read-write, node name ["expirel"],
    {!default_health_rules}. *)

val default_health_rules : Expirel_obs.Health.rule list
(** Replication lag (records), expiration-index backlog, slow-request
    rate (fraction of requests over 50 ms) and plan-cache hit ratio —
    each with a degraded and a critical threshold.  Rules whose metric
    has no samples yet (no replication, cold cache) are skipped, never
    fired. *)

type t

val create : ?config:config -> unit -> t

val start : t -> unit
(** Binds, listens and spawns the acceptor.
    @raise Invalid_argument when already started
    @raise Unix.Unix_error when the address cannot be bound *)

val port : t -> int
(** The actually bound port (useful with [port = 0]).
    @raise Invalid_argument before {!start} *)

val interp : t -> Interp.t
(** The shared interpreter session — for in-process embedding and
    tests.  Callers that touch it concurrently with a running server
    must hold {!lock}. *)

val lock : t -> Rwlock.t
val metrics : t -> Metrics.t

val trace_store : t -> Expirel_obs.Trace_store.t
(** The recent-request trace ring the [TRACE n] request serves —
    replicas also record their replication handshakes here, so a
    cross-node export can read every node's half of a trace. *)

val store : t -> Durable.t option
(** The durable store, when [data_dir] was set. *)

val shard_identity : t -> Wire.shard_identity option
(** The shard map and shard id a coordinator installed via
    [Shard_install] — [None] until a coordinator claims this node.  A
    node holding an identity answers [Exec_shard] with its shard id and
    partition texp summary piggybacked, and serves the rebalance
    requests ([Extract_moving] / [Ingest_rows] / [Purge_moved]). *)

val apply_records : t -> Wal.record list -> (unit, string) result
(** Applies a shipped [Repl_records] batch under the write lock, with
    subscription events delivered at their exact logical times before
    each [Advance] lands — the replica side of the stream.  [Error]
    without a store. *)

val install_snapshot : t -> position:int -> Wal.record list -> (unit, string) result
(** Replaces the whole state with a shipped [Repl_snapshot] under the
    write lock — the replica side of a bootstrap. *)

val wait : t -> unit
(** Blocks until the server stops (joins the acceptor). *)

val stop : t -> unit
(** Graceful shutdown: stop accepting, wake idle workers, let in-flight
    requests drain, join every thread.  Idempotent. *)
