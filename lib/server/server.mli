(** The concurrent expirel TCP server: the paper's loosely-coupled
    setting (Section 1) realised as an actual networked database rather
    than the simulation in [lib/dist/].

    One acceptor thread hands each connection to a dedicated worker
    thread, up to a configurable cap (excess connections are refused
    with an [Overloaded] error).  The shared database is guarded by a
    writer-preferring {!Expirel_storage.Rwlock}: queries and other
    read-only statements run concurrently, while [INSERT] / [DELETE] /
    [ADVANCE] and friends serialise.  Requests that cannot acquire the
    lock within the per-request timeout are answered with a [Timeout]
    error instead of stalling the connection.

    [SUBSCRIBE] registers a {!Expirel_storage.Subscription} continuous
    query; whenever any connection advances the logical clock, the
    change events — [Row_expired] / [Row_appeared] / [Refreshed] at the
    {e exact} logical times — are pushed to the subscribing connections
    before the advance is acknowledged, so a subscriber can never
    observe an acknowledged clock ahead of its own event stream.

    {!stop} is graceful: the listener closes first, in-flight requests
    run to completion and get their responses, then workers are joined. *)

open Expirel_storage
open Expirel_sqlx

type config = {
  host : string;  (** address to bind, default ["127.0.0.1"] *)
  port : int;  (** [0] picks an ephemeral port; see {!port} *)
  max_connections : int;
  request_timeout : float;
      (** seconds a request may wait for the database lock before being
          refused with a [Timeout] error *)
  policy : Database.policy;
  backend : Expirel_index.Expiration_index.backend;
}

val default_config : config
(** loopback, ephemeral port, 64 connections, 5 s timeout, eager
    removal, heap index. *)

type t

val create : ?config:config -> unit -> t

val start : t -> unit
(** Binds, listens and spawns the acceptor.
    @raise Invalid_argument when already started
    @raise Unix.Unix_error when the address cannot be bound *)

val port : t -> int
(** The actually bound port (useful with [port = 0]).
    @raise Invalid_argument before {!start} *)

val interp : t -> Interp.t
(** The shared interpreter session — for in-process embedding and
    tests.  Callers that touch it concurrently with a running server
    must hold {!lock}. *)

val lock : t -> Rwlock.t
val metrics : t -> Metrics.t

val wait : t -> unit
(** Blocks until the server stops (joins the acceptor). *)

val stop : t -> unit
(** Graceful shutdown: stop accepting, wake idle workers, let in-flight
    requests drain, join every thread.  Idempotent. *)
