(** A blocking client for the expirel wire protocol.

    One TCP connection; requests are answered in order.  Pushed
    subscription events may arrive at any frame boundary — the client
    transparently queues them while waiting for a response; drain the
    queue with {!events} or wait for fresh ones with {!poll_events}.

    All calls return [Error _] rather than raising on connection and
    protocol failures; a failed connection stays unusable (reconnect). *)

val default_port : int
(** 7717 — the CLI default. *)

type t

val connect : ?timeout:float -> host:string -> port:int -> unit -> t
(** TCP connect ([timeout], default 10 s, bounds each blocking receive).
    ["localhost"] resolves to the loopback address without a resolver.
    @raise Unix.Unix_error when the connection is refused *)

val close : t -> unit
(** Best-effort [Quit] + socket close.  Idempotent. *)

val request : t -> Wire.request -> (Wire.response, string) result
(** Sends one request and blocks for its (non-event) response. *)

val exec : t -> string -> (Wire.response, string) result
(** Executes one sqlx statement on the server. *)

val exec_traced :
  t -> ?trace:Expirel_obs.Trace.t -> string -> (Wire.response, string) result
(** Like {!exec}, but when [trace] is given the statement travels as
    [Exec_traced] carrying the trace's id and current span as context:
    the server's spans for this request record under the same trace id,
    nested below the call site — the client half of cross-node trace
    propagation.  Without [trace] it is exactly {!exec}. *)

val exec_ok : t -> string -> (unit, string) result
(** Like {!exec} but demands a non-error outcome — convenience for
    setup scripts; the server's [Err] responses map to [Error]. *)

val subscribe : t -> name:string -> query:string -> (unit, string) result
(** Registers a continuous query; its events stream onto this
    connection at the exact logical change times. *)

val unsubscribe : t -> string -> (unit, string) result

val stats : t -> (Wire.stats, string) result

val metrics : t -> (string, string) result
(** Prometheus text-format exposition of every server metric. *)

val slow_queries : t -> int -> (Wire.slow_query list, string) result
(** The [n] slowest recorded statements, slowest first, with their
    per-stage span breakdowns. *)

val traces : t -> int -> (Wire.trace_entry list, string) result
(** The [n] most recent request traces, newest first — feed them (from
    several nodes) to {!Expirel_obs.Trace_export} for one merged
    Chrome trace. *)

val horizon :
  ?table:string -> t -> (Expirel_obs.Horizon.report, string) result
(** The server's forward expiration forecast: per-table bucketed counts
    of live rows by ticks-to-expiry, the subscription fan-out forecast
    and churn rates.  [table] restricts the profile to one table
    (unknown tables answer [Error]). *)

val health :
  t -> (Wire.health_level * Wire.health_firing list, string) result
(** Evaluates the server's health rules: the overall verdict plus every
    firing rule (empty when all healthy). *)

val ping : t -> (unit, string) result

(** {1 Cluster RPCs}

    The coordinator's side of the v5 shard messages — see
    {!Expirel_cluster.Coordinator} for the layer that uses them. *)

val shard_install :
  t -> map:Wire.shard_map -> self_id:int -> (unit, string) result
(** Pushes a versioned shard map and tells the node which entry it is.
    The node refuses ids outside the map and versions older than what
    it has installed. *)

val shard_map : t -> (Wire.shard_identity option, string) result
(** The node's installed map and id ([None] when unclaimed). *)

val exec_shard :
  t -> ?trace:Expirel_obs.Trace.t -> string -> (Wire.response, string) result
(** [Exec_shard]: like {!exec_traced}, but successful replies come back
    as [Shard_rows] / [Shard_ack] carrying the shard id and partition
    texp summary; the caller pattern-matches the raw response because
    it wants that piggyback. *)

val shard_ping :
  t -> (int * int * Expirel_core.Time.t * Wire.partition_texp, string) result
(** The cluster heartbeat: [(shard_id, map_version, now, partition)].
    [map_version] is [0] when the node has no map (e.g. it restarted). *)

val extract_moving :
  t ->
  string ->
  ((int * (Expirel_core.Value.t list * Expirel_core.Time.t) list) list,
   string)
  result
(** Rebalance step one: the named table's rows the node's installed map
    assigns elsewhere, grouped by new owner. *)

val ingest_rows :
  t ->
  table:string ->
  (Expirel_core.Value.t list * Expirel_core.Time.t) list ->
  (Wire.partition_texp, string) result
(** Rebalance step two: bulk-load moved rows (with their original
    expiration times) into their new owner; returns the refreshed
    partition summary. *)

val purge_moved : t -> string -> (Wire.partition_texp, string) result
(** Rebalance step three: drop the rows the installed map no longer
    assigns to the node; returns the refreshed partition summary. *)

val events : t -> Wire.event list
(** Drains the already-received pushed events, oldest first. *)

val poll_events : t -> timeout:float -> Wire.event list
(** Reads pushed events off the socket until [timeout] seconds pass
    with nothing arriving, then drains like {!events}.  Only call
    with no request in flight. *)
