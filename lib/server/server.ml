open Expirel_core
open Expirel_storage
open Expirel_sqlx
module Obs = Expirel_obs

type config = {
  host : string;
  port : int;
  max_connections : int;
  request_timeout : float;
  policy : Database.policy;
  backend : Expirel_index.Expiration_index.backend;
  data_dir : string option;
  read_only : bool;
  node_name : string;
  health_rules : Obs.Health.rule list;
}

(* Thresholds are deliberately conservative defaults; deployments tune
   them through [config.health_rules]. *)
let default_health_rules =
  [ { Obs.Health.name = "replication_lag_records";
      source = Obs.Health.Metric "expirel_repl_lag_records";
      op = Obs.Health.Above;
      degraded = 64.;
      critical = 1024.;
      help = "records behind the replication source"
    };
    { Obs.Health.name = "expiration_index_backlog";
      source = Obs.Health.Metric "expirel_expiration_index_depth";
      op = Obs.Health.Above;
      degraded = 100_000.;
      critical = 1_000_000.;
      help = "expiration backlog a clock advance or vacuum must process"
    };
    { Obs.Health.name = "slow_request_rate";
      (* The histogram observes microseconds; 50_000 = 50 ms. *)
      source =
        Obs.Health.Hist_frac_above
          { metric = "expirel_request_duration_seconds"; bound = 50_000. };
      op = Obs.Health.Above;
      degraded = 0.05;
      critical = 0.25;
      help = "fraction of requests slower than 50ms"
    };
    { Obs.Health.name = "plan_cache_hit_ratio";
      source =
        Obs.Health.Ratio
          { num = "expirel_plan_cache_hits_total";
            den = "expirel_plan_cache_requests_total";
            (* a freshly started server's first few queries are all
               misses by construction — don't page on a warming cache *)
            min_den = 100.
          };
      op = Obs.Health.Below;
      degraded = 0.5;
      critical = 0.1;
      help = "plan-cache hit ratio collapsed (DDL churn or one-shot \
              query texts defeat the LRU)"
    };
    (* The predictive pair: both read the horizon — the forecast of the
       next Δ ticks — so they fire {e before} the trouble, not after.
       Expiration times make this sound: the storm is already written
       into the data. *)
    { Obs.Health.name = "expiration_storm";
      source =
        Obs.Health.Ratio
          { num = "expirel_horizon_expiring_soon";
            den = "expirel_live_rows";
            (* a handful of short-lived rows is churn, not a storm *)
            min_den = 8.
          };
      op = Obs.Health.Above;
      degraded = 0.5;
      critical = 0.9;
      help = "expiration storm ahead: this fraction of live rows \
              expires within the next horizon window"
    };
    { Obs.Health.name = "fanout_storm";
      source = Obs.Health.Metric "expirel_horizon_fanout_events";
      op = Obs.Health.Above;
      degraded = 256.;
      critical = 4096.;
      help = "fan-out storm ahead: the next ADVANCE window delivers \
              this many subscription events"
    }
  ]

let default_config =
  { host = "127.0.0.1";
    port = 0;
    max_connections = 64;
    request_timeout = 5.0;
    policy = Database.Eager;
    backend = `Heap;
    data_dir = None;
    read_only = false;
    node_name = "expirel";
    health_rules = default_health_rules
  }

type conn = {
  id : int;
  fd : Unix.file_descr;
  write_mutex : Mutex.t;
  mutable alive : bool;
  mutable owned_subs : string list;
}

type t = {
  config : config;
  interp : Interp.t;
  store : Durable.t option;
  subs : Subscription.t;
  lock : Rwlock.t;
  metrics : Metrics.t;
  trace_store : Obs.Trace_store.t;
  mutable last_health : Obs.Health.level;
  state_mutex : Mutex.t;
  conns : (int, conn) Hashtbl.t;
  threads : (int, Thread.t) Hashtbl.t;
  followers : (string, unit) Hashtbl.t;  (* live replication sessions *)
  mutable shard : Wire.shard_identity option;  (* cluster membership *)
  mutable records_shipped : int;
  mutable snapshots_served : int;
  mutable listen_fd : Unix.file_descr option;
  mutable bound_port : int option;
  mutable acceptor : Thread.t option;
  mutable shutting_down : bool;
  mutable store_closed : bool;
  mutable next_id : int;
}

(* The full forward-looking report: the interpreter's per-table buckets
   and churn rates, plus the subscription fan-out forecast only this
   layer can see (the subscription manager lives here).  Callers hold
   the read lock — the forecast walks live table and watch state. *)
let horizon_of ~interp ~subs ?table () =
  let r = Interp.horizon ?table interp in
  let until =
    Time.add
      (Database.now (Interp.database interp))
      (Time.of_int r.Obs.Horizon.window)
  in
  { r with
    Obs.Horizon.fanout_events = Subscription.forecast_events subs ~until
  }

let create ?(config = default_config) () =
  let store =
    Option.map
      (Durable.open_dir ~policy:config.policy ~backend:config.backend)
      config.data_dir
  in
  let interp =
    match store with
    | Some s -> Interp.create ~store:s ()
    | None -> Interp.create ~policy:config.policy ~backend:config.backend ()
  in
  let db = Interp.database interp in
  let metrics = Metrics.create () in
  (* Every expiration the storage observes shows up in STATS/METRICS,
     labeled by how it was removed: under the eager policy triggers
     fire from the clock advance at the tuple's expiration time, under
     the lazy policy from the (late) vacuum. *)
  let expiry_mode =
    match config.policy with
    | Database.Eager -> `Eager
    | Database.Lazy -> `Lazy
  in
  Trigger.register (Database.triggers db) ~name:"__server_stats" ~table:"*"
    (fun _ -> Metrics.incr_tuples_expired metrics ~mode:expiry_mode);
  let t =
    { config;
      interp;
      store;
      subs = Subscription.create db;
      lock = Rwlock.create ();
      metrics;
      trace_store = Obs.Trace_store.create ();
      last_health = Obs.Health.Ok;
      state_mutex = Mutex.create ();
      conns = Hashtbl.create 16;
      threads = Hashtbl.create 16;
      followers = Hashtbl.create 4;
      shard = None;
      records_shipped = 0;
      snapshots_served = 0;
      listen_fd = None;
      bound_port = None;
      acceptor = None;
      shutting_down = false;
      store_closed = false;
      next_id = 0
    }
  in
  (* Primary-side replication stats; a Replica wrapping this server
     replaces the provider with its applier's view. *)
  (match store with
   | Some s ->
     Metrics.set_repl_source metrics (fun () ->
         let position = Durable.position s in
         Some
           { Wire.role = Wire.Primary;
             position;
             source_position = position;
             lag_records = 0;
             clock_lag = 0;
             reconnects = 0;
             snapshots = t.snapshots_served;
             records_shipped = t.records_shipped;
             followers = Hashtbl.length t.followers
           })
   | None -> ());
  (* Expiration-domain gauges, polled at exposition time.  They read
     live database/interp state (table and view hashtables), so METRICS
     is served under the read lock — see [handle_request]. *)
  let reg = Metrics.registry metrics in
  Obs.Registry.gauge_fun reg ~name:"expirel_expiration_index_depth"
    ~help:"Entries across all tables' expiration indexes (heap nodes / \
           timer-wheel occupancy): the backlog an advance or vacuum \
           must process" (fun () ->
      float_of_int (Database.pending_expirations db));
  Obs.Registry.custom reg ~name:"expirel_view_texp_horizon_ticks"
    ~help:"texp(e) horizon per view, in logical ticks (+Inf when the \
           materialisation is maintainable by expiration alone forever)"
    ~kind:Obs.Registry.Gauge_kind (fun () ->
      List.map
        (fun (view, texp) ->
          let v =
            match texp with
            | Time.Inf -> Float.infinity
            | Time.Fin n -> float_of_int n
          in
          ([ ("view", view) ], Obs.Registry.Gauge_sample v))
        (Interp.view_horizons t.interp));
  (match store with
   | Some s ->
     Obs.Registry.gauge_fun reg ~name:"expirel_wal_position"
       ~help:"Monotone log position (records ever logged)" (fun () ->
         float_of_int (Durable.position s));
     Obs.Registry.gauge_fun reg ~name:"expirel_wal_records_since_checkpoint"
       ~help:"Log records accumulated since the last checkpoint" (fun () ->
         float_of_int (Durable.wal_records s))
   | None -> ());
  (* Replication lag, through whatever provider is installed (primary
     or replica side).  No provider / no stats: the gauges are simply
     absent from the exposition (the callback raises, collect skips). *)
  let repl_stat pick () =
    match Metrics.repl_source metrics () with
    | Some r -> float_of_int (pick r)
    | None -> raise Not_found
  in
  Obs.Registry.gauge_fun reg ~name:"expirel_repl_lag_records"
    ~help:"Records behind the replication source (0 on a primary)"
    (repl_stat (fun r -> r.Wire.lag_records));
  Obs.Registry.gauge_fun reg ~name:"expirel_repl_clock_lag_ticks"
    ~help:"Logical-time distance to the replication source's clock"
    (repl_stat (fun r -> r.Wire.clock_lag));
  Obs.Registry.gauge_fun reg ~name:"expirel_repl_followers"
    ~help:"Live replication sessions served (primary side)"
    (repl_stat (fun r -> r.Wire.followers));
  (* Plan-cache effectiveness, polled from the interpreter's counters so
     it shows on the Prometheus page, not only in the stats record.
     [requests_total] (= hits + misses) exists so the hit-ratio health
     rule has a one-metric denominator. *)
  let cache_stat pick () =
    float_of_int (pick (Interp.plan_cache_stats t.interp))
  in
  Obs.Registry.custom reg ~name:"expirel_plan_cache_hits_total"
    ~help:"Plan-cache lookups served from the LRU"
    ~kind:Obs.Registry.Counter_kind (fun () ->
      [ ([], Obs.Registry.Counter_sample
            (Interp.plan_cache_stats t.interp).Interp.hits) ]);
  Obs.Registry.custom reg ~name:"expirel_plan_cache_misses_total"
    ~help:"Plan-cache lookups that had to lower and plan"
    ~kind:Obs.Registry.Counter_kind (fun () ->
      [ ([], Obs.Registry.Counter_sample
            (Interp.plan_cache_stats t.interp).Interp.misses) ]);
  Obs.Registry.custom reg ~name:"expirel_plan_cache_requests_total"
    ~help:"Plan-cache lookups (hits + misses)"
    ~kind:Obs.Registry.Counter_kind (fun () ->
      let s = Interp.plan_cache_stats t.interp in
      [ ([], Obs.Registry.Counter_sample (s.Interp.hits + s.Interp.misses)) ]);
  Obs.Registry.gauge_fun reg ~name:"expirel_plan_cache_entries"
    ~help:"Plans currently cached"
    (cache_stat (fun s -> s.Interp.entries));
  (* Sketch observability: one sample per sketch the executor has
     built, labelled by the sketch's display name (e.g.
     "approx_count(0.01)").  The Observatory is process-global and
     mutex-guarded, so polling it at exposition time is safe without
     the database lock. *)
  Obs.Registry.custom reg ~name:"expirel_sketch_memory_bytes"
    ~help:"Resident bytes per sketch kind last built by an \
           APPROX_COUNT/SAMPLE query"
    ~kind:Obs.Registry.Gauge_kind (fun () ->
      List.map
        (fun (name, (bytes, _)) ->
          ([ ("sketch", name) ],
           Obs.Registry.Gauge_sample (float_of_int bytes)))
        (Expirel_sketch.Observatory.snapshot ()));
  Obs.Registry.custom reg ~name:"expirel_sketch_live_estimate"
    ~help:"Estimated live cardinality per sketch kind at the time it \
           was last queried"
    ~kind:Obs.Registry.Gauge_kind (fun () ->
      List.map
        (fun (name, (_, est)) ->
          ([ ("sketch", name) ], Obs.Registry.Gauge_sample est))
        (Expirel_sketch.Observatory.snapshot ()));
  (* Vectorized-executor observability: process-global totals the
     batch executor records once per query (Vec_stats, mutex-guarded
     like the sketch Observatory, so exposition-time polling needs no
     database lock).  cut_skipped is the headline saving: expired rows
     never touched, skipped by chunk pruning and binary-search cuts. *)
  let vexec_counter ~name ~help pick =
    Obs.Registry.custom reg ~name ~help ~kind:Obs.Registry.Counter_kind
      (fun () ->
        [ ( [],
            Obs.Registry.Counter_sample (pick (Obs.Vec_stats.snapshot ())) )
        ])
  in
  vexec_counter ~name:"expirel_vexec_batches_total"
    ~help:"Columnar batches produced by the vectorized executor"
    (fun s -> s.Obs.Vec_stats.s_batches);
  vexec_counter ~name:"expirel_vexec_rows_total"
    ~help:"Rows that flowed through vectorized (batched) plan subtrees"
    (fun s -> s.Obs.Vec_stats.s_rows);
  vexec_counter ~name:"expirel_vexec_cut_skipped_total"
    ~help:"Expired rows skipped wholesale by chunk-level texp pruning \
           and binary-search live cuts (never touched per-row)"
    (fun s -> s.Obs.Vec_stats.s_cut_skipped);
  vexec_counter ~name:"expirel_vexec_rebatches_total"
    ~help:"Tuple-fallback operator results re-entered into batch form \
           at a rebatch boundary"
    (fun s -> s.Obs.Vec_stats.s_rebatches);
  (* The last HEALTH verdict, as a gauge (0 ok / 1 degraded /
     2 critical).  It reads the cached level rather than re-evaluating:
     evaluation runs [Registry.collect], which must not re-enter from
     inside a collect. *)
  Obs.Registry.gauge_fun reg ~name:"expirel_health_status"
    ~help:"Last HEALTH verdict (0 = ok, 1 = degraded, 2 = critical); \
           updated each time a HEALTH request is served" (fun () ->
      match t.last_health with
      | Obs.Health.Ok -> 0.
      | Obs.Health.Degraded -> 1.
      | Obs.Health.Critical -> 2.);
  (* The horizon: forward-looking expiration telemetry, polled at
     exposition time like the other expiration-domain gauges (METRICS
     runs as a reader).  Each bucket boundary is a binary-search cut
     over texp-sorted chunks, so a scrape stays cheap on big tables. *)
  Obs.Registry.custom reg ~name:"expirel_horizon_rows"
    ~help:"Forecast: live rows by ticks-to-expiry, per table (+Inf \
           also holds never-expiring rows)"
    ~kind:Obs.Registry.Histogram_kind (fun () ->
      List.map
        (fun tb ->
          ( [ ("table", tb.Obs.Horizon.name) ],
            Obs.Registry.Histogram_sample (Obs.Horizon.snapshot tb) ))
        (Interp.horizon t.interp).Obs.Horizon.tables);
  Obs.Registry.gauge_fun reg ~name:"expirel_horizon_fanout_events"
    ~help:"Subscription events the next ADVANCE window will deliver"
    (fun () ->
      let until =
        Time.add (Database.now db) (Time.of_int Obs.Horizon.default_window)
      in
      float_of_int (Subscription.forecast_events t.subs ~until));
  Obs.Registry.gauge_fun reg ~name:"expirel_horizon_window_ticks"
    ~help:"The forecast window (ticks) used for fan-out and storm rules"
    (fun () -> float_of_int Obs.Horizon.default_window);
  Obs.Registry.custom reg ~name:"expirel_churn_rate"
    ~help:"Arrival vs expiration velocity, rows per tick over a \
           sliding window"
    ~kind:Obs.Registry.Gauge_kind (fun () ->
      let r = Interp.horizon t.interp in
      [ ( [ ("kind", "arrival") ],
          Obs.Registry.Gauge_sample r.Obs.Horizon.arrival_rate );
        ( [ ("kind", "expiration") ],
          Obs.Registry.Gauge_sample r.Obs.Horizon.expiration_rate )
      ]);
  (* The storm ratio's numerator and denominator, as plain gauges so
     the predictive health rules read them off the same collection. *)
  Obs.Registry.gauge_fun reg ~name:"expirel_horizon_expiring_soon"
    ~help:"Live rows expiring within the next horizon window" (fun () ->
      let r = Interp.horizon t.interp in
      float_of_int
        (List.fold_left
           (fun acc tb ->
             acc + Obs.Horizon.expiring_within tb r.Obs.Horizon.window)
           0 r.Obs.Horizon.tables));
  Obs.Registry.gauge_fun reg ~name:"expirel_live_rows"
    ~help:"Live rows across all tables (the storm ratio's denominator)"
    (fun () -> float_of_int (Database.live_rows db));
  Metrics.register_build_info (Metrics.registry metrics);
  t

let interp t = t.interp
let store t = t.store
let lock t = t.lock
let metrics t = t.metrics
let trace_store t = t.trace_store

let port t =
  match t.bound_port with
  | Some p -> p
  | None -> invalid_arg "Server.port: not started"

let locked_state t f =
  Mutex.lock t.state_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.state_mutex) f

(* ---------- responding ---------- *)

(* Responses and pushed events share one outbound stream: the worker
   thread answers requests while the thread driving an ADVANCE pushes
   subscription events, so every write serialises on the connection's
   mutex. *)
let send_response t conn response =
  if conn.alive then begin
    Mutex.lock conn.write_mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock conn.write_mutex)
      (fun () ->
        try
          let n = Frame.send conn.fd (Wire.encode_response response) in
          Metrics.add_bytes_out t.metrics n
        with Frame.Closed | Frame.Timeout | Unix.Unix_error _ ->
          (* A peer that stopped reading loses its stream; never stall
             the server (an event push runs under the global write
             lock, bounded by SO_SNDTIMEO). *)
          conn.alive <- false)
  end

(* ---------- lock acquisition with a deadline ---------- *)

let acquire t ~write =
  let try_lock = if write then Rwlock.try_write_lock else Rwlock.try_read_lock in
  let deadline = Unix.gettimeofday () +. t.config.request_timeout in
  let rec go () =
    if try_lock t.lock then true
    else if Unix.gettimeofday () >= deadline then false
    else begin
      Thread.delay 2e-4;
      go ()
    end
  in
  go ()

let release t ~write =
  if write then Rwlock.write_unlock t.lock else Rwlock.read_unlock t.lock

(* Statements with no effect on any state may share the lock; everything
   else — including SHOW VIEW, which refreshes an expired view in place —
   serialises. *)
let is_read_only = function
  | Ast.Query _ | Ast.Show_tables | Ast.Show_views | Ast.Show_time
  | Ast.Show_horizon _ | Ast.Show_triggers | Ast.Show_constraints
  | Ast.Explain _ | Ast.Explain_analyze _ -> true
  | Ast.Create_table _ | Ast.Drop_table _ | Ast.Create_index _
  | Ast.Drop_index _ | Ast.Insert _ | Ast.Delete _
  | Ast.Advance_to _ | Ast.Tick _ | Ast.Vacuum | Ast.Checkpoint
  | Ast.Create_view _ | Ast.Show_view _ | Ast.Create_trigger _
  | Ast.Drop_trigger _ | Ast.Create_constraint _ | Ast.Drop_constraint _
  | Ast.Refresh_view _ ->
    false

(* What a read-only replica still executes: anything without state
   effects, plus the purely local housekeeping statements (VACUUM and
   CHECKPOINT touch no logical state the primary owns). *)
let replica_allows stmt =
  is_read_only stmt
  ||
  match stmt with
  | Ast.Vacuum | Ast.Checkpoint | Ast.Show_view _ -> true
  | _ -> false

(* ---------- request handlers ---------- *)

let response_of_outcome = function
  | Interp.Msg m -> Wire.Ok_msg m
  | Interp.Rows { columns; listing; texp_e; recomputed; relation = _ } ->
    Wire.Rows
      { columns;
        rows = List.map (fun (tuple, texp) -> (Tuple.to_list tuple, texp)) listing;
        texp_e;
        recomputed
      }

(* Push the continuous queries' change events before the interpreter
   moves the clock (which physically removes expired rows under the
   eager policy): subscribers see every event at its exact logical time,
   and always before the ADVANCE is acknowledged. *)
let deliver_subscription_events t stmt =
  let now = Database.now (Interp.database t.interp) in
  let target =
    match stmt with
    | Ast.Advance_to n -> Some (Time.of_int n)
    | Ast.Tick n -> Some (Time.add now (Time.of_int n))
    | _ -> None
  in
  match target with
  | Some target when Time.(target >= now) && Time.is_finite target ->
    Subscription.deliver_until t.subs target
  | Some _ | None -> ()

let handle_statement ?trace ?text t stmt =
  let write = not (is_read_only stmt) in
  if t.config.read_only && not (replica_allows stmt) then
    Wire.Err
      { code = Wire.Exec_error;
        message = "read-only replica: writes go to the primary"
      }
  else if not (Obs.Trace.span trace "rwlock_wait" (fun () -> acquire t ~write))
  then
    Wire.Err
      { code = Wire.Timeout;
        message =
          Printf.sprintf "no lock within %gs" t.config.request_timeout
      }
  else
    Fun.protect
      ~finally:(fun () -> release t ~write)
      (fun () ->
        match
          deliver_subscription_events t stmt;
          (* SHOW HORIZON is answered above the interpreter so the
             fan-out forecast covers this server's subscriptions — the
             interpreter alone would report 0. *)
          match stmt with
          | Ast.Show_horizon table ->
            (match horizon_of ~interp:t.interp ~subs:t.subs ?table () with
             | report -> Ok (Interp.Msg (Obs.Horizon.render report))
             | exception Errors.Unknown_relation name ->
               Error ("unknown relation " ^ name))
          | _ -> Interp.exec ?trace ?text t.interp stmt
        with
        | Ok outcome -> response_of_outcome outcome
        | Error message -> Wire.Err { code = Wire.Exec_error; message }
        | exception Errors.Unknown_relation name ->
          Wire.Err
            { code = Wire.Exec_error;
              message = "subscription delivery: unknown relation " ^ name
            }
        | exception Invalid_argument message ->
          Wire.Err { code = Wire.Exec_error; message })

(* Every EXEC is traced: parse -> rwlock wait -> interpreter stages
   (lower, eval with per-operator spans, storage).  The finished trace
   feeds the stage/operator histograms, the slow-query log and the
   trace store whether the statement succeeded or failed — failing
   statements are exactly the ones worth finding in the log.  When the
   request carried a trace context ([Exec_traced]), the spans record
   under the caller's trace id with the caller's span as their root
   parent, so a fan-out request yields one cross-node trace. *)
let handle_exec ?ctx t sql =
  let tr =
    match (ctx : Wire.trace_ctx option) with
    | None -> Obs.Trace.create ()
    | Some { trace_id; parent_span = 0 } -> Obs.Trace.create ~trace_id ()
    | Some { trace_id; parent_span } ->
      Obs.Trace.create ~trace_id ~parent_span ()
  in
  let trace = Some tr in
  let response =
    match
      Obs.Trace.span trace "parse" (fun () -> Interp.parse t.interp sql)
    with
    | stmt -> handle_statement ?trace ~text:sql t stmt
    | exception Parser.Error (message, off) ->
      Wire.Err
        { code = Wire.Parse_error;
          message = Printf.sprintf "at offset %d: %s" off message
        }
  in
  Metrics.observe_trace t.metrics ~statement:sql
    ~trace_id:(Obs.Trace.trace_id tr) ~total_us:(Obs.Trace.elapsed_us tr)
    ~spans:(Obs.Trace.spans tr);
  Obs.Trace_store.finish t.trace_store ~node:t.config.node_name ~name:sql tr;
  response

let strip_statement s =
  let s = String.trim s in
  if String.length s > 0 && s.[String.length s - 1] = ';' then
    String.trim (String.sub s 0 (String.length s - 1))
  else s

let wire_event = function
  | Subscription.Row_expired { subscription; tuple; at } ->
    Wire.Row_expired { subscription; row = Tuple.to_list tuple; at }
  | Subscription.Row_appeared { subscription; tuple; texp; at } ->
    Wire.Row_appeared { subscription; row = Tuple.to_list tuple; texp; at }
  | Subscription.Refreshed { subscription; at } ->
    Wire.Refreshed { subscription; at }

let handle_subscribe t conn ~name ~query =
  match Parser.parse_statement (strip_statement query) with
  | exception Parser.Error (message, off) ->
    Wire.Err
      { code = Wire.Parse_error;
        message = Printf.sprintf "at offset %d: %s" off message
      }
  | Ast.Query { q; at = None; _ } ->
    if not (acquire t ~write:true) then
      Wire.Err { code = Wire.Timeout; message = "no lock" }
    else
      Fun.protect
        ~finally:(fun () -> release t ~write:true)
        (fun () ->
          let db = Interp.database t.interp in
          let catalog table = Option.map Table.columns (Database.table db table) in
          match Lower.lower_query ~catalog q with
          | exception Lower.Error message ->
            Wire.Err { code = Wire.Exec_error; message }
          | { Lower.expr; _ } ->
            (match
               Subscription.subscribe t.subs ~name expr (fun event ->
                   send_response t conn (Wire.Event (wire_event event));
                   Metrics.incr_events_pushed t.metrics)
             with
             | () ->
               conn.owned_subs <- name :: conn.owned_subs;
               Wire.Ok_msg (Printf.sprintf "subscribed %s" name)
             | exception Invalid_argument message
             | exception Failure message ->
               Wire.Err { code = Wire.Exec_error; message }
             | exception Errors.Unknown_relation rel ->
               Wire.Err
                 { code = Wire.Exec_error;
                   message = "unknown relation " ^ rel
                 }
             | exception Errors.Arity_mismatch message ->
               Wire.Err { code = Wire.Exec_error; message }))
  | Ast.Query { at = Some _; _ } ->
    Wire.Err
      { code = Wire.Exec_error;
        message = "SUBSCRIBE takes a plain query (no AT: the stream itself \
                   walks the future)"
      }
  | _ ->
    Wire.Err
      { code = Wire.Exec_error; message = "SUBSCRIBE expects a SELECT query" }

let handle_unsubscribe t conn name =
  if not (List.mem name conn.owned_subs) then
    Wire.Err
      { code = Wire.Exec_error;
        message = Printf.sprintf "subscription %s is not owned by this connection" name
      }
  else if not (acquire t ~write:true) then
    Wire.Err { code = Wire.Timeout; message = "no lock" }
  else
    Fun.protect
      ~finally:(fun () -> release t ~write:true)
      (fun () ->
        ignore (Subscription.unsubscribe t.subs name);
        conn.owned_subs <- List.filter (fun n -> n <> name) conn.owned_subs;
        Wire.Ok_msg (Printf.sprintf "unsubscribed %s" name))

let wire_health_level = function
  | Obs.Health.Ok -> Wire.Health_ok
  | Obs.Health.Degraded -> Wire.Health_degraded
  | Obs.Health.Critical -> Wire.Health_critical

let wire_trace_entry (e : Obs.Trace_store.entry) =
  { Wire.node = e.node;
    entry_trace_id = e.trace_id;
    entry_name = e.name;
    started_at = e.started_at;
    entry_total_us = e.total_us;
    entry_spans = Metrics.wire_spans e.spans
  }

(* Rules read the same collection the Prometheus page renders, so the
   evaluation runs as a reader for the same reason METRICS does: polled
   gauges walk live table/view state. *)
let handle_health t =
  if not (acquire t ~write:false) then
    Wire.Err { code = Wire.Timeout; message = "no lock" }
  else
    Fun.protect
      ~finally:(fun () -> release t ~write:false)
      (fun () ->
        let collected = Obs.Registry.collect (Metrics.registry t.metrics) in
        let report = Obs.Health.evaluate t.config.health_rules collected in
        t.last_health <- report.Obs.Health.level;
        Wire.Health_reply
          { level = wire_health_level report.Obs.Health.level;
            firing =
              List.map
                (fun (f : Obs.Health.firing) ->
                  { Wire.rule_name = f.rule_name;
                    observed = f.value;
                    firing_level = wire_health_level f.level;
                    rule_help = f.help
                  })
                report.Obs.Health.firing
          })

(* ---------- shard mode (coordinator-facing RPCs) ---------- *)

let shard_identity t = locked_state t (fun () -> t.shard)

let shard_self t =
  match shard_identity t with
  | Some s -> s.Wire.self_id
  | None -> -1

(* The whole-partition texp summary the coordinator's pruning feeds on:
   the Relation min/max-texp bounds folded over every table's live
   snapshot.  Snapshots are generation-cached, so when nothing changed
   since the last reply this walk allocates nothing.  Caller holds the
   (read or write) lock. *)
let partition_summary t =
  let db = Interp.database t.interp in
  List.fold_left
    (fun (acc : Wire.partition_texp) name ->
      let r = Database.snapshot db name in
      let n = Relation.cardinal r in
      if n = 0 then acc
      else if acc.live_rows = 0 then
        { Wire.live_rows = n;
          min_texp = Relation.min_texp r;
          max_texp = Relation.max_texp r
        }
      else
        { Wire.live_rows = acc.live_rows + n;
          min_texp = Time.min acc.min_texp (Relation.min_texp r);
          max_texp = Time.max acc.max_texp (Relation.max_texp r)
        })
    { Wire.live_rows = 0; min_texp = Time.infinity; max_texp = Time.infinity }
    (Database.table_names db)

let summary_under_lock t =
  if not (acquire t ~write:false) then
    Error (Wire.Err { code = Wire.Timeout; message = "no lock" })
  else
    Fun.protect
      ~finally:(fun () -> release t ~write:false)
      (fun () -> Ok (partition_summary t))

(* [self_id] may be absent from [map]: that is how a leaving shard
   learns the map that evicts it — ownership then assigns every local
   row elsewhere, so the drain (extract / purge) moves everything. *)
let handle_shard_install t ~map ~self_id =
  if self_id < 0 then
    Wire.Err
      { code = Wire.Exec_error;
        message = Printf.sprintf "bad shard id %d" self_id
      }
  else
    locked_state t (fun () ->
        match t.shard with
        | Some { installed_map; _ }
          when installed_map.Wire.map_version > map.Wire.map_version ->
          Wire.Err
            { code = Wire.Exec_error;
              message =
                Printf.sprintf "stale shard map v%d (v%d is installed)"
                  map.Wire.map_version installed_map.Wire.map_version
            }
        | _ ->
          t.shard <- Some { Wire.installed_map = map; self_id };
          Wire.Ok_msg
            (Printf.sprintf "installed shard map v%d as shard %d"
               map.Wire.map_version self_id))

(* An EXEC issued by a coordinator: same execution path as [Exec] /
   [Exec_traced], but successful replies carry the shard id and the
   partition summary so every contact — reads and writes alike —
   refreshes the coordinator's pruning cache. *)
let handle_exec_shard t ~sql ~ctx =
  match handle_exec ?ctx t sql with
  | Wire.Rows { columns; rows; texp_e; recomputed } ->
    (match summary_under_lock t with
     | Error e -> e
     | Ok partition ->
       Wire.Shard_rows
         { shard_id = shard_self t; partition; columns; rows; texp_e;
           recomputed })
  | Wire.Ok_msg message ->
    (match summary_under_lock t with
     | Error e -> e
     | Ok partition ->
       Wire.Shard_ack { shard_id = shard_self t; partition; message })
  | other -> other

let handle_shard_ping t =
  match summary_under_lock t with
  | Error e -> e
  | Ok partition ->
    let shard_id, pong_map_version =
      locked_state t (fun () ->
          match t.shard with
          | Some s -> (s.Wire.self_id, s.Wire.installed_map.Wire.map_version)
          | None -> (-1, 0))
    in
    Wire.Shard_pong
      { shard_id;
        pong_map_version;
        now = Database.now (Interp.database t.interp);
        partition
      }

(* A coordinator's request for a sketch partial: evaluate the
   APPROX_COUNT/SAMPLE query's child over this shard's partition and
   ship the folded sketch — constant-size on the wire however many rows
   the partition holds.  Traced like any EXEC so the fan-out shows up
   as one cross-node trace with a [sketch-query] span per shard. *)
let handle_sketch_shard t ~sql ~ctx =
  let tr =
    match (ctx : Wire.trace_ctx option) with
    | None -> Obs.Trace.create ()
    | Some { trace_id; parent_span = 0 } -> Obs.Trace.create ~trace_id ()
    | Some { trace_id; parent_span } ->
      Obs.Trace.create ~trace_id ~parent_span ()
  in
  let trace = Some tr in
  let response =
    match
      Obs.Trace.span trace "parse" (fun () -> Interp.parse t.interp sql)
    with
    | exception Parser.Error (message, off) ->
      Wire.Err
        { code = Wire.Parse_error;
          message = Printf.sprintf "at offset %d: %s" off message
        }
    | Ast.Query { q; at = _; _ } ->
      (* AT is irrelevant here: the shard always folds its current
         snapshot, the partial covers the whole expiration axis, and
         the coordinator owns the tau it queries the merged sketch at. *)
      if not (acquire t ~write:false) then
        Wire.Err
          { code = Wire.Timeout;
            message =
              Printf.sprintf "no lock within %gs" t.config.request_timeout
          }
      else
        Fun.protect
          ~finally:(fun () -> release t ~write:false)
          (fun () ->
            match Interp.sketch_partial ?trace t.interp q with
            | columns, sketch ->
              Wire.Shard_sketch
                { shard_id = shard_self t;
                  partition = partition_summary t;
                  columns;
                  payload = Expirel_sketch.Any.to_string sketch
                }
            | exception Errors.Unknown_relation name ->
              Wire.Err
                { code = Wire.Exec_error;
                  message = "unknown relation " ^ name
                }
            | exception Lower.Error message | exception Failure message ->
              Wire.Err { code = Wire.Exec_error; message })
    | _ ->
      Wire.Err
        { code = Wire.Exec_error;
          message = "Sketch_shard expects an APPROX_COUNT/SAMPLE query"
        }
  in
  Metrics.observe_trace t.metrics ~statement:sql
    ~trace_id:(Obs.Trace.trace_id tr) ~total_us:(Obs.Trace.elapsed_us tr)
    ~spans:(Obs.Trace.spans tr);
  Obs.Trace_store.finish t.trace_store ~node:t.config.node_name ~name:sql tr;
  response

(* The shard-side halves of distributed grouped aggregates and
   broadcast joins.  Both mirror [handle_sketch_shard]: reconstruct the
   coordinator's trace, parse, evaluate under the read lock, map the
   interpreter's exceptions onto typed wire errors. *)
let with_shard_trace t ~sql ~ctx body =
  let tr =
    match (ctx : Wire.trace_ctx option) with
    | None -> Obs.Trace.create ()
    | Some { trace_id; parent_span = 0 } -> Obs.Trace.create ~trace_id ()
    | Some { trace_id; parent_span } ->
      Obs.Trace.create ~trace_id ~parent_span ()
  in
  let trace = Some tr in
  let response =
    match
      Obs.Trace.span trace "parse" (fun () -> Interp.parse t.interp sql)
    with
    | exception Parser.Error (message, off) ->
      Wire.Err
        { code = Wire.Parse_error;
          message = Printf.sprintf "at offset %d: %s" off message
        }
    | statement ->
      if not (acquire t ~write:false) then
        Wire.Err
          { code = Wire.Timeout;
            message =
              Printf.sprintf "no lock within %gs" t.config.request_timeout
          }
      else
        Fun.protect
          ~finally:(fun () -> release t ~write:false)
          (fun () ->
            match body trace statement with
            | response -> response
            | exception Errors.Unknown_relation name ->
              Wire.Err
                { code = Wire.Exec_error;
                  message = "unknown relation " ^ name
                }
            | exception Lower.Error message | exception Failure message ->
              Wire.Err { code = Wire.Exec_error; message })
  in
  Metrics.observe_trace t.metrics ~statement:sql
    ~trace_id:(Obs.Trace.trace_id tr) ~total_us:(Obs.Trace.elapsed_us tr)
    ~spans:(Obs.Trace.spans tr);
  Obs.Trace_store.finish t.trace_store ~node:t.config.node_name ~name:sql tr;
  response

let handle_agg_shard t ~sql ~ctx =
  with_shard_trace t ~sql ~ctx (fun trace -> function
    | Ast.Query qs ->
      let columns, partial, child_texp =
        Interp.aggregate_partial ?trace t.interp qs
      in
      Wire.Shard_agg
        { shard_id = shard_self t;
          partition = partition_summary t;
          columns;
          child_texp;
          groups = partial
        }
    | _ ->
      Wire.Err
        { code = Wire.Exec_error;
          message = "Agg_shard expects a grouped aggregate query"
        })

let handle_join_shard t ~sql ~build_table ~build_rows ~ctx =
  with_shard_trace t ~sql ~ctx (fun trace -> function
    | Ast.Query qs ->
      let columns, rows, texp_e =
        Interp.join_broadcast ?trace t.interp qs ~table:build_table
          ~rows:build_rows
      in
      Wire.Shard_rows
        { shard_id = shard_self t;
          partition = partition_summary t;
          columns;
          rows;
          texp_e;
          recomputed = false
        }
    | _ ->
      Wire.Err
        { code = Wire.Exec_error;
          message = "Join_shard expects a query"
        })

let first_column tuple =
  match Tuple.to_list tuple with
  | [] -> None
  | key :: _ -> Some key

let handle_extract_moving t table =
  match shard_identity t with
  | None ->
    Wire.Err { code = Wire.Exec_error; message = "no shard map installed" }
  | Some { installed_map = map; self_id } ->
    if not (acquire t ~write:false) then
      Wire.Err { code = Wire.Timeout; message = "no lock" }
    else
      Fun.protect
        ~finally:(fun () -> release t ~write:false)
        (fun () ->
          let db = Interp.database t.interp in
          match Database.table db table with
          | None ->
            Wire.Err
              { code = Wire.Exec_error; message = "unknown table " ^ table }
          | Some _ ->
            let moves = Hashtbl.create 4 in
            Relation.fold
              (fun tuple texp () ->
                match first_column tuple with
                | None -> ()
                | Some key ->
                  let owner = Wire.shard_owner map key in
                  if owner <> self_id then begin
                    let rows =
                      try Hashtbl.find moves owner with Not_found -> []
                    in
                    Hashtbl.replace moves owner
                      ((Tuple.to_list tuple, texp) :: rows)
                  end)
              (Database.snapshot db table) ();
            Wire.Moved_rows
              (List.sort compare
                 (Hashtbl.fold
                    (fun owner rows acc -> (owner, List.rev rows) :: acc)
                    moves [])))

let refuse_on_replica t k =
  if t.config.read_only then
    Wire.Err
      { code = Wire.Exec_error;
        message = "read-only replica: rebalance writes go to the primary"
      }
  else k ()

let handle_ingest_rows t ~table ~ingest =
  refuse_on_replica t @@ fun () ->
  if not (acquire t ~write:true) then
    Wire.Err { code = Wire.Timeout; message = "no lock" }
  else
    Fun.protect
      ~finally:(fun () -> release t ~write:true)
      (fun () ->
        let db = Interp.database t.interp in
        match Database.table db table with
        | None ->
          Wire.Err
            { code = Wire.Exec_error; message = "unknown table " ^ table }
        | Some _ ->
          let now = Database.now db in
          let inserted = ref 0 in
          let dropped = ref 0 in
          List.iter
            (fun (values, texp) ->
              (* A row already expired at this clock stays dead: moving
                 a tuple between shards must not resurrect it. *)
              if Time.(texp > now) then begin
                (match t.store with
                 | Some store ->
                   Durable.insert store table (Tuple.of_list values) ~texp
                 | None ->
                   Database.insert db table (Tuple.of_list values) ~texp);
                incr inserted
              end
              else incr dropped)
            ingest;
          let message =
            Printf.sprintf "ingested %d row(s) into %s%s" !inserted table
              (if !dropped > 0 then
                 Printf.sprintf " (%d already expired)" !dropped
               else "")
          in
          Wire.Shard_ack
            { shard_id = shard_self t;
              partition = partition_summary t;
              message
            })

let handle_purge_moved t table =
  refuse_on_replica t @@ fun () ->
  match shard_identity t with
  | None ->
    Wire.Err { code = Wire.Exec_error; message = "no shard map installed" }
  | Some { installed_map = map; self_id } ->
    if not (acquire t ~write:true) then
      Wire.Err { code = Wire.Timeout; message = "no lock" }
    else
      Fun.protect
        ~finally:(fun () -> release t ~write:true)
        (fun () ->
          let db = Interp.database t.interp in
          match Database.table db table with
          | None ->
            Wire.Err
              { code = Wire.Exec_error; message = "unknown table " ^ table }
          | Some _ ->
            let doomed =
              Relation.fold
                (fun tuple _ acc ->
                  match first_column tuple with
                  | Some key when Wire.shard_owner map key <> self_id ->
                    tuple :: acc
                  | Some _ | None -> acc)
                (Database.snapshot db table) []
            in
            List.iter
              (fun tuple ->
                ignore
                  (match t.store with
                   | Some store -> Durable.delete store table tuple
                   | None -> Database.delete db table tuple))
              doomed;
            Wire.Shard_ack
              { shard_id = self_id;
                partition = partition_summary t;
                message =
                  Printf.sprintf "purged %d moved row(s) from %s"
                    (List.length doomed) table
              })

let handle_request t conn = function
  | Wire.Exec sql -> handle_exec t sql
  | Wire.Exec_traced { sql; ctx } -> handle_exec ~ctx t sql
  | Wire.Subscribe { name; query } -> handle_subscribe t conn ~name ~query
  | Wire.Unsubscribe name -> handle_unsubscribe t conn name
  | Wire.Stats ->
    let stats = Metrics.snapshot t.metrics in
    Wire.Stats_reply stats
  | Wire.Metrics ->
    (* Unlike STATS (stored counters only), the exposition polls gauges
       that walk live table/view state, so it runs as a reader. *)
    if not (acquire t ~write:false) then
      Wire.Err { code = Wire.Timeout; message = "no lock" }
    else
      Fun.protect
        ~finally:(fun () -> release t ~write:false)
        (fun () -> Wire.Metrics_reply (Metrics.prometheus t.metrics))
  | Wire.Slow_queries n ->
    Wire.Slow_queries_reply (Metrics.slowest t.metrics (max 0 n))
  | Wire.Trace_recent n ->
    Wire.Traces_reply
      (List.map wire_trace_entry (Obs.Trace_store.recent t.trace_store (max 0 n)))
  | Wire.Health -> handle_health t
  | Wire.Horizon table ->
    (* Like METRICS: the forecast walks live table and watch state, so
       it runs as a reader. *)
    if not (acquire t ~write:false) then
      Wire.Err { code = Wire.Timeout; message = "no lock" }
    else
      Fun.protect
        ~finally:(fun () -> release t ~write:false)
        (fun () ->
          match horizon_of ~interp:t.interp ~subs:t.subs ?table () with
          | report -> Wire.Horizon_reply report
          | exception Errors.Unknown_relation name ->
            Wire.Err
              { code = Wire.Exec_error;
                message = "unknown relation " ^ name
              })
  | Wire.Shard_map_req -> Wire.Shard_map_reply (shard_identity t)
  | Wire.Shard_install { map; self_id } -> handle_shard_install t ~map ~self_id
  | Wire.Exec_shard { sql; ctx } -> handle_exec_shard t ~sql ~ctx
  | Wire.Sketch_shard { sql; ctx } -> handle_sketch_shard t ~sql ~ctx
  | Wire.Agg_shard { sql; ctx } -> handle_agg_shard t ~sql ~ctx
  | Wire.Join_shard { sql; build_table; build_rows; ctx } ->
    handle_join_shard t ~sql ~build_table ~build_rows ~ctx
  | Wire.Shard_ping -> handle_shard_ping t
  | Wire.Extract_moving table -> handle_extract_moving t table
  | Wire.Ingest_rows { table; ingest } -> handle_ingest_rows t ~table ~ingest
  | Wire.Purge_moved table -> handle_purge_moved t table
  | Wire.Ping -> Wire.Pong
  | Wire.Quit -> Wire.Bye
  | Wire.Replicate _ ->
    (* Intercepted in [serve_conn]; reaching here means the handshake
       arrived on a server that cannot serve it. *)
    Wire.Err
      { code = Wire.Exec_error;
        message = "this server has no durable store: nothing to replicate"
      }

(* ---------- replication sessions (primary side) ---------- *)

let heartbeat_interval = 0.25

(* How long the tail poll sleeps when the log has nothing new.  Small
   enough that followers see a mutation within a few milliseconds. *)
let tail_poll_interval = 0.002

(* A REPLICATE handshake turns the worker into a log-shipping session:
   one initial shipment (snapshot for cold/stranded followers, records
   otherwise), then tail-following with heartbeats while idle.  Reads of
   the store happen under the read lock, so shipping never tears a
   mutation in progress; the stream ends when the follower hangs up or
   the server drains. *)
let serve_replication t conn store ~replica_id ~position ~ctx =
  locked_state t (fun () -> Hashtbl.replace t.followers replica_id ());
  (* When the handshake carried a trace context, the initial shipment —
     the expensive, user-visible part of joining — records as a span
     under the follower's trace.  The tail-following loop is unbounded,
     so the trace finishes (into this node's trace store) right after
     that first shipment rather than when the session ends. *)
  let tr =
    Option.map
      (fun ({ trace_id; parent_span } : Wire.trace_ctx) ->
        if parent_span = 0 then Obs.Trace.create ~trace_id ()
        else Obs.Trace.create ~trace_id ~parent_span ())
      ctx
  in
  let finish_trace () =
    Option.iter
      (fun tr ->
        Obs.Trace_store.finish t.trace_store ~node:t.config.node_name
          ~name:(Printf.sprintf "replicate %s" replica_id)
          tr)
      tr
  in
  Fun.protect
    ~finally:(fun () ->
      locked_state t (fun () -> Hashtbl.remove t.followers replica_id))
    (fun () ->
      let cursor = ref position in
      let ship () =
        Rwlock.with_read t.lock (fun () -> Durable.ship_from store !cursor)
      in
      let send_shipment = function
        | Durable.Snapshot { position = p; records } ->
          cursor := p;
          locked_state t (fun () ->
              t.snapshots_served <- t.snapshots_served + 1);
          send_response t conn (Wire.Repl_snapshot { position = p; records })
        | Durable.Records [] -> ()
        | Durable.Records records ->
          let from_position = !cursor in
          cursor := from_position + List.length records;
          locked_state t (fun () ->
              t.records_shipped <- t.records_shipped + List.length records);
          send_response t conn (Wire.Repl_records { from_position; records })
      in
      match
        Obs.Trace.span tr "repl:ship"
          (fun () ->
            let r = ship () in
            Obs.Trace.label tr "replica" replica_id;
            r)
      with
      | Error message ->
        finish_trace ();
        send_response t conn (Wire.Err { code = Wire.Exec_error; message })
      | Ok initial ->
        send_shipment initial;
        finish_trace ();
        let last_beat = ref (Unix.gettimeofday ()) in
        while conn.alive && not t.shutting_down do
          if Durable.position store > !cursor then begin
            (match ship () with
             | Ok shipment -> send_shipment shipment
             | Error message ->
               send_response t conn
                 (Wire.Err { code = Wire.Exec_error; message });
               conn.alive <- false);
            last_beat := Unix.gettimeofday ()
          end
          else begin
            let now = Unix.gettimeofday () in
            if now -. !last_beat >= heartbeat_interval then begin
              send_response t conn
                (Wire.Repl_heartbeat
                   { position = Durable.position store; now = Durable.now store });
              last_beat := now
            end
            else Thread.delay tail_poll_interval
          end
        done)

(* ---------- applying a shipped stream (replica side) ---------- *)

let apply_records t records =
  match t.store with
  | None -> Error "no durable store to apply records to"
  | Some store ->
    Rwlock.with_write t.lock (fun () ->
        List.iter
          (fun record ->
            (* Same discipline as ADVANCE from a client: continuous
               queries see their change events at the exact logical
               times, before the clock physically moves. *)
            (match record with
             | Wal.Advance target
               when Time.is_finite target
                    && Time.(target >= Durable.now store) ->
               Subscription.deliver_until t.subs target
             | _ -> ());
            Durable.apply_record store record)
          records);
    Ok ()

let install_snapshot t ~position records =
  match t.store with
  | None -> Error "no durable store to install a snapshot into"
  | Some store ->
    Rwlock.with_write t.lock (fun () ->
        Durable.reset_to store ~position records);
    Ok ()

(* ---------- connection lifecycle ---------- *)

let drop_subscriptions t conn =
  match conn.owned_subs with
  | [] -> ()
  | names ->
    Rwlock.with_write t.lock (fun () ->
        List.iter (fun name -> ignore (Subscription.unsubscribe t.subs name)) names);
    conn.owned_subs <- []

let close_conn t conn =
  drop_subscriptions t conn;
  conn.alive <- false;
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  locked_state t (fun () ->
      Hashtbl.remove t.conns conn.id;
      Hashtbl.remove t.threads conn.id);
  Metrics.connection_closed t.metrics

let rec serve_conn t conn =
  match Frame.recv conn.fd with
  | exception (Frame.Closed | Frame.Timeout | Unix.Unix_error _) -> ()
  | exception Frame.Oversized len ->
    send_response t conn
      (Wire.Err
         { code = Wire.Proto_error;
           message = Printf.sprintf "frame of %d bytes exceeds max %d" len Wire.max_frame
         });
    Metrics.incr_errors t.metrics
  | payload, bytes ->
    Metrics.add_bytes_in t.metrics bytes;
    let started = Unix.gettimeofday () in
    match Wire.decode_request payload with
    | Ok (Wire.Replicate { replica_id; position; ctx }) when t.store <> None ->
      (* The connection becomes a one-way stream; it never returns to
         request/response. *)
      Metrics.incr_requests t.metrics;
      (match t.store with
       | Some store -> serve_replication t conn store ~replica_id ~position ~ctx
       | None -> ())
    | decoded ->
      let response, keep_going =
        match decoded with
        | Error message ->
          (* The stream may be desynchronised: answer, then close.  A
             peer speaking another protocol version gets the typed
             mismatch (the [Err] layout is stable across versions) so it
             can diagnose rather than guess. *)
          let code =
            match Wire.payload_version payload with
            | Some v when v <> Wire.version -> Wire.Version_mismatch
            | Some _ | None -> Wire.Proto_error
          in
          (Wire.Err { code; message }, false)
        | Ok Wire.Quit -> (Wire.Bye, false)
        | Ok request -> (handle_request t conn request, true)
      in
      Metrics.incr_requests t.metrics;
      (match response with
       | Wire.Err _ -> Metrics.incr_errors t.metrics
       | _ -> ());
      Metrics.observe_latency t.metrics
        ~seconds:(Unix.gettimeofday () -. started);
      send_response t conn response;
      if keep_going && conn.alive && not t.shutting_down then serve_conn t conn

let worker t conn =
  (try serve_conn t conn with _ -> ());
  close_conn t conn

let refuse t fd =
  let conn =
    { id = -1; fd; write_mutex = Mutex.create (); alive = true; owned_subs = [] }
  in
  send_response t conn
    (Wire.Err
       { code = Wire.Overloaded;
         message =
           Printf.sprintf "connection cap %d reached" t.config.max_connections
       });
  Metrics.incr_errors t.metrics;
  (try Unix.close fd with Unix.Unix_error _ -> ())

let rec accept_loop t listen_fd =
  match Unix.accept listen_fd with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop t listen_fd
  | exception Unix.Unix_error _ -> ()  (* listener closed: shutdown *)
  | fd, _ ->
    if t.shutting_down then (try Unix.close fd with Unix.Unix_error _ -> ())
    else begin
      (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
      (* Never let a peer that stopped reading block a worker (or an
         event push holding the write lock) forever. *)
      (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.config.request_timeout
       with Unix.Unix_error _ -> ());
      let accepted =
        locked_state t (fun () ->
            if Hashtbl.length t.conns >= t.config.max_connections then None
            else begin
              t.next_id <- t.next_id + 1;
              let conn =
                { id = t.next_id;
                  fd;
                  write_mutex = Mutex.create ();
                  alive = true;
                  owned_subs = []
                }
              in
              Hashtbl.replace t.conns conn.id conn;
              Some conn
            end)
      in
      (match accepted with
       | None -> refuse t fd
       | Some conn ->
         Metrics.connection_opened t.metrics;
         let thread = Thread.create (fun () -> worker t conn) () in
         locked_state t (fun () -> Hashtbl.replace t.threads conn.id thread));
      accept_loop t listen_fd
    end

let start t =
  if t.acceptor <> None then invalid_arg "Server.start: already started";
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     let addr = Unix.inet_addr_of_string t.config.host in
     Unix.bind fd (Unix.ADDR_INET (addr, t.config.port));
     Unix.listen fd 64
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  (match Unix.getsockname fd with
   | Unix.ADDR_INET (_, p) -> t.bound_port <- Some p
   | Unix.ADDR_UNIX _ -> ());
  t.listen_fd <- Some fd;
  t.acceptor <- Some (Thread.create (fun () -> accept_loop t fd) ())

let wait t =
  match t.acceptor with
  | Some thread -> Thread.join thread
  | None -> ()

let stop t =
  t.shutting_down <- true;
  (match t.listen_fd with
   | Some fd ->
     t.listen_fd <- None;
     (* A plain close does not wake a thread blocked in accept(2);
        shutting the socket down first does (accept fails with EINVAL). *)
     (try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ());
     (try Unix.close fd with Unix.Unix_error _ -> ())
   | None -> ());
  (match t.acceptor with
   | Some thread ->
     t.acceptor <- None;
     Thread.join thread
   | None -> ());
  (* Wake workers blocked reading the next request; in-flight requests
     are executing (not blocked in recv) and drain normally. *)
  let conns = locked_state t (fun () -> Hashtbl.fold (fun _ c acc -> c :: acc) t.conns []) in
  List.iter
    (fun conn ->
      try Unix.shutdown conn.fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
    conns;
  let threads =
    locked_state t (fun () -> Hashtbl.fold (fun _ th acc -> th :: acc) t.threads [])
  in
  List.iter Thread.join threads;
  match t.store with
  | Some store when not t.store_closed ->
    t.store_closed <- true;
    Durable.close store
  | Some _ | None -> ()
