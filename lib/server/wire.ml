open Expirel_core
open Expirel_storage

let version = 8
let max_frame = 16 * 1024 * 1024

type error_code =
  | Parse_error
  | Exec_error
  | Proto_error
  | Timeout
  | Overloaded
  | Shutting_down
  | Version_mismatch
  | Shard_failed
      (* a shard died or answered garbage mid-scatter-gather: the
         distributed query cannot be answered from the surviving rest *)

type event =
  | Row_expired of { subscription : string; row : Value.t list; at : Time.t }
  | Row_appeared of {
      subscription : string;
      row : Value.t list;
      texp : Time.t;
      at : Time.t;
    }
  | Refreshed of { subscription : string; at : Time.t }

type repl_role =
  | Primary
  | Replica

type repl_stats = {
  role : repl_role;
  position : int;
  source_position : int;
  lag_records : int;
  clock_lag : int;
  reconnects : int;
  snapshots : int;
  records_shipped : int;
  followers : int;
}

type stats = {
  connections_total : int;
  connections_active : int;
  requests_total : int;
  errors_total : int;
  bytes_in : int;
  bytes_out : int;
  events_pushed : int;
  tuples_expired : int;
  latency_buckets : (int * int) list;
  repl : repl_stats option;
}

type span = {
  span_name : string;
  span_id : int;
  parent_id : int option;
  start_us : int;
  duration_us : int;
  labels : (string * string) list;
}

type slow_query = {
  statement : string;
  trace_id : string;
      (* the request's trace id, so slow-log entries join against
         TRACES exports *)
  total_us : int;
  spans : span list;
}

type trace_ctx = {
  trace_id : string;
  parent_span : int;
}

type trace_entry = {
  node : string;
  entry_trace_id : string;
  entry_name : string;
  started_at : float;
  entry_total_us : int;
  entry_spans : span list;
}

type health_level =
  | Health_ok
  | Health_degraded
  | Health_critical

type health_firing = {
  rule_name : string;
  observed : float;
  firing_level : health_level;
  rule_help : string;
}

type shard = {
  shard_id : int;
  shard_host : string;
  shard_port : int;
}

type shard_map = {
  map_version : int;
  shards : shard list;
}

type shard_identity = {
  installed_map : shard_map;
  self_id : int;
}

type partition_texp = {
  live_rows : int;
  min_texp : Time.t;
  max_texp : Time.t;
}

(* The one partitioning function both sides of the wire agree on:
   FNV-1a over the value's canonical wire encoding, so any two
   processes speaking v5 route a key to the same shard.  Polymorphic
   [Hashtbl.hash] is deliberately avoided — its result is not part of
   any documented contract. *)
let value_hash v =
  let b = Buffer.create 16 in
  (match v with
   | Value.Null -> Buffer.add_char b '\000'
   | Value.Bool x ->
     Buffer.add_char b '\001';
     Buffer.add_char b (if x then '\001' else '\000')
   | Value.Int n ->
     Buffer.add_char b '\002';
     Buffer.add_int64_be b (Int64.of_int n)
   | Value.Float f ->
     Buffer.add_char b '\003';
     Buffer.add_int64_be b (Int64.bits_of_float f)
   | Value.Str s ->
     Buffer.add_char b '\004';
     Buffer.add_string b s);
  let s = Buffer.contents b in
  let h = ref 0x811c9dc5 in
  String.iter
    (fun ch ->
      h := !h lxor Char.code ch;
      h := !h * 0x01000193 land 0xffffffff)
    s;
  !h

let shard_owner map key =
  match map.shards with
  | [] -> invalid_arg "Wire.shard_owner: empty shard map"
  | shards ->
    let n = List.length shards in
    (List.nth shards (value_hash key mod n)).shard_id

type request =
  | Exec of string
  | Subscribe of { name : string; query : string }
  | Unsubscribe of string
  | Stats
  | Ping
  | Quit
  | Replicate of {
      replica_id : string;
      position : int;
      ctx : trace_ctx option;
    }
  | Metrics
  | Slow_queries of int
  | Exec_traced of { sql : string; ctx : trace_ctx }
  | Trace_recent of int
  | Health
  | Shard_map_req
  | Shard_install of { map : shard_map; self_id : int }
  | Exec_shard of { sql : string; ctx : trace_ctx option }
  | Shard_ping
  | Extract_moving of string
  | Ingest_rows of { table : string; ingest : (Value.t list * Time.t) list }
  | Purge_moved of string
  | Sketch_shard of { sql : string; ctx : trace_ctx option }
      (* evaluate an APPROX_COUNT/SAMPLE query's child locally and reply
         with the folded sketch partial instead of rows *)
  | Agg_shard of { sql : string; ctx : trace_ctx option }
      (* evaluate a grouped aggregate's decomposed child locally and
         reply with expiration-slice partials (Shard_agg) instead of
         rows; AVG travels as SUM + COUNT inside the slices *)
  | Join_shard of {
      sql : string;
      build_table : string;
      build_rows : (Value.t list * Time.t) list;
      ctx : trace_ctx option;
    }
      (* broadcast join: evaluate [sql] with [build_rows] standing in
         for [build_table] (the small side's complete contents) and the
         probe side read from local rows; reply with Shard_rows *)
  | Horizon of string option
      (* the forward expiration forecast — bucketed counts of rows
         expiring within the next Δ ticks, fan-out forecast, churn
         rates; [Some table] restricts to one table *)

type response =
  | Ok_msg of string
  | Rows of {
      columns : string list;
      rows : (Value.t list * Time.t) list;
      texp_e : Time.t;
      recomputed : bool;
    }
  | Err of { code : error_code; message : string }
  | Event of event
  | Stats_reply of stats
  | Pong
  | Bye
  | Repl_snapshot of { position : int; records : Wal.record list }
  | Repl_records of { from_position : int; records : Wal.record list }
  | Repl_heartbeat of { position : int; now : Time.t }
  | Metrics_reply of string
  | Slow_queries_reply of slow_query list
  | Traces_reply of trace_entry list
  | Health_reply of { level : health_level; firing : health_firing list }
  | Shard_map_reply of shard_identity option
  | Shard_rows of {
      shard_id : int;
      partition : partition_texp;
      columns : string list;
      rows : (Value.t list * Time.t) list;
      texp_e : Time.t;
      recomputed : bool;
    }
  | Shard_ack of {
      shard_id : int;
      partition : partition_texp;
      message : string;
    }
  | Shard_pong of {
      shard_id : int;
      pong_map_version : int;
      now : Time.t;
      partition : partition_texp;
    }
  | Moved_rows of (int * (Value.t list * Time.t) list) list
  | Shard_sketch of {
      shard_id : int;
      partition : partition_texp;
      columns : string list;
      payload : string;
          (* an Expirel_sketch.Any.to_string encoding, opaque to the
             wire layer: the coordinator decodes and merges partials *)
    }
  | Shard_agg of {
      shard_id : int;
      partition : partition_texp;
      columns : string list;
      child_texp : Time.t;  (* texp(e) of the shard-local child *)
      groups : Expirel_exec.Partial_agg.group list;
          (* per-group expiration-slice partials; the coordinator
             merges them across shards and finalises once *)
    }
  | Horizon_reply of Expirel_obs.Horizon.report
      (* bucket counts are disjoint row sets, so the coordinator merges
         per-shard replies by bucket-wise addition — exactly *)

(* ---------- writer ---------- *)

let put_u8 b n = Buffer.add_char b (Char.chr (n land 0xff))
let put_bool b v = put_u8 b (if v then 1 else 0)
let put_i64 b n = Buffer.add_int64_be b (Int64.of_int n)

let put_u32 b n =
  put_u8 b (n lsr 24);
  put_u8 b (n lsr 16);
  put_u8 b (n lsr 8);
  put_u8 b n

let put_str b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let put_list b put xs =
  put_u32 b (List.length xs);
  List.iter (put b) xs

let put_time b = function
  | Time.Inf -> put_u8 b 0
  | Time.Fin n ->
    put_u8 b 1;
    put_i64 b n

let put_value b = function
  | Value.Null -> put_u8 b 0
  | Value.Bool v ->
    put_u8 b 1;
    put_bool b v
  | Value.Int n ->
    put_u8 b 2;
    put_i64 b n
  | Value.Float f ->
    put_u8 b 3;
    Buffer.add_int64_be b (Int64.bits_of_float f)
  | Value.Str s ->
    put_u8 b 4;
    put_str b s

let put_row b (values, texp) =
  put_list b put_value values;
  put_time b texp

let code_of_error = function
  | Parse_error -> 1
  | Exec_error -> 2
  | Proto_error -> 3
  | Timeout -> 4
  | Overloaded -> 5
  | Shutting_down -> 6
  | Version_mismatch -> 7
  | Shard_failed -> 8

(* WAL records reuse their durable on-disk encoding (length checks and
   percent-escaping included), framed as an opaque string. *)
let put_record b record = put_str b (Wal.encode record)

let put_event b = function
  | Row_expired { subscription; row; at } ->
    put_u8 b 1;
    put_str b subscription;
    put_list b put_value row;
    put_time b at
  | Row_appeared { subscription; row; texp; at } ->
    put_u8 b 2;
    put_str b subscription;
    put_list b put_value row;
    put_time b texp;
    put_time b at
  | Refreshed { subscription; at } ->
    put_u8 b 3;
    put_str b subscription;
    put_time b at

let put_repl_stats b r =
  put_u8 b
    (match r.role with
     | Primary -> 1
     | Replica -> 2);
  put_i64 b r.position;
  put_i64 b r.source_position;
  put_i64 b r.lag_records;
  put_i64 b r.clock_lag;
  put_i64 b r.reconnects;
  put_i64 b r.snapshots;
  put_i64 b r.records_shipped;
  put_i64 b r.followers

let put_stats b s =
  put_i64 b s.connections_total;
  put_i64 b s.connections_active;
  put_i64 b s.requests_total;
  put_i64 b s.errors_total;
  put_i64 b s.bytes_in;
  put_i64 b s.bytes_out;
  put_i64 b s.events_pushed;
  put_i64 b s.tuples_expired;
  put_list b
    (fun b (bound, count) ->
      put_i64 b bound;
      put_i64 b count)
    s.latency_buckets;
  match s.repl with
  | None -> put_u8 b 0
  | Some r ->
    put_u8 b 1;
    put_repl_stats b r

let payload tag body =
  let b = Buffer.create 64 in
  put_u8 b version;
  put_u8 b tag;
  body b;
  Buffer.contents b

let put_f64 b f = Buffer.add_int64_be b (Int64.bits_of_float f)

let put_ctx b { trace_id; parent_span } =
  put_str b trace_id;
  put_i64 b parent_span

let put_ctx_opt b = function
  | None -> put_u8 b 0
  | Some ctx ->
    put_u8 b 1;
    put_ctx b ctx

let put_shard b s =
  put_i64 b s.shard_id;
  put_str b s.shard_host;
  put_i64 b s.shard_port

let put_shard_map b m =
  put_i64 b m.map_version;
  put_list b put_shard m.shards

let put_partition b p =
  put_i64 b p.live_rows;
  put_time b p.min_texp;
  put_time b p.max_texp

let put_slice b (s : Expirel_exec.Partial_agg.slice) =
  put_time b s.s_texp;
  put_i64 b s.s_rows;
  put_i64 b s.s_nonnull;
  put_value b s.s_sum;
  put_f64 b s.s_fsum;
  put_value b s.s_min;
  put_value b s.s_max

let put_group b (g : Expirel_exec.Partial_agg.group) =
  put_list b put_value g.key;
  put_list b put_slice g.slices

let encode_request = function
  | Exec sql -> payload 1 (fun b -> put_str b sql)
  | Subscribe { name; query } ->
    payload 2 (fun b ->
        put_str b name;
        put_str b query)
  | Unsubscribe name -> payload 3 (fun b -> put_str b name)
  | Stats -> payload 4 ignore
  | Ping -> payload 5 ignore
  | Quit -> payload 6 ignore
  | Replicate { replica_id; position; ctx } ->
    payload 7 (fun b ->
        put_str b replica_id;
        put_i64 b position;
        put_ctx_opt b ctx)
  | Metrics -> payload 8 ignore
  | Slow_queries n -> payload 9 (fun b -> put_i64 b n)
  | Exec_traced { sql; ctx } ->
    payload 10 (fun b ->
        put_str b sql;
        put_ctx b ctx)
  | Trace_recent n -> payload 11 (fun b -> put_i64 b n)
  | Health -> payload 12 ignore
  | Shard_map_req -> payload 13 ignore
  | Shard_install { map; self_id } ->
    payload 14 (fun b ->
        put_shard_map b map;
        put_i64 b self_id)
  | Exec_shard { sql; ctx } ->
    payload 15 (fun b ->
        put_str b sql;
        put_ctx_opt b ctx)
  | Shard_ping -> payload 16 ignore
  | Extract_moving table -> payload 17 (fun b -> put_str b table)
  | Ingest_rows { table; ingest } ->
    payload 18 (fun b ->
        put_str b table;
        put_list b put_row ingest)
  | Purge_moved table -> payload 19 (fun b -> put_str b table)
  | Sketch_shard { sql; ctx } ->
    payload 20 (fun b ->
        put_str b sql;
        put_ctx_opt b ctx)
  | Agg_shard { sql; ctx } ->
    payload 21 (fun b ->
        put_str b sql;
        put_ctx_opt b ctx)
  | Join_shard { sql; build_table; build_rows; ctx } ->
    payload 22 (fun b ->
        put_str b sql;
        put_str b build_table;
        put_list b put_row build_rows;
        put_ctx_opt b ctx)
  | Horizon table ->
    payload 23 (fun b ->
        match table with
        | None -> put_u8 b 0
        | Some t ->
          put_u8 b 1;
          put_str b t)

let put_span b s =
  put_str b s.span_name;
  put_i64 b s.span_id;
  (match s.parent_id with
   | None -> put_u8 b 0
   | Some p ->
     put_u8 b 1;
     put_i64 b p);
  put_i64 b s.start_us;
  put_i64 b s.duration_us;
  put_list b
    (fun b (k, v) ->
      put_str b k;
      put_str b v)
    s.labels

let put_slow_query b q =
  put_str b q.statement;
  put_str b q.trace_id;
  put_i64 b q.total_us;
  put_list b put_span q.spans

let put_horizon_table b (tb : Expirel_obs.Horizon.table) =
  put_str b tb.name;
  put_list b put_i64 (Array.to_list tb.bounds);
  put_list b put_i64 (Array.to_list tb.counts)

let put_horizon b (r : Expirel_obs.Horizon.report) =
  put_i64 b r.now;
  put_i64 b r.window;
  put_i64 b r.fanout_events;
  put_f64 b r.arrival_rate;
  put_f64 b r.expiration_rate;
  put_list b put_horizon_table r.tables

let encode_response = function
  | Ok_msg m -> payload 1 (fun b -> put_str b m)
  | Rows { columns; rows; texp_e; recomputed } ->
    payload 2 (fun b ->
        put_list b put_str columns;
        put_list b put_row rows;
        put_time b texp_e;
        put_bool b recomputed)
  | Err { code; message } ->
    payload 3 (fun b ->
        put_u8 b (code_of_error code);
        put_str b message)
  | Event e -> payload 4 (fun b -> put_event b e)
  | Stats_reply s -> payload 5 (fun b -> put_stats b s)
  | Pong -> payload 6 ignore
  | Bye -> payload 7 ignore
  | Repl_snapshot { position; records } ->
    payload 8 (fun b ->
        put_i64 b position;
        put_list b put_record records)
  | Repl_records { from_position; records } ->
    payload 9 (fun b ->
        put_i64 b from_position;
        put_list b put_record records)
  | Repl_heartbeat { position; now } ->
    payload 10 (fun b ->
        put_i64 b position;
        put_time b now)
  | Metrics_reply text -> payload 11 (fun b -> put_str b text)
  | Slow_queries_reply qs -> payload 12 (fun b -> put_list b put_slow_query qs)
  | Traces_reply entries ->
    payload 13 (fun b ->
        put_list b
          (fun b e ->
            put_str b e.node;
            put_str b e.entry_trace_id;
            put_str b e.entry_name;
            put_f64 b e.started_at;
            put_i64 b e.entry_total_us;
            put_list b put_span e.entry_spans)
          entries)
  | Health_reply { level; firing } ->
    payload 14 (fun b ->
        put_u8 b
          (match level with
           | Health_ok -> 1
           | Health_degraded -> 2
           | Health_critical -> 3);
        put_list b
          (fun b f ->
            put_str b f.rule_name;
            put_f64 b f.observed;
            put_u8 b
              (match f.firing_level with
               | Health_ok -> 1
               | Health_degraded -> 2
               | Health_critical -> 3);
            put_str b f.rule_help)
          firing)
  | Shard_map_reply identity ->
    payload 15 (fun b ->
        match identity with
        | None -> put_u8 b 0
        | Some { installed_map; self_id } ->
          put_u8 b 1;
          put_shard_map b installed_map;
          put_i64 b self_id)
  | Shard_rows { shard_id; partition; columns; rows; texp_e; recomputed } ->
    payload 16 (fun b ->
        put_i64 b shard_id;
        put_partition b partition;
        put_list b put_str columns;
        put_list b put_row rows;
        put_time b texp_e;
        put_bool b recomputed)
  | Shard_ack { shard_id; partition; message } ->
    payload 17 (fun b ->
        put_i64 b shard_id;
        put_partition b partition;
        put_str b message)
  | Shard_pong { shard_id; pong_map_version; now; partition } ->
    payload 18 (fun b ->
        put_i64 b shard_id;
        put_i64 b pong_map_version;
        put_time b now;
        put_partition b partition)
  | Moved_rows moves ->
    payload 19 (fun b ->
        put_list b
          (fun b (owner, rows) ->
            put_i64 b owner;
            put_list b put_row rows)
          moves)
  | Shard_sketch { shard_id; partition; columns; payload = sketch } ->
    payload 20 (fun b ->
        put_i64 b shard_id;
        put_partition b partition;
        put_list b put_str columns;
        put_str b sketch)
  | Shard_agg { shard_id; partition; columns; child_texp; groups } ->
    payload 21 (fun b ->
        put_i64 b shard_id;
        put_partition b partition;
        put_list b put_str columns;
        put_time b child_texp;
        put_list b put_group groups)
  | Horizon_reply report -> payload 22 (fun b -> put_horizon b report)

(* ---------- reader ---------- *)

(* Decoders walk the payload with a cursor and abort through [Bad]; the
   single catch site turns it into [Error _], so no input can raise. *)
exception Bad of string

type cursor = {
  data : string;
  mutable pos : int;
}

let need c n =
  if n < 0 || c.pos + n > String.length c.data then
    raise (Bad "truncated payload")

let get_u8 c =
  need c 1;
  let n = Char.code c.data.[c.pos] in
  c.pos <- c.pos + 1;
  n

let get_bool c =
  match get_u8 c with
  | 0 -> false
  | 1 -> true
  | n -> raise (Bad (Printf.sprintf "bad boolean byte %d" n))

let get_i64 c =
  need c 8;
  let n = Int64.to_int (String.get_int64_be c.data c.pos) in
  c.pos <- c.pos + 8;
  n

let get_u32 c =
  need c 4;
  let byte i = Char.code c.data.[c.pos + i] in
  let n = (byte 0 lsl 24) lor (byte 1 lsl 16) lor (byte 2 lsl 8) lor byte 3 in
  c.pos <- c.pos + 4;
  n

let get_str c =
  let len = get_u32 c in
  need c len;
  let s = String.sub c.data c.pos len in
  c.pos <- c.pos + len;
  s

let get_list c get =
  let n = get_u32 c in
  (* Each element consumes at least one byte, so a count beyond the
     remaining bytes is hostile; reject before allocating. *)
  need c n;
  List.init n (fun _ -> get c)

let get_time c =
  match get_u8 c with
  | 0 -> Time.Inf
  | 1 -> Time.Fin (get_i64 c)
  | n -> raise (Bad (Printf.sprintf "bad time tag %d" n))

let get_value c =
  match get_u8 c with
  | 0 -> Value.Null
  | 1 -> Value.Bool (get_bool c)
  | 2 -> Value.Int (get_i64 c)
  | 3 ->
    need c 8;
    let f = Int64.float_of_bits (String.get_int64_be c.data c.pos) in
    c.pos <- c.pos + 8;
    Value.Float f
  | 4 -> Value.Str (get_str c)
  | n -> raise (Bad (Printf.sprintf "bad value tag %d" n))

let get_row c =
  let values = get_list c get_value in
  let texp = get_time c in
  (values, texp)

let error_of_code = function
  | 1 -> Parse_error
  | 2 -> Exec_error
  | 3 -> Proto_error
  | 4 -> Timeout
  | 5 -> Overloaded
  | 6 -> Shutting_down
  | 7 -> Version_mismatch
  | 8 -> Shard_failed
  | n -> raise (Bad (Printf.sprintf "bad error code %d" n))

let get_record c =
  let line = get_str c in
  match Wal.decode line with
  | Ok record -> record
  | Error reason -> raise (Bad ("bad wal record: " ^ reason))

let get_event c =
  match get_u8 c with
  | 1 ->
    let subscription = get_str c in
    let row = get_list c get_value in
    let at = get_time c in
    Row_expired { subscription; row; at }
  | 2 ->
    let subscription = get_str c in
    let row = get_list c get_value in
    let texp = get_time c in
    let at = get_time c in
    Row_appeared { subscription; row; texp; at }
  | 3 ->
    let subscription = get_str c in
    let at = get_time c in
    Refreshed { subscription; at }
  | n -> raise (Bad (Printf.sprintf "bad event tag %d" n))

let get_repl_stats c =
  let role =
    match get_u8 c with
    | 1 -> Primary
    | 2 -> Replica
    | n -> raise (Bad (Printf.sprintf "bad replication role %d" n))
  in
  let position = get_i64 c in
  let source_position = get_i64 c in
  let lag_records = get_i64 c in
  let clock_lag = get_i64 c in
  let reconnects = get_i64 c in
  let snapshots = get_i64 c in
  let records_shipped = get_i64 c in
  let followers = get_i64 c in
  { role;
    position;
    source_position;
    lag_records;
    clock_lag;
    reconnects;
    snapshots;
    records_shipped;
    followers
  }

let get_stats c =
  let connections_total = get_i64 c in
  let connections_active = get_i64 c in
  let requests_total = get_i64 c in
  let errors_total = get_i64 c in
  let bytes_in = get_i64 c in
  let bytes_out = get_i64 c in
  let events_pushed = get_i64 c in
  let tuples_expired = get_i64 c in
  let latency_buckets =
    get_list c (fun c ->
        let bound = get_i64 c in
        let count = get_i64 c in
        (bound, count))
  in
  let repl =
    match get_u8 c with
    | 0 -> None
    | 1 -> Some (get_repl_stats c)
    | n -> raise (Bad (Printf.sprintf "bad repl-stats presence byte %d" n))
  in
  { connections_total;
    connections_active;
    requests_total;
    errors_total;
    bytes_in;
    bytes_out;
    events_pushed;
    tuples_expired;
    latency_buckets;
    repl
  }

let payload_version data = if data = "" then None else Some (Char.code data.[0])

let decode ~what ~by data =
  let c = { data; pos = 0 } in
  match
    let v = get_u8 c in
    if v <> version then
      raise (Bad (Printf.sprintf "protocol version %d, expected %d" v version));
    let tag = get_u8 c in
    let msg = by c tag in
    if c.pos <> String.length data then raise (Bad "trailing garbage");
    msg
  with
  | msg -> Ok msg
  | exception Bad reason -> Error (Printf.sprintf "bad %s: %s" what reason)

let get_f64 c =
  need c 8;
  let f = Int64.float_of_bits (String.get_int64_be c.data c.pos) in
  c.pos <- c.pos + 8;
  f

let get_ctx c =
  let trace_id = get_str c in
  let parent_span = get_i64 c in
  { trace_id; parent_span }

let get_ctx_opt c =
  match get_u8 c with
  | 0 -> None
  | 1 -> Some (get_ctx c)
  | n -> raise (Bad (Printf.sprintf "bad trace-context presence byte %d" n))

let get_shard c =
  let shard_id = get_i64 c in
  let shard_host = get_str c in
  let shard_port = get_i64 c in
  { shard_id; shard_host; shard_port }

let get_shard_map c =
  let map_version = get_i64 c in
  let shards = get_list c get_shard in
  { map_version; shards }

let get_partition c =
  let live_rows = get_i64 c in
  let min_texp = get_time c in
  let max_texp = get_time c in
  { live_rows; min_texp; max_texp }

let get_slice c : Expirel_exec.Partial_agg.slice =
  let s_texp = get_time c in
  let s_rows = get_i64 c in
  let s_nonnull = get_i64 c in
  let s_sum = get_value c in
  let s_fsum = get_f64 c in
  let s_min = get_value c in
  let s_max = get_value c in
  { s_texp; s_rows; s_nonnull; s_sum; s_fsum; s_min; s_max }

let get_group c : Expirel_exec.Partial_agg.group =
  let key = get_list c get_value in
  let slices = get_list c get_slice in
  { key; slices }

let decode_request data =
  decode ~what:"request" data ~by:(fun c -> function
    | 1 -> Exec (get_str c)
    | 2 ->
      let name = get_str c in
      let query = get_str c in
      Subscribe { name; query }
    | 3 -> Unsubscribe (get_str c)
    | 4 -> Stats
    | 5 -> Ping
    | 6 -> Quit
    | 7 ->
      let replica_id = get_str c in
      let position = get_i64 c in
      let ctx = get_ctx_opt c in
      Replicate { replica_id; position; ctx }
    | 8 -> Metrics
    | 9 -> Slow_queries (get_i64 c)
    | 10 ->
      let sql = get_str c in
      let ctx = get_ctx c in
      Exec_traced { sql; ctx }
    | 11 -> Trace_recent (get_i64 c)
    | 12 -> Health
    | 13 -> Shard_map_req
    | 14 ->
      let map = get_shard_map c in
      let self_id = get_i64 c in
      Shard_install { map; self_id }
    | 15 ->
      let sql = get_str c in
      let ctx = get_ctx_opt c in
      Exec_shard { sql; ctx }
    | 16 -> Shard_ping
    | 17 -> Extract_moving (get_str c)
    | 18 ->
      let table = get_str c in
      let ingest = get_list c get_row in
      Ingest_rows { table; ingest }
    | 19 -> Purge_moved (get_str c)
    | 20 ->
      let sql = get_str c in
      let ctx = get_ctx_opt c in
      Sketch_shard { sql; ctx }
    | 21 ->
      let sql = get_str c in
      let ctx = get_ctx_opt c in
      Agg_shard { sql; ctx }
    | 22 ->
      let sql = get_str c in
      let build_table = get_str c in
      let build_rows = get_list c get_row in
      let ctx = get_ctx_opt c in
      Join_shard { sql; build_table; build_rows; ctx }
    | 23 ->
      (match get_u8 c with
       | 0 -> Horizon None
       | 1 -> Horizon (Some (get_str c))
       | n -> raise (Bad (Printf.sprintf "bad table presence byte %d" n)))
    | n -> raise (Bad (Printf.sprintf "unknown request tag %d" n)))

let get_span c =
  let span_name = get_str c in
  let span_id = get_i64 c in
  let parent_id =
    match get_u8 c with
    | 0 -> None
    | 1 -> Some (get_i64 c)
    | n -> raise (Bad (Printf.sprintf "bad span-parent presence byte %d" n))
  in
  let start_us = get_i64 c in
  let duration_us = get_i64 c in
  let labels =
    get_list c (fun c ->
        let k = get_str c in
        let v = get_str c in
        (k, v))
  in
  { span_name; span_id; parent_id; start_us; duration_us; labels }

let get_slow_query c =
  let statement = get_str c in
  let trace_id = get_str c in
  let total_us = get_i64 c in
  let spans = get_list c get_span in
  { statement; trace_id; total_us; spans }

let get_horizon_table c : Expirel_obs.Horizon.table =
  let name = get_str c in
  let bounds = Array.of_list (get_list c get_i64) in
  let counts = Array.of_list (get_list c get_i64) in
  if Array.length bounds <> Array.length counts then
    raise (Bad "horizon bucket arrays differ in length");
  { name; bounds; counts }

let get_horizon c : Expirel_obs.Horizon.report =
  let now = get_i64 c in
  let window = get_i64 c in
  let fanout_events = get_i64 c in
  let arrival_rate = get_f64 c in
  let expiration_rate = get_f64 c in
  let tables = get_list c get_horizon_table in
  { now; window; fanout_events; arrival_rate; expiration_rate; tables }

let get_health_level c =
  match get_u8 c with
  | 1 -> Health_ok
  | 2 -> Health_degraded
  | 3 -> Health_critical
  | n -> raise (Bad (Printf.sprintf "bad health level %d" n))

let decode_response data =
  decode ~what:"response" data ~by:(fun c -> function
    | 1 -> Ok_msg (get_str c)
    | 2 ->
      let columns = get_list c get_str in
      let rows = get_list c get_row in
      let texp_e = get_time c in
      let recomputed = get_bool c in
      Rows { columns; rows; texp_e; recomputed }
    | 3 ->
      let code = error_of_code (get_u8 c) in
      let message = get_str c in
      Err { code; message }
    | 4 -> Event (get_event c)
    | 5 -> Stats_reply (get_stats c)
    | 6 -> Pong
    | 7 -> Bye
    | 8 ->
      let position = get_i64 c in
      let records = get_list c get_record in
      Repl_snapshot { position; records }
    | 9 ->
      let from_position = get_i64 c in
      let records = get_list c get_record in
      Repl_records { from_position; records }
    | 10 ->
      let position = get_i64 c in
      let now = get_time c in
      Repl_heartbeat { position; now }
    | 11 -> Metrics_reply (get_str c)
    | 12 -> Slow_queries_reply (get_list c get_slow_query)
    | 13 ->
      Traces_reply
        (get_list c (fun c ->
             let node = get_str c in
             let entry_trace_id = get_str c in
             let entry_name = get_str c in
             let started_at = get_f64 c in
             let entry_total_us = get_i64 c in
             let entry_spans = get_list c get_span in
             { node; entry_trace_id; entry_name; started_at;
               entry_total_us; entry_spans }))
    | 14 ->
      let level = get_health_level c in
      let firing =
        get_list c (fun c ->
            let rule_name = get_str c in
            let observed = get_f64 c in
            let firing_level = get_health_level c in
            let rule_help = get_str c in
            { rule_name; observed; firing_level; rule_help })
      in
      Health_reply { level; firing }
    | 15 ->
      (match get_u8 c with
       | 0 -> Shard_map_reply None
       | 1 ->
         let installed_map = get_shard_map c in
         let self_id = get_i64 c in
         Shard_map_reply (Some { installed_map; self_id })
       | n -> raise (Bad (Printf.sprintf "bad shard-map presence byte %d" n)))
    | 16 ->
      let shard_id = get_i64 c in
      let partition = get_partition c in
      let columns = get_list c get_str in
      let rows = get_list c get_row in
      let texp_e = get_time c in
      let recomputed = get_bool c in
      Shard_rows { shard_id; partition; columns; rows; texp_e; recomputed }
    | 17 ->
      let shard_id = get_i64 c in
      let partition = get_partition c in
      let message = get_str c in
      Shard_ack { shard_id; partition; message }
    | 18 ->
      let shard_id = get_i64 c in
      let pong_map_version = get_i64 c in
      let now = get_time c in
      let partition = get_partition c in
      Shard_pong { shard_id; pong_map_version; now; partition }
    | 19 ->
      Moved_rows
        (get_list c (fun c ->
             let owner = get_i64 c in
             let rows = get_list c get_row in
             (owner, rows)))
    | 20 ->
      let shard_id = get_i64 c in
      let partition = get_partition c in
      let columns = get_list c get_str in
      let payload = get_str c in
      Shard_sketch { shard_id; partition; columns; payload }
    | 21 ->
      let shard_id = get_i64 c in
      let partition = get_partition c in
      let columns = get_list c get_str in
      let child_texp = get_time c in
      let groups = get_list c get_group in
      Shard_agg { shard_id; partition; columns; child_texp; groups }
    | 22 -> Horizon_reply (get_horizon c)
    | n -> raise (Bad (Printf.sprintf "unknown response tag %d" n)))

(* ---------- framing ---------- *)

let frame body =
  let b = Buffer.create (String.length body + 4) in
  put_u32 b (String.length body);
  Buffer.add_string b body;
  Buffer.contents b

type extracted =
  | Incomplete
  | Frame of { payload : string; consumed : int }
  | Malformed of string

let extract ?(pos = 0) data =
  let remaining = String.length data - pos in
  if pos < 0 then Malformed "negative position"
  else if remaining < 4 then Incomplete
  else begin
    let byte i = Char.code data.[pos + i] in
    let len = (byte 0 lsl 24) lor (byte 1 lsl 16) lor (byte 2 lsl 8) lor byte 3 in
    if len > max_frame then
      Malformed (Printf.sprintf "length prefix %d exceeds max frame %d" len max_frame)
    else if remaining - 4 < len then Incomplete
    else Frame { payload = String.sub data (pos + 4) len; consumed = 4 + len }
  end

(* ---------- rendering ---------- *)

let error_code_label = function
  | Parse_error -> "parse error"
  | Exec_error -> "error"
  | Proto_error -> "protocol error"
  | Timeout -> "timeout"
  | Overloaded -> "overloaded"
  | Shutting_down -> "shutting down"
  | Version_mismatch -> "version mismatch"
  | Shard_failed -> "shard failed"

let row_string values =
  "<" ^ String.concat ", " (List.map Value.to_string values) ^ ">"

let rec pp_response ppf = function
  | Ok_msg m -> Format.pp_print_string ppf m
  | Rows { columns; rows; texp_e; recomputed } ->
    Format.fprintf ppf "texp | %s" (String.concat ", " columns);
    List.iter
      (fun (values, texp) ->
        Format.fprintf ppf "@\n%4s | %s" (Time.to_string texp)
          (String.concat ", " (List.map Value.to_string values)))
      rows;
    Format.fprintf ppf "@\n(%d row(s), texp(e) = %s%s)" (List.length rows)
      (Time.to_string texp_e)
      (if recomputed then ", view recomputed" else "")
  | Err { code; message } ->
    Format.fprintf ppf "%s: %s" (error_code_label code) message
  | Event (Row_expired { subscription; row; at }) ->
    Format.fprintf ppf "[%s] row expired at %s: %s" subscription
      (Time.to_string at) (row_string row)
  | Event (Row_appeared { subscription; row; texp; at }) ->
    Format.fprintf ppf "[%s] row appeared at %s (texp %s): %s" subscription
      (Time.to_string at) (Time.to_string texp) (row_string row)
  | Event (Refreshed { subscription; at }) ->
    Format.fprintf ppf "[%s] refreshed at %s" subscription (Time.to_string at)
  | Stats_reply s ->
    Format.fprintf ppf
      "connections: %d active / %d total@\n\
       requests: %d (%d error(s))@\n\
       bytes: %d in, %d out@\n\
       events pushed: %d@\n\
       tuples expired: %d@\nlatency:"
      s.connections_active s.connections_total s.requests_total s.errors_total
      s.bytes_in s.bytes_out s.events_pushed s.tuples_expired;
    List.iter
      (fun (bound, count) ->
        if count > 0 then
          if bound = max_int then Format.fprintf ppf "@\n  >last      %8d" count
          else Format.fprintf ppf "@\n  <=%-7dus %8d" bound count)
      s.latency_buckets;
    (match s.repl with
     | None -> ()
     | Some r ->
       Format.fprintf ppf
         "@\nreplication: %s at position %d (source %d, lag %d record(s), \
          %d tick(s))@\n\
          reconnects: %d, snapshots: %d, records: %d, followers: %d"
         (match r.role with
          | Primary -> "primary"
          | Replica -> "replica")
         r.position r.source_position r.lag_records r.clock_lag r.reconnects
         r.snapshots r.records_shipped r.followers)
  | Pong -> Format.pp_print_string ppf "pong"
  | Bye -> Format.pp_print_string ppf "bye"
  | Repl_snapshot { position; records } ->
    Format.fprintf ppf "snapshot at position %d (%d record(s))" position
      (List.length records)
  | Repl_records { from_position; records } ->
    Format.fprintf ppf "records (%d, %d]" from_position
      (from_position + List.length records)
  | Repl_heartbeat { position; now } ->
    Format.fprintf ppf "heartbeat: position %d, now %s" position
      (Time.to_string now)
  | Metrics_reply text ->
    (* Prometheus text is already line-oriented; print as-is, without a
       trailing blank line. *)
    Format.pp_print_string ppf
      (if String.length text > 0 && text.[String.length text - 1] = '\n' then
         String.sub text 0 (String.length text - 1)
       else text)
  | Slow_queries_reply qs ->
    Format.fprintf ppf "%d slow quer%s" (List.length qs)
      (if List.length qs = 1 then "y" else "ies");
    List.iter
      (fun q ->
        Format.fprintf ppf "@\n%8dus  %s  [trace %s]" q.total_us q.statement
          q.trace_id;
        List.iter
          (fun s ->
            Format.fprintf ppf "@\n            %s +%dus for %dus%s"
              s.span_name s.start_us s.duration_us
              (match s.labels with
               | [] -> ""
               | ls ->
                 " ["
                 ^ String.concat ", "
                     (List.map (fun (k, v) -> k ^ "=" ^ v) ls)
                 ^ "]"))
          q.spans)
      qs
  | Traces_reply entries ->
    Format.fprintf ppf "%d trace(s)" (List.length entries);
    List.iter
      (fun e ->
        Format.fprintf ppf "@\n%s %s %8dus  %s" e.entry_trace_id e.node
          e.entry_total_us e.entry_name;
        List.iter
          (fun s ->
            Format.fprintf ppf "@\n  #%d%s %s +%dus for %dus%s" s.span_id
              (match s.parent_id with
               | Some p -> Printf.sprintf " (in #%d)" p
               | None -> "")
              s.span_name s.start_us s.duration_us
              (match s.labels with
               | [] -> ""
               | ls ->
                 " ["
                 ^ String.concat ", "
                     (List.map (fun (k, v) -> k ^ "=" ^ v) ls)
                 ^ "]"))
          e.entry_spans)
      entries
  | Health_reply { level; firing } ->
    Format.fprintf ppf "health: %s"
      (match level with
       | Health_ok -> "ok"
       | Health_degraded -> "degraded"
       | Health_critical -> "critical");
    List.iter
      (fun f ->
        Format.fprintf ppf "@\n  [%s] %s = %g — %s"
          (match f.firing_level with
           | Health_ok -> "ok"
           | Health_degraded -> "degraded"
           | Health_critical -> "critical")
          f.rule_name f.observed f.rule_help)
      firing
  | Shard_map_reply None -> Format.pp_print_string ppf "no shard map installed"
  | Shard_map_reply (Some { installed_map; self_id }) ->
    Format.fprintf ppf "shard map v%d, self = shard %d"
      installed_map.map_version self_id;
    List.iter
      (fun s ->
        Format.fprintf ppf "@\n  shard %d at %s:%d" s.shard_id s.shard_host
          s.shard_port)
      installed_map.shards
  | Shard_rows { shard_id; partition; columns; rows; texp_e; recomputed } ->
    pp_response ppf (Rows { columns; rows; texp_e; recomputed });
    Format.fprintf ppf "@\n[shard %d: %d live row(s), texp in [%s, %s]]"
      shard_id partition.live_rows
      (Time.to_string partition.min_texp)
      (Time.to_string partition.max_texp)
  | Shard_ack { shard_id; partition; message } ->
    Format.fprintf ppf "%s@\n[shard %d: %d live row(s), texp in [%s, %s]]"
      message shard_id partition.live_rows
      (Time.to_string partition.min_texp)
      (Time.to_string partition.max_texp)
  | Shard_pong { shard_id; pong_map_version; now; partition } ->
    Format.fprintf ppf
      "shard %d: map v%d, now %s, %d live row(s), texp in [%s, %s]" shard_id
      pong_map_version (Time.to_string now) partition.live_rows
      (Time.to_string partition.min_texp)
      (Time.to_string partition.max_texp)
  | Moved_rows moves ->
    Format.fprintf ppf "%d destination shard(s)" (List.length moves);
    List.iter
      (fun (owner, rows) ->
        Format.fprintf ppf "@\n  shard %d: %d row(s)" owner (List.length rows))
      moves
  | Shard_sketch { shard_id; partition; columns; payload } ->
    Format.fprintf ppf
      "sketch partial from shard %d (%d byte(s), columns %s)@\n\
       [shard %d: %d live row(s), texp in [%s, %s]]"
      shard_id (String.length payload)
      (String.concat ", " columns)
      shard_id partition.live_rows
      (Time.to_string partition.min_texp)
      (Time.to_string partition.max_texp)
  | Shard_agg { shard_id; partition; columns; child_texp; groups } ->
    Format.fprintf ppf
      "aggregate partial from shard %d (%d group(s), columns %s, child \
       texp(e) = %s)@\n\
       [shard %d: %d live row(s), texp in [%s, %s]]"
      shard_id (List.length groups)
      (String.concat ", " columns)
      (Time.to_string child_texp)
      shard_id partition.live_rows
      (Time.to_string partition.min_texp)
      (Time.to_string partition.max_texp)
  | Horizon_reply report ->
    Format.pp_print_string ppf (Expirel_obs.Horizon.render report)

let render_response r = Format.asprintf "%a" pp_response r
