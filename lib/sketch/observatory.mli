(** Process-wide sketch observability.

    Executors record the memory footprint and live estimate of every
    sketch they evaluate, keyed by the sketch's display name (e.g.
    ["approx_count(0.05)"]); the server's Prometheus registry polls
    {!snapshot} into the [expirel_sketch_memory_bytes] and
    [expirel_sketch_live_estimate] gauge families.  Thread-safe. *)

val record : name:string -> memory_bytes:int -> estimate:float -> unit
(** Last-write-wins per name. *)

val snapshot : unit -> (string * (int * float)) list
(** [(name, (memory_bytes, live_estimate))], sorted by name. *)

val reset : unit -> unit
(** Forget everything (tests). *)
