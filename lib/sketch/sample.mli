(** Uniform random sample over the live elements of an expiring stream.

    Priority sampling generalised to per-element expiration: every
    element draws an i.i.d. priority in [0,1), and an element is worth
    keeping exactly when fewer than [k] elements expiring no earlier
    than it have smaller priorities — at any query time [tau] the [k]
    smallest-priority live elements are then all still resident, and
    they form an exactly uniform [k]-subset of the live set.  Expired
    slots are lazily evicted; the backing structure holds the
    priority-by-texp skyline, expected O(k log n) entries. *)

open Expirel_core

type t

val create : ?seed:int -> k:int -> unit -> t
(** [seed] fixes the priority stream (tests); the default
    self-initialises.
    @raise Invalid_argument when [k < 1]. *)

val k : t -> int

val added : t -> int
(** Elements ever offered to the sketch. *)

val size : t -> int
(** Candidate entries currently resident (the memory knob). *)

val add : t -> Value.t list -> texp:Time.t -> unit
(** Offer one element (a row) that expires at [texp]. *)

val add_with_priority : t -> Value.t list -> texp:Time.t -> prio:float -> unit
(** Deterministic variant used by the property tests: the caller
    supplies the priority that {!add} would have drawn. *)

val compact : t -> unit
(** Drop entries that can never again be among the [k] smallest-priority
    live elements (it otherwise runs amortised). *)

val evict : t -> now:Time.t -> unit
(** Lazily drop entries already expired at [now]; they cannot appear in
    any query with [tau >= now]. *)

val query : t -> tau:Time.t -> (Value.t list * Time.t) list
(** The sample of the live-at-[tau] elements: the [k] live entries with
    the smallest priorities (all of them when fewer than [k] are live),
    in priority order, each with its own [texp].  Never returns an
    expired element. *)

val horizon : t -> tau:Time.t -> Time.t
(** Earliest time strictly after [tau] at which the sample changes: the
    soonest expiration among the sampled elements ([Inf] when the
    sample is empty). *)

val merge : t -> t -> t
(** Shard-decomposability: merging preserves priorities, so the merged
    sketch is {e identical} to the sketch of the concatenated streams
    (the property tests pin this exactly).  Inputs are not mutated.
    @raise Invalid_argument when the [k]s differ. *)

val entries : t -> (Value.t list * Time.t * float) list
(** The resident candidate set with priorities (tests/debugging). *)

val memory_bytes : t -> int
val to_string : t -> string
(** A deserialised sketch draws fresh priorities for future {!add}s. *)

val of_string : string -> (t, string) result
