(* The expiration-axis exponential histogram.

   Each bucket covers a closed texp span [lo, hi]: every element in it
   expires within the span, and some element expires exactly at [hi]
   (the witness — buckets are created as singletons and only ever merge
   or absorb interior elements, so the witness survives).  Every bucket
   is charged independently at query time: dead below [tau], live in
   full when [lo > tau], and a straddler otherwise, contributing
   between 1 (its witness) and its whole count — hence the hard bound
   [estimate = (c+1)/2] per straddler with [within = (c-1)/2].  A
   single add stream keeps spans disjoint (at most one straddler);
   merged sketches interleave spans and their bounds simply add. *)

(*

   Compression merges adjacent buckets, newest first, while the merged
   count stays under [max 1 (2ε · count above)] — the EH cap that keeps
   the straddler small relative to the provably-live suffix, giving
   O(ε⁻¹ log n) buckets and [within <= ε·live + 1] on in-order
   streams. *)

open Expirel_core

type bucket = {
  mutable lo : Time.t;
  mutable hi : Time.t;
  mutable count : int;
}

type t = {
  eps : float;
  mutable buckets : bucket array;  (* prefix [0, len) in use; sorted, disjoint *)
  mutable len : int;
  mutable total : int;
  mutable compress_at : int;
}

let min_capacity = 64
let fresh_bucket () = { lo = Time.zero; hi = Time.zero; count = 0 }

let create ~epsilon =
  if not (epsilon > 0. && epsilon < 1.) then
    invalid_arg "Counter.create: epsilon must be in (0, 1)";
  { eps = epsilon;
    buckets = Array.init min_capacity (fun _ -> fresh_bucket ());
    len = 0;
    total = 0;
    compress_at = min_capacity
  }

let epsilon t = t.eps
let total t = t.total
let buckets t = t.len

(* First index in [0, len) whose [hi] is [>= texp] ([len] when none). *)
let lower_bound t texp =
  let lo = ref 0 and hi = ref t.len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Time.(t.buckets.(mid).hi >= texp) then hi := mid else lo := mid + 1
  done;
  !lo

let ensure_room t =
  if t.len = Array.length t.buckets then
    t.buckets <-
      Array.init
        (2 * Array.length t.buckets)
        (fun i -> if i < t.len then t.buckets.(i) else fresh_bucket ())

let insert_at t i bucket =
  ensure_room t;
  Array.blit t.buckets i t.buckets (i + 1) (t.len - i);
  t.buckets.(i) <- bucket;
  t.len <- t.len + 1

let rebuild t kept =
  let arr = Array.of_list kept in
  let capacity = max min_capacity (Array.length arr) in
  t.buckets <-
    Array.init capacity (fun i ->
        if i < Array.length arr then arr.(i) else fresh_bucket ());
  t.len <- Array.length arr;
  t.compress_at <- max min_capacity (2 * t.len)

(* Merge adjacent buckets, newest first, under the EH cap. *)
let compact t =
  if t.len > 1 then begin
    let kept = ref [] in  (* accumulates in ascending order *)
    let above = ref 0 in
    let cur = ref t.buckets.(t.len - 1) in
    for i = t.len - 2 downto 0 do
      let b = t.buckets.(i) in
      let cap = max 1 (int_of_float (2. *. t.eps *. float_of_int !above)) in
      if !cur.count + b.count <= cap then
        cur :=
          { lo = Time.min b.lo !cur.lo;
            hi = !cur.hi;
            count = !cur.count + b.count
          }
      else begin
        kept := !cur :: !kept;
        above := !above + !cur.count;
        cur := b
      end
    done;
    kept := !cur :: !kept;
    rebuild t !kept
  end
  else t.compress_at <- max min_capacity (2 * t.len)

let add t ~texp =
  t.total <- t.total + 1;
  let i = lower_bound t texp in
  if i >= t.len then insert_at t t.len { lo = texp; hi = texp; count = 1 }
  else begin
    let b = t.buckets.(i) in
    if Time.(texp < b.lo) then
      (* Strictly between the previous bucket's span and this one's:
         a new singleton keeps per-element granularity. *)
      insert_at t i { lo = texp; hi = texp; count = 1 }
    else
      (* Inside the span (or exactly at [hi]): the span already admits
         this expiration instant, so fold it in. *)
      b.count <- b.count + 1
  end;
  if t.len > t.compress_at then compact t

type answer = {
  estimate : float;
  within : float;
  horizon : Time.t;
}

let query t ~tau =
  (* Buckets are sorted by [hi]; everything at or below [tau] is dead.
     Among the rest, a bucket whose whole span is above [tau] counts in
     full; a straddler ([lo <= tau < hi]) contributes between 1 (its
     witness at [hi]) and its whole count.  Spans from a single add
     stream are disjoint (at most one straddler); merged sketches may
     interleave spans, and each source contributes its own straddler —
     the bounds simply add. *)
  let lo = ref 0 and hi = ref t.len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Time.(t.buckets.(mid).hi > tau) then hi := mid else lo := mid + 1
  done;
  let first = !lo in
  if first >= t.len then
    { estimate = 0.; within = 0.; horizon = Time.infinity }
  else begin
    let estimate = ref 0. in
    let within = ref 0. in
    let horizon = ref Time.infinity in
    for j = first to t.len - 1 do
      let b = t.buckets.(j) in
      let c = float_of_int b.count in
      if Time.(b.lo > tau) then begin
        (* Entirely live; the answer changes when its span starts
           dying at [lo]. *)
        estimate := !estimate +. c;
        horizon := Time.min !horizon b.lo
      end
      else begin
        estimate := !estimate +. ((c +. 1.) /. 2.);
        within := !within +. ((c -. 1.) /. 2.);
        horizon := Time.min !horizon b.hi
      end
    done;
    { estimate = !estimate; within = !within; horizon = !horizon }
  end

let merge a b =
  if a.eps <> b.eps then invalid_arg "Counter.merge: epsilon mismatch";
  let merged = create ~epsilon:a.eps in
  merged.total <- a.total + b.total;
  (* Two-way merge by [hi], coalescing overlapping spans so the merged
     partition stays disjoint (and therefore sound). *)
  (* Two-way merge by [hi], keeping every bucket: overlapping spans
     from different sources are sound (the query charges each bucket
     independently), and coalescing them would destroy resolution.
     Compaction still runs under the EH cap to bound memory. *)
  let out = ref [] in  (* descending accumulation *)
  let i = ref 0 and j = ref 0 in
  while !i < a.len || !j < b.len do
    let take_a =
      !j >= b.len
      || (!i < a.len && Time.(a.buckets.(!i).hi <= b.buckets.(!j).hi))
    in
    let src = if take_a then a.buckets.(!i) else b.buckets.(!j) in
    if take_a then incr i else incr j;
    out := { lo = src.lo; hi = src.hi; count = src.count } :: !out
  done;
  rebuild merged (List.rev !out);
  compact merged;
  merged

let memory_bytes t = Codec.memory_bytes t

let to_string t =
  let buffer = Buffer.create 256 in
  Codec.put_f64 buffer t.eps;
  Codec.put_i64 buffer t.total;
  Codec.put_i64 buffer t.len;
  for i = 0 to t.len - 1 do
    let b = t.buckets.(i) in
    Codec.put_time buffer b.lo;
    Codec.put_time buffer b.hi;
    Codec.put_i64 buffer b.count
  done;
  Buffer.contents buffer

let of_string s =
  Codec.decode ~what:"counter sketch" (fun c ->
      let epsilon = Codec.get_f64 c in
      if not (epsilon > 0. && epsilon < 1.) then
        raise (Codec.Bad "epsilon out of range");
      let total = Codec.get_i64 c in
      let len = Codec.get_i64 c in
      if len < 0 then raise (Codec.Bad "negative bucket count");
      let t = create ~epsilon in
      for _ = 1 to len do
        let lo = Codec.get_time c in
        let hi = Codec.get_time c in
        let count = Codec.get_i64 c in
        if count < 1 then raise (Codec.Bad "empty bucket");
        if Time.(hi < lo) then raise (Codec.Bad "inverted bucket span");
        (* Sorted by [hi]; spans may overlap (merged sketches). *)
        if t.len > 0 && Time.(t.buckets.(t.len - 1).hi > hi) then
          raise (Codec.Bad "buckets out of order");
        insert_at t t.len { lo; hi; count }
      done;
      t.total <- total;
      t.compress_at <- max min_capacity (2 * t.len);
      t)
    s
