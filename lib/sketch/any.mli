(** The closed sum of sketch kinds, as shipped between cluster nodes.

    A shard answers an approximate aggregate with a serialised [Any.t]
    partial; the coordinator merges the partials (same-kind,
    same-parameter) and renders rows from the merged sketch — the
    union-rule [texp(e)] of the merged answer is the merged sketch's
    own horizon. *)

open Expirel_core

type t =
  | Counter of Counter.t
  | Sample of Sample.t
  | Spread of Spread.t

val kind : t -> string
(** ["counter" | "sample" | "spread"]. *)

val name : t -> string
(** Display name with parameters, e.g. ["approx_count(0.05)"],
    ["sample(10)"] — the label the observability gauges use. *)

val merge : t -> t -> (t, string) result
(** [Error] on kind or parameter mismatch. *)

val query_rows : tau:Time.t -> t -> (Value.t list * Time.t) list * Time.t
(** The sketch's answer at [tau] as result rows with per-row [texp],
    plus the sketch's [texp]-horizon — the earliest time strictly after
    [tau] at which the answer can change, i.e. the answer's [texp(e)].
    Counter: one row [(estimate, within)].  Sample: up to [k] live
    rows.  Spread: one row [(min, max, diameter, within)] or none. *)

val live_estimate : tau:Time.t -> t -> float
(** The scalar the live-estimate gauge reports: the counter's estimate,
    the sample's current live sample size, the spread's diameter. *)

val memory_bytes : t -> int

val to_string : t -> string
(** Tagged, self-describing encoding (leading kind byte). *)

val of_string : string -> (t, string) result
