(* Two Pareto staircases over (value, texp).

   A point can be the live maximum at some tau only if no other point
   has both a value and a texp at least as large — the survivors,
   sorted by ascending texp, have strictly descending values, and the
   live max at tau is the first survivor with [texp > tau].  Dually for
   the minimum.  ε-thinning drops a survivor whose value is within
   ε·range of the longer-lived survivor answering after it, giving the
   additive 2ε·range bound on the diameter. *)

open Expirel_core

type point = {
  v : float;
  p_texp : Time.t;
}

type t = {
  eps : float;
  mutable upper : point list;  (* ascending texp, descending v *)
  mutable lower : point list;  (* ascending texp, ascending v *)
  mutable total : int;
  mutable vmin : float;
  mutable vmax : float;
  mutable compress_at : int;
}

let min_capacity = 64

let create ~epsilon =
  if not (epsilon > 0. && epsilon < 1.) then
    invalid_arg "Spread.create: epsilon must be in (0, 1)";
  { eps = epsilon;
    upper = [];
    lower = [];
    total = 0;
    vmin = 0.;
    vmax = 0.;
    compress_at = min_capacity
  }

let epsilon t = t.eps
let total t = t.total
let points t = List.length t.upper + List.length t.lower

let rec insert_upper pts p =
  match pts with
  | [] -> [ p ]
  | q :: rest ->
    if Time.(q.p_texp >= p.p_texp) then
      if q.v >= p.v then q :: rest (* dominated *) else p :: q :: rest
    else if q.v <= p.v then insert_upper rest p (* q dominated *)
    else q :: insert_upper rest p

let rec insert_lower pts p =
  match pts with
  | [] -> [ p ]
  | q :: rest ->
    if Time.(q.p_texp >= p.p_texp) then
      if q.v <= p.v then q :: rest else p :: q :: rest
    else if q.v >= p.v then insert_lower rest p
    else q :: insert_lower rest p

(* Thin from the longest-lived survivor backwards: an earlier-expiring
   point earns its slot only by improving on the last kept answer by
   more than ε·range. *)
let thin ~keep_gap pts =
  match List.rev pts with
  | [] -> []
  | last :: earlier ->
    let kept = ref [ last ] in
    let anchor = ref last in
    List.iter
      (fun p ->
        if keep_gap p !anchor then begin
          kept := p :: !kept;
          anchor := p
        end)
      earlier;
    !kept

let range t = t.vmax -. t.vmin

let prune t =
  let slack = t.eps *. range t in
  t.upper <- thin ~keep_gap:(fun p anchor -> p.v -. anchor.v > slack) t.upper;
  t.lower <- thin ~keep_gap:(fun p anchor -> anchor.v -. p.v > slack) t.lower;
  t.compress_at <- max min_capacity (2 * points t)

let add t v ~texp =
  if t.total = 0 then begin
    t.vmin <- v;
    t.vmax <- v
  end
  else begin
    t.vmin <- Float.min t.vmin v;
    t.vmax <- Float.max t.vmax v
  end;
  t.total <- t.total + 1;
  let p = { v; p_texp = texp } in
  t.upper <- insert_upper t.upper p;
  t.lower <- insert_lower t.lower p;
  if points t > t.compress_at then prune t

type answer = {
  live_min : float;
  live_max : float;
  diameter : float;
  within : float;
  horizon : Time.t;
}

let first_live pts ~tau = List.find_opt (fun p -> Time.(p.p_texp > tau)) pts

let query t ~tau =
  match (first_live t.upper ~tau, first_live t.lower ~tau) with
  | Some up, Some low ->
    Some
      { live_min = low.v;
        live_max = up.v;
        diameter = Float.max 0. (up.v -. low.v);
        within = 2. *. t.eps *. range t;
        horizon = Time.min up.p_texp low.p_texp
      }
  | _ -> None

let merge a b =
  if a.eps <> b.eps then invalid_arg "Spread.merge: epsilon mismatch";
  let merged = create ~epsilon:a.eps in
  merged.total <- a.total + b.total;
  if a.total > 0 && b.total > 0 then begin
    merged.vmin <- Float.min a.vmin b.vmin;
    merged.vmax <- Float.max a.vmax b.vmax
  end
  else if a.total > 0 then begin
    merged.vmin <- a.vmin;
    merged.vmax <- a.vmax
  end
  else begin
    merged.vmin <- b.vmin;
    merged.vmax <- b.vmax
  end;
  merged.upper <- List.fold_left insert_upper a.upper b.upper;
  merged.lower <- List.fold_left insert_lower a.lower b.lower;
  prune merged;
  merged

let memory_bytes t = Codec.memory_bytes t

let put_points buffer pts =
  Codec.put_list buffer
    (fun b p ->
      Codec.put_f64 b p.v;
      Codec.put_time b p.p_texp)
    pts

let get_points c =
  Codec.get_list c (fun c ->
      let v = Codec.get_f64 c in
      let p_texp = Codec.get_time c in
      { v; p_texp })

let to_string t =
  let buffer = Buffer.create 256 in
  Codec.put_f64 buffer t.eps;
  Codec.put_i64 buffer t.total;
  Codec.put_f64 buffer t.vmin;
  Codec.put_f64 buffer t.vmax;
  put_points buffer t.upper;
  put_points buffer t.lower;
  Buffer.contents buffer

let of_string s =
  Codec.decode ~what:"spread sketch" (fun c ->
      let epsilon = Codec.get_f64 c in
      if not (epsilon > 0. && epsilon < 1.) then
        raise (Codec.Bad "epsilon out of range");
      let t = create ~epsilon in
      t.total <- Codec.get_i64 c;
      t.vmin <- Codec.get_f64 c;
      t.vmax <- Codec.get_f64 c;
      t.upper <- get_points c;
      t.lower <- get_points c;
      t.compress_at <- max min_capacity (2 * points t);
      t)
    s
