(** Expiration-aware approximate counter.

    Maintains an ε-approximate count of the {e live} elements — those
    with [texp > tau] — at any query time [tau], in O(ε⁻¹ log n) memory,
    by bucketing insertions along the expiration axis (the
    exponential-histogram construction of the general expiration
    streaming model, transposed from arrival time to [texp]).

    Buckets partition the [texp] axis; a query at [tau] charges every
    bucket strictly above [tau] in full and the one straddling bucket
    for half its count, so the answer is always within the {e reported}
    [within] bound of the exact live count (a structural guarantee the
    test suite pins), and compression keeps each bucket's count at most
    [2ε] times the count above it, so [within ≤ ε·exact + 1] on
    distinct-[texp] streams. *)

open Expirel_core

type t

val create : epsilon:float -> t
(** @raise Invalid_argument unless [0 < epsilon < 1]. *)

val epsilon : t -> float

val total : t -> int
(** Elements ever added (live or not). *)

val buckets : t -> int
(** Current number of buckets (the memory knob). *)

val add : t -> texp:Time.t -> unit
(** Count one element that expires at [texp].  Arrival order along the
    expiration axis is arbitrary. *)

val compact : t -> unit
(** Force compression now (it otherwise runs amortised, when the bucket
    list outgrows twice its last compacted size). *)

type answer = {
  estimate : float;
      (** the approximate live count at [tau] *)
  within : float;
      (** hard error bound: [|estimate - exact| <= within], always *)
  horizon : Time.t;
      (** the earliest time strictly after [tau] at which this answer
          can change — the sketch's [texp]-horizon; [Inf] when nothing
          remains to expire *)
}

val query : t -> tau:Time.t -> answer

val merge : t -> t -> t
(** Shard-decomposability: [query (merge a b)] answers for the
    concatenation of the two input streams, within bounds.  The inputs
    are not mutated.
    @raise Invalid_argument when the epsilons differ. *)

val memory_bytes : t -> int
(** Resident heap bytes of the sketch. *)

val to_string : t -> string
(** Self-contained binary encoding, for shipping shard partials. *)

val of_string : string -> (t, string) result
