let lock = Mutex.create ()
let table : (string, int * float) Hashtbl.t = Hashtbl.create 16

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let record ~name ~memory_bytes ~estimate =
  locked (fun () -> Hashtbl.replace table name (memory_bytes, estimate))

let snapshot () =
  locked (fun () ->
      List.sort
        (fun (a, _) (b, _) -> String.compare a b)
        (Hashtbl.fold (fun name v acc -> (name, v) :: acc) table []))

let reset () = locked (fun () -> Hashtbl.reset table)
