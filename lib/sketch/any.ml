open Expirel_core

type t =
  | Counter of Counter.t
  | Sample of Sample.t
  | Spread of Spread.t

let kind = function
  | Counter _ -> "counter"
  | Sample _ -> "sample"
  | Spread _ -> "spread"

let name = function
  | Counter c -> Printf.sprintf "approx_count(%g)" (Counter.epsilon c)
  | Sample s -> Printf.sprintf "sample(%d)" (Sample.k s)
  | Spread s -> Printf.sprintf "spread(%g)" (Spread.epsilon s)

let merge a b =
  match (a, b) with
  | Counter x, Counter y ->
    if Counter.epsilon x <> Counter.epsilon y then
      Error "cannot merge counter sketches with different epsilons"
    else Ok (Counter (Counter.merge x y))
  | Sample x, Sample y ->
    if Sample.k x <> Sample.k y then
      Error "cannot merge sample sketches with different k"
    else Ok (Sample (Sample.merge x y))
  | Spread x, Spread y ->
    if Spread.epsilon x <> Spread.epsilon y then
      Error "cannot merge spread sketches with different epsilons"
    else Ok (Spread (Spread.merge x y))
  | _ ->
    Error
      (Printf.sprintf "cannot merge a %s sketch with a %s sketch" (kind a)
         (kind b))

let query_rows ~tau = function
  | Counter c ->
    let { Counter.estimate; within; horizon } = Counter.query c ~tau in
    ( [ ([ Value.Int (int_of_float (Float.round estimate)); Value.Float within ],
         horizon)
      ],
      horizon )
  | Sample s ->
    let rows = Sample.query s ~tau in
    (rows, Sample.horizon s ~tau)
  | Spread s -> (
    match Spread.query s ~tau with
    | None -> ([], Time.infinity)
    | Some { Spread.live_min; live_max; diameter; within; horizon } ->
      ( [ ([ Value.Float live_min;
             Value.Float live_max;
             Value.Float diameter;
             Value.Float within
           ],
           horizon)
        ],
        horizon ))

let live_estimate ~tau = function
  | Counter c -> (Counter.query c ~tau).Counter.estimate
  | Sample s -> float_of_int (List.length (Sample.query s ~tau))
  | Spread s -> (
    match Spread.query s ~tau with
    | None -> 0.
    | Some a -> a.Spread.diameter)

let memory_bytes = function
  | Counter c -> Counter.memory_bytes c
  | Sample s -> Sample.memory_bytes s
  | Spread s -> Spread.memory_bytes s

let to_string t =
  let tag, payload =
    match t with
    | Counter c -> ('\001', Counter.to_string c)
    | Sample s -> ('\002', Sample.to_string s)
    | Spread s -> ('\003', Spread.to_string s)
  in
  String.make 1 tag ^ payload

let of_string s =
  if String.length s < 1 then Error "sketch payload: empty"
  else
    let payload = String.sub s 1 (String.length s - 1) in
    match s.[0] with
    | '\001' -> Result.map (fun c -> Counter c) (Counter.of_string payload)
    | '\002' -> Result.map (fun x -> Sample x) (Sample.of_string payload)
    | '\003' -> Result.map (fun x -> Spread x) (Spread.of_string payload)
    | c -> Error (Printf.sprintf "sketch payload: bad kind tag %d" (Char.code c))
