(* Priority sampling along the expiration axis.

   Retention rule: an element [e] stays resident iff fewer than [k]
   elements with [texp >= texp(e)] (breaking texp ties by priority)
   have priority smaller than [e]'s.  Whatever [tau] a query later
   picks, the live set is exactly a texp-suffix of the candidates, so
   the k smallest-priority live elements all satisfy the rule and are
   still resident — the query answer equals the answer a full log would
   give, making the sample exactly uniform over the live set.

   Compaction evaluates the rule with one descending-texp sweep holding
   a max-heap of the k smallest priorities seen so far.  The resident
   set is the "k-skyline" of the (texp, priority) order; its expected
   size is O(k log n) for n distinct texps. *)

open Expirel_core

type entry = {
  row : Value.t list;
  e_texp : Time.t;
  prio : float;
}

type t = {
  k : int;
  mutable entries : entry list;
  mutable size : int;
  mutable added : int;
  mutable compress_at : int;
  rng : Random.State.t;
}

let floor_capacity k = (4 * k) + 32

let create ?seed ~k () =
  if k < 1 then invalid_arg "Sample.create: k must be >= 1";
  let rng =
    match seed with
    | Some s -> Random.State.make [| s; 0x5ce7c4 |]
    | None -> Random.State.make_self_init ()
  in
  { k; entries = []; size = 0; added = 0; compress_at = floor_capacity k; rng }

let k t = t.k
let added t = t.added
let size t = t.size

(* ---------- the sweep (shared by compact and merge) ---------- *)

(* Max-heap of at most [k] floats, backing one sweep. *)
let sift_down heap n i0 =
  let i = ref i0 in
  let continue_ = ref true in
  while !continue_ do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let largest = ref !i in
    if l < n && heap.(l) > heap.(!largest) then largest := l;
    if r < n && heap.(r) > heap.(!largest) then largest := r;
    if !largest = !i then continue_ := false
    else begin
      let tmp = heap.(!i) in
      heap.(!i) <- heap.(!largest);
      heap.(!largest) <- tmp;
      i := !largest
    end
  done

let sift_up heap i0 =
  let i = ref i0 in
  while !i > 0 && heap.((!i - 1) / 2) < heap.(!i) do
    let parent = (!i - 1) / 2 in
    let tmp = heap.(parent) in
    heap.(parent) <- heap.(!i);
    heap.(!i) <- tmp;
    i := parent
  done

(* Keep exactly the entries satisfying the retention rule. *)
let skyline k entries =
  let arr = Array.of_list entries in
  Array.sort
    (fun a b ->
      match Time.compare b.e_texp a.e_texp with
      | 0 -> Float.compare a.prio b.prio
      | c -> c)
    arr;
  let heap = Array.make k infinity in
  let hn = ref 0 in
  let kept = ref [] in
  let nkept = ref 0 in
  Array.iter
    (fun e ->
      if !hn < k || e.prio < heap.(0) then begin
        kept := e :: !kept;
        incr nkept;
        if !hn < k then begin
          heap.(!hn) <- e.prio;
          incr hn;
          sift_up heap (!hn - 1)
        end
        else begin
          heap.(0) <- e.prio;
          sift_down heap !hn 0
        end
      end)
    arr;
  (!kept, !nkept)

let compact t =
  let kept, n = skyline t.k t.entries in
  t.entries <- kept;
  t.size <- n;
  t.compress_at <- max (floor_capacity t.k) (2 * n)

let add_with_priority t row ~texp ~prio =
  t.entries <- { row; e_texp = texp; prio } :: t.entries;
  t.size <- t.size + 1;
  t.added <- t.added + 1;
  if t.size > t.compress_at then compact t

let add t row ~texp =
  add_with_priority t row ~texp ~prio:(Random.State.float t.rng 1.)

let evict t ~now =
  let live = List.filter (fun e -> Time.(e.e_texp > now)) t.entries in
  t.entries <- live;
  t.size <- List.length live

let query t ~tau =
  let live = List.filter (fun e -> Time.(e.e_texp > tau)) t.entries in
  let sorted = List.sort (fun a b -> Float.compare a.prio b.prio) live in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | e :: rest -> (e.row, e.e_texp) :: take (n - 1) rest
  in
  take t.k sorted

let horizon t ~tau =
  Time.min_list (List.map snd (query t ~tau))

let merge a b =
  if a.k <> b.k then invalid_arg "Sample.merge: k mismatch";
  let kept, n = skyline a.k (List.rev_append a.entries b.entries) in
  { k = a.k;
    entries = kept;
    size = n;
    added = a.added + b.added;
    compress_at = max (floor_capacity a.k) (2 * n);
    rng = Random.State.copy a.rng
  }

let entries t = List.map (fun e -> (e.row, e.e_texp, e.prio)) t.entries

let memory_bytes t = Codec.memory_bytes t

let to_string t =
  let buffer = Buffer.create 256 in
  Codec.put_i64 buffer t.k;
  Codec.put_i64 buffer t.added;
  Codec.put_list buffer
    (fun b e ->
      Codec.put_list b Codec.put_value e.row;
      Codec.put_time b e.e_texp;
      Codec.put_f64 b e.prio)
    t.entries;
  Buffer.contents buffer

let of_string s =
  Codec.decode ~what:"sample sketch" (fun c ->
      let k = Codec.get_i64 c in
      if k < 1 then raise (Codec.Bad "k out of range");
      let added = Codec.get_i64 c in
      let entries =
        Codec.get_list c (fun c ->
            let row = Codec.get_list c Codec.get_value in
            let e_texp = Codec.get_time c in
            let prio = Codec.get_f64 c in
            { row; e_texp; prio })
      in
      let t = create ~k () in
      t.entries <- entries;
      t.size <- List.length entries;
      t.added <- added;
      t.compress_at <- max (floor_capacity k) (2 * t.size);
      t)
    s
