(* Binary encoding helpers shared by the sketch serializers.

   Sketches ship between cluster nodes as opaque payloads inside the
   wire protocol, so the encoding must be self-contained and portable:
   fixed-width big-endian integers, IEEE doubles by bit pattern, and
   tagged [Time.t]/[Value.t].  The wire layer frames and versions the
   enclosing message; this layer only needs to round-trip. *)

open Expirel_core

exception Bad of string

(* ---------- writing ---------- *)

let put_u8 buffer n = Buffer.add_char buffer (Char.chr (n land 0xff))

let put_i64 buffer n =
  let v = Int64.of_int n in
  for shift = 7 downto 0 do
    put_u8 buffer (Int64.to_int (Int64.shift_right_logical v (shift * 8)))
  done

let put_f64 buffer x =
  let v = Int64.bits_of_float x in
  for shift = 7 downto 0 do
    put_u8 buffer (Int64.to_int (Int64.shift_right_logical v (shift * 8)))
  done

let put_str buffer s =
  put_i64 buffer (String.length s);
  Buffer.add_string buffer s

let put_time buffer = function
  | Time.Fin n ->
    put_u8 buffer 0;
    put_i64 buffer n
  | Time.Inf -> put_u8 buffer 1

let put_value buffer = function
  | Value.Int n ->
    put_u8 buffer 0;
    put_i64 buffer n
  | Value.Str s ->
    put_u8 buffer 1;
    put_str buffer s
  | Value.Float x ->
    put_u8 buffer 2;
    put_f64 buffer x
  | Value.Bool b ->
    put_u8 buffer 3;
    put_u8 buffer (if b then 1 else 0)
  | Value.Null -> put_u8 buffer 4

let put_list buffer f xs =
  put_i64 buffer (List.length xs);
  List.iter (f buffer) xs

(* ---------- reading ---------- *)

type cursor = {
  data : string;
  mutable pos : int;
}

let cursor data = { data; pos = 0 }

let need c n =
  if c.pos + n > String.length c.data then raise (Bad "truncated sketch payload")

let get_u8 c =
  need c 1;
  let n = Char.code c.data.[c.pos] in
  c.pos <- c.pos + 1;
  n

let get_raw64 c =
  need c 8;
  let v = ref 0L in
  for i = 0 to 7 do
    v :=
      Int64.logor (Int64.shift_left !v 8)
        (Int64.of_int (Char.code c.data.[c.pos + i]))
  done;
  c.pos <- c.pos + 8;
  !v

let get_i64 c = Int64.to_int (get_raw64 c)
let get_f64 c = Int64.float_of_bits (get_raw64 c)

let get_str c =
  let n = get_i64 c in
  if n < 0 then raise (Bad "negative string length");
  need c n;
  let s = String.sub c.data c.pos n in
  c.pos <- c.pos + n;
  s

let get_time c =
  match get_u8 c with
  | 0 -> Time.Fin (get_i64 c)
  | 1 -> Time.Inf
  | tag -> raise (Bad (Printf.sprintf "bad time tag %d" tag))

let get_value c =
  match get_u8 c with
  | 0 -> Value.Int (get_i64 c)
  | 1 -> Value.Str (get_str c)
  | 2 -> Value.Float (get_f64 c)
  | 3 -> Value.Bool (get_u8 c <> 0)
  | 4 -> Value.Null
  | tag -> raise (Bad (Printf.sprintf "bad value tag %d" tag))

let get_list c f =
  let n = get_i64 c in
  if n < 0 then raise (Bad "negative list length");
  List.init n (fun _ -> f c)

let done_ c =
  if c.pos <> String.length c.data then raise (Bad "trailing bytes")

(* [decode ~what f s] runs a reader over [s], turning [Bad] into a
   labelled [Error] and insisting the payload is fully consumed. *)
let decode ~what f s =
  let c = cursor s in
  match
    let v = f c in
    done_ c;
    v
  with
  | v -> Ok v
  | exception Bad message -> Error (Printf.sprintf "%s: %s" what message)

(* Heap footprint of a value, in bytes: what "keeping the sketch
   resident" costs, comparable against materialising the relation. *)
let memory_bytes v = Obj.reachable_words (Obj.repr v) * (Sys.word_size / 8)
