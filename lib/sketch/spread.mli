(** ε-coreset for the diameter (spread) of expiring 1-d points.

    Keeps two Pareto staircases over (value, texp): the points that can
    still be the live maximum (resp. minimum) at some future [tau],
    thinned so that consecutive survivors differ by more than
    ε·(observed range).  Queries report the live min, max and diameter
    within an additive [2ε·range] of exact — the geometric
    representative of the sketch family. *)

open Expirel_core

type t

val create : epsilon:float -> t
(** @raise Invalid_argument unless [0 < epsilon < 1]. *)

val epsilon : t -> float

val total : t -> int
(** Points ever added. *)

val points : t -> int
(** Staircase points currently resident (the memory knob). *)

val add : t -> float -> texp:Time.t -> unit

type answer = {
  live_min : float;
  live_max : float;
  diameter : float;  (** [max 0 (live_max - live_min)] *)
  within : float;
      (** additive error bound on all three: [2ε·(observed range)] *)
  horizon : Time.t;
      (** earliest time strictly after [tau] the answer can change *)
}

val query : t -> tau:Time.t -> answer option
(** [None] when no live points remain at [tau]. *)

val merge : t -> t -> t
(** @raise Invalid_argument when the epsilons differ. *)

val memory_bytes : t -> int
val to_string : t -> string
val of_string : string -> (t, string) result
