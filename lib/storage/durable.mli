(** A durable expiring database: {!Database} plus write-ahead logging
    and snapshot checkpoints in a directory — and the shipping source
    for replication.

    Layout: [dir/snapshot.log] (the state as of the last checkpoint, in
    WAL record format), [dir/wal.log] (records since) and [dir/meta]
    (the log position the snapshot corresponds to).  {!open_dir} replays
    snapshot then log; {!checkpoint} rewrites the snapshot from the
    {e live} state — expired tuples are never written, so checkpointing
    doubles as compaction (the paper's "smaller databases" benefit falls
    out of expiration).

    All mutating operations write ahead: the record reaches the log
    (flushed) before the in-memory state changes, so a crash at any
    point loses at most the operation in flight; {!Wal.replay}'s
    torn-tail tolerance makes the directory reopenable regardless.

    {2 Log positions and shipping}

    Every logged record gets a {e position}: the count of records ever
    appended since the directory was created.  Positions are monotone
    and survive both checkpoints (persisted in [dir/meta]) and reopens,
    which makes them usable as replication cursors: a follower that has
    applied the stream up to position [p] can resume with exactly the
    records after [p].  {!ship_from} serves that resumption from an
    in-memory tail of the most recent records, which is retained
    {e across} checkpoints (up to [retention] records) precisely so a
    checkpoint on the primary does not strand a briefly-disconnected
    follower; only a follower further behind than the retained tail is
    told to bootstrap from a fresh snapshot of the live state. *)

open Expirel_core

type t

val open_dir :
  ?policy:Database.policy ->
  ?backend:Expirel_index.Expiration_index.backend ->
  ?retention:int ->
  string ->
  t
(** Opens (creating if empty) the database stored in the directory.
    [retention] (default 4096) bounds the in-memory record tail kept for
    {!ship_from}.
    @raise Sys_error when the directory does not exist *)

val database : t -> Database.t
(** The live in-memory database.  Mutate it only through this module, or
    durability is lost. *)

val now : t -> Time.t

val create_table : t -> name:string -> columns:string list -> unit
val drop_table : t -> string -> bool
val insert : t -> string -> Tuple.t -> texp:Time.t -> unit
val delete : t -> string -> Tuple.t -> bool
val advance_to : t -> Time.t -> unit

val checkpoint : t -> int
(** Rewrites the snapshot from the live (unexpired) state and truncates
    the log; returns the number of records in the new snapshot.  The
    snapshot is written to a temporary file and renamed, so a crash
    during checkpointing leaves the previous snapshot + log intact.
    {!position} is unaffected and the retained tail survives, so
    followers within [retention] records keep streaming. *)

val close : t -> unit
(** Flushes and closes the log (the state remains usable in memory). *)

val wal_records : t -> int
(** Records appended to the log since open/last checkpoint. *)

(** {1 Positions and replication} *)

val position : t -> int
(** Records ever logged to this directory (monotone across checkpoints
    and reopens): the head of the replication stream. *)

val snapshot_position : t -> int
(** The position [dir/snapshot.log] corresponds to; records at positions
    beyond it live in [dir/wal.log]. *)

val retained_from : t -> int
(** The earliest position still served record-by-record by
    {!ship_from}; followers behind it receive a snapshot. *)

val state_records : t -> Wal.record list
(** The live (unexpired) state as a replayable record list — an
    [Advance] to the current clock, then per table a [Create_table] and
    its live [Insert]s.  Exactly what {!checkpoint} writes; replaying it
    on a fresh database reproduces the current state. *)

type shipment =
  | Records of Wal.record list
      (** the records after the requested position, possibly empty *)
  | Snapshot of {
      position : int;
      records : Wal.record list;
    }
      (** the requested position predates the retained tail: bootstrap
          from this full state (at [position]) instead *)

val ship_from : t -> int -> (shipment, string) result
(** [ship_from t p] is what a follower holding position [p] needs next.
    [Error] when [p] is negative or beyond {!position} (such a follower
    is ahead of this log — it followed a different history). *)

val log_record : t -> Wal.record -> unit
(** Appends (and flushes) a record without touching the database — for
    callers that apply the equivalent mutation themselves (the
    interpreter advances the clock through its constraint manager).
    Using it without applying the mutation desynchronises log and
    state. *)

val apply_record : t -> Wal.record -> unit
(** Appends the record, then applies it to the database with replay
    semantics (expired inserts and backwards advances are skipped, a
    [Create_table] of an existing table is ignored) — the follower side
    of shipping. *)

val reset_to : t -> position:int -> Wal.record list -> unit
(** Replaces directory and database state wholesale with the given
    state-as-records at the given position: the follower side of a
    {!shipment} [Snapshot].  The records are written as the new
    snapshot, the log is truncated, and the in-memory database is
    rebuilt (tables dropped, records replayed).  The logical clock never
    moves backwards: a snapshot from the past leaves it where it is. *)
