open Expirel_core

module Value_map = Map.Make (Value)
module Tuple_set = Set.Make (Tuple)

type t = {
  column : int;
  mutable buckets : Tuple_set.t Value_map.t;
  mutable entries : int;
}

let create ~column = { column; buckets = Value_map.empty; entries = 0 }
let column t = t.column
let entries t = t.entries

let key t tuple = Tuple.attr tuple t.column

let insert t tuple =
  let k = key t tuple in
  let bucket =
    Option.value ~default:Tuple_set.empty (Value_map.find_opt k t.buckets)
  in
  if not (Tuple_set.mem tuple bucket) then begin
    t.buckets <- Value_map.add k (Tuple_set.add tuple bucket) t.buckets;
    t.entries <- t.entries + 1
  end

let remove t tuple =
  let k = key t tuple in
  match Value_map.find_opt k t.buckets with
  | None -> ()
  | Some bucket ->
    if Tuple_set.mem tuple bucket then begin
      let bucket = Tuple_set.remove tuple bucket in
      t.buckets <-
        (if Tuple_set.is_empty bucket then Value_map.remove k t.buckets
         else Value_map.add k bucket t.buckets);
      t.entries <- t.entries - 1
    end

let extrema t =
  match Value_map.min_binding_opt t.buckets, Value_map.max_binding_opt t.buckets with
  | Some (lo, _), Some (hi, _) -> Some (lo, hi)
  | _ -> None

type bound =
  | Unbounded
  | Inclusive of Value.t
  | Exclusive of Value.t

let lookup t v =
  match Value_map.find_opt v t.buckets with
  | None -> []
  | Some bucket -> Tuple_set.elements bucket

let above lo k =
  match lo with
  | Unbounded -> true
  | Inclusive v -> Value.compare k v >= 0
  | Exclusive v -> Value.compare k v > 0

let below hi k =
  match hi with
  | Unbounded -> true
  | Inclusive v -> Value.compare k v <= 0
  | Exclusive v -> Value.compare k v < 0

let range ?visited t ~lo ~hi =
  (* Seek to the lower bound and walk in order until the upper bound —
     O(log n + answer), the point of keeping the index ordered.  The seek
     already lands at the first key >= the bound, so an [Exclusive] lower
     bound skips at most the one equal-key binding: the [drop_while]
     cannot degrade into a scan.  [visited] counts the key bindings
     examined, which regression tests pin against the answer size. *)
  let touch b =
    (match visited with
     | Some c -> incr c
     | None -> ());
    b
  in
  let seq =
    match lo with
    | Unbounded -> Value_map.to_seq t.buckets
    | Inclusive v | Exclusive v -> Value_map.to_seq_from v t.buckets
  in
  seq
  |> Seq.map touch
  |> Seq.drop_while (fun (k, _) -> not (above lo k))
  |> Seq.take_while (fun (k, _) -> below hi k)
  |> Seq.concat_map (fun (_, bucket) -> List.to_seq (Tuple_set.elements bucket))
  |> List.of_seq
