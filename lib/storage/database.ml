open Expirel_core
open Expirel_index

type policy =
  | Eager
  | Lazy

type t = {
  policy : policy;
  backend : Expiration_index.backend;
  tables : (string, Table.t) Hashtbl.t;
  trigger_registry : Trigger.registry;
  mutable clock : Time.t;
  mutable generation : int;
      (* catalog generation: bumped on DDL (table and index changes) so
         cached physical plans can be checked for staleness in O(1) *)
  mutable inserted_total : int;  (* rows accepted since create *)
  mutable expired_total : int;
      (* expirations observed (eagerly at advance, lazily at vacuum) *)
}

let create ?(policy = Eager) ?(backend = `Heap) () =
  { policy;
    backend;
    tables = Hashtbl.create 16;
    trigger_registry = Trigger.create ();
    clock = Time.zero;
    generation = 0;
    inserted_total = 0;
    expired_total = 0
  }

let policy db = db.policy
let now db = db.clock
let triggers db = db.trigger_registry
let generation db = db.generation
let bump_generation db = db.generation <- db.generation + 1

let create_table db ~name ~columns =
  if Hashtbl.mem db.tables name then
    invalid_arg (Printf.sprintf "Database.create_table: %s exists" name)
  else begin
    let table = Table.create ~backend:db.backend ~name ~columns () in
    Hashtbl.replace db.tables name table;
    bump_generation db;
    table
  end

let drop_table db name =
  if Hashtbl.mem db.tables name then begin
    Hashtbl.remove db.tables name;
    bump_generation db;
    true
  end
  else false

let table db name = Hashtbl.find_opt db.tables name

let table_exn db name =
  match table db name with
  | Some t -> t
  | None -> raise (Errors.Unknown_relation name)

let table_names db =
  Hashtbl.fold (fun name _ acc -> name :: acc) db.tables []
  |> List.sort String.compare

let pending_expirations db =
  Hashtbl.fold (fun _ t acc -> acc + Table.pending_expirations t) db.tables 0

let live_rows db =
  Hashtbl.fold
    (fun _ t acc -> acc + Table.live_estimate t ~tau:db.clock)
    db.tables 0

let expiring_within db ~bounds =
  List.map
    (fun name ->
      (name, Table.expiring_within (table_exn db name) ~now:db.clock ~bounds))
    (table_names db)

let inserted_total db = db.inserted_total
let expired_total db = db.expired_total

let insert db name tuple ~texp =
  if Time.(texp <= db.clock) then
    invalid_arg
      (Printf.sprintf "Database.insert: texp %s <= now %s" (Time.to_string texp)
         (Time.to_string db.clock))
  else begin
    Table.insert (table_exn db name) tuple ~texp;
    db.inserted_total <- db.inserted_total + 1
  end

let insert_ttl db name tuple ~ttl =
  if ttl <= 0 then invalid_arg "Database.insert_ttl: ttl <= 0"
  else insert db name tuple ~texp:(Time.add db.clock (Time.of_int ttl))

let insert_values db name values ~texp = insert db name (Tuple.of_list values) ~texp
let delete db name tuple = Table.delete (table_exn db name) tuple

let fire_expirations db ~fired_at_of events =
  (* Global (texp, table, tuple) order so trigger firings are
     deterministic across tables. *)
  let ordered =
    List.sort
      (fun (e1, n1, t1) (e2, n2, t2) ->
        match Time.compare e1 e2 with
        | 0 ->
          (match String.compare n1 n2 with
           | 0 -> Tuple.compare t1 t2
           | c -> c)
        | c -> c)
      events
  in
  List.iter
    (fun (texp, table_name, tuple) ->
      Trigger.fire db.trigger_registry
        { Trigger.table = table_name; tuple; texp; fired_at = fired_at_of texp })
    ordered

let collect_expired db tau =
  Hashtbl.fold
    (fun name tbl acc ->
      List.fold_left
        (fun acc (tuple, texp) -> (texp, name, tuple) :: acc)
        acc (Table.expire_upto tbl tau))
    db.tables []

let advance_to db tau =
  if Time.is_infinite tau then invalid_arg "Database.advance_to: infinite time"
  else if Time.(tau < db.clock) then
    invalid_arg "Database.advance_to: moving backwards"
  else begin
    (match db.policy with
     | Eager ->
       (* A tuple with texp = e is last visible at e - 1, so everything
          with texp <= tau is due. *)
       let expired = collect_expired db tau in
       db.expired_total <- db.expired_total + List.length expired;
       fire_expirations db ~fired_at_of:(fun texp -> texp) expired
     | Lazy -> ());
    db.clock <- tau
  end

let tick db = advance_to db (Time.succ db.clock)

let vacuum db =
  match db.policy with
  | Eager -> 0
  | Lazy ->
    let expired = collect_expired db db.clock in
    db.expired_total <- db.expired_total + List.length expired;
    fire_expirations db ~fired_at_of:(fun _ -> db.clock) expired;
    List.length expired

let snapshot db name = Table.snapshot (table_exn db name) ~tau:db.clock

let env db name = Option.map (fun t -> Table.snapshot t ~tau:db.clock) (table db name)

let query ?strategy ?probe db expr =
  Eval.run ?strategy ?probe ~env:(env db) ~tau:db.clock expr
