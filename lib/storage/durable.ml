open Expirel_core

type t = {
  dir : string;
  db : Database.t;
  mutable writer : Wal.Writer.t;
  mutable pending : int;  (* records in wal.log since last checkpoint *)
  mutable base : int;  (* position snapshot.log corresponds to *)
  mutable position : int;  (* records ever logged; the stream head *)
  tail : Wal.record Queue.t;  (* most recent records, oldest first *)
  mutable tail_base : int;  (* position of the front of [tail] *)
  retention : int;
}

let snapshot_path dir = Filename.concat dir "snapshot.log"
let wal_path dir = Filename.concat dir "wal.log"
let meta_path dir = Filename.concat dir "meta"

(* The meta file holds one framed line, like the logs: the snapshot's
   base position.  A missing or torn meta reads as 0 — correct for
   directories created before positions existed, whose snapshots were
   never checkpointed with a nonzero base. *)
let read_meta dir =
  let path = meta_path dir in
  if not (Sys.file_exists path) then 0
  else begin
    let ic = open_in path in
    let base =
      match input_line ic with
      | line ->
        (match String.split_on_char ':' line with
         | [ "base"; n ] -> Option.value (int_of_string_opt n) ~default:0
         | _ -> 0)
      | exception End_of_file -> 0
    in
    close_in ic;
    max 0 base
  end

let write_meta dir base =
  let tmp = meta_path dir ^ ".tmp" in
  let oc = open_out tmp in
  Printf.fprintf oc "base:%d\n" base;
  close_out oc;
  Sys.rename tmp (meta_path dir)

let apply db = function
  | Wal.Create_table { name; columns } ->
    (* Tolerate re-creation so a torn checkpoint (snapshot renamed, log
       not yet truncated) replays cleanly. *)
    if Database.table db name = None then begin
      let (_ : Table.t) = Database.create_table db ~name ~columns in
      ()
    end
  | Wal.Drop_table name -> ignore (Database.drop_table db name)
  | Wal.Insert { table; tuple; texp } ->
    (* Records written in the past may already have expired relative to
       the replayed clock; skip them rather than fail. *)
    if Time.(texp > Database.now db) then Database.insert db table tuple ~texp
  | Wal.Delete { table; tuple } -> ignore (Database.delete db table tuple)
  | Wal.Advance t ->
    if Time.(t > Database.now db) then Database.advance_to db t

let open_dir ?policy ?backend ?(retention = 4096) dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    raise (Sys_error (dir ^ ": not a directory"));
  let db = Database.create ?policy ?backend () in
  let base = read_meta dir in
  let (_ : int) = Wal.replay (snapshot_path dir) ~f:(apply db) in
  let tail = Queue.create () in
  let pending =
    Wal.replay (wal_path dir) ~f:(fun record ->
        apply db record;
        Queue.add record tail;
        if Queue.length tail > retention then ignore (Queue.pop tail))
  in
  let position = base + pending in
  { dir;
    db;
    writer = Wal.Writer.append_to (wal_path dir);
    pending;
    base;
    position;
    tail;
    tail_base = position - Queue.length tail;
    retention
  }

let database t = t.db
let now t = Database.now t.db

let log t record =
  Wal.Writer.write t.writer record;
  t.pending <- t.pending + 1;
  t.position <- t.position + 1;
  Queue.add record t.tail;
  if Queue.length t.tail > t.retention then begin
    ignore (Queue.pop t.tail);
    t.tail_base <- t.tail_base + 1
  end

let create_table t ~name ~columns =
  (* Validate before logging so a rejected operation leaves no record. *)
  if Database.table t.db name <> None then
    invalid_arg (Printf.sprintf "Durable.create_table: %s exists" name)
  else begin
    log t (Wal.Create_table { name; columns });
    let (_ : Table.t) = Database.create_table t.db ~name ~columns in
    ()
  end

let drop_table t name =
  if Database.table t.db name = None then false
  else begin
    log t (Wal.Drop_table name);
    Database.drop_table t.db name
  end

let insert t table tuple ~texp =
  let tbl = Database.table_exn t.db table in
  if Tuple.arity tuple <> Table.arity tbl then
    invalid_arg "Durable.insert: arity mismatch";
  if Time.(texp <= Database.now t.db) then
    invalid_arg "Durable.insert: texp <= now";
  log t (Wal.Insert { table; tuple; texp });
  Database.insert t.db table tuple ~texp

let delete t table tuple =
  let tbl = Database.table_exn t.db table in
  if Table.texp_of tbl tuple = None then false
  else begin
    log t (Wal.Delete { table; tuple });
    Database.delete t.db table tuple
  end

let advance_to t time =
  if Time.(time < Database.now t.db) then
    invalid_arg "Durable.advance_to: moving backwards"
  else begin
    log t (Wal.Advance time);
    Database.advance_to t.db time
  end

let state_records t =
  let records = ref [] in
  let emit record = records := record :: !records in
  (* Clock first, so replayed inserts land after it and TTL comparisons
     hold. *)
  (match Database.now t.db with
   | Time.Fin _ as now when not (Time.equal now Time.zero) -> emit (Wal.Advance now)
   | Time.Fin _ | Time.Inf -> ());
  List.iter
    (fun name ->
      match Database.table t.db name with
      | None -> ()
      | Some tbl ->
        emit (Wal.Create_table { name; columns = Table.columns tbl });
        (* Only live tuples: expiration is compaction. *)
        Relation.iter
          (fun tuple texp -> emit (Wal.Insert { table = name; tuple; texp }))
          (Table.snapshot tbl ~tau:(Database.now t.db)))
    (Database.table_names t.db);
  List.rev !records

(* Rewrites snapshot.log (atomically) from the given records and leaves
   wal.log empty; shared by checkpoint and reset_to. *)
let install_snapshot t records ~base =
  let tmp = snapshot_path t.dir ^ ".tmp" in
  if Sys.file_exists tmp then Sys.remove tmp;
  let snapshot_writer = Wal.Writer.append_to tmp in
  List.iter (Wal.Writer.write snapshot_writer) records;
  Wal.Writer.close snapshot_writer;
  Sys.rename tmp (snapshot_path t.dir);
  t.base <- base;
  write_meta t.dir base;
  (* Truncate the log only after the snapshot is safely in place. *)
  Wal.Writer.close t.writer;
  let oc = open_out (wal_path t.dir) in
  close_out oc;
  t.writer <- Wal.Writer.append_to (wal_path t.dir);
  t.pending <- 0

let checkpoint t =
  let records = state_records t in
  install_snapshot t records ~base:t.position;
  List.length records

let close t = Wal.Writer.close t.writer
let wal_records t = t.pending
let position t = t.position
let snapshot_position t = t.base
let retained_from t = t.tail_base

type shipment =
  | Records of Wal.record list
  | Snapshot of {
      position : int;
      records : Wal.record list;
    }

let ship_from t pos =
  if pos < 0 then Error (Printf.sprintf "negative position %d" pos)
  else if pos > t.position then
    Error
      (Printf.sprintf "position %d is ahead of this log (at %d)" pos t.position)
  else if pos >= t.tail_base then begin
    (* The tail covers positions (tail_base, position]; skip what the
       follower already has. *)
    let records = ref [] in
    let i = ref t.tail_base in
    Queue.iter
      (fun record ->
        if !i >= pos then records := record :: !records;
        incr i)
      t.tail;
    Ok (Records (List.rev !records))
  end
  else Ok (Snapshot { position = t.position; records = state_records t })

let log_record = log
let apply_record t record =
  log t record;
  apply t.db record

let reset_to t ~position records =
  if position < 0 then invalid_arg "Durable.reset_to: negative position";
  install_snapshot t records ~base:position;
  t.position <- position;
  Queue.clear t.tail;
  t.tail_base <- position;
  (* Rebuild the live state in place (the Database.t identity is shared
     with servers and subscriptions, so never swap it out). *)
  List.iter (fun name -> ignore (Database.drop_table t.db name))
    (Database.table_names t.db);
  List.iter (apply t.db) records
