(** Access-path selection: answering selections over stored tables via
    secondary indexes when one applies, with a full scan as fallback.

    An index on a column is usable for a conjunct [col = c] or
    [col < c] / [<=] / [>] / [>=] when the stored keys are
    type-homogeneous with the constant (checked against the index's key
    extrema — mixed-type columns fall back to scanning, keeping the
    result identical to the reference evaluation).  The full predicate is
    always re-applied to the candidates, so index choice affects cost
    only, never results. *)

open Expirel_core

type plan =
  | Full_scan
  | Never_matches  (** a conjunct compares against [Null]: no tuple passes *)
  | Index_eq of {
      column : int;
      value : Value.t;
    }
  | Index_range of {
      column : int;
      lo : Ordered_index.bound;
      hi : Ordered_index.bound;
    }

val plan : Table.t -> Predicate.t -> plan
(** The access path chosen for evaluating the predicate over the table. *)

type scan_stats = {
  mutable candidates : int;
      (** rows the access path produced before the predicate ran: the
          live snapshot for full scans, live index candidates for index
          paths *)
  mutable expired_dropped : int;
      (** physical rows the [tau] liveness filter discarded — the
          expiration churn the profiler reports per scan *)
  mutable index_visited : int;
      (** index nodes touched ({!Ordered_index.range}'s [?visited]);
          0 for full scans and point lookups *)
}

val fresh_stats : unit -> scan_stats
(** All-zero counters. *)

val select :
  ?stats:scan_stats -> Table.t -> tau:Time.t -> Predicate.t -> Relation.t
(** [select tbl ~tau p] = [Ops.select p (Table.snapshot tbl ~tau)],
    computed through {!plan}.  [stats], when given, accumulates the
    scan's profile counters; when absent nothing is counted or
    allocated. *)

val eval :
  ?strategy:Aggregate.strategy -> db:Database.t -> tau:Time.t -> Algebra.t ->
  Relation.t
(** Evaluates a whole expression against the database, routing
    [sigma_p(base)] leaves through {!select} (and bare bases through
    snapshots); all other operators use the standard kernels.  Agrees
    with {!Database.query} exactly. *)

val pp_plan : Format.formatter -> plan -> unit
