(** A secondary index over one column of a stored relation: an ordered
    map from attribute value to the set of tuples carrying it, supporting
    point and range lookups for the planner ({!Access}). *)

open Expirel_core

type t

val create : column:int -> t
(** [column] is the 1-based attribute position the index covers. *)

val column : t -> int
val entries : t -> int
(** Number of indexed tuples. *)

val insert : t -> Tuple.t -> unit
(** @raise Invalid_argument when the tuple lacks the indexed position *)

val remove : t -> Tuple.t -> unit

type bound =
  | Unbounded
  | Inclusive of Value.t
  | Exclusive of Value.t

val extrema : t -> (Value.t * Value.t) option
(** Smallest and largest indexed key, if any tuples are indexed. *)

val lookup : t -> Value.t -> Tuple.t list
(** Tuples whose indexed attribute equals the value, in tuple order. *)

val range : ?visited:int ref -> t -> lo:bound -> hi:bound -> Tuple.t list
(** Tuples whose indexed attribute falls in the interval, in ascending
    attribute (then tuple) order.  Bounds use {!Value.compare}'s total
    order, which agrees with {!Value.cmp} on same-type numeric and
    string values.

    Cost is O(log n + answer): the walk seeks directly to the lower
    bound; an [Exclusive] bound skips at most one equal-key binding.
    [visited], when given, is incremented once per key binding the walk
    examines (at most the answer's distinct keys plus two: one possible
    equal-key skip and the binding that fails the upper bound) — the
    hook the complexity regression test pins. *)
