(** A mutable stored relation with set semantics, named columns, and an
    expiration index.

    The table itself is clock-free; the {!Database} drives expiration by
    calling {!expire_upto} (eager removal) or {!vacuum} (delayed physical
    removal under lazy policy) and reads logical states via {!snapshot},
    which always filters through [exp_tau] so expired-but-unvacuumed rows
    stay invisible (Section 3.2, citation [26]). *)

open Expirel_core
open Expirel_index

type t

val create :
  ?backend:Expiration_index.backend -> name:string -> columns:string list ->
  unit -> t
(** [backend] defaults to [`Heap].
    @raise Invalid_argument on an empty column list *)

val name : t -> string
val columns : t -> string list
val arity : t -> int

val column_position : t -> string -> int option
(** 1-based position of a column name. *)

val insert : t -> Tuple.t -> texp:Time.t -> unit
(** Set semantics: inserting an existing tuple overwrites its expiration
    time (the paper's update — "an expiration time may be assigned to a
    tuple" on insertion and update).
    @raise Invalid_argument on arity mismatch *)

val delete : t -> Tuple.t -> bool
(** Explicit deletion; [true] when the tuple was present. *)

val texp_of : t -> Tuple.t -> Time.t option
val physical_count : t -> int
(** Rows physically present, including expired-but-unvacuumed ones. *)

val live_count : t -> tau:Time.t -> int

val live_estimate : t -> tau:Time.t -> int
(** Exactly [live_count], computed cheaply: O(1) when every physical row
    is live, otherwise binary-search cuts over the cached
    {!physical_relation}'s texp-sorted chunks — what the planner's
    cardinality estimates use so a mostly-expired (churny, lazily
    vacuumed) table costs by its live rows, not its physical ones. *)

val expiring_within : t -> now:Time.t -> bounds:int array -> int array
(** The table's forward expiration profile: element [i] counts live
    rows whose expiration falls in [(now + bounds.(i-1), now + bounds.(i)]]
    (with an implicit lower edge of [now] for the first bucket).
    [bounds] must be ascending tick deltas; a [max_int] bound means
    [+Inf] and its bucket also holds never-expiring rows, so the array
    sums to the live count.  Never a full scan: each boundary is a
    binary-search cut over the cached {!physical_relation}'s texp-sorted
    chunks — O(chunks · buckets · log rows). *)

val pending_expirations : t -> int
(** Entries currently held by the table's expiration index (heap /
    timer wheel / scan) — the backlog an advance or vacuum would have to
    process.  The depth gauge the observability layer exposes. *)

val generation : t -> int
(** Monotone counter bumped on every physical row change (insert, delete,
    expiration) — the invalidation key for cached snapshots. *)

val snapshot : t -> tau:Time.t -> Relation.t
(** The logical state [exp_tau(R)].  When every physical row is live at
    [tau] (the common server-read case: nothing has expired since the
    last mutation) the snapshot is cached and reused until the table
    changes, making repeated reads O(1) instead of O(n). *)

val physical_relation : t -> Relation.t
(** Every physical row, expired-but-unvacuumed ones included — the
    generation-cached relation batch scans cut at [tau] via its
    texp-sorted chunks ({!Relation.sorted_chunks}), instead of paying
    {!snapshot}'s O(n) filter per read on a churny table.  Callers are
    responsible for liveness filtering. *)

val expire_upto : t -> Time.t -> (Tuple.t * Time.t) list
(** Physically removes every row with [texp <= tau] and returns them in
    [(texp, tuple)] order — the eager policy's unit of work, and the
    source of expiration trigger events. *)

val vacuum : t -> tau:Time.t -> int
(** Physically removes rows with [texp <= tau] without materialising
    them; returns how many were reclaimed (lazy policy cleanup). *)

val next_expiry : t -> Time.t option

(** {2 Secondary indexes} *)

val create_index : t -> column:int -> unit
(** Builds (or rebuilds) an ordered secondary index on the 1-based
    column; maintained by subsequent inserts, deletes and expirations.
    @raise Invalid_argument when the column is out of range *)

val drop_index : t -> column:int -> unit
val has_index : t -> column:int -> bool
val indexed_columns : t -> int list

val index_extrema : t -> column:int -> (Value.t * Value.t) option
(** Smallest and largest key currently indexed (physical rows, expired
    included until vacuumed).
    @raise Not_found when no index covers the column *)

val index_lookup :
  ?dropped:int ref ->
  t -> column:int -> tau:Time.t -> Value.t -> (Tuple.t * Time.t) list
(** Live tuples whose column equals the value.  [dropped], when given,
    is incremented once per index candidate the liveness filter
    discarded (expired at [tau] or deleted) — the profiling sink's
    expired-drop count.
    @raise Not_found when no index covers the column *)

val index_range :
  ?visited:int ref ->
  ?dropped:int ref ->
  t -> column:int -> tau:Time.t -> lo:Ordered_index.bound ->
  hi:Ordered_index.bound -> (Tuple.t * Time.t) list
(** Live tuples whose column falls in the range.  [visited] counts
    index nodes touched (forwarded to {!Ordered_index.range});
    [dropped] counts candidates the liveness filter discarded.
    @raise Not_found when no index covers the column *)
